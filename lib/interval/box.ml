(* Axis-aligned boxes (interval vectors). Boxes are the workhorse set
   representation of the reproduction: initial sets, unsafe and goal regions
   of the reach-avoid specification are boxes (exactly as in the paper's
   experiments), and flowpipe segments are reduced to boxes for the
   geometric-distance metric of Eq. (2)/(3). *)

type t = Interval.t array

let of_intervals a =
  if Array.length a = 0 then invalid_arg "Box.of_intervals: empty";
  Array.copy a

let make ~lo ~hi =
  let n = Array.length lo in
  if n = 0 || Array.length hi <> n then invalid_arg "Box.make: bad corner dimensions";
  Array.init n (fun i -> Interval.make lo.(i) hi.(i))

let of_point x = Array.map Interval.of_point x

let dim (b : t) = Array.length b

let get (b : t) i = b.(i)

let lo b = Array.map Interval.lo b
let hi b = Array.map Interval.hi b
let center b = Array.map Interval.mid b
let widths b = Array.map Interval.width b
let radii b = Array.map Interval.rad b

let max_width b = Array.fold_left (fun acc iv -> Float.max acc (Interval.width iv)) 0.0 b

let volume b = Array.fold_left (fun acc iv -> acc *. Interval.width iv) 1.0 b

let contains b x =
  dim b = Array.length x
  && (let ok = ref true in
      Array.iteri (fun i iv -> if not (Interval.contains iv x.(i)) then ok := false) b;
      !ok)

let subset a b =
  dim a = dim b
  && (let ok = ref true in
      Array.iteri (fun i iv -> if not (Interval.subset iv b.(i)) then ok := false) a;
      !ok)

let intersects a b =
  dim a = dim b
  && (let ok = ref true in
      Array.iteri (fun i iv -> if not (Interval.intersects iv b.(i)) then ok := false) a;
      !ok)

let intersect a b =
  if dim a <> dim b then invalid_arg "Box.intersect: dimension mismatch";
  let exception Disjoint in
  try
    Some
      (Array.init (dim a) (fun i ->
           match Interval.intersect a.(i) b.(i) with
           | Some iv -> iv
           | None -> raise Disjoint))
  with Disjoint -> None

(* Volume of the overlap; 0 when disjoint. This is the |X_r ∩ X_u| term of
   the geometric metric (Eq. (2)). *)
let intersection_volume a b =
  if dim a <> dim b then invalid_arg "Box.intersection_volume: dimension mismatch";
  let acc = ref 1.0 in
  Array.iteri (fun i iv -> acc := !acc *. Interval.overlap_length iv b.(i)) a;
  !acc

(* Minimum squared Euclidean distance between the two boxes as point sets;
   0 when they intersect. This is the inf ||x_r - x_u||^2 term of Eq. (2). *)
let sq_distance a b =
  if dim a <> dim b then invalid_arg "Box.sq_distance: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i iv ->
      let gap = Interval.distance iv b.(i) in
      acc := !acc +. (gap *. gap))
    a;
  !acc

let distance a b = sqrt (sq_distance a b)

let hull a b =
  if dim a <> dim b then invalid_arg "Box.hull: dimension mismatch";
  Array.init (dim a) (fun i -> Interval.hull a.(i) b.(i))

let hull_list = function
  | [] -> invalid_arg "Box.hull_list: empty list"
  | b :: rest -> List.fold_left hull b rest

let translate v b =
  if dim b <> Array.length v then invalid_arg "Box.translate: dimension mismatch";
  Array.mapi (fun i iv -> Interval.shift v.(i) iv) b

(* Uniform additive bloating by [eps] in every direction (inter-sample
   flowpipe padding). Rounding_flow allow: rounding lo -. eps to nearest
   can never land above lo, so the result still contains the input. *)
let bloat eps b =
  if eps < 0.0 then invalid_arg "Box.bloat: negative epsilon";
  Array.map (fun iv -> Interval.make (Interval.lo iv -. eps) (Interval.hi iv +. eps)) b

(* Per-dimension bloating; same outward-padding argument as [bloat]. *)
let bloat_vec eps b =
  if dim b <> Array.length eps then invalid_arg "Box.bloat_vec: dimension mismatch";
  Array.mapi
    (fun i iv ->
      if eps.(i) < 0.0 then invalid_arg "Box.bloat_vec: negative epsilon";
      Interval.make (Interval.lo iv -. eps.(i)) (Interval.hi iv +. eps.(i)))
    b

(* Multiplicative inflation about the center, factor >= 1 grows the box.
   Rounding_flow allow: an inflation heuristic seeding Picard iteration —
   the downstream subset test certifies the candidate, not this step. *)
let scale_about_center factor b =
  Array.map
    (fun iv ->
      let c = Interval.mid iv and r = Interval.rad iv *. factor in
      Interval.make (c -. r) (c +. r))
    b

(* Split along the widest dimension into two halves. Rounding_flow
   allow: the split point need not be the exact midpoint — both halves
   share the same computed value, so their union is the input box. *)
let bisect b =
  let widest = ref 0 in
  Array.iteri
    (fun i iv -> if Interval.width iv > Interval.width b.(!widest) then widest := i)
    b;
  let iv = b.(!widest) in
  let m = Interval.mid iv in
  let left = Array.copy b and right = Array.copy b in
  left.(!widest) <- Interval.make (Interval.lo iv) m;
  right.(!widest) <- Interval.make m (Interval.hi iv);
  (left, right)

(* Even grid partition: [parts.(i)] cells along dimension i. Used by the
   X_I search (Algorithm 2) and by the Bernstein remainder sampling.
   Rounding_flow allow: every cell is separately certified by the
   downstream subset tests, so rounded cell edges cannot leak. *)
let partition parts b =
  if dim b <> Array.length parts then invalid_arg "Box.partition: dimension mismatch";
  Array.iter (fun p -> if p < 1 then invalid_arg "Box.partition: parts must be >= 1") parts;
  let n = dim b in
  let rec go i prefix =
    if i = n then [ Array.of_list (List.rev prefix) ]
    else begin
      let iv = b.(i) in
      let w = Interval.width iv /. float_of_int parts.(i) in
      List.concat_map
        (fun k ->
          let lo = Interval.lo iv +. (w *. float_of_int k) in
          let cell = Interval.make lo (lo +. w) in
          go (i + 1) (cell :: prefix))
        (List.init parts.(i) Fun.id)
    end
  in
  go 0 []

(* All 2^n corner points. *)
let corners b =
  let n = dim b in
  let rec go i prefix =
    if i = n then [ Array.of_list (List.rev prefix) ]
    else
      go (i + 1) (Interval.lo b.(i) :: prefix) @ go (i + 1) (Interval.hi b.(i) :: prefix)
  in
  go 0 []

let sample rng b = Dwv_util.Rng.uniform_in_box rng ~lo:(lo b) ~hi:(hi b)

(* Map normalized coordinates in [-1,1]^n to the box (Taylor-model domain
   convention). *)
let denormalize b z =
  if dim b <> Array.length z then invalid_arg "Box.denormalize: dimension mismatch";
  Array.mapi (fun i iv -> Interval.mid iv +. (Interval.rad iv *. z.(i))) b

let normalize b x =
  if dim b <> Array.length x then invalid_arg "Box.normalize: dimension mismatch";
  Array.mapi
    (fun i iv ->
      let r = Interval.rad iv in
      if r < 1e-300 then 0.0 else (x.(i) -. Interval.mid iv) /. r)
    b

let equal ?(eps = 0.0) a b =
  dim a = dim b
  && (let ok = ref true in
      Array.iteri (fun i iv -> if not (Interval.equal ~eps iv b.(i)) then ok := false) a;
      !ok)

let pp ppf b = Fmt.pf ppf "@[%a@]" Fmt.(array ~sep:(any " x ") Interval.pp) b
