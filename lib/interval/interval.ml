(* Interval arithmetic over IEEE doubles.

   Soundness model: operations use round-to-nearest and then widen the
   result outward by [slack] ulp-scale epsilons (see [widen_eps]). This is
   the standard compromise for research reimplementations of Flow*-style
   tools on platforms without directed rounding control; the paper's
   reachable-set over-approximations dominate this error by many orders of
   magnitude.

   Since PR 9 the model is machine-checked by the layer-5 Rounding_flow
   analysis (`dwv_lint --engine sound`): every bound produced with a
   rounding operation must route through [widen] (whose slack dominates
   the 1/2-ulp round-to-nearest error of the ops it covers) or through
   the Cert_ival ulp steppers. Exact IEEE operations — negation, abs,
   min/max selection, comparisons — need no compensation and are not
   widened. *)

type t = { lo : float; hi : float }

let make lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Interval.make: non-finite bound";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let of_point x = make x x

let zero = of_point 0.0
let one = of_point 1.0

let lo t = t.lo
let hi t = t.hi
let mid t = 0.5 *. (t.lo +. t.hi)
let rad t = 0.5 *. (t.hi -. t.lo)
let width t = t.hi -. t.lo

let is_point t = t.lo = t.hi

let widen_eps = 1e-14

(* Outward widening proportional to magnitude: the audited primitive
   every rounding operation below discharges through. The body itself is
   allowlisted in Rounding_flow (the root of trust): s >= eps >= 1e-14
   dominates the 1/2 ulp the final round-to-nearest subtraction can lose,
   and rounding lo -. s to nearest can never land above lo, so the result
   always strictly contains [t]. *)
let widen ?(eps = widen_eps) t =
  let s = eps *. Float.max 1.0 (Float.max (Float.abs t.lo) (Float.abs t.hi)) in
  { lo = t.lo -. s; hi = t.hi +. s }

let contains t x = t.lo <= x && x <= t.hi

let subset a b = b.lo <= a.lo && a.hi <= b.hi

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let intersects a b = a.lo <= b.hi && b.lo <= a.hi

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let neg t = { lo = -.t.hi; hi = -.t.lo }

let add a b = widen { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

let sub a b = widen { lo = a.lo -. b.hi; hi = a.hi -. b.lo }

let scale s t =
  if s >= 0.0 then widen { lo = s *. t.lo; hi = s *. t.hi }
  else widen { lo = s *. t.hi; hi = s *. t.lo }

let shift s t = widen { lo = t.lo +. s; hi = t.hi +. s }

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi and p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  widen
    { lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
      hi = Float.max (Float.max p1 p2) (Float.max p3 p4) }

let inv t =
  if contains t 0.0 then failwith "Interval.inv: interval contains zero";
  widen { lo = 1.0 /. t.hi; hi = 1.0 /. t.lo }

let div a b = mul a (inv b)

(* The true range of x^2 over any interval is non-negative, so clamping
   the widened lower bound back up to 0 stays an enclosure. *)
let sqr t =
  let l = Float.abs t.lo and h = Float.abs t.hi in
  let m = Float.max l h in
  let w =
    if contains t 0.0 then widen { lo = 0.0; hi = m *. m }
    else (let small = Float.min l h in widen { lo = small *. small; hi = m *. m })
  in
  { w with lo = Float.max 0.0 w.lo }

let rec pow_int t n =
  if n < 0 then inv (pow_int t (-n))
  else if n = 0 then one
  else if n = 1 then t
  else if n mod 2 = 0 then sqr (pow_int t (n / 2))
  else mul t (sqr (pow_int t (n / 2)))

let abs t =
  if t.lo >= 0.0 then t
  else if t.hi <= 0.0 then neg t
  else { lo = 0.0; hi = Float.max (-.t.lo) t.hi }

(* sqrt ranges are non-negative, so the widened lower bound clamps back
   up to 0 like [sqr]'s. *)
let sqrt_ t =
  if t.lo < 0.0 then failwith "Interval.sqrt: negative lower bound";
  let w = widen { lo = sqrt t.lo; hi = sqrt t.hi } in
  { w with lo = Float.max 0.0 w.lo }

(* Monotone increasing functions lift directly. Raw (round-to-nearest at
   the endpoints): every caller must widen the result — Rounding_flow
   classifies this lift itself as a raw computation. *)
let mono_incr f t = { lo = f t.lo; hi = f t.hi }

let exp_ t = widen (mono_incr exp t)

let log_ t =
  if t.lo <= 0.0 then failwith "Interval.log: non-positive lower bound";
  widen (mono_incr log t)

let tanh_ t = widen (mono_incr tanh t)

let sigmoid_ t = widen (mono_incr Dwv_util.Floatx.sigmoid t)

let arctan_ t = widen (mono_incr atan t)

(* sin over an interval: check whether any critical point pi/2 + k*pi lies
   inside; otherwise evaluate at endpoints. *)
let sin_ t =
  if width t >= 2.0 *. Float.pi then make (-1.0) 1.0
  else begin
    let contains_crit c =
      (* is there an integer k with t.lo <= c + 2k*pi <= t.hi ? *)
      let k = Float.round ((t.lo -. c) /. (2.0 *. Float.pi)) in
      let candidates = [ k -. 1.0; k; k +. 1.0 ] in
      List.exists
        (fun k -> let x = c +. (2.0 *. Float.pi *. k) in t.lo <= x && x <= t.hi)
        candidates
    in
    let slo = sin t.lo and shi = sin t.hi in
    let lo = if contains_crit (-.Float.pi /. 2.0) then -1.0 else Float.min slo shi in
    let hi = if contains_crit (Float.pi /. 2.0) then 1.0 else Float.max slo shi in
    widen (make lo hi)
  end

let cos_ t = sin_ (shift (Float.pi /. 2.0) t)

let max_ a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }
let min_ a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }

(* relu(x) = max(x, 0) pointwise. *)
let relu t = { lo = Float.max t.lo 0.0; hi = Float.max t.hi 0.0 }

(* Distance between intervals as sets (0 when they overlap). *)
let distance a b = Float.max 0.0 (Float.max (a.lo -. b.hi) (b.lo -. a.hi))

(* Length of the overlap (0 when disjoint). *)
let overlap_length a b =
  Float.max 0.0 (Float.min a.hi b.hi -. Float.max a.lo b.lo)

let sample a ~t = Dwv_util.Floatx.lerp a.lo a.hi t

let equal ?(eps = 0.0) a b =
  Float.abs (a.lo -. b.lo) <= eps && Float.abs (a.hi -. b.hi) <= eps

let pp ppf t = Fmt.pf ppf "[%.6g, %.6g]" t.lo t.hi
