(* Tensor-product Bernstein approximation over a box.

   This is the ReachNN-style polynomial abstraction of a neural-network
   controller: sample the network on the Bernstein grid, take the induced
   Bernstein polynomial, and bound the approximation error with a Lipschitz
   argument (optionally tightened by a finer sampling pass, mirroring
   ReachNN's sampling-based remainder estimation). *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box

let binomial n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 0 to k - 1 do
      acc := !acc *. float_of_int (n - i) /. float_of_int (i + 1)
    done;
    !acc
  end

(* B_{k,d}(t) over t in [0,1]. *)
let basis ~degree ~k t =
  if k < 0 || k > degree then invalid_arg "Bernstein.basis: k out of range";
  binomial degree k *. (t ** float_of_int k) *. ((1.0 -. t) ** float_of_int (degree - k))

type approx = {
  box : Box.t;                (* domain of approximation *)
  degrees : int array;        (* per-dimension degree d_i *)
  coeffs : float array;       (* tensor of f values on the grid, mixed radix *)
}

(* Mixed-radix indexing of the coefficient tensor: index i ranges over
   prod (d_j + 1) combinations. *)
let tensor_size degrees = Array.fold_left (fun acc d -> acc * (d + 1)) 1 degrees

let multi_index degrees flat =
  let n = Array.length degrees in
  let idx = Array.make n 0 in
  let rem = ref flat in
  for i = n - 1 downto 0 do
    let base = degrees.(i) + 1 in
    idx.(i) <- !rem mod base;
    rem := !rem / base
  done;
  idx

(* Chunked parallel tabulation with index-ordered recombination: each
   entry is a pure function of its flat index, so the pool schedule is
   invisible in the output (bit-identical to the sequential loop). The
   size floor keeps tiny grids off the queue. *)
let par_tabulate pool size f =
  match pool with
  | Some p when size >= 64 ->
    Dwv_parallel.Pool.mapi p (fun flat () -> f flat) (Array.make size ())
  | _ -> Array.init size f

let approximate ?pool ~f ~degrees box =
  if Array.length degrees <> Box.dim box then
    invalid_arg "Bernstein.approximate: dimension mismatch";
  Array.iter (fun d -> if d < 1 then invalid_arg "Bernstein.approximate: degree >= 1 required") degrees;
  let lo = Box.lo box and w = Box.widths box in
  let size = tensor_size degrees in
  let coeffs =
    par_tabulate pool size (fun flat ->
        let k = multi_index degrees flat in
        let x =
          Array.mapi
            (fun i ki -> lo.(i) +. (w.(i) *. float_of_int ki /. float_of_int degrees.(i)))
            k
        in
        f x)
  in
  { box; degrees; coeffs }

(* Evaluate the Bernstein polynomial at a point of the box. *)
let eval a x =
  let t = Array.mapi (fun i xi ->
      let l = I.lo a.box.(i) and w = I.width a.box.(i) in
      if w < 1e-300 then 0.0 else (xi -. l) /. w)
      x
  in
  let acc = ref 0.0 in
  Array.iteri
    (fun flat c ->
      let k = multi_index a.degrees flat in
      let weight = ref 1.0 in
      Array.iteri (fun i ki -> weight := !weight *. basis ~degree:a.degrees.(i) ~k:ki t.(i)) k;
      acc := !acc +. (c *. !weight))
    a.coeffs;
  !acc

(* The Bernstein polynomial's range lies within the hull of its
   coefficients (convex-combination property). *)
let coeff_range a =
  let lo = ref a.coeffs.(0) and hi = ref a.coeffs.(0) in
  Array.iter
    (fun c ->
      if c < !lo then lo := c;
      if c > !hi then hi := c)
    a.coeffs;
  I.make !lo !hi

(* 1-D Bernstein basis polynomial in the power basis:
   B_{k,d}(t) = sum_j C(d,k) C(d-k,j) (-1)^j t^{k+j}. *)
let basis_power_coeffs ~degree ~k =
  let c = Array.make (degree + 1) 0.0 in
  for j = 0 to degree - k do
    c.(k + j) <- binomial degree k *. binomial (degree - k) j *. (if j mod 2 = 0 then 1.0 else -1.0)
  done;
  c

(* Convert to a sparse power-basis polynomial in the normalized grid
   coordinates t in [0,1]^n. The Taylor-model verifier substitutes
   t_i = (x_i - lo_i)/w_i as Taylor models. *)
let to_poly a =
  let n = Array.length a.degrees in
  let p = ref (Poly.zero n) in
  Array.iteri
    (fun flat c ->
      if c <> 0.0 then begin
        let k = multi_index a.degrees flat in
        (* tensor product of 1-D basis expansions *)
        let term = ref (Poly.const n c) in
        Array.iteri
          (fun i ki ->
            let pc = basis_power_coeffs ~degree:a.degrees.(i) ~k:ki in
            let axis = ref (Poly.zero n) in
            Array.iteri
              (fun pow coeff ->
                if coeff <> 0.0 then begin
                  let e = Array.make n 0 in
                  e.(i) <- pow;
                  axis := Poly.add_term !axis e coeff
                end)
              pc;
            term := Poly.mul !term !axis)
          k;
        p := Poly.add !p !term
      end)
    a.coeffs;
  !p

(* Classical Lipschitz remainder: for f with partial Lipschitz constants
   L_i on the box, |B f - f| <= (3/2) sum_i L_i w_i / sqrt(d_i). *)
let remainder_lipschitz ~lipschitz a =
  let w = Box.widths a.box in
  let acc = ref 0.0 in
  Array.iteri
    (fun i d -> acc := !acc +. (lipschitz *. w.(i) /. sqrt (float_of_int d)))
    a.degrees;
  1.5 *. !acc

(* ReachNN-style sampled remainder: measure |f - B| on a finer grid of
   [samples_per_dim]^n points and pad with the Lipschitz variation between
   neighbouring sample points (both f and B are Lipschitz, B with constant
   <= L_B bounded by L via the convex-combination property up to grid
   effects; we conservatively use 2L). The result is a sound bound. *)
let remainder_sampled ?pool ~lipschitz ~f ~samples_per_dim a =
  if samples_per_dim < 2 then invalid_arg "Bernstein.remainder_sampled: need >= 2 samples";
  let w = Box.widths a.box in
  let n = Box.dim a.box in
  let h2 = ref 0.0 in
  Array.iter (fun wi -> h2 := !h2 +. Dwv_util.Floatx.sq (wi /. float_of_int (samples_per_dim - 1))) w;
  let pad = lipschitz *. sqrt !h2 in
  let lo = Box.lo a.box in
  (* The sample grid is enumerated by flat index (mixed radix, base
     [samples_per_dim], last dimension fastest — the same point order as
     the nested loops it replaces) so contiguous ranges can be swept by
     different domains. Each range reports its own maximum; the ranges'
     maxima combine to the grid maximum regardless of split, so the
     parallel and sequential sweeps agree bitwise. *)
  let total =
    let acc = ref 1 in
    for _ = 1 to n do acc := !acc * samples_per_dim done;
    !acc
  in
  let decode flat x =
    let rem = ref flat in
    for i = n - 1 downto 0 do
      let k = !rem mod samples_per_dim in
      rem := !rem / samples_per_dim;
      x.(i) <- lo.(i) +. (w.(i) *. float_of_int k /. float_of_int (samples_per_dim - 1))
    done
  in
  let range_max (first, last) =
    let x = Array.make n 0.0 in
    let worst = ref 0.0 in
    for flat = first to last - 1 do
      decode flat x;
      let err = Float.abs (f x -. eval a x) in
      if err > !worst then worst := err
    done;
    !worst
  in
  let worst =
    match pool with
    | Some p when total >= 64 ->
      let chunks = min total (Dwv_parallel.Pool.domains p * 4) in
      let ranges =
        Array.init chunks (fun c -> (c * total / chunks, (c + 1) * total / chunks))
      in
      let maxima = Dwv_parallel.Pool.map p range_max ranges in
      let acc = ref 0.0 in
      Array.iter (fun m -> if m > !acc then acc := m) maxima;
      !acc
    | _ -> range_max (0, total)
  in
  worst +. pad

(* Curvature (second-order) remainder: for f in C^2, the classical 1-D
   estimate |B_d f - f| <= w^2 sup|f''| / (8 d) tensorizes to
   sum_i w_i^2 M_i / (8 d_i) with M_i = sup |d^2 f/dx_i^2| over the box
   (Bernstein operators are positive with unit mass, so applying the
   operator along one axis cannot increase the other axes' derivative
   bounds). Quadratic in the box width, so unlike the Lipschitz pad it
   does not feed back into reachable-set growth. *)
let remainder_curvature ~hessian_diag a =
  if Array.length hessian_diag <> Box.dim a.box then
    invalid_arg "Bernstein.remainder_curvature: dimension mismatch";
  let w = Box.widths a.box in
  let acc = ref 0.0 in
  Array.iteri
    (fun i d ->
      acc := !acc +. (w.(i) *. w.(i) *. hessian_diag.(i) /. (8.0 *. float_of_int d)))
    a.degrees;
  !acc

(* Best available sound remainder. *)
let remainder ?pool ?hessian_diag ~lipschitz ~f ~samples_per_dim a =
  let base =
    Float.min (remainder_lipschitz ~lipschitz a)
      (remainder_sampled ?pool ~lipschitz ~f ~samples_per_dim a)
  in
  match hessian_diag with
  | Some h -> Float.min base (remainder_curvature ~hessian_diag:h a)
  | None -> base
