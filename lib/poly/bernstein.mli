(** Tensor-product Bernstein approximation over a box — the ReachNN-style
    polynomial abstraction of a neural-network controller. *)

(** Binomial coefficient as a float (0 outside the triangle). *)
val binomial : int -> int -> float

(** [basis ~degree ~k t] is B_{k,degree}(t) for t in [0,1]. *)
val basis : degree:int -> k:int -> float -> float

type approx = {
  box : Dwv_interval.Box.t;
  degrees : int array;
  coeffs : float array;  (** values of f on the Bernstein grid, mixed radix *)
}

(** [approximate ~f ~degrees box] samples [f] on the Bernstein grid of the
    given per-dimension degrees. [pool] splits the grid across domains
    (index-ordered recombination: the tensor is bit-identical to the
    sequential sampling; a nested call from inside a pool task degrades
    to the sequential loop). *)
val approximate :
  ?pool:Dwv_parallel.Pool.t ->
  f:(float array -> float) -> degrees:int array -> Dwv_interval.Box.t -> approx

(** Evaluate the Bernstein polynomial at a point of its box. *)
val eval : approx -> float array -> float

(** Hull of the coefficients — a sound enclosure of the Bernstein
    polynomial's range (convex-combination property). *)
val coeff_range : approx -> Dwv_interval.Interval.t

(** Power-basis expansion in the normalized coordinates t in [0,1]^n. *)
val to_poly : approx -> Poly.t

(** Sound remainder |B f − f| from a Lipschitz constant of f:
    (3/2)·Σᵢ L·wᵢ/√dᵢ. *)
val remainder_lipschitz : lipschitz:float -> approx -> float

(** ReachNN-style sampled remainder: max error on a finer grid plus a
    Lipschitz variation pad. Sound. [pool] sweeps contiguous index
    ranges of the sample grid on different domains; the range maxima
    combine to the same grid maximum for any split. *)
val remainder_sampled :
  ?pool:Dwv_parallel.Pool.t ->
  lipschitz:float -> f:(float array -> float) -> samples_per_dim:int -> approx -> float

(** Second-order remainder Σᵢ wᵢ²·Mᵢ/(8dᵢ) from per-axis bounds
    Mᵢ ≥ sup |∂²f/∂xᵢ²|; quadratic in the width, so it does not feed
    back into flowpipe growth. *)
val remainder_curvature : hessian_diag:float array -> approx -> float

(** Minimum of the applicable bounds above (still sound); [pool] is
    forwarded to {!remainder_sampled}. *)
val remainder :
  ?pool:Dwv_parallel.Pool.t ->
  ?hessian_diag:float array ->
  lipschitz:float ->
  f:(float array -> float) ->
  samples_per_dim:int ->
  approx ->
  float
