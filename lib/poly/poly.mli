(** Sparse multivariate polynomials (coefficient map over nibble-packed
    exponent keys: at most 15 variables, every exponent at most 15).
    Polynomial part of Taylor models; target of Bernstein approximation
    of NN controllers. *)

type t

(** The zero polynomial over [nvars] variables. *)
val zero : int -> t

(** Constant polynomial. *)
val const : int -> float -> t

(** [var nvars i] is the monomial zᵢ. *)
val var : int -> int -> t

(** Number of variables. *)
val nvars : t -> int

val is_zero : t -> bool

(** Number of stored monomials. *)
val num_terms : t -> int

(** Total degree (0 for the zero polynomial). *)
val degree : t -> int

(** Coefficient of the constant monomial. *)
val constant_term : t -> float

(** Add [c] times the monomial with the given exponents. *)
val add_term : t -> int array -> float -> t

(** Build from (exponents, coefficient) pairs. *)
val of_terms : int -> (int array * float) list -> t

(** All (exponents, coefficient) pairs. *)
val to_terms : t -> (int array * float) list

val neg : t -> t
val scale : float -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Integer power; raises on negative exponent. *)
val pow : t -> int -> t

(** [truncate ~order p] = (low, high): monomials of total degree <= order,
    and the dropped remainder polynomial. *)
val truncate : order:int -> t -> t * t

(** [split_var p i] = (terms without zᵢ, terms with zᵢ). *)
val split_var : t -> int -> t * t

(** [partition_coeffs keep p] = (terms whose coefficient satisfies [keep],
    the rest); both sides preserve term order. *)
val partition_coeffs : (float -> bool) -> t -> t * t

(** Largest absolute coefficient (0 for the zero polynomial). *)
val max_abs_coeff : t -> float

(** Numeric evaluation. *)
val eval : t -> float array -> float

(** Evaluation in an arbitrary commutative algebra ([var_pow i k] is the
    k-th power of variable i, k >= 1). *)
val eval_gen :
  t ->
  const:(float -> 'a) ->
  var_pow:(int -> int -> 'a) ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  'a

(** Sound interval enclosure of the range over a box. *)
val ieval : t -> Dwv_interval.Box.t -> Dwv_interval.Interval.t

(** Enclosure over the canonical Taylor-model domain [-1,1]ⁿ. *)
val bound_unit : t -> Dwv_interval.Interval.t

(** Partial derivative with respect to variable [i]. *)
val diff : t -> int -> t

(** Coefficientwise comparison with absolute tolerance. *)
val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
