(* Sparse multivariate polynomials: the polynomial part of Taylor models
   and the target representation for Bernstein approximations of neural
   network controllers.

   Representation: a monomial's exponent vector is packed into a single
   OCaml int, 4 bits per variable (so nvars <= 15 and every exponent
   <= 15 — far above the Taylor-model orders used anywhere in the
   reproduction). Packing makes monomial multiplication a plain integer
   addition and keeps the coefficient storage cheap, which is what makes
   long closed-loop flowpipes affordable.

   Terms live in a pair of parallel arrays sorted by strictly ascending
   packed key. The flowpipe kernel multiplies and merges polynomials in
   its innermost loop, so the representation is chosen for those two
   operations: [add] is a linear array merge and [mul] a hash
   accumulation, instead of the O(n log n) persistent-map rebuilds of the
   original Map-based implementation (~5x the verifier-call cost).

   Bit-compatibility contract: every operation performs the SAME float
   additions in the SAME order as the historical Map implementation
   (ascending-key iteration; in [mul], contributions to one result key
   accumulate in ascending order of the left factor's key), so flowpipes,
   certificates and counters are bit-identical across the swap. *)

module I = Dwv_interval.Interval

type t = {
  nvars : int;
  keys : int array;
  coeffs : float array;
  (* Lazily computed [-1,1]^n range enclosure. Purely a memo of the
     deterministic [bound_unit] below — concurrent writers race only to
     store the same immutable value, so the field is safe to share across
     domains. *)
  mutable bcache : I.t option;
}

let mk nvars keys coeffs = { nvars; keys; coeffs; bcache = None }

let max_vars = 15
let max_exponent = 15
let bits_per_var = 4

(* 0x111...1: one low bit per nibble, [nvars] nibbles. *)
let parity_mask nvars =
  let m = ref 0 in
  for _ = 1 to nvars do
    m := (!m lsl bits_per_var) lor 1
  done;
  !m

let check_nvars nvars =
  if nvars < 1 || nvars > max_vars then
    invalid_arg "Poly: nvars must be between 1 and 15"

let encode expts =
  let key = ref 0 in
  for i = Array.length expts - 1 downto 0 do
    let e = expts.(i) in
    if e < 0 || e > max_exponent then invalid_arg "Poly: exponent out of range [0, 15]";
    key := (!key lsl bits_per_var) lor e
  done;
  !key

let decode nvars key =
  Array.init nvars (fun i -> (key lsr (i * bits_per_var)) land max_exponent)

let exponent_of key i = (key lsr (i * bits_per_var)) land max_exponent

let key_degree nvars key =
  let d = ref 0 in
  for i = 0 to nvars - 1 do
    d := !d + exponent_of key i
  done;
  !d

let zero nvars =
  check_nvars nvars;
  mk nvars [||] [||]

let const nvars c =
  check_nvars nvars;
  if c = 0.0 then mk nvars [||] [||] else mk nvars [| 0 |] [| c |]

let var nvars i =
  check_nvars nvars;
  if i < 0 || i >= nvars then invalid_arg "Poly.var: index out of range";
  mk nvars [| 1 lsl (i * bits_per_var) |] [| 1.0 |]

let nvars p = p.nvars

let is_zero p = Array.length p.keys = 0

let num_terms p = Array.length p.keys

let degree p =
  let d = ref 0 in
  Array.iter (fun k -> d := max !d (key_degree p.nvars k)) p.keys;
  !d

let constant_term p =
  if Array.length p.keys > 0 && p.keys.(0) = 0 then p.coeffs.(0) else 0.0

(* Binary search for [key]; [Some i] when present, [None] with the
   insertion point otherwise. *)
let find_key p key =
  let lo = ref 0 and hi = ref (Array.length p.keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if p.keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length p.keys && p.keys.(!lo) = key then Ok !lo else Error !lo

let remove_at p i =
  let n = Array.length p.keys in
  let keys = Array.make (n - 1) 0 and coeffs = Array.make (n - 1) 0.0 in
  Array.blit p.keys 0 keys 0 i;
  Array.blit p.coeffs 0 coeffs 0 i;
  Array.blit p.keys (i + 1) keys i (n - 1 - i);
  Array.blit p.coeffs (i + 1) coeffs i (n - 1 - i);
  mk p.nvars keys coeffs

let insert_at p i key c =
  let n = Array.length p.keys in
  let keys = Array.make (n + 1) 0 and coeffs = Array.make (n + 1) 0.0 in
  Array.blit p.keys 0 keys 0 i;
  Array.blit p.coeffs 0 coeffs 0 i;
  keys.(i) <- key;
  coeffs.(i) <- c;
  Array.blit p.keys i keys (i + 1) (n - i);
  Array.blit p.coeffs i coeffs (i + 1) (n - i);
  mk p.nvars keys coeffs

let add_key p key c =
  match find_key p key with
  | Ok i ->
    let s = p.coeffs.(i) +. c in
    if s = 0.0 then remove_at p i
    else begin
      let coeffs = Array.copy p.coeffs in
      coeffs.(i) <- s;
      mk p.nvars p.keys coeffs
    end
  | Error i -> if c = 0.0 then p else insert_at p i key c

let add_term p expts c =
  if Array.length expts <> p.nvars then invalid_arg "Poly.add_term: arity mismatch";
  add_key p (encode expts) c

let of_terms nvars l = List.fold_left (fun p (e, c) -> add_term p e c) (zero nvars) l

(* Descending key order (the order the historical Map fold produced). *)
let to_terms p =
  let acc = ref [] in
  for i = 0 to Array.length p.keys - 1 do
    acc := (decode p.nvars p.keys.(i), p.coeffs.(i)) :: !acc
  done;
  !acc

let map_coeffs f p =
  let n = Array.length p.keys in
  let keys = Array.make n 0 and coeffs = Array.make n 0.0 in
  let m = ref 0 in
  for i = 0 to n - 1 do
    let c' = f p.coeffs.(i) in
    if c' <> 0.0 then begin
      keys.(!m) <- p.keys.(i);
      coeffs.(!m) <- c';
      incr m
    end
  done;
  if !m = n then mk p.nvars keys coeffs
  else mk p.nvars (Array.sub keys 0 !m) (Array.sub coeffs 0 !m)

let neg p = map_coeffs (fun c -> -.c) p

let scale s p = if s = 0.0 then zero p.nvars else map_coeffs (fun c -> s *. c) p

(* Linear merge of the two sorted term arrays; on a shared key the sum is
   a.coeff +. b.coeff (left operand first, as Map.union evaluated it) and
   an exactly-zero sum drops the term. *)
let add a b =
  if a.nvars <> b.nvars then invalid_arg "Poly.add: arity mismatch";
  let na = Array.length a.keys and nb = Array.length b.keys in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let keys = Array.make (na + nb) 0 and coeffs = Array.make (na + nb) 0.0 in
    let i = ref 0 and j = ref 0 and m = ref 0 in
    while !i < na && !j < nb do
      let ka = a.keys.(!i) and kb = b.keys.(!j) in
      if ka < kb then begin
        keys.(!m) <- ka; coeffs.(!m) <- a.coeffs.(!i); incr i; incr m
      end
      else if kb < ka then begin
        keys.(!m) <- kb; coeffs.(!m) <- b.coeffs.(!j); incr j; incr m
      end
      else begin
        let s = a.coeffs.(!i) +. b.coeffs.(!j) in
        if s <> 0.0 then begin keys.(!m) <- ka; coeffs.(!m) <- s; incr m end;
        incr i; incr j
      end
    done;
    while !i < na do
      keys.(!m) <- a.keys.(!i); coeffs.(!m) <- a.coeffs.(!i); incr i; incr m
    done;
    while !j < nb do
      keys.(!m) <- b.keys.(!j); coeffs.(!m) <- b.coeffs.(!j); incr j; incr m
    done;
    mk a.nvars (Array.sub keys 0 !m) (Array.sub coeffs 0 !m)
  end

let sub a b = add a (neg b)

(* Monomial product = key addition (no nibble carries as long as the
   combined per-variable exponents stay <= 15, guaranteed for the orders
   used by Taylor models).

   The na*nb key/coefficient products accumulate into a per-domain
   open-addressing scratch table (plain int and float arrays: no boxing,
   no per-operation allocation), then the occupied slots are gathered and
   LSD-radix-sorted by key into the output arrays. This is the innermost
   loop of the whole flowpipe kernel; with ~5k products per call the
   linear-probe accumulate plus byte-wise radix extraction is ~5x faster
   than either a Hashtbl or a Johnson heap merge.

   Bit-compatibility with the historical Map implementation: products are
   generated outer-left / inner-right exactly as before, so the
   contributions to one result key arrive in the same order and the
   coefficient sums round identically. The Map's M.update quirks are
   preserved: a running per-key sum that hits exactly 0.0 evicts the
   entry and a later contribution restarts from its own value; a
   contribution landing on an empty slot is kept even when it is itself
   0.0. *)

(* slot states in [sstate] *)
let st_empty = '\000'
let st_present = '\001'
let st_evicted = '\002' (* key reserved so probe chains stay valid, value absent *)

type mul_scratch = {
  mutable cap : int; (* power of two, 0 before first use *)
  mutable skeys : int array;
  mutable svals : float array;
  mutable sstate : Bytes.t;
  mutable touched : int array; (* slots claimed during the current call *)
  (* radix ping-pong buffers *)
  mutable rk : int array;
  mutable rv : float array;
  mutable rk2 : int array;
  mutable rv2 : float array;
  counts : int array; (* 256 radix histogram *)
}

let scratch_key : mul_scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { cap = 0;
        skeys = [||];
        svals = [||];
        sstate = Bytes.empty;
        touched = [||];
        rk = [||];
        rv = [||];
        rk2 = [||];
        rv2 = [||];
        counts = Array.make 256 0 })

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

let scratch_resize s cap =
  s.cap <- cap;
  s.skeys <- Array.make cap 0;
  s.svals <- Array.make cap 0.0;
  s.sstate <- Bytes.make cap st_empty;
  s.touched <- Array.make cap 0;
  s.rk <- Array.make cap 0;
  s.rv <- Array.make cap 0.0;
  s.rk2 <- Array.make cap 0;
  s.rv2 <- Array.make cap 0.0

(* Multiplicative hash of a packed key into [0, cap). *)
let slot_hash k cap = (k * 0x2545F4914F6CDD1D) lsr 20 land (cap - 1)

let mul a b =
  if a.nvars <> b.nvars then invalid_arg "Poly.mul: arity mismatch";
  let na = Array.length a.keys and nb = Array.length b.keys in
  if na = 0 then a
  else if nb = 0 then mk a.nvars [||] [||]
  else if na = 1 then begin
    (* scalar-ish fast path: one contribution per key, keys stay sorted *)
    let ka = a.keys.(0) and ca = a.coeffs.(0) in
    mk a.nvars (Array.map (fun kb -> ka + kb) b.keys) (Array.map (fun cb -> ca *. cb) b.coeffs)
  end
  else if nb = 1 then begin
    let kb = b.keys.(0) and cb = b.coeffs.(0) in
    mk a.nvars (Array.map (fun ka -> ka + kb) a.keys) (Array.map (fun ca -> ca *. cb) a.coeffs)
  end
  else begin
    let s = Domain.DLS.get scratch_key in
    (* load factor <= 1/2 even if every product lands on a fresh key *)
    if s.cap < 2 * na * nb then scratch_resize s (next_pow2 (2 * na * nb) 1024);
    let skeys = s.skeys and svals = s.svals and sstate = s.sstate and touched = s.touched in
    let cap = s.cap in
    let nt = ref 0 in
    let maxkey = ref 0 in
    for i = 0 to na - 1 do
      let ka = a.keys.(i) and ca = a.coeffs.(i) in
      for j = 0 to nb - 1 do
        let k = ka + b.keys.(j) in
        let c = ca *. b.coeffs.(j) in
        let h = ref (slot_hash k cap) in
        while Bytes.unsafe_get sstate !h <> st_empty && Array.unsafe_get skeys !h <> k do
          h := (!h + 1) land (cap - 1)
        done;
        let h = !h in
        (match Bytes.unsafe_get sstate h with
        | c0 when c0 = st_empty ->
          Bytes.unsafe_set sstate h st_present;
          Array.unsafe_set skeys h k;
          Array.unsafe_set svals h c;
          touched.(!nt) <- h;
          incr nt;
          if k > !maxkey then maxkey := k
        | c0 when c0 = st_present ->
          let sum = Array.unsafe_get svals h +. c in
          if sum = 0.0 then Bytes.unsafe_set sstate h st_evicted
          else Array.unsafe_set svals h sum
        | _ (* evicted: restart from this contribution *) ->
          Bytes.unsafe_set sstate h st_present;
          Array.unsafe_set svals h c)
      done
    done;
    (* gather live slots (resetting the table for the next call) *)
    let rk = s.rk and rv = s.rv in
    let n = ref 0 in
    for t = 0 to !nt - 1 do
      let h = touched.(t) in
      if Bytes.unsafe_get sstate h = st_present then begin
        rk.(!n) <- skeys.(h);
        rv.(!n) <- svals.(h);
        incr n
      end;
      Bytes.unsafe_set sstate h st_empty
    done;
    let n = !n in
    (* LSD radix sort of (rk, rv) by key, one byte per pass *)
    let counts = s.counts in
    let src_k = ref rk and src_v = ref rv and dst_k = ref s.rk2 and dst_v = ref s.rv2 in
    let shift = ref 0 in
    while !maxkey lsr !shift > 0 do
      Array.fill counts 0 256 0;
      let sk = !src_k in
      for t = 0 to n - 1 do
        let d = (Array.unsafe_get sk t) lsr !shift land 0xff in
        counts.(d) <- counts.(d) + 1
      done;
      let pos = ref 0 in
      for d = 0 to 255 do
        let c = counts.(d) in
        counts.(d) <- !pos;
        pos := !pos + c
      done;
      let sv = !src_v and dk = !dst_k and dv = !dst_v in
      for t = 0 to n - 1 do
        let k = Array.unsafe_get sk t in
        let d = k lsr !shift land 0xff in
        let p = counts.(d) in
        counts.(d) <- p + 1;
        Array.unsafe_set dk p k;
        Array.unsafe_set dv p (Array.unsafe_get sv t)
      done;
      let tk = !src_k and tv = !src_v in
      src_k := !dst_k;
      src_v := !dst_v;
      dst_k := tk;
      dst_v := tv;
      shift := !shift + 8
    done;
    mk a.nvars (Array.sub !src_k 0 n) (Array.sub !src_v 0 n)
  end

let rec pow p n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent"
  else if n = 0 then const p.nvars 1.0
  else if n = 1 then p
  else begin
    let half = pow p (n / 2) in
    let sq = mul half half in
    if n mod 2 = 0 then sq else mul p sq
  end

(* Split by a key predicate, preserving ascending order on both sides. *)
let partition_keys pred p =
  let n = Array.length p.keys in
  let kk = Array.make n 0 and kc = Array.make n 0.0 in
  let dk = Array.make n 0 and dc = Array.make n 0.0 in
  let nk = ref 0 and nd = ref 0 in
  for i = 0 to n - 1 do
    if pred p.keys.(i) then begin
      kk.(!nk) <- p.keys.(i); kc.(!nk) <- p.coeffs.(i); incr nk
    end
    else begin
      dk.(!nd) <- p.keys.(i); dc.(!nd) <- p.coeffs.(i); incr nd
    end
  done;
  ( mk p.nvars (Array.sub kk 0 !nk) (Array.sub kc 0 !nk),
    mk p.nvars (Array.sub dk 0 !nd) (Array.sub dc 0 !nd) )

(* Split into (terms of degree <= order, terms of degree > order); the
   second component is what a Taylor model moves into its remainder. *)
let truncate ~order p = partition_keys (fun k -> key_degree p.nvars k <= order) p

(* Split into (terms not involving variable i, terms involving it); used
   to retire a disturbance symbol by bounding its contribution. *)
let split_var p i =
  if i < 0 || i >= p.nvars then invalid_arg "Poly.split_var: index out of range";
  partition_keys (fun k -> exponent_of k i = 0) p

(* Split by the coefficient-magnitude predicate [keep]; ascending order
   preserved on both sides (the sweeping fast path of Taylor models). *)
let partition_coeffs keep p =
  let n = Array.length p.keys in
  let kk = Array.make n 0 and kc = Array.make n 0.0 in
  let dk = Array.make n 0 and dc = Array.make n 0.0 in
  let nk = ref 0 and nd = ref 0 in
  for i = 0 to n - 1 do
    if keep p.coeffs.(i) then begin
      kk.(!nk) <- p.keys.(i); kc.(!nk) <- p.coeffs.(i); incr nk
    end
    else begin
      dk.(!nd) <- p.keys.(i); dc.(!nd) <- p.coeffs.(i); incr nd
    end
  done;
  ( mk p.nvars (Array.sub kk 0 !nk) (Array.sub kc 0 !nk),
    mk p.nvars (Array.sub dk 0 !nd) (Array.sub dc 0 !nd) )

(* Largest |coefficient| (0 for the zero polynomial). *)
let max_abs_coeff p =
  let m = ref 0.0 in
  Array.iter (fun c -> m := Float.max !m (Float.abs c)) p.coeffs;
  !m

let eval p x =
  if Array.length x <> p.nvars then invalid_arg "Poly.eval: arity mismatch";
  let acc = ref 0.0 in
  for t = 0 to Array.length p.keys - 1 do
    let k = p.keys.(t) in
    let term = ref p.coeffs.(t) in
    for i = 0 to p.nvars - 1 do
      for _ = 1 to exponent_of k i do
        term := !term *. x.(i)
      done
    done;
    acc := !acc +. !term
  done;
  !acc

(* Generic evaluation in any commutative algebra; used to substitute Taylor
   models (or intervals) for the variables. [var_pow i k] must be the k-th
   power of variable i with k >= 1. *)
let eval_gen p ~const ~var_pow ~add ~mul =
  let acc = ref (const 0.0) in
  for t = 0 to Array.length p.keys - 1 do
    let key = p.keys.(t) in
    let term = ref (const p.coeffs.(t)) in
    for i = 0 to p.nvars - 1 do
      let k = exponent_of key i in
      if k > 0 then term := mul !term (var_pow i k)
    done;
    acc := add !acc !term
  done;
  !acc

(* Sound range enclosure of p over the box (interval evaluation of each
   monomial; tight powers via Interval.pow_int). *)
let ieval p (box : Dwv_interval.Box.t) =
  if Dwv_interval.Box.dim box <> p.nvars then invalid_arg "Poly.ieval: arity mismatch";
  let acc = ref I.zero in
  for t = 0 to Array.length p.keys - 1 do
    let key = p.keys.(t) in
    let term = ref (I.of_point p.coeffs.(t)) in
    for i = 0 to p.nvars - 1 do
      let k = exponent_of key i in
      if k > 0 then term := I.mul !term (I.pow_int box.(i) k)
    done;
    acc := I.add !acc !term
  done;
  !acc

(* Enclosure over the canonical Taylor-model domain [-1,1]^n, on the fast
   path: a monomial with all exponents even ranges over [0, c] (or [c, 0]),
   any other monomial over [-|c|, |c|]. Pure float arithmetic. *)
let bound_unit p =
  match p.bcache with
  | Some b -> b
  | None ->
  let mask = parity_mask p.nvars in
  let lo = ref 0.0 and hi = ref 0.0 in
  for i = 0 to Array.length p.keys - 1 do
    let key = p.keys.(i) and c = p.coeffs.(i) in
    if key = 0 then begin
      (* constant monomial: exact *)
      lo := !lo +. c;
      hi := !hi +. c
    end
    else if key land mask = 0 then begin
      (* all exponents even (some positive): monomial value in [0, 1] *)
      if c >= 0.0 then hi := !hi +. c else lo := !lo +. c
    end
    else begin
      let a = Float.abs c in
      lo := !lo -. a;
      hi := !hi +. a
    end
  done;
  let b = I.make !lo !hi in
  p.bcache <- Some b;
  b

(* Partial derivative. Differentiating never merges distinct monomials
   (the key shift is injective on terms with a positive exponent), so the
   ascending key order survives the per-term map. *)
let diff p i =
  if i < 0 || i >= p.nvars then invalid_arg "Poly.diff: index out of range";
  let n = Array.length p.keys in
  let keys = Array.make n 0 and coeffs = Array.make n 0.0 in
  let m = ref 0 in
  for t = 0 to n - 1 do
    let e = exponent_of p.keys.(t) i in
    if e > 0 then begin
      let c = p.coeffs.(t) *. float_of_int e in
      if c <> 0.0 then begin
        keys.(!m) <- p.keys.(t) - (1 lsl (i * bits_per_var));
        coeffs.(!m) <- c;
        incr m
      end
    end
  done;
  mk p.nvars (Array.sub keys 0 !m) (Array.sub coeffs 0 !m)

let equal ?(eps = 0.0) a b =
  a.nvars = b.nvars
  &&
  let d = sub a b in
  Array.for_all (fun c -> Float.abs c <= eps) d.coeffs

let pp ppf p =
  if is_zero p then Fmt.string ppf "0"
  else
    Array.iteri
      (fun t key ->
        if t > 0 then Fmt.string ppf " + ";
        Fmt.pf ppf "%.6g" p.coeffs.(t);
        for i = 0 to p.nvars - 1 do
          let k = exponent_of key i in
          if k > 0 then Fmt.pf ppf "*z%d^%d" i k
        done)
      p.keys
