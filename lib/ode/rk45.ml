(* Dormand-Prince 5(4) adaptive Runge-Kutta (the ode45 scheme): embedded
   4th/5th-order pair with proportional step control. Used where fixed-step
   RK4 would need very small steps for accuracy (stiff-ish learned
   closed loops, long evaluation horizons); the fixed-step RK4 remains the
   default for the RL environments, where per-step cost dominates. *)

module Expr = Dwv_expr.Expr

(* Butcher tableau of Dormand-Prince 5(4). *)
let c2 = 1.0 /. 5.0
let c3 = 3.0 /. 10.0
let c4 = 4.0 /. 5.0
let c5 = 8.0 /. 9.0

let a21 = 1.0 /. 5.0
let a31 = 3.0 /. 40.0
let a32 = 9.0 /. 40.0
let a41 = 44.0 /. 45.0
let a42 = -56.0 /. 15.0
let a43 = 32.0 /. 9.0
let a51 = 19372.0 /. 6561.0
let a52 = -25360.0 /. 2187.0
let a53 = 64448.0 /. 6561.0
let a54 = -212.0 /. 729.0
let a61 = 9017.0 /. 3168.0
let a62 = -355.0 /. 33.0
let a63 = 46732.0 /. 5247.0
let a64 = 49.0 /. 176.0
let a65 = -5103.0 /. 18656.0

(* 5th-order solution weights (also the a7j row: FSAL). *)
let b1 = 35.0 /. 384.0
let b3 = 500.0 /. 1113.0
let b4 = 125.0 /. 192.0
let b5 = -2187.0 /. 6784.0
let b6 = 11.0 /. 84.0

(* embedded 4th-order weights *)
let e1 = 5179.0 /. 57600.0
let e3 = 7571.0 /. 16695.0
let e4 = 393.0 /. 640.0
let e5 = -92097.0 /. 339200.0
let e6 = 187.0 /. 2100.0
let e7 = 1.0 /. 40.0

let combine x coeffs h =
  Array.mapi
    (fun i xi ->
      let acc = ref xi in
      List.iter (fun (c, (k : float array)) -> acc := !acc +. (h *. c *. k.(i))) coeffs;
      !acc)
    x

(* One trial step of size h: returns (5th-order solution, error estimate
   in the scaled max norm). *)
let trial ~f ~u ~rtol ~atol x h =
  let eval x = Expr.eval_vec f ~x ~u in
  let k1 = eval x in
  let k2 = eval (combine x [ (a21, k1) ] h) in
  let k3 = eval (combine x [ (a31, k1); (a32, k2) ] h) in
  let k4 = eval (combine x [ (a41, k1); (a42, k2); (a43, k3) ] h) in
  let k5 = eval (combine x [ (a51, k1); (a52, k2); (a53, k3); (a54, k4) ] h) in
  let k6 =
    eval (combine x [ (a61, k1); (a62, k2); (a63, k3); (a64, k4); (a65, k5) ] h)
  in
  let x5 = combine x [ (b1, k1); (b3, k3); (b4, k4); (b5, k5); (b6, k6) ] h in
  let k7 = eval x5 in
  let x4 =
    combine x [ (e1, k1); (e3, k3); (e4, k4); (e5, k5); (e6, k6); (e7, k7) ] h
  in
  let err = ref 0.0 in
  Array.iteri
    (fun i v5 ->
      let scale = atol +. (rtol *. Float.max (Float.abs x.(i)) (Float.abs v5)) in
      err := Float.max !err (Float.abs (v5 -. x4.(i)) /. scale))
    x5;
  (x5, !err)

(* ignore c-coefficients: u is constant over the step (ZOH), so stage
   times never enter the right-hand side *)
let _ = (c2, c3, c4, c5)

type stats = { steps_accepted : int; steps_rejected : int }

(* Exhausting the step budget (a stiff learned closed loop under some
   probe θ) and a trajectory escaping to NaN/∞ are both expected failure
   modes of the learning loop, so they are returned as structured errors
   rather than raised: one stiff probe must not kill a whole run. *)
let integrate ?(rtol = 1e-8) ?(atol = 1e-10) ?(h0 = 1e-3) ?(max_steps = 100_000) ~f ~u
    ~duration x0 =
  if duration < 0.0 then invalid_arg "Rk45.integrate: negative duration";
  let where = "Rk45.integrate" in
  let x = ref (Array.copy x0) in
  let t = ref 0.0 in
  let h = ref (Float.min h0 (Float.max duration 1e-300)) in
  let accepted = ref 0 and rejected = ref 0 in
  let count = ref 0 in
  let error = ref None in
  while !error = None && !t < duration && !count < max_steps do
    incr count;
    let h_eff = Float.min !h (duration -. !t) in
    let x5, err = trial ~f ~u ~rtol ~atol !x h_eff in
    if not (Float.is_finite err && Array.for_all Float.is_finite x5) then
      error :=
        Some (Dwv_robust.Dwv_error.non_finite ~where ~step:!count "trial state")
    else begin
      if err <= 1.0 then begin
        x := x5;
        t := !t +. h_eff;
        incr accepted
      end
      else incr rejected;
      (* proportional controller with the usual safety factor and clamps *)
      let factor = 0.9 *. (Float.max err 1e-10 ** -0.2) in
      h := h_eff *. Dwv_util.Floatx.clamp ~lo:0.2 ~hi:5.0 factor
    end
  done;
  match !error with
  | Some e -> Error e
  | None ->
    if !t < duration then
      Error
        (Dwv_robust.Dwv_error.budget_exhausted ~where ~which:"step" ~used:!count
           ~limit:max_steps ())
    else Ok (!x, { steps_accepted = !accepted; steps_rejected = !rejected })
