(** Dormand–Prince 5(4) adaptive Runge–Kutta (ode45) for x' = f(x, u)
    with u held constant. *)

type stats = { steps_accepted : int; steps_rejected : int }

(** Integrate over [0, duration] with adaptive steps. Returns
    [Error (Budget_exhausted _)] when [max_steps] (default 100000) runs
    out before the horizon (stiff probe) and [Error (Non_finite _)] when
    the trajectory escapes to NaN/∞ — a stiff or diverging probe must
    not kill the learning run. Raises [Invalid_argument] only on a
    negative [duration] (a programming error, not a runtime mode). *)
val integrate :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  f:Dwv_expr.Expr.t array ->
  u:float array ->
  duration:float ->
  float array ->
  (float array * stats, Dwv_robust.Dwv_error.t) result
