(** Symbolic expressions for system dynamics f(x, u).

    One AST, four interpreters: numeric evaluation, interval evaluation,
    symbolic differentiation (Lie derivatives / Jacobians), and — via
    {!fold} — Taylor-model evaluation in [dwv_taylor].

    Expressions are HASH-CONSED: the smart constructors intern every
    node through a global table, so structurally equal values are
    physically equal, {!equal} is a pointer compare, and {!hash} is a
    precomputed field read. Pattern-match via the [node] field; build
    only through the smart constructors (the record is [private]). *)

type t = private { node : node; hash : int; id : int }

and node =
  | Const of float
  | Var of int      (** state component x_i *)
  | Input of int    (** control component u_j (constant within a step) *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Pow of t * int
  | Sin of t
  | Cos of t
  | Exp of t
  | Tanh of t

(** {1 Smart constructors (constant folding)} *)

val const : float -> t
val var : int -> t
val input : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Raises [Invalid_argument] on division by the constant zero. *)
val div : t -> t -> t

val neg : t -> t

(** Integer power; raises on a negative exponent. *)
val pow : t -> int -> t

val sin_ : t -> t
val cos_ : t -> t
val exp_ : t -> t
val tanh_ : t -> t

(** Multiply by a scalar constant. *)
val scale : float -> t -> t

(** {1 Interpreters} *)

(** Catamorphism: interpret the AST in an arbitrary algebra. *)
val fold :
  const:(float -> 'a) ->
  var:(int -> 'a) ->
  input:(int -> 'a) ->
  add:('a -> 'a -> 'a) ->
  sub:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  div:('a -> 'a -> 'a) ->
  neg:('a -> 'a) ->
  pow:('a -> int -> 'a) ->
  sin:('a -> 'a) ->
  cos:('a -> 'a) ->
  exp:('a -> 'a) ->
  tanh:('a -> 'a) ->
  t ->
  'a

(** Numeric evaluation at state [x] and input [u]. *)
val eval : t -> x:float array -> u:float array -> float

(** Interval evaluation (sound range enclosure). *)
val ieval :
  t ->
  x:Dwv_interval.Interval.t array ->
  u:Dwv_interval.Interval.t array ->
  Dwv_interval.Interval.t

type wrt = Wrt_var of int | Wrt_input of int

(** Symbolic partial derivative. *)
val diff : t -> wrt:wrt -> t

(** Lie derivative of [g] along the field [f] (inputs held constant):
    L_f g = Σᵢ (∂g/∂xᵢ) fᵢ. *)
val lie_derivative : f:t array -> t -> t

(** Symbolic Jacobian ∂f/∂x, [n] the state dimension. *)
val jacobian_x : t array -> n:int -> t array array

(** Symbolic Jacobian ∂f/∂u, [m] the input dimension. *)
val jacobian_u : t array -> m:int -> t array array

val eval_vec : t array -> x:float array -> u:float array -> float array

val ieval_vec :
  t array ->
  x:Dwv_interval.Interval.t array ->
  u:Dwv_interval.Interval.t array ->
  Dwv_interval.Interval.t array

(** Structural equality — O(1): hash-consing makes it a physical
    identity check. Float constants keep [Float.equal] semantics (NaN is
    canonicalized at construction so [equal (const nan) (const nan)] is
    true; -0. and 0. stay distinct), so ([equal], [hash]) is a valid
    hashtable equality. *)
val equal : t -> t -> bool

(** Precomputed structural hash (field read). Stable across rebuilds of
    the same structure — it is computed from child hashes, not intern
    ids — so it can key persistent memo tables. *)
val hash : t -> int

(** Unique id of the interned node within this process. Ids are
    allocated globally (one intern table shared by all domains), so two
    expressions are structurally equal iff their ids coincide. *)
val id : t -> int

(** Number of distinct nodes interned so far (diagnostics/tests: a
    rebuild of an already-interned structure must not grow this). *)
val interned : unit -> int

(** Node count (expression size). *)
val size : t -> int

val pp : Format.formatter -> t -> unit
