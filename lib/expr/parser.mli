(** Parser for dynamics expressions, e.g.
    ["(1 - x0^2) * x1 - x0 + u0"] (the Van der Pol x₂'). State variables
    are [xN], inputs [uN]; functions sin, cos, exp, tanh; [pi] is a
    constant; [^] takes a non-negative integer exponent. *)

(** Parse one expression. Error messages name the offending token and its
    character offset, e.g. ["at offset 3: expected ')' but found '+'"]. *)
val parse : string -> (Expr.t, string) result

(** Raises [Invalid_argument] on parse errors (same positioned message,
    prefixed with ["Parser.parse_exn: "]). *)
val parse_exn : string -> Expr.t

(** Parse a whole right-hand side (one expression per state component). *)
val parse_system : string list -> (Expr.t array, string) result
