(* A small recursive-descent parser for dynamics expressions, so systems
   can be defined in configuration text rather than OCaml:

     expr   := term  (('+' | '-') term)*
     term   := factor (('*' | '/') factor)*
     factor := atom ('^' nat)?
     atom   := number | xN | uN | fn '(' expr ')' | '(' expr ')' | '-' factor
     fn     := sin | cos | exp | tanh

   Example: "(1 - x0^2) * x1 - x0 + u0" is the Van der Pol x2'.

   Errors carry the character offset of the offending token so that tools
   (the static analyzer, the CLI) can point at the exact location. *)

type token =
  | Num of float
  | Var of int
  | Input of int
  | Fn of string
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | Lparen
  | Rparen

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* Every error message leads with "at offset N" (0-based index into the
   source string); [fail_at] keeps the format uniform. *)
let fail_at pos fmt = Fmt.kstr (fun s -> fail "at offset %d: %s" pos s) fmt

let describe_token = function
  | Num v -> Fmt.str "number %g" v
  | Var i -> Fmt.str "'x%d'" i
  | Input j -> Fmt.str "'u%d'" j
  | Fn name -> Fmt.str "function %S" name
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Caret -> "'^'"
  | Lparen -> "'('"
  | Rparen -> "')'"

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

(* Tokens are paired with the offset of their first character. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let push start t = tokens := (t, start) :: !tokens in
  let peek () = if !pos < n then Some src.[!pos] else None in
  while !pos < n do
    let start = !pos in
    match src.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '+' -> push start Plus; incr pos
    | '-' -> push start Minus; incr pos
    | '*' -> push start Star; incr pos
    | '/' -> push start Slash; incr pos
    | '^' -> push start Caret; incr pos
    | '(' -> push start Lparen; incr pos
    | ')' -> push start Rparen; incr pos
    | c when is_digit c || c = '.' ->
      while
        match peek () with
        | Some c -> is_digit c || c = '.' || c = 'e' || c = 'E'
                    || ((c = '+' || c = '-')
                        && !pos > start
                        && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E'))
        | None -> false
      do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      (match float_of_string_opt text with
      | Some v -> push start (Num v)
      | None -> fail_at start "invalid number %S" text)
    | c when is_alpha c ->
      while
        match peek () with Some c -> is_alpha c || is_digit c | None -> false
      do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      let index_of prefix =
        let suffix = String.sub word 1 (String.length word - 1) in
        match int_of_string_opt suffix with
        | Some i when i >= 0 -> i
        | _ -> fail_at start "expected an index after %S in %S" prefix word
      in
      (match word.[0] with
      | 'x' when String.length word > 1 -> push start (Var (index_of "x"))
      | 'u' when String.length word > 1 -> push start (Input (index_of "u"))
      | _ ->
        (match word with
        | "sin" | "cos" | "exp" | "tanh" -> push start (Fn word)
        | "pi" -> push start (Num Float.pi)
        | _ -> fail_at start "unknown identifier %S" word))
    | c -> fail_at start "unexpected character %C" c
  done;
  (List.rev !tokens, n)

(* Recursive descent over a mutable token stream; [eof] is the offset just
   past the source, reported for truncated input. *)
let parse_tokens (tokens, eof) =
  let stream = ref tokens in
  let peek () = match !stream with [] -> None | (t, _) :: _ -> Some t in
  let pos () = match !stream with [] -> eof | (_, p) :: _ -> p in
  let advance () =
    match !stream with
    | [] -> fail_at eof "unexpected end of input"
    | _ :: r -> stream := r
  in
  let expect t name =
    match !stream with
    | (t', _) :: _ when t' = t -> advance ()
    | (t', p) :: _ -> fail_at p "expected %s but found %s" name (describe_token t')
    | [] -> fail_at eof "expected %s but input ended" name
  in
  let rec expr () =
    let acc = ref (term ()) in
    let rec loop () =
      match peek () with
      | Some Plus ->
        advance ();
        acc := Expr.add !acc (term ());
        loop ()
      | Some Minus ->
        advance ();
        acc := Expr.sub !acc (term ());
        loop ()
      | _ -> ()
    in
    loop ();
    !acc
  and term () =
    let acc = ref (factor ()) in
    let rec loop () =
      match peek () with
      | Some Star ->
        advance ();
        acc := Expr.mul !acc (factor ());
        loop ()
      | Some Slash ->
        advance ();
        acc := Expr.div !acc (factor ());
        loop ()
      | _ -> ()
    in
    loop ();
    !acc
  and factor () =
    let base = atom () in
    match peek () with
    | Some Caret -> (
      advance ();
      match !stream with
      | (Num v, _) :: _ when Float.is_integer v && v >= 0.0 ->
        advance ();
        Expr.pow base (int_of_float v)
      | (t, p) :: _ ->
        fail_at p "expected a non-negative integer exponent after '^' but found %s"
          (describe_token t)
      | [] -> fail_at eof "expected a non-negative integer exponent after '^'")
    | _ -> base
  and atom () =
    match peek () with
    | Some (Num v) ->
      advance ();
      Expr.const v
    | Some (Var i) ->
      advance ();
      Expr.var i
    | Some (Input i) ->
      advance ();
      Expr.input i
    | Some Minus ->
      advance ();
      Expr.neg (factor ())
    | Some Lparen ->
      advance ();
      let e = expr () in
      expect Rparen "')'";
      e
    | Some (Fn name) ->
      advance ();
      expect Lparen "'(' after function name";
      let e = expr () in
      expect Rparen "')'";
      (match name with
      | "sin" -> Expr.sin_ e
      | "cos" -> Expr.cos_ e
      | "exp" -> Expr.exp_ e
      | "tanh" -> Expr.tanh_ e
      | _ -> assert false)
    | Some t -> fail_at (pos ()) "unexpected token %s" (describe_token t)
    | None -> fail_at eof "unexpected end of input"
  in
  let e = expr () in
  (match !stream with
  | [] -> ()
  | (t, p) :: _ -> fail_at p "trailing input starting with %s" (describe_token t));
  e

let parse src =
  match parse_tokens (tokenize src) with
  | e -> Ok e
  | exception Parse_error msg -> Error msg

let parse_exn src =
  match parse src with Ok e -> e | Error msg -> invalid_arg ("Parser.parse_exn: " ^ msg)

(* Parse a whole right-hand side, one expression per state component. *)
let parse_system srcs =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | src :: rest -> (
      match parse src with
      | Ok e -> go (e :: acc) rest
      | Error msg -> Error (Fmt.str "component %d: %s" (List.length acc) msg))
  in
  go [] srcs
