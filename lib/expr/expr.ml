(* Symbolic expressions for system dynamics.

   A dynamics right-hand side f(x, u) is written once as a vector of [t]
   values and then consumed in four ways:
     - numeric evaluation        (simulation, Monte-Carlo evaluation)
     - interval evaluation       (a-priori enclosures in the verifier)
     - symbolic differentiation  (Lie derivatives for Taylor flowpipes,
                                  exact Jacobians for the SVG baseline)
     - Taylor-model evaluation   (in dwv_taylor, via [fold])

   Nodes are HASH-CONSED: every constructor interns through a global
   table, so structurally equal expressions are physically equal and
   carry a precomputed structural hash. Memo tables keyed on expressions
   (the per-step table in dwv_taylor, the per-domain Lie-table cache in
   dwv_reach) therefore pay O(1) per lookup — a pointer compare and a
   field read — instead of deep structural hashing, and the repeated
   Lie-derivative trees of the flowpipe kernel share storage instead of
   duplicating common subtrees. *)

type t = { node : node; hash : int; id : int }

and node =
  | Const of float
  | Var of int      (* state component x_i *)
  | Input of int    (* control component u_j, held constant within a step *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Pow of t * int  (* integer power, exponent >= 0 *)
  | Sin of t
  | Cos of t
  | Exp of t
  | Tanh of t

(* Structural hash of a node from the children's precomputed hashes:
   O(1) per node, never O(tree), and independent of intern ids so the
   hash of a structure is stable no matter when (or on which domain) it
   is rebuilt. *)
let mix h k = (h * 0x01000193) lxor k

let fin tag h = (((h lxor (h lsr 16)) * 0x45d9f3b) + tag) land max_int

(* Constants hash and compare by bit pattern: [const] canonicalizes NaN
   below, so every NaN interns to one node, while -0. stays distinct
   from 0. (they are not interchangeable under division, so IEEE
   equality — which identifies them — would be unsound here). *)
let float_bits c = Int64.to_int (Int64.bits_of_float c)

let node_hash = function
  | Const c -> fin 1 (float_bits c)
  | Var i -> fin 2 i
  | Input j -> fin 3 j
  | Add (a, b) -> fin 4 (mix a.hash b.hash)
  | Sub (a, b) -> fin 5 (mix a.hash b.hash)
  | Mul (a, b) -> fin 6 (mix a.hash b.hash)
  | Div (a, b) -> fin 7 (mix a.hash b.hash)
  | Neg a -> fin 8 a.hash
  | Pow (a, n) -> fin 9 (mix a.hash n)
  | Sin a -> fin 10 a.hash
  | Cos a -> fin 11 a.hash
  | Exp a -> fin 12 a.hash
  | Tanh a -> fin 13 a.hash

(* Depth-1 equality: children are already interned, so they compare by
   physical identity; only the spine constructor and scalars are looked
   at. The intern table is the only consumer. *)
module Node_tbl = Hashtbl.Make (struct
  type nonrec t = node

  let equal a b =
    match (a, b) with
    | Const x, Const y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | Var i, Var j | Input i, Input j -> Int.equal i j
    | Add (a1, a2), Add (b1, b2)
    | Sub (a1, a2), Sub (b1, b2)
    | Mul (a1, a2), Mul (b1, b2)
    | Div (a1, a2), Div (b1, b2) -> a1 == b1 && a2 == b2
    | Neg a1, Neg b1 | Sin a1, Sin b1 | Cos a1, Cos b1 | Exp a1, Exp b1
    | Tanh a1, Tanh b1 -> a1 == b1
    | Pow (a1, n), Pow (b1, k) -> Int.equal n k && a1 == b1
    | ( ( Const _ | Var _ | Input _ | Add _ | Sub _ | Mul _ | Div _ | Neg _ | Pow _
        | Sin _ | Cos _ | Exp _ | Tanh _ ),
        _ ) -> false

  let hash = node_hash
end)

(* The intern table and id counter are module-level mutable state, but
   every access goes through [intern]'s mutex, and construction is off
   the verifier's hot path (dynamics and Lie tables are built once per
   run; flowpipe steps only *read* interned nodes). Which domain interns
   a structure first is immaterial: the stored node is immutable. *)
let intern_table = Node_tbl.create 4096
let next_id = ref 0
let intern_mu = Mutex.create ()

let intern node =
  Mutex.lock intern_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock intern_mu) @@ fun () ->
  match Node_tbl.find_opt intern_table node with
  | Some e -> e
  | None ->
    let e = { node; hash = node_hash node; id = !next_id } in
    incr next_id;
    Node_tbl.add intern_table node e;
    e

let interned () =
  Mutex.lock intern_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock intern_mu) @@ fun () ->
  Node_tbl.length intern_table

(* NaN is canonicalized at construction so all NaN constants intern to
   the same node, matching the [Float.equal] view that nan = nan. *)
let const c = intern (Const (if Float.is_nan c then Float.nan else c))
let var i = intern (Var i)
let input j = intern (Input j)

(* Smart constructors with constant folding; keep expressions small because
   Lie derivatives are taken repeatedly. *)
let rec add a b =
  match (a.node, b.node) with
  | Const 0.0, _ -> b
  | _, Const 0.0 -> a
  | Const x, Const y -> const (x +. y)
  | Const _, _ -> add b a
  | _ -> intern (Add (a, b))

let sub a b =
  match (a.node, b.node) with
  | _, Const 0.0 -> a
  | Const 0.0, _ -> intern (Neg b)
  | Const x, Const y -> const (x -. y)
  | _ -> intern (Sub (a, b))

let rec mul a b =
  match (a.node, b.node) with
  | Const 0.0, _ | _, Const 0.0 -> const 0.0
  | Const 1.0, _ -> b
  | _, Const 1.0 -> a
  | Const x, Const y -> const (x *. y)
  | _, Const _ -> mul b a
  | _ -> intern (Mul (a, b))

let div a b =
  match (a.node, b.node) with
  | _, Const 0.0 -> invalid_arg "Expr.div: division by constant zero"
  | _, Const 1.0 -> a
  | Const x, Const y -> const (x /. y)
  | Const 0.0, _ -> const 0.0
  | _ -> intern (Div (a, b))

let neg e =
  match e.node with
  | Const c -> const (-.c)
  | Neg a -> a
  | _ -> intern (Neg e)

let pow e n =
  if n < 0 then invalid_arg "Expr.pow: negative exponent";
  match (e.node, n) with
  | _, 0 -> const 1.0
  | _, 1 -> e
  | Const c, n -> const (c ** float_of_int n)
  | _, n -> intern (Pow (e, n))

let sin_ e = match e.node with Const c -> const (sin c) | _ -> intern (Sin e)
let cos_ e = match e.node with Const c -> const (cos c) | _ -> intern (Cos e)
let exp_ e = match e.node with Const c -> const (exp c) | _ -> intern (Exp e)
let tanh_ e = match e.node with Const c -> const (tanh c) | _ -> intern (Tanh e)

let scale s e = mul (const s) e

(* Generic catamorphism: interpret the AST in any algebra. Used by the
   Taylor-model evaluator to avoid a dependency cycle. *)
let rec fold ~const ~var ~input ~add ~sub ~mul ~div ~neg ~pow ~sin ~cos ~exp ~tanh e =
  let go = fold ~const ~var ~input ~add ~sub ~mul ~div ~neg ~pow ~sin ~cos ~exp ~tanh in
  match e.node with
  | Const c -> const c
  | Var i -> var i
  | Input j -> input j
  | Add (a, b) -> add (go a) (go b)
  | Sub (a, b) -> sub (go a) (go b)
  | Mul (a, b) -> mul (go a) (go b)
  | Div (a, b) -> div (go a) (go b)
  | Neg a -> neg (go a)
  | Pow (a, n) -> pow (go a) n
  | Sin a -> sin (go a)
  | Cos a -> cos (go a)
  | Exp a -> exp (go a)
  | Tanh a -> tanh (go a)

let rec eval e ~x ~u =
  match e.node with
  | Const c -> c
  | Var i -> x.(i)
  | Input j -> u.(j)
  | Add (a, b) -> eval a ~x ~u +. eval b ~x ~u
  | Sub (a, b) -> eval a ~x ~u -. eval b ~x ~u
  | Mul (a, b) -> eval a ~x ~u *. eval b ~x ~u
  | Div (a, b) -> eval a ~x ~u /. eval b ~x ~u
  | Neg a -> -.eval a ~x ~u
  | Pow (a, n) -> eval a ~x ~u ** float_of_int n
  | Sin a -> sin (eval a ~x ~u)
  | Cos a -> cos (eval a ~x ~u)
  | Exp a -> exp (eval a ~x ~u)
  | Tanh a -> tanh (eval a ~x ~u)

module I = Dwv_interval.Interval

let rec ieval e ~x ~u =
  match e.node with
  | Const c -> I.of_point c
  | Var i -> x.(i)
  | Input j -> u.(j)
  | Add (a, b) -> I.add (ieval a ~x ~u) (ieval b ~x ~u)
  | Sub (a, b) -> I.sub (ieval a ~x ~u) (ieval b ~x ~u)
  | Mul (a, b) -> I.mul (ieval a ~x ~u) (ieval b ~x ~u)
  | Div (a, b) -> I.div (ieval a ~x ~u) (ieval b ~x ~u)
  | Neg a -> I.neg (ieval a ~x ~u)
  | Pow (a, n) -> I.pow_int (ieval a ~x ~u) n
  | Sin a -> I.sin_ (ieval a ~x ~u)
  | Cos a -> I.cos_ (ieval a ~x ~u)
  | Exp a -> I.exp_ (ieval a ~x ~u)
  | Tanh a -> I.tanh_ (ieval a ~x ~u)

type wrt = Wrt_var of int | Wrt_input of int

(* Symbolic partial derivative. *)
let rec diff e ~wrt =
  let d e = diff e ~wrt in
  match e.node with
  | Const _ -> const 0.0
  | Var i -> (match wrt with Wrt_var j when i = j -> const 1.0 | _ -> const 0.0)
  | Input i -> (match wrt with Wrt_input j when i = j -> const 1.0 | _ -> const 0.0)
  | Add (a, b) -> add (d a) (d b)
  | Sub (a, b) -> sub (d a) (d b)
  | Mul (a, b) -> add (mul (d a) b) (mul a (d b))
  | Div (a, b) -> div (sub (mul (d a) b) (mul a (d b))) (pow b 2)
  | Neg a -> neg (d a)
  | Pow (a, n) -> mul (scale (float_of_int n) (pow a (n - 1))) (d a)
  | Sin a -> mul (cos_ a) (d a)
  | Cos a -> neg (mul (sin_ a) (d a))
  | Exp a -> mul (exp_ a) (d a)
  | Tanh a -> mul (sub (const 1.0) (pow (tanh_ a) 2)) (d a)

(* Lie derivative of g along the vector field f (u treated as constant
   within a sampling period, so no Input-derivative term):
   L_f g = sum_i (dg/dx_i) f_i. *)
let lie_derivative ~f g =
  let n = Array.length f in
  let acc = ref (const 0.0) in
  for i = 0 to n - 1 do
    acc := add !acc (mul (diff g ~wrt:(Wrt_var i)) f.(i))
  done;
  !acc

(* Jacobians of a vector field, used for the SVG baseline's exact model
   gradients. *)
let jacobian_x f ~n =
  Array.map (fun fi -> Array.init n (fun j -> diff fi ~wrt:(Wrt_var j))) f

let jacobian_u f ~m =
  Array.map (fun fi -> Array.init m (fun j -> diff fi ~wrt:(Wrt_input j))) f

let eval_vec f ~x ~u = Array.map (fun fi -> eval fi ~x ~u) f

let ieval_vec f ~x ~u = Array.map (fun fi -> ieval fi ~x ~u) f

(* Post-intern, structural equality IS physical identity: the intern
   table maps each structure (under Float.equal constant semantics:
   every NaN equal thanks to canonicalization, -0. distinct from 0.) to
   exactly one node, so the comparison is a pointer check. *)
let equal (a : t) (b : t) = a == b

let hash e = e.hash
let id e = e.id

let rec size e =
  match e.node with
  | Const _ | Var _ | Input _ -> 1
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> 1 + size a + size b
  | Neg a | Sin a | Cos a | Exp a | Tanh a -> 1 + size a
  | Pow (a, _) -> 1 + size a

let rec pp ppf e =
  match e.node with
  | Const c -> Fmt.pf ppf "%.6g" c
  | Var i -> Fmt.pf ppf "x%d" i
  | Input j -> Fmt.pf ppf "u%d" j
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b
  | Neg a -> Fmt.pf ppf "-%a" pp a
  | Pow (a, n) -> Fmt.pf ppf "%a^%d" pp a n
  | Sin a -> Fmt.pf ppf "sin(%a)" pp a
  | Cos a -> Fmt.pf ppf "cos(%a)" pp a
  | Exp a -> Fmt.pf ppf "exp(%a)" pp a
  | Tanh a -> Fmt.pf ppf "tanh(%a)" pp a
