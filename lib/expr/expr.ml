(* Symbolic expressions for system dynamics.

   A dynamics right-hand side f(x, u) is written once as a vector of [t]
   values and then consumed in four ways:
     - numeric evaluation        (simulation, Monte-Carlo evaluation)
     - interval evaluation       (a-priori enclosures in the verifier)
     - symbolic differentiation  (Lie derivatives for Taylor flowpipes,
                                  exact Jacobians for the SVG baseline)
     - Taylor-model evaluation   (in dwv_taylor, via [fold]) *)

type t =
  | Const of float
  | Var of int      (* state component x_i *)
  | Input of int    (* control component u_j, held constant within a step *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Pow of t * int  (* integer power, exponent >= 0 *)
  | Sin of t
  | Cos of t
  | Exp of t
  | Tanh of t

let const c = Const c
let var i = Var i
let input j = Input j

(* Smart constructors with constant folding; keep expressions small because
   Lie derivatives are taken repeatedly. *)
let rec add a b =
  match (a, b) with
  | Const 0.0, e | e, Const 0.0 -> e
  | Const x, Const y -> Const (x +. y)
  | Const _, _ -> add b a
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | e, Const 0.0 -> e
  | Const 0.0, e -> Neg e
  | Const x, Const y -> Const (x -. y)
  | _ -> Sub (a, b)

let rec mul a b =
  match (a, b) with
  | Const 0.0, _ | _, Const 0.0 -> Const 0.0
  | Const 1.0, e | e, Const 1.0 -> e
  | Const x, Const y -> Const (x *. y)
  | _, Const _ -> mul b a
  | _ -> Mul (a, b)

let div a b =
  match (a, b) with
  | _, Const 0.0 -> invalid_arg "Expr.div: division by constant zero"
  | e, Const 1.0 -> e
  | Const x, Const y -> Const (x /. y)
  | Const 0.0, _ -> Const 0.0
  | _ -> Div (a, b)

let neg = function
  | Const c -> Const (-.c)
  | Neg e -> e
  | e -> Neg e

let pow e n =
  if n < 0 then invalid_arg "Expr.pow: negative exponent";
  match (e, n) with
  | _, 0 -> Const 1.0
  | e, 1 -> e
  | Const c, n -> Const (c ** float_of_int n)
  | e, n -> Pow (e, n)

let sin_ = function Const c -> Const (sin c) | e -> Sin e
let cos_ = function Const c -> Const (cos c) | e -> Cos e
let exp_ = function Const c -> Const (exp c) | e -> Exp e
let tanh_ = function Const c -> Const (tanh c) | e -> Tanh e

let scale s e = mul (Const s) e

(* Generic catamorphism: interpret the AST in any algebra. Used by the
   Taylor-model evaluator to avoid a dependency cycle. *)
let rec fold ~const ~var ~input ~add ~sub ~mul ~div ~neg ~pow ~sin ~cos ~exp ~tanh e =
  let go = fold ~const ~var ~input ~add ~sub ~mul ~div ~neg ~pow ~sin ~cos ~exp ~tanh in
  match e with
  | Const c -> const c
  | Var i -> var i
  | Input j -> input j
  | Add (a, b) -> add (go a) (go b)
  | Sub (a, b) -> sub (go a) (go b)
  | Mul (a, b) -> mul (go a) (go b)
  | Div (a, b) -> div (go a) (go b)
  | Neg a -> neg (go a)
  | Pow (a, n) -> pow (go a) n
  | Sin a -> sin (go a)
  | Cos a -> cos (go a)
  | Exp a -> exp (go a)
  | Tanh a -> tanh (go a)

let rec eval e ~x ~u =
  match e with
  | Const c -> c
  | Var i -> x.(i)
  | Input j -> u.(j)
  | Add (a, b) -> eval a ~x ~u +. eval b ~x ~u
  | Sub (a, b) -> eval a ~x ~u -. eval b ~x ~u
  | Mul (a, b) -> eval a ~x ~u *. eval b ~x ~u
  | Div (a, b) -> eval a ~x ~u /. eval b ~x ~u
  | Neg a -> -.eval a ~x ~u
  | Pow (a, n) -> eval a ~x ~u ** float_of_int n
  | Sin a -> sin (eval a ~x ~u)
  | Cos a -> cos (eval a ~x ~u)
  | Exp a -> exp (eval a ~x ~u)
  | Tanh a -> tanh (eval a ~x ~u)

module I = Dwv_interval.Interval

let rec ieval e ~x ~u =
  match e with
  | Const c -> I.of_point c
  | Var i -> x.(i)
  | Input j -> u.(j)
  | Add (a, b) -> I.add (ieval a ~x ~u) (ieval b ~x ~u)
  | Sub (a, b) -> I.sub (ieval a ~x ~u) (ieval b ~x ~u)
  | Mul (a, b) -> I.mul (ieval a ~x ~u) (ieval b ~x ~u)
  | Div (a, b) -> I.div (ieval a ~x ~u) (ieval b ~x ~u)
  | Neg a -> I.neg (ieval a ~x ~u)
  | Pow (a, n) -> I.pow_int (ieval a ~x ~u) n
  | Sin a -> I.sin_ (ieval a ~x ~u)
  | Cos a -> I.cos_ (ieval a ~x ~u)
  | Exp a -> I.exp_ (ieval a ~x ~u)
  | Tanh a -> I.tanh_ (ieval a ~x ~u)

type wrt = Wrt_var of int | Wrt_input of int

(* Symbolic partial derivative. *)
let rec diff e ~wrt =
  let d e = diff e ~wrt in
  match e with
  | Const _ -> Const 0.0
  | Var i -> (match wrt with Wrt_var j when i = j -> Const 1.0 | _ -> Const 0.0)
  | Input i -> (match wrt with Wrt_input j when i = j -> Const 1.0 | _ -> Const 0.0)
  | Add (a, b) -> add (d a) (d b)
  | Sub (a, b) -> sub (d a) (d b)
  | Mul (a, b) -> add (mul (d a) b) (mul a (d b))
  | Div (a, b) -> div (sub (mul (d a) b) (mul a (d b))) (pow b 2)
  | Neg a -> neg (d a)
  | Pow (a, n) -> mul (scale (float_of_int n) (pow a (n - 1))) (d a)
  | Sin a -> mul (cos_ a) (d a)
  | Cos a -> neg (mul (sin_ a) (d a))
  | Exp a -> mul (exp_ a) (d a)
  | Tanh a -> mul (sub (Const 1.0) (pow (tanh_ a) 2)) (d a)

(* Lie derivative of g along the vector field f (u treated as constant
   within a sampling period, so no Input-derivative term):
   L_f g = sum_i (dg/dx_i) f_i. *)
let lie_derivative ~f g =
  let n = Array.length f in
  let acc = ref (Const 0.0) in
  for i = 0 to n - 1 do
    acc := add !acc (mul (diff g ~wrt:(Wrt_var i)) f.(i))
  done;
  !acc

(* Jacobians of a vector field, used for the SVG baseline's exact model
   gradients. *)
let jacobian_x f ~n =
  Array.map (fun fi -> Array.init n (fun j -> diff fi ~wrt:(Wrt_var j))) f

let jacobian_u f ~m =
  Array.map (fun fi -> Array.init m (fun j -> diff fi ~wrt:(Wrt_input j))) f

let eval_vec f ~x ~u = Array.map (fun fi -> eval fi ~x ~u) f

let ieval_vec f ~x ~u = Array.map (fun fi -> ieval fi ~x ~u) f

(* Structural equality with NaN-safe float comparison ([Float.equal] treats
   nan = nan as true, matching [Hashtbl.hash]'s canonical-NaN treatment, so
   the pair is a valid hashtable equality). The physical shortcut keeps
   comparisons of shared subtrees O(1) in memo tables. *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Var i, Var j -> Int.equal i j
  | Input i, Input j -> Int.equal i j
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2) -> equal a1 b1 && equal a2 b2
  | Neg a1, Neg b1 | Sin a1, Sin b1 | Cos a1, Cos b1 | Exp a1, Exp b1 | Tanh a1, Tanh b1 ->
    equal a1 b1
  | Pow (a1, n), Pow (b1, k) -> Int.equal n k && equal a1 b1
  | ( ( Const _ | Var _ | Input _ | Add _ | Sub _ | Mul _ | Div _ | Neg _ | Pow _ | Sin _
      | Cos _ | Exp _ | Tanh _ ),
      _ ) -> false

let rec size = function
  | Const _ | Var _ | Input _ -> 1
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> 1 + size a + size b
  | Neg a | Sin a | Cos a | Exp a | Tanh a -> 1 + size a
  | Pow (a, _) -> 1 + size a

let rec pp ppf = function
  | Const c -> Fmt.pf ppf "%.6g" c
  | Var i -> Fmt.pf ppf "x%d" i
  | Input j -> Fmt.pf ppf "u%d" j
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b
  | Neg a -> Fmt.pf ppf "-%a" pp a
  | Pow (a, n) -> Fmt.pf ppf "%a^%d" pp a n
  | Sin a -> Fmt.pf ppf "sin(%a)" pp a
  | Cos a -> Fmt.pf ppf "cos(%a)" pp a
  | Exp a -> Fmt.pf ppf "exp(%a)" pp a
  | Tanh a -> Fmt.pf ppf "tanh(%a)" pp a
