(* AST-backed re-implementation of the layer-2 source rules. Matching is
   on identifier occurrences in the Parsetree, so it is syntactic where
   the regex engine is textual: a `==` in a comment, a string banner, or
   an operator-shaped fragment inside a longer token can never fire, and
   several hits on one line are all reported (the regex engine stops at
   the first match per line).

   The rule *metadata* (name, severity, message, hint, allowlist) stays
   in Source_rules — one table serves both engines, which is what makes
   the differential mode in Ast_lint meaningful. *)

module D = Diagnostics

(* Rules this engine implements semantically. bare-failwith is absent by
   design: its AST replacement is the Exn_escape analysis. *)
let covered =
  [
    "phys-equality";
    "nan-compare";
    "float-of-string";
    "obj-magic";
    "poly-compare";
    "print-debug";
  ]

let nan_idents = [ "nan"; "Float.nan" ]

let comparison_ops = [ "="; "<"; ">"; "<="; ">="; "<>" ]

(* Which rule an identifier occurrence fires. [raw] is the identifier as
   written; [norm] has a leading [Stdlib.] stripped. poly-compare keys on
   the raw spelling: the rule is about *explicitly qualified* polymorphic
   compare, a bare [compare] is ubiquitous and often shadowed. *)
let ident_rule ~raw ~norm =
  match norm with
  | "==" | "!=" -> Some "phys-equality"
  | "float_of_string" | "Float.of_string" -> Some "float-of-string"
  | "Obj.magic" | "Obj.repr" | "Obj.obj" -> Some "obj-magic"
  | "print_endline" | "print_string" | "Printf.printf" -> Some "print-debug"
  | _ -> (
    match raw with
    | "Stdlib.compare" | "Pervasives.compare" | "Stdlib.Pervasives.compare" ->
      Some "poly-compare"
    | _ -> None)

let lint_parsed ?(rules = Source_rules.builtin) (file : Src_ast.parsed) =
  let path = file.Src_ast.path in
  let rule_by_name name =
    List.find_opt (fun (r : Source_rules.rule) -> r.Source_rules.name = name) rules
  in
  let ds = ref [] in
  let emit name loc =
    match rule_by_name name with
    | None -> () (* caller restricted the rule set: stay consistent with it *)
    | Some rule ->
      if not (Source_rules.allowed rule path) then
        ds :=
          D.make rule.Source_rules.severity ~check:rule.Source_rules.name
            ~loc:(Src_ast.file_loc ~path loc)
            rule.Source_rules.message ?hint:rule.Source_rules.hint
          :: !ds
  in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; loc } -> (
            let raw = Src_ast.name_of txt in
            match ident_rule ~raw ~norm:(Ast_index.normalize_name raw) with
            | Some rule -> emit rule loc
            | None -> ())
          | Parsetree.Pexp_apply
              ({ Parsetree.pexp_desc = Parsetree.Pexp_ident { txt; loc }; _ }, args) ->
            let op = Ast_index.normalize_name (Src_ast.name_of txt) in
            if List.mem op comparison_ops then begin
              let arg_is_nan (_, (a : Parsetree.expression)) =
                match a.Parsetree.pexp_desc with
                | Parsetree.Pexp_ident { txt; _ } ->
                  List.mem (Ast_index.normalize_name (Src_ast.name_of txt)) nan_idents
                | _ -> false
              in
              if List.exists arg_is_nan args then emit "nan-compare" loc
            end
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  iter.structure iter file.Src_ast.ast;
  List.rev !ds
