(* Layer-1 checks. The unifying trick: everything the verifier will later
   do expensively over the whole horizon (interval-evaluate dynamics, test
   set relations), the analyzer does once over the *declared* sets. That
   cannot prove a run will succeed, but it rejects the designs that are
   wrong before time zero — dimension mismatches, singular denominators on
   X0, contradictory specs, corrupt networks — in microseconds. *)

module Expr = Dwv_expr.Expr
module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Setops = Dwv_geometry.Setops
module D = Diagnostics
module R = Registry

type input = {
  name : string;
  sys : Dwv_ode.Sampled_system.t;
  spec : Spec.t;
  controller : Controller.t option;
  u : Box.t option;
  domain : Box.t option;
}

let make_input ?controller ?u ?domain ~name ~sys ~spec () =
  { name; sys; spec; controller; u; domain }

let component name i = D.Model (Fmt.str "%s/dynamics[%d]" name i)
let model name part = D.Model (Fmt.str "%s/%s" name part)

(* ---------- dynamics arity ---------- *)

let check_dynamics ~name ~f ~n ~m =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  if Array.length f <> n then
    emit
      (D.error ~check:R.dim_arity ~loc:(model name "dynamics")
         (Fmt.str "dynamics has %d components but the declared state dimension is %d"
            (Array.length f) n)
         ~hint:"each state coordinate needs exactly one right-hand side");
  Array.iteri
    (fun i fi ->
      let vmax = Expr_audit.max_var_index fi in
      if vmax >= n then
        emit
          (D.error ~check:R.dim_arity ~loc:(component name i)
             (Fmt.str "mentions x%d but the state dimension is %d (valid: x0..x%d)" vmax n
                (n - 1))
             ~hint:"fix the index or raise the declared dimension n");
      let umax = Expr_audit.max_input_index fi in
      if umax >= m then
        emit
          (D.error ~check:R.dim_arity ~loc:(component name i)
             (Fmt.str "mentions u%d but the input dimension is %d%s" umax m
                (if m = 0 then " (no inputs declared)" else Fmt.str " (valid: u0..u%d)" (m - 1)))
             ~hint:"fix the index or raise the declared dimension m"))
    f;
  List.rev !ds

(* ---------- interval domains over X0 ---------- *)

(* exp overflows a double just above 709.78; enclosures that reach it stop
   being finite and the interval kernel rejects them at construction. *)
let exp_overflow_threshold = 709.0

let check_domains ~name ~f ~x0 ?u () =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  (* Box.t is literally an Interval.t array, so boxes feed ieval directly. *)
  let u_ivals : I.t array option = u in
  let ieval_sub ~loc sub =
    (* None means "could not evaluate"; the reason is already reported. *)
    let needs = Expr_audit.max_input_index sub in
    match u_ivals with
    | None when needs >= 0 ->
      emit
        (D.warn ~check:R.div_by_zero ~loc
           (Fmt.str "cannot bound '%a': it mentions u%d and no input range is declared"
              Expr.pp sub needs)
           ~hint:"declare an input box (or a controller the range can be derived from)");
      None
    | Some us when needs >= Array.length us ->
      emit
        (D.warn ~check:R.div_by_zero ~loc
           (Fmt.str "cannot bound '%a': it mentions u%d but the input box has dimension %d"
              Expr.pp sub needs (Array.length us)));
      None
    | _ -> (
      let us = Option.value u_ivals ~default:[||] in
      match Expr.ieval sub ~x:(x0 : Box.t) ~u:us with
      | range -> Some range
      | exception (Failure reason | Invalid_argument reason) ->
        emit
          (D.error ~check:R.domain_eval ~loc
             (Fmt.str "interval evaluation of '%a' over X0 failed: %s" Expr.pp sub reason)
             ~hint:"the subterm leaves the domain of sound interval arithmetic on X0");
        None)
  in
  Array.iteri
    (fun i fi ->
      if i < Array.length f then begin
        let loc = component name i in
        List.iter
          (fun den ->
            match ieval_sub ~loc den with
            | Some range when I.contains range 0.0 ->
              emit
                (D.error ~check:R.div_by_zero ~loc
                   (Fmt.str "denominator '%a' encloses zero over X0: %a" Expr.pp den I.pp
                      range)
                   ~hint:"shrink X0 away from the singularity or rewrite the dynamics")
            | _ -> ())
          (Expr_audit.denominators fi);
        List.iter
          (fun arg ->
            match ieval_sub ~loc arg with
            | Some range when I.hi range > exp_overflow_threshold ->
              emit
                (D.warn ~check:R.exp_overflow ~loc
                   (Fmt.str "exp argument '%a' reaches %g over X0; exp overflows doubles \
                             near 709.8"
                      Expr.pp arg (I.hi range))
                   ~hint:"rescale the dynamics or shrink X0")
            | _ -> ())
          (Expr_audit.exp_args fi)
      end)
    f;
  List.rev !ds

(* ---------- spec well-formedness ---------- *)

let degenerate_dims box =
  let widths = Box.widths box in
  let dims = ref [] in
  Array.iteri (fun i w -> if w <= 0.0 then dims := i :: !dims) widths;
  List.rev !dims

let check_spec ~name ?expected_n ?domain (spec : Spec.t) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  (match expected_n with
  | Some n when Spec.dim spec <> n ->
    emit
      (D.error ~check:R.spec_dims ~loc:(model name "spec")
         (Fmt.str "specification sets are %d-dimensional but the dynamics state is %d"
            (Spec.dim spec) n)
         ~hint:"the flowpipe and the spec sets must live in the same space")
  | _ -> ());
  List.iter
    (fun (part, box, severity) ->
      match degenerate_dims box with
      | [] -> ()
      | dims ->
        emit
          (D.make severity ~check:R.spec_degenerate ~loc:(model name ("spec/" ^ part))
             (Fmt.str "%s box has zero width in dimension%s %a" part
                (if List.length dims = 1 then "" else "s")
                Fmt.(list ~sep:comma int)
                dims)
             ~hint:
               (match part with
               | "goal" -> "a flowpipe segment can never be strictly inside a flat goal"
               | _ -> "zero-width sets are almost never what a reach-avoid spec means")))
    [
      ("x0", spec.Spec.x0, D.Warn);
      ("unsafe", spec.Spec.unsafe, D.Warn);
      ("goal", spec.Spec.goal, D.Error);
    ];
  if Setops.any_intersects [ spec.Spec.goal ] spec.Spec.unsafe then
    emit
      (D.error ~check:R.spec_overlap ~loc:(model name "spec")
         (Fmt.str "goal and unsafe sets overlap (shared volume %g)"
            (Box.intersection_volume spec.Spec.goal spec.Spec.unsafe))
         ~hint:"a run entering the overlap can neither avoid nor finish; separate the sets");
  if Setops.any_intersects [ spec.Spec.x0 ] spec.Spec.unsafe then
    emit
      (D.error ~check:R.spec_x0_unsafe ~loc:(model name "spec")
         "initial set intersects the unsafe set: the spec is violated at t = 0"
         ~hint:"shrink X0 or move the unsafe region");
  (match domain with
  | Some dom when not (Box.subset spec.Spec.x0 dom) ->
    emit
      (D.error ~check:R.x0_in_domain ~loc:(model name "spec")
         (Fmt.str "initial set %a is not contained in the declared domain %a" Box.pp
            spec.Spec.x0 Box.pp dom)
         ~hint:"controllers are only trained/audited on the domain; widen it or shrink X0")
  | _ -> ());
  List.rev !ds

(* ---------- network / controller audits ---------- *)

let lipschitz_sanity_threshold = 1e6

let check_network ~name ?n_in ?n_out (net : Mlp.t) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let theta = Mlp.flatten net in
  let bad = ref 0 and first = ref (-1) in
  Array.iteri
    (fun i v ->
      if not (Float.is_finite v) then begin
        incr bad;
        if !first < 0 then first := i
      end)
    theta;
  if !bad > 0 then
    emit
      (D.error ~check:R.nn_finite ~loc:(model name "net")
         (Fmt.str "%d of %d parameters are not finite (first at flat index %d)" !bad
            (Array.length theta) !first)
         ~hint:"the serialized model is corrupt or training diverged; do not verify it");
  (match n_in with
  | Some n when Mlp.n_in net <> n ->
    emit
      (D.error ~check:R.ctrl_shape ~loc:(model name "net")
         (Fmt.str "network takes %d inputs but the plant state is %d-dimensional"
            (Mlp.n_in net) n))
  | _ -> ());
  (match n_out with
  | Some m when Mlp.n_out net <> m ->
    emit
      (D.error ~check:R.ctrl_shape ~loc:(model name "net")
         (Fmt.str "network emits %d outputs but the plant expects %d inputs"
            (Mlp.n_out net) m))
  | _ -> ());
  (* Only meaningful on finite parameters; on a corrupt net the bound is
     NaN and the finiteness error above already says everything. *)
  if !bad = 0 then begin
    let l = Dwv_nn.Lipschitz.bound net in
    if (not (Float.is_finite l)) || l > lipschitz_sanity_threshold then
      emit
        (D.warn ~check:R.nn_lipschitz ~loc:(model name "net")
           (Fmt.str "global Lipschitz bound is %g; flowpipe enclosures will blow up" l)
           ~hint:"re-train with weight regularization or a smaller architecture")
  end;
  List.rev !ds

let final_activation (net : Mlp.t) =
  let layers = Mlp.layers net in
  layers.(Array.length layers - 1).Mlp.act

let check_controller ~name ~n ~m controller =
  match controller with
  | Controller.Net { net; output_scale = _ } ->
    let ds = check_network ~name ~n_in:n ~n_out:m net in
    let act = final_activation net in
    let bounded = match act with Activation.Tanh | Activation.Sigmoid -> true | _ -> false in
    if bounded then ds
    else
      ds
      @ [
          D.warn ~check:R.nn_activation ~loc:(model name "net")
            (Fmt.str
               "final activation %s is unbounded, so the scaled control u = s*net(x) has \
                no a-priori range"
               (Activation.to_string act))
            ~hint:"end the controller in tanh or sigmoid so its output range is known";
        ]
  | Controller.Linear { gain } ->
    let rows, cols = Dwv_la.Mat.dims gain in
    let ds = ref [] in
    if rows <> m then
      ds :=
        D.error ~check:R.ctrl_shape ~loc:(model name "gain")
          (Fmt.str "gain has %d rows but the plant expects %d inputs" rows m)
        :: !ds;
    if cols <> n && cols <> n + 1 then
      ds :=
        D.error ~check:R.ctrl_shape ~loc:(model name "gain")
          (Fmt.str
             "gain has %d columns but the state is %d-dimensional (or %d with a constant \
              bias coordinate)"
             cols n (n + 1))
        :: !ds;
    List.rev !ds

(* Sound input range implied by a controller over the initial box. *)
let input_box ~x0 controller =
  match controller with
  | Controller.Net { net; output_scale } -> (
    match final_activation net with
    | Activation.Tanh ->
      let s = Float.abs output_scale in
      if s = 0.0 then Some (Box.of_point (Array.make (Mlp.n_out net) 0.0))
      else Some (Box.make ~lo:(Array.make (Mlp.n_out net) (-.s)) ~hi:(Array.make (Mlp.n_out net) s))
    | Activation.Sigmoid ->
      let s = output_scale in
      let lo = Float.min 0.0 s and hi = Float.max 0.0 s in
      if lo = hi then Some (Box.of_point (Array.make (Mlp.n_out net) lo))
      else Some (Box.make ~lo:(Array.make (Mlp.n_out net) lo) ~hi:(Array.make (Mlp.n_out net) hi))
    | Activation.Relu | Activation.Linear -> None)
  | Controller.Linear { gain } ->
    let rows, cols = Dwv_la.Mat.dims gain in
    let n = Box.dim x0 in
    if cols <> n && cols <> n + 1 then None
    else begin
      (* interval matvec of K over X0, appending the constant coordinate
         when the gain carries a bias column *)
      let x =
        if cols = n then (x0 : Box.t)
        else Array.append (x0 : Box.t) [| I.of_point 1.0 |]
      in
      let rows_ivals =
        Array.init rows (fun i ->
            let acc = ref I.zero in
            for j = 0 to cols - 1 do
              acc := I.add !acc (I.scale (Dwv_la.Mat.get gain i j) x.(j))
            done;
            !acc)
      in
      Some (Box.of_intervals rows_ivals)
    end

(* ---------- the whole pipeline ---------- *)

let check { name; sys; spec; controller; u; domain } =
  let f = sys.Dwv_ode.Sampled_system.f in
  let n = sys.Dwv_ode.Sampled_system.n in
  let m = sys.Dwv_ode.Sampled_system.m in
  let u =
    match u with
    | Some _ -> u
    | None -> Option.bind controller (fun c -> input_box ~x0:spec.Spec.x0 c)
  in
  let ds =
    check_dynamics ~name ~f ~n ~m
    @ check_domains ~name ~f ~x0:spec.Spec.x0 ?u ()
    @ check_spec ~name ~expected_n:n ?domain spec
    @ (match controller with
      | Some c -> check_controller ~name ~n ~m c
      | None -> [])
  in
  Diagnostics.sort ds
