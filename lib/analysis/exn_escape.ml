(* Exception-escape analysis: hot-path functions must speak the
   Dwv_error.t result taxonomy, not throw.

   A function in a hot module is flagged when it can raise — directly or
   through one call-graph hop — without the raise being handled. A raise
   is "handled" when it sits inside a try/match-exception span, when its
   constructor is caught elsewhere in the same function (the [fail]/
   [try ... with Exit] helper pairing), or when the function itself
   constructs Ok/Error results (precondition raises of a result-speaking
   function are its contract, not an escape).

   Severity tiers:
     - Error: failwith / exit / an uncaught custom constructor raised
       directly in a hot function that does not speak result;
     - Info: invalid_arg-class raises (programming-contract violations
       that indicate a caller bug, not an environment fault);
     - Warn: the hot function itself is raise-free but directly calls an
       in-scope function with an Error-tier escaping raise.

   One hop only: deeper chains through the allowlisted leaf modules
   (serialize, interval, ...) are judged at those modules' own boundary,
   not re-reported at every caller. This replaces the regex engine's
   bare-failwith rule, whose textual allowlist this analysis inherits. *)

module D = Diagnostics
module SSet = Ast_index.SSet

let check_name = Registry.exn_escape

(* Modules on the verification fast path: their failures must flow
   through the Dwv_error.t taxonomy so the fault-tolerant loop can apply
   its budget/fallback ladder instead of dying mid-fan-out. *)
let default_hot_modules =
  [
    "Learner";
    "Initset";
    "Evaluate";
    "Verifier";
    "Taylor_reach";
    "Robust_verify";
    "Rk45";
    "Flowpipe";
    "Interval_reach";
    "Linear_reach";
    "Nn_reach_taylor";
    "Nn_reach_bernstein";
    "Cert_check";
    "Cert_cache";
    "Scn_verify";
    "Scn_fuzz";
    "Scn_registry";
  ]

(* Leaf modules whose raises are their documented contract (mirrors the
   bare-failwith allowlist): callers are not warned for reaching them.
   [Cert] belongs here like [Serialize]: its reader helpers raise Parse
   internally and [decode] is total; [Cert_ival] raises Undefined by
   contract and the checker catches it per obligation. *)
let default_allow =
  [ "Serialize"; "Controller"; "Interval"; "Taylor_model"; "Mat"; "Cert";
    "Cert_ival" ]

let class_label = function
  | Ast_index.Rfailure what -> what
  | Ast_index.Rinvalid what -> what
  | Ast_index.Rexit -> "exit"
  | Ast_index.Rexn c -> "raise " ^ c

(* Error-tier escaping raises of [fn]: what makes it unsafe to call bare
   from the verification loop. invalid_arg-class sites are excluded —
   they are reported at Info on the function itself, never propagated. *)
let error_tier_raises fn =
  List.filter
    (fun (s : Ast_index.raise_site) ->
      match s.Ast_index.r_class with
      | Ast_index.Rfailure _ | Ast_index.Rexit | Ast_index.Rexn _ -> true
      | Ast_index.Rinvalid _ -> false)
    (Ast_index.escaping_raises fn)

let analyze ?(hot_modules = default_hot_modules) ?(allow = default_allow) index =
  let ds = ref [] in
  let hint =
    "return a Dwv_error.t result (or catch and classify) so the \
     verification loop's fault ladder can handle the failure"
  in
  List.iter
    (fun (mi : Ast_index.module_info) ->
      if List.mem mi.Ast_index.module_name hot_modules then
        List.iter
          (fun (fn : Ast_index.fn) ->
            let result_speaking = Ast_index.speaks_result fn in
            let escapes = Ast_index.escaping_raises fn in
            (* direct raises *)
            List.iter
              (fun (s : Ast_index.raise_site) ->
                let loc = Src_ast.file_loc ~path:mi.Ast_index.path s.Ast_index.r_loc in
                match s.Ast_index.r_class with
                | Ast_index.Rinvalid what ->
                  ds :=
                    D.info ~check:check_name ~loc
                      (Fmt.str
                         "hot-path function '%s' can escape with %s (caller-contract \
                          violation; confirm callers validate inputs)"
                         fn.Ast_index.f_name what)
                    :: !ds
                | (Ast_index.Rfailure _ | Ast_index.Rexit | Ast_index.Rexn _) as c ->
                  if not result_speaking then
                    ds :=
                      D.error ~check:check_name ~loc
                        (Fmt.str
                           "hot-path function '%s' can escape with %s, outside the \
                            Dwv_error.t result taxonomy"
                           fn.Ast_index.f_name (class_label c))
                        ~hint
                      :: !ds)
              escapes;
            (* one hop: a direct callee with an Error-tier escape *)
            if escapes = [] && not result_speaking then
              SSet.iter
                (fun id ->
                  match Ast_index.resolve index mi id with
                  | Some (Ast_index.Tfn (dm, g))
                    when (not (List.mem dm.Ast_index.module_name allow))
                         && not (Ast_index.speaks_result g) -> (
                    match error_tier_raises g with
                    | [] -> ()
                    | s :: _ ->
                      let line, _ = Src_ast.start_line_col s.Ast_index.r_loc in
                      ds :=
                        D.warn ~check:check_name
                          ~loc:
                            (Src_ast.file_loc ~path:mi.Ast_index.path
                               fn.Ast_index.f_loc)
                          (Fmt.str
                             "hot-path function '%s' calls %s.%s, which can escape \
                              with %s (%s:%d)"
                             fn.Ast_index.f_name dm.Ast_index.module_name
                             g.Ast_index.f_name
                             (class_label s.Ast_index.r_class)
                             dm.Ast_index.path line)
                          ~hint
                        :: !ds)
                  | _ -> ())
                fn.Ast_index.idents)
          mi.Ast_index.fns)
    (Ast_index.modules index);
  List.rev !ds
