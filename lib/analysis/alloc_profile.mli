(** Allocation-hotspot profile over the typed call graph.

    Walks every function reachable from the numeric-kernel entry points
    ({!default_entries}: TM arithmetic, the flowpipe step, RK45, the
    Bernstein grid builders, plus any function that launches [Pool]
    tasks) and reports the allocation sites the flat-kernels refactor
    (ROADMAP item 1) will have to flatten: boxed-[float] refs and lets,
    tuple/record/closure/array/list allocation inside loops, polymorphic
    comparison at float-bearing types, and closure captures of mutable
    state inside [Pool] task bodies.

    Sites are scored ([weight × (1 + loop depth)]) and sorted
    best-target-first; the whole report serializes to a versioned JSON
    document whose per-site [key] (class, file, function, detail — no
    line numbers, so pure line shifts do not invalidate it) is what the
    committed baseline pins: {!diff_against_baseline} errors only on
    keys that appear more often than the baseline allows, so CI fails on
    {e new} hot-loop allocations, not on every pre-existing one. *)

type site = {
  s_class : string;   (** e.g. ["tuple-in-loop"], ["float-ref"] *)
  s_weight : int;
  s_depth : int;      (** enclosing loop nesting depth at the site *)
  s_score : int;      (** [weight * (1 + depth)]; sort key *)
  s_file : string;
  s_line : int;
  s_col : int;
  s_fn : string;      (** enclosing function, ["Taylor_model.mul"] *)
  s_detail : string;  (** what allocates, e.g. ["polymorphic = at Interval.t"] *)
  s_path : string;    (** call path from an entry point,
                          ["Taylor_reach.step -> Tm_vec.add -> ..."] *)
}

(** The hot entry points, as ["Unit.fn"] names. Entries that do not
    resolve in a given index produce an Info diagnostic, not a failure
    (the list names the union across history; refactors may drop one). *)
val default_entries : string list

(** The profile: ranked sites plus diagnostics about the run itself
    (unresolved entry points, cmt load failures). *)
val profile : ?entries:string list -> Cmt_index.t -> site list * Diagnostics.t list

(** Deterministic order: score descending, then file, line, col, class. *)
val sort : site list -> site list

(** The whole report as one JSON document, one site object per line:
    [{"version":1,"sites":[...]}]. Bit-identical across runs on the same
    build — this is both the CI artifact and the baseline format. *)
val report_to_json : site list -> string

(** The line-number-free identity used for baseline comparison. *)
val baseline_key : site -> string

(** Extract the baseline keys (with multiplicity) from a baseline
    document previously written by {!report_to_json}. *)
val baseline_keys : string -> (string * int) list

(** One [alloc-hotspot] error per site class that occurs more often than
    the baseline document allows; empty when the profile is covered. *)
val diff_against_baseline : baseline:string -> site list -> Diagnostics.t list
