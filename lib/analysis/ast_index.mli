(** Per-module inventory over the Parsetree: top-level mutable state and
    how it is guarded, an approximate name-based call graph, raise/handle
    sites, and Pool/Domain fan-out call sites. The layer-3 analyses
    (Domain_safety, Exn_escape) are queries over this index. *)

module SSet : Set.S with type elt = string

type mutable_kind =
  | Ref
  | Hashtable
  | Buffer_t
  | Array_t
  | Queue_t
  | Stack_t
  | Bytes_t
  | Record_mutable
  | Atomic_t
  | Dls_t
  | Sync_t

type guard =
  | Unguarded
  | Atomic_guarded
  | Dls_guarded
  | Sync_primitive

type mutable_binding = {
  m_name : string;
  m_kind : mutable_kind;
  m_guard : guard;
  m_loc : Location.t;
  m_init_idents : SSet.t;
      (** identifiers in the creator's arguments — for a [Domain.DLS]
          key, the initializer closure: per-domain state is only as
          private as what that closure returns *)
}

type raise_class =
  | Rfailure of string
  | Rinvalid of string
  | Rexit
  | Rexn of string

type raise_site = {
  r_class : raise_class;
  r_loc : Location.t;
  r_offset : int;
}

type fn = {
  f_name : string;
  f_loc : Location.t;
  idents : SSet.t;
  constructs : SSet.t;
  raises : raise_site list;
  caught : SSet.t;
  try_spans : (int * int) list;
  locals : (string * SSet.t) list;
  uses_mutex : bool;
}

type pool_site = {
  p_callee : string;
  p_loc : Location.t;
  p_fn : string;
  p_seeds : SSet.t;
}

type module_info = {
  path : string;
  module_name : string;
  aliases : (string * string) list;
  mutable_fields : SSet.t;
  mutables : mutable_binding list;
  fns : fn list;
  pool_sites : pool_site list;
}

type t

val kind_label : mutable_kind -> string

val mutex_names : string list
(** Identifiers whose presence in a body means it takes a lock
    ([Mutex.lock] / [Mutex.protect] / [Mutex.try_lock]). *)

val normalize_name : string -> string
(** Drop a leading [Stdlib.] qualifier. *)

val of_parsed : Src_ast.parsed -> module_info
val of_files : Src_ast.parsed list -> t

val find_module : t -> string -> module_info option
val modules : t -> module_info list
val find_fn : module_info -> string -> fn option
val find_mutable : module_info -> string -> mutable_binding option
val resolve_alias : module_info -> string -> string

type target =
  | Tfn of module_info * fn
  | Tmutable of module_info * mutable_binding

val resolve : t -> module_info -> string -> target option
(** Resolve a dotted identifier as seen from a module: unqualified names
    against its own top level, [M.x] through its aliases to any scanned
    module. Locals, parameters and the stdlib resolve to [None]. *)

val escaping_raises : fn -> raise_site list
(** Raise sites not protected by a try/match-exception range and whose
    constructor no handler in the same function catches. *)

val speaks_result : fn -> bool
(** Whether the function constructs or matches [Ok]/[Error] (or uses
    [Result.*]) — i.e. participates in the result taxonomy. *)
