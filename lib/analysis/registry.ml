(* Check registry. Names live here (not scattered through Model_check) so
   that `dwv_lint checks`, the docs and the tests all read one list. *)

type layer = Model_layer | Source_layer | Ast_layer | Typed_layer | Sound_layer

type entry = { name : string; layer : layer; description : string }

let dim_arity = "dim-arity"
let spec_dims = "spec-dims"
let div_by_zero = "div-by-zero"
let exp_overflow = "exp-overflow"
let domain_eval = "domain-eval"
let spec_degenerate = "spec-degenerate"
let spec_overlap = "spec-overlap"
let spec_x0_unsafe = "spec-x0-unsafe"
let x0_in_domain = "x0-in-domain"
let nn_finite = "nn-finite"
let nn_activation = "nn-activation"
let nn_lipschitz = "nn-lipschitz"
let ctrl_shape = "ctrl-shape"
let missing_mli = "missing-mli"
let domain_safety = "domain-safety"
let exn_escape = "exn-escape"
let ast_parse = "ast-parse"
let engine_diff = "engine-diff"
let alloc_hotspot = "alloc-hotspot"
let budget_threading = "budget-threading"
let cmt_missing = "cmt-missing"
let rounding_flow = "rounding-flow"
let cache_purity = "cache-purity"
let sound_allow = "sound-allow"

let model_entries =
  [
    (dim_arity, "dynamics arity: every Var/Input index is within the declared (n, m)");
    (spec_dims, "specification sets share the dynamics' state dimension");
    (div_by_zero, "no Div denominator's interval enclosure over X0 contains zero");
    (exp_overflow, "no Exp argument's enclosure over X0 reaches the double overflow range");
    (domain_eval, "interval evaluation of dynamics subterms over X0 succeeds");
    (spec_degenerate, "initial/goal/unsafe boxes have non-empty interior");
    (spec_overlap, "goal and unsafe sets are disjoint");
    (spec_x0_unsafe, "initial set does not already intersect the unsafe set");
    (x0_in_domain, "initial set is contained in the declared operating domain");
    (nn_finite, "every serialized network weight and bias is finite");
    (nn_activation, "scaled NN controllers end in a bounded activation");
    (nn_lipschitz, "the network's global Lipschitz bound is finite and sane");
    (ctrl_shape, "controller input/output shape matches the plant's (n, m)");
  ]

let ast_entries =
  [
    ( domain_safety,
      "no Pool/Domain task closure reaches unguarded module-level mutable state" );
    ( exn_escape,
      "hot-path functions cannot raise past the Dwv_error.t result taxonomy" );
    ( ast_parse,
      "every linted implementation parses with the compiler front end (regex \
       fallback otherwise)" );
    (engine_diff, "AST and regex engines agree on every shared rule (differential mode)");
  ]

let typed_entries =
  [
    ( alloc_hotspot,
      "no hot-loop allocation sites beyond the committed ALLOC_baseline.json \
       (boxed floats, tuples/records/closures in loops, polymorphic compare on \
       float types, mutable captures in Pool tasks)" );
    ( budget_threading,
      "every call path from a public verify/learn/initset entry point to the \
       flowpipe/ODE kernels threads a Budget.t" );
    ( cmt_missing,
      "the typed engine found .cmt files for the requested roots (run `dune \
       build @check` first)" );
  ]

let sound_entries =
  [
    ( rounding_flow,
      "no raw round-to-nearest float arithmetic on enclosure/remainder \
       dataflow outside the audited widening primitives (widen, Cert_ival \
       ulp steppers)" );
    ( cache_purity,
      "every function reachable from Cert_key fingerprints and cert \
       validation reads no clock, RNG, Domain identity, environment or \
       unkeyed mutable global" );
    ( sound_allow,
      "every layer-5 allowlist entry still matches a real site (stale \
       entries are errors)" );
  ]

let all =
  List.map
    (fun (name, description) -> { name; layer = Model_layer; description })
    model_entries
  @ List.map
      (fun (r : Source_rules.rule) ->
        { name = r.Source_rules.name; layer = Source_layer; description = r.message })
      Source_rules.builtin
  @ [
      {
        name = missing_mli;
        layer = Source_layer;
        description = "every library .ml has a corresponding .mli interface";
      };
    ]
  @ List.map
      (fun (name, description) -> { name; layer = Ast_layer; description })
      ast_entries
  @ List.map
      (fun (name, description) -> { name; layer = Typed_layer; description })
      typed_entries
  @ List.map
      (fun (name, description) -> { name; layer = Sound_layer; description })
      sound_entries

let layer_label = function
  | Model_layer -> "model"
  | Source_layer -> "source"
  | Ast_layer -> "ast"
  | Typed_layer -> "typed"
  | Sound_layer -> "sound"
