(** Budget-discipline verification over the typed call graph.

    The PR-2 invariant, machine-checked: every call-graph path from a
    public verify/learn/initset entry point to the flowpipe/ODE kernels
    ({!targets}) must thread a [Budget.t], and the budget must actually
    be consulted ([Budget.check]/[spend_call]/[spend_steps]) somewhere
    along the way. Until now this held by convention; the typed trees
    make "this optional [?budget] was omitted at this call site" a fact.

    Per entry point the check asserts:
    - the entry accepts a [Budget.t] parameter;
    - no budget-scoped function drops the budget when calling an
      internal callee that both accepts one and (transitively) consumes
      one — an omitted [?budget] there severs the chain;
    - no {!targets} call site is reached without budget scope;
    - some budget sink is reachable with the budget in scope.

    Calls through function-valued parameters (the [~verify] closures)
    are invisible to the static graph; the systems' own entry points are
    therefore all checked directly, which closes the loop. *)

(** ["Unit.fn"] entry points checked by default: the four systems'
    [verify_robust]/[verify_robust_from], [Learner.learn] and
    [Initset.search]. *)
val default_entries : string list

(** Kernel call sites every path must reach budgeted: [Rk45.integrate],
    [Taylor_reach.step] and the [Verifier] flowpipe drivers. *)
val targets : string list

(** Run the check. [budget-threading] errors on violations; an entry
    name that does not resolve in the index is itself an error (the
    check's promise is that these entry points are verified). *)
val analyze : ?entries:string list -> Cmt_index.t -> Diagnostics.t list
