(** Structured diagnostics shared by every analysis layer: each finding
    names the check that produced it, where it points (a model path or a
    source position), how severe it is, and — when known — how to fix it.
    Renders both human-readable and machine-readable (JSON lines). *)

type severity = Error | Warn | Info

type location =
  | Model of string
      (** Path into a model under analysis, e.g. ["acc/dynamics[1]"]. *)
  | File of { path : string; line : int; col : int }
      (** 1-based line and column in a source file. *)

type t = {
  check : string;       (** registry name of the check, e.g. ["div-by-zero"] *)
  severity : severity;
  loc : location;
  message : string;
  hint : string option; (** suggested fix, when one is known *)
}

val make : ?hint:string -> severity -> check:string -> loc:location -> string -> t
val error : ?hint:string -> check:string -> loc:location -> string -> t
val warn : ?hint:string -> check:string -> loc:location -> string -> t
val info : ?hint:string -> check:string -> loc:location -> string -> t

val severity_label : severity -> string

(** Stable order: by location, then severity (errors first), then check. *)
val sort : t list -> t list

val count : severity -> t list -> int
val has_errors : t list -> bool

(** [gcc]-style one-liner plus an indented [hint:] line when present. *)
val pp : Format.formatter -> t -> unit

(** The one-liner alone (no hint): one diagnostic per output line. *)
val pp_plain : Format.formatter -> t -> unit

(** One JSON object per diagnostic (no trailing newline). *)
val to_json : t -> string

(** The full report as one JSON document:
    [{"version":1,"summary":{"errors":..,"warnings":..,"notes":..},
      "diagnostics":[...]}], diagnostics in {!sort} order. This is the
    shape CI archives; a golden test pins it, bump ["version"] on any
    field change. *)
val report_to_json : t list -> string

(** The full report as one SARIF 2.1.0 document (one run, driver
    ["dwv_lint"], results in {!sort} order). [Error]/[Warn]/[Info] map
    to SARIF levels [error]/[warning]/[note]; file locations become
    physical locations, model paths logical locations. Golden-tested
    like {!report_to_json}. *)
val report_to_sarif : t list -> string

(** Human-readable roll-up, e.g. ["3 errors, 1 warning"]. *)
val pp_summary : Format.formatter -> t list -> unit
