(* Per-module inventory over the Parsetree: which top-level bindings are
   mutable state (and how they are guarded), what every top-level
   function references (an approximate intra-library call graph keyed by
   flattened identifiers), where exceptions are raised and caught, and
   where work is fanned out to other domains (Pool.map / Domain.spawn).

   The call graph is deliberately name-based, not type-based: an
   identifier [M.f] links to module [M]'s binding [f] when a file named
   m.ml is in the scanned set, with local [module X = ...] aliases
   resolved one level. That over-approximates (a shadowed name links to
   the top-level one) and under-approximates (calls through function
   arguments or first-class modules are invisible) — DESIGN.md §10 spells
   out both directions. It is exactly enough to follow the shapes the
   hot paths actually use: closures calling top-level helpers, helpers
   touching module-level tables. *)

module SSet = Set.Make (String)

type mutable_kind =
  | Ref
  | Hashtable
  | Buffer_t
  | Array_t
  | Queue_t
  | Stack_t
  | Bytes_t
  | Record_mutable
  | Atomic_t
  | Dls_t
  | Sync_t

type guard =
  | Unguarded        (* raw shared state: needs external mediation *)
  | Atomic_guarded   (* Atomic.t: every access is a primitive *)
  | Dls_guarded      (* Domain.DLS: per-domain by construction *)
  | Sync_primitive   (* Mutex/Condition/Semaphore themselves *)

type mutable_binding = {
  m_name : string;
  m_kind : mutable_kind;
  m_guard : guard;
  m_loc : Location.t;
  m_init_idents : SSet.t;
      (* identifiers in the creator's arguments — for a Domain.DLS key,
         the initializer closure: per-domain state is only as private as
         what that closure returns *)
}

type raise_class =
  | Rfailure of string   (* failwith / raise (Failure _) *)
  | Rinvalid of string   (* invalid_arg / Invalid_argument / assert-like *)
  | Rexit                (* Stdlib.exit *)
  | Rexn of string       (* raise Constructor *)

type raise_site = {
  r_class : raise_class;
  r_loc : Location.t;
  r_offset : int;        (* absolute char offset, for try containment *)
}

type fn = {
  f_name : string;
  f_loc : Location.t;
  idents : SSet.t;                  (* every identifier in the body *)
  constructs : SSet.t;              (* constructor names (exprs + patterns) *)
  raises : raise_site list;
  caught : SSet.t;                  (* exn constructors matched by a handler;
                                       "*" when a wildcard handler exists *)
  try_spans : (int * int) list;     (* protected char ranges *)
  locals : (string * SSet.t) list;  (* let-bound names inside the body *)
  uses_mutex : bool;
}

type pool_site = {
  p_callee : string;     (* "Pool.map", "Domain.spawn", ... *)
  p_loc : Location.t;
  p_fn : string;         (* enclosing top-level binding, "" at module init *)
  p_seeds : SSet.t;      (* identifiers of the task argument *)
}

type module_info = {
  path : string;
  module_name : string;
  aliases : (string * string) list;
  mutable_fields : SSet.t;
  mutables : mutable_binding list;
  fns : fn list;
  pool_sites : pool_site list;
}

type t = { modules : (string, module_info) Hashtbl.t }

let kind_label = function
  | Ref -> "ref cell"
  | Hashtable -> "hash table"
  | Buffer_t -> "buffer"
  | Array_t -> "array"
  | Queue_t -> "queue"
  | Stack_t -> "stack"
  | Bytes_t -> "byte buffer"
  | Record_mutable -> "record with mutable fields"
  | Atomic_t -> "atomic"
  | Dls_t -> "domain-local key"
  | Sync_t -> "synchronization primitive"

(* ---------- identifier normalization ---------- *)

let drop_stdlib parts =
  match parts with "Stdlib" :: (_ :: _ as rest) -> rest | parts -> parts

let normalize_name name = String.concat "." (drop_stdlib (String.split_on_char '.' name))

(* ---------- light scan: every ident / constructor in an expression ---------- *)

let scan_idents expr =
  let idents = ref SSet.empty and constructs = ref SSet.empty in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } ->
            idents := SSet.add (normalize_name (Src_ast.name_of txt)) !idents
          | Parsetree.Pexp_construct ({ txt; _ }, _) ->
            constructs := SSet.add (Longident.last txt) !constructs
          | _ -> ());
          default_iterator.expr self e);
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_construct ({ txt; _ }, _) ->
            constructs := SSet.add (Longident.last txt) !constructs
          | _ -> ());
          default_iterator.pat self p);
    }
  in
  iter.expr iter expr;
  (!idents, !constructs)

(* ---------- full scan of one top-level binding body ---------- *)

let exn_constructor_of_pattern p =
  let rec go (p : Parsetree.pattern) =
    match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_construct ({ txt; _ }, _) -> [ Longident.last txt ]
    | Parsetree.Ppat_or (a, b) -> go a @ go b
    | Parsetree.Ppat_alias (a, _) -> go a
    | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> [ "*" ]
    | _ -> [ "*" ]
  in
  go p

let raise_of_apply fn_name (args : (Asttypes.arg_label * Parsetree.expression) list) =
  match fn_name with
  | "failwith" -> Some (Rfailure "failwith")
  | "invalid_arg" -> Some (Rinvalid "invalid_arg")
  | "exit" -> Some Rexit
  | "raise" | "raise_notrace" -> (
    match args with
    | (_, { Parsetree.pexp_desc = Parsetree.Pexp_construct ({ txt; _ }, _); _ }) :: _ -> (
      match Longident.last txt with
      | "Failure" -> Some (Rfailure "raise Failure")
      | "Invalid_argument" -> Some (Rinvalid "raise Invalid_argument")
      | c -> Some (Rexn c))
    | _ -> None (* re-raise of a bound exception value: almost always a
                   handler forwarding; skipped (documented) *))
  | _ -> None

(* Identify Pool fan-out / Domain.spawn call sites and pull out the task
   argument. [resolve_alias] maps a local module alias to the referenced
   module's name (one level). *)
let pool_task ~resolve_alias fn_name (args : (Asttypes.arg_label * Parsetree.expression) list) =
  let parts = String.split_on_char '.' fn_name in
  match List.rev parts with
  | fname :: mname :: _ -> (
    let m = resolve_alias mname in
    let positional = List.filter (fun (l, _) -> l = Asttypes.Nolabel) args in
    match (m, fname) with
    | "Pool", ("map" | "mapi") -> (
      (* Pool.map pool task items: the task is the second positional *)
      match positional with
      | _ :: (_, task) :: _ -> Some (m ^ "." ^ fname, task)
      | _ -> None)
    | "Pool", "map_reduce" -> (
      match List.assoc_opt (Asttypes.Labelled "map") args with
      | Some task -> Some (m ^ "." ^ fname, task)
      | None -> None)
    | "Domain", "spawn" -> (
      match positional with (_, task) :: _ -> Some ("Domain.spawn", task) | _ -> None)
    | _ -> None)
  | _ -> None

type body_scan = {
  b_idents : SSet.t;
  b_constructs : SSet.t;
  b_raises : raise_site list;
  b_caught : SSet.t;
  b_try_spans : (int * int) list;
  b_locals : (string * SSet.t) list;
  b_pool_sites : (string * Location.t * SSet.t) list;
}

let scan_body ~resolve_alias expr =
  let idents = ref SSet.empty and constructs = ref SSet.empty in
  let raises = ref [] and caught = ref SSet.empty and try_spans = ref [] in
  let locals = ref [] and pool_sites = ref [] in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } ->
            idents := SSet.add (normalize_name (Src_ast.name_of txt)) !idents
          | Parsetree.Pexp_construct ({ txt; _ }, _) ->
            constructs := SSet.add (Longident.last txt) !constructs
          | Parsetree.Pexp_try (body, cases) ->
            try_spans := Src_ast.span body.Parsetree.pexp_loc :: !try_spans;
            List.iter
              (fun (c : Parsetree.case) ->
                List.iter
                  (fun name -> caught := SSet.add name !caught)
                  (exn_constructor_of_pattern c.Parsetree.pc_lhs))
              cases
          | Parsetree.Pexp_match (scrutinee, cases) ->
            let exn_cases =
              List.concat_map
                (fun (c : Parsetree.case) ->
                  match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
                  | Parsetree.Ppat_exception p -> exn_constructor_of_pattern p
                  | _ -> [])
                cases
            in
            if exn_cases <> [] then begin
              try_spans := Src_ast.span scrutinee.Parsetree.pexp_loc :: !try_spans;
              List.iter (fun name -> caught := SSet.add name !caught) exn_cases
            end
          | Parsetree.Pexp_let (_, vbs, _) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
                | Parsetree.Ppat_var { txt = name; _ } ->
                  let ids, _ = scan_idents vb.Parsetree.pvb_expr in
                  locals := (name, ids) :: !locals
                | _ -> ())
              vbs
          | Parsetree.Pexp_apply
              ({ Parsetree.pexp_desc = Parsetree.Pexp_ident { txt; loc }; _ }, args) -> (
            let name = normalize_name (Src_ast.name_of txt) in
            (match raise_of_apply name args with
            | Some r_class ->
              raises :=
                { r_class; r_loc = loc; r_offset = fst (Src_ast.span loc) } :: !raises
            | None -> ());
            match pool_task ~resolve_alias name args with
            | Some (callee, task) ->
              let seeds, _ = scan_idents task in
              pool_sites := (callee, loc, seeds) :: !pool_sites
            | None -> ())
          | _ -> ());
          default_iterator.expr self e);
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_construct ({ txt; _ }, _) ->
            constructs := SSet.add (Longident.last txt) !constructs
          | _ -> ());
          default_iterator.pat self p);
    }
  in
  iter.expr iter expr;
  {
    b_idents = !idents;
    b_constructs = !constructs;
    b_raises = !raises;
    b_caught = !caught;
    b_try_spans = !try_spans;
    b_locals = !locals;
    b_pool_sites = !pool_sites;
  }

(* ---------- top-level binding classification ---------- *)

let rec unwrap_expr (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_coerce (e, _, _) -> unwrap_expr e
  | _ -> e

let rec binding_name (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> Some txt
  | Parsetree.Ppat_constraint (p, _) -> Some (Option.value ~default:"" (binding_name p))
  | _ -> None

(* Creator applications whose result is shared mutable state (or a
   guarded flavor of it). Creations hidden behind helper functions
   ([let t = make_table ()]) are NOT recognized — a documented
   false-negative shape. [table_modules] holds local functor instances
   of [Hashtbl.Make]/[MakeSeeded], whose [create] is a hashtable maker
   under a non-standard module name. *)
let creation_of_std name =
  match normalize_name name with
  | "ref" -> Some (Ref, Unguarded)
  | "Hashtbl.create" -> Some (Hashtable, Unguarded)
  | "Buffer.create" -> Some (Buffer_t, Unguarded)
  | "Array.make" | "Array.create_float" | "Array.init" | "Array.copy" | "Array.of_list"
    -> Some (Array_t, Unguarded)
  | "Queue.create" -> Some (Queue_t, Unguarded)
  | "Stack.create" -> Some (Stack_t, Unguarded)
  | "Bytes.create" | "Bytes.make" -> Some (Bytes_t, Unguarded)
  | "Atomic.make" -> Some (Atomic_t, Atomic_guarded)
  | "Domain.DLS.new_key" -> Some (Dls_t, Dls_guarded)
  | "Mutex.create" | "Condition.create" | "Semaphore.Counting.make"
  | "Semaphore.Binary.make" ->
    Some (Sync_t, Sync_primitive)
  | _ -> None

let creation_of ?(table_modules = SSet.empty) name =
  match creation_of_std name with
  | Some _ as r -> r
  | None -> (
    match String.rindex_opt name '.' with
    | Some i
      when String.sub name (i + 1) (String.length name - i - 1) = "create"
           && SSet.mem (String.sub name 0 i) table_modules ->
      Some (Hashtable, Unguarded)
    | _ -> None)

let classify_binding ~mutable_fields ~table_modules (vb : Parsetree.value_binding) =
  match binding_name vb.Parsetree.pvb_pat with
  | None | Some "" -> `Skip
  | Some name -> (
    let e = unwrap_expr vb.Parsetree.pvb_expr in
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply
        ({ Parsetree.pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, args) -> (
      match creation_of ~table_modules (Src_ast.name_of txt) with
      | Some (kind, guard) ->
        let init_idents =
          List.fold_left
            (fun acc (_, arg) -> SSet.union acc (fst (scan_idents arg)))
            SSet.empty args
        in
        `Mutable (name, kind, guard, init_idents)
      | None -> `Fn name)
    | Parsetree.Pexp_record (fields, _) ->
      let has_mutable_field =
        List.exists
          (fun (({ txt; _ } : Longident.t Location.loc), _) ->
            SSet.mem (Longident.last txt) mutable_fields)
          fields
      in
      if has_mutable_field then `Mutable (name, Record_mutable, Unguarded, SSet.empty)
      else `Fn name
    | _ -> `Fn name)

let mutex_names = [ "Mutex.lock"; "Mutex.protect"; "Mutex.try_lock" ]

let of_parsed (file : Src_ast.parsed) =
  let module_name = Src_ast.module_of_path file.Src_ast.path in
  (* pass 1: module aliases and mutable record fields *)
  let aliases = ref [] and mutable_fields = ref SSet.empty in
  let table_modules = ref SSet.empty in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_module
          {
            Parsetree.pmb_name = { txt = Some alias; _ };
            pmb_expr = { Parsetree.pmod_desc = Parsetree.Pmod_ident { txt; _ }; _ };
            _;
          } ->
        aliases := (alias, Longident.last txt) :: !aliases
      | Parsetree.Pstr_module
          {
            Parsetree.pmb_name = { txt = Some m; _ };
            pmb_expr =
              {
                Parsetree.pmod_desc =
                  Parsetree.Pmod_apply
                    ( { Parsetree.pmod_desc = Parsetree.Pmod_ident { txt; _ }; _ },
                      _ );
                _;
              };
            _;
          }
        when List.mem (Src_ast.name_of txt) [ "Hashtbl.Make"; "Hashtbl.MakeSeeded" ]
        ->
        table_modules := SSet.add m !table_modules
      | Parsetree.Pstr_type (_, decls) ->
        List.iter
          (fun (d : Parsetree.type_declaration) ->
            match d.Parsetree.ptype_kind with
            | Parsetree.Ptype_record labels ->
              List.iter
                (fun (l : Parsetree.label_declaration) ->
                  if l.Parsetree.pld_mutable = Asttypes.Mutable then
                    mutable_fields := SSet.add l.Parsetree.pld_name.txt !mutable_fields)
                labels
            | _ -> ())
          decls
      | _ -> ())
    file.Src_ast.ast;
  let resolve_alias m =
    match List.assoc_opt m !aliases with Some target -> target | None -> m
  in
  (* pass 2: bindings *)
  let mutables = ref [] and fns = ref [] and pool_sites = ref [] in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match
              classify_binding ~mutable_fields:!mutable_fields
                ~table_modules:!table_modules vb
            with
            | `Skip -> ()
            | `Mutable (name, kind, guard, init_idents) ->
              mutables :=
                { m_name = name; m_kind = kind; m_guard = guard;
                  m_loc = vb.Parsetree.pvb_loc; m_init_idents = init_idents }
                :: !mutables
            | `Fn name ->
              let b = scan_body ~resolve_alias vb.Parsetree.pvb_expr in
              let fn =
                {
                  f_name = name;
                  f_loc = vb.Parsetree.pvb_loc;
                  idents = b.b_idents;
                  constructs = b.b_constructs;
                  raises = b.b_raises;
                  caught = b.b_caught;
                  try_spans = b.b_try_spans;
                  locals = b.b_locals;
                  uses_mutex =
                    List.exists (fun m -> SSet.mem m b.b_idents) mutex_names;
                }
              in
              fns := fn :: !fns;
              List.iter
                (fun (callee, loc, seeds) ->
                  pool_sites :=
                    { p_callee = callee; p_loc = loc; p_fn = name; p_seeds = seeds }
                    :: !pool_sites)
                b.b_pool_sites)
          vbs
      | _ -> ())
    file.Src_ast.ast;
  {
    path = file.Src_ast.path;
    module_name;
    aliases = !aliases;
    mutable_fields = !mutable_fields;
    mutables = List.rev !mutables;
    fns = List.rev !fns;
    pool_sites = List.rev !pool_sites;
  }

let of_files files =
  let modules = Hashtbl.create 64 in
  List.iter
    (fun file ->
      let info = of_parsed file in
      Hashtbl.replace modules info.module_name info)
    files;
  { modules }

let find_module t name = Hashtbl.find_opt t.modules name
let modules t = Hashtbl.fold (fun _ m acc -> m :: acc) t.modules []

let find_fn mi name = List.find_opt (fun f -> f.f_name = name) mi.fns
let find_mutable mi name = List.find_opt (fun m -> m.m_name = name) mi.mutables

let resolve_alias mi name =
  match List.assoc_opt name mi.aliases with Some t -> t | None -> name

(* ---------- name resolution over the index ---------- *)

type target =
  | Tfn of module_info * fn
  | Tmutable of module_info * mutable_binding

(* Resolve a (normalized) dotted identifier as seen from [mi]. Unqualified
   names resolve against [mi]'s own top level; [M.x] resolves through
   [mi]'s aliases to a scanned module. Anything else (locals, parameters,
   stdlib) resolves to nothing. *)
let resolve t mi name =
  match List.rev (String.split_on_char '.' name) with
  | [] -> None
  | [ n ] -> (
    match find_mutable mi n with
    | Some m -> Some (Tmutable (mi, m))
    | None -> ( match find_fn mi n with Some f -> Some (Tfn (mi, f)) | None -> None))
  | n :: m :: _ -> (
    match find_module t (resolve_alias mi m) with
    | None -> None
    | Some dm -> (
      match find_mutable dm n with
      | Some mb -> Some (Tmutable (dm, mb))
      | None -> ( match find_fn dm n with Some f -> Some (Tfn (dm, f)) | None -> None)))

(* Escaped raise sites of a function: not lexically inside a protected
   try/match-exception range, and not of a constructor some handler in
   the same function catches (that second clause covers the common
   [let fail e = ...; raise Exit] helper + [try ... with Exit] pairing). *)
let escaping_raises fn =
  let caught name = SSet.mem name fn.caught || SSet.mem "*" fn.caught in
  List.filter
    (fun site ->
      let protected =
        List.exists
          (fun (lo, hi) -> site.r_offset >= lo && site.r_offset < hi)
          fn.try_spans
      in
      (not protected)
      &&
      match site.r_class with
      | Rfailure _ -> not (caught "Failure")
      | Rinvalid _ -> not (caught "Invalid_argument")
      | Rexit -> true
      | Rexn c -> not (caught c))
    fn.raises

(* Does [fn] participate in the result taxonomy? Constructing or matching
   Ok/Error (or touching the Result module) is the signature of a
   function that reports failure as data; its precondition raises are
   accepted. *)
let speaks_result fn =
  SSet.mem "Ok" fn.constructs
  || SSet.mem "Error" fn.constructs
  || SSet.exists (fun id -> String.length id > 7 && String.sub id 0 7 = "Result.") fn.idents
