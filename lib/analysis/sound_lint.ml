(* Layer-5 engine driver. See the .mli. *)

module D = Diagnostics

let ast_of_tree ?(exclude = []) roots =
  let parsed = ref [] in
  List.iter
    (fun path ->
      if Filename.check_suffix path ".ml" then
        match Src_ast.parse_file path with
        | Ok p -> parsed := p :: !parsed
        | Error _ -> () (* the parse failure is ast-lint's diagnostic, not ours *))
    (Source_lint.collect_tree ~exclude roots);
  Ast_index.of_files (List.rev !parsed)

let lint_tree ?build_dir ?(exclude = []) ?rounding ?purity ~roots () =
  let idx = Cmt_index.scan ?build_dir ~exclude ~roots () in
  if Cmt_index.units idx = [] then
    [
      D.error ~check:Registry.cmt_missing
        ~loc:(D.Model "sound/cmt-index")
        (Fmt.str "no .cmt files found under %s for roots %s"
           (match build_dir with
           | Some d -> d
           | None -> Cmt_index.default_build_dir ())
           (String.concat " " roots))
        ~hint:"run `dune build @check` first; executables only get .cmts from \
               the @check alias";
    ]
  else begin
    let cmt_diags =
      List.map
        (fun (path, msg) ->
          D.warn ~check:Registry.cmt_missing
            ~loc:(D.Model ("sound/cmt-index/" ^ Filename.basename path))
            (Fmt.str "unreadable cmt %s: %s" path msg))
        (Cmt_index.load_errors idx)
    in
    let ast = ast_of_tree ~exclude roots in
    let rounding_diags = Rounding_flow.analyze ?config:rounding idx in
    let purity_diags = Cache_purity.analyze ?config:purity ~ast idx in
    D.sort (cmt_diags @ rounding_diags @ purity_diags)
  end
