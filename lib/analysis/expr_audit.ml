(* Read-only walks over the dynamics AST. The index bounds use the generic
   catamorphism; the subterm collectors need the subterm itself (not a
   folded value), so they are plain recursions. *)

module Expr = Dwv_expr.Expr

let max_var_index e =
  Expr.fold
    ~const:(fun _ -> -1)
    ~var:(fun i -> i)
    ~input:(fun _ -> -1)
    ~add:max ~sub:max ~mul:max ~div:max
    ~neg:(fun a -> a)
    ~pow:(fun a _ -> a)
    ~sin:(fun a -> a)
    ~cos:(fun a -> a)
    ~exp:(fun a -> a)
    ~tanh:(fun a -> a)
    e

let max_input_index e =
  Expr.fold
    ~const:(fun _ -> -1)
    ~var:(fun _ -> -1)
    ~input:(fun j -> j)
    ~add:max ~sub:max ~mul:max ~div:max
    ~neg:(fun a -> a)
    ~pow:(fun a _ -> a)
    ~sin:(fun a -> a)
    ~cos:(fun a -> a)
    ~exp:(fun a -> a)
    ~tanh:(fun a -> a)
    e

let uses_input e = max_input_index e >= 0

let rec collect ~pick acc (e : Expr.t) =
  let acc =
    match pick e.Expr.node with Some sub -> sub :: acc | None -> acc
  in
  match e.Expr.node with
  | Const _ | Var _ | Input _ -> acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
    collect ~pick (collect ~pick acc a) b
  | Neg a | Sin a | Cos a | Exp a | Tanh a | Pow (a, _) -> collect ~pick acc a

let denominators e =
  List.rev
    (collect ~pick:(function Expr.Div (_, d) -> Some d | _ -> None) [] e)

let exp_args e =
  List.rev (collect ~pick:(function Expr.Exp a -> Some a | _ -> None) [] e)
