(* Domain-safety lint: no parallel task may reach unguarded module-level
   mutable state.

   For every Pool.map / Pool.mapi / Pool.map_reduce / Domain.spawn call
   site, take the task argument's identifiers and close them over the
   name-based call graph (same-module top level, let-bound locals of the
   enclosing function, and [M.f] across scanned modules). Any reachable
   reference to a top-level mutable binding is then judged:

     - Atomic / Mutex-or-Condition values are safe by construction;
       Domain.DLS keys are safe when their initializer builds fresh
       state — the initializer's identifiers are walked like task code,
       so a key whose closure captures a shared unguarded table is still
       flagged;
     - otherwise the access is MEDIATED when the function whose body
       contains the reference takes a lock itself (Mutex.lock/protect)
       or directly calls one that does — the shape of the memo tables in
       taylor_model.ml, where the table is passed to a locking helper;
     - anything else is a data race waiting for a schedule, reported as
       an error at the fan-out site.

   The traversal is transitive (a visited set bounds it); the *guard*
   judgment is one hop, which over-accepts (a lock anywhere in a callee
   counts) and never over-rejects — false-negative shapes are catalogued
   in DESIGN.md §10. *)

module D = Diagnostics
module SSet = Ast_index.SSet

let check_name = Registry.domain_safety

let hint =
  "guard the state with Atomic/Mutex/Domain.DLS, or make it per-task (see \
   DESIGN.md §10)"

(* Is an access from [accessor_idents] mediated? Lock taken in the same
   body, or in a directly-referenced function of the scanned set. *)
let mediated index mi accessor_idents =
  List.exists (fun m -> SSet.mem m accessor_idents) Ast_index.mutex_names
  || SSet.exists
       (fun id ->
         match Ast_index.resolve index mi id with
         | Some (Ast_index.Tfn (_, g)) -> g.Ast_index.uses_mutex
         | _ -> false)
       accessor_idents

let analyze index =
  let ds = ref [] in
  List.iter
    (fun (mi : Ast_index.module_info) ->
      List.iter
        (fun (site : Ast_index.pool_site) ->
          let locals =
            match Ast_index.find_fn mi site.Ast_index.p_fn with
            | Some f -> f.Ast_index.locals
            | None -> []
          in
          let visited = Hashtbl.create 32 in
          let reported = Hashtbl.create 8 in
          (* Walk one identifier set: the task's own, then each reached
             function's. [mi0] is the module whose body we are inside;
             [chain] is the call path from the task to the current body. *)
          let rec walk ~(mi0 : Ast_index.module_info) ~chain idents =
            let med = lazy (mediated index mi0 idents) in
            SSet.iter
              (fun id ->
                (* locals of the enclosing function are visible only from
                   the task's own module *)
                let local =
                  if mi0.Ast_index.module_name = mi.Ast_index.module_name then
                    List.assoc_opt id locals
                  else None
                in
                match local with
                | Some lidents ->
                  if not (Hashtbl.mem visited ("local:" ^ id)) then begin
                    Hashtbl.add visited ("local:" ^ id) ();
                    walk ~mi0:mi ~chain:(id :: chain) lidents
                  end
                | None -> (
                  match Ast_index.resolve index mi0 id with
                  | Some (Ast_index.Tfn (dm, g)) ->
                    let key = dm.Ast_index.module_name ^ "." ^ g.Ast_index.f_name in
                    if not (Hashtbl.mem visited key) then begin
                      Hashtbl.add visited key ();
                      walk ~mi0:dm ~chain:(key :: chain) g.Ast_index.idents
                    end
                  | Some (Ast_index.Tmutable (dm, mb)) -> (
                    match mb.Ast_index.m_guard with
                    | Ast_index.Dls_guarded ->
                      (* per-domain only if the key's initializer builds
                         fresh state: a closure returning a shared table
                         (Domain.DLS.new_key (fun () -> shared)) hands
                         every domain the same object, so walk the
                         initializer's identifiers like any task code *)
                      let key =
                        "dls:" ^ dm.Ast_index.module_name ^ "."
                        ^ mb.Ast_index.m_name
                      in
                      if not (Hashtbl.mem visited key) then begin
                        Hashtbl.add visited key ();
                        walk ~mi0:dm
                          ~chain:
                            ((dm.Ast_index.module_name ^ "."
                             ^ mb.Ast_index.m_name ^ "[init]")
                            :: chain)
                          mb.Ast_index.m_init_idents
                      end
                    | Ast_index.Atomic_guarded | Ast_index.Sync_primitive ->
                      ()
                    | Ast_index.Unguarded ->
                      if not (Lazy.force med) then begin
                        let key =
                          dm.Ast_index.module_name ^ "." ^ mb.Ast_index.m_name
                        in
                        if not (Hashtbl.mem reported key) then begin
                          Hashtbl.add reported key ();
                          let def_line, _ =
                            Src_ast.start_line_col mb.Ast_index.m_loc
                          in
                          let via =
                            match chain with
                            | [] -> "directly"
                            | c -> "via " ^ String.concat " -> " (List.rev c)
                          in
                          ds :=
                            D.error ~check:check_name
                              ~loc:
                                (Src_ast.file_loc ~path:mi.Ast_index.path
                                   site.Ast_index.p_loc)
                              (Fmt.str
                                 "task passed to %s reaches module-level mutable \
                                  state '%s' (%s, %s:%d) %s without \
                                  Atomic/Mutex/Domain.DLS mediation"
                                 site.Ast_index.p_callee mb.Ast_index.m_name
                                 (Ast_index.kind_label mb.Ast_index.m_kind)
                                 dm.Ast_index.path def_line via)
                              ~hint
                            :: !ds
                        end
                      end)
                  | None -> ()))
              idents
          in
          walk ~mi0:mi ~chain:[] site.Ast_index.p_seeds)
        mi.Ast_index.pool_sites)
    (Ast_index.modules index);
  List.rev !ds
