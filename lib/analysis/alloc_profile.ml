(* Allocation-hotspot profile. See the .mli for the contract.

   Two halves: a BFS over the Cmt_index call graph from the numeric
   entry points (recording the discovery path, so every site can say how
   a hot loop reaches it), then a typed body walk per reachable function
   that tracks loop-nesting depth — syntactic for/while loops and the
   function arguments of the usual iteration combinators both count —
   and classifies the allocation sites the flat-kernels refactor cares
   about. *)

module D = Diagnostics

type site = {
  s_class : string;
  s_weight : int;
  s_depth : int;
  s_score : int;
  s_file : string;
  s_line : int;
  s_col : int;
  s_fn : string;
  s_detail : string;
  s_path : string;
}

let default_entries =
  [
    "Taylor_model.mul";
    "Taylor_model.bound";
    "Taylor_reach.step";
    "Verifier.nn_flowpipe_outcome";
    "Rk45.integrate";
    "Bernstein.approximate";
    "Bernstein.remainder";
    "Bernstein.remainder_sampled";
    "Cert.encode";
    "Cert.decode";
    "Cert_check.validate_cert";
    "Cert_ival.eval_vec";
    "Scn_verify.verify_robust";
    "Scn_fuzz.run";
  ]

(* Function arguments of these run once per element: allocation inside
   them is allocation in a loop. Pool combinators additionally mark
   their task closures (mutable captures there are cross-domain). *)
let loop_combinators =
  [
    "Array.iter"; "Array.iteri"; "Array.map"; "Array.mapi"; "Array.map2";
    "Array.iter2"; "Array.fold_left"; "Array.fold_right"; "Array.init";
    "Array.exists"; "Array.for_all"; "List.iter"; "List.iteri"; "List.map";
    "List.mapi"; "List.map2"; "List.fold_left"; "List.fold_right";
    "List.filter"; "List.filter_map"; "List.concat_map"; "List.init";
    "List.exists"; "List.for_all";
  ]

let is_pool_combinator callee =
  String.length callee > 5 && String.sub callee 0 5 = "Pool."

let is_loop_combinator callee =
  List.mem callee loop_combinators || is_pool_combinator callee

(* Callees that return a fresh array every call. Array.map/mapi double as
   loop combinators above; here they count as the allocation they are. *)
let array_allocators =
  [
    "Array.make"; "Array.init"; "Array.create_float"; "Array.make_matrix";
    "Array.copy"; "Array.append"; "Array.sub"; "Array.concat";
    "Array.of_list"; "Array.to_list"; "Array.map"; "Array.mapi"; "Array.map2";
  ]

let poly_compare_ops = [ "="; "<>"; "<"; ">"; "<="; ">="; "compare"; "min"; "max" ]

(* ocamlopt specializes the comparison *operators* at statically-known
   scalar float type; it never specializes the *functions* compare/min/
   max without inlining. So scalar float escapes the operator class but
   not the function class. *)
let scalar_specialized = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

let weight_of = function
  | "float-poly-compare" -> 8
  | "float-ref" -> 6
  | "task-mutable-state" -> 5
  | "closure-in-loop" | "tuple-in-loop" | "record-in-loop" -> 4
  | "list-cons-in-loop" | "array-alloc-in-loop" -> 3
  | "option-alloc-in-loop" | "boxed-float-let" -> 2
  | _ -> 1

let sort sites =
  List.sort
    (fun a b ->
      let c = compare b.s_score a.s_score in
      if c <> 0 then c
      else
        compare
          (a.s_file, a.s_line, a.s_col, a.s_class)
          (b.s_file, b.s_line, b.s_col, b.s_class))
    sites

(* ---------- reachability ---------- *)

(* BFS from the entry points over internal call edges, parents recorded
   at first discovery; [launches_pool] functions are extra roots (their
   closures run on worker domains regardless of who calls them). *)
let reachable idx entries =
  let parent : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push key from =
    if not (Hashtbl.mem parent key) then begin
      Hashtbl.add parent key from;
      Queue.add key queue
    end
  in
  let resolved, missing =
    List.partition (fun e -> Cmt_index.find_fn idx e <> None) entries
  in
  List.iter (fun e -> push e None) resolved;
  List.iter
    (fun (u : Cmt_index.unit_info) ->
      List.iter
        (fun (fn : Cmt_index.tfn) ->
          if
            List.exists
              (fun (c : Cmt_index.call) -> is_pool_combinator c.Cmt_index.c_callee)
              fn.Cmt_index.t_calls
          then push (Cmt_index.fn_key u fn) None)
        u.Cmt_index.u_fns)
    (Cmt_index.units idx);
  while not (Queue.is_empty queue) do
    let key = Queue.take queue in
    match Cmt_index.find_fn idx key with
    | None -> ()
    | Some (_, fn) ->
      List.iter
        (fun (c : Cmt_index.call) ->
          if c.Cmt_index.c_internal && Cmt_index.find_fn idx c.Cmt_index.c_callee <> None
          then push c.Cmt_index.c_callee (Some key))
        fn.Cmt_index.t_calls
  done;
  let path_of key =
    let rec up acc key =
      match Hashtbl.find_opt parent key with
      | Some (Some from) -> up (key :: acc) from
      | _ -> key :: acc
    in
    String.concat " -> " (up [] key)
  in
  (parent, path_of, missing)

(* ---------- the body walk ---------- *)

type walk_state = {
  mutable depth : int;
  mutable in_task : bool;
  mutable suppress_fun : bool;  (* inside a fun-chain: count the closure once *)
}

let profile_fn idx (u : Cmt_index.unit_info) (fn : Cmt_index.tfn) ~path =
  let sites = ref [] in
  let emit st s_class loc detail =
    let weight = weight_of s_class in
    let line, col = Src_ast.start_line_col loc in
    sites :=
      {
        s_class;
        s_weight = weight;
        s_depth = st.depth;
        s_score = weight * (1 + st.depth);
        s_file = u.Cmt_index.u_source;
        s_line = line;
        s_col = col;
        s_fn = Cmt_index.fn_key u fn;
        s_detail = detail;
        s_path = path;
      }
      :: !sites
  in
  let st = { depth = 0; in_task = false; suppress_fun = true } in
  let head_name e =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> Some (Cmt_index.canon_ident idx u p)
    | _ -> None
  in
  let open Tast_iterator in
  let with_state ~depth ~in_task ~suppress_fun k =
    let d, t, s = (st.depth, st.in_task, st.suppress_fun) in
    st.depth <- depth;
    st.in_task <- in_task;
    st.suppress_fun <- suppress_fun;
    k ();
    st.depth <- d;
    st.in_task <- t;
    st.suppress_fun <- s
  in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          let walk e' = self.expr self e' in
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_for (_, _, lo, hi, _, body) ->
            walk lo;
            walk hi;
            with_state ~depth:(st.depth + 1) ~in_task:st.in_task ~suppress_fun:true
              (fun () -> walk body)
          | Typedtree.Texp_while (cond, body) ->
            walk cond;
            with_state ~depth:(st.depth + 1) ~in_task:st.in_task ~suppress_fun:true
              (fun () -> walk body)
          | Typedtree.Texp_function { cases; _ } ->
            if st.depth >= 1 && not st.suppress_fun then
              emit st "closure-in-loop" e.Typedtree.exp_loc
                "closure allocated per iteration";
            List.iter
              (fun (c : Typedtree.value Typedtree.case) ->
                Option.iter walk c.Typedtree.c_guard;
                let chained =
                  match c.Typedtree.c_rhs.Typedtree.exp_desc with
                  | Typedtree.Texp_function _ -> true
                  | _ -> false
                in
                with_state ~depth:st.depth ~in_task:st.in_task ~suppress_fun:chained
                  (fun () -> walk c.Typedtree.c_rhs))
              cases
          | Typedtree.Texp_apply (head, args) -> (
            let callee = match head_name head with Some n -> n | None -> "" in
            (* classification at the call site *)
            (match args with
            | (_, Some first) :: _ when List.mem callee poly_compare_ops ->
              let ty = first.Typedtree.exp_type in
              let head_ty = Cmt_index.type_head idx u ty in
              if
                Cmt_index.type_mentions_float ty
                && not (head_ty = "float" && List.mem callee scalar_specialized)
              then
                emit st "float-poly-compare" e.Typedtree.exp_loc
                  (Fmt.str "polymorphic %s at %s" callee
                     (if head_ty = "" then "a composite float type" else head_ty))
            | _ -> ());
            (match args with
            | [ (_, Some arg) ] when callee = "ref" ->
              if Cmt_index.type_mentions_float arg.Typedtree.exp_type then
                emit st "float-ref" e.Typedtree.exp_loc "ref cell holding floats"
            | _ -> ());
            if st.depth >= 1 && List.mem callee array_allocators then
              emit st "array-alloc-in-loop" e.Typedtree.exp_loc
                (Fmt.str "%s allocates a fresh array per iteration" callee);
            (* recursion: function args of loop combinators run per
               element, so their bodies walk one level deeper *)
            walk head;
            let combinator = is_loop_combinator callee in
            let task = is_pool_combinator callee in
            List.iter
              (fun ((_, arg) : Asttypes.arg_label * Typedtree.expression option) ->
                match arg with
                | None -> ()
                | Some a -> (
                  match a.Typedtree.exp_desc with
                  | Typedtree.Texp_function _ when combinator ->
                    with_state ~depth:(st.depth + 1)
                      ~in_task:(st.in_task || task)
                      ~suppress_fun:true
                      (fun () -> walk a)
                  | _ -> walk a))
              args)
          | Typedtree.Texp_ident (p, _, _) ->
            if st.in_task then begin
              let head_ty = Cmt_index.type_head idx u e.Typedtree.exp_type in
              if head_ty = "ref" || head_ty = "Hashtbl.t" then
                emit st "task-mutable-state" e.Typedtree.exp_loc
                  (Fmt.str "task closure reads %s (%s) across domains"
                     (Cmt_index.canon_ident idx u p)
                     head_ty)
            end;
            default_iterator.expr self e
          | Typedtree.Texp_array _ ->
            if st.depth >= 1 then
              emit st "array-alloc-in-loop" e.Typedtree.exp_loc
                "array literal allocated per iteration";
            st.suppress_fun <- false;
            default_iterator.expr self e
          | Typedtree.Texp_tuple _ ->
            if st.depth >= 1 then
              emit st "tuple-in-loop" e.Typedtree.exp_loc "tuple allocated per iteration";
            st.suppress_fun <- false;
            default_iterator.expr self e
          | Typedtree.Texp_record _ ->
            if st.depth >= 1 then begin
              let head_ty = Cmt_index.type_head idx u e.Typedtree.exp_type in
              emit st "record-in-loop" e.Typedtree.exp_loc
                (Fmt.str "%s record allocated per iteration"
                   (if head_ty = "" then "a" else head_ty))
            end;
            st.suppress_fun <- false;
            default_iterator.expr self e
          | Typedtree.Texp_construct (_, cd, _ :: _) ->
            (if st.depth >= 1 then
               match cd.Types.cstr_name with
               | "::" ->
                 emit st "list-cons-in-loop" e.Typedtree.exp_loc
                   "list cell allocated per iteration"
               | "Some" ->
                 emit st "option-alloc-in-loop" e.Typedtree.exp_loc
                   "option allocated per iteration"
               | _ -> ());
            st.suppress_fun <- false;
            default_iterator.expr self e
          | Typedtree.Texp_let (_, vbs, _) ->
            if st.depth >= 1 then
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  let trivial =
                    match vb.Typedtree.vb_expr.Typedtree.exp_desc with
                    | Typedtree.Texp_constant _ | Typedtree.Texp_ident _ -> true
                    | _ -> false
                  in
                  if
                    (not trivial)
                    && Cmt_index.type_head idx u vb.Typedtree.vb_expr.Typedtree.exp_type
                       = "float"
                  then
                    emit st "boxed-float-let" vb.Typedtree.vb_loc
                      "float result boxed by the let binding")
                vbs;
            st.suppress_fun <- false;
            default_iterator.expr self e
          | _ ->
            st.suppress_fun <- false;
            default_iterator.expr self e);
    }
  in
  iter.expr iter fn.Cmt_index.t_body;
  !sites

let profile ?(entries = default_entries) idx =
  let parent, path_of, missing = reachable idx entries in
  let diags =
    List.map
      (fun e ->
        D.info ~check:Registry.alloc_hotspot ~loc:(D.Model ("alloc-profile/" ^ e))
          (Fmt.str "entry point %s not found in the typed index; skipped" e))
      missing
  in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) parent [] |> List.sort compare in
  let sites =
    List.concat_map
      (fun key ->
        match Cmt_index.find_fn idx key with
        | None -> []
        | Some (u, fn) -> profile_fn idx u fn ~path:(path_of key))
      keys
  in
  (sort sites, diags)

(* ---------- serialization & baseline ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let baseline_key s =
  Fmt.str "%s|%s|%s|%s" s.s_class s.s_file s.s_fn s.s_detail

let site_to_json s =
  Fmt.str
    "{\"key\":\"%s\",\"class\":\"%s\",\"score\":%d,\"weight\":%d,\"depth\":%d,\"file\":\"%s\",\"line\":%d,\"col\":%d,\"fn\":\"%s\",\"detail\":\"%s\",\"path\":\"%s\"}"
    (json_escape (baseline_key s))
    (json_escape s.s_class) s.s_score s.s_weight s.s_depth (json_escape s.s_file)
    s.s_line s.s_col (json_escape s.s_fn) (json_escape s.s_detail)
    (json_escape s.s_path)

let report_to_json sites =
  let sites = sort sites in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"version\":1,\"tool\":\"dwv_lint alloc-profile\",\"sites\":[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (site_to_json s))
    sites;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let count_keys keys =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    keys;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> List.sort compare

let key_re = Str.regexp {|"key":"\([^"]*\)"|}

let baseline_keys doc =
  let keys = ref [] in
  List.iter
    (fun line ->
      match Str.search_forward key_re line 0 with
      | _ -> keys := Str.matched_group 1 line :: !keys
      | exception Not_found -> ())
    (String.split_on_char '\n' doc);
  count_keys (List.rev !keys)

let diff_against_baseline ~baseline sites =
  let allowed = baseline_keys baseline in
  let sites = sort sites in
  let counts = count_keys (List.map baseline_key sites) in
  List.filter_map
    (fun (key, n) ->
      let budget = Option.value ~default:0 (List.assoc_opt key allowed) in
      if n <= budget then None
      else
        let s = List.find (fun s -> baseline_key s = key) sites in
        Some
          (D.error ~check:Registry.alloc_hotspot
             ~loc:(D.File { path = s.s_file; line = s.s_line; col = s.s_col })
             (Fmt.str
                "new hot-loop allocation: %s in %s (%s), %d site(s) vs %d in the \
                 baseline; reachable via %s"
                s.s_class s.s_fn s.s_detail n budget s.s_path)
             ~hint:"flatten the allocation (see ROADMAP: flat numeric kernels) or \
                    re-baseline with dwv_lint --engine typed --alloc-baseline"))
    counts
