(** Layer-2 lint: scan OCaml sources for the float-soundness footguns and
    hygiene issues in {!Source_rules.builtin}, plus the missing-[.mli]
    file check. Comments and string literals are stripped before matching,
    so documented operators and banner strings never trigger. *)

(** Blank out comments (nested, string-aware), string literals, [{|...|}]
    quoted strings and character literals, preserving every character
    position (replaced by spaces) so line/column reporting stays exact.
    Exposed for tests. *)
val strip : string -> string

(** Lint one source string as if it were the named file. *)
val lint_string : ?rules:Source_rules.rule list -> path:string -> string -> Diagnostics.t list

(** Lint one file on disk ([.ml] / [.mli]). *)
val lint_file : ?rules:Source_rules.rule list -> string -> Diagnostics.t list

(** Recursively lint every [.ml]/[.mli] under the given roots. Directories
    whose name starts with ['.'] or ['_'] (notably [_build]) are skipped;
    passing a root that itself points into [_build], or one that does not
    exist, is refused with [Invalid_argument]. Also applies the
    missing-[.mli] check to library modules (files whose path contains a
    [lib] component). *)
val lint_tree : ?rules:Source_rules.rule list -> string list -> Diagnostics.t list
