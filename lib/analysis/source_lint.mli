(** Layer-2 lint: scan OCaml sources for the float-soundness footguns and
    hygiene issues in {!Source_rules.builtin}, plus the missing-[.mli]
    file check. Comments and string literals are stripped before matching,
    so documented operators and banner strings never trigger. *)

(** Blank out comments (nested, string-aware), string literals, [{|...|}]
    quoted strings and character literals, preserving every character
    position (replaced by spaces) so line/column reporting stays exact.
    Exposed for tests. *)
val strip : string -> string

(** Lint one source string as if it were the named file. *)
val lint_string : ?rules:Source_rules.rule list -> path:string -> string -> Diagnostics.t list

(** Lint one file on disk ([.ml] / [.mli]). *)
val lint_file : ?rules:Source_rules.rule list -> string -> Diagnostics.t list

(** The missing-[.mli] check for one path: warns when a library module
    (path contains a [lib] component, suffix [.ml]) has no interface. *)
val missing_mli_check : string -> Diagnostics.t list

(** Is [path] under one of the [fragments]? Matched on contiguous whole
    path components, like {!Source_rules} allowlists — the exclusion
    predicate {!collect_tree} uses, exposed so other walkers (the typed
    layer's cmt scan) exclude identically. *)
val path_under : fragments:string list -> string -> bool

(** Collect every [.ml]/[.mli] under the given roots, in a deterministic
    (sorted) walk order. Directories whose name starts with ['.'] or ['_']
    (notably [_build]) are skipped; a root that itself points into
    [_build], or does not exist, is refused with [Invalid_argument].
    Files and directories are identified by resolved absolute path, so
    overlapping or duplicated roots and symlinks back into the tree yield
    each file once (and symlink cycles terminate). [exclude] fragments
    are matched on whole path components, like allowlists. *)
val collect_tree : ?exclude:string list -> string list -> string list

(** Lint the given files (regex rules plus the missing-[.mli] check),
    sorted by location. *)
val lint_files : ?rules:Source_rules.rule list -> string list -> Diagnostics.t list

(** [lint_files] over [collect_tree]: recursively lint every [.ml]/[.mli]
    under the given roots. *)
val lint_tree :
  ?rules:Source_rules.rule list -> ?exclude:string list -> string list ->
  Diagnostics.t list
