(** Layer-4 front end: the typed analogue of {!Src_ast}/{!Ast_index}.

    Loads the [.cmt] files dune emits under [_build] (the same
    [compiler-libs] toolchain that built the repo) and exposes a
    per-compilation-unit inventory of top-level functions with their
    {e typed} trees, plus a resolved intra-repo call graph. Where the
    layer-3 index matches names, this one matches [Path.t]s and
    [Types.type_expr]s — so "a [Budget.t] parameter", "an argument of
    type [Expr.t]" and "this optional argument was omitted" are facts,
    not heuristics. *)

type param = {
  p_label : string;  (** "" for positional, "~x" labelled, "?x" optional *)
  p_budget : bool;   (** the parameter type mentions [Budget.t] *)
}

type call_arg = {
  a_label : string;
  a_passed : bool;  (** false when an optional argument was omitted (or
                        explicitly given as [None]) at the call site *)
  a_budget : bool;  (** a passed argument whose type mentions [Budget.t] *)
}

type call = {
  c_callee : string;    (** canonical dotted name, e.g. "Taylor_model.mul",
                            "Budget.check", "Array.iter" *)
  c_internal : bool;    (** the callee resolves to a scanned unit's
                            top-level binding *)
  c_loc : Location.t;
  c_args : call_arg list;
}

type ref_site = {
  r_name : string;      (** canonical dotted name, as in [c_callee] *)
  r_internal : bool;    (** resolves to a scanned unit's top-level binding *)
  r_loc : Location.t;
}

type tfn = {
  t_name : string;       (** binding name within its unit *)
  t_loc : Location.t;
  t_params : param list; (** the arrow spine of the binding's type *)
  t_calls : call list;
  t_refs : ref_site list;
      (** every identifier the body mentions, canonically resolved — a
          superset of the call heads, so purity passes see eta-passed
          functions and bare global reads *)
  t_body : Typedtree.expression;  (** for the allocation pass *)
}

type unit_info = {
  u_name : string;     (** canonical module name ("Taylor_model") *)
  u_modname : string;  (** mangled compilation-unit name *)
  u_source : string;   (** repo-relative source path *)
  u_aliases : (string * string list) list;
      (** structure-level [module B = Dwv_robust.Budget] aliases, target
          pre-split into components *)
  u_fns : tfn list;
  u_str : Typedtree.structure;
      (** the whole typed structure — [u_fns] covers only top-level
          bindings, so passes that must see inside submodules and
          functor arguments (the typed phys-equality refinement) walk
          this instead *)
}

type t

(** Read every [.cmt] implementation below [build_dir] (default
    ["_build/default"], or ["."] when already inside [_build]) whose
    source path sits under one of [roots] and under none of the
    [exclude] fragments (whole-path-component matching, as in
    {!Source_lint}). Units that fail to load are skipped and reported in
    {!load_errors}. *)
val scan : ?build_dir:string -> ?exclude:string list -> ?roots:string list -> unit -> t

(** Index exactly these [.cmt] files (tests use this on the typed
    fixture corpus). *)
val of_cmt_files : string list -> t

val default_build_dir : unit -> string

(** All indexed units, sorted by [u_name]. *)
val units : t -> unit_info list
val find_unit : t -> string -> unit_info option

(** ["Module.fn"] lookup. *)
val find_fn : t -> string -> (unit_info * tfn) option

val fn_key : unit_info -> tfn -> string

(** (cmt path, reason) pairs for files that could not be indexed. *)
val load_errors : t -> (string * string) list

(** {1 Canonicalization}

    Canonical names strip dune's name mangling and library wrapper
    modules and resolve one level of structure-local module aliases:
    [Dwv_taylor__Taylor_model.mul], [Dwv_taylor.Taylor_model.mul] and
    [Tm.mul] (under [module Tm = Dwv_taylor.Taylor_model]) all
    canonicalize to ["Taylor_model.mul"]; [Stdlib.Array.iter] to
    ["Array.iter"]. A unit-local identifier or type keeps its unit
    prefix: [t] inside [expr.ml] canonicalizes to ["Expr.t"]. *)

val canon_ident : t -> unit_info -> Path.t -> string

(** Canonical callee name for an applied (or mentioned) identifier path,
    with the [c_internal]/[r_internal] flag. Unlike {!canon_ident} this
    shortens to the last two components ("Unit.fn") and qualifies
    unit-local bindings with their unit name. *)
val resolve_callee : t -> unit_info -> Path.t -> string * bool

(** Canonical head-constructor name of a type, [""] for non-[Tconstr]
    types ('a, arrows, tuples). *)
val type_head : t -> unit_info -> Types.type_expr -> string

(** Does canonical constructor [name] occur anywhere in the type
    (under arrows, tuples, constructor arguments, [option], ...)? *)
val type_mentions : t -> unit_info -> string -> Types.type_expr -> bool

(** Does the type tree reach the [float] constructor? *)
val type_mentions_float : Types.type_expr -> bool

(** 1-based line/col location for a typed-tree node of [u]. *)
val file_loc : unit_info -> Location.t -> Diagnostics.location

(** The variable a pattern binds ([Tpat_var]/[Tpat_alias]), if simple. *)
val binding_name : Typedtree.pattern -> string option
