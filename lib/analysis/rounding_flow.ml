(* Layer-5 rounding-discipline analysis. See the .mli for the model.

   The walk is a context-sensitive traversal of each top-level typed
   body. Three contexts:

   - [Neutral]: ordinary code; raw float arithmetic is fine here because
     its result never becomes an enclosure bound (midpoints, metrics,
     step-size heuristics all live in Neutral).
   - [Bound]: the expression's value flows into an enclosure bound — a
     field of a bound-typed record literal, or an argument of a bound
     constructor ([Interval.make], [Box.make], [Cert_ival.make]). Raw
     round-to-nearest arithmetic here loses up to 1/2 ulp in the unsound
     direction and is flagged.
   - [Safe]: the subtree is an argument of an audited outward primitive
     ([Interval.widen], the [Cert_ival] ulp steppers): whatever rounding
     happens inside, the primitive's outward step dominates it, so the
     whole subtree is discharged and the walk prunes.

   Local [let]s add flow sensitivity within a function: raw sites inside
   a binding's definition are collected (not flagged) and only surface
   if the bound variable is later *used* in [Bound] context — so
   [let m = mid t in ...debug output...] is silent while
   [let m = mid t in make lo m] flags the [mid].

   Scalar arguments of interval operators ([Interval.scale],
   [Interval.shift]) are deliberately out of scope: the widened interval
   op encloses the product with the scalar *as computed*, so a rounded
   scalar changes which design value is used, not the soundness of the
   enclosure around it. DESIGN.md §15 records this boundary. *)

module D = Diagnostics
module CI = Cmt_index

type allow = { a_fn : string; a_reason : string }

type config = {
  bound_types : string list;
  constructors : string list;
  outward : string list;
  raw : string list;
  heuristics : string list;
  allow : allow list;
}

let default_allow =
  [
    {
      a_fn = "Interval.widen";
      a_reason =
        "root of trust: the eps-scale outward slack dominates the 1/2-ulp \
         round-to-nearest error of every operation it covers (see the \
         interval.ml header)";
    };
    {
      a_fn = "Box.bloat";
      a_reason =
        "additive outward padding: rounding lo -. eps to nearest can never \
         land above lo, so the result still contains the input box";
    };
    {
      a_fn = "Box.bloat_vec";
      a_reason = "per-axis variant of Box.bloat; same outward-padding argument";
    };
    {
      a_fn = "Box.scale_about_center";
      a_reason =
        "inflation heuristic seeding Picard iteration; the downstream subset \
         test certifies the candidate, not this inflation";
    };
    {
      a_fn = "Box.bisect";
      a_reason =
        "the split point need not be the exact midpoint: both halves are \
         built from the same computed value, so their union is the input box";
    };
    {
      a_fn = "Box.partition";
      a_reason =
        "grid construction for coverage accounting; every cell is separately \
         certified by the downstream subset tests";
    };
    {
      a_fn = "Scenario.far_box";
      a_reason =
        "constant placeholder obstacle built from literals; no computed bound \
         flows in";
    };
    {
      a_fn = "Scn_fuzz.generate";
      a_reason =
        "fuzzer case generation: the boxes produced are verification inputs, \
         not claimed enclosures — any box is a legitimate test case and the \
         differential oracle re-checks every verdict";
    };
    {
      a_fn = "Scn_fuzz.shrink_candidates";
      a_reason =
        "shrinking heuristic: candidate boxes are only reported after the \
         oracle re-confirms the failure on them";
    };
    {
      a_fn = "Nn_reach_bernstein.control_models";
      a_reason =
        "output_scale *. net(x) is the function being approximated: the \
         Bernstein remainder is computed against the same floating-point \
         evaluation, so its rounding is part of the modeled function, not an \
         enclosure step (the Lipschitz/curvature scalings are ulp-stepped)";
    };
  ]

let default_config =
  {
    bound_types = [ "Interval.t"; "Cert_ival.t" ];
    constructors = [ "Interval.make"; "Interval.of_point"; "Box.make"; "Cert_ival.make" ];
    outward =
      [
        "Interval.widen"; "Cert_ival.widen"; "Cert_ival.down"; "Cert_ival.up";
        "Cert_ival.down2"; "Cert_ival.up2"; "Cert_ival.mono"; "Float.pred";
        "Float.succ";
      ];
    raw =
      [
        "+."; "-."; "*."; "/."; "**";
        "exp"; "log"; "log10"; "log1p"; "expm1"; "sqrt"; "sin"; "cos"; "tan";
        "atan"; "atan2"; "asin"; "acos"; "tanh"; "sinh"; "cosh"; "hypot";
        "Float.add"; "Float.sub"; "Float.mul"; "Float.div"; "Float.pow";
        "Float.exp"; "Float.log"; "Float.sqrt"; "Float.fma";
        "Floatx.sigmoid"; "Floatx.lerp"; "Interval.mono_incr";
      ];
    heuristics =
      [
        "Interval.mid"; "Interval.rad"; "Interval.width"; "Interval.sample";
        "Interval.distance"; "Interval.overlap_length"; "Box.center";
      ];
    allow = default_allow;
  }

type kind = Raw | Heuristic

type site = { s_what : string; s_kind : kind; s_loc : Location.t }

type ctx = Neutral | Bound | Safe | Collect of site list ref

let classify cfg name =
  if List.mem name cfg.raw then Some Raw
  else if List.mem name cfg.heuristics then Some Heuristic
  else None

(* Raw sites flagged inside one function body. *)
let sites_of_fn idx cfg u (fn : CI.tfn) =
  let found = ref [] in
  (* local let-bound variables whose definitions contain undischarged raw
     sites; keyed by source name, latest binding wins *)
  let pending : (string, site list) Hashtbl.t = Hashtbl.create 8 in
  let hit ctx s =
    match ctx with
    | Bound -> found := s :: !found
    | Collect r -> r := s :: !r
    | Neutral | Safe -> ()
  in
  let local_name p = match p with Path.Pident id -> Some (Ident.name id) | _ -> None in
  let rec walk ctx (e : Typedtree.expression) =
    if ctx = Safe then ()
    else
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, { loc; _ }, _) -> (
        let name, _ = CI.resolve_callee idx u p in
        (match classify cfg name with
        | Some k -> hit ctx { s_what = name; s_kind = k; s_loc = loc }
        | None -> ());
        match local_name p with
        | Some n -> (
          match Hashtbl.find_opt pending n with
          | Some sites -> List.iter (hit ctx) sites
          | None -> ())
        | None -> ())
      | Typedtree.Texp_let (_, vbs, body) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let collected = ref [] in
            walk (Collect collected) vb.Typedtree.vb_expr;
            match (CI.binding_name vb.Typedtree.vb_pat, !collected) with
            | Some n, (_ :: _ as sites) -> Hashtbl.replace pending n (List.rev sites)
            | _ -> ())
          vbs;
        walk ctx body
      | Typedtree.Texp_apply (head, args) ->
        let head_name =
          match head.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, { loc; _ }, _) ->
            (* a local function used as the head still feeds its
               definition's raw sites into the result *)
            (match local_name p with
            | Some n -> (
              match Hashtbl.find_opt pending n with
              | Some sites -> List.iter (hit ctx) sites
              | None -> ())
            | None -> ());
            Some (CI.resolve_callee idx u p, loc)
          | _ ->
            walk ctx head;
            None
        in
        let arg_ctx =
          match head_name with
          | Some ((name, _), _) when List.mem name cfg.outward -> Safe
          | Some ((name, _), loc) ->
            (match classify cfg name with
            | Some k -> hit ctx { s_what = name; s_kind = k; s_loc = loc }
            | None -> ());
            if List.mem name cfg.constructors then Bound else ctx
          | None -> ctx
        in
        List.iter (function _, Some a -> walk arg_ctx a | _, None -> ()) args
      | Typedtree.Texp_record { fields; extended_expression; _ } ->
        let field_ctx =
          if List.mem (CI.type_head idx u e.Typedtree.exp_type) cfg.bound_types then
            Bound
          else ctx
        in
        Array.iter
          (function
            | _, Typedtree.Overridden (_, fe) -> walk field_ctx fe
            | _, Typedtree.Kept _ -> ())
          fields;
        (match extended_expression with Some base -> walk ctx base | None -> ())
      | _ ->
        (* every other construct propagates its context to its children *)
        let it =
          let open Tast_iterator in
          { default_iterator with expr = (fun _ child -> walk ctx child) }
        in
        Tast_iterator.default_iterator.expr it e
  in
  walk Neutral fn.CI.t_body;
  (* one report per site: a pending let used n times would otherwise
     surface its collected sites n times *)
  List.sort_uniq compare !found

let kind_label = function Raw -> "raw float arithmetic" | Heuristic -> "midpoint/heuristic computation"

let analyze ?(config = default_config) idx =
  let used = Hashtbl.create 8 in
  let diags = ref [] in
  List.iter
    (fun (u : CI.unit_info) ->
      List.iter
        (fun (fn : CI.tfn) ->
          let sites = sites_of_fn idx config u fn in
          if sites <> [] then
            let key = CI.fn_key u fn in
            match List.find_opt (fun a -> a.a_fn = key) config.allow with
            | Some _ -> Hashtbl.replace used key ()
            | None ->
              List.iter
                (fun s ->
                  diags :=
                    D.error ~check:Registry.rounding_flow
                      ~loc:(CI.file_loc u s.s_loc)
                      (Fmt.str "%s %S on bound dataflow in %s" (kind_label s.s_kind)
                         s.s_what key)
                      ~hint:
                        "route the bound through Interval.widen or the Cert_ival \
                         ulp steppers, or add a justified Rounding_flow allow \
                         entry for this function"
                    :: !diags)
                sites)
        u.CI.u_fns)
    (CI.units idx);
  let stale =
    List.filter_map
      (fun a ->
        if Hashtbl.mem used a.a_fn then None
        else
          Some
            (D.error ~check:Registry.sound_allow
               ~loc:(D.Model ("sound/rounding-flow/allow/" ^ a.a_fn))
               (Fmt.str
                  "stale allow entry %s: no undischarged rounding site in that \
                   function (or the function no longer exists)"
                  a.a_fn)
               ~hint:"delete the entry or fix its spelling"))
      config.allow
  in
  D.sort (!diags @ stale)
