(** Engine driver for the source layers.

    [Regex] is the layer-2 engine of {!Source_lint} alone. [Ast] parses
    every implementation with the compiler front end and runs the
    AST-backed rules ({!Ast_rules}) plus the layer-3 analyses
    ({!Domain_safety}, {!Exn_escape}); interfaces and unparseable files
    fall back to regex (the latter flagged with an [ast-parse] note).
    [Both] is the AST engine plus a differential shadow run of the regex
    engine — any (check, line) disagreement on the shared rules is
    reported as an [engine-diff] error. *)

type engine = Regex | Ast | Both

val engine_label : engine -> string
val engine_of_string : string -> engine option

val covered_rules : Source_rules.rule list -> Source_rules.rule list
(** Restrict a rule set to the rules both engines implement. *)

val lint_files :
  ?rules:Source_rules.rule list -> ?phys_eq_allow:(string * int) list ->
  engine:engine -> string list -> Diagnostics.t list
(** Lint the given files with the chosen engine (missing-[.mli] check
    included), sorted by location. [phys_eq_allow] is the typed
    exemption list from {!Typed_rules.expr_phys_eq_allow}: when given,
    the phys-equality rule's static per-file allowlist is dropped and
    instead exactly those (path, line) sites are exempt — in every
    engine and in the differential comparison alike, so [engine-diff]
    stays at zero. *)

val lint_tree :
  ?rules:Source_rules.rule list -> ?phys_eq_allow:(string * int) list ->
  ?exclude:string list -> engine:engine -> string list -> Diagnostics.t list
(** [lint_files] over {!Source_lint.collect_tree}. *)
