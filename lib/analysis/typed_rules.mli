(** Type-aware refinements of the layer-2/3 rules.

    The Parsetree engines cannot see types, so rules like phys-equality
    are all-or-nothing per file. With the typed trees of {!Cmt_index}
    the exemptions become semantic: [==]/[!=] applied to hash-consed
    {!Expr.t} values is a documented O(1) identity test (PR-5), and only
    those exact call sites are exempt — a [==] on floats three lines
    down still fails the lint. *)

(** Every (source path, line) at which a physical-equality operator is
    applied to operands of type [Expr.t]. Sorted, duplicates removed;
    paths are repo-relative as recorded in the cmt
    ([lib/expr/expr.ml]). Feed to {!Ast_lint.lint_files} as
    [?phys_eq_allow]. *)
val expr_phys_eq_allow : Cmt_index.t -> (string * int) list
