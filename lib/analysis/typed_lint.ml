(* Layer-4 engine driver. See the .mli. *)

module D = Diagnostics

type result = { diags : D.t list; sites : Alloc_profile.site list }

let lint_tree ?build_dir ?(exclude = []) ?alloc_baseline ~roots () =
  let idx = Cmt_index.scan ?build_dir ~exclude ~roots () in
  let cmt_diags =
    if Cmt_index.units idx = [] then
      [
        D.error ~check:Registry.cmt_missing
          ~loc:(D.Model "typed/cmt-index")
          (Fmt.str "no .cmt files found under %s for roots %s"
             (match build_dir with
             | Some d -> d
             | None -> Cmt_index.default_build_dir ())
             (String.concat " " roots))
          ~hint:"run `dune build @check` first; executables only get .cmts from \
                 the @check alias";
      ]
    else
      List.map
        (fun (path, msg) ->
          D.warn ~check:Registry.cmt_missing
            ~loc:(D.Model ("typed/cmt-index/" ^ Filename.basename path))
            (Fmt.str "unreadable cmt %s: %s" path msg))
        (Cmt_index.load_errors idx)
  in
  let phys_eq_allow = Typed_rules.expr_phys_eq_allow idx in
  let ast_diags =
    Ast_lint.lint_tree ~phys_eq_allow ~exclude ~engine:Ast_lint.Both roots
  in
  let budget_diags = Budget_threading.analyze idx in
  let sites, alloc_diags = Alloc_profile.profile idx in
  let baseline_diags =
    match alloc_baseline with
    | None -> []
    | Some baseline -> Alloc_profile.diff_against_baseline ~baseline sites
  in
  {
    diags =
      D.sort (cmt_diags @ ast_diags @ budget_diags @ alloc_diags @ baseline_diags);
    sites;
  }
