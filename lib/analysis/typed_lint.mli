(** Layer-4 engine driver: everything [dwv_lint --engine typed] runs.

    Builds a {!Cmt_index} over the compiled tree, then:
    - the full layer-2/3 lint ({!Ast_lint} in differential mode) with
      the typed phys-equality exemption
      ({!Typed_rules.expr_phys_eq_allow}) in force;
    - the budget-discipline check ({!Budget_threading});
    - the allocation profile ({!Alloc_profile}), diffed against a
      baseline document when one is supplied.

    The typed engine needs the [.cmt]s dune writes during compilation;
    [dune build @check] materializes them for every module including
    executables. An index with no units at all is a [cmt-missing]
    error, and per-file load failures are warnings. *)

type result = {
  diags : Diagnostics.t list;    (** everything, {!Diagnostics.sort}ed *)
  sites : Alloc_profile.site list;  (** ranked; serialize with
                                        {!Alloc_profile.report_to_json} *)
}

(** [lint_tree ~roots ()] analyzes the sources under [roots] (their
    cmts filtered the same way). [alloc_baseline] is the {e contents}
    of a baseline document previously written by
    {!Alloc_profile.report_to_json}; without it the profile is
    reported but not gated. [build_dir] defaults to
    {!Cmt_index.default_build_dir}. *)
val lint_tree :
  ?build_dir:string -> ?exclude:string list -> ?alloc_baseline:string ->
  roots:string list -> unit -> result
