(** Registry of every check the analyzer can emit, with one-line
    descriptions: the single source of truth for check names. Layer-1
    (model) names are the constants below, consumed by {!Model_check};
    Layer-2 (source) entries are derived from {!Source_rules.builtin} so
    the listing can never drift from the rule table. *)

type layer = Model_layer | Source_layer | Ast_layer | Typed_layer | Sound_layer

type entry = { name : string; layer : layer; description : string }

(** {1 Layer-1 check names} *)

val dim_arity : string
val spec_dims : string
val div_by_zero : string
val exp_overflow : string
val domain_eval : string
val spec_degenerate : string
val spec_overlap : string
val spec_x0_unsafe : string
val x0_in_domain : string
val nn_finite : string
val nn_activation : string
val nn_lipschitz : string
val ctrl_shape : string

(** {1 Layer-2 check names not backed by a regex rule} *)

val missing_mli : string

(** {1 Layer-3 (AST) check names} *)

val domain_safety : string
val exn_escape : string
val ast_parse : string
val engine_diff : string

(** {1 Layer-4 (typed) check names} *)

val alloc_hotspot : string
val budget_threading : string
val cmt_missing : string

(** {1 Layer-5 (semantic soundness) check names} *)

val rounding_flow : string
val cache_purity : string
val sound_allow : string

(** Every check, model layer first. *)
val all : entry list

val layer_label : layer -> string
