(* Engine driver: regex, AST, or both-with-differential.

   The AST engine parses every implementation with the compiler front end
   and runs three stages over the result: the AST-backed layer-2 rules
   (Ast_rules), the domain-safety race lint and the exception-escape
   analysis (both queries over one Ast_index built from every file that
   parsed). Interfaces, and implementations the parser rejects, fall back
   to the regex engine — a rejected file additionally gets an [ast-parse]
   note so the fallback is visible in the report.

   [Both] is the AST engine plus a shadow regex run used only for
   comparison: for every parseable implementation the two engines'
   findings on the shared rules are compared as (check, line) sets —
   columns differ by design (token start vs. match start), and the regex
   engine reports at most one hit per line where the AST engine reports
   each occurrence. Any remaining disagreement is an [engine-diff] error:
   either a rule regressed or a pattern has a blind spot, and both are
   worth failing CI over. *)

module D = Diagnostics

type engine = Regex | Ast | Both

let engine_label = function Regex -> "regex" | Ast -> "ast" | Both -> "both"

let engine_of_string = function
  | "regex" -> Some Regex
  | "ast" -> Some Ast
  | "both" -> Some Both
  | _ -> None

let is_impl path = Filename.check_suffix path ".ml"

let covered_rules rules =
  List.filter
    (fun (r : Source_rules.rule) -> List.mem r.Source_rules.name Ast_rules.covered)
    rules

(* One file through the AST engine. Returns its diagnostics and, when it
   parsed, the Parsetree for the index. *)
let ast_one ~rules path =
  if not (is_impl path) then
    (* interfaces carry no expressions to analyze; the regex rules still
       apply textually *)
    (Source_lint.lint_file ~rules path, None)
  else
    match Src_ast.parse_file path with
    | Ok parsed -> (Ast_rules.lint_parsed ~rules parsed, Some parsed)
    | Error msg ->
      ( D.info ~check:Registry.ast_parse
          ~loc:(D.File { path; line = 1; col = 1 })
          (Fmt.str "not parseable by the compiler front end (%s); regex engine used \
                    as fallback"
             msg)
        :: Source_lint.lint_file ~rules path,
        None )

(* The typed phys-equality exemption, applied identically to every
   engine so differential mode still compares like with like. [allow]
   holds (path, line) pairs from Typed_rules.expr_phys_eq_allow; paths
   are normalized component-wise so "./lib/x.ml" and "lib/x.ml" agree. *)
let norm_path path =
  String.split_on_char '/' path
  |> List.filter (fun c -> c <> "" && c <> ".")
  |> String.concat "/"

let phys_eq_rule = "phys-equality"

let phys_eq_drop ~phys_eq_allow path check line =
  match phys_eq_allow with
  | None -> false
  | Some allow ->
    check = phys_eq_rule
    && List.exists (fun (p, l) -> l = line && norm_path p = norm_path path) allow

let apply_phys_eq_allow ~phys_eq_allow ds =
  match phys_eq_allow with
  | None -> ds
  | Some _ ->
    List.filter
      (fun (d : D.t) ->
        match d.D.loc with
        | D.File { path; line; _ } ->
          not (phys_eq_drop ~phys_eq_allow path d.D.check line)
        | D.Model _ -> true)
      ds

(* With a typed allowlist in force, the static per-file suppression on
   the phys-equality rule is superseded: drop it so non-exempt [==] in
   an allowlisted file resurface. *)
let effective_rules ~phys_eq_allow rules =
  match phys_eq_allow with
  | None -> rules
  | Some _ ->
    List.map
      (fun (r : Source_rules.rule) ->
        if r.Source_rules.name = phys_eq_rule then { r with Source_rules.allow = [] }
        else r)
      rules

(* Differential comparison for one parsed file: (check, line) keys of the
   shared rules, each engine against the other. *)
let diff_one ~rules ~phys_eq_allow (parsed : Src_ast.parsed) ast_ds =
  let path = parsed.Src_ast.path in
  let keys ds =
    List.filter_map
      (fun (d : D.t) ->
        if List.mem d.D.check Ast_rules.covered then
          match d.D.loc with
          | D.File { line; _ } -> Some (d.D.check, line)
          | D.Model _ -> None
        else None)
      ds
    |> List.sort_uniq compare
    |> List.filter (fun (check, line) ->
           not (phys_eq_drop ~phys_eq_allow path check line))
  in
  let ast_keys = keys ast_ds in
  let regex_keys =
    keys (Source_lint.lint_string ~rules:(covered_rules rules) ~path parsed.Src_ast.source)
  in
  let only tag these others =
    List.filter_map
      (fun ((check, line) as key) ->
        if List.mem key others then None
        else
          Some
            (D.error ~check:Registry.engine_diff
               ~loc:(D.File { path; line; col = 1 })
               (Fmt.str "engines disagree on %s: only the %s engine reports it here"
                  check tag)
               ~hint:"a rule regressed or a regex pattern has a blind spot; align \
                      them (see DESIGN.md §10)"))
      these
  in
  only "ast" ast_keys regex_keys @ only "regex" regex_keys ast_keys

let lint_files ?(rules = Source_rules.builtin) ?phys_eq_allow ~engine files =
  let rules = effective_rules ~phys_eq_allow rules in
  match engine with
  | Regex ->
    apply_phys_eq_allow ~phys_eq_allow (Source_lint.lint_files ~rules files)
  | Ast | Both ->
    let parsed = ref [] in
    let ds =
      List.concat_map
        (fun path ->
          let file_ds, p = ast_one ~rules path in
          let file_ds = apply_phys_eq_allow ~phys_eq_allow file_ds in
          let diff_ds =
            match (engine, p) with
            | Both, Some parsed -> diff_one ~rules ~phys_eq_allow parsed file_ds
            | _ -> []
          in
          Option.iter (fun p -> parsed := p :: !parsed) p;
          Source_lint.missing_mli_check path @ file_ds @ diff_ds)
        files
    in
    let index = Ast_index.of_files (List.rev !parsed) in
    D.sort (ds @ Domain_safety.analyze index @ Exn_escape.analyze index)

let lint_tree ?rules ?phys_eq_allow ?exclude ~engine roots =
  lint_files ?rules ?phys_eq_allow ~engine (Source_lint.collect_tree ?exclude roots)
