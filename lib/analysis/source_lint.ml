(* The source lint engine.

   Regex rules over raw OCaml text drown in false positives: every `==` in
   a doc comment and every "===" banner string would fire. So matching
   runs on a *stripped* copy of the source where comments (nested, and
   string-aware, as in OCaml proper), string literals, {|...|} quoted
   strings and character literals are blanked to spaces. Stripping
   preserves offsets exactly, so diagnostics point at the real file. *)

module D = Diagnostics

let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  (* Skip a string literal starting at the opening quote; blanks it fully.
     Returns with [i] just past the closing quote. *)
  let skip_string () =
    blank !i;
    incr i;
    let closed = ref false in
    while (not !closed) && !i < n do
      (match src.[!i] with
      | '\\' when !i + 1 < n ->
        blank !i;
        blank (!i + 1);
        incr i
      | '"' -> closed := true
      | _ -> blank !i);
      incr i
    done
  in
  let skip_quoted_string () =
    (* {|...|} (no identifier between the brace and the bar — the only
       form used in this codebase) *)
    blank !i;
    blank (!i + 1);
    i := !i + 2;
    let closed = ref false in
    while (not !closed) && !i < n do
      if src.[!i] = '|' && !i + 1 < n && src.[!i + 1] = '}' then begin
        blank !i;
        blank (!i + 1);
        i := !i + 2;
        closed := true
      end
      else begin
        blank !i;
        incr i
      end
    done
  in
  let skip_comment () =
    let depth = ref 0 in
    let continue_ = ref true in
    while !continue_ && !i < n do
      if src.[!i] = '(' && peek 1 = Some '*' then begin
        blank !i;
        blank (!i + 1);
        i := !i + 2;
        incr depth
      end
      else if src.[!i] = '*' && peek 1 = Some ')' then begin
        blank !i;
        blank (!i + 1);
        i := !i + 2;
        decr depth;
        if !depth = 0 then continue_ := false
      end
      else if src.[!i] = '"' then skip_string ()
      else begin
        blank !i;
        incr i
      end
    done
  in
  while !i < n do
    match src.[!i] with
    | '(' when peek 1 = Some '*' -> skip_comment ()
    | '"' -> skip_string ()
    | '{' when peek 1 = Some '|' -> skip_quoted_string ()
    | '\'' -> (
      (* char literal vs. type variable: '\...' or 'c' are literals,
         anything else (e.g. 'a in a type) passes through *)
      match peek 1 with
      | Some '\\' ->
        blank !i;
        incr i;
        while !i < n && src.[!i] <> '\'' do
          blank !i;
          incr i
        done;
        if !i < n then begin
          blank !i;
          incr i
        end
      | Some _ when peek 2 = Some '\'' ->
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      | _ -> incr i)
    | _ -> incr i
  done;
  Bytes.to_string out

let compiled_pattern =
  (* compile each rule's regexp once per process *)
  let table : (string, Str.regexp) Hashtbl.t = Hashtbl.create 16 in
  fun (rule : Source_rules.rule) ->
    match Hashtbl.find_opt table rule.Source_rules.pattern with
    | Some re -> re
    | None ->
      let re = Str.regexp rule.Source_rules.pattern in
      Hashtbl.add table rule.Source_rules.pattern re;
      re

let lint_string ?(rules = Source_rules.builtin) ~path src =
  let stripped = strip src in
  let lines = String.split_on_char '\n' stripped in
  let ds = ref [] in
  List.iteri
    (fun lineno line ->
      List.iter
        (fun (rule : Source_rules.rule) ->
          if not (Source_rules.allowed rule path) then
            match Str.search_forward (compiled_pattern rule) line 0 with
            | col ->
              ds :=
                D.make rule.severity ~check:rule.name
                  ~loc:(D.File { path; line = lineno + 1; col = col + 1 })
                  rule.message ?hint:rule.hint
                :: !ds
            | exception Not_found -> ())
        rules)
    lines;
  List.rev !ds

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?rules path = lint_string ?rules ~path (read_file path)

let is_ocaml_source name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let skip_dir name = String.length name > 0 && (name.[0] = '.' || name.[0] = '_')

let refuse_build_root root =
  let parts = String.split_on_char '/' root in
  if List.mem "_build" parts then
    invalid_arg
      (Fmt.str "Source_lint.lint_tree: refusing to scan %s: _build holds generated \
                artifacts, lint the sources instead"
         root)

(* In-library modules are expected to publish an interface; executables,
   tests and benches are not. *)
let expects_mli path =
  List.mem "lib" (String.split_on_char '/' path)
  && Filename.check_suffix path ".ml"

let missing_mli_check path =
  if expects_mli path then begin
    let mli = path ^ "i" in
    if not (Sys.file_exists mli) then
      [
        D.warn ~check:Registry.missing_mli
          ~loc:(D.File { path; line = 1; col = 1 })
          (Fmt.str "library module without an interface (%s not found)"
             (Filename.basename mli))
          ~hint:"add a .mli so the module's contract (and float invariants) are explicit";
      ]
    else []
  end
  else []

(* Is [path] under one of the [exclude] fragments? Matched on contiguous
   whole path components, like Source_rules allowlists. *)
let excluded ~exclude path =
  let pcs =
    String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")
  in
  List.exists
    (fun fragment ->
      let fcs =
        String.split_on_char '/' fragment
        |> List.filter (fun c -> c <> "" && c <> ".")
      in
      let rec prefix fs ps =
        match (fs, ps) with
        | [], _ -> true
        | _, [] -> false
        | f :: fs', p :: ps' -> f = p && prefix fs' ps'
      in
      let rec at ps =
        match ps with [] -> false | _ :: rest -> prefix fcs ps || at rest
      in
      fcs <> [] && at pcs)
    exclude

let path_under ~fragments path = excluded ~exclude:fragments path

let collect_tree ?(exclude = []) roots =
  List.iter refuse_build_root roots;
  (* Identity is the resolved absolute path, so overlapping roots
     ("lib lib" or "lib" + a symlink back into it) yield each file once,
     and symlink cycles cannot loop the walk. *)
  let real path = try Unix.realpath path with Unix.Unix_error _ | Sys_error _ -> path in
  let seen_dirs = Hashtbl.create 16 and seen_files = Hashtbl.create 64 in
  let files = ref [] in
  let rec walk ~is_root path =
    if not (excluded ~exclude path) then
      if Sys.is_directory path then begin
        let key = real path in
        if
          (is_root || not (skip_dir (Filename.basename path)))
          && not (Hashtbl.mem seen_dirs key)
        then begin
          Hashtbl.add seen_dirs key ();
          let entries = Sys.readdir path in
          Array.sort String.compare entries;
          Array.iter (fun entry -> walk ~is_root:false (Filename.concat path entry)) entries
        end
      end
      else if is_ocaml_source path then begin
        let key = real path in
        if not (Hashtbl.mem seen_files key) then begin
          Hashtbl.add seen_files key ();
          files := path :: !files
        end
      end
  in
  List.iter
    (fun root ->
      if Sys.file_exists root then walk ~is_root:true root
      else invalid_arg (Fmt.str "Source_lint.lint_tree: no such path %s" root))
    roots;
  List.rev !files

let lint_files ?rules files =
  Diagnostics.sort
    (List.concat_map (fun path -> missing_mli_check path @ lint_file ?rules path) files)

let lint_tree ?rules ?exclude roots = lint_files ?rules (collect_tree ?exclude roots)
