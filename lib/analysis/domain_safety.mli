(** Domain-safety lint over the {!Ast_index}: flags Pool/Domain fan-out
    sites whose task closure can reach module-level mutable state that is
    not mediated by Atomic, Mutex, or Domain.DLS. Reachability is
    transitive over the name-based call graph; the guard judgment is one
    hop (accessor locks, or a direct callee does). *)

val check_name : string
(** ["domain-safety"]. *)

val analyze : Ast_index.t -> Diagnostics.t list
(** Error-severity diagnostics, one per (fan-out site, mutable binding)
    pair, located at the fan-out call site. *)
