(* Type-aware rule refinements over the Cmt_index. See the .mli. *)

let phys_ops = [ "=="; "!=" ]

let expr_phys_eq_allow idx =
  let hits = ref [] in
  List.iter
    (fun (u : Cmt_index.unit_info) ->
      let open Tast_iterator in
      let iter =
        {
          default_iterator with
          expr =
            (fun self e ->
              (match e.Typedtree.exp_desc with
              | Typedtree.Texp_apply
                  ( { Typedtree.exp_desc = Typedtree.Texp_ident (p, { loc; _ }, _); _ },
                    (_, Some first) :: _ )
                when List.mem (Cmt_index.canon_ident idx u p) phys_ops
                     && Cmt_index.type_head idx u first.Typedtree.exp_type = "Expr.t" ->
                let line, _ = Src_ast.start_line_col loc in
                hits := (u.Cmt_index.u_source, line) :: !hits
              | _ -> ());
              default_iterator.expr self e);
        }
      in
      (* the whole structure, not just u_fns: the Expr intern table's
         depth-1 equality lives inside a functor argument *)
      iter.structure iter u.Cmt_index.u_str)
    (Cmt_index.units idx);
  List.sort_uniq compare !hits
