(** Parsetree front end for the layer-3 (AST) analyses: parse a source
    file with the compiler's own parser and expose the location helpers
    the checks need. *)

type parsed = {
  path : string;
  source : string;
  ast : Parsetree.structure;
}

val flatten : Longident.t -> string list
(** Longident components, e.g. [M.N.f] -> [["M"; "N"; "f"]]. *)

val name_of : Longident.t -> string
(** Components joined with ['.']. *)

val start_line_col : Location.t -> int * int
(** 1-based (line, col) of a location's start. *)

val file_loc : path:string -> Location.t -> Diagnostics.location

val span : Location.t -> int * int
(** Absolute [start, end) character offsets, for containment tests. *)

val parse_impl : path:string -> string -> (parsed, string) result
(** Parse implementation source; [Error] carries a message with the
    failure position (the caller falls back to the regex engine). *)

val parse_file : string -> (parsed, string) result

val read_file : string -> string

val module_of_path : string -> string
(** ["lib/taylor/taylor_model.ml"] -> ["Taylor_model"]. *)
