(* Budget-discipline check. See the .mli for the contract.

   Per entry: a monotone fixpoint computes, for every function reachable
   over internal call edges, whether a budget can be in scope there —
   scope propagates across an edge only when the caller has scope and
   the call site actually passes a budget-typed argument. Violations are
   then read off the settled graph, so transient not-yet-propagated
   states never emit. *)

module D = Diagnostics

let default_entries =
  [
    "Acc.verify_robust"; "Acc.verify_robust_from";
    "Oscillator.verify_robust"; "Oscillator.verify_robust_from";
    "Pendulum.verify_robust"; "Pendulum.verify_robust_from";
    "Threed.verify_robust"; "Threed.verify_robust_from";
    "Learner.learn"; "Initset.search";
    "Cert_check.validate"; "Cert_check.validate_cert";
    "Scn_verify.verify_robust"; "Scn_fuzz.run";
  ]

let targets =
  [
    "Rk45.integrate"; "Taylor_reach.step"; "Verifier.nn_flowpipe_outcome";
    "Verifier.nn_flowpipe"; "Verifier.nn_flowpipe_robust";
  ]

let sinks = [ "Budget.check"; "Budget.spend_call"; "Budget.spend_steps" ]

let accepts_budget (fn : Cmt_index.tfn) =
  List.exists (fun (p : Cmt_index.param) -> p.Cmt_index.p_budget) fn.Cmt_index.t_params

let call_passes_budget (c : Cmt_index.call) =
  List.exists (fun (a : Cmt_index.call_arg) -> a.Cmt_index.a_budget) c.Cmt_index.c_args

let calls_sink (fn : Cmt_index.tfn) =
  List.exists
    (fun (c : Cmt_index.call) -> List.mem c.Cmt_index.c_callee sinks)
    fn.Cmt_index.t_calls

(* Functions that consult the budget themselves or through any chain of
   internal calls: the set an omitted [?budget] actually starves.
   Fixpoint over the reversed graph. *)
let consumers idx =
  let consuming = Hashtbl.create 64 in
  let all_fns =
    List.concat_map
      (fun (u : Cmt_index.unit_info) ->
        List.map (fun fn -> (Cmt_index.fn_key u fn, fn)) u.Cmt_index.u_fns)
      (Cmt_index.units idx)
  in
  List.iter
    (fun (key, fn) -> if calls_sink fn then Hashtbl.replace consuming key ())
    all_fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (key, (fn : Cmt_index.tfn)) ->
        if
          (not (Hashtbl.mem consuming key))
          && List.exists
               (fun (c : Cmt_index.call) ->
                 c.Cmt_index.c_internal && Hashtbl.mem consuming c.Cmt_index.c_callee)
               fn.Cmt_index.t_calls
        then begin
          Hashtbl.replace consuming key ();
          changed := true
        end)
      all_fns
  done;
  fun key -> Hashtbl.mem consuming key

let analyze ?(entries = default_entries) idx =
  let consumes = consumers idx in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let check_entry entry =
    match Cmt_index.find_fn idx entry with
    | None ->
      emit
        (D.error ~check:Registry.budget_threading
           ~loc:(D.Model ("budget-threading/" ^ entry))
           (Fmt.str
              "entry point %s not found in the typed index; the budget invariant \
               cannot be verified for it"
              entry))
    | Some (eu, efn) ->
      if not (accepts_budget efn) then
        emit
          (D.error ~check:Registry.budget_threading
             ~loc:(Cmt_index.file_loc eu efn.Cmt_index.t_loc)
             (Fmt.str "entry point %s does not accept a Budget.t parameter" entry)
             ~hint:"add ?budget and thread it to the kernels (DESIGN.md §8)");
      (* scope fixpoint from this entry *)
      let scope : (string, bool) Hashtbl.t = Hashtbl.create 64 in
      Hashtbl.replace scope entry true;
      let queue = Queue.create () in
      Queue.add entry queue;
      while not (Queue.is_empty queue) do
        let key = Queue.take queue in
        let here = Hashtbl.find scope key in
        match Cmt_index.find_fn idx key with
        | None -> ()
        | Some (_, fn) ->
          List.iter
            (fun (c : Cmt_index.call) ->
              if
                c.Cmt_index.c_internal
                && Cmt_index.find_fn idx c.Cmt_index.c_callee <> None
              then begin
                let callee = c.Cmt_index.c_callee in
                let callee_fn =
                  match Cmt_index.find_fn idx callee with
                  | Some (_, f) -> f
                  | None -> assert false
                in
                let passed =
                  here && accepts_budget callee_fn && call_passes_budget c
                in
                match Hashtbl.find_opt scope callee with
                | None ->
                  Hashtbl.replace scope callee passed;
                  Queue.add callee queue
                | Some old when (not old) && passed ->
                  Hashtbl.replace scope callee true;
                  Queue.add callee queue
                | Some _ -> ()
              end)
            fn.Cmt_index.t_calls
      done;
      (* read violations off the settled graph *)
      let consulted = ref false in
      Hashtbl.iter
        (fun key here ->
          match Cmt_index.find_fn idx key with
          | None -> ()
          | Some (u, fn) ->
            List.iter
              (fun (c : Cmt_index.call) ->
                let callee = c.Cmt_index.c_callee in
                if here && List.mem callee sinks then consulted := true;
                let drops =
                  here && c.Cmt_index.c_internal
                  && (match Cmt_index.find_fn idx callee with
                     | Some (_, f) -> accepts_budget f && consumes callee
                     | None -> false)
                  && not (call_passes_budget c)
                in
                if drops then
                  emit
                    (D.error ~check:Registry.budget_threading
                       ~loc:(Cmt_index.file_loc u c.Cmt_index.c_loc)
                       (Fmt.str
                          "budget dropped on the path from %s: %s accepts a Budget.t \
                           and consults it, but this call in %s omits it"
                          entry callee (Cmt_index.fn_key u fn))
                       ~hint:"pass ?budget through; an omitted optional severs the \
                              chain silently");
                if List.mem callee targets && ((not here) || not (call_passes_budget c))
                then
                  emit
                    (D.error ~check:Registry.budget_threading
                       ~loc:(Cmt_index.file_loc u c.Cmt_index.c_loc)
                       (Fmt.str
                          "unbudgeted kernel call on the path from %s: %s is invoked \
                           in %s with no Budget.t in scope"
                          entry callee (Cmt_index.fn_key u fn))
                       ~hint:"thread ?budget from the entry point down to this call"))
              fn.Cmt_index.t_calls)
        scope;
      if accepts_budget efn && not !consulted then
        emit
          (D.error ~check:Registry.budget_threading
             ~loc:(Cmt_index.file_loc eu efn.Cmt_index.t_loc)
             (Fmt.str
                "%s accepts a Budget.t but no Budget.check/spend site is reachable \
                 with the budget in scope"
                entry)
             ~hint:"the parameter is decorative; consult the budget or drop it")
  in
  List.iter check_entry entries;
  (* several entries can expose one violation; report each site once *)
  List.sort_uniq compare !diags |> D.sort
