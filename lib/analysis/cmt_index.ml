(* Layer-4 front end: load the .cmt files dune already produced and turn
   them into a queryable typed index.

   Everything downstream (Alloc_profile, Budget_threading, Typed_rules)
   wants the same three things: top-level functions with their typed
   bodies, call sites with resolved callees and per-argument passing
   facts, and a canonical spelling for paths and type constructors that
   survives dune's name mangling ([Dwv_taylor__Taylor_model]), library
   wrapper modules ([Dwv_taylor.Taylor_model]) and structure-local
   aliases ([module Tm = Dwv_taylor.Taylor_model]). This module owns all
   three so the passes stay declarative. *)

type param = { p_label : string; p_budget : bool }

type call_arg = { a_label : string; a_passed : bool; a_budget : bool }

type call = {
  c_callee : string;
  c_internal : bool;
  c_loc : Location.t;
  c_args : call_arg list;
}

type ref_site = { r_name : string; r_internal : bool; r_loc : Location.t }

type tfn = {
  t_name : string;
  t_loc : Location.t;
  t_params : param list;
  t_calls : call list;
  t_refs : ref_site list;
  t_body : Typedtree.expression;
}

type unit_info = {
  u_name : string;
  u_modname : string;
  u_source : string;
  u_aliases : (string * string list) list;
  u_fns : tfn list;
  u_str : Typedtree.structure;
}

type t = {
  by_name : (string, unit_info) Hashtbl.t;
  mutable errors : (string * string) list;
}

let units t =
  Hashtbl.fold (fun _ u acc -> u :: acc) t.by_name []
  |> List.sort (fun a b -> String.compare a.u_name b.u_name)

let find_unit t name = Hashtbl.find_opt t.by_name name
let load_errors t = List.rev t.errors
let fn_key u fn = u.u_name ^ "." ^ fn.t_name

let find_fn t key =
  match String.rindex_opt key '.' with
  | None -> None
  | Some i -> (
    let m = String.sub key 0 i in
    let f = String.sub key (i + 1) (String.length key - i - 1) in
    match find_unit t m with
    | None -> None
    | Some u -> (
      match List.find_opt (fun fn -> fn.t_name = f) u.u_fns with
      | Some fn -> Some (u, fn)
      | None -> None))

(* ---------- canonical names ---------- *)

(* "Dwv_taylor__Taylor_model" -> "Taylor_model". Only module components
   (capitalized) are mangled by dune; value names pass through. *)
let strip_mangle part =
  if String.length part = 0 || not (part.[0] >= 'A' && part.[0] <= 'Z') then part
  else
    let rec last_sep i found =
      if i + 1 >= String.length part then found
      else if part.[i] = '_' && part.[i + 1] = '_' then last_sep (i + 2) (Some (i + 2))
      else last_sep (i + 1) found
    in
    match last_sep 0 None with
    | Some j -> String.sub part j (String.length part - j)
    | None -> part

let canon_unit_of_modname modname = strip_mangle modname

(* Shared spine of every canonicalization: resolve a leading local
   alias, drop Stdlib, strip mangling, and drop a library wrapper
   component when the next component is a scanned unit. *)
let canon_parts t u parts =
  let parts =
    match parts with
    | p0 :: rest -> (
      match List.assoc_opt p0 u.u_aliases with
      | Some target -> target @ rest
      | None -> parts)
    | [] -> []
  in
  let parts = match parts with "Stdlib" :: (_ :: _ as r) -> r | p -> p in
  let parts = List.map strip_mangle parts in
  match parts with
  | p0 :: (p1 :: _ as rest)
    when (not (Hashtbl.mem t.by_name p0)) && Hashtbl.mem t.by_name p1 ->
    rest
  | p -> p

let predef_types =
  [
    "int"; "char"; "string"; "bytes"; "float"; "bool"; "unit"; "exn"; "array";
    "list"; "option"; "nativeint"; "int32"; "int64"; "lazy_t"; "result";
    "floatarray"; "extension_constructor";
  ]

let canon_ident t u path =
  String.concat "." (canon_parts t u (String.split_on_char '.' (Path.name path)))

(* ---------- types ---------- *)

let constr_name t u ty =
  match Types.get_desc ty with
  | Types.Tconstr (Path.Pident id, _, _) ->
    (* a bare constructor is either a predefined type or a type local to
       this unit: qualify the latter so "t" in expr.ml reads "Expr.t"
       everywhere. Dotted paths (Stdlib.ref, Hashtbl.t) never get the
       unit prefix. *)
    let n = Ident.name id in
    if List.mem n predef_types then n else u.u_name ^ "." ^ n
  | Types.Tconstr (p, _, _) ->
    String.concat "." (canon_parts t u (String.split_on_char '.' (Path.name p)))
  | _ -> ""

(* type_expr graphs can be cyclic (recursive types); guard on node ids. *)
let guarded_type_exists pred ty =
  let seen = Hashtbl.create 16 in
  let found = ref false in
  let rec go ty =
    if not !found then begin
      let id = Types.get_id ty in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        if pred ty then found := true
        else
          let children =
            match Types.get_desc ty with
            | Types.Tconstr (_, args, _) -> args
            | Types.Tarrow (_, a, b, _) -> [ a; b ]
            | Types.Ttuple ts -> ts
            | Types.Tpoly (t', _) -> [ t' ]
            | _ -> []
          in
          List.iter go children
      end
    end
  in
  go ty;
  !found

let type_head t u ty = constr_name t u ty

let type_mentions t u name ty = guarded_type_exists (fun ty' -> constr_name t u ty' = name) ty

let type_mentions_float ty =
  guarded_type_exists
    (fun ty' ->
      match Types.get_desc ty' with
      | Types.Tconstr (p, _, _) -> Path.name p = "float"
      | _ -> false)
    ty

let file_loc u (loc : Location.t) =
  let line, col = Src_ast.start_line_col loc in
  Diagnostics.File { path = u.u_source; line; col }

(* ---------- extraction ---------- *)

let label_string = function
  | Asttypes.Nolabel -> ""
  | Asttypes.Labelled s -> "~" ^ s
  | Asttypes.Optional s -> "?" ^ s

(* The arrow spine of a binding's type: one param record per arrow. *)
let params_of_type t u ty =
  let rec go acc ty =
    match Types.get_desc ty with
    | Types.Tarrow (label, a, b, _) ->
      let p =
        { p_label = label_string label; p_budget = type_mentions t u "Budget.t" a }
      in
      go (p :: acc) b
    | Types.Tlink ty' | Types.Tsubst (ty', _) -> go acc ty'
    | _ -> List.rev acc
  in
  go [] ty

(* An optional argument the elaborator filled in (or the caller spelled
   [?x:None]) is "not passed": for budget threading both mean the callee
   runs without the caller's budget. *)
let arg_passed label (arg : Typedtree.expression option) =
  match arg with
  | None -> false
  | Some e -> (
    match (label, e.Typedtree.exp_desc) with
    | Asttypes.Optional _, Typedtree.Texp_construct (_, cd, []) ->
      cd.Types.cstr_name <> "None"
    | _ -> true)

let resolve_callee t u path =
  match canon_parts t u (String.split_on_char '.' (Path.name path)) with
  | [] -> ("", false)
  | [ n ] -> (
    match find_unit t u.u_name with
    | Some du when List.exists (fun fn -> fn.t_name = n) du.u_fns ->
      (u.u_name ^ "." ^ n, true)
    | _ -> (n, false))
  | parts -> (
    let callee = String.concat "." parts in
    match List.rev parts with
    | f :: m :: _ -> (
      let short = m ^ "." ^ f in
      match find_unit t m with
      | Some du when List.exists (fun fn -> fn.t_name = f) du.u_fns -> (short, true)
      | _ -> (short, false))
    | _ -> (callee, false))

let calls_of_body t u body =
  let calls = ref [] in
  let open Tast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_apply
              ({ Typedtree.exp_desc = Typedtree.Texp_ident (p, { loc; _ }, _); _ }, args)
            ->
            let callee, internal = resolve_callee t u p in
            let c_args =
              List.map
                (fun (label, arg) ->
                  let passed = arg_passed label arg in
                  let budget =
                    passed
                    &&
                    match arg with
                    | Some (a : Typedtree.expression) ->
                      type_mentions t u "Budget.t" a.Typedtree.exp_type
                    | None -> false
                  in
                  { a_label = label_string label; a_passed = passed; a_budget = budget })
                args
            in
            calls := { c_callee = callee; c_internal = internal; c_loc = loc; c_args }
                     :: !calls
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  iter.expr iter body;
  List.rev !calls

(* Every identifier the body mentions, canonically resolved — a strict
   superset of the call heads in [calls_of_body]. The purity pass scans
   these so an eta-passed impure function ([List.map Sys.getenv ...]) or
   a bare mutable-global read is seen even though it is not a call. *)
let refs_of_body t u body =
  let refs = ref [] in
  let open Tast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, { loc; _ }, _) ->
            let name, internal = resolve_callee t u p in
            if name <> "" then
              refs := { r_name = name; r_internal = internal; r_loc = loc } :: !refs
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  iter.expr iter body;
  List.rev !refs

let rec binding_name (p : Typedtree.pattern) =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Some (Ident.name id)
  | Typedtree.Tpat_alias (p', id, _) -> (
    (* a constrained binding [let x : t = e] elaborates to an alias
       whose *alias ident* is the binder (the inner pattern is a
       wildcard), so fall back to it *)
    match binding_name p' with
    | Some _ as n -> n
    | None -> Some (Ident.name id))
  | _ -> None

let aliases_of_structure (str : Typedtree.structure) =
  List.filter_map
    (fun (item : Typedtree.structure_item) ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_module mb -> (
        let rec target (me : Typedtree.module_expr) =
          match me.Typedtree.mod_desc with
          | Typedtree.Tmod_ident (p, _) -> Some (String.split_on_char '.' (Path.name p))
          | Typedtree.Tmod_constraint (me', _, _, _) -> target me'
          | _ -> None
        in
        match (mb.Typedtree.mb_id, target mb.Typedtree.mb_expr) with
        | Some id, Some parts -> Some (Ident.name id, parts)
        | _ -> None)
      | _ -> None)
    str.Typedtree.str_items

(* ---------- loading ---------- *)

type raw = { r_modname : string; r_source : string; r_structure : Typedtree.structure }

(* [Skip]: a cmt that is well-formed but not analysable source — library
   wrapper / exe aggregator modules generated by dune ([.ml-gen], no
   source path). Only genuine read failures surface in [load_errors]. *)
type read_result = Raw of raw | Skip | Failed of string

let read_raw path =
  match Cmt_format.read_cmt path with
  | exception e -> Failed (Printexc.to_string_default e)
  | cmt -> (
    match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation str, Some src when Filename.check_suffix src ".ml" ->
      let src =
        if String.length src > 1 && String.sub src 0 2 = "./" then
          String.sub src 2 (String.length src - 2)
        else src
      in
      Raw { r_modname = cmt.Cmt_format.cmt_modname; r_source = src; r_structure = str }
    | _ -> Skip)

let under_root root path =
  root = path
  || String.length path > String.length root
     && String.sub path 0 (String.length root) = root
     && path.[String.length root] = '/'

let fns_of_unit t u_skeleton structure =
  let fns = ref [] in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match binding_name vb.Typedtree.vb_pat with
            | None -> ()
            | Some name ->
              let body = vb.Typedtree.vb_expr in
              fns :=
                {
                  t_name = name;
                  t_loc = vb.Typedtree.vb_loc;
                  t_params = params_of_type t u_skeleton body.Typedtree.exp_type;
                  t_calls = [];
                  t_refs = [];
                  t_body = body;
                }
                :: !fns)
          vbs
      | _ -> ())
    structure.Typedtree.str_items;
  List.rev !fns

let of_raw raws =
  let t = { by_name = Hashtbl.create 64; errors = [] } in
  (* pass 1: skeleton units, so canonicalization knows every unit name *)
  let raws =
    List.filter
      (fun (path, raw) ->
        let name = canon_unit_of_modname raw.r_modname in
        if Hashtbl.mem t.by_name name then begin
          t.errors <-
            (path, Fmt.str "duplicate unit name %s (kept the first)" name) :: t.errors;
          false
        end
        else begin
          Hashtbl.replace t.by_name name
            {
              u_name = name;
              u_modname = raw.r_modname;
              u_source = raw.r_source;
              u_aliases = aliases_of_structure raw.r_structure;
              u_fns = [];
              u_str = raw.r_structure;
            };
          true
        end)
      raws
  in
  (* pass 2: function tables (names only), so callee resolution works *)
  List.iter
    (fun (_, raw) ->
      let name = canon_unit_of_modname raw.r_modname in
      let u = Hashtbl.find t.by_name name in
      Hashtbl.replace t.by_name name { u with u_fns = fns_of_unit t u raw.r_structure })
    raws;
  (* pass 3: resolved calls *)
  List.iter
    (fun (_, raw) ->
      let name = canon_unit_of_modname raw.r_modname in
      let u = Hashtbl.find t.by_name name in
      let fns =
        List.map
          (fun fn ->
            { fn with
              t_calls = calls_of_body t u fn.t_body;
              t_refs = refs_of_body t u fn.t_body })
          u.u_fns
      in
      Hashtbl.replace t.by_name name { u with u_fns = fns })
    raws;
  t

let of_cmt_files paths =
  let raws, errors =
    List.fold_left
      (fun (raws, errors) path ->
        match read_raw path with
        | Raw raw -> ((path, raw) :: raws, errors)
        | Skip -> (raws, errors)
        | Failed msg -> (raws, (path, msg) :: errors))
      ([], []) paths
  in
  let t = of_raw (List.rev raws) in
  t.errors <- t.errors @ errors;
  t

let default_build_dir () =
  if Sys.file_exists "_build/default" && Sys.is_directory "_build/default" then
    "_build/default"
  else "."

let collect_cmts dir =
  let files = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | exception Sys_error _ -> ()
    | true -> (
      match Sys.readdir path with
      | entries ->
        Array.sort String.compare entries;
        Array.iter (fun e -> walk (Filename.concat path e)) entries
      | exception Sys_error _ -> ())
    | false -> if Filename.check_suffix path ".cmt" then files := path :: !files
  in
  walk dir;
  List.rev !files

let scan ?build_dir ?(exclude = []) ?roots () =
  let dir = match build_dir with Some d -> d | None -> default_build_dir () in
  let paths = collect_cmts dir in
  let keep raw =
    (match roots with
    | None -> true
    | Some roots -> List.exists (fun root -> under_root root raw.r_source) roots)
    && not (Source_lint.path_under ~fragments:exclude raw.r_source)
  in
  let raws, errors =
    List.fold_left
      (fun (raws, errors) path ->
        match read_raw path with
        | Raw raw when keep raw -> ((path, raw) :: raws, errors)
        | Raw _ | Skip -> (raws, errors)
        | Failed msg -> (raws, (path, msg) :: errors))
      ([], []) paths
  in
  let t = of_raw (List.rev raws) in
  t.errors <- t.errors @ errors;
  t
