(** Static facts about dynamics expressions, feeding the model-level
    checks: which state/input components an expression mentions, and the
    subterms whose interval domains must be validated (division
    denominators, [exp] arguments). *)

(** Largest [Var] index mentioned, or [-1] when none. *)
val max_var_index : Dwv_expr.Expr.t -> int

(** Largest [Input] index mentioned, or [-1] when none. *)
val max_input_index : Dwv_expr.Expr.t -> int

(** Does the expression mention any [Input]? *)
val uses_input : Dwv_expr.Expr.t -> bool

(** Every denominator subterm of a [Div], outermost first. *)
val denominators : Dwv_expr.Expr.t -> Dwv_expr.Expr.t list

(** Every argument subterm of an [Exp], outermost first. *)
val exp_args : Dwv_expr.Expr.t -> Dwv_expr.Expr.t list
