(** Layer-1 static analysis: milliseconds-cheap soundness checks over the
    model IRs (dynamics [Expr.t] vectors, reach-avoid [Spec.t]s, controllers
    and serialized networks) that reject ill-formed designs before they
    reach the flowpipe kernel. Every entry point is total: it returns
    diagnostics, it never raises on bad models. *)

(** Everything known about one system under analysis. [u] is the declared
    input range; when absent it is derived from the controller where
    possible (tanh/sigmoid output scaling, interval-evaluated linear
    gains). [domain] is the declared operating region (e.g. the pretraining
    region) that the initial set must sit inside. *)
type input = {
  name : string;
  sys : Dwv_ode.Sampled_system.t;
  spec : Dwv_core.Spec.t;
  controller : Dwv_core.Controller.t option;
  u : Dwv_interval.Box.t option;
  domain : Dwv_interval.Box.t option;
}

val make_input :
  ?controller:Dwv_core.Controller.t ->
  ?u:Dwv_interval.Box.t ->
  ?domain:Dwv_interval.Box.t ->
  name:string ->
  sys:Dwv_ode.Sampled_system.t ->
  spec:Dwv_core.Spec.t ->
  unit ->
  input

(** Run every applicable check; diagnostics come back sorted. *)
val check : input -> Diagnostics.t list

(** {1 Granular entry points} (exposed for tests and for callers holding
    raw pieces rather than a constructed [Sampled_system.t]) *)

(** Arity: every Var index < n, Input index < m, and |f| = n. *)
val check_dynamics :
  name:string -> f:Dwv_expr.Expr.t array -> n:int -> m:int -> Diagnostics.t list

(** Interval domains over the initial box: Div denominators must exclude 0,
    Exp arguments must stay below the double overflow threshold. *)
val check_domains :
  name:string ->
  f:Dwv_expr.Expr.t array ->
  x0:Dwv_interval.Box.t ->
  ?u:Dwv_interval.Box.t ->
  unit ->
  Diagnostics.t list

(** Spec well-formedness: disjoint goal/unsafe, X0 clear of the unsafe set,
    non-degenerate boxes, X0 inside the declared domain (when given),
    dimension agreement with [expected_n] (when given). *)
val check_spec :
  name:string ->
  ?expected_n:int ->
  ?domain:Dwv_interval.Box.t ->
  Dwv_core.Spec.t ->
  Diagnostics.t list

(** Network audit: finite parameters, interface shape against [n_in]/[n_out]
    when given, Lipschitz-bound sanity. *)
val check_network :
  name:string -> ?n_in:int -> ?n_out:int -> Dwv_nn.Mlp.t -> Diagnostics.t list

(** Controller-against-plant audit (shape, bounded output activation). *)
val check_controller :
  name:string -> n:int -> m:int -> Dwv_core.Controller.t -> Diagnostics.t list

(** Sound input-range box implied by a controller over [x0], when one can
    be derived. *)
val input_box :
  x0:Dwv_interval.Box.t -> Dwv_core.Controller.t -> Dwv_interval.Box.t option
