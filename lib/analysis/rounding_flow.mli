(** Layer-5 rounding-discipline analysis over the typed index.

    The validated-numerics soundness model (interval.ml header, DESIGN.md
    §15): every enclosure bound produced with round-to-nearest float
    arithmetic must be discharged through an audited outward primitive —
    [Interval.widen], whose eps-scale slack dominates the 1/2-ulp
    rounding error, or the [Cert_ival] directed ulp steppers. This pass
    machine-checks the discipline: it tracks dataflow into enclosure
    bounds (fields of [Interval.t]/[Cert_ival.t] record literals,
    arguments of bound constructors such as [Interval.make]) and flags
    raw float arithmetic ([+.], [*.], libm calls, [Float.*] arithmetic)
    and midpoint/heuristic computations ([Interval.mid], [Interval.rad])
    reaching a bound without passing through an outward primitive.

    Functions with documented exceptions carry allow entries (the
    analogue of {!Typed_rules.expr_phys_eq_allow}); every entry must
    still match a flagged site or it is reported as stale
    ({!Registry.sound_allow}). *)

type allow = {
  a_fn : string;      (** "Unit.fn" whose flagged sites are accepted *)
  a_reason : string;  (** why the sites are sound; mirrored in-source *)
}

type config = {
  bound_types : string list;   (** canonical type heads whose record fields are bounds *)
  constructors : string list;  (** functions whose arguments are bound dataflow *)
  outward : string list;       (** audited primitives discharging their argument subtree *)
  raw : string list;           (** round-to-nearest operations and functions *)
  heuristics : string list;    (** midpoint/metric helpers, flagged when feeding a bound *)
  allow : allow list;
}

val default_allow : allow list
val default_config : config

(** All {!Registry.rounding_flow} violations plus {!Registry.sound_allow}
    staleness errors, in {!Diagnostics.sort} order (deterministic across
    runs). *)
val analyze : ?config:config -> Cmt_index.t -> Diagnostics.t list
