(** Layer-5 engine driver: {!Rounding_flow} + {!Cache_purity} over one
    [Cmt_index.scan], with the layer-3 {!Ast_index} rebuilt from source
    for the mutable-global inventory. This is what
    [dwv_lint --engine sound] runs.

    Like the layer-4 driver, it needs the [.cmt] files dune produces
    under [@check]; with none found it reports a single
    {!Registry.cmt_missing} error. *)

val lint_tree :
  ?build_dir:string ->
  ?exclude:string list ->
  ?rounding:Rounding_flow.config ->
  ?purity:Cache_purity.config ->
  roots:string list ->
  unit ->
  Diagnostics.t list
