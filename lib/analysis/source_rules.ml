(* The rule table. Everything the engine needs is data, so adding a rule
   is one record; the engine (Source_lint) never special-cases a name.

   Patterns are written against *stripped* source (comments and string
   literals blanked out by Source_lint.strip), which is why they can be
   simple: no need to dodge banners like "===" in strings or operator
   mentions in comments. *)

type rule = {
  name : string;
  severity : Diagnostics.severity;
  pattern : string;
  message : string;
  hint : string option;
  allow : string list;
}

(* Split a path into its components, dropping empty segments and "." so
   "./lib//expr" and "lib/expr" compare equal. Backslashes are treated as
   separators too (paths may arrive in Windows form). *)
let components path =
  String.split_on_char '\\' path
  |> List.concat_map (String.split_on_char '/')
  |> List.filter (fun c -> c <> "" && c <> ".")

let allowed rule path =
  let pcs = components path in
  List.exists
    (fun fragment ->
      (* Fragments match on whole path components, not substrings:
         "lib/expr/expr.ml" must not also exempt lib/expr/expr.ml.bak.
         A trailing '/' ("bin/") makes the fragment directory-only — it
         must match somewhere strictly above the final component. *)
      let dir_only =
        String.length fragment > 0 && fragment.[String.length fragment - 1] = '/'
      in
      let fcs = components fragment in
      let rec prefix fs ps =
        match (fs, ps) with
        | [], rest -> (not dir_only) || rest <> []
        | _, [] -> false
        | f :: fs', p :: ps' -> f = p && prefix fs' ps'
      in
      let rec at ps =
        match ps with [] -> false | _ :: rest -> prefix fcs ps || at rest
      in
      fcs <> [] && at pcs)
    rule.allow

(* An identifier boundary on the left: start of line or a char that cannot
   end an identifier/module path. *)
let not_ident_left = {|\(^\|[^_a-zA-Z0-9.]\)|}

let builtin =
  [
    {
      name = "phys-equality";
      severity = Diagnostics.Error;
      (* == / != as standalone operators (not <=, >=, ==> etc.) *)
      pattern = {|\(^\|[^!<>=&$@^|+*/%:.~-]\)\(==\|!=\)\([^=>]\|$\)|};
      message = "physical equality (==/!=) on values; on floats and float-bearing \
                 structures it is not semantic equality";
      hint = Some "use structural/semantic equality (e.g. Float.equal, Expr.equal, =)";
      allow = [ "lib/expr/expr.ml" (* O(1) shortcut inside Expr.equal itself *) ];
    };
    {
      name = "nan-compare";
      severity = Diagnostics.Error;
      (* the left guard keeps '->' arms (e.g. `| _ -> Float.nan`) from
         matching as a '>' comparison *)
      pattern =
        {|\(^\|[^-<>=!&$@^|+*/%:.~]\)\(=\|<\|>\|<=\|>=\|<>\)[ \t]*\(Float\.\)?nan\b\|\bnan[ \t]*\(=\|<\|>\|<>\)|};
      message = "comparison against nan is always false (or always true for <>)";
      hint = Some "use Float.is_nan / classify_float";
      allow = [];
    };
    {
      name = "float-of-string";
      severity = Diagnostics.Error;
      pattern =
        not_ident_left ^ {|\(Float\.of_string\|float_of_string\)\([^_a-zA-Z0-9]\|$\)|};
      message = "bare float-of-string raises an uninformative Failure on malformed input";
      hint = Some "use float_of_string_opt and report the offending text";
      allow = [];
    };
    {
      name = "obj-magic";
      severity = Diagnostics.Error;
      pattern = not_ident_left ^ {|Obj\.\(magic\|repr\|obj\)\b|};
      message = "Obj.magic defeats the type system; enclosure soundness cannot survive it";
      hint = None;
      allow = [];
    };
    {
      name = "poly-compare";
      severity = Diagnostics.Warn;
      pattern = not_ident_left ^ {|\(Stdlib\.compare\|Pervasives\.compare\)\b|};
      message = "explicit polymorphic compare; on float-bearing types prefer a typed \
                 comparison";
      hint = Some "use Float.compare / a per-type compare function";
      allow = [];
    };
    {
      name = "bare-failwith";
      severity = Diagnostics.Error;
      pattern = not_ident_left ^ {|\(failwith\|exit\)[ \t(]|};
      message = "bare failwith/exit in a library hot path; the verification loop must \
                 stay total";
      hint =
        Some
          "return (_, Dwv_robust.Dwv_error.t) result (see DESIGN.md §8), or allowlist \
           a genuinely unreachable case";
      allow =
        [ "bin/"; "bench/"; "test/"; "examples/";
          (* intentional: parse/IO front ends and invariant violations that
             indicate a programming error, not a degraded analysis *)
          "lib/nn/serialize.ml"; "lib/core/controller.ml";
          "lib/interval/interval.ml"; "lib/taylor/taylor_model.ml";
          "lib/la/mat.ml" ];
    };
    {
      name = "print-debug";
      severity = Diagnostics.Warn;
      pattern = not_ident_left ^ {|\(print_endline\|print_string\|Printf\.printf\)\b|};
      message = "direct stdout printing from library code";
      hint = Some "return data, or take a Format formatter (Fmt) like the rest of lib/";
      allow =
        [ "bin/"; "bench/"; "test/"; "examples/";
          "lib/util/table.ml" (* Table.print is the module's documented purpose *) ];
    };
  ]
