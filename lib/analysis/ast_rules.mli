(** AST-backed re-implementation of the layer-2 source rules
    (phys-equality, nan-compare, float-of-string, obj-magic,
    poly-compare, print-debug). Rule metadata — severity, message, hint,
    allowlist — is shared with the regex engine via {!Source_rules}. *)

val covered : string list
(** Names of the rules this engine implements semantically (bare-failwith
    is deliberately absent: {!Exn_escape} replaces it). *)

val lint_parsed : ?rules:Source_rules.rule list -> Src_ast.parsed -> Diagnostics.t list
(** Run the covered rules over one parsed file. Rules missing from
    [rules] are skipped, so a restricted rule set behaves like the regex
    engine's. *)
