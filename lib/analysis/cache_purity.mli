(** Layer-5 cache-determinism analysis over the typed reference graph.

    The PR-7 certificate cache serves verdicts keyed by
    [Cert_key.fingerprint]; the key is only trustworthy if everything
    reachable from the fingerprint and validation entry points is a pure
    function of the keyed inputs. This pass computes the transitive
    closure of internal references from those entry points and flags
    reads of wall clocks ([Mono.now], [Unix.gettimeofday], [Sys.time]),
    RNG state ([Random.*]), [Domain] identity, process environment, and
    unkeyed module-level mutable globals (joined against the layer-3
    {!Ast_index} inventory; [Domain.DLS] memo caches and write-only
    telemetry counters are accepted — see the implementation header for
    the argument).

    [Cert_cache.find]/[store] are an explicit trust boundary: the cache
    sits behind the fingerprint key and {!Cert_check.validate} re-checks
    whatever it returns, so the BFS stops there.

    Allow entries pair the reachable function with the specific
    reference it is excused for; stale entries are
    {!Registry.sound_allow} errors, exactly as in {!Rounding_flow}. *)

type allow = {
  a_fn : string;      (** "Unit.fn" where the reference occurs *)
  a_what : string;    (** the excused canonical reference, e.g. "Expr.intern_table" *)
  a_reason : string;
}

type config = {
  entries : string list;   (** fingerprint/validation/cert-emission roots *)
  boundary : string list;  (** functions the closure does not descend into *)
  forbidden : (string * string) list;         (** exact canonical name, category *)
  forbidden_prefix : (string * string) list;  (** name prefix, category *)
  allow : allow list;
}

val default_entries : string list
val default_allow : allow list
val default_config : config

(** All {!Registry.cache_purity} violations (with the entry-to-offender
    reference path in the message) plus {!Registry.sound_allow}
    staleness errors, deterministic across runs. [ast] supplies the
    layer-3 mutable-state inventory; without it the mutable-global check
    is skipped (name-based forbidden reads still fire). *)
val analyze : ?config:config -> ?ast:Ast_index.t -> Cmt_index.t -> Diagnostics.t list
