(* Layer-3 front end: parse OCaml sources into the compiler's own
   Parsetree. The AST-grounded checks (Ast_rules, Domain_safety,
   Exn_escape) all start from here, so matching is syntactic — a `==` in
   a comment, a string banner or an identifier like `preexists` can never
   fire a rule, and every diagnostic carries the exact compiler location.

   Parsing uses compiler-libs.common (the same 5.1 front end that builds
   the repo), so anything dune accepts we parse identically. Files the
   parser rejects — which for this repo means "mid-edit garbage", since
   tier-1 would fail too — fall back to the regex engine in Ast_lint. *)

type parsed = {
  path : string;
  source : string;
  ast : Parsetree.structure;
}

(* Longident [M.N.f] flattened to its component list. *)
let flatten lid = Longident.flatten lid

let name_of lid = String.concat "." (flatten lid)

(* 1-based line/col of a compiler location's start. *)
let start_line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)

let file_loc ~path (loc : Location.t) =
  let line, col = start_line_col loc in
  Diagnostics.File { path; line; col }

(* Absolute character offsets of a location, for lexical containment
   tests (is this raise site inside that try body?). Offsets are
   relative to the parsed string, which is the whole file. *)
let span (loc : Location.t) =
  (loc.Location.loc_start.Lexing.pos_cnum, loc.Location.loc_end.Lexing.pos_cnum)

let parse_impl ~path source =
  let lexbuf = Lexing.from_string source in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  match Parse.implementation lexbuf with
  | ast -> Ok { path; source; ast }
  | exception e ->
    let msg =
      match e with
      | Syntaxerr.Error _ -> "syntax error"
      | _ -> Printexc.to_string_default e
    in
    let line, col = start_line_col (Location.curr lexbuf) in
    Error (Fmt.str "%s at %d:%d" msg line col)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path = parse_impl ~path (read_file path)

(* "lib/taylor/taylor_model.ml" -> "Taylor_model": the name under which
   other modules of the repo reference this compilation unit. *)
let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))
