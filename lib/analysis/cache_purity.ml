(* Layer-5 cache-determinism analysis. See the .mli for the model.

   BFS over the typed reference graph: from each entry point, follow
   every internal reference that resolves to a top-level *function*
   (non-function top-level values are instead classified as data — see
   the mutable-global check). Each visited function's full reference
   set ([t_refs], a superset of its call heads) is screened against the
   forbidden read lists, so an eta-passed [Sys.getenv] is caught even
   though it is never the head of an application.

   Mutable module-level globals are recognized by joining the typed
   reference (canonical "Unit.name") against the layer-3 [Ast_index]
   mutable-state inventory of that unit. Classification:
   - [Dls_guarded]: accepted — per-domain memo caches; genuineness
     (fresh initializer, no shared backing) is already enforced by the
     layer-3 domain-safety pass, which this analysis assumes green.
   - telemetry counters (initializer calls [Counters.counter]):
     accepted — they are write-only in reachable code, and the *read*
     API ([Counters.value]/[snapshot]) is itself on the forbidden list,
     so any verdict-affecting read is flagged by name instead.
   - anything else ([Atomic], mutex-guarded, unguarded): flagged unless
     an allow entry justifies it.

   Boundary functions are not descended into: the certificate cache
   ([Cert_cache.find]/[store]) sits *behind* the fingerprint key, and
   [Cert_check.validate] independently re-checks whatever the cache
   returns, so cache-internal impurity (file mtimes, eviction clocks)
   cannot alter a verdict. The boundary list makes that trust split
   explicit and keeps it audited here. *)

module D = Diagnostics
module CI = Cmt_index

type allow = { a_fn : string; a_what : string; a_reason : string }

type config = {
  entries : string list;
  boundary : string list;
  forbidden : (string * string) list;         (* exact canonical name, category *)
  forbidden_prefix : (string * string) list;  (* name prefix, category *)
  allow : allow list;
}

let default_entries =
  [
    "Cert_key.fingerprint"; "Cert_key.expr_fingerprint"; "Cert_check.validate";
    "Cert_check.validate_cert"; "Verifier.cert_of_pipe"; "Scn_verify.cert_hook";
  ]

let default_allow =
  [
    {
      a_fn = "Expr.intern";
      a_what = "Expr.intern_table";
      a_reason =
        "hash-consing store: contents are a deterministic function of the \
         terms constructed; intern ids never enter fingerprints (Cert_key \
         hashes structure, not ids)";
    };
    {
      a_fn = "Expr.intern";
      a_what = "Expr.next_id";
      a_reason =
        "id counter for the hash-consing store; ids never enter fingerprints";
    };
  ]

let default_config =
  {
    entries = default_entries;
    boundary = [ "Cert_cache.find"; "Cert_cache.store" ];
    forbidden =
      [
        ("Mono.now", "clock");
        ("Unix.gettimeofday", "clock");
        ("Unix.time", "clock");
        ("Unix.gmtime", "clock");
        ("Unix.localtime", "clock");
        ("Sys.time", "clock");
        ("Domain.self", "domain identity");
        ("Domain.recommended_domain_count", "domain identity");
        ("Domain.is_main_domain", "domain identity");
        ("Sys.getenv", "environment");
        ("Sys.getenv_opt", "environment");
        ("Sys.getcwd", "environment");
        ("Sys.argv", "environment");
        ("Unix.getenv", "environment");
        ("Unix.environment", "environment");
        ("Unix.getpid", "environment");
        ("Unix.gethostname", "environment");
        ("Counters.value", "counter read");
        ("Counters.get", "counter read");
        ("Counters.snapshot", "counter read");
      ];
    forbidden_prefix = [ ("Random.", "RNG state") ];
    allow = default_allow;
  }

(* A top-level value is a telemetry counter when its initializer calls
   [Counters.counter] (possibly through an alias or the wrapper path). *)
let is_counter_init (mb : Ast_index.mutable_binding) =
  Ast_index.SSet.exists
    (fun s ->
      s = "Counters.counter"
      || (String.length s > 16
          && String.sub s (String.length s - 17) 17 = ".Counters.counter"))
    mb.Ast_index.m_init_idents

let short_name key =
  match String.rindex_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let unit_name key =
  match String.rindex_opt key '.' with Some i -> String.sub key 0 i | None -> ""

(* Entry-to-offender path from the BFS parent map, for the message. *)
let rec path_to parents key =
  match Hashtbl.find_opt parents key with
  | None | Some "" -> [ key ]
  | Some p -> key :: path_to parents p

let analyze ?(config = default_config) ?ast idx =
  let diags = ref [] in
  let used_allow = Hashtbl.create 8 in
  let allowed fn what =
    match
      List.find_opt (fun a -> a.a_fn = fn && a.a_what = what) config.allow
    with
    | Some a ->
      Hashtbl.replace used_allow (a.a_fn, a.a_what) ();
      true
    | None -> false
  in
  let parents : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun e ->
      match CI.find_fn idx e with
      | Some _ ->
        Hashtbl.replace parents e "";
        Queue.add e queue
      | None ->
        diags :=
          D.error ~check:Registry.cache_purity
            ~loc:(D.Model ("sound/cache-purity/entry/" ^ e))
            (Fmt.str "unknown entry point %s: not a top-level binding of any \
                      scanned unit" e)
            ~hint:"fix the entry list (function renamed or unit excluded?)"
          :: !diags)
    config.entries;
  let describe key =
    String.concat " -> " (List.rev (path_to parents key))
  in
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.replace visited key ();
      match CI.find_fn idx key with
      | None -> ()
      | Some (u, fn) ->
        List.iter
          (fun (r : CI.ref_site) ->
            let category =
              match List.assoc_opt r.CI.r_name config.forbidden with
              | Some c -> Some c
              | None ->
                List.fold_left
                  (fun acc (p, c) ->
                    if
                      acc = None
                      && String.length r.CI.r_name >= String.length p
                      && String.sub r.CI.r_name 0 (String.length p) = p
                    then Some c
                    else acc)
                  None config.forbidden_prefix
            in
            match category with
            | Some cat ->
              if not (allowed key r.CI.r_name) then
                diags :=
                  D.error ~check:Registry.cache_purity
                    ~loc:(CI.file_loc u r.CI.r_loc)
                    (Fmt.str "%s read %s reachable from a certificate path: %s"
                       cat r.CI.r_name (describe key))
                    ~hint:
                      "certificate fingerprints and validation must be pure \
                       functions of the keyed inputs; inject the value through \
                       a parameter or add a justified Cache_purity allow entry"
                  :: !diags
            | None ->
              if r.CI.r_internal && not (List.mem r.CI.r_name config.boundary)
              then
                match CI.find_fn idx r.CI.r_name with
                | Some (_, target) when target.CI.t_params <> [] ->
                  if not (Hashtbl.mem visited r.CI.r_name) then begin
                    if not (Hashtbl.mem parents r.CI.r_name) then
                      Hashtbl.replace parents r.CI.r_name key;
                    Queue.add r.CI.r_name queue
                  end
                | Some _ -> (
                  (* a top-level *value*: mutable global? *)
                  match ast with
                  | None -> ()
                  | Some ast -> (
                    match Ast_index.find_module ast (unit_name r.CI.r_name) with
                    | None -> ()
                    | Some m -> (
                      match Ast_index.find_mutable m (short_name r.CI.r_name) with
                      | None -> ()
                      | Some mb ->
                        if
                          (not (mb.Ast_index.m_guard = Ast_index.Dls_guarded))
                          && mb.Ast_index.m_kind <> Ast_index.Sync_t
                             (* a bare lock carries no data *)
                          && (not (is_counter_init mb))
                          && not (allowed key r.CI.r_name)
                        then
                          diags :=
                            D.error ~check:Registry.cache_purity
                              ~loc:(CI.file_loc u r.CI.r_loc)
                              (Fmt.str
                                 "unkeyed mutable global %s (%s, %s) reachable \
                                  from a certificate path: %s"
                                 r.CI.r_name
                                 (Ast_index.kind_label mb.Ast_index.m_kind)
                                 (match mb.Ast_index.m_guard with
                                 | Ast_index.Unguarded -> "unguarded"
                                 | Ast_index.Atomic_guarded -> "atomic"
                                 | Ast_index.Dls_guarded -> "dls"
                                 | Ast_index.Sync_primitive -> "mutex-guarded")
                                 (describe key))
                              ~hint:
                                "key the state into the fingerprint, move it \
                                 into Domain.DLS with a fresh initializer, or \
                                 add a justified Cache_purity allow entry"
                            :: !diags)))
                | None -> ())
          fn.CI.t_refs
    end
  done;
  let stale =
    List.filter_map
      (fun a ->
        if Hashtbl.mem used_allow (a.a_fn, a.a_what) then None
        else
          Some
            (D.error ~check:Registry.sound_allow
               ~loc:(D.Model ("sound/cache-purity/allow/" ^ a.a_fn ^ "/" ^ a.a_what))
               (Fmt.str
                  "stale allow entry %s -> %s: the reference no longer occurs \
                   on any reachable certificate path"
                  a.a_fn a.a_what)
               ~hint:"delete the entry or fix its spelling"))
      config.allow
  in
  D.sort (!diags @ stale)
