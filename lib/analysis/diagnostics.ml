(* Structured diagnostics: the one currency every check trades in. Keeping
   severity, check name and location in a record (rather than formatted
   strings) is what lets the CLI filter, sort, count and re-render them as
   JSON without re-parsing its own output. *)

type severity = Error | Warn | Info

type location =
  | Model of string
  | File of { path : string; line : int; col : int }

type t = {
  check : string;
  severity : severity;
  loc : location;
  message : string;
  hint : string option;
}

let make ?hint severity ~check ~loc message = { check; severity; loc; message; hint }
let error ?hint ~check ~loc message = make ?hint Error ~check ~loc message
let warn ?hint ~check ~loc message = make ?hint Warn ~check ~loc message
let info ?hint ~check ~loc message = make ?hint Info ~check ~loc message

let severity_label = function Error -> "error" | Warn -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warn -> 1 | Info -> 2

let location_key = function
  | Model path -> (0, path, 0, 0)
  | File { path; line; col } -> (1, path, line, col)

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (location_key a.loc) (location_key b.loc) in
      if c <> 0 then c
      else
        let c = compare (severity_rank a.severity) (severity_rank b.severity) in
        if c <> 0 then c else String.compare a.check b.check)
    ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let pp_location ppf = function
  | Model path -> Fmt.pf ppf "model %s" path
  | File { path; line; col } -> Fmt.pf ppf "%s:%d:%d" path line col

let pp_plain ppf d =
  Fmt.pf ppf "%a: %s [%s] %s" pp_location d.loc (severity_label d.severity) d.check
    d.message

let pp ppf d =
  pp_plain ppf d;
  match d.hint with None -> () | Some h -> Fmt.pf ppf "@,  hint: %s" h

(* Minimal JSON string escaping: enough for our own messages (ASCII plus
   quotes/backslashes/control characters). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let loc_fields =
    match d.loc with
    | Model path -> Printf.sprintf {|"model":"%s"|} (json_escape path)
    | File { path; line; col } ->
      Printf.sprintf {|"file":"%s","line":%d,"col":%d|} (json_escape path) line col
  in
  let hint_field =
    match d.hint with
    | None -> ""
    | Some h -> Printf.sprintf {|,"hint":"%s"|} (json_escape h)
  in
  Printf.sprintf {|{"check":"%s","severity":"%s",%s,"message":"%s"%s}|}
    (json_escape d.check) (severity_label d.severity) loc_fields (json_escape d.message)
    hint_field

(* Versioned report envelope: the shape CI archives as an artifact, so
   its stability is pinned by a golden test. Bump [version] on any field
   change. *)
let report_to_json ds =
  let ds = sort ds in
  Printf.sprintf
    {|{"version":1,"summary":{"errors":%d,"warnings":%d,"notes":%d},"diagnostics":[%s]}|}
    (count Error ds) (count Warn ds) (count Info ds)
    (String.concat "," (List.map to_json ds))

(* SARIF 2.1.0: one run, one driver, results in sort order. Rule ids are
   whatever checks actually fired (the full catalogue lives in Registry,
   which this module cannot see — deliberate, Registry depends on
   Source_rules which depends on here). File locations become physical
   locations; model paths become logical locations, which SARIF defines
   for exactly this "not a file" case. *)
let severity_sarif = function Error -> "error" | Warn -> "warning" | Info -> "note"

let result_to_sarif d =
  let location =
    match d.loc with
    | File { path; line; col } ->
      Printf.sprintf
        {|{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}|}
        (json_escape path) line col
    | Model path ->
      Printf.sprintf {|{"logicalLocations":[{"fullyQualifiedName":"%s"}]}|}
        (json_escape path)
  in
  let message =
    match d.hint with
    | None -> d.message
    | Some h -> d.message ^ " (hint: " ^ h ^ ")"
  in
  Printf.sprintf {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[%s]}|}
    (json_escape d.check) (severity_sarif d.severity) (json_escape message) location

let report_to_sarif ds =
  let ds = sort ds in
  let rules =
    List.map (fun d -> d.check) ds
    |> List.sort_uniq String.compare
    |> List.map (fun c -> Printf.sprintf {|{"id":"%s"}|} (json_escape c))
  in
  Printf.sprintf
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"dwv_lint","rules":[%s]}},"results":[%s]}]}|}
    (String.concat "," rules)
    (String.concat "," (List.map result_to_sarif ds))

let pp_summary ppf ds =
  let e = count Error ds and w = count Warn ds and i = count Info ds in
  let plural n = if n = 1 then "" else "s" in
  Fmt.pf ppf "%d error%s, %d warning%s" e (plural e) w (plural w);
  if i > 0 then Fmt.pf ppf ", %d note%s" i (plural i)
