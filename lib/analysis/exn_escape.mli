(** Exception-escape analysis over the {!Ast_index}: hot-path functions
    that can raise past the Dwv_error.t result taxonomy. Replaces the
    regex engine's [bare-failwith] rule.

    Tiers: Error for failwith/exit/uncaught constructor raises in a
    non-result-speaking hot function; Info for invalid_arg-class
    contract raises; Warn when a raise-free hot function directly calls
    an in-scope function with an Error-tier escape (one hop). *)

val check_name : string
(** ["exn-escape"]. *)

val default_hot_modules : string list
(** The verification fast path: Learner, Initset, Evaluate, Verifier and
    the reachability back ends. *)

val default_allow : string list
(** Leaf modules whose raises are contract (mirrors the bare-failwith
    allowlist); calls into them are not reported. *)

val analyze :
  ?hot_modules:string list -> ?allow:string list -> Ast_index.t -> Diagnostics.t list
