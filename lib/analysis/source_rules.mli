(** Source-level lint rules as data: a new rule is one more entry in
    {!builtin}. Patterns are Str regexps matched against comment- and
    string-stripped source lines, so idioms inside comments, docstrings and
    string literals never trigger. *)

type rule = {
  name : string;          (** registry check name, e.g. ["phys-equality"] *)
  severity : Diagnostics.severity;
  pattern : string;       (** Str regexp applied to each stripped line *)
  message : string;
  hint : string option;
  allow : string list;
      (** path fragments exempt from this rule (documented legit uses);
          matched on whole path components, trailing ['/'] = directory only *)
}

(** Does the allowlist exempt this path? Fragments match contiguous whole
    path components ("expr.ml" exempts [lib/expr/expr.ml] but not
    [lib/expr/expr.ml.bak]); a trailing ['/'] restricts the fragment to
    directories (["bin/"] exempts [bin/x.ml] but not a file named [bin]). *)
val allowed : rule -> string -> bool

(** The built-in float-soundness and hygiene rules. *)
val builtin : rule list
