(** Source-level lint rules as data: a new rule is one more entry in
    {!builtin}. Patterns are Str regexps matched against comment- and
    string-stripped source lines, so idioms inside comments, docstrings and
    string literals never trigger. *)

type rule = {
  name : string;          (** registry check name, e.g. ["phys-equality"] *)
  severity : Diagnostics.severity;
  pattern : string;       (** Str regexp applied to each stripped line *)
  message : string;
  hint : string option;
  allow : string list;
      (** path substrings exempt from this rule (documented legit uses) *)
}

(** Does the allowlist exempt this path? *)
val allowed : rule -> string -> bool

(** The built-in float-soundness and hygiene rules. *)
val builtin : rule list
