(** Vectors of Taylor models — the symbolic state of the flowpipe. *)

type t = Taylor_model.t array

(** Identity parameterization of a box: xᵢ = midᵢ + radᵢ·zᵢ.
    [total_vars] (≥ box dimension) reserves extra symbols as disturbance
    slots for symbolic remainders. *)
val of_box : ?total_vars:int -> order:int -> Dwv_interval.Box.t -> t

val dim : t -> int

(** Box enclosure of the represented set. *)
val bound_box : t -> Dwv_interval.Box.t

val map : (Taylor_model.t -> Taylor_model.t) -> t -> t
val add : t -> t -> t
val scale : float -> t -> t

(** Evaluate a vector field of expressions on the symbolic state.
    [pool] maps the (independent) components across domains; results
    are recombined by index, bit-identical to the sequential map. *)
val eval_field :
  ?pool:Dwv_parallel.Pool.t -> x:t -> u:t -> Dwv_expr.Expr.t array -> t

(** Widen every component remainder by ±eps. *)
val widen : float -> t -> t

val pp : Format.formatter -> t -> unit
