(* Vectors of Taylor models: the symbolic state of the flowpipe
   integrator. The symbolic variables z in [-1,1]^k parameterize the
   initial set (and nothing else), so the model of x_i at time t describes
   how the reachable state depends on where in X_0 the trajectory began. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box

type t = Taylor_model.t array

(* Identity parameterization of a box: x_i = mid_i + rad_i * z_i. The
   models can carry extra symbols beyond the box dimensions ([total_vars])
   reserved as disturbance slots for symbolic remainders. *)
let of_box ?total_vars ~order (box : Box.t) : t =
  let n = Box.dim box in
  let nvars = match total_vars with Some v -> v | None -> n in
  if nvars < n then invalid_arg "Tm_vec.of_box: total_vars below the box dimension";
  Array.init n (fun i ->
      let tm = Taylor_model.var ~nvars ~order i in
      Taylor_model.shift (I.mid box.(i)) (Taylor_model.scale (I.rad box.(i)) tm))

let dim (v : t) = Array.length v

(* Interval hull of the models: the box enclosure of the set they
   represent. *)
let bound_box (v : t) : Box.t = Array.map Taylor_model.bound v

let map = Array.map

let add (a : t) (b : t) : t = Array.map2 Taylor_model.add a b

let scale s (v : t) : t = Array.map (Taylor_model.scale s) v

(* Evaluate a vector field (array of expressions) on the symbolic state.
   The components are independent of_expr evaluations, so [pool] maps
   them across domains with index-ordered results — bit-identical to
   the sequential map. *)
let eval_field ?pool ~(x : t) ~(u : t) (f : Dwv_expr.Expr.t array) : t =
  let one fi = Taylor_model.of_expr ~x ~u fi in
  match pool with
  | Some p when Array.length f > 1 -> Dwv_parallel.Pool.map p one f
  | _ -> Array.map one f

(* Widen every component's remainder by +-eps (used to guarantee progress
   in enclosure refinement). *)
let widen eps (v : t) : t =
  Array.map (Taylor_model.add_remainder (I.make (-.eps) eps)) v

let pp ppf (v : t) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(array ~sep:cut Taylor_model.pp) v
