(* Taylor models (Berz & Makino): a polynomial over symbolic variables
   z in [-1,1]^n plus a rigorous interval remainder. The fundamental
   invariant maintained by every operation:

     for every z in [-1,1]^n,  f(z)  in  poly(z) + rem

   where f is the exact function the model abstracts. Taylor models are the
   representation POLAR propagates through neural-network layers and the
   representation our validated flowpipe integrator uses for the reachable
   state. *)

module I = Dwv_interval.Interval
module Poly = Dwv_poly.Poly
module Box = Dwv_interval.Box

type t = { poly : Poly.t; rem : I.t; order : int }

let max_order = 7 (* products stay within Poly's packed-nibble exponents *)

let make ~poly ~rem ~order =
  if order < 1 || order > max_order then
    invalid_arg "Taylor_model.make: order must be within [1, 7]";
  let low, high = Poly.truncate ~order poly in
  if Poly.is_zero high then { poly = low; rem; order }
  else { poly = low; rem = I.add rem (Poly.bound_unit high); order }

let nvars tm = Poly.nvars tm.poly
let poly tm = tm.poly
let remainder tm = tm.rem
let order tm = tm.order

let const ~nvars ~order c = { poly = Poly.const nvars c; rem = I.zero; order }

let var ~nvars ~order i = { poly = Poly.var nvars i; rem = I.zero; order }

(* Abstract an interval as a Taylor model with no symbolic dependency.
   The symmetrized remainder is widened: mid and rad round to nearest, so
   mid +- rad can undershoot the original bounds by 1/2 ulp each. *)
let of_interval ~nvars ~order iv =
  { poly = Poly.const nvars (I.mid iv);
    rem = I.widen (I.make (-.I.rad iv) (I.rad iv));
    order }

(* Sound range enclosure. *)
let bound tm = I.add (Poly.bound_unit tm.poly) tm.rem

(* Evaluate at a concrete z (the result is the interval poly(z) + rem). *)
let eval tm z = I.shift (Poly.eval tm.poly z) tm.rem

let constant_term tm = Poly.constant_term tm.poly

let neg tm = { tm with poly = Poly.neg tm.poly; rem = I.neg tm.rem }

let join_order a b = min a.order b.order

let add a b =
  if nvars a <> nvars b then invalid_arg "Taylor_model.add: arity mismatch";
  { poly = Poly.add a.poly b.poly; rem = I.add a.rem b.rem; order = join_order a b }

let sub a b =
  if nvars a <> nvars b then invalid_arg "Taylor_model.sub: arity mismatch";
  { poly = Poly.sub a.poly b.poly; rem = I.sub a.rem b.rem; order = join_order a b }

let scale s tm = { tm with poly = Poly.scale s tm.poly; rem = I.scale s tm.rem }

let shift c tm = { tm with poly = Poly.add tm.poly (Poly.const (nvars tm) c) }

let add_remainder iv tm = { tm with rem = I.add tm.rem iv }

(* Prune monomials with negligible coefficients into the remainder. The
   closed-loop iteration fills the polynomial with cross-term debris many
   orders of magnitude below the leading coefficients; sweeping keeps the
   representation sparse (and hence the flowpipe fast) at a remainder cost
   bounded by the swept coefficients themselves. *)
let sweep ?(tol = 1e-10) tm =
  let scale = Float.max 1e-30 (Poly.max_abs_coeff tm.poly) in
  let cutoff = tol *. scale in
  let kept, dropped = Poly.partition_coeffs (fun c -> Float.abs c > cutoff) tm.poly in
  if Poly.is_zero dropped then tm
  else { tm with poly = kept; rem = I.add tm.rem (Poly.bound_unit dropped) }

(* Retire symbol i: bound every monomial involving z_i over the domain and
   fold it into the interval remainder. Used to recycle disturbance
   symbols (POLAR-style symbolic remainders with a bounded symbol
   budget). *)
let absorb_var i tm =
  let keep, drop = Poly.split_var tm.poly i in
  if Poly.is_zero drop then tm
  else { tm with poly = keep; rem = I.add tm.rem (Poly.bound_unit drop) }

(* Move the interval remainder onto a fresh symbol z_slot (which must not
   occur in the polynomial — absorb it first): the resulting model has a
   zero interval remainder but remembers, symbolically, that subsequent
   steps all see the SAME disturbance value, which lets a contractive
   closed loop cancel it instead of compounding it. *)
let symbolize_remainder ~slot tm =
  let keep, stale = Poly.split_var tm.poly slot in
  if not (Poly.is_zero stale) then
    invalid_arg "Taylor_model.symbolize_remainder: slot still in use";
  let m = I.mid tm.rem and r = I.rad tm.rem in
  if r = 0.0 then { tm with poly = Poly.add_term keep (Array.make (nvars tm) 0) m; rem = I.zero }
  else begin
    let e = Array.make (nvars tm) 0 in
    e.(slot) <- 1;
    let poly = Poly.add_term (Poly.add_term keep (Array.make (nvars tm) 0) m) e r in
    { tm with poly; rem = I.zero }
  end

(* (p1 + r1)(p2 + r2) = p1 p2 + p1 r2 + p2 r1 + r1 r2; the product
   polynomial is truncated to the model order and the dropped tail is
   bounded into the remainder. *)
let mul a b =
  if nvars a <> nvars b then invalid_arg "Taylor_model.mul: arity mismatch";
  let order = join_order a b in
  let product = Poly.mul a.poly b.poly in
  let keep, drop = Poly.truncate ~order product in
  let bp1 = Poly.bound_unit a.poly and bp2 = Poly.bound_unit b.poly in
  let rem =
    I.add
      (Poly.bound_unit drop)
      (I.add (I.mul bp1 b.rem) (I.add (I.mul bp2 a.rem) (I.mul a.rem b.rem)))
  in
  { poly = keep; rem; order }

let rec pow tm n =
  if n < 0 then invalid_arg "Taylor_model.pow: negative exponent"
  else if n = 0 then const ~nvars:(nvars tm) ~order:tm.order 1.0
  else if n = 1 then tm
  else begin
    let half = pow tm (n / 2) in
    let sq = mul half half in
    if n mod 2 = 0 then sq else mul tm sq
  end

(* ------------------------------------------------------------------ *)
(* Composition with scalar elementary functions via Taylor expansion
   around the model's constant term, with a Lagrange remainder bounded
   over the model's range. *)

type scalar_fn = {
  deriv_at : float -> int -> float;       (* phi^(k)(c) *)
  deriv_bound : I.t -> int -> I.t;        (* enclosure of phi^(k) over an interval *)
}

let factorial k =
  let acc = ref 1.0 in
  for i = 2 to k do
    acc := !acc *. float_of_int i
  done;
  !acc

let compose fn tm =
  let order = tm.order in
  let c = constant_term tm in
  (* d = tm - c has zero constant term *)
  let d = shift (-.c) tm in
  let range = bound tm in
  (* Taylor polynomial sum phi^(k)(c)/k! d^k, Horner over TMs *)
  let acc = ref (const ~nvars:(nvars tm) ~order (fn.deriv_at c 0)) in
  let dk = ref (const ~nvars:(nvars tm) ~order 1.0) in
  for k = 1 to order do
    dk := mul !dk d;
    acc := add !acc (scale (fn.deriv_at c k /. factorial k) !dk)
  done;
  (* Lagrange remainder: phi^(order+1)(xi)/ (order+1)! * d^(order+1),
     xi anywhere in the model's range *)
  let d_pow = I.pow_int (bound d) (order + 1) in
  let lagrange =
    I.scale (1.0 /. factorial (order + 1)) (I.mul (fn.deriv_bound range (order + 1)) d_pow)
  in
  add_remainder lagrange !acc

(* The derivative-polynomial memo tables below are the only module-level
   mutable state on the verifier's hot path. Parallel gradient probes hit
   them from several domains at once, so each domain owns its own table
   via Domain.DLS: lookups never contend on a lock, at the cost of each
   domain rebuilding the (tiny, deterministic) polynomial family once.
   The cached values are immutable, so per-domain copies are
   interchangeable. *)
let memo_deriv_poly key n build =
  let table = Domain.DLS.get key in
  match Hashtbl.find_opt table n with
  | Some p -> p
  | None ->
    let p = build n in
    Hashtbl.replace table n p;
    p

(* tanh derivatives: phi^(n)(x) = P_n(tanh x) with P_0(y) = y and
   P_{n+1}(y) = P_n'(y) (1 - y^2). Bounds come from interval-evaluating
   P_n over the tanh image of the interval. *)
let tanh_deriv_polys = Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let tanh_poly n =
  memo_deriv_poly tanh_deriv_polys n @@ fun n ->
  let rec build k =
    if k = 0 then Poly.var 1 0
    else begin
      let prev = build (k - 1) in
      let dp = Poly.diff prev 0 in
      let one_minus_sq = Poly.sub (Poly.const 1 1.0) (Poly.pow (Poly.var 1 0) 2) in
      Poly.mul dp one_minus_sq
    end
  in
  build n

let tanh_fn =
  {
    deriv_at = (fun c n -> Poly.eval (tanh_poly n) [| tanh c |]);
    deriv_bound =
      (fun iv n ->
        let y = I.tanh_ iv in
        Poly.ieval (tanh_poly n) [| y |]);
  }

(* sigmoid derivatives: phi^(n)(x) = Q_n(sigma(x)) with Q_0(s) = s,
   Q_{n+1}(s) = Q_n'(s) s (1 - s). *)
let sigmoid_deriv_polys = Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let sigmoid_poly n =
  memo_deriv_poly sigmoid_deriv_polys n @@ fun n ->
  let rec build k =
    if k = 0 then Poly.var 1 0
    else begin
      let prev = build (k - 1) in
      let dp = Poly.diff prev 0 in
      let s_one_minus_s = Poly.mul (Poly.var 1 0) (Poly.sub (Poly.const 1 1.0) (Poly.var 1 0)) in
      Poly.mul dp s_one_minus_s
    end
  in
  build n

let sigmoid_fn =
  {
    deriv_at = (fun c n -> Poly.eval (sigmoid_poly n) [| Dwv_util.Floatx.sigmoid c |]);
    deriv_bound =
      (fun iv n ->
        let s = I.sigmoid_ iv in
        Poly.ieval (sigmoid_poly n) [| s |]);
  }

let exp_fn =
  {
    deriv_at = (fun c _ -> exp c);
    deriv_bound = (fun iv _ -> I.exp_ iv);
  }

(* sin^(n) cycles through sin, cos, -sin, -cos. *)
let sin_fn =
  let point c n =
    match n mod 4 with
    | 0 -> sin c
    | 1 -> cos c
    | 2 -> -.sin c
    | _ -> -.cos c
  in
  let bound iv n =
    match n mod 4 with
    | 0 -> I.sin_ iv
    | 1 -> I.cos_ iv
    | 2 -> I.neg (I.sin_ iv)
    | _ -> I.neg (I.cos_ iv)
  in
  { deriv_at = point; deriv_bound = bound }

let cos_fn =
  let point c n =
    match n mod 4 with
    | 0 -> cos c
    | 1 -> -.sin c
    | 2 -> -.cos c
    | _ -> sin c
  in
  let bound iv n =
    match n mod 4 with
    | 0 -> I.cos_ iv
    | 1 -> I.neg (I.sin_ iv)
    | 2 -> I.neg (I.cos_ iv)
    | _ -> I.sin_ iv
  in
  { deriv_at = point; deriv_bound = bound }

(* 1/t: phi^(n)(c) = (-1)^n n! / c^(n+1). Requires 0 outside the range. *)
let inv_fn =
  {
    deriv_at =
      (fun c n ->
        let sign = if n mod 2 = 0 then 1.0 else -1.0 in
        sign *. factorial n /. (c ** float_of_int (n + 1)));
    deriv_bound =
      (fun iv n ->
        let sign = if n mod 2 = 0 then 1.0 else -1.0 in
        I.scale (sign *. factorial n) (I.inv (I.pow_int iv (n + 1))));
  }

let tanh_ tm = compose tanh_fn tm
let sigmoid_ tm = compose sigmoid_fn tm
let exp_ tm = compose exp_fn tm
let sin_ tm = compose sin_fn tm
let cos_ tm = compose cos_fn tm

let inv tm =
  if I.contains (bound tm) 0.0 then failwith "Taylor_model.inv: range contains zero";
  compose inv_fn tm

let div a b = mul a (inv b)

(* ReLU: exact when the model's range is sign-definite; otherwise the
   standard chord relaxation over [lo, hi]: relu lies between the chord
   lambda (x - lo) and the chord shifted down by its maximal gap
   d = hi (-lo) / (hi - lo) attained at x = 0. *)
let relu tm =
  let range = bound tm in
  let lo = I.lo range and hi = I.hi range in
  if lo >= 0.0 then tm
  else if hi <= 0.0 then const ~nvars:(nvars tm) ~order:tm.order 0.0
  else begin
    let lambda = hi /. (hi -. lo) in
    let gap = hi *. -.lo /. (hi -. lo) in
    let chord = shift (-.(lambda *. lo)) (scale lambda tm) in
    let centered = shift (-.(gap /. 2.0)) chord in
    add_remainder (I.widen (I.make (-.(gap /. 2.0)) (gap /. 2.0))) centered
  end

(* Evaluate a dynamics expression with Taylor models substituted for the
   state and input variables. Lie-derivative tables share large subtrees
   (physically, thanks to hash-consing), so evaluation memoizes when
   given a [memo] table — one table per flowpipe step covers all
   coordinates and all derivative orders. Hash-consed expressions make
   both sides of the lookup O(1): [Expr.equal] is a pointer compare and
   [Expr.hash] a precomputed field, so a memo hit costs a bucket probe
   instead of a deep traversal. *)

module Expr_memo = Hashtbl.Make (struct
  type t = Dwv_expr.Expr.t

  let equal = Dwv_expr.Expr.equal
  let hash = Dwv_expr.Expr.hash
end)

type memo = t Expr_memo.t

let create_memo () : memo = Expr_memo.create 256

let of_expr ?memo ~x ~u e =
  if Array.length x = 0 then invalid_arg "Taylor_model.of_expr: empty state";
  let nv = nvars x.(0) and ord = x.(0).order in
  let module E = Dwv_expr.Expr in
  let rec go e =
    match memo with
    | Some table -> (
      match Expr_memo.find_opt table e with
      | Some tm -> tm
      | None ->
        let tm = compute e in
        Expr_memo.add table e tm;
        tm)
    | None -> compute e
  and compute e =
    match e.E.node with
    | E.Const c -> const ~nvars:nv ~order:ord c
    | E.Var i -> x.(i)
    | E.Input j -> u.(j)
    | E.Add (a, b) -> add (go a) (go b)
    | E.Sub (a, b) -> sub (go a) (go b)
    | E.Mul (a, b) -> mul (go a) (go b)
    | E.Div (a, b) -> div (go a) (go b)
    | E.Neg a -> neg (go a)
    | E.Pow (a, n) -> pow (go a) n
    | E.Sin a -> sin_ (go a)
    | E.Cos a -> cos_ (go a)
    | E.Exp a -> exp_ (go a)
    | E.Tanh a -> tanh_ (go a)
  in
  go e

let pp ppf tm =
  Fmt.pf ppf "@[<hov 2>{poly = %a;@ rem = %a;@ order = %d}@]" Poly.pp tm.poly I.pp tm.rem
    tm.order
