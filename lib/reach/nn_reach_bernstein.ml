(* ReachNN-style abstraction of a neural controller: approximate the
   network over the current reach box with a tensor Bernstein polynomial
   and bound the approximation error by a Lipschitz/sampling remainder.
   The polynomial is then re-expressed over the state Taylor models so the
   flowpipe kernel can integrate it. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Tm = Dwv_taylor.Taylor_model
module Tm_vec = Dwv_taylor.Tm_vec
module Bernstein = Dwv_poly.Bernstein
module Poly = Dwv_poly.Poly
module Mlp = Dwv_nn.Mlp
module Lipschitz = Dwv_nn.Lipschitz

type config = {
  degrees : int array;        (* Bernstein degree per state dimension *)
  samples_per_dim : int;      (* remainder-estimation grid resolution *)
}

(* A finer grid tightens the remainder (the paper's "tightness" knob for
   ReachNN) at the price of more network evaluations per iteration; the
   Lipschitz pad of the sampled remainder scales like L·w·sqrt(n)/(s-1),
   so higher dimensions need fewer samples per axis for the same total
   work but more for the same tightness. *)
let default_config ~n =
  if n <= 2 then { degrees = Array.make n 2; samples_per_dim = 48 }
  else { degrees = Array.make n 2; samples_per_dim = 12 }

(* Substitute t_i = (x_i - lo_i) / w_i, as a Taylor model, for each
   normalized Bernstein variable and evaluate the polynomial. *)
let poly_on_models ~poly ~box (x : Tm_vec.t) =
  let nv = Tm.nvars x.(0) and ord = Tm.order x.(0) in
  let t =
    Array.mapi
      (fun i tm ->
        let w = I.width (Box.get box i) in
        if w < 1e-12 then Tm.const ~nvars:nv ~order:ord 0.0
        else Tm.scale (1.0 /. w) (Tm.shift (-.I.lo (Box.get box i)) tm))
      x
  in
  Poly.eval_gen poly
    ~const:(fun c -> Tm.const ~nvars:nv ~order:ord c)
    ~var_pow:(fun i k -> Tm.pow t.(i) k)
    ~add:Tm.add ~mul:Tm.mul

let c_bernstein_abstractions = Dwv_util.Counters.counter "bernstein_abstractions"

(* Compact parameter tag for certificate content addresses. *)
let config_tag config =
  Fmt.str "deg=[%s] samples=%d"
    (String.concat ","
       (Array.to_list (Array.map string_of_int config.degrees)))
    config.samples_per_dim

(* Control models u = output_scale * net(x) over the symbolic state.
   [pool] parallelizes the network-sampling grids (coefficient tensor
   and remainder sweep) inside this single abstraction; both recombine
   by index, so the models are bit-identical to the sequential ones. *)
let control_models ?pool ~net ~output_scale ~config (x : Tm_vec.t) : Tm_vec.t =
  Dwv_util.Counters.incr c_bernstein_abstractions;
  let x_box = Tm_vec.bound_box x in
  (* local Lipschitz over the current reach box: the first-order
     remainder driver; the curvature bound (available for smooth
     single-hidden-layer nets) is quadratic in the box width and usually
     much tighter on small reach boxes *)
  (* the |scale|·bound products feed the remainder width: step them one
     ulp outward so the round-to-nearest multiply cannot shrink them *)
  let lipschitz =
    Float.succ (Float.abs output_scale *. Lipschitz.local_bound net x_box)
  in
  let hessian_diag =
    Option.map
      (Array.map (fun m -> Float.succ (Float.abs output_scale *. m)))
      (Dwv_nn.Lipschitz.hessian_diag_bound net)
  in
  let n_out = Mlp.n_out net in
  Array.init n_out (fun k ->
      (* Rounding_flow allow: f as computed *is* the function being
         approximated — the remainder is measured against the same
         floating-point evaluation, so its rounding is part of the
         modeled function, not an enclosure step *)
      let f point = output_scale *. (Mlp.forward net point).(k) in
      let approx = Bernstein.approximate ?pool ~f ~degrees:config.degrees x_box in
      let poly = Bernstein.to_poly approx in
      let tm = poly_on_models ~poly ~box:x_box x in
      let rem =
        Bernstein.remainder ?pool ?hessian_diag ~lipschitz ~f
          ~samples_per_dim:config.samples_per_dim approx
      in
      Tm.add_remainder (I.make (-.rem) rem) tm)
