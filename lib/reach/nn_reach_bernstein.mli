(** ReachNN-style neural-controller abstraction: Bernstein polynomial over
    the current reach box + Lipschitz/sampling remainder. *)

type config = {
  degrees : int array;     (** Bernstein degree per state dimension *)
  samples_per_dim : int;   (** remainder-estimation grid resolution *)
}

(** Degree 3 per dimension, 6 remainder samples per dimension. *)
val default_config : n:int -> config

(** Compact parameter tag (degrees + samples) for certificate content
    addresses. *)
val config_tag : config -> string

(** Evaluate a polynomial in normalized [0,1]ⁿ grid coordinates on the
    state models of the given box. *)
val poly_on_models :
  poly:Dwv_poly.Poly.t -> box:Dwv_interval.Box.t -> Dwv_taylor.Tm_vec.t -> Dwv_taylor.Taylor_model.t

(** Models of u = output_scale · net(x) over the symbolic state [x].
    [pool] parallelizes the network-sampling grids (coefficient tensor,
    remainder sweep) inside this one abstraction; the models are
    bit-identical to the sequential ones. *)
val control_models :
  ?pool:Dwv_parallel.Pool.t ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  config:config ->
  Dwv_taylor.Tm_vec.t ->
  Dwv_taylor.Tm_vec.t
