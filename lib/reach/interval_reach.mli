(** Interval-only (box) reachability — the wrapping-effect ablation
    baseline and the last rung of the fallback ladder: IBP controller
    abstraction + interval Taylor steps, no symbolic variables. *)

(** One validated period in pure interval arithmetic: (box at δ, segment
    enclosure); [Error (Divergence _)] on enclosure failure. *)
val step :
  ?budget:Dwv_robust.Budget.t ->
  f:Dwv_expr.Expr.t array ->
  lie:Taylor_reach.lie_table ->
  delta:float ->
  Dwv_interval.Box.t ->
  Dwv_interval.Box.t ->
  (Dwv_interval.Box.t * Dwv_interval.Box.t, Dwv_robust.Dwv_error.t) result

(** Closed-loop box flowpipe under u = output_scale·net(x) with ZOH,
    with the structured failure cause attached (total). *)
val nn_flowpipe_outcome :
  ?blowup_width:float ->
  ?order:int ->
  ?budget:Dwv_robust.Budget.t ->
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  x0:Dwv_interval.Box.t ->
  unit ->
  Flowpipe.outcome

(** [nn_flowpipe_outcome] without the error detail. *)
val nn_flowpipe :
  ?blowup_width:float ->
  ?order:int ->
  ?budget:Dwv_robust.Budget.t ->
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  x0:Dwv_interval.Box.t ->
  unit ->
  Flowpipe.t
