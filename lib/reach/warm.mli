(** Warm-start traces for incremental re-verification: the per-sub-step
    Picard enclosures of one verifier call, replayed as seeds by a later
    call on a nearby problem (next probe, child cell). Soundness never
    rests on a trace — every hinted Picard iteration passes the same
    contraction subset test as a cold start, and a poisoned trace falls
    back to the cold iteration (see {!Taylor_reach.apriori_enclosure}). *)

type t = { enclosures : Dwv_interval.Box.t array }

(** Number of recorded sub-steps. *)
val length : t -> int

(** Enclosure recorded for sub-step [k] (0-based across the whole
    flowpipe); [None] past the recorded horizon. *)
val hint : t -> int -> Dwv_interval.Box.t option

(** Per-call trace recorder (create one per verifier call). *)
type recorder

val recorder : unit -> recorder
val record : recorder -> Dwv_interval.Box.t -> unit
val of_recorder : recorder -> t
