(** Flowpipes: per-sample-instant and per-period reachable-set enclosures
    produced by every verifier. *)

type t

(** Build; raises unless [delta > 0] and there is at least one step box. *)
val make :
  step_boxes:Dwv_interval.Box.t array ->
  segment_boxes:Dwv_interval.Box.t array ->
  delta:float ->
  diverged:bool ->
  t

(** Number of completed sampling periods. *)
val steps : t -> int

val delta : t -> float

(** True when the verification blew up before the horizon (the Fig. 8
    "NAN" failure mode). *)
val diverged : t -> bool

val initial_box : t -> Dwv_interval.Box.t

(** Enclosure at the last completed sample instant. *)
val final_box : t -> Dwv_interval.Box.t

(** Enclosures at sample instants t = i·delta. *)
val step_boxes : t -> Dwv_interval.Box.t list

(** Enclosures over each whole period [i·delta, (i+1)·delta]. *)
val segment_boxes : t -> Dwv_interval.Box.t list

(** Boxes to check continuous-time safety against (the segments; falls
    back to step boxes for a degenerate pipe). *)
val all_boxes : t -> Dwv_interval.Box.t list

(** Max width of the final box (tightness proxy). *)
val final_width : t -> float

(** Project every box onto the given dimensions (e.g. drop the constant
    dimension of an augmented affine system). *)
val project : dims:int array -> t -> t

val pp : Format.formatter -> t -> unit

(** Total-verification outcome: the (possibly truncated, diverged)
    flowpipe plus the structured cause when the analysis failed. *)
type outcome = { pipe : t; error : Dwv_robust.Dwv_error.t option }
