(* Flow*-style reachability for LTI systems under linear state feedback.

   The continuous plant x' = A x + B u is sampled with period delta and
   zero-order hold, giving the exact discrete closed loop
       x[k+1] = (A_d + B_d K) x[k],
   with A_d = e^{A delta} and B_d = (int_0^delta e^{A s} ds) B. Zonotopes
   are closed under this linear map, so the sample-instant reach sets are
   computed EXACTLY (up to floating point). Between samples the flow is
   enclosed with a Picard-style box argument, which adds the conservatism
   a continuous-time tool like Flow* would. *)

module Mat = Dwv_la.Mat
module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Zonotope = Dwv_geometry.Zonotope

type lti = { a : Mat.t; b : Mat.t }

(* ZOH discretisation (exact, via the augmented-matrix integral). *)
let discretize ~delta { a; b } =
  let ad = Mat.expm (Mat.scale delta a) in
  let bd = Mat.matmul (Mat.integral_expm a delta) b in
  (ad, bd)

(* Interval range of K x over a zonotope (tight per output row via the
   support function). *)
let gain_range ~gain z =
  Zonotope.to_box (Zonotope.linear_map gain z)

(* Interval evaluation of f(x, u) = A x + B u over boxes. *)
let field_range { a; b } ~(x : Box.t) ~(u : Box.t) =
  let n, _ = Mat.dims a in
  let _, m = Mat.dims b in
  Array.init n (fun i ->
      let acc = ref I.zero in
      for j = 0 to Box.dim x - 1 do
        acc := I.add !acc (I.scale (Mat.get a i j) x.(j))
      done;
      for k = 0 to m - 1 do
        acc := I.add !acc (I.scale (Mat.get b i k) u.(k))
      done;
      !acc)

(* Enclosure of x(t) for t in [0, delta] starting in [x_box] under the
   constant input range [u_box]: find E with x_box + [0,delta] f(E) ⊆ E
   (then the candidate itself encloses the flow). Returns [None] when the
   inflation loop fails (treated as divergence). *)
let intersample_enclosure sys ~x_box ~x_next_box ~u_box ~delta =
  let candidate_of e =
    let fr = field_range sys ~x:e ~u:u_box in
    (* Outward-rounded Picard candidate; see Taylor_reach.apriori_enclosure. *)
    Array.init (Box.dim x_box) (fun i ->
        I.widen
          (I.make
             (I.lo x_box.(i) +. Float.min 0.0 (delta *. I.lo fr.(i)))
             (I.hi x_box.(i) +. Float.max 0.0 (delta *. I.hi fr.(i)))))
  in
  let rec refine e iter =
    if iter > 30 then None
    else begin
      let cand = candidate_of e in
      if Box.subset cand e then Some cand
      else refine (Box.scale_about_center 1.2 (Box.bloat 1e-9 (Box.hull cand e))) (iter + 1)
    end
  in
  refine (Box.bloat 1e-9 (Box.hull x_box x_next_box)) 0

let box_is_sane ~blowup_width b =
  Array.for_all
    (fun iv -> Float.is_finite (I.lo iv) && Float.is_finite (I.hi iv))
    b
  && Box.max_width b <= blowup_width

let c_linear_flowpipes = Dwv_util.Counters.counter "linear_flowpipes"

(* Full flowpipe for [steps] periods under u = gain * x (ZOH). *)
let flowpipe ?(blowup_width = 1e7) ~sys ~gain ~x0 ~delta ~steps () =
  Dwv_util.Counters.incr c_linear_flowpipes;
  let ad, bd = discretize ~delta sys in
  let acl = Mat.add ad (Mat.matmul bd gain) in
  let step_boxes = ref [] and segment_boxes = ref [] in
  let diverged = ref false in
  let z = ref (Zonotope.of_box x0) in
  step_boxes := Zonotope.to_box !z :: !step_boxes;
  (try
     for _ = 1 to steps do
       let x_box = Zonotope.to_box !z in
       let u_box = gain_range ~gain !z in
       let z_next = Zonotope.linear_map acl !z in
       let x_next_box = Zonotope.to_box z_next in
       if not (box_is_sane ~blowup_width x_next_box) then begin
         diverged := true;
         raise Exit
       end;
       (match intersample_enclosure sys ~x_box ~x_next_box ~u_box ~delta with
       | Some seg -> segment_boxes := seg :: !segment_boxes
       | None ->
         diverged := true;
         raise Exit);
       z := z_next;
       step_boxes := x_next_box :: !step_boxes
     done
   with Exit -> ());
  Flowpipe.make
    ~step_boxes:(Array.of_list (List.rev !step_boxes))
    ~segment_boxes:(Array.of_list (List.rev !segment_boxes))
    ~delta ~diverged:!diverged
