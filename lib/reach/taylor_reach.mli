(** Validated Taylor-method integration of one sampling period (the
    flowpipe kernel shared by the ReachNN- and POLAR-style verifiers):
    symbolic Lie derivatives evaluated on Taylor models, Lagrange
    remainder bounded over an interval-Picard a-priori enclosure. *)

(** [lie.(j).(i)] = j-th Lie derivative of coordinate i, j = 0..order+1. *)
type lie_table = Dwv_expr.Expr.t array array

(** Precompute Lie derivatives of the identity up to [order]+1. *)
val lie_table : f:Dwv_expr.Expr.t array -> order:int -> lie_table

(** A-priori enclosure of the flow over [0, delta] (interval Picard with
    geometric inflation); [None] on failure. *)
val apriori_enclosure :
  f:Dwv_expr.Expr.t array ->
  x_box:Dwv_interval.Box.t ->
  u_box:Dwv_interval.Box.t ->
  delta:float ->
  Dwv_interval.Box.t option

type step_result = {
  state : Dwv_taylor.Tm_vec.t;    (** models of x(delta) *)
  segment : Dwv_interval.Box.t;   (** enclosure of x(t), t in [0, delta] *)
  enclosure : Dwv_interval.Box.t;
      (** the Picard a-priori enclosure itself: certificate emission
          records it as the hint for the independent checker's
          directed-rounding flow replay *)
}

(** One sampling period under the (already abstracted) control models [u].
    [Error (Divergence _)] when the a-priori enclosure cannot be
    established (blow-up); when [budget] is given, one integration step is
    spent per call and its deadline/step limits are enforced. *)
val step :
  ?budget:Dwv_robust.Budget.t ->
  f:Dwv_expr.Expr.t array ->
  lie:lie_table ->
  delta:float ->
  Dwv_taylor.Tm_vec.t ->
  Dwv_taylor.Tm_vec.t ->
  (step_result, Dwv_robust.Dwv_error.t) result
