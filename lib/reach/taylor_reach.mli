(** Validated Taylor-method integration of one sampling period (the
    flowpipe kernel shared by the ReachNN- and POLAR-style verifiers):
    symbolic Lie derivatives evaluated on Taylor models, Lagrange
    remainder bounded over an interval-Picard a-priori enclosure. *)

(** [lie.(j).(i)] = j-th Lie derivative of coordinate i, j = 0..order+1. *)
type lie_table = Dwv_expr.Expr.t array array

(** Precompute Lie derivatives of the identity up to [order]+1. Tables
    are interned in a process-global publish-once registry keyed by the
    hash-consed ids of [f] plus [order]: after the first build of a key,
    every caller — any domain, any later verifier call — adopts the
    published table instead of re-deriving it. *)
val lie_table : f:Dwv_expr.Expr.t array -> order:int -> lie_table

(** Number of distinct (dynamics, order) keys the registry has published
    so far (introspection for the publish-once tests). *)
val lie_registry_size : unit -> int

(** A-priori enclosure of the flow over [0, delta] (interval Picard with
    geometric inflation); [None] on failure.

    [hint] warm-starts the iteration with an enclosure certified for a
    nearby problem (previous probe, parent cell). Soundness never rests
    on the hint: the returned box passes the same contraction subset
    test as a cold start, and a hint that fails to contract within a
    few iterations falls back to the cold iteration (counted by the
    [warm_hits] / [warm_poisoned] counters). *)
val apriori_enclosure :
  ?hint:Dwv_interval.Box.t ->
  f:Dwv_expr.Expr.t array ->
  x_box:Dwv_interval.Box.t ->
  u_box:Dwv_interval.Box.t ->
  delta:float ->
  unit ->
  Dwv_interval.Box.t option

type step_result = {
  state : Dwv_taylor.Tm_vec.t;    (** models of x(delta) *)
  segment : Dwv_interval.Box.t;   (** enclosure of x(t), t in [0, delta] *)
  enclosure : Dwv_interval.Box.t;
      (** the Picard a-priori enclosure itself: certificate emission
          records it as the hint for the independent checker's
          directed-rounding flow replay *)
}

(** One sampling period under the (already abstracted) control models [u].
    [Error (Divergence _)] when the a-priori enclosure cannot be
    established (blow-up); when [budget] is given, one integration step is
    spent per call and its deadline/step limits are enforced.

    [pool] splits the per-dimension work inside this one step — the
    Taylor-coefficient columns, then the state/range recombination —
    across the pool's domains, with results recombined by dimension
    index: the step is bit-identical to the sequential one at any
    domain count, and degrades to the sequential loop automatically
    when invoked from inside an outer pool task. [hint] warm-starts the
    a-priori enclosure, see {!apriori_enclosure}. *)
val step :
  ?budget:Dwv_robust.Budget.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?hint:Dwv_interval.Box.t ->
  f:Dwv_expr.Expr.t array ->
  lie:lie_table ->
  delta:float ->
  Dwv_taylor.Tm_vec.t ->
  Dwv_taylor.Tm_vec.t ->
  (step_result, Dwv_robust.Dwv_error.t) result
