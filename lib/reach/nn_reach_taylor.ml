(* POLAR-style abstraction of a neural controller: propagate the state
   Taylor models through the network layer by layer. Affine layers are
   exact on Taylor models; activations are composed by Taylor expansion
   with a Lagrange remainder (tanh/sigmoid) or by the sound chord
   relaxation (ReLU). The polynomial part plays the role of POLAR's Taylor
   model, the interval part of its symbolic remainder. *)

module Tm = Dwv_taylor.Taylor_model
module Tm_vec = Dwv_taylor.Tm_vec
module Mat = Dwv_la.Mat
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation

let apply_activation (act : Activation.t) tm =
  match act with
  | Activation.Relu -> Tm.relu tm
  | Activation.Tanh -> Tm.tanh_ tm
  | Activation.Sigmoid -> Tm.sigmoid_ tm
  | Activation.Linear -> tm

(* Affine layer on Taylor models: pre_i = sum_j W_ij h_j + b_i (exact). *)
let affine (weights : Mat.t) (bias : float array) (h : Tm.t array) =
  let rows, cols = Mat.dims weights in
  if cols <> Array.length h then invalid_arg "Nn_reach_taylor.affine: arity mismatch";
  Array.init rows (fun i ->
      let acc = ref (Tm.const ~nvars:(Tm.nvars h.(0)) ~order:(Tm.order h.(0)) bias.(i)) in
      for j = 0 to cols - 1 do
        let w = Mat.get weights i j in
        if w <> 0.0 then acc := Tm.add !acc (Tm.scale w h.(j))
      done;
      !acc)

let c_polar_abstractions = Dwv_util.Counters.counter "polar_abstractions"

(* Control models u = output_scale * net(x) on the symbolic state. *)
let control_models ~net ~output_scale (x : Tm_vec.t) : Tm_vec.t =
  Dwv_util.Counters.incr c_polar_abstractions;
  let h = ref (Array.copy x) in
  Array.iter
    (fun (layer : Mlp.layer) ->
      let pre = affine layer.weights layer.bias !h in
      h := Array.map (apply_activation layer.act) pre)
    (Mlp.layers net);
  Array.map (Tm.scale output_scale) !h
