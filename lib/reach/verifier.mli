(** The verifier interface Ψ: flowpipe computation plus the reach-avoid
    judgement used by the learner's stopping rule. *)

type verdict =
  | Reach_avoid  (** property formally proved on the enclosures *)
  | Unsafe       (** a segment box lies inside the unsafe set: certainly unsafe *)
  | Unknown      (** inconclusive (possible spurious intersection / divergence) *)

val verdict_to_string : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

(** First sample instant (>= 1) whose enclosure is inside the goal. *)
val goal_step : goal:Dwv_interval.Box.t -> Flowpipe.t -> int option

(** No segment touches the unsafe set. *)
val safety_ok : unsafe:Dwv_interval.Box.t -> Flowpipe.t -> bool

(** Some segment lies entirely inside the unsafe set. *)
val certainly_unsafe : unsafe:Dwv_interval.Box.t -> Flowpipe.t -> bool

(** Judge a flowpipe against the reach-avoid specification. *)
val check : unsafe:Dwv_interval.Box.t -> goal:Dwv_interval.Box.t -> Flowpipe.t -> verdict

(** Controller-abstraction method for neural controllers. *)
type nn_method =
  | Polar                                   (** layerwise Taylor models *)
  | Bernstein of Nn_reach_bernstein.config  (** Bernstein + remainder *)

val nn_method_name : nn_method -> string

(** Certificate-emission tap for {!nn_flowpipe_outcome}: each completed
    step appends its ZOH control range, its Picard enclosure (the
    checker's inflation hint) and the control-TM remainder width.
    Per-call; create with {!new_recorder}. *)
type recorder

val new_recorder : unit -> recorder

(** Closed-loop flowpipe of x' = f(x, u), u = output_scale·net(x) sampled
    with ZOH, with the structured failure cause attached (total). [order]
    is the Taylor-model order (default 3); the pipe is marked diverged
    when a box exceeds [blowup_width] (default 1e4). [disturbance_slots]
    (default 8) is the symbolic-remainder budget: each period's control
    abstraction error rides a fresh symbol that the contractive loop can
    cancel, recycled round-robin. [substeps] (default 1) subdivides each
    period into that many validated Taylor steps under the same held
    control — sound, and shrinks the Lagrange remainder. When [budget] is
    given its step/deadline limits are enforced inside the integration
    loop.

    [pool] parallelizes the work INSIDE each step — controller-
    abstraction sample grids and per-dimension Taylor columns — with
    index-ordered recombination (bit-identical to sequential; degrades
    to sequential automatically inside an outer pool task). [warm]
    seeds each sub-step's Picard iteration from a donor trace
    ({!Warm.t}), and [warm_rec] records this call's own trace;
    sub-steps are numbered across the whole call, so donor and
    recipient must use the same [substeps]. *)
val nn_flowpipe_outcome :
  ?blowup_width:float ->
  ?order:int ->
  ?disturbance_slots:int ->
  ?substeps:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?record:recorder ->
  ?pool:Dwv_parallel.Pool.t ->
  ?warm:Warm.t ->
  ?warm_rec:Warm.recorder ->
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  method_:nn_method ->
  x0:Dwv_interval.Box.t ->
  unit ->
  Flowpipe.outcome

(** [nn_flowpipe_outcome] without the error detail. *)
val nn_flowpipe :
  ?blowup_width:float ->
  ?order:int ->
  ?disturbance_slots:int ->
  ?substeps:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?warm:Warm.t ->
  ?warm_rec:Warm.recorder ->
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  method_:nn_method ->
  x0:Dwv_interval.Box.t ->
  unit ->
  Flowpipe.t

(** Flowpipe + verdict in one call. *)
val verify_nn :
  ?blowup_width:float ->
  ?order:int ->
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  method_:nn_method ->
  x0:Dwv_interval.Box.t ->
  unsafe:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  unit ->
  Flowpipe.t * verdict

(** {1 Fallback / degradation ladder} *)

(** Result of {!nn_flowpipe_robust}: the flowpipe that produced the
    verdict plus full provenance — which rung succeeded, why each earlier
    rung failed, and any fault injected into the call. When every rung
    failed, [pipe] is the primary rung's partial (diverged) pipe so the
    learner's graded divergence scoring still sees its progress, and
    [error] is the primary failure. *)
type fallback_report = {
  pipe : Flowpipe.t;
  error : Dwv_robust.Dwv_error.t option;
  rung : string option;
  rung_index : int option;
  failures : (string * Dwv_robust.Dwv_error.t) list;
  fault : Dwv_robust.Fault.kind option;
  warm : Warm.t option;
      (** Picard trace of the rung that produced [pipe] — the warm-start
          donor for the next nearby verification. [None] on a cache hit,
          an interval-rung verdict or a total failure. *)
}

(** Package a generic ladder outcome as a report; [fallback] is the pipe
    used when every rung failed (default: zero-step diverged stub on
    [x0]); [warm] is attached to successful outcomes only. *)
val report_of_outcome :
  ?fallback:Flowpipe.t ->
  ?warm:Warm.t ->
  x0:Dwv_interval.Box.t ->
  delta:float ->
  Flowpipe.t Dwv_robust.Robust_verify.outcome ->
  fallback_report

(** {1 Certificates} *)

val cert_verdict_of : verdict -> Dwv_cert.Cert.verdict

(** Bit-exact flowpipe reconstruction from a validated certificate
    (cache hit); [None] on any shape/delta mismatch — the caller then
    recomputes fresh. *)
val pipe_of_cert : delta:float -> Dwv_cert.Cert.t -> Flowpipe.t option

(** Emit a certificate from a fresh, non-diverged flowpipe: records the
    boxes, re-judges the claim, and synthesizes the per-step
    directed-rounding enclosures with [Cert_check.enclose] (exactly what
    the checker replays, so clean certificates full-validate with zero
    rejects). [controls]/[hints]/[remainders] come from a {!recorder}
    when the backend was a Taylor rung; with an [Affine] law the checker
    re-derives controls itself. [None] for diverged or zero-step pipes. *)
val cert_of_pipe :
  fingerprint:int64 ->
  backend:string ->
  params:string ->
  f:Dwv_expr.Expr.t array ->
  unsafe:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  law:Dwv_cert.Cert.control_law ->
  ?controls:Dwv_interval.Box.t array ->
  ?hints:Dwv_interval.Box.t array ->
  ?remainders:float array ->
  Flowpipe.t ->
  Dwv_cert.Cert.t option

(** Where a robust NN verification looks for / deposits certificates,
    plus the spec boxes its claim is judged against (both enter the
    content address). *)
type cert_site = {
  cc_cache : Dwv_cert.Cert_cache.t;
  cc_unsafe : Dwv_interval.Box.t;
  cc_goal : Dwv_interval.Box.t;
}

(** NN closed-loop flowpipe with the degradation ladder: the requested
    settings first, then tighter Taylor sub-stepping with more
    disturbance slots, then the other controller abstraction
    (POLAR <-> Bernstein), then the interval-only pipe. With no failures
    the first rung runs exactly the settings of {!nn_flowpipe}, so
    verdicts are unchanged. With [cert], a validated cache hit
    short-circuits the ladder (rung ["cache"], bit-identical pipe) and a
    clean success is emitted back to the cache.

    [pool] parallelizes each rung's intra-step work (see
    {!nn_flowpipe_outcome}). [warm] feeds a donor Picard trace to the
    substeps=1 rungs; the report's [warm] field carries this call's own
    trace back for the next nearby verification. *)
val nn_flowpipe_robust :
  ?blowup_width:float ->
  ?order:int ->
  ?disturbance_slots:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?cert:cert_site ->
  ?pool:Dwv_parallel.Pool.t ->
  ?warm:Warm.t ->
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  method_:nn_method ->
  x0:Dwv_interval.Box.t ->
  unit ->
  fallback_report
