(* Warm-start trace: the incremental re-verification layer's payload.

   A verifier call records the Picard a-priori enclosure of every
   validated sub-step it completes, in execution order. A later call on
   a NEARBY problem — the next gradient probe of the same iterate, or a
   child cell of a bisected initial set — replays that trace as
   per-sub-step hints: the k-th sub-step of the new flowpipe seeds its
   Picard iteration with the k-th enclosure of the old one (see
   Taylor_reach.apriori_enclosure). Soundness never rests on the trace:
   every hinted iteration is certified by the same contraction subset
   test as a cold start, and a stale or poisoned trace only costs the
   few wasted warm iterations before the cold fallback.

   Traces are plain immutable data created before any fan-out, so
   hint assignment is deterministic at every domain count. *)

module Box = Dwv_interval.Box

type t = { enclosures : Box.t array }

let length t = Array.length t.enclosures

(* Hint for sub-step [k] (0-based, counted across the whole flowpipe);
   [None] past the recorded horizon (e.g. the donor run diverged early). *)
let hint t k = if k >= 0 && k < Array.length t.enclosures then Some t.enclosures.(k) else None

(* Recorder threaded through one verifier call (per-call local, like
   Verifier's certificate recorder). *)
type recorder = { mutable trace_rev : Box.t list }

let recorder () = { trace_rev = [] }

let record r enclosure = r.trace_rev <- enclosure :: r.trace_rev

let of_recorder r = { enclosures = Array.of_list (List.rev r.trace_rev) }
