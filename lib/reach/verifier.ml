(* The verifier interface Psi of the paper: run a reachability analysis of
   the closed loop and judge the reach-avoid property on the resulting
   flowpipe.

   Verdict semantics (all with respect to over-approximate enclosures):
     - Reach_avoid : no segment touches the unsafe set AND some
                     sample-instant box lies entirely inside the goal;
                     the property is formally PROVED.
     - Unsafe      : some segment box lies entirely inside the unsafe set,
                     so a real trajectory is certainly unsafe.
     - Unknown     : everything else (spurious intersection possible, goal
                     not provably reached, or the analysis diverged). *)

module Box = Dwv_interval.Box
module Setops = Dwv_geometry.Setops
module Tm = Dwv_taylor.Taylor_model
module Tm_vec = Dwv_taylor.Tm_vec
module Dwv_error = Dwv_robust.Dwv_error
module Budget = Dwv_robust.Budget
module Fault = Dwv_robust.Fault
module Robust_verify = Dwv_robust.Robust_verify
module Cert = Dwv_cert.Cert
module Cert_key = Dwv_cert.Cert_key
module Cert_check = Dwv_cert.Cert_check
module Cert_cache = Dwv_cert.Cert_cache
module Counters = Dwv_util.Counters

let c_nn_flowpipes = Counters.counter "nn_flowpipes"
let ph_abstraction = Dwv_util.Phases.phase "nn_abstraction"
let ph_cert = Dwv_util.Phases.phase "cert_check"

type verdict = Reach_avoid | Unsafe | Unknown

let verdict_to_string = function
  | Reach_avoid -> "reach-avoid"
  | Unsafe -> "Unsafe"
  | Unknown -> "Unknown"

let pp_verdict ppf v = Fmt.string ppf (verdict_to_string v)

(* First sample instant whose enclosure is contained in the goal. *)
let goal_step ~goal pipe =
  let boxes = Array.of_list (Flowpipe.step_boxes pipe) in
  let rec find i =
    if i >= Array.length boxes then None
    else if Box.subset boxes.(i) goal then Some i
    else find (i + 1)
  in
  find 1 (* the initial set itself does not count as goal-reaching *)

let safety_ok ~unsafe pipe =
  not (Setops.any_intersects (Flowpipe.all_boxes pipe) unsafe)

let certainly_unsafe ~unsafe pipe =
  List.exists (fun b -> Box.subset b unsafe) (Flowpipe.all_boxes pipe)

let check ~unsafe ~goal pipe =
  if Flowpipe.diverged pipe then Unknown
  else if certainly_unsafe ~unsafe pipe then Unsafe
  else if not (safety_ok ~unsafe pipe) then Unknown
  else
    match goal_step ~goal pipe with
    | Some _ -> Reach_avoid
    | None -> Unknown

(* ------------------------------------------------------------------ *)
(* Closed-loop flowpipe for neural-network controllers: abstract the
   controller over the current symbolic state with the chosen method, then
   integrate one period with the validated Taylor kernel. *)

type nn_method =
  | Polar                                   (* layerwise Taylor models *)
  | Bernstein of Nn_reach_bernstein.config  (* Bernstein + remainder *)

let nn_method_name = function
  | Polar -> "POLAR"
  | Bernstein _ -> "ReachNN"

let box_finite b =
  Array.for_all
    (fun iv ->
      Float.is_finite (Dwv_interval.Interval.lo iv)
      && Float.is_finite (Dwv_interval.Interval.hi iv))
    b

(* Certificate emission tap: when a [recorder] is passed, each completed
   step appends its ZOH control range, its Picard enclosure (the hint
   the independent checker inflates from) and the control-TM remainder
   width. Lists are reversed (newest first) and per-call local. *)
type recorder = {
  mutable rec_controls : Box.t list;
  mutable rec_hints : Box.t list;
  mutable rec_remainders : float list;
}

let new_recorder () = { rec_controls = []; rec_hints = []; rec_remainders = [] }

let nn_flowpipe_outcome ?(blowup_width = 1e4) ?(order = 3) ?(disturbance_slots = 8)
    ?(substeps = 1) ?budget ?record ?pool ?warm ?warm_rec ~f ~delta ~steps ~net
    ~output_scale ~method_ ~x0 () =
  if substeps < 1 then invalid_arg "Verifier.nn_flowpipe: substeps must be >= 1";
  Counters.incr c_nn_flowpipes;
  let backend = nn_method_name method_ in
  let where = "Verifier.nn_flowpipe" in
  (* Fault injection (tests / CLI --fault): a NaN-weights fault armed for
     the in-flight verifier call corrupts one seeded network weight, so
     the non-finite detection path below is exercised end to end. *)
  let net =
    if Fault.current () = Some Fault.Nan_theta then
      Dwv_nn.Mlp.unflatten net (Fault.nan_corrupt (Dwv_nn.Mlp.flatten net))
    else net
  in
  let lie = Taylor_reach.lie_table ~f ~order in
  let control x =
    Dwv_util.Phases.time ph_abstraction @@ fun () ->
    match method_ with
    | Polar -> Nn_reach_taylor.control_models ~net ~output_scale x
    | Bernstein config ->
      Nn_reach_bernstein.control_models ?pool ~net ~output_scale ~config x
  in
  (* Warm start: sub-steps are numbered across the whole call; sub-step k
     seeds its Picard iteration with the k-th enclosure of the donor
     trace (same numbering, recorded below into [warm_rec]). *)
  let sub_index = ref 0 in
  let sub_hint () = Option.bind warm (fun w -> Warm.hint w !sub_index) in
  let n = Box.dim x0 in
  let m = Dwv_nn.Mlp.n_out net in
  let step_boxes = ref [ x0 ] and segment_boxes = ref [] in
  let diverged = ref false in
  let error = ref None in
  let x =
    ref (Tm_vec.of_box ~total_vars:(n + (disturbance_slots * m)) ~order x0)
  in
  (* Symbolic remainders (as in POLAR): each period's control
     over-approximation error becomes a fresh symbol z_slot instead of a
     detached interval, so the feedback loop can contract past
     disturbances; slots are recycled round-robin, retiring the oldest
     symbol into the interval remainder once the loop has had
     [disturbance_slots] periods to damp it. *)
  let step_index = ref 0 in
  let fail e =
    error := Some e;
    diverged := true;
    raise Exit
  in
  (* Interval blow-up inside a Taylor-model operation (overflow to
     infinity, division by a zero-straddling range, ...) is the "NAN"
     failure mode of Fig. 8: record it as a structured divergence. *)
  (try
     for _ = 1 to steps do
       match
         let slot_base = n + (!step_index mod disturbance_slots * m) in
         incr step_index;
         x := Array.map (fun tm ->
             let tm = ref tm in
             for j = 0 to m - 1 do
               tm := Dwv_taylor.Taylor_model.absorb_var (slot_base + j) !tm
             done;
             !tm)
             !x;
         let u = control !x in
         let rem_width = ref 0.0 in
         let u =
           Array.mapi
             (fun j tm ->
               let tm = Tm.sweep tm in
               rem_width :=
                 Float.max !rem_width
                   (Dwv_interval.Interval.width (Tm.remainder tm));
               Tm.symbolize_remainder ~slot:(slot_base + j) tm)
             u
         in
         let u_box = Tm_vec.bound_box u in
         (* control is held (ZOH) over the whole period; the validated
            Taylor step may subdivide it to shrink the Lagrange remainder
            (the "+tight" fallback rung) without changing the sampled-
            data semantics *)
         let sub_delta = delta /. float_of_int substeps in
         let state = ref !x and segment = ref None and picard = ref None in
         let hull_into acc seg =
           Some (match acc with None -> seg | Some acc -> Box.hull acc seg)
         in
         let rec sub s =
           if s > substeps then
             Ok (!state, Option.get !segment, Option.get !picard, u_box, !rem_width)
           else
             match
               Taylor_reach.step ?budget ?pool ?hint:(sub_hint ()) ~f ~lie
                 ~delta:sub_delta !state u
             with
             | Error e -> Error e
             | Ok { state = st; segment = seg; enclosure = enc } ->
               incr sub_index;
               (match warm_rec with Some r -> Warm.record r enc | None -> ());
               state := st;
               segment := hull_into !segment seg;
               picard := hull_into !picard enc;
               sub (s + 1)
         in
         sub 1
       with
       | Error e ->
         fail
           { e with
             Dwv_error.backend = Some backend;
             step =
               (match e.Dwv_error.step with Some _ as s -> s | None -> Some !step_index);
           }
       | Ok (state, segment, picard, u_box, rem_width) ->
         let next_box = Tm_vec.bound_box state in
         if not (box_finite next_box && box_finite segment) then
           fail (Dwv_error.non_finite ~backend ~step:!step_index ~where "reach box")
         else if
           Box.max_width next_box > blowup_width || Box.max_width segment > blowup_width
         then
           fail
             (Dwv_error.divergence
                ~width:(Float.max (Box.max_width next_box) (Box.max_width segment))
                ~backend ~step:!step_index ~where ());
         segment_boxes := segment :: !segment_boxes;
         step_boxes := next_box :: !step_boxes;
         (match record with
         | Some r ->
           r.rec_controls <- u_box :: r.rec_controls;
           r.rec_hints <- picard :: r.rec_hints;
           r.rec_remainders <- rem_width :: r.rec_remainders
         | None -> ());
         x := state
       | exception ((Invalid_argument _ | Failure _) as exn) ->
         fail (Dwv_error.of_exn ~backend ~step:!step_index ~where exn)
     done
   with Exit -> ());
  {
    Flowpipe.pipe =
      Flowpipe.make
        ~step_boxes:(Array.of_list (List.rev !step_boxes))
        ~segment_boxes:(Array.of_list (List.rev !segment_boxes))
        ~delta ~diverged:!diverged;
    error = !error;
  }

let nn_flowpipe ?blowup_width ?order ?disturbance_slots ?substeps ?budget ?pool ?warm
    ?warm_rec ~f ~delta ~steps ~net ~output_scale ~method_ ~x0 () =
  (nn_flowpipe_outcome ?blowup_width ?order ?disturbance_slots ?substeps ?budget ?pool
     ?warm ?warm_rec ~f ~delta ~steps ~net ~output_scale ~method_ ~x0 ())
    .Flowpipe.pipe

(* Convenience: run an NN flowpipe and judge it in one call. *)
let verify_nn ?blowup_width ?order ~f ~delta ~steps ~net ~output_scale ~method_ ~x0
    ~unsafe ~goal () =
  let pipe =
    nn_flowpipe ?blowup_width ?order ~f ~delta ~steps ~net ~output_scale ~method_ ~x0 ()
  in
  (pipe, check ~unsafe ~goal pipe)

(* ------------------------------------------------------------------ *)
(* Fallback / degradation ladder: on a structured failure retry with
   progressively cheaper-but-sound settings - subdivide the Taylor step
   and raise the disturbance-slot budget, cross to the other controller
   abstraction (POLAR <-> Bernstein), and finally drop to the interval-
   only pipe, which never throws. The report records which rung produced
   the verdict and why each earlier rung failed. *)

type fallback_report = {
  pipe : Flowpipe.t;
  error : Dwv_error.t option;  (* first failure when every rung failed *)
  rung : string option;
  rung_index : int option;
  failures : (string * Dwv_error.t) list;
  fault : Fault.kind option;
  warm : Warm.t option;
      (* Picard trace of the rung that produced [pipe]: the warm-start
         donor for the caller's next nearby verification. [None] when the
         pipe came from the certificate cache, the interval rung or a
         total failure. *)
}

(* Package a ladder outcome as a report; [fallback] (default: a zero-step
   diverged stub on [x0]) is the pipe handed to the metric when every
   rung failed, so scoring stays total. *)
let report_of_outcome ?fallback ?warm ~x0 ~delta (o : Flowpipe.t Robust_verify.outcome) =
  let pipe, error =
    match o.Robust_verify.value with
    | Some pipe -> (pipe, None)
    | None ->
      let pipe =
        match fallback with
        | Some p -> p
        | None ->
          Flowpipe.make ~step_boxes:[| x0 |] ~segment_boxes:[||] ~delta ~diverged:true
      in
      ( pipe,
        match o.Robust_verify.failures with (_, e) :: _ -> Some e | [] -> None )
  in
  {
    pipe;
    error;
    rung = o.Robust_verify.rung;
    rung_index = o.Robust_verify.rung_index;
    failures = o.Robust_verify.failures;
    fault = o.Robust_verify.fault;
    warm = (if error = None then warm else None);
  }

(* Lift an [Flowpipe.outcome]-producing analysis into a ladder rung: a
   diverged pipe without a recorded cause still counts as a failure. *)
let outcome_rung ~name k =
  {
    Robust_verify.name;
    run =
      (fun () ->
        let o = k () in
        match o.Flowpipe.error with
        | Some e -> Error e
        | None when Flowpipe.diverged o.Flowpipe.pipe ->
          Error
            (Dwv_error.divergence ~backend:name ~where:"Verifier.nn_flowpipe_robust" ())
        | None -> Ok o.Flowpipe.pipe);
  }

(* ------------------------------------------------------------------ *)
(* Certificate integration: reconstruct a flowpipe from a validated
   certificate (cache hit) and emit one from a fresh run (cache store).
   The checker-side enclosures are synthesized here, at emission, by
   Cert_check.enclose — the exact computation Cert_check.validate
   replays — so a clean certificate full-validates with zero rejects. *)

let cert_verdict_of = function
  | Reach_avoid -> Cert.Reach_avoid
  | Unsafe -> Cert.Unsafe
  | Unknown -> Cert.Unknown

(* Bit-exact reconstruction: the cert stored the prover's boxes as raw
   IEEE bits, so verdicts and scores downstream are identical to the
   cold run's. [None] on any shape mismatch (the caller recomputes). *)
let pipe_of_cert ~delta (c : Cert.t) =
  if c.Cert.delta <> delta then None
  else
    match
      Flowpipe.make ~step_boxes:c.Cert.step_boxes ~segment_boxes:c.Cert.segment_boxes
        ~delta:c.Cert.delta ~diverged:false
    with
    | pipe -> Some pipe
    | exception Invalid_argument _ -> None

let cert_of_pipe ~fingerprint ~backend ~params ~f ~unsafe ~goal ~law
    ?(controls = [||]) ?(hints = [||]) ?(remainders = [||]) pipe =
  if Flowpipe.diverged pipe then None
  else begin
    let step_boxes = Array.of_list (Flowpipe.step_boxes pipe) in
    let segment_boxes = Array.of_list (Flowpipe.segment_boxes pipe) in
    let nsegs = Array.length segment_boxes in
    if nsegs = 0 || Array.length step_boxes <> nsegs + 1 then None
    else begin
      let delta = Flowpipe.delta pipe in
      let have_controls = Array.length controls = nsegs in
      let enclosures =
        Array.init nsegs (fun i ->
            let hint =
              let base =
                Box.hull step_boxes.(i) (Box.hull segment_boxes.(i) step_boxes.(i + 1))
              in
              if Array.length hints = nsegs then Box.hull base hints.(i) else base
            in
            let control =
              if have_controls then Some (Cert_check.Const controls.(i))
              else
                match law with
                | Cert.Affine rows -> Some (Cert_check.Affine_law rows)
                | Cert.Opaque -> None
            in
            match control with
            | None -> None
            | Some control ->
              Option.map fst
                (Cert_check.enclose ~f ~delta ~x:step_boxes.(i) ~control ~hint ()))
      in
      Some
        {
          Cert.fingerprint;
          backend;
          params;
          delta;
          dim = Box.dim step_boxes.(0);
          x0 = step_boxes.(0);
          unsafe;
          goal;
          law;
          verdict = cert_verdict_of (check ~unsafe ~goal pipe);
          step_boxes;
          segment_boxes;
          controls = (if have_controls then controls else [||]);
          enclosures;
          remainders = (if Array.length remainders = nsegs then remainders else [||]);
        }
    end
  end

(* Where a robust NN verification should look for / deposit its
   certificates, plus the spec boxes its claim is judged against (both
   enter the content address). *)
type cert_site = { cc_cache : Cert_cache.t; cc_unsafe : Box.t; cc_goal : Box.t }

let nn_flowpipe_robust ?(blowup_width = 1e4) ?(order = 3) ?(disturbance_slots = 8)
    ?budget ?cert ?pool ?warm ~f ~delta ~steps ~net ~output_scale ~method_ ~x0 () =
  (* the primary rung's (possibly truncated) pipe is kept: when the whole
     ladder fails, its graded progress is still the best gradient signal
     the metric can extract (Metrics.diverged_scores) *)
  let primary_pipe = ref None in
  (* (backend name, emission recorder) of the most recent rung attempt;
     per-call local, and the rungs of one call run sequentially, so on a
     ladder success this names the rung that produced the value. *)
  let last_rung = ref None in
  (* Picard-trace recorder of the most recent rung attempt, same
     discipline; the interval rung records nothing (it has no Picard
     iteration), so a ladder that bottoms out there donates no trace. *)
  let last_warm = ref None in
  let tm ?(remember = false) ?(use_warm = false) name method_ ~slots ~substeps () =
    outcome_rung ~name (fun () ->
        let record = Option.map (fun _ -> new_recorder ()) cert in
        last_rung := Some (name, record);
        let warm_rec = Warm.recorder () in
        last_warm := Some warm_rec;
        let o =
          nn_flowpipe_outcome ~blowup_width ~order ~disturbance_slots:slots ~substeps
            ?budget ?record ?pool
            ?warm:(if use_warm then warm else None)
            ~warm_rec ~f ~delta ~steps ~net ~output_scale ~method_ ~x0 ()
        in
        if remember && !primary_pipe = None then primary_pipe := Some o.Flowpipe.pipe;
        o)
  in
  let cross_method, cross_name =
    match method_ with
    | Polar -> (Bernstein (Nn_reach_bernstein.default_config ~n:(Box.dim x0)), "ReachNN")
    | Bernstein _ -> (Polar, "POLAR")
  in
  (* The donor trace indexes sub-steps, so only rungs with the donor's
     sub-step count (substeps = 1, the primary setting) consume it; the
     "+tight" rung's doubled sub-stepping would read misaligned hints —
     sound, but pure waste. *)
  let rungs =
    [
      tm ~remember:true ~use_warm:true (nn_method_name method_) method_
        ~slots:disturbance_slots ~substeps:1 ();
      tm (nn_method_name method_ ^ "+tight") method_ ~slots:(disturbance_slots + 4)
        ~substeps:2 ();
      tm ~use_warm:true cross_name cross_method ~slots:disturbance_slots ~substeps:1 ();
      outcome_rung ~name:"interval" (fun () ->
          last_rung := Some ("interval", None);
          last_warm := None;
          Interval_reach.nn_flowpipe_outcome ~blowup_width ~order ?budget ~f ~delta
            ~steps ~net ~output_scale ~x0 ());
    ]
  in
  let cache =
    Option.map
      (fun site ->
        let params =
          Fmt.str "%s order=%d slots=%d substeps=1 scale=%h blowup=%h"
            (nn_method_name method_) order disturbance_slots output_scale blowup_width
          ^
          match method_ with
          | Polar -> ""
          | Bernstein config -> " " ^ Nn_reach_bernstein.config_tag config
        in
        let fp =
          Cert_key.fingerprint ~f ~theta:(Dwv_nn.Mlp.flatten net) ~x0
            ~unsafe:site.cc_unsafe ~goal:site.cc_goal ~delta ~steps ~tag:params
        in
        {
          Robust_verify.lookup =
            (fun () ->
              Dwv_util.Phases.time ph_cert @@ fun () ->
              Option.bind (Cert_cache.find site.cc_cache ~fingerprint:fp)
                (pipe_of_cert ~delta));
          store =
            (fun pipe ->
              let backend, record =
                match !last_rung with Some (b, r) -> (b, r) | None -> ("?", None)
              in
              let controls, hints, remainders =
                match record with
                | Some r ->
                  ( Array.of_list (List.rev r.rec_controls),
                    Array.of_list (List.rev r.rec_hints),
                    Array.of_list (List.rev r.rec_remainders) )
                | None -> ([||], [||], [||])
              in
              match
                cert_of_pipe ~fingerprint:fp ~backend ~params ~f
                  ~unsafe:site.cc_unsafe ~goal:site.cc_goal ~law:Cert.Opaque
                  ~controls ~hints ~remainders pipe
              with
              | Some c -> Cert_cache.store site.cc_cache c
              | None -> ());
        })
      cert
  in
  let o = Robust_verify.run ?budget ?cache rungs in
  let warm =
    (* only a ladder success donates its trace; a cache hit ran no rung
       (the stale [last_warm] belongs to no pipe), and a total failure's
       partial trace records a blow-up — worse than a cold start *)
    match o.Robust_verify.value, o.Robust_verify.rung with
    | Some _, Some r when r <> "cache" && r <> "interval" ->
      Option.map Warm.of_recorder !last_warm
    | _ -> None
  in
  report_of_outcome ?fallback:!primary_pipe ?warm ~x0 ~delta o
