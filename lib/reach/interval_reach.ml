(* Interval-only (box) reachability: the naive baseline the Taylor-model
   machinery exists to beat. The controller is abstracted by interval
   bound propagation and the period flow by an interval Taylor series with
   a Picard remainder - no symbolic variables at all, so every step incurs
   the full wrapping effect. Kept as an ablation (see the bench) and as
   the last rung of the fallback ladder: on the rotating Van der Pol
   dynamics the box iteration balloons within a few steps while the
   Taylor-model pipe stays tight, but it never throws and it is cheap. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Mlp = Dwv_nn.Mlp
module Ibp = Dwv_nn.Ibp
module Dwv_error = Dwv_robust.Dwv_error
module Budget = Dwv_robust.Budget

let factorial k =
  let acc = ref 1.0 in
  for i = 2 to k do
    acc := !acc *. float_of_int i
  done;
  !acc

(* One sampling period: x(delta) in sum_j delta^j/j! Lie_j(X, U) + Lagrange
   remainder over the Picard enclosure, all in interval arithmetic. *)
let step ?budget ~f ~(lie : Taylor_reach.lie_table) ~delta (x : Box.t) (u : Box.t) =
  match
    match budget with
    | None -> Ok ()
    | Some b -> Budget.spend_steps ~where:"Interval_reach.step" b
  with
  | Error e -> Error e
  | Ok () -> (
    match Taylor_reach.apriori_enclosure ~f ~x_box:x ~u_box:u ~delta () with
    | None ->
      Error
        (Dwv_error.divergence ~backend:"interval"
           ~where:"Taylor_reach.apriori_enclosure" ())
    | Some enclosure ->
      let order = Array.length lie - 2 in
      let n = Box.dim x in
      let next =
        Array.init n (fun i ->
            let acc = ref x.(i) in
            for j = 1 to order do
              let c = Expr.ieval lie.(j).(i) ~x ~u in
              acc := I.add !acc (I.scale ((delta ** float_of_int j) /. factorial j) c)
            done;
            let lf = Expr.ieval lie.(order + 1).(i) ~x:enclosure ~u in
            I.add !acc
              (I.scale ((delta ** float_of_int (order + 1)) /. factorial (order + 1)) lf))
      in
      Ok (next, enclosure))

let box_finite b =
  Array.for_all (fun iv -> Float.is_finite (I.lo iv) && Float.is_finite (I.hi iv)) b

(* Closed-loop box flowpipe under u = output_scale * net(x) (ZOH); total,
   with the structured failure cause attached. *)
let nn_flowpipe_outcome ?(blowup_width = 1e4) ?(order = 3) ?budget ~f ~delta ~steps ~net
    ~output_scale ~x0 () =
  let backend = "interval" in
  let lie = Taylor_reach.lie_table ~f ~order in
  let step_boxes = ref [ x0 ] and segment_boxes = ref [] in
  let diverged = ref false in
  let error = ref None in
  let step_index = ref 0 in
  let fail e =
    error := Some e;
    diverged := true;
    raise Exit
  in
  let x = ref x0 in
  (try
     for _ = 1 to steps do
       incr step_index;
       match
         let u = Array.map (I.scale output_scale) (Ibp.forward net !x) in
         step ?budget ~f ~lie ~delta !x u
       with
       | Error e -> fail { e with Dwv_error.step = Some !step_index }
       | Ok (next, segment) ->
         if not (box_finite next && box_finite segment) then
           fail
             (Dwv_error.non_finite ~backend ~step:!step_index
                ~where:"Interval_reach.nn_flowpipe" "reach box")
         else if Box.max_width next > blowup_width || Box.max_width segment > blowup_width
         then
           fail
             (Dwv_error.divergence
                ~width:(Float.max (Box.max_width next) (Box.max_width segment))
                ~backend ~step:!step_index ~where:"Interval_reach.nn_flowpipe" ());
         segment_boxes := segment :: !segment_boxes;
         step_boxes := next :: !step_boxes;
         x := next
       | exception ((Invalid_argument _ | Failure _) as exn) ->
         fail
           (Dwv_error.of_exn ~backend ~step:!step_index
              ~where:"Interval_reach.nn_flowpipe" exn)
     done
   with Exit -> ());
  {
    Flowpipe.pipe =
      Flowpipe.make
        ~step_boxes:(Array.of_list (List.rev !step_boxes))
        ~segment_boxes:(Array.of_list (List.rev !segment_boxes))
        ~delta ~diverged:!diverged;
    error = !error;
  }

let nn_flowpipe ?blowup_width ?order ?budget ~f ~delta ~steps ~net ~output_scale ~x0 () =
  (nn_flowpipe_outcome ?blowup_width ?order ?budget ~f ~delta ~steps ~net ~output_scale
     ~x0 ())
    .Flowpipe.pipe
