(* Flowpipes: the output of every verifier.

   A flowpipe over [steps] sampling periods records
     - [step_boxes.(i)]    : enclosure of the reach set at t = i*delta,
     - [segment_boxes.(i)] : enclosure of the reach set over the whole
                             interval [i*delta, (i+1)*delta].
   Safety is checked against segment boxes (continuous-time property);
   goal-reaching against step boxes (containment at some sample instant,
   as in Algorithm 2). [diverged] marks verification blow-up (the "NAN
   after 3 steps" failure mode of Fig. 8). *)

module Box = Dwv_interval.Box

type t = {
  step_boxes : Box.t array;      (* length steps+1 when complete *)
  segment_boxes : Box.t array;   (* length steps when complete *)
  delta : float;
  diverged : bool;
}

let make ~step_boxes ~segment_boxes ~delta ~diverged =
  if delta <= 0.0 then invalid_arg "Flowpipe.make: delta must be positive";
  if Array.length step_boxes = 0 then invalid_arg "Flowpipe.make: no step boxes";
  { step_boxes; segment_boxes; delta; diverged }

let steps t = Array.length t.segment_boxes

let delta t = t.delta

let diverged t = t.diverged

let initial_box t = t.step_boxes.(0)

let final_box t = t.step_boxes.(Array.length t.step_boxes - 1)

let step_boxes t = Array.to_list t.step_boxes

let segment_boxes t = Array.to_list t.segment_boxes

(* All boxes relevant for continuous-time safety: the segments (which by
   construction cover the step instants too). *)
let all_boxes t =
  if Array.length t.segment_boxes = 0 then Array.to_list t.step_boxes
  else Array.to_list t.segment_boxes

(* Width of the widest dimension of the final box: a cheap tightness
   proxy used by the tightness ablation. *)
let final_width t = Box.max_width (final_box t)

(* Project every box onto the given dimensions. Used to map flowpipes of
   constant-augmented systems (e.g. the affine ACC plant) back into the
   coordinates of the reach-avoid specification. *)
let project ~dims t =
  let proj b = Array.map (fun i -> Box.get b i) dims in
  { t with
    step_boxes = Array.map proj t.step_boxes;
    segment_boxes = Array.map proj t.segment_boxes }

let pp ppf t =
  Fmt.pf ppf "flowpipe(%d steps, delta=%g%s, final=%a)" (steps t) t.delta
    (if t.diverged then ", DIVERGED" else "")
    Box.pp (final_box t)

(* Total-verification outcome: a flowpipe is always produced (possibly a
   truncated, diverged one) and the structured cause rides along when the
   analysis failed. *)
type outcome = { pipe : t; error : Dwv_robust.Dwv_error.t option }
