(* Validated Taylor-method integration of one sampling period: the
   flowpipe construction that Flow*, ReachNN and POLAR all share once the
   controller has been abstracted into a Taylor model.

   For x' = f(x, u) with u fixed over the period, the solution satisfies

     x(delta) = sum_{j=0}^{k} delta^j/j! (L_f^j id)(x(0))
                + delta^{k+1}/(k+1)! (L_f^{k+1} id)(x(xi)),  xi in [0,delta]

   where L_f is the Lie derivative. We compute the L_f^j symbolically (the
   dynamics is an expression AST), evaluate them on the Taylor models of
   the current state, and bound the Lagrange term over an a-priori
   enclosure found by interval Picard iteration. Everything is sound. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Tm = Dwv_taylor.Taylor_model
module Tm_vec = Dwv_taylor.Tm_vec

(* lie.(j).(i) = j-th Lie derivative of the i-th coordinate function,
   j = 0 .. order+1. *)
type lie_table = Expr.t array array

let build_lie_table ~f ~order =
  let n = Array.length f in
  let table = Array.make (order + 2) [||] in
  table.(0) <- Array.init n Expr.var;
  for j = 1 to order + 1 do
    table.(j) <- Array.map (Expr.lie_derivative ~f) table.(j - 1)
  done;
  table

(* A Lie table is a pure function of (f, order) but costly to build —
   repeated symbolic differentiation — and the verifier asks for one on
   every call. Hash-consing gives each dynamics expression a
   process-global id, so (ids of f, order) is a complete cache key. The
   cache lives in Domain.DLS: per-domain, so parallel gradient probes
   never contend, and each domain reuses its tables across every
   verifier call of a run. *)
let lie_cache : (int array * int, lie_table) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let lie_table ~f ~order =
  let key = (Array.map Expr.id f, order) in
  let cache = Domain.DLS.get lie_cache in
  match Hashtbl.find_opt cache key with
  | Some table -> table
  | None ->
    let table = build_lie_table ~f ~order in
    Hashtbl.replace cache key table;
    table

let factorial k =
  let acc = ref 1.0 in
  for i = 2 to k do
    acc := !acc *. float_of_int i
  done;
  !acc

(* A-priori enclosure of the flow over [0, delta] by interval Picard
   iteration with geometric inflation; [None] on failure. *)
let apriori_enclosure ~f ~x_box ~u_box ~delta =
  let candidate_of e =
    let fr = Expr.ieval_vec f ~x:e ~u:u_box in
    (* The candidate is what the subset test certifies, so it must be an
       outward rounding of the true Picard image: widen past the
       round-to-nearest of the additions. *)
    Array.init (Box.dim x_box) (fun i ->
        I.widen
          (I.make
             (I.lo x_box.(i) +. Float.min 0.0 (delta *. I.lo fr.(i)))
             (I.hi x_box.(i) +. Float.max 0.0 (delta *. I.hi fr.(i)))))
  in
  let rec refine e iter =
    if iter > 30 then None
    else begin
      match candidate_of e with
      | cand when Box.subset cand e -> Some cand
      | cand -> refine (Box.scale_about_center 1.3 (Box.bloat 1e-9 (Box.hull cand e))) (iter + 1)
      | exception Failure _ -> None (* interval blow-up, e.g. division by a zero-straddling range *)
    end
  in
  refine (Box.bloat 1e-6 x_box) 0

type step_result = { state : Tm_vec.t; segment : Box.t; enclosure : Box.t }

let c_taylor_steps = Dwv_util.Counters.counter "taylor_steps"

(* One sampling period. [x] are the Taylor models of the state in the
   initial-set variables, [u] the (already abstracted) control models.
   Total: a Picard-iteration failure (the flowpipe's "NAN" divergence
   mode) and a blown deadline come back as structured errors. *)
let step ?budget ~f ~lie ~delta (x : Tm_vec.t) (u : Tm_vec.t) =
  match
    match budget with
    | None -> Ok ()
    | Some b -> Dwv_robust.Budget.spend_steps ~where:"Taylor_reach.step" b
  with
  | Error e -> Error e
  | Ok () ->
  Dwv_util.Counters.incr c_taylor_steps;
  let order = Tm.order x.(0) in
  let n = Tm_vec.dim x in
  let x_box = Tm_vec.bound_box x in
  let u_box = Tm_vec.bound_box u in
  match apriori_enclosure ~f ~x_box ~u_box ~delta with
  | None ->
    Error
      (Dwv_robust.Dwv_error.divergence ~where:"Taylor_reach.apriori_enclosure" ())
  | Some enclosure ->
    (* Taylor coefficients as TMs: c_j = (L^j id)(x) evaluated on models;
       one memo table shares work across the (heavily overlapping) Lie
       derivative expressions *)
    let memo = Tm.create_memo () in
    let coeff j = Array.map (fun e -> Tm.of_expr ~memo ~x ~u e) lie.(j) in
    let coeffs = Array.init (order + 1) coeff in
    (* Lagrange remainder over the enclosure *)
    let lagrange =
      let lf = Expr.ieval_vec lie.(order + 1) ~x:enclosure ~u:u_box in
      let scale = delta ** float_of_int (order + 1) /. factorial (order + 1) in
      Array.map (I.scale scale) lf
    in
    (* state at t = delta; swept to keep the polynomials sparse *)
    let state =
      Array.init n (fun i ->
          let acc = ref coeffs.(0).(i) in
          for j = 1 to order do
            let s = (delta ** float_of_int j) /. factorial j in
            acc := Tm.add !acc (Tm.scale s coeffs.(j).(i))
          done;
          Tm.sweep (Tm.add_remainder lagrange.(i) !acc))
    in
    (* enclosure over the whole period: evaluate the Taylor polynomial with
       t ranging over [0, delta], intersect with the Picard enclosure *)
    let t_iv = I.make 0.0 delta in
    let poly_range =
      Array.init n (fun i ->
          let acc = ref (Tm.bound coeffs.(0).(i)) in
          for j = 1 to order do
            let tj = I.scale (1.0 /. factorial j) (I.pow_int t_iv j) in
            acc := I.add !acc (I.mul tj (Tm.bound coeffs.(j).(i)))
          done;
          let rem_t =
            I.scale (1.0 /. factorial (order + 1)) (I.pow_int t_iv (order + 1))
          in
          let lf_i = Expr.ieval lie.(order + 1).(i) ~x:enclosure ~u:u_box in
          I.add !acc (I.mul rem_t lf_i))
    in
    let segment =
      Array.init n (fun i ->
          match I.intersect poly_range.(i) enclosure.(i) with
          | Some iv -> iv
          | None ->
            (* both are sound enclosures of a nonempty set, so they must
               intersect; an empty meet means rounding pathology - fall
               back to the Picard enclosure *)
            enclosure.(i))
    in
    Ok { state; segment; enclosure }
