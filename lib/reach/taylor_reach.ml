(* Validated Taylor-method integration of one sampling period: the
   flowpipe construction that Flow*, ReachNN and POLAR all share once the
   controller has been abstracted into a Taylor model.

   For x' = f(x, u) with u fixed over the period, the solution satisfies

     x(delta) = sum_{j=0}^{k} delta^j/j! (L_f^j id)(x(0))
                + delta^{k+1}/(k+1)! (L_f^{k+1} id)(x(xi)),  xi in [0,delta]

   where L_f is the Lie derivative. We compute the L_f^j symbolically (the
   dynamics is an expression AST), evaluate them on the Taylor models of
   the current state, and bound the Lagrange term over an a-priori
   enclosure found by interval Picard iteration. Everything is sound. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Tm = Dwv_taylor.Taylor_model
module Tm_vec = Dwv_taylor.Tm_vec

(* lie.(j).(i) = j-th Lie derivative of the i-th coordinate function,
   j = 0 .. order+1. *)
type lie_table = Expr.t array array

let build_lie_table ~f ~order =
  let n = Array.length f in
  let table = Array.make (order + 2) [||] in
  table.(0) <- Array.init n Expr.var;
  for j = 1 to order + 1 do
    table.(j) <- Array.map (Expr.lie_derivative ~f) table.(j - 1)
  done;
  table

(* A Lie table is a pure function of (f, order) but costly to build —
   repeated symbolic differentiation — and the verifier asks for one on
   every call. Hash-consing gives each dynamics expression a
   process-global id, so (ids of f, order) is a complete cache key.

   The registry is a publish-once CAS list shared by every domain: a
   run has a handful of distinct dynamics, and a per-domain (DLS) cache
   would rebuild each of them once per worker — symbolic
   differentiation repeated [domains] times at every pool start-up.
   Entries are immutable after construction, so readers never lock;
   the one benign race is two domains building the same table
   concurrently, where the CAS loser discards its copy and adopts the
   published one (the tables are structurally identical either way). *)
type lie_entry = { le_key : int array * int; le_table : lie_table }

let lie_registry : lie_entry list Atomic.t = Atomic.make []

let ph_lie_build = Dwv_util.Phases.phase "lie_table_build"

(* Registry introspection for the publish-once tests. NOT a Counters
   counter: builds are once-per-process events, so a per-run counter
   snapshot would differ between the first and every later run of the
   same workload, breaking the bench's snapshot-equality gate. *)
let lie_registry_size () = List.length (Atomic.get lie_registry)

let lie_table ~f ~order =
  let key = (Array.map Expr.id f, order) in
  let rec find = function
    | [] -> None
    | e :: tl -> if e.le_key = key then Some e.le_table else find tl
  in
  match find (Atomic.get lie_registry) with
  | Some table -> table
  | None ->
    let table = Dwv_util.Phases.time ph_lie_build (fun () -> build_lie_table ~f ~order) in
    let rec publish () =
      let cur = Atomic.get lie_registry in
      match find cur with
      | Some existing -> existing
      | None ->
        if Atomic.compare_and_set lie_registry cur
             ({ le_key = key; le_table = table } :: cur)
        then table
        else publish ()
    in
    publish ()

let factorial k =
  let acc = ref 1.0 in
  for i = 2 to k do
    acc := !acc *. float_of_int i
  done;
  !acc

let c_warm_hits = Dwv_util.Counters.counter "warm_hits"
let c_warm_poisoned = Dwv_util.Counters.counter "warm_poisoned"

(* A-priori enclosure of the flow over [0, delta] by interval Picard
   iteration with geometric inflation; [None] on failure.

   [hint] is a warm start: an a-priori enclosure certified for a nearby
   problem (the same step of the previous gradient probe or the parent
   frontier cell). Seeding the iteration with [hull x_box hint] usually
   lands inside the contraction region immediately, replacing the
   geometric-inflation search with a single subset check. Soundness
   never depends on the hint — whatever box the iteration converges to
   is certified by the same [Box.subset cand e] test as a cold start,
   and a useless or poisoned hint merely fails to converge, in which
   case we fall back to the cold iteration and count the waste. *)
let apriori_enclosure ?hint ~f ~x_box ~u_box ~delta () =
  let candidate_of e =
    let fr = Expr.ieval_vec f ~x:e ~u:u_box in
    (* The candidate is what the subset test certifies, so it must be an
       outward rounding of the true Picard image: widen past the
       round-to-nearest of the additions. *)
    Array.init (Box.dim x_box) (fun i ->
        I.widen
          (I.make
             (I.lo x_box.(i) +. Float.min 0.0 (delta *. I.lo fr.(i)))
             (I.hi x_box.(i) +. Float.max 0.0 (delta *. I.hi fr.(i)))))
  in
  let rec refine e iter =
    if iter > 30 then None
    else begin
      match candidate_of e with
      | cand when Box.subset cand e -> Some cand
      | cand -> refine (Box.scale_about_center 1.3 (Box.bloat 1e-9 (Box.hull cand e))) (iter + 1)
      | exception Failure _ -> None (* interval blow-up, e.g. division by a zero-straddling range *)
    end
  in
  let cold () = refine (Box.bloat 1e-6 x_box) 0 in
  match hint with
  | Some _ when Dwv_robust.Fault.current () = Some Dwv_robust.Fault.Warm_poison ->
    (* fault injection: the armed warm-poison fault spoils every hint at
       the gate — the call must degrade to the cold inflation search and
       produce the bit-identical cold enclosure (the counter lets tests
       assert the degradation actually happened) *)
    Dwv_util.Counters.incr c_warm_poisoned;
    cold ()
  | Some h when Box.dim h = Box.dim x_box -> begin
      (* three iterations around the hint, then give up on warmth: a
         hint that needs the full inflation search is not a warm start,
         and running it to exhaustion would double the cost of every
         poisoned hint (iter counts up to the shared 30 cap) *)
      match refine (Box.hull (Box.bloat 1e-6 x_box) h) 28 with
      | Some _ as e ->
        Dwv_util.Counters.incr c_warm_hits;
        e
      | None ->
        Dwv_util.Counters.incr c_warm_poisoned;
        cold ()
    end
  | _ -> cold ()

type step_result = { state : Tm_vec.t; segment : Box.t; enclosure : Box.t }

let c_taylor_steps = Dwv_util.Counters.counter "taylor_steps"
let ph_taylor_step = Dwv_util.Phases.phase "taylor_step"
let ph_picard = Dwv_util.Phases.phase "taylor_step/picard"
let ph_coeffs = Dwv_util.Phases.phase "taylor_step/coeffs"
let ph_range = Dwv_util.Phases.phase "taylor_step/range"

(* Index-ordered parallel map over dimensions. The pool path and the
   sequential path compute identical per-index values (each task is a
   pure function of its index), so results are bit-identical at any
   domain count; Pool.mapi additionally degrades to the sequential loop
   when this step already runs inside an outer pool task. *)
let par_init pool n f =
  match pool with
  | Some p when n > 1 -> Dwv_parallel.Pool.mapi p (fun i () -> f i) (Array.make n ())
  | _ -> Array.init n f

(* One sampling period. [x] are the Taylor models of the state in the
   initial-set variables, [u] the (already abstracted) control models.
   Total: a Picard-iteration failure (the flowpipe's "NAN" divergence
   mode) and a blown deadline come back as structured errors.

   [hint] warm-starts the a-priori enclosure (see {!apriori_enclosure});
   [pool] splits the per-dimension work — Taylor-coefficient columns,
   then state/range recombination — across domains, recombined by index
   so the result is bit-identical to the sequential step. *)
let step ?budget ?pool ?hint ~f ~lie ~delta (x : Tm_vec.t) (u : Tm_vec.t) =
  match
    match budget with
    | None -> Ok ()
    | Some b -> Dwv_robust.Budget.spend_steps ~where:"Taylor_reach.step" b
  with
  | Error e -> Error e
  | Ok () ->
  Dwv_util.Phases.time ph_taylor_step @@ fun () ->
  Dwv_util.Counters.incr c_taylor_steps;
  let order = Tm.order x.(0) in
  let n = Tm_vec.dim x in
  let x_box = Tm_vec.bound_box x in
  let u_box = Tm_vec.bound_box u in
  match
    Dwv_util.Phases.time ph_picard (fun () ->
        apriori_enclosure ?hint ~f ~x_box ~u_box ~delta ())
  with
  | None ->
    Error
      (Dwv_robust.Dwv_error.divergence ~where:"Taylor_reach.apriori_enclosure" ())
  | Some enclosure ->
    (* Taylor coefficients as TMs: c_j = (L^j id)(x) evaluated on models.
       Sequentially, one memo table shares work across the (heavily
       overlapping) Lie derivative expressions. Under a pool the grid is
       split by dimension COLUMN — column i is the L^j chain of
       coordinate i, which is where the overlap lives — with a memo per
       column; of_expr is deterministic for any memo contents, so the
       two schedules agree bitwise. *)
    let coeffs =
      Dwv_util.Phases.time ph_coeffs (fun () ->
          match pool with
          | Some _ when n > 1 ->
            let cols =
              par_init pool n (fun i ->
                  let memo = Tm.create_memo () in
                  Array.init (order + 1) (fun j ->
                      Tm.of_expr ~memo ~x ~u lie.(j).(i)))
            in
            Array.init (order + 1) (fun j ->
                Array.init n (fun i -> cols.(i).(j)))
          | _ ->
            let memo = Tm.create_memo () in
            Array.init (order + 1) (fun j ->
                Array.map (fun e -> Tm.of_expr ~memo ~x ~u e) lie.(j)))
    in
    (* Lagrange remainder over the enclosure *)
    let lagrange =
      let lf = Expr.ieval_vec lie.(order + 1) ~x:enclosure ~u:u_box in
      let scale = delta ** float_of_int (order + 1) /. factorial (order + 1) in
      Array.map (I.scale scale) lf
    in
    Dwv_util.Phases.time ph_range @@ fun () ->
    (* loop-invariant scalars, hoisted out of the per-dimension loops:
       delta^j/j! for the state sum, [0,delta]^j/j! for the range sum *)
    let t_iv = I.make 0.0 delta in
    let t_scale = Array.init (order + 1) (fun j -> (delta ** float_of_int j) /. factorial j) in
    let t_pow = Array.init (order + 2) (fun j -> I.scale (1.0 /. factorial j) (I.pow_int t_iv j)) in
    let rem_t = t_pow.(order + 1) in
    (* per-dimension recombination: state at t = delta (swept to keep
       the polynomials sparse), range of the Taylor polynomial with t
       over [0, delta], meet with the Picard enclosure *)
    let per_dim =
      par_init pool n (fun i ->
          let acc = ref coeffs.(0).(i) in
          for j = 1 to order do
            acc := Tm.add !acc (Tm.scale t_scale.(j) coeffs.(j).(i))
          done;
          let state_i = Tm.sweep (Tm.add_remainder lagrange.(i) !acc) in
          let racc = ref (Tm.bound coeffs.(0).(i)) in
          for j = 1 to order do
            racc := I.add !racc (I.mul t_pow.(j) (Tm.bound coeffs.(j).(i)))
          done;
          let lf_i = Expr.ieval lie.(order + 1).(i) ~x:enclosure ~u:u_box in
          let poly_range_i = I.add !racc (I.mul rem_t lf_i) in
          let segment_i =
            match I.intersect poly_range_i enclosure.(i) with
            | Some iv -> iv
            | None ->
              (* both are sound enclosures of a nonempty set, so they must
                 intersect; an empty meet means rounding pathology - fall
                 back to the Picard enclosure *)
              enclosure.(i)
          in
          (state_i, segment_i))
    in
    let state = Array.map fst per_dim in
    let segment = Array.map snd per_dim in
    Ok { state; segment; enclosure }
