(** Fixed-size domain pool with deterministic result ordering.

    The three hot fan-out sites of the verification loop — gradient
    probes (Algorithm 1), frontier cells (Algorithm 2) and Monte-Carlo
    rollouts — are embarrassingly parallel: independent verifier calls
    whose results are combined by index, never by completion order.
    [map] exploits exactly that shape: workers write into a pre-sized
    result array at their item's index, so the output (and every fold
    over it) is bit-identical for any number of domains.

    A pool with [domains = 1] spawns no worker domains and runs every
    [map] sequentially in the caller — the exact single-domain code
    path, useful as a determinism oracle. With [domains = n > 1] the
    pool spawns [n - 1] workers and the calling domain participates in
    each batch, so [n] domains compute in total.

    Pools are not truly reentrant — a nested [map] issued from inside a
    pool task does not fan out again. Instead it detects the nesting
    (see {!in_task}) and runs sequentially in its caller, which is both
    safe (no cross-batch task stealing on a domain holding ambient
    per-task state) and the right schedule: the outer fan-out already
    occupies every domain. Do not share one pool between concurrently
    mapping domains. *)

type t

(** [create ~domains ()] spawns a pool of [domains] total domains
    (including the caller; default {!default_domains}). Raises
    [Invalid_argument] when [domains < 1].

    The effective size is clamped to {!default_domains} (the hardware
    core count): running more busy domains than cores only multiplies
    stop-the-world GC rendezvous through the OS scheduler. Pass
    [~oversubscribe:true] to keep the requested count anyway — the
    determinism tests do, so cross-domain machinery is exercised even on
    single-core runners; numeric results are identical either way. *)
val create : ?oversubscribe:bool -> ?domains:int -> unit -> t

(** [Domain.recommended_domain_count ()]: the hardware's preferred
    domain count. *)
val default_domains : unit -> int

(** Number of domains (including the caller) this pool computes with. *)
val domains : t -> int

(** [map pool f items] applies [f] to every element, in parallel across
    the pool's domains, and returns the results in item order. Items are
    scheduled in contiguous chunks (a few per domain) to amortize queue
    overhead on many-small-task batches; chunking never affects the
    output. An exception raised by [f] is re-raised in the caller after
    the whole batch has drained (the one with the smallest item index
    wins, so the error too is deterministic); the pool remains usable
    afterwards. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [mapi pool f items] is [map] with the item index. *)
val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** True while the current domain is executing a pool task. A [map] or
    [mapi] issued in that state degrades to a sequential [Array.mapi] in
    the caller, so inner fan-outs (e.g. the per-dimension parallelism
    inside a flowpipe step) compose safely with outer ones (probe or
    frontier batches). The output is bit-identical either way. *)
val in_task : unit -> bool

(** [map_reduce pool ~map ~reduce ~init items] maps in parallel, then
    folds the results sequentially in item order ([reduce] sees them
    left to right), so the reduction is deterministic even when [reduce]
    is not associative-commutative (e.g. float sums). *)
val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc

(** Join the worker domains. The pool must not be used afterwards.
    Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards: the worker domains are joined on both the normal and the
    exceptional path (including the smallest-index exception re-raised
    by [map]), so no domain outlives the call. *)
val with_pool : ?oversubscribe:bool -> ?domains:int -> (t -> 'a) -> 'a
