(* A fixed-size domain pool built on a mutex-protected task queue.

   Determinism contract: [map] writes each result into a pre-sized array
   at the item's index. Completion order never influences the output, so
   `domains = 1` and `domains = n` produce bit-identical arrays as long
   as the tasks themselves are functions of their item alone (the three
   call sites in lib/core are audited for exactly that: probe directions,
   frontier cells and per-rollout RNG streams are all assigned to indices
   before the fan-out).

   The calling domain participates in every batch: it drains the queue
   alongside the workers, then blocks until stragglers finish. With
   `domains = 1` there are no workers at all and the caller's drain IS
   the sequential code path. *)

type t = {
  domains : int;
  mutex : Mutex.t;
  work : Condition.t;           (* tasks enqueued, or shutting down *)
  batch_done : Condition.t;     (* a batch's last task completed *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_domains () = Domain.recommended_domain_count ()

(* Re-entrancy guard. Tasks of an outer [map] must not themselves fan
   out through the pool: a nested map's help-drain would steal and run
   OTHER outer-batch tasks on this domain, corrupting ambient per-domain
   state (e.g. the fault-plan call base) those tasks rely on. The flag
   makes nesting safe instead of forbidden — an inner map from inside a
   task simply runs sequentially in its caller, which is also the right
   schedule: the outer fan-out already owns every domain. *)
let in_task_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_task () = Domain.DLS.get in_task_key

let run_task task =
  Domain.DLS.set in_task_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_task_key false) task

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    let rec next () =
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.mutex;
        run_task task;
        `Continue
      | None ->
        if pool.stopping then begin
          Mutex.unlock pool.mutex;
          `Stop
        end
        else begin
          Condition.wait pool.work pool.mutex;
          next ()
        end
    in
    match next () with `Continue -> loop () | `Stop -> ()
  in
  loop ()

let create ?(oversubscribe = false) ?domains () =
  let requested =
    match domains with Some d -> d | None -> default_domains ()
  in
  if requested < 1 then invalid_arg "Pool.create: domains must be >= 1";
  (* More busy domains than hardware cores is a pure loss for this
     workload: every minor GC is a stop-the-world rendezvous, and a
     descheduled domain turns each one into an OS-scheduler wait (the
     measured 0.2x "speedups" of oversubscribed runs). Clamp to the
     hardware count unless the caller explicitly opts out (tests do, to
     exercise cross-domain machinery on small CI boxes). *)
  let domains =
    if oversubscribe then requested else min requested (default_domains ())
  in
  let pool =
    {
      domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  pool.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let domains t = t.domains

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?oversubscribe ?domains f =
  let pool = create ?oversubscribe ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let mapi pool f items =
  let n = Array.length items in
  if n = 0 then [||]
  else if pool.domains <= 1 || n = 1 || in_task () then Array.mapi f items
  else begin
    let results = Array.make n None in
    (* Work is enqueued as CHUNKS of contiguous index ranges — a few per
       domain, so stragglers can still be balanced — rather than one
       closure per item: the many-small-task workloads (thousands of
       sub-millisecond Monte-Carlo rollouts) then pay queue and closure
       overhead per chunk, not per item. Results still land at their
       item's index, so chunking is invisible in the output. *)
    let chunks = min n (pool.domains * 4) in
    let pending = Atomic.make chunks in
    (* the failure with the smallest item index wins: re-raising is then
       independent of completion order *)
    let error = ref None in
    let chunk c () =
      let lo = c * n / chunks and hi = (c + 1) * n / chunks in
      for i = lo to hi - 1 do
        try results.(i) <- Some (f i items.(i))
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock pool.mutex;
          (match !error with
          | Some (j, _, _) when j <= i -> ()
          | _ -> error := Some (i, e, bt));
          Mutex.unlock pool.mutex
      done;
      (* the decrement publishes this chunk's result writes to whoever
         observes pending = 0 *)
      if Atomic.fetch_and_add pending (-1) = 1 then begin
        Mutex.lock pool.mutex;
        Condition.broadcast pool.batch_done;
        Mutex.unlock pool.mutex
      end
    in
    Mutex.lock pool.mutex;
    for c = 0 to chunks - 1 do
      Queue.add (chunk c) pool.queue
    done;
    Condition.broadcast pool.work;
    (* the caller helps drain its own batch... *)
    let rec help () =
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.mutex;
        run_task task;
        Mutex.lock pool.mutex;
        help ()
      | None -> ()
    in
    help ();
    (* ...then waits for in-flight stragglers *)
    while Atomic.get pending > 0 do
      Condition.wait pool.batch_done pool.mutex
    done;
    Mutex.unlock pool.mutex;
    (match !error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map pool f items = mapi pool (fun _ x -> f x) items

let map_reduce pool ~map:f ~reduce ~init items =
  Array.fold_left reduce init (map pool f items)
