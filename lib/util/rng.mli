(** Deterministic splittable pseudo-random generator (splitmix64).

    Every stochastic component of the reproduction (controller
    initialisation, SPSA perturbations, DDPG exploration noise, Monte-Carlo
    evaluation rollouts) draws from an explicit [t] so experiments are
    bit-reproducible. *)

type t

(** [create seed] builds a generator from an integer seed. *)
val create : int -> t

(** Independent copy (same future stream). *)
val copy : t -> t

(** Derive an independent generator; the parent stream advances by one. *)
val split : t -> t

(** [split_n t n] derives [n] independent child generators; child [i]
    depends only on the parent seed and [i] (the parent advances by
    [n]), so index-sharded parallel work reproduces the sequential
    stream assignment exactly. Raises [Invalid_argument] on [n < 0]. *)
val split_n : t -> int -> t array

(** Raw 64 random bits. *)
val next_int64 : t -> int64

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** Uniform integer in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** Fair coin. *)
val bool : t -> bool

(** Standard normal deviate (Box-Muller). *)
val gaussian : t -> float

(** Normal deviate with the given mean and standard deviation. *)
val gaussian_scaled : t -> mu:float -> sigma:float -> float

(** Uniform direction on the unit sphere of dimension [n]. *)
val direction : t -> int -> float array

(** Vector of n independent +/-1 entries (SPSA perturbation). *)
val rademacher : t -> int -> float array

(** Uniform sample from the axis-aligned box with corners [lo] and [hi]. *)
val uniform_in_box : t -> lo:float array -> hi:float array -> float array

(** Fisher-Yates shuffle. *)
val shuffle_in_place : t -> 'a array -> unit
