(* Deterministic pseudo-random numbers for reproducible experiments.

   The generator is splitmix64 (Steele, Lea & Flood, OOPSLA'14): a tiny,
   statistically solid 64-bit generator with a trivially splittable state.
   All experiment code threads an explicit [t] value so that every table and
   figure in the paper reproduction is bit-reproducible across runs. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

(* [n] child streams for index-addressed parallel work: child [i] is a
   pure function of the parent seed and [i], so shards of a fan-out can
   be verified in any order (or on any domain) and still reproduce the
   sequential run bit for bit. The parent advances by [n]. *)
let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split t)

(* Uniform float in [0, 1): use the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the Int64 -> int conversion stays non-negative *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Standard normal via Box-Muller. *)
let gaussian t =
  let rec nonzero () =
    let u = float t in
    if u > 1e-12 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mu ~sigma = mu +. (sigma *. gaussian t)

(* A random unit-norm direction in dimension [n]; used by the SPSA-style
   perturbations of Algorithm 1. *)
let direction t n =
  let v = Array.init n (fun _ -> gaussian t) in
  let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v) in
  if norm < 1e-12 then Array.make n (1.0 /. sqrt (float_of_int n))
  else Array.map (fun x -> x /. norm) v

(* Rademacher +-1 vector, the classical SPSA perturbation distribution. *)
let rademacher t n = Array.init n (fun _ -> if bool t then 1.0 else -1.0)

let uniform_in_box t ~lo ~hi =
  Array.init (Array.length lo) (fun i -> uniform t ~lo:lo.(i) ~hi:hi.(i))

let shuffle_in_place t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
