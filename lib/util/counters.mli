(** Process-global named event counters with deterministic totals.

    The counted events are scheduled deterministically (pre-assigned
    probe/cell indices), so totals are bit-identical at any domain
    count; the bench sections snapshot them around each workload and
    gate on exact equality — a load-independent regression signal next
    to the wall-clock numbers. *)

type handle

(** Resolve (registering on first use) the counter named [name]. Cache
    the handle at module level on hot paths; it stays valid across
    {!reset}. *)
val counter : string -> handle

val incr : handle -> unit
val add : handle -> int -> unit
val value : handle -> int

(** Current value by name (0 when never registered). *)
val get : string -> int

(** Zero every registered counter (handles stay valid). *)
val reset : unit -> unit

(** All counters as a sorted [(name, value)] list. *)
val snapshot : unit -> (string * int) list
