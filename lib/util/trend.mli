(** Deterministic-counter trend ratchet over a committed history file.

    The bench gates snapshot {!Counters} around each workload; those
    totals are deterministic (bit-identical at any domain count), so a
    change against the last committed snapshot is a real behavioural
    shift, independent of wall clock. The history file accumulates one
    entry per (section, workload) change; the gate fails when work
    counters grow or the certificate-cache hit rate drops relative to
    the last committed entry, and a legitimate cost increase is accepted
    by committing the appended entry. *)

type entry = {
  section : string;  (** bench section, e.g. "hotpath" *)
  workload : string;  (** workload within the section, e.g. "learn" *)
  counters : (string * int) list;  (** sorted snapshot *)
}

(** Parse a history file; a missing or empty file is an empty history. *)
val load : string -> entry list

(** Most recent committed snapshot for the key, newest entry wins. *)
val last :
  entry list -> section:string -> workload:string -> (string * int) list option

(** Regression messages of [cur] against [prev]: any work counter that
    increased (more work for the same deterministic workload), any
    benefit counter ([warm_hits], [cache_fast_hits]) that decreased
    (lost warm starts / fast-tier hits), plus a decreased cache hit
    rate [hits / (hits + misses)]. Counters absent from one side
    count 0. *)
val regressions : prev:(string * int) list -> (string * int) list -> string list

(** Gate helper: for each [(workload, snapshot)], compare against the
    last committed entry for [(section, workload)], append every
    changed snapshot to the file at [path], and return the prefixed
    regression messages (empty = ratchet passes). First-ever snapshots
    seed the history and cannot regress. *)
val record :
  path:string ->
  section:string ->
  (string * (string * int) list) list ->
  string list
