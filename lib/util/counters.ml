(* Deterministic event counters for the bench gates.

   The counted events (verifier calls, validated Taylor steps, cache
   hits/misses/rejects, ...) are *scheduled* deterministically — the
   learner and initset fan-outs pre-assign work by index — so their
   totals must be bit-identical at any domain count even though the
   increments interleave arbitrarily. The bench sections snapshot these
   around each workload and gate on exact equality (the nim-ci_bench
   idea: exact counters survive host-load noise that wall-clock numbers
   do not).

   Handles are atomics resolved once per registration; the registry is
   a CAS-swapped immutable list so lookups never race a resize (OCaml
   Hashtbl is not safe under concurrent mutation). [reset] zeroes the
   counters in place: handles cached by hot modules stay valid. *)

type handle = int Atomic.t

let registry : (string * handle) list Atomic.t = Atomic.make []

let rec counter name =
  let current = Atomic.get registry in
  match List.assoc_opt name current with
  | Some h -> h
  | None ->
    let h = Atomic.make 0 in
    if Atomic.compare_and_set registry current ((name, h) :: current) then h
    else counter name (* another domain registered concurrently; retry *)

let incr h = ignore (Atomic.fetch_and_add h 1)
let add h n = ignore (Atomic.fetch_and_add h n)
let value h = Atomic.get h

let get name =
  match List.assoc_opt name (Atomic.get registry) with
  | Some h -> Atomic.get h
  | None -> 0

let reset () = List.iter (fun (_, h) -> Atomic.set h 0) (Atomic.get registry)

let snapshot () =
  Atomic.get registry
  |> List.map (fun (name, h) -> (name, Atomic.get h))
  |> List.sort compare
