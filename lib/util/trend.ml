(* Counter trend ratchet. See the .mli for the contract.

   The history file is line-oriented JSON — one entry object per line
   inside a top-level "entries" array — so it can be read back with a
   plain substring scanner (no JSON dependency) and diffs stay
   one-line-per-change in review. *)

type entry = {
  section : string;
  workload : string;
  counters : (string * int) list;
}

(* ---------- scanning ---------- *)

let quoted_field line field =
  let needle = "\"" ^ field ^ "\":\"" in
  let nlen = String.length needle and len = String.length line in
  let rec find i =
    if i + nlen > len then None
    else if String.sub line i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> (
    match String.index_from_opt line start '"' with
    | Some stop -> Some (String.sub line start (stop - start))
    | None -> None)

let counters_field line =
  let needle = "\"counters\":{" in
  let nlen = String.length needle and len = String.length line in
  let rec find i =
    if i + nlen > len then None
    else if String.sub line i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> (
    match String.index_from_opt line start '}' with
    | None -> None
    | Some stop ->
      let body = String.sub line start (stop - start) in
      let pair chunk =
        match String.index_opt chunk ':' with
        | None -> None
        | Some colon ->
          let name = String.trim (String.sub chunk 0 colon) in
          let value =
            String.trim
              (String.sub chunk (colon + 1) (String.length chunk - colon - 1))
          in
          if String.length name >= 2 && name.[0] = '"' then
            Option.map
              (fun v -> (String.sub name 1 (String.length name - 2), v))
              (int_of_string_opt value)
          else None
      in
      Some (List.filter_map pair (String.split_on_char ',' body)))

let parse_line line =
  match (quoted_field line "section", quoted_field line "workload") with
  | Some section, Some workload ->
    Some
      {
        section;
        workload;
        counters = Option.value ~default:[] (counters_field line);
      }
  | _ -> None

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | content ->
    List.filter_map parse_line (String.split_on_char '\n' content)
  | exception Sys_error _ -> []

let last history ~section ~workload =
  List.fold_left
    (fun acc e ->
      if e.section = section && e.workload = workload then Some e.counters
      else acc)
    None history

(* ---------- the ratchet rule ---------- *)

let value counters name = Option.value ~default:0 (List.assoc_opt name counters)

(* hit counters are where more is better; everything else in the
   registry measures work done (flowpipes, abstraction builds, cache
   misses/rejects, IO failures). For the benefit counters the ratchet
   points the other way: losing previously-achieved warm starts or
   fast-tier cache hits on the same deterministic workload is the
   regression. *)
let benefit = [ "cache_hits"; "cache_fast_hits"; "warm_hits" ]
let is_work name = not (List.mem name benefit)

let hit_rate counters =
  let h = value counters "cache_hits" and m = value counters "cache_misses" in
  if h + m = 0 then None else Some (float_of_int h /. float_of_int (h + m))

let regressions ~prev cur =
  let names =
    List.sort_uniq compare (List.map fst prev @ List.map fst cur)
  in
  let work =
    List.filter_map
      (fun n ->
        let p = value prev n and c = value cur n in
        if is_work n && c > p then
          Some (Printf.sprintf "%s increased %d -> %d" n p c)
        else None)
      names
  in
  (* cache_hits decreases surface through the hit-rate check below; the
     other benefit counters have no natural denominator, so any drop on
     the same deterministic workload is flagged directly *)
  let lost =
    List.filter_map
      (fun n ->
        let p = value prev n and c = value cur n in
        if List.mem n benefit && n <> "cache_hits" && c < p then
          Some (Printf.sprintf "%s decreased %d -> %d" n p c)
        else None)
      names
  in
  let rate =
    match (hit_rate prev, hit_rate cur) with
    | Some rp, Some rc when rc < rp ->
      [ Printf.sprintf "cache hit rate decreased %.4f -> %.4f" rp rc ]
    | _ -> []
  in
  work @ lost @ rate

(* ---------- persistence ---------- *)

let entry_to_json e =
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"section\":\"%s\",\"workload\":\"%s\",\"counters\":{"
    e.section e.workload;
  List.iteri
    (fun i (k, v) ->
      Printf.bprintf b "%s\"%s\":%d" (if i = 0 then "" else ",") k v)
    e.counters;
  Buffer.add_string b "}}";
  Buffer.contents b

let write path history =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "{\"version\":1,\"tool\":\"dwv bench counters ratchet\",\"entries\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (entry_to_json e))
    history;
  Buffer.add_string b "\n]}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let record ~path ~section workloads =
  let history = load path in
  let msgs = ref [] in
  let additions =
    List.filter_map
      (fun (workload, counters) ->
        let counters = List.sort compare counters in
        match last history ~section ~workload with
        | Some prev when prev = counters -> None
        | Some prev ->
          List.iter
            (fun m ->
              msgs := Printf.sprintf "[%s/%s] %s" section workload m :: !msgs)
            (regressions ~prev counters);
          Some { section; workload; counters }
        | None -> Some { section; workload; counters })
      workloads
  in
  if additions <> [] then write path (history @ additions);
  List.rev !msgs
