(** Process-global named wall-clock phase accumulators.

    The bench breakdowns time the phases inside a verifier call
    (lie-table build, Taylor steps, controller abstraction, certificate
    checking) so a hot-path regression localizes without a profiler.
    Wall-clock totals are load-dependent: they are reported, never
    gated on equality. *)

type handle

(** Resolve (registering on first use) the phase named [name]. Cache
    the handle at module level on hot paths; it stays valid across
    {!reset}. *)
val phase : string -> handle

(** Run [f], accumulating its wall-clock duration into the phase
    (exception-safe). *)
val time : handle -> (unit -> 'a) -> 'a

(** Accumulated seconds for a handle. *)
val seconds : handle -> float

(** Zero every registered phase (handles stay valid). *)
val reset : unit -> unit

(** All phases as a sorted [(name, seconds)] list. *)
val snapshot : unit -> (string * float) list
