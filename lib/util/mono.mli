(** Shared monotone clock for budgets and benchmark timing.

    [Unix.gettimeofday] regresses under NTP slew and [Sys.time] counts
    CPU time summed across domains (so a 4-domain run "ages" 4× too
    fast). [now] is a process-wide monotone-non-decreasing wall clock:
    the raw wall clock clamped against the latest value any domain has
    observed, safe to difference from any domain. *)

(** Seconds since the Unix epoch, guaranteed non-decreasing across all
    domains of the process. *)
val now : unit -> float
