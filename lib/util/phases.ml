(* Wall-clock phase accumulators for the bench breakdowns: where inside a
   verifier call the time goes (lie-table build, Taylor steps, controller
   abstraction, certificate checking). Unlike Counters these are
   *informational* — wall-clock is load-dependent, so no gate compares
   them for equality; they exist so a BENCH_hotpath.json regression
   localizes to a phase without re-running a profiler.

   Same registry discipline as Counters: handles are atomics resolved
   once per registration, the registry is a CAS-swapped immutable list,
   and [reset] zeroes in place so cached handles stay valid. Durations
   accumulate as integer nanoseconds via fetch_and_add (atomic, no float
   CAS loop needed). *)

type handle = int Atomic.t

let registry : (string * handle) list Atomic.t = Atomic.make []

let rec phase name =
  let current = Atomic.get registry in
  match List.assoc_opt name current with
  | Some h -> h
  | None ->
    let h = Atomic.make 0 in
    if Atomic.compare_and_set registry current ((name, h) :: current) then h
    else phase name (* another domain registered concurrently; retry *)

let add_ns h ns = ignore (Atomic.fetch_and_add h ns)

let time h f =
  let t0 = Mono.now () in
  Fun.protect ~finally:(fun () ->
      add_ns h (int_of_float ((Mono.now () -. t0) *. 1e9)))
    f

let seconds h = float_of_int (Atomic.get h) *. 1e-9

let reset () = List.iter (fun (_, h) -> Atomic.set h 0) (Atomic.get registry)

let snapshot () =
  Atomic.get registry
  |> List.map (fun (name, h) -> (name, seconds h))
  |> List.sort compare
