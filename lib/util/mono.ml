(* Monotone-clamped wall clock (Mtime-style counter without the mtime
   dependency): a CAS loop over the latest observed instant makes the
   reading non-decreasing process-wide, so deadline arithmetic and bench
   timings never see time run backwards, from any domain. *)

let latest = Atomic.make neg_infinity

let rec now () =
  let t = Unix.gettimeofday () in
  let seen = Atomic.get latest in
  if t <= seen then seen
  else if Atomic.compare_and_set latest seen t then t
  else now ()
