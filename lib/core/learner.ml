(* Algorithm 1: verification-in-the-loop control learning.

   Repeat until the verifier proves reach-avoid or the iteration budget is
   exhausted: perturb the controller parameters, re-verify each
   perturbation, read off the metric scores, form a central-difference
   gradient estimate, and take a step that increases both the safety and
   the goal score. The verifier has no analytic form, hence the difference
   method of Eq. (5); for high-dimensional (neural) controllers we use the
   SPSA form of the same estimator (random +-1 directions), for low-
   dimensional linear gains exact coordinate-wise differences. *)

module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe
module Rng = Dwv_util.Rng
module Dwv_error = Dwv_robust.Dwv_error
module Budget = Dwv_robust.Budget
module Fault = Dwv_robust.Fault
module Pool = Dwv_parallel.Pool

type gradient_mode =
  | Coordinate      (* one +-p probe per parameter: 2 * dim verifier calls *)
  | Spsa of int     (* k random direction pairs: 2 * k verifier calls *)

type config = {
  max_iters : int;            (* N of Algorithm 1 *)
  alpha : float;              (* step length on the safety score *)
  beta : float;               (* step length on the goal score *)
  perturbation : float;       (* p of the difference method *)
  gradient_mode : gradient_mode;
  normalize_gradients : bool; (* scale each estimate to unit norm so that
                                 alpha/beta are trust-region step sizes *)
  plateau_patience : int;     (* halve the steps after this many iterations
                                 without objective improvement (0 = never);
                                 normalized fixed-size steps otherwise cycle
                                 around kinks of the metric (e.g. the
                                 saturation boundary of the safety score) *)
  seed : int;
}

let default_config =
  {
    max_iters = 200;
    alpha = 0.1;
    beta = 0.1;
    perturbation = 1e-3;
    gradient_mode = Coordinate;
    normalize_gradients = true;
    plateau_patience = 25;
    seed = 0;
  }

type history_point = {
  iter : int;
  scores : Metrics.scores;
  objective : float;
  verdict : Verifier.verdict;
}

type result = {
  controller : Controller.t;
  verdict : Verifier.verdict;
  iterations : int;               (* convergence iterations (CI of Table 1) *)
  verifier_calls : int;
  history : history_point list;   (* learning curve, Figs. 4 and 5 *)
  pipe : Flowpipe.t;              (* flowpipe of the returned controller *)
  skipped_probes : int;           (* probe pairs dropped for non-finite scores *)
  stopped : Dwv_error.t option;   (* budget/deadline that cut the run short *)
}

let vec_norm v = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v)

let normalize v =
  let n = vec_norm v in
  if n < 1e-12 then v else Array.map (fun x -> x /. n) v

(* Per-probe outcome of one gradient batch. *)
type probe_outcome =
  | Grad of float * float   (* (ds, dg) central differences *)
  | Skipped                 (* evaluated, but a score came back non-finite *)
  | Not_run                 (* budget stopped the sequential sweep early *)

(* Central-difference estimate of the gradients of both scores at theta.
   Total: a probe pair whose score difference is non-finite (a diverged
   pipe can grade to NaN) is dropped — skipping one direction biases the
   estimate far less than folding a NaN into every component — and a
   blown [budget] stops probing early, returning whatever accumulated.

   All probe directions are fixed BEFORE any verifier runs (SPSA draws
   its k Rademacher vectors from [rng] up front — the probes themselves
   never touch the stream, so the stream advance is identical to the
   interleaved draw), which makes the batch a pure map over directions.
   With a [pool] the verifier calls of one iteration run as a single
   parallel batch whose results land in a pre-sized array by probe
   index; the gradient is then accumulated sequentially in index order,
   so the arithmetic — and hence the θ trajectory — is bit-identical at
   any domain count. Injected-fault call indices are reserved before the
   fan-out so a fault plan addresses the same probe at any domain count.

   Returns (grad_safety, grad_goal, skipped_pairs, stop_error). *)
let estimate_gradients ?budget ?pool cfg ~rng ~evaluate ~calls theta =
  let dim = Array.length theta in
  let g_safety = Array.make dim 0.0 and g_goal = Array.make dim 0.0 in
  let p = cfg.perturbation in
  let directions =
    match cfg.gradient_mode with
    | Coordinate ->
      Array.init dim (fun i ->
          let d = Array.make dim 0.0 in
          d.(i) <- 1.0;
          d)
    | Spsa k ->
      if k < 1 then invalid_arg "Learner: Spsa needs at least one direction";
      Array.init k (fun _ -> Rng.rademacher rng dim)
  in
  let n = Array.length directions in
  let probe direction =
    let plus = Array.mapi (fun i x -> x +. (p *. direction.(i))) theta in
    let minus = Array.mapi (fun i x -> x -. (p *. direction.(i))) theta in
    let s_plus = evaluate plus and s_minus = evaluate minus in
    let ds = (s_plus.Metrics.safety -. s_minus.Metrics.safety) /. (2.0 *. p) in
    let dg = (s_plus.Metrics.goal -. s_minus.Metrics.goal) /. (2.0 *. p) in
    if Float.is_finite ds && Float.is_finite dg then Grad (ds, dg) else Skipped
  in
  let stopped = ref None in
  let outcomes =
    match pool with
    | Some pool when Pool.domains pool > 1 && n > 1 -> (
      (* one deadline/forced check gates the whole batch; per-call
         budgets are still spent (atomically) inside the verifier *)
      match
        match budget with
        | None -> Ok ()
        | Some b -> Budget.check ~where:"Learner.estimate_gradients" b
      with
      | Error e ->
        stopped := Some e;
        Array.make n Not_run
      | Ok () ->
        (* two verifier calls per probe: indices are fixed here, not by
           arrival order *)
        let base = Fault.reserve (2 * n) in
        Pool.mapi pool
          (fun i direction ->
            Fault.with_call_base ~base:(base + (2 * i)) (fun () -> probe direction))
          directions)
    | _ ->
      let out = Array.make n Not_run in
      let exception Stop of Dwv_error.t in
      (try
         for i = 0 to n - 1 do
           (match budget with
           | None -> ()
           | Some b -> (
             match Budget.check ~where:"Learner.estimate_gradients" b with
             | Ok () -> ()
             | Error e -> raise (Stop e)));
           out.(i) <- probe directions.(i)
         done
       with Stop e -> stopped := Some e);
      out
  in
  let skipped = ref 0 in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Not_run -> ()
      | Skipped ->
        calls := !calls + 2;
        incr skipped;
        Logs.debug (fun m -> m "Learner: dropping non-finite probe pair %d" i)
      | Grad (ds, dg) -> (
        calls := !calls + 2;
        match cfg.gradient_mode with
        | Coordinate ->
          g_safety.(i) <- ds;
          g_goal.(i) <- dg
        | Spsa k ->
          (* SPSA estimator: grad_i ~ df * d_i / (2p); d_i = +-1 so the
             division is a multiplication *)
          let direction = directions.(i) in
          for j = 0 to dim - 1 do
            g_safety.(j) <- g_safety.(j) +. (ds *. direction.(j) /. float_of_int k);
            g_goal.(j) <- g_goal.(j) +. (dg *. direction.(j) /. float_of_int k)
          done))
    outcomes;
  let g =
    if cfg.normalize_gradients then (normalize g_safety, normalize g_goal)
    else (g_safety, g_goal)
  in
  (fst g, snd g, !skipped, !stopped)

let learn ?(log = false) ?budget ?pool ?verify_warm cfg ~metric ~(spec : Spec.t)
    ~verify ~init =
  let rng = Rng.create cfg.seed in
  let unsafe = spec.Spec.unsafe and goal = spec.Spec.goal in
  let calls = ref 0 in
  let skipped_probes = ref 0 in
  let stopped = ref None in
  (* Incremental re-verification across probes: each iteration's central
     verification donates its Picard trace, and every probe of that
     iteration (theta +- p*d, a tiny parameter perturbation) seeds its
     Picard iterations from it; the central call itself warms from the
     previous iterate's trace. The hint is fixed data chosen BEFORE the
     probe fan-out, so the batch stays a pure map over directions and
     the theta trajectory is deterministic at any domain count.
     Soundness is untouched (see Dwv_reach.Warm). *)
  let vw =
    match verify_warm with
    | Some vw -> vw
    | None -> fun ?warm:_ c -> (verify c, None)
  in
  let evaluate_with hint theta =
    Metrics.scores metric ~unsafe ~goal
      (fst (vw ?warm:hint (Controller.with_params init theta)))
  in
  let central_warm = ref None in
  let theta = ref (Controller.params init) in
  let history = ref [] in
  (* Track the best-objective iterate: when the budget runs out without a
     formal certificate, returning the best design seen (rather than the
     last SPSA wander) is what a practitioner would deploy. *)
  let best = ref None in
  (* plateau-triggered step decay (see config) *)
  let alpha = ref cfg.alpha and beta = ref cfg.beta in
  let stagnation = ref 0 in
  let budget_blown () =
    match budget with
    | None -> false
    | Some b -> (
      match Budget.check ~where:"Learner.learn" b with
      | Ok () -> false
      | Error e ->
        if !stopped = None then stopped := Some e;
        true)
  in
  let rec iterate i =
    let controller = Controller.with_params init !theta in
    let pipe, central_trace = vw ?warm:!central_warm controller in
    central_warm := central_trace;
    incr calls;
    let verdict = Verifier.check ~unsafe ~goal pipe in
    let scores = Metrics.scores metric ~unsafe ~goal pipe in
    let objective = Metrics.objective scores in
    let point = { iter = i; scores; objective; verdict } in
    history := point :: !history;
    (match !best with
    | Some (o, _, _, _) when o >= objective -> incr stagnation
    | _ ->
      best := Some (objective, controller, pipe, verdict);
      stagnation := 0);
    if cfg.plateau_patience > 0 && !stagnation >= cfg.plateau_patience then begin
      alpha := Float.max (!alpha /. 2.0) (cfg.alpha /. 32.0);
      beta := Float.max (!beta /. 2.0) (cfg.beta /. 32.0);
      stagnation := 0
    end;
    if log then
      Logs.info (fun m ->
          m "iter %d: %a verdict=%a" i Metrics.pp_scores scores Verifier.pp_verdict verdict);
    if verdict = Verifier.Reach_avoid || i >= cfg.max_iters || budget_blown () then begin
      let controller, pipe, verdict =
        if verdict = Verifier.Reach_avoid then (controller, pipe, verdict)
        else
          match !best with
          | Some (_, c, p, v) -> (c, p, v)
          | None -> (controller, pipe, verdict)
      in
      {
        controller;
        verdict;
        iterations = i;
        verifier_calls = !calls;
        history = List.rev !history;
        pipe;
        skipped_probes = !skipped_probes;
        stopped = !stopped;
      }
    end
    else begin
      let g_safety, g_goal, skipped, stop =
        estimate_gradients ?budget ?pool cfg ~rng
          ~evaluate:(evaluate_with central_trace) ~calls !theta
      in
      skipped_probes := !skipped_probes + skipped;
      (match stop with Some e when !stopped = None -> stopped := Some e | _ -> ());
      (* theta <- theta + alpha * grad(safety) + beta * grad(goal): ascend
         both scores (the paper's line 6 with both metrics oriented
         larger-is-better) *)
      let candidate =
        Array.mapi
          (fun j x -> x +. (!alpha *. g_safety.(j)) +. (!beta *. g_goal.(j)))
          !theta
      in
      (* never let a corrupted step poison the iterate: a non-finite theta
         would make every later verifier call meaningless *)
      if Array.for_all Float.is_finite candidate then theta := candidate
      else
        Logs.warn (fun m ->
            m "Learner: discarding non-finite parameter update at iter %d" i);
      iterate (i + 1)
    end
  in
  iterate 0
