(* Falsification: search for a concrete counterexample trajectory. The
   related-work section of the paper contrasts verification-in-the-loop
   with falsification-driven design (VerifAI-style); this module provides
   the falsification half: a robustness metric over simulated traces,
   minimized by random multistart plus coordinate hill climbing over the
   initial state. A negative-robustness witness refutes safety (or
   goal-reaching) definitively - useful to justify "Unsafe" verdicts for
   baseline controllers that over-approximate verification cannot decide. *)

module Box = Dwv_interval.Box
module I = Dwv_interval.Interval
module Sampled_system = Dwv_ode.Sampled_system
module Rng = Dwv_util.Rng

(* Signed distance from a point to a box: negative inside (depth to the
   nearest face), positive outside (Euclidean gap). *)
let signed_distance (box : Box.t) x =
  let n = Box.dim box in
  if Box.contains box x then begin
    let depth = ref infinity in
    for i = 0 to n - 1 do
      let iv = Box.get box i in
      let d = Float.min (x.(i) -. I.lo iv) (I.hi iv -. x.(i)) in
      if d < !depth then depth := d
    done;
    -. !depth
  end
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let iv = Box.get box i in
      let gap = Float.max 0.0 (Float.max (I.lo iv -. x.(i)) (x.(i) -. I.hi iv)) in
      acc := !acc +. (gap *. gap)
    done;
    sqrt !acc
  end

type property =
  | Safety          (* falsified when some state enters the avoid set *)
  | Goal_reaching   (* falsified when no state ever enters the goal box *)

(* Signed distance to a union of boxes: the minimum of the per-box signed
   distances (negative inside any member, positive Euclidean gap to the
   nearest member outside all of them). *)
let avoid_distance avoid x =
  List.fold_left (fun acc box -> Float.min acc (signed_distance box x)) infinity avoid

(* Trace robustness. Safety: min over the dense trace of the distance to
   the avoid set ([avoid] defaults to the spec's single unsafe box;
   obstacle-rich scenarios pass their whole multi-box avoid list).
   Goal-reaching: -(min distance to the goal box). Both boxes are closed
   (Box.contains / Verifier.goal_step semantics), so the boundary cases
   differ: robustness 0 means *touching* — which already violates safety
   but still counts as reaching the goal. See [falsified] below. *)
let robustness ?avoid ~sys ~controller ~(spec : Spec.t) ~property x0 =
  let avoid = match avoid with Some l -> l | None -> [ spec.Spec.unsafe ] in
  let trace = Sampled_system.simulate sys ~controller ~x0 ~steps:spec.Spec.steps in
  match property with
  | Safety ->
    Array.fold_left
      (fun acc x -> Float.min acc (avoid_distance avoid x))
      infinity trace.Sampled_system.dense
  | Goal_reaching ->
    let closest =
      Array.fold_left
        (fun acc x -> Float.min acc (signed_distance spec.Spec.goal x))
        infinity trace.Sampled_system.dense
    in
    -.closest

type counterexample = {
  x0 : float array;        (* falsifying initial state (inside X_0) *)
  robustness : float;      (* the (negative) achieved robustness *)
  property : property;
}

(* Coordinate hill climbing within X_0, shrinking the step geometrically. *)
let refine ?avoid ~sys ~controller ~spec ~property ~iters x0 =
  let x = Array.copy x0 in
  let n = Array.length x in
  let rob = ref (robustness ?avoid ~sys ~controller ~spec ~property x) in
  let widths = Box.widths spec.Spec.x0 in
  let lo = Box.lo spec.Spec.x0 and hi = Box.hi spec.Spec.x0 in
  let step = ref 0.25 in
  for _ = 1 to iters do
    for i = 0 to n - 1 do
      let try_delta d =
        let old = x.(i) in
        x.(i) <- Dwv_util.Floatx.clamp ~lo:lo.(i) ~hi:hi.(i) (old +. d);
        let r = robustness ?avoid ~sys ~controller ~spec ~property x in
        if r < !rob then rob := r else x.(i) <- old
      in
      let d = !step *. widths.(i) in
      try_delta d;
      try_delta (-.d)
    done;
    step := !step *. 0.6
  done;
  (x, !rob)

(* Closed-box boundary semantics: a trace touching the avoid set is
   unsafe (r = 0 falsifies Safety), but a trace touching the goal box has
   reached it (Goal_reaching needs r < 0 strictly — otherwise the hill
   climber "falsifies" scenarios whose trajectories merely graze a goal
   face, e.g. an uncertain parameter pushed to its range edge inside the
   augmented goal). *)
let falsified ~property r =
  match property with Safety -> r <= 0.0 | Goal_reaching -> r < 0.0

let search ?(attempts = 50) ?(refine_iters = 8) ?avoid ~rng ~sys ~controller
    ~(spec : Spec.t) ~property () =
  (* random multistart, keep the most promising candidate *)
  let best_x = ref (Box.center spec.Spec.x0) in
  let best_r = ref (robustness ?avoid ~sys ~controller ~spec ~property !best_x) in
  for _ = 2 to attempts do
    let x0 = Box.sample rng spec.Spec.x0 in
    let r = robustness ?avoid ~sys ~controller ~spec ~property x0 in
    if r < !best_r then begin
      best_r := r;
      best_x := x0
    end
  done;
  let x, r =
    if falsified ~property !best_r then (!best_x, !best_r)
    else refine ?avoid ~sys ~controller ~spec ~property ~iters:refine_iters !best_x
  in
  if falsified ~property r then Some { x0 = x; robustness = r; property }
  else None

let pp_counterexample ppf c =
  Fmt.pf ppf "%s falsified from x0 = [%a] (robustness %.4g)"
    (match c.property with Safety -> "safety" | Goal_reaching -> "goal-reaching")
    Fmt.(array ~sep:comma (fmt "%g"))
    c.x0 c.robustness
