(** Algorithm 2: search for the reach-avoid initial set X_I ⊆ X₀ on which
    goal-reaching is formally certified (adaptive bisection refinement of
    the paper's even-partition scheme). *)

type result = {
  verified : Dwv_interval.Box.t list;  (** the cells of X_I *)
  rejected : Dwv_interval.Box.t list;  (** failed at maximal depth *)
  coverage : float;                    (** |X_I| / |X₀| *)
  verifier_calls : int;
  stopped : Dwv_robust.Dwv_error.t option;
      (** budget/deadline exhaustion that cut the search short; remaining
          cells were conservatively rejected (X_I only shrinks) *)
}

(** [search ~verify ~goal ~x0 ()] certifies cells whose flowpipe has some
    sample-instant enclosure inside [goal]; failing cells are bisected up
    to [max_depth] (default 4). [verify] runs the verifier from an
    arbitrary initial cell. When [budget] is exhausted mid-search the
    unexplored cells are rejected and [stopped] records why (the budget
    is checked at refinement-level boundaries, so the stop point is
    deterministic).

    With [pool], each refinement level's frontier is verified as one
    parallel batch; results are consumed in cell order, so the certified
    set, coverage and call count are identical at any domain count
    ([verify] must be domain-safe).

    With [verify_warm] (which then supersedes [verify]), the search
    passes each cell the warm-start trace its parent's verification
    returned and enqueues the returned trace with the cell's children:
    a child's Picard iterations re-verify incrementally against the
    parent's enclosures instead of cold-starting. Traces are attached
    before each fan-out, so results stay deterministic at any domain
    count; soundness is untouched (every hinted iteration passes the
    cold path's contraction test, see {!Dwv_reach.Warm}). *)
val search :
  ?max_depth:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?verify_warm:
    (?warm:Dwv_reach.Warm.t ->
     Dwv_interval.Box.t ->
     Dwv_reach.Flowpipe.t * Dwv_reach.Warm.t option) ->
  verify:(Dwv_interval.Box.t -> Dwv_reach.Flowpipe.t) ->
  goal:Dwv_interval.Box.t ->
  x0:Dwv_interval.Box.t ->
  unit ->
  result

(** The paper's literal even-partition scheme: rounds of 2^r cells per
    dimension up to [max_rounds] (default 4), stopping when a round adds
    no coverage. Same limit behaviour as {!search}, more verifier calls;
    kept for fidelity and as a test oracle. [pool] parallelizes each
    round's fresh-cell batch, with the same determinism contract as
    {!search}. *)
val search_even :
  ?max_rounds:int ->
  ?pool:Dwv_parallel.Pool.t ->
  verify:(Dwv_interval.Box.t -> Dwv_reach.Flowpipe.t) ->
  goal:Dwv_interval.Box.t ->
  x0:Dwv_interval.Box.t ->
  unit ->
  result

val pp_result : Format.formatter -> result -> unit
