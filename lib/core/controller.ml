(* Controllers as parameter vectors.

   Algorithm 1 is agnostic to the controller family: it perturbs and
   updates a flat theta. This module gives the two families of the paper —
   linear state feedback (possibly with a bias term, represented on a
   constant-augmented state) and neural networks — a common flatten /
   unflatten / evaluate interface. *)

module Mat = Dwv_la.Mat
module Mlp = Dwv_nn.Mlp

type t =
  | Linear of { gain : Mat.t }                       (* u = K x *)
  | Net of { net : Mlp.t; output_scale : float }     (* u = s * net(x) *)

let linear gain = Linear { gain }

let net ~output_scale n = Net { net = n; output_scale }

let num_params = function
  | Linear { gain } ->
    let r, c = Mat.dims gain in
    r * c
  | Net { net; _ } -> Mlp.num_params net

(* Flat parameter vector (row-major gain, or the MLP layout). *)
let params = function
  | Linear { gain } ->
    let r, c = Mat.dims gain in
    Array.init (r * c) (fun k -> Mat.get gain (k / c) (k mod c))
  | Net { net; _ } -> Mlp.flatten net

let with_params t theta =
  match t with
  | Linear { gain } ->
    let r, c = Mat.dims gain in
    if Array.length theta <> r * c then invalid_arg "Controller.with_params: wrong length";
    Linear { gain = Mat.init r c (fun i j -> theta.((i * c) + j)) }
  | Net { net; output_scale } -> Net { net = Mlp.unflatten net theta; output_scale }

(* Concrete control law, for simulation. *)
let eval t x =
  match t with
  | Linear { gain } -> Mat.matvec gain x
  | Net { net; output_scale } ->
    Array.map (fun v -> output_scale *. v) (Mlp.forward net x)

let n_outputs = function
  | Linear { gain } -> fst (Mat.dims gain)
  | Net { net; _ } -> Mlp.n_out net

let pp ppf = function
  | Linear { gain } -> Fmt.pf ppf "linear%a" Mat.pp gain
  | Net { net; output_scale } -> Fmt.pf ppf "%a * %g" Mlp.pp net output_scale

(* Plain-text persistence, so the CLI can save learned designs and reload
   them for certification or deployment. Exact float round-trips. *)
let to_string = function
  | Linear { gain } ->
    let r, c = Mat.dims gain in
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Printf.sprintf "controller linear %d %d\n" r c);
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        if j > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf (Printf.sprintf "%.17g" (Mat.get gain i j))
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  | Net { net; output_scale } ->
    Printf.sprintf "controller net %.17g\n%s" output_scale (Dwv_nn.Serialize.mlp_to_string net)

let float_field s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> failwith ("Controller.of_string: invalid float " ^ s)

let of_string text =
  match String.index_opt text '\n' with
  | None -> failwith "Controller.of_string: missing header"
  | Some nl -> (
    let header = String.sub text 0 nl in
    let body = String.sub text (nl + 1) (String.length text - nl - 1) in
    match String.split_on_char ' ' (String.trim header) with
    | [ "controller"; "linear"; r; c ] ->
      let r = int_of_string r and c = int_of_string c in
      let values =
        body
        |> String.split_on_char '\n'
        |> List.concat_map (String.split_on_char ' ')
        |> List.filter (fun s -> String.trim s <> "")
        |> List.map float_field
        |> Array.of_list
      in
      if Array.length values <> r * c then failwith "Controller.of_string: bad gain size";
      Linear { gain = Mat.init r c (fun i j -> values.((i * c) + j)) }
    | [ "controller"; "net"; scale ] ->
      Net { net = Dwv_nn.Serialize.mlp_of_string body; output_scale = float_field scale }
    | _ -> failwith "Controller.of_string: unrecognized header")

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string text
