(** Falsification: concrete counterexample search by robustness
    minimization (random multistart + coordinate hill climbing over X₀).
    A found counterexample definitively refutes the property — the
    complement of the verifier's sound-but-incomplete positive verdicts. *)

(** Signed distance from a point to a box: negative inside. *)
val signed_distance : Dwv_interval.Box.t -> float array -> float

type property =
  | Safety          (** falsified when some state enters the avoid set *)
  | Goal_reaching   (** falsified when no state ever enters the goal box *)

(** Signed distance to a union of boxes (min of per-box distances);
    negative inside any member. *)
val avoid_distance : Dwv_interval.Box.t list -> float array -> float

(** Trace robustness of one rollout; positive iff the property holds
    with margin. Boxes are closed, so robustness 0 (touching) falsifies
    [Safety] but still satisfies [Goal_reaching] — {!search} applies the
    matching per-property threshold. [avoid] is the multi-box avoid set
    for [Safety] (default: the spec's single unsafe box). *)
val robustness :
  ?avoid:Dwv_interval.Box.t list ->
  sys:Dwv_ode.Sampled_system.t ->
  controller:(float array -> float array) ->
  spec:Spec.t ->
  property:property ->
  float array ->
  float

type counterexample = {
  x0 : float array;
  robustness : float;
  property : property;
}

(** Coordinate hill climbing within X₀ from a candidate initial state:
    [iters] sweeps with a geometrically shrinking step, clamped to the
    box. Returns the refined state and its (lower or equal) robustness —
    the counterexample-shrinking half of {!search}, exposed for direct
    testing. *)
val refine :
  ?avoid:Dwv_interval.Box.t list ->
  sys:Dwv_ode.Sampled_system.t ->
  controller:(float array -> float array) ->
  spec:Spec.t ->
  property:property ->
  iters:int ->
  float array ->
  float array * float

(** [search ~rng ~sys ~controller ~spec ~property ()] returns a concrete
    falsifying initial state, or [None] if none was found within
    [attempts] (default 50) starts and [refine_iters] (default 8)
    hill-climbing sweeps. [avoid] as in {!robustness}. *)
val search :
  ?attempts:int ->
  ?refine_iters:int ->
  ?avoid:Dwv_interval.Box.t list ->
  rng:Dwv_util.Rng.t ->
  sys:Dwv_ode.Sampled_system.t ->
  controller:(float array -> float array) ->
  spec:Spec.t ->
  property:property ->
  unit ->
  counterexample option

val pp_counterexample : Format.formatter -> counterexample -> unit
