(* Reach-avoid specifications (Definition 1): starting anywhere in the
   initial set, never touch the unsafe set within the horizon and be
   provably inside the goal set at some sample instant. All three sets are
   boxes, exactly as in the paper's experiments. *)

module Box = Dwv_interval.Box

type t = {
  name : string;
  x0 : Box.t;          (* initial set X_0 *)
  unsafe : Box.t;      (* unsafe set X_u *)
  goal : Box.t;        (* goal set X_g *)
  delta : float;       (* sampling period *)
  steps : int;         (* horizon T = steps * delta *)
}

let make ~name ~x0 ~unsafe ~goal ~delta ~steps =
  if delta <= 0.0 then invalid_arg "Spec.make: delta must be positive";
  if steps < 1 then invalid_arg "Spec.make: need at least one step";
  let d = Box.dim x0 in
  if Box.dim unsafe <> d || Box.dim goal <> d then
    invalid_arg "Spec.make: all sets must share the state dimension";
  { name; x0; unsafe; goal; delta; steps }

let horizon t = t.delta *. float_of_int t.steps

let dim t = Box.dim t.x0

(* Pointwise checks used by the Monte-Carlo evaluation. *)
let point_safe t x = not (Box.contains t.unsafe x)

let point_in_goal t x = Box.contains t.goal x

let pp ppf t =
  Fmt.pf ppf "@[<v>%s:@ X0 = %a@ Xu = %a@ Xg = %a@ delta = %g, steps = %d (T = %g)@]"
    t.name Box.pp t.x0 Box.pp t.unsafe Box.pp t.goal t.delta t.steps (horizon t)

(* ---- exact text serialization ----

   Every float is written as the 16-hex-digit Int64 bit pattern of its
   IEEE-754 representation (the same trick the certificate format uses),
   so round-trips are bit-perfect — including -0., subnormals and NaN
   payloads — where a %g pretty-print would lose mantissa bits. *)

let float_bits v = Fmt.str "%016Lx" (Int64.bits_of_float v)

let float_of_bits_str ~what s =
  if String.length s <> 16 then
    failwith (Fmt.str "Spec.of_string: %s: expected 16 hex digits, got %S" what s);
  match Int64.of_string_opt ("0x" ^ s) with
  | Some b -> Int64.float_of_bits b
  | None -> failwith (Fmt.str "Spec.of_string: %s: bad float bit pattern %S" what s)

let box_fields b =
  let lo = Box.lo b and hi = Box.hi b in
  String.concat " "
    (List.concat (List.init (Box.dim b) (fun i -> [ float_bits lo.(i); float_bits hi.(i) ])))

let box_of_fields ~what fields =
  let n = List.length fields in
  if n = 0 || n mod 2 <> 0 then
    failwith (Fmt.str "Spec.of_string: %s: expected an even, positive number of words" what);
  let words = Array.of_list fields in
  let dim = n / 2 in
  let lo = Array.init dim (fun i -> float_of_bits_str ~what words.(2 * i)) in
  let hi = Array.init dim (fun i -> float_of_bits_str ~what words.(2 * i + 1)) in
  Box.make ~lo ~hi

let to_string t =
  String.concat "\n"
    [
      "spec/1";
      "name " ^ t.name;
      "delta " ^ float_bits t.delta;
      "steps " ^ string_of_int t.steps;
      "x0 " ^ box_fields t.x0;
      "unsafe " ^ box_fields t.unsafe;
      "goal " ^ box_fields t.goal;
      "";
    ]

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let field key line =
    let prefix = key ^ " " in
    let pl = String.length prefix in
    if String.length line > pl && String.sub line 0 pl = prefix then
      String.sub line pl (String.length line - pl)
    else failwith (Fmt.str "Spec.of_string: expected %S line, got %S" key line)
  in
  match lines with
  | [ header; name_l; delta_l; steps_l; x0_l; unsafe_l; goal_l ] ->
    if header <> "spec/1" then
      failwith (Fmt.str "Spec.of_string: bad header %S (expected \"spec/1\")" header);
    let name = field "name" name_l in
    let delta = float_of_bits_str ~what:"delta" (field "delta" delta_l) in
    let steps =
      match int_of_string_opt (field "steps" steps_l) with
      | Some n -> n
      | None -> failwith (Fmt.str "Spec.of_string: bad steps line %S" steps_l)
    in
    let box key line =
      box_of_fields ~what:key
        (String.split_on_char ' ' (field key line) |> List.filter (fun w -> w <> ""))
    in
    let x0 = box "x0" x0_l in
    let unsafe = box "unsafe" unsafe_l in
    let goal = box "goal" goal_l in
    (try make ~name ~x0 ~unsafe ~goal ~delta ~steps
     with Invalid_argument m -> failwith ("Spec.of_string: " ^ m))
  | _ -> failwith "Spec.of_string: expected 7 non-empty lines (spec/1 format)"
