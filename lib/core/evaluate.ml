(* Experimental (simulation-based) evaluation: the SC and GR columns of
   Table 1. The system is discretized with zero-order hold and simulated
   from random initial states; a rollout is SAFE when no (densely sampled)
   state enters the unsafe box, and GOAL-REACHING when some state enters
   the goal box within the horizon. The paper uses 500 rollouts. *)

module Box = Dwv_interval.Box
module Sampled_system = Dwv_ode.Sampled_system
module Rng = Dwv_util.Rng
module Stats = Dwv_util.Stats
module Pool = Dwv_parallel.Pool

type rollout = { safe : bool; reached : bool; trace : Sampled_system.trace }

let point_finite p = Array.for_all Float.is_finite p

let rollout ?substeps ?avoid ~sys ~controller ~(spec : Spec.t) x0 =
  let avoid = match avoid with Some l -> l | None -> [ spec.Spec.unsafe ] in
  let trace = Sampled_system.simulate ?substeps sys ~controller ~x0 ~steps:spec.Spec.steps in
  (* a NaN state would vacuously pass the box membership tests (NaN
     compares false against every bound), counting a blown-up simulation
     as safe; a non-finite trajectory is unsafe and never goal-reaching *)
  let safe =
    Array.for_all
      (fun p -> point_finite p && not (List.exists (fun b -> Box.contains b p) avoid))
      trace.Sampled_system.dense
  in
  let reached =
    Array.exists
      (fun p -> point_finite p && Spec.point_in_goal spec p)
      trace.Sampled_system.dense
  in
  { safe; reached; trace }

type rates = { safe_percent : float; goal_percent : float; n : int }

let rates ?(n = 500) ?substeps ?avoid ?pool ~rng ~sys ~controller ~spec () =
  if n < 1 then invalid_arg "Evaluate.rates: need at least one rollout";
  (* one child stream per rollout, split from [rng] before any simulation:
     rollout i's initial state is a pure function of the parent seed and i,
     so the rates are bit-identical whether the rollouts run sequentially
     or sharded across domains (and the parent stream advances the same
     either way) *)
  let streams = Rng.split_n rng n in
  let one i =
    let x0 = Box.sample streams.(i) spec.Spec.x0 in
    let r = rollout ?substeps ?avoid ~sys ~controller ~spec x0 in
    (r.safe, r.reached)
  in
  let indices = Array.init n (fun i -> i) in
  let outcomes =
    match pool with
    | Some pool when Pool.domains pool > 1 && n > 1 -> Pool.map pool one indices
    | _ -> Array.map one indices
  in
  {
    safe_percent = Stats.rate_percent (Array.map fst outcomes);
    goal_percent = Stats.rate_percent (Array.map snd outcomes);
    n;
  }

(* A single concrete counterexample to safety, if one of [n] random
   rollouts finds it (used to justify "Unsafe" verdicts for baselines the
   formal analysis cannot decide). *)
let find_unsafe_rollout ?(n = 500) ?substeps ~rng ~sys ~controller ~spec () =
  let rec loop i =
    if i >= n then None
    else begin
      let x0 = Box.sample rng spec.Spec.x0 in
      let r = rollout ?substeps ~sys ~controller ~spec x0 in
      if not r.safe then Some x0 else loop (i + 1)
    end
  in
  loop 0

let pp_rates ppf r =
  Fmt.pf ppf "SC = %.1f%%, GR = %.1f%% (n = %d)" r.safe_percent r.goal_percent r.n
