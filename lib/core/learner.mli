(** Algorithm 1: verification-in-the-loop control learning with the
    difference-method gradient of Eq. (5). *)

type gradient_mode =
  | Coordinate   (** exact central differences, 2·dim verifier calls/iter *)
  | Spsa of int  (** k random ±1 direction pairs, 2·k calls/iter *)

type config = {
  max_iters : int;            (** N of Algorithm 1 *)
  alpha : float;              (** step length on the safety score *)
  beta : float;               (** step length on the goal score *)
  perturbation : float;       (** p of the difference method *)
  gradient_mode : gradient_mode;
  normalize_gradients : bool; (** treat α/β as trust-region step sizes *)
  plateau_patience : int;
      (** halve the step sizes after this many iterations without
          objective improvement (0 disables); prevents cycling around
          kinks such as the safety-score saturation boundary *)
  seed : int;
}

(** 200 iterations, α = β = 0.1, p = 1e-3, coordinate gradients,
    normalized, patience 25, seed 0. *)
val default_config : config

type history_point = {
  iter : int;
  scores : Metrics.scores;
  objective : float;
  verdict : Dwv_reach.Verifier.verdict;
}

type result = {
  controller : Controller.t;
  verdict : Dwv_reach.Verifier.verdict;
  iterations : int;             (** convergence iterations (Table 1 CI) *)
  verifier_calls : int;
  history : history_point list; (** learning curve (Figs. 4/5) *)
  pipe : Dwv_reach.Flowpipe.t;  (** flowpipe of the returned controller *)
  skipped_probes : int;
      (** gradient probe pairs dropped because a score was non-finite *)
  stopped : Dwv_robust.Dwv_error.t option;
      (** deadline/budget exhaustion that cut the run short, if any *)
}

(** Run Algorithm 1. [verify] is the verifier Ψ closed over the system;
    [init] provides both the controller family and the initial θ. Stops at
    the first formally proved reach-avoid verdict or after
    [cfg.max_iters]; in the latter case the best-objective iterate (not
    the last) is returned. Total under misbehaving verifiers: non-finite
    probe scores are skipped (not folded into the gradient), a parameter
    update that would produce non-finite θ is discarded, and when
    [budget] runs out the best iterate so far is returned with [stopped]
    set.

    With [pool], each iteration's gradient probes (the independent
    verifier calls of Eq. (5)) run as one parallel batch; results are
    combined in probe-index order, so the θ trajectory, iteration count
    and verdict are bit-identical at any domain count. [verify] must
    then be safe to call from several domains at once (every bundled
    verifier is).

    With [verify_warm] (which then supersedes [verify]), verification is
    incremental across probes: each iteration's central call donates its
    Picard trace ({!Dwv_reach.Warm}), every probe of that iteration
    seeds from it, and the central call itself seeds from the previous
    iterate's. The hint is fixed before the probe fan-out, so the θ
    trajectory stays deterministic at any domain count; soundness never
    rests on a hint. *)
val learn :
  ?log:bool ->
  ?budget:Dwv_robust.Budget.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?verify_warm:
    (?warm:Dwv_reach.Warm.t ->
     Controller.t ->
     Dwv_reach.Flowpipe.t * Dwv_reach.Warm.t option) ->
  config ->
  metric:Metrics.kind ->
  spec:Spec.t ->
  verify:(Controller.t -> Dwv_reach.Flowpipe.t) ->
  init:Controller.t ->
  result
