(* Algorithm 2: searching the reach-avoid initial set X_I.

   After Algorithm 1 returns a controller, safety already holds for the
   whole of X_0 (it was checked on the full flowpipe), but formal
   goal-reaching may only hold for part of X_0 because of the intersection
   semantics of the metric and the over-approximation of the reachable
   set. The paper partitions X_0 evenly into P cells and grows P; we
   refine adaptively instead (bisect the cells that fail), which visits
   the same limit partition while spending verifier calls only where
   needed. A cell is certified when some sample-instant enclosure of its
   flowpipe lies entirely inside the goal.

   Refinement proceeds level by level: all cells of one depth form a
   frontier whose verifier calls are independent, so with a [pool] they
   run as one parallel batch. Results are consumed in cell order (the
   frontier is an array, workers write by index), which makes the
   certified set, the coverage sum and the call count identical at any
   domain count. *)

module Box = Dwv_interval.Box
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe
module Fault = Dwv_robust.Fault
module Pool = Dwv_parallel.Pool

(* Verify one frontier of cells, one verifier call per cell, results in
   cell order. Fault-plan call indices are reserved before the fan-out
   so an injected fault lands on the same cell at any domain count. *)
let verify_frontier ?pool ~verify cells =
  match pool with
  | Some pool when Pool.domains pool > 1 && Array.length cells > 1 ->
    let base = Fault.reserve (Array.length cells) in
    Pool.mapi pool
      (fun i cell -> Fault.with_call_base ~base:(base + i) (fun () -> verify cell))
      cells
  | _ -> Array.map verify cells

type result = {
  verified : Box.t list;   (* cells making up X_I *)
  rejected : Box.t list;   (* cells that failed at maximal depth *)
  coverage : float;        (* |X_I| / |X_0| *)
  verifier_calls : int;
  stopped : Dwv_robust.Dwv_error.t option;  (* budget cut the search short *)
}

let search ?(max_depth = 4) ?budget ?pool ?verify_warm ~verify ~goal ~x0 () =
  let calls = ref 0 in
  let verified = ref [] and rejected = ref [] in
  let stopped = ref None in
  (* Incremental re-verification: the frontier carries each cell's
     warm-start trace — the Picard enclosures its PARENT's verification
     recorded. A child cell is half its parent, so the parent's
     enclosures all but contain the child's flow and its Picard
     iterations contract immediately; a stale trace only costs a few
     wasted iterations (see Taylor_reach.apriori_enclosure). Traces are
     attached when children are enqueued — before the next fan-out — so
     hint assignment is deterministic at any domain count. *)
  let vw =
    match verify_warm with
    | Some vw -> vw
    | None -> fun ?warm:_ cell -> (verify cell, None)
  in
  (* out of budget: the remaining cells are conservatively rejected — X_I
     only shrinks, the certificate on the certified cells still stands.
     Checked once per refinement level (between fan-outs), never inside
     one, so the stop point is a deterministic frontier boundary. *)
  let blown () =
    match budget with
    | None -> false
    | Some b -> (
      !stopped <> None
      ||
      match Dwv_robust.Budget.check ~where:"Initset.search" b with
      | Ok () -> false
      | Error e ->
        stopped := Some e;
        true)
  in
  let rec refine depth frontier =
    match frontier with
    | [] -> ()
    | _ when blown () ->
      rejected := List.rev_append (List.map fst frontier) !rejected
    | _ ->
      let cells = Array.of_list frontier in
      let results =
        verify_frontier ?pool ~verify:(fun (cell, warm) -> vw ?warm cell) cells
      in
      calls := !calls + Array.length cells;
      let next = ref [] in
      Array.iteri
        (fun i (pipe, trace) ->
          let cell = fst cells.(i) in
          let ok =
            (not (Flowpipe.diverged pipe)) && Verifier.goal_step ~goal pipe <> None
          in
          if ok then verified := cell :: !verified
          else if depth >= max_depth then rejected := cell :: !rejected
          else begin
            let left, right = Box.bisect cell in
            next := (right, trace) :: (left, trace) :: !next
          end)
        results;
      refine (depth + 1) (List.rev !next)
  in
  refine 0 [ (x0, None) ];
  let covered = List.fold_left (fun acc b -> acc +. Box.volume b) 0.0 !verified in
  let total = Box.volume x0 in
  {
    verified = !verified;
    rejected = !rejected;
    coverage = (if total > 0.0 then covered /. total else 0.0);
    verifier_calls = !calls;
    stopped = !stopped;
  }

(* The paper's literal Algorithm 2: evenly partition X_0 into P^n cells,
   certify each, then increase P and retry on the uncovered remainder,
   stopping when a round adds no coverage (or the round budget is spent).
   The adaptive [search] above visits the same limit partition with fewer
   verifier calls; this variant exists for fidelity and as a test oracle
   against it. *)
let search_even ?(max_rounds = 4) ?pool ~verify ~goal ~x0 () =
  let calls = ref 0 in
  let verified = ref [] in
  let covered cell = List.exists (fun b -> Box.subset cell b) !verified in
  let n = Box.dim x0 in
  let rejected_last = ref [] in
  (try
     for round = 0 to max_rounds - 1 do
       let parts = Array.make n (1 lsl round) in
       let cells = Box.partition parts x0 in
       let fresh = Array.of_list (List.filter (fun c -> not (covered c)) cells) in
       let pipes = verify_frontier ?pool ~verify fresh in
       calls := !calls + Array.length fresh;
       rejected_last := [];
       let added = ref 0 in
       Array.iteri
         (fun i pipe ->
           let cell = fresh.(i) in
           let ok =
             (not (Flowpipe.diverged pipe)) && Verifier.goal_step ~goal pipe <> None
           in
           if ok then begin
             verified := cell :: !verified;
             incr added
           end
           else rejected_last := cell :: !rejected_last)
         pipes;
       if !added = 0 && round > 0 then raise Exit
     done
   with Exit -> ());
  (* coverage is computed against the finest grid: accepted cells from
     different rounds can nest, so recounting on the finest partition
     avoids double counting *)
  let finest = Box.partition (Array.make n (1 lsl (max_rounds - 1))) x0 in
  let fine_covered =
    List.filter (fun c -> List.exists (fun b -> Box.subset c b) !verified) finest
  in
  let fine_volume = List.fold_left (fun acc b -> acc +. Box.volume b) 0.0 fine_covered in
  let total = Box.volume x0 in
  {
    verified = !verified;
    rejected = !rejected_last;
    coverage = (if total > 0.0 then fine_volume /. total else 0.0);
    verifier_calls = !calls;
    stopped = None;
  }

(* Pretty-print X_I as a union of boxes (the form used in the captions of
   Figs. 6-8). *)
let pp_result ppf r =
  Fmt.pf ppf "@[<v>X_I coverage = %.1f%% (%d cells, %d verifier calls)" (100.0 *. r.coverage)
    (List.length r.verified) r.verifier_calls;
  List.iter (fun b -> Fmt.pf ppf "@,  %a" Box.pp b) r.verified;
  Fmt.pf ppf "@]"
