(* Algorithm 2: searching the reach-avoid initial set X_I.

   After Algorithm 1 returns a controller, safety already holds for the
   whole of X_0 (it was checked on the full flowpipe), but formal
   goal-reaching may only hold for part of X_0 because of the intersection
   semantics of the metric and the over-approximation of the reachable
   set. The paper partitions X_0 evenly into P cells and grows P; we
   refine adaptively instead (bisect the cells that fail), which visits
   the same limit partition while spending verifier calls only where
   needed. A cell is certified when some sample-instant enclosure of its
   flowpipe lies entirely inside the goal. *)

module Box = Dwv_interval.Box
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe

type result = {
  verified : Box.t list;   (* cells making up X_I *)
  rejected : Box.t list;   (* cells that failed at maximal depth *)
  coverage : float;        (* |X_I| / |X_0| *)
  verifier_calls : int;
  stopped : Dwv_robust.Dwv_error.t option;  (* budget cut the search short *)
}

let search ?(max_depth = 4) ?budget ~verify ~goal ~x0 () =
  let calls = ref 0 in
  let verified = ref [] and rejected = ref [] in
  let stopped = ref None in
  (* out of budget: the remaining cells are conservatively rejected — X_I
     only shrinks, the certificate on the certified cells still stands *)
  let blown () =
    match budget with
    | None -> false
    | Some b -> (
      !stopped <> None
      ||
      match Dwv_robust.Budget.check ~where:"Initset.search" b with
      | Ok () -> false
      | Error e ->
        stopped := Some e;
        true)
  in
  let rec explore cell depth =
    if blown () then rejected := cell :: !rejected
    else begin
      let pipe = verify cell in
      incr calls;
      let ok =
        (not (Flowpipe.diverged pipe)) && Verifier.goal_step ~goal pipe <> None
      in
      if ok then verified := cell :: !verified
      else if depth >= max_depth then rejected := cell :: !rejected
      else begin
        let left, right = Box.bisect cell in
        explore left (depth + 1);
        explore right (depth + 1)
      end
    end
  in
  explore x0 0;
  let covered = List.fold_left (fun acc b -> acc +. Box.volume b) 0.0 !verified in
  let total = Box.volume x0 in
  {
    verified = !verified;
    rejected = !rejected;
    coverage = (if total > 0.0 then covered /. total else 0.0);
    verifier_calls = !calls;
    stopped = !stopped;
  }

(* The paper's literal Algorithm 2: evenly partition X_0 into P^n cells,
   certify each, then increase P and retry on the uncovered remainder,
   stopping when a round adds no coverage (or the round budget is spent).
   The adaptive [search] above visits the same limit partition with fewer
   verifier calls; this variant exists for fidelity and as a test oracle
   against it. *)
let search_even ?(max_rounds = 4) ~verify ~goal ~x0 () =
  let calls = ref 0 in
  let verified = ref [] in
  let cell_ok cell =
    incr calls;
    let pipe = verify cell in
    (not (Flowpipe.diverged pipe)) && Verifier.goal_step ~goal pipe <> None
  in
  let covered cell = List.exists (fun b -> Box.subset cell b) !verified in
  let n = Box.dim x0 in
  let rejected_last = ref [] in
  (try
     for round = 0 to max_rounds - 1 do
       let parts = Array.make n (1 lsl round) in
       let cells = Box.partition parts x0 in
       let fresh = List.filter (fun c -> not (covered c)) cells in
       rejected_last := [];
       let added = ref 0 in
       List.iter
         (fun cell ->
           if cell_ok cell then begin
             verified := cell :: !verified;
             incr added
           end
           else rejected_last := cell :: !rejected_last)
         fresh;
       if !added = 0 && round > 0 then raise Exit
     done
   with Exit -> ());
  (* coverage is computed against the finest grid: accepted cells from
     different rounds can nest, so recounting on the finest partition
     avoids double counting *)
  let finest = Box.partition (Array.make n (1 lsl (max_rounds - 1))) x0 in
  let fine_covered =
    List.filter (fun c -> List.exists (fun b -> Box.subset c b) !verified) finest
  in
  let fine_volume = List.fold_left (fun acc b -> acc +. Box.volume b) 0.0 fine_covered in
  let total = Box.volume x0 in
  {
    verified = !verified;
    rejected = !rejected_last;
    coverage = (if total > 0.0 then fine_volume /. total else 0.0);
    verifier_calls = !calls;
    stopped = None;
  }

(* Pretty-print X_I as a union of boxes (the form used in the captions of
   Figs. 6-8). *)
let pp_result ppf r =
  Fmt.pf ppf "@[<v>X_I coverage = %.1f%% (%d cells, %d verifier calls)" (100.0 *. r.coverage)
    (List.length r.verified) r.verifier_calls;
  List.iter (fun b -> Fmt.pf ppf "@,  %a" Box.pp b) r.verified;
  Fmt.pf ppf "@]"
