(** Simulation-based evaluation (the SC / GR columns of Table 1): Monte
    Carlo rollouts of the discretized closed loop. *)

type rollout = {
  safe : bool;     (** no densely-sampled state entered the avoid set *)
  reached : bool;  (** some state entered the goal box within the horizon *)
  trace : Dwv_ode.Sampled_system.trace;
}

(** One rollout from a concrete initial state. [avoid] is the multi-box
    avoid set (default: the spec's single unsafe box); a non-finite
    trajectory is conservatively unsafe and never goal-reaching. *)
val rollout :
  ?substeps:int ->
  ?avoid:Dwv_interval.Box.t list ->
  sys:Dwv_ode.Sampled_system.t ->
  controller:(float array -> float array) ->
  spec:Spec.t ->
  float array ->
  rollout

type rates = { safe_percent : float; goal_percent : float; n : int }

(** Safe-control and goal-reaching percentages over [n] (default 500)
    uniformly sampled initial states. Each rollout draws its initial
    state from its own child stream ([Rng.split_n] of [rng]), so with
    [pool] the rollouts shard across domains and the rates stay
    bit-identical at any domain count. *)
val rates :
  ?n:int ->
  ?substeps:int ->
  ?avoid:Dwv_interval.Box.t list ->
  ?pool:Dwv_parallel.Pool.t ->
  rng:Dwv_util.Rng.t ->
  sys:Dwv_ode.Sampled_system.t ->
  controller:(float array -> float array) ->
  spec:Spec.t ->
  unit ->
  rates

(** First sampled initial state whose rollout violates safety, if any. *)
val find_unsafe_rollout :
  ?n:int ->
  ?substeps:int ->
  rng:Dwv_util.Rng.t ->
  sys:Dwv_ode.Sampled_system.t ->
  controller:(float array -> float array) ->
  spec:Spec.t ->
  unit ->
  float array option

val pp_rates : Format.formatter -> rates -> unit
