(** Reach-avoid specifications (Definition 1 of the paper): box-shaped
    initial, unsafe and goal sets over a sampled horizon. *)

type t = {
  name : string;
  x0 : Dwv_interval.Box.t;
  unsafe : Dwv_interval.Box.t;
  goal : Dwv_interval.Box.t;
  delta : float;
  steps : int;
}

(** Build with validation (positive delta, at least one step, matching
    dimensions). *)
val make :
  name:string ->
  x0:Dwv_interval.Box.t ->
  unsafe:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  delta:float ->
  steps:int ->
  t

(** Time horizon T = steps · delta. *)
val horizon : t -> float

(** State dimension of the specification sets. *)
val dim : t -> int

(** Is this concrete state outside the unsafe box? *)
val point_safe : t -> float array -> bool

(** Is this concrete state inside the goal box? *)
val point_in_goal : t -> float array -> bool

val pp : Format.formatter -> t -> unit

(** {1 Exact text serialization}

    Floats are written as 16-hex-digit IEEE-754 bit patterns (as in the
    certificate format), so [of_string (to_string t)] reproduces every
    interval endpoint and the sampling period bit-for-bit — no
    pretty-printer rounding. [of_string] re-validates through {!make}
    and raises [Failure] on malformed input. *)

val to_string : t -> string
val of_string : string -> t
