(* Damped pendulum (an extension benchmark beyond the paper's three
   systems, exercising trigonometric dynamics through the verifier):

     x0' = x1
     x1' = -sin(x0) - 0.5 x1 + u     (delta = 0.1)

   Swing from around 1 rad down to the origin while avoiding a velocity
   band on the way. The dynamics is built through the text parser - the
   same front end a user of the library would go through. *)

module Expr = Dwv_expr.Expr
module Box = Dwv_interval.Box
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Verifier = Dwv_reach.Verifier
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation

let damping = 0.5
let delta = 0.1
let steps = 30

let dynamics =
  match Dwv_expr.Parser.parse_system [ "x1"; "-sin(x0) - 0.5 * x1 + u0" ] with
  | Ok f -> f
  | Error msg -> invalid_arg ("Pendulum.dynamics: " ^ msg)

let sampled = Dwv_ode.Sampled_system.make ~f:dynamics ~n:2 ~m:1 ~delta

let spec =
  Spec.make ~name:"pendulum"
    ~x0:(Box.make ~lo:[| 0.9; -0.05 |] ~hi:[| 1.1; 0.05 |])
    ~unsafe:(Box.make ~lo:[| 0.25; -1.05 |] ~hi:[| 0.4; -0.85 |])
    ~goal:(Box.make ~lo:[| -0.1; -0.1 |] ~hi:[| 0.1; 0.1 |])
    ~delta ~steps

let output_scale = 3.0
let network_sizes = [ 2; 8; 1 ]
let network_acts = [ Activation.Tanh; Activation.Tanh ]

let initial_controller rng =
  Controller.net ~output_scale (Mlp.create ~sizes:network_sizes ~acts:network_acts rng)

(* Feedback-linearizing warm-start prior:
   u = sin(x0) + damping x1 - 4 x0 - 3 x1 gives x0'' = -4 x0 - 3 x0'. *)
let prior_law x =
  [| sin x.(0) +. (damping *. x.(1)) -. (4.0 *. x.(0)) -. (3.0 *. x.(1)) |]

let pretrain_region = Box.make ~lo:[| -0.3; -1.4 |] ~hi:[| 1.2; 0.3 |]

let pretrained_controller ?config rng =
  let net0 = Mlp.create ~sizes:network_sizes ~acts:network_acts rng in
  let trained =
    Dwv_nn.Pretrain.behavior_clone ?config ~rng ~region:pretrain_region ~target:prior_law
      ~output_scale net0
  in
  Controller.net ~output_scale trained

let tm_order = 3
let fast_slots = 6
let tight_slots = 8

let verify_from ?(method_ = Verifier.Polar) ?(slots = fast_slots) ?pool x0 controller =
  match controller with
  | Controller.Net { net; output_scale } ->
    Verifier.nn_flowpipe ~order:tm_order ~disturbance_slots:slots ?pool ~f:dynamics ~delta
      ~steps:spec.Spec.steps ~net ~output_scale ~method_ ~x0 ()
  | Controller.Linear _ ->
    invalid_arg "Pendulum.verify_from: the pendulum study uses NN controllers"

let verify ?method_ ?slots ?pool controller =
  verify_from ?method_ ?slots ?pool spec.Spec.x0 controller

(* Fault-tolerant verifier: primary settings as [verify_from] plus the
   degradation ladder and budget enforcement. *)
let verify_robust_from ?(method_ = Verifier.Polar) ?(slots = fast_slots) ?budget ?cache
    ?pool ?warm x0 controller =
  match controller with
  | Controller.Net { net; output_scale } ->
    let cert =
      Option.map
        (fun c ->
          { Verifier.cc_cache = c; cc_unsafe = spec.Spec.unsafe; cc_goal = spec.Spec.goal })
        cache
    in
    Verifier.nn_flowpipe_robust ~order:tm_order ~disturbance_slots:slots ?budget ?cert
      ?pool ?warm ~f:dynamics ~delta ~steps:spec.Spec.steps ~net ~output_scale ~method_
      ~x0 ()
  | Controller.Linear _ ->
    invalid_arg "Pendulum.verify_from: the pendulum study uses NN controllers"

let verify_robust ?method_ ?slots ?budget ?cache ?pool ?warm controller =
  verify_robust_from ?method_ ?slots ?budget ?cache ?pool ?warm spec.Spec.x0 controller

(* Warm-threading adapter shaped for [Initset.search ?verify_warm] and
   [Learner.learn ?verify_warm]. *)
let verify_warm_from ?method_ ?slots ?budget ?cache ?pool ?warm x0 controller =
  let report = verify_robust_from ?method_ ?slots ?budget ?cache ?pool ?warm x0 controller in
  (report.Verifier.pipe, report.Verifier.warm)

let sim_controller = Controller.eval

(* Scenario-DSL registration, cross-checked against the constants above. *)
let dsl =
  {|(scenario
  (name pendulum)
  (dim 2) (inputs 1)
  (delta 0.1) (steps 30)
  (dynamics "x1" "-sin(x0) - 0.5 * x1 + u0")
  (init (0.9 1.1) (-0.05 0.05))
  (goal (-0.1 0.1) (-0.1 0.1))
  (avoid ((0.25 0.4) (-1.05 -0.85)))
  (controller (net (sizes 2 8 1) (acts tanh tanh) (scale 3)))
  (method (polar (order 3) (slots 6))))
|}
