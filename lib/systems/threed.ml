(* The 3-D numerical example (Section 4, "3D system", after the ReachNN /
   Verisig benchmark suite):

     x1' = x3^3 - x2
     x2' = x3
     x3' = u            (delta = 0.2)

   X_0 = [0.38,0.4] x [0.45,0.47] x [0.25,0.27];
   X_g constrains x1 in [-0.5,-0.28] and x2 in [0,0.28];
   X_u constrains x1 in [-0.1,0.2] and x2 in [0.55,0.6].
   The paper leaves x3 free in both, which we encode with a wide third
   axis on the corresponding boxes. *)

module Expr = Dwv_expr.Expr
module Box = Dwv_interval.Box
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Verifier = Dwv_reach.Verifier
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation

let delta = 0.2
let steps = 15 (* T = 3 s *)

(* Range taken as "free" for the unconstrained x3 axis of the goal and
   unsafe sets; trajectories stay far inside it. *)
let free_axis = Dwv_interval.Interval.make (-5.0) 5.0

let dynamics =
  [|
    Expr.(sub (pow (var 2) 3) (var 1));
    Expr.var 2;
    Expr.input 0;
  |]

let sampled = Dwv_ode.Sampled_system.make ~f:dynamics ~n:3 ~m:1 ~delta

let spec =
  Spec.make ~name:"threed"
    ~x0:(Box.make ~lo:[| 0.38; 0.45; 0.25 |] ~hi:[| 0.4; 0.47; 0.27 |])
    ~unsafe:
      (Box.of_intervals
         [| Dwv_interval.Interval.make (-0.1) 0.2;
            Dwv_interval.Interval.make 0.55 0.6;
            free_axis |])
    ~goal:
      (Box.of_intervals
         [| Dwv_interval.Interval.make (-0.5) (-0.28);
            Dwv_interval.Interval.make 0.0 0.28;
            free_axis |])
    ~delta ~steps

let output_scale = 2.0

(* Tanh hidden layers for the verified controllers (see the note in
   Oscillator on ReLU remainder amplification). *)
let network_sizes = [ 3; 8; 1 ]
let network_acts = [ Activation.Tanh; Activation.Tanh ]

let initial_controller rng =
  Controller.net ~output_scale (Mlp.create ~sizes:network_sizes ~acts:network_acts rng)

(* Backstepping-flavoured prior used only as a warm start: steer x3
   toward -(x2 - 0.14) so x2 settles at the goal band's center while
   x1' = x3^3 - x2 stays negative long enough to cross into the goal's
   x1 range. *)
let prior_law x =
  let x2 = x.(1) and x3 = x.(2) in
  [| -4.0 *. (x3 +. (x2 -. 0.14)) |]

let pretrain_region = Box.make ~lo:[| -0.7; -0.3; -1.0 |] ~hi:[| 0.6; 0.7; 1.0 |]

let pretrained_controller ?config rng =
  let net0 = Mlp.create ~sizes:network_sizes ~acts:network_acts rng in
  let trained =
    Dwv_nn.Pretrain.behavior_clone ?config ~rng ~region:pretrain_region ~target:prior_law
      ~output_scale net0
  in
  Controller.net ~output_scale trained

let tm_order = 3
let fast_slots = 6
let tight_slots = 8

let verify_from ?(method_ = Verifier.Polar) ?(slots = fast_slots) ?pool x0 controller =
  match controller with
  | Controller.Net { net; output_scale } ->
    Verifier.nn_flowpipe ~order:tm_order ~disturbance_slots:slots ?pool ~f:dynamics ~delta
      ~steps:spec.Spec.steps ~net ~output_scale ~method_ ~x0 ()
  | Controller.Linear _ ->
    invalid_arg "Threed.verify_from: the 3-D study uses NN controllers"

let verify ?method_ ?slots ?pool controller =
  verify_from ?method_ ?slots ?pool spec.Spec.x0 controller

(* Fault-tolerant verifier: primary settings as [verify_from] plus the
   degradation ladder and budget enforcement. *)
let verify_robust_from ?(method_ = Verifier.Polar) ?(slots = fast_slots) ?budget ?cache
    ?pool ?warm x0 controller =
  match controller with
  | Controller.Net { net; output_scale } ->
    let cert =
      Option.map
        (fun c ->
          { Verifier.cc_cache = c; cc_unsafe = spec.Spec.unsafe; cc_goal = spec.Spec.goal })
        cache
    in
    Verifier.nn_flowpipe_robust ~order:tm_order ~disturbance_slots:slots ?budget ?cert
      ?pool ?warm ~f:dynamics ~delta ~steps:spec.Spec.steps ~net ~output_scale ~method_
      ~x0 ()
  | Controller.Linear _ ->
    invalid_arg "Threed.verify_from: the 3-D study uses NN controllers"

let verify_robust ?method_ ?slots ?budget ?cache ?pool ?warm controller =
  verify_robust_from ?method_ ?slots ?budget ?cache ?pool ?warm spec.Spec.x0 controller

(* Warm-threading adapter shaped for [Initset.search ?verify_warm] and
   [Learner.learn ?verify_warm]. *)
let verify_warm_from ?method_ ?slots ?budget ?cache ?pool ?warm x0 controller =
  let report = verify_robust_from ?method_ ?slots ?budget ?cache ?pool ?warm x0 controller in
  (report.Verifier.pipe, report.Verifier.warm)

let sim_controller = Controller.eval

(* Scenario-DSL registration, cross-checked against the constants above. *)
let dsl =
  {|(scenario
  (name threed)
  (dim 3) (inputs 1)
  (delta 0.2) (steps 15)
  (dynamics "x2^3 - x1" "x2" "u0")
  (init (0.38 0.4) (0.45 0.47) (0.25 0.27))
  (goal (-0.5 -0.28) (0 0.28) (-5 5))
  (avoid ((-0.1 0.2) (0.55 0.6) (-5 5)))
  (controller (net (sizes 3 8 1) (acts tanh tanh) (scale 2)))
  (method (polar (order 3) (slots 6))))
|}
