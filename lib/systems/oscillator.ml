(* Van der Pol oscillator (Section 4, "Oscillator"): 2-D non-linear plant

     x1' = x2
     x2' = gamma (1 - x1^2) x2 - x1 + u,   gamma = 1, delta = 0.1

   X_0 = [-0.51,-0.49] x [0.49,0.51], X_g = [-0.05,0.05]^2,
   X_u = [-0.3,-0.25] x [0.2,0.35]. Controlled by a neural network (ReLU
   hidden, Tanh output) verified with either the ReachNN-style Bernstein
   abstraction or the POLAR-style Taylor-model abstraction. *)

module Expr = Dwv_expr.Expr
module Box = Dwv_interval.Box
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Verifier = Dwv_reach.Verifier
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation

let gamma = 1.0
let delta = 0.1
let steps = 36 (* T = 3.6 s *)

let dynamics =
  [|
    Expr.var 1;
    Expr.(
      add
        (sub (scale gamma (mul (sub (const 1.0) (pow (var 0) 2)) (var 1))) (var 0))
        (input 0));
  |]

let sampled = Dwv_ode.Sampled_system.make ~f:dynamics ~n:2 ~m:1 ~delta

let spec =
  Spec.make ~name:"oscillator"
    ~x0:(Box.make ~lo:[| -0.51; 0.49 |] ~hi:[| -0.49; 0.51 |])
    ~unsafe:(Box.make ~lo:[| -0.3; 0.2 |] ~hi:[| -0.25; 0.35 |])
    ~goal:(Box.make ~lo:[| -0.05; -0.05 |] ~hi:[| 0.05; 0.05 |])
    ~delta ~steps

(* Control authority: u = 4 tanh(...), enough to dominate the vector field
   near the limit cycle. *)
let output_scale = 4.0

(* The paper's nets use ReLU hidden layers. Per-layer chord relaxation of
   ReLU (without POLAR's symbolic-remainder machinery) amplifies the
   control remainder exponentially through the feedback loop, so the
   VERIFIED controllers here use Tanh hidden layers — explicitly within
   the paper's framework ("all types of activation functions and their
   mixture"); ReLU remains supported and is exercised in the tests and
   the RL baselines. See DESIGN.md. *)
let network_sizes = [ 2; 8; 1 ]
let network_acts = [ Activation.Tanh; Activation.Tanh ]

let initial_controller rng =
  Controller.net ~output_scale (Mlp.create ~sizes:network_sizes ~acts:network_acts rng)

(* Feedback-linearizing prior used only as a warm start: choosing
   u = -gamma (1 - x1^2) x2 + x1 - a x1 - b x2 turns the loop into the
   linear system x1'' = -a x1 - b x1' (a = 6, b = 5: poles -2, -3). Its
   nominal trajectory clears the unsafe box by only ~0.04, well inside the
   flowpipe's over-approximation width, so the verification loop still has
   to learn the actual evasion; see Pretrain for why a warm start is
   needed at all. *)
let prior_law x =
  let x1 = x.(0) and x2 = x.(1) in
  [| (-.gamma *. (1.0 -. (x1 *. x1)) *. x2) -. (5.0 *. x1) -. (5.0 *. x2) |]

(* Covers the closed-loop trajectories from X_0 to the goal. *)
let pretrain_region = Box.make ~lo:[| -0.8; -0.5 |] ~hi:[| 0.4; 0.8 |]

let pretrained_controller ?config rng =
  let net0 = Mlp.create ~sizes:network_sizes ~acts:network_acts rng in
  let trained =
    Dwv_nn.Pretrain.behavior_clone ?config ~rng ~region:pretrain_region ~target:prior_law
      ~output_scale net0
  in
  Controller.net ~output_scale trained

(* Taylor-model order of the flowpipe kernel and the symbolic-remainder
   budget. [slots] trades tightness for speed (the paper's "verification
   tightness" knob): 6 is the fast learning setting, 8 the tight
   certification setting. *)
let tm_order = 3
let fast_slots = 6
let tight_slots = 8

let verify_from ?(method_ = Verifier.Polar) ?(slots = fast_slots) ?pool x0 controller =
  match controller with
  | Controller.Net { net; output_scale } ->
    Verifier.nn_flowpipe ~order:tm_order ~disturbance_slots:slots ?pool ~f:dynamics ~delta
      ~steps:spec.Spec.steps ~net ~output_scale ~method_ ~x0 ()
  | Controller.Linear _ ->
    invalid_arg "Oscillator.verify_from: the oscillator study uses NN controllers"

let verify ?method_ ?slots ?pool controller =
  verify_from ?method_ ?slots ?pool spec.Spec.x0 controller

(* Fault-tolerant verifier: same primary settings as [verify_from], plus
   the degradation ladder (tighter sub-stepping, the other abstraction,
   interval-only) and budget enforcement. *)
let verify_robust_from ?(method_ = Verifier.Polar) ?(slots = fast_slots) ?budget ?cache
    ?pool ?warm x0 controller =
  match controller with
  | Controller.Net { net; output_scale } ->
    let cert =
      Option.map
        (fun c ->
          { Verifier.cc_cache = c; cc_unsafe = spec.Spec.unsafe; cc_goal = spec.Spec.goal })
        cache
    in
    Verifier.nn_flowpipe_robust ~order:tm_order ~disturbance_slots:slots ?budget ?cert
      ?pool ?warm ~f:dynamics ~delta ~steps:spec.Spec.steps ~net ~output_scale ~method_
      ~x0 ()
  | Controller.Linear _ ->
    invalid_arg "Oscillator.verify_from: the oscillator study uses NN controllers"

let verify_robust ?method_ ?slots ?budget ?cache ?pool ?warm controller =
  verify_robust_from ?method_ ?slots ?budget ?cache ?pool ?warm spec.Spec.x0 controller

(* Warm-threading adapter shaped for [Initset.search ?verify_warm] and
   [Learner.learn ?verify_warm]: one robust verification that consumes a
   donor Picard trace and returns its own alongside the pipe. *)
let verify_warm_from ?method_ ?slots ?budget ?cache ?pool ?warm x0 controller =
  let report = verify_robust_from ?method_ ?slots ?budget ?cache ?pool ?warm x0 controller in
  (report.Verifier.pipe, report.Verifier.warm)

let sim_controller = Controller.eval

(* Scenario-DSL registration, cross-checked against the constants above. *)
let dsl =
  {|(scenario
  (name oscillator)
  (dim 2) (inputs 1)
  (delta 0.1) (steps 36)
  (dynamics "x1" "(1 - x0^2) * x1 - x0 + u0")
  (init (-0.51 -0.49) (0.49 0.51))
  (goal (-0.05 0.05) (-0.05 0.05))
  (avoid ((-0.3 -0.25) (0.2 0.35)))
  (controller (net (sizes 2 8 1) (acts tanh tanh) (scale 4)))
  (method (polar (order 3) (slots 6))))
|}
