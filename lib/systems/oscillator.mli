(** Van der Pol oscillator (Section 4): 2-D nonlinear plant under a neural
    controller (ReLU hidden, Tanh output), verified with the ReachNN- or
    POLAR-style abstraction. *)

val gamma : float
val delta : float
val steps : int
val dynamics : Dwv_expr.Expr.t array
val sampled : Dwv_ode.Sampled_system.t
val spec : Dwv_core.Spec.t

(** Saturation scale of the Tanh output layer (control authority). *)
val output_scale : float

val network_sizes : int list
val network_acts : Dwv_nn.Activation.t list

(** Fresh randomly-initialized neural controller. *)
val initial_controller : Dwv_util.Rng.t -> Dwv_core.Controller.t

(** Feedback-linearizing warm-start prior (grazes the unsafe corner, so
    the verification loop still has to learn the evasion). *)
val prior_law : float array -> float array

(** Sampling region of the warm start. *)
val pretrain_region : Dwv_interval.Box.t

(** Neural controller behavior-cloned from {!prior_law}. *)
val pretrained_controller :
  ?config:Dwv_nn.Pretrain.config -> Dwv_util.Rng.t -> Dwv_core.Controller.t

(** Taylor-model order of the flowpipe kernel. *)
val tm_order : int

(** Symbolic-remainder budgets: fast learning setting / tight
    certification setting (the paper's verification-tightness knob). *)
val fast_slots : int

val tight_slots : int

(** Verifier Ψ from an arbitrary initial cell (default method: POLAR,
    default slots: {!fast_slots}). [pool] parallelizes the per-dimension
    work inside each flowpipe step (bit-identical results at any domain
    count). *)
val verify_from :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?pool:Dwv_parallel.Pool.t ->
  Dwv_interval.Box.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Flowpipe.t

(** Verifier Ψ from X₀. *)
val verify :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?pool:Dwv_parallel.Pool.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Flowpipe.t

(** Fault-tolerant verifier: {!verify_from} settings as the primary rung
    of the degradation ladder, with budget enforcement. With [cache], a
    validated certificate hit replays the stored flowpipe bit-exactly
    (rung ["cache"]) and clean runs deposit certificates. [warm] seeds
    the Picard enclosures from a nearby verification's trace; the
    report's [warm] field returns this call's own trace (see
    {!Dwv_reach.Warm}). *)
val verify_robust_from :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?warm:Dwv_reach.Warm.t ->
  Dwv_interval.Box.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Verifier.fallback_report

(** {!verify_robust_from} from X₀. *)
val verify_robust :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?warm:Dwv_reach.Warm.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Verifier.fallback_report

(** Warm-threading adapter shaped for {!Dwv_core.Initset.search} and
    {!Dwv_core.Learner.learn} [verify_warm] callbacks: runs
    {!verify_robust_from} and pairs the pipe with the trace it donated. *)
val verify_warm_from :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?warm:Dwv_reach.Warm.t ->
  Dwv_interval.Box.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Flowpipe.t * Dwv_reach.Warm.t option

(** Control law on the simulation state. *)
val sim_controller : Dwv_core.Controller.t -> float array -> float array

(** The same study expressed in the scenario DSL (the scenario farm
    cross-checks this text against the module constants). *)
val dsl : string
