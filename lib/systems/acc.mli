(** Linear adaptive cruise control (Section 4): affine plant
    s' = v_f − v, v' = kv + u with linear (biased) state feedback,
    verified by the Flow*-style zonotope engine on a constant-augmented
    LTI model. *)

val v_front : float
val k_drag : float
val delta : float
val steps : int

(** 2-D plant in specification coordinates (constant v_f folded in). *)
val dynamics : Dwv_expr.Expr.t array

val sampled : Dwv_ode.Sampled_system.t

(** X₀ = [122,124]×[48,52], X_u = {s ≤ 120} (as a deep box),
    X_g = [145,155]×[39.5,40.5]. *)
val spec : Dwv_core.Spec.t

(** Constant-augmented 3-D LTI model used by the verifier. *)
val lti_augmented : Dwv_reach.Linear_reach.lti

(** θ = [θ_s; θ_v; bias] ↦ the linear controller u = θ_s s + θ_v v + b. *)
val controller_of_theta : float array -> Dwv_core.Controller.t

(** Stable but far-from-goal starting design. *)
val initial_controller : Dwv_core.Controller.t

(** Append the constant coordinate c = 1 to a 2-D box. *)
val augment_box : Dwv_interval.Box.t -> Dwv_interval.Box.t

(** Verifier Ψ from an arbitrary initial cell (for Algorithm 2). *)
val verify_from : Dwv_interval.Box.t -> Dwv_core.Controller.t -> Dwv_reach.Flowpipe.t

(** Verifier Ψ from X₀. *)
val verify : Dwv_core.Controller.t -> Dwv_reach.Flowpipe.t

(** Fault-tolerant verifier: the zonotope engine as a single ladder rung
    (it has no cheaper sound sibling), made total — NaN gains and blown
    budgets come back as structured failures with a diverged stub pipe.
    With [cache], a validated certificate hit replays the stored
    flowpipe bit-exactly (rung ["cache"]) and clean runs emit an
    affine-law certificate back to the cache. *)
val verify_robust_from :
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  Dwv_interval.Box.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Verifier.fallback_report

(** {!verify_robust_from} from X₀. *)
val verify_robust :
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Verifier.fallback_report

(** Control law on the 2-D simulation state. *)
val sim_controller : Dwv_core.Controller.t -> float array -> float array

(** The same study expressed in the scenario DSL (the scenario farm
    cross-checks this text against the module constants). *)
val dsl : string
