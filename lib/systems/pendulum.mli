(** Damped pendulum — an extension benchmark with trigonometric dynamics
    (built through the text parser), verified like the paper's NN
    systems. *)

val damping : float
val delta : float
val steps : int
val dynamics : Dwv_expr.Expr.t array
val sampled : Dwv_ode.Sampled_system.t
val spec : Dwv_core.Spec.t
val output_scale : float
val network_sizes : int list
val network_acts : Dwv_nn.Activation.t list
val initial_controller : Dwv_util.Rng.t -> Dwv_core.Controller.t

(** Feedback-linearizing warm-start prior. *)
val prior_law : float array -> float array

val pretrain_region : Dwv_interval.Box.t

val pretrained_controller :
  ?config:Dwv_nn.Pretrain.config -> Dwv_util.Rng.t -> Dwv_core.Controller.t

val tm_order : int
val fast_slots : int
val tight_slots : int

val verify_from :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?pool:Dwv_parallel.Pool.t ->
  Dwv_interval.Box.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Flowpipe.t

val verify :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?pool:Dwv_parallel.Pool.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Flowpipe.t

(** Fault-tolerant verifier: {!verify_from} settings as the primary rung
    of the degradation ladder, with budget enforcement. [warm] seeds the
    Picard enclosures from a nearby verification's trace; the report's
    [warm] field returns this call's own (see {!Dwv_reach.Warm}). *)
val verify_robust_from :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?warm:Dwv_reach.Warm.t ->
  Dwv_interval.Box.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Verifier.fallback_report

(** {!verify_robust_from} from X₀. *)
val verify_robust :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?warm:Dwv_reach.Warm.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Verifier.fallback_report

(** Warm-threading adapter shaped for {!Dwv_core.Initset.search} and
    {!Dwv_core.Learner.learn} [verify_warm] callbacks. *)
val verify_warm_from :
  ?method_:Dwv_reach.Verifier.nn_method ->
  ?slots:int ->
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?warm:Dwv_reach.Warm.t ->
  Dwv_interval.Box.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Flowpipe.t * Dwv_reach.Warm.t option

val sim_controller : Dwv_core.Controller.t -> float array -> float array

(** The same study expressed in the scenario DSL (the scenario farm
    cross-checks this text against the module constants). *)
val dsl : string
