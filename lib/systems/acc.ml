(* Linear adaptive cruise control (Section 4, "ACC").

   Two vehicles; the front one drives at v_f = 40, the ego vehicle
   controls the gap s and its own speed v:

       s' = v_f - v
       v' = k v + u          (k = -0.2, delta = 0.1)

   X_0 = [122,124] x [48,52], X_u = { s <= 120 }, X_g = [145,155] x
   [39.5,40.5]. The paper renders this scenario in Webots; the dynamics
   above (which the paper itself states) is what we simulate and verify.

   The plant is affine because of the constant v_f, so for the linear
   verifier we augment the state with a constant third coordinate c == 1:

       d/dt [s; v; c] = A3 [s; v; c] + B3 u,   u = theta . [s; v; c]

   which also gives the linear controller its bias term. The unsafe
   half-space { s <= 120 } is represented by a box reaching far below the
   operating range (substitution documented in DESIGN.md). *)

module Expr = Dwv_expr.Expr
module Mat = Dwv_la.Mat
module Box = Dwv_interval.Box
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Linear_reach = Dwv_reach.Linear_reach
module Flowpipe = Dwv_reach.Flowpipe

let v_front = 40.0
let k_drag = -0.2
let delta = 0.1
let steps = 120 (* T = 12 s *)

(* Plant in the 2-D specification coordinates (s, v); the constant v_f is
   just a constant in the expression AST. *)
let dynamics =
  [|
    Expr.(sub (const v_front) (var 1));                (* s' = v_f - v *)
    Expr.(add (scale k_drag (var 1)) (input 0));       (* v' = k v + u *)
  |]

let sampled = Dwv_ode.Sampled_system.make ~f:dynamics ~n:2 ~m:1 ~delta

let spec =
  Spec.make ~name:"acc"
    ~x0:(Box.make ~lo:[| 122.0; 48.0 |] ~hi:[| 124.0; 52.0 |])
    ~unsafe:(Box.make ~lo:[| 0.0; -100.0 |] ~hi:[| 120.0; 200.0 |])
    ~goal:(Box.make ~lo:[| 145.0; 39.5 |] ~hi:[| 155.0; 40.5 |])
    ~delta ~steps

(* Constant-augmented LTI model for the Flow*-style verifier. *)
let lti_augmented =
  {
    Linear_reach.a =
      Mat.of_rows [ [| 0.0; -1.0; v_front |]; [| 0.0; k_drag; 0.0 |]; [| 0.0; 0.0; 0.0 |] ];
    b = Mat.of_rows [ [| 0.0 |]; [| 1.0 |]; [| 0.0 |] ];
  }

(* theta = [theta_s; theta_v; bias]: u = theta_s s + theta_v v + bias. *)
let controller_of_theta theta =
  if Array.length theta <> 3 then invalid_arg "Acc.controller_of_theta: need 3 parameters";
  Controller.linear (Mat.of_rows [ theta ])

(* A mildly stabilising but far-from-goal starting design: the
   closed-loop poles are stable yet the equilibrium gap sits at
   s* = (8 - 40 theta_v - bias)/theta_s = 280, well past the goal band,
   so learning has real work to do. *)
let initial_controller = controller_of_theta [| 0.1; -0.5; 0.0 |]

let augment_box box =
  Box.of_intervals
    (Array.append box [| Dwv_interval.Interval.of_point 1.0 |])

(* Verifier Psi: augmented zonotope flowpipe projected back onto (s, v). *)
let verify_from x0 controller =
  match controller with
  | Controller.Linear { gain } ->
    Linear_reach.flowpipe ~sys:lti_augmented ~gain ~x0:(augment_box x0) ~delta
      ~steps:spec.Spec.steps ()
    |> Flowpipe.project ~dims:[| 0; 1 |]
  | Controller.Net _ -> invalid_arg "Acc.verify_from: the ACC study uses linear controllers"

let verify controller = verify_from spec.Spec.x0 controller

(* Certificate hook for the linear controller: the content address
   covers dynamics structure, θ, the cell, the spec boxes and the
   step grid; the law is recorded as affine feedback so the independent
   checker re-derives the control range from its own enclosure. *)
let cert_hook cache x0 controller =
  match controller with
  | Controller.Linear _ ->
    let theta = Controller.params controller in
    let fp =
      Dwv_cert.Cert_key.fingerprint ~f:dynamics ~theta ~x0
        ~unsafe:spec.Spec.unsafe ~goal:spec.Spec.goal ~delta
        ~steps:spec.Spec.steps ~tag:"acc zonotope"
    in
    Some
      {
        Dwv_robust.Robust_verify.lookup =
          (fun () ->
            Option.bind
              (Dwv_cert.Cert_cache.find cache ~fingerprint:fp)
              (Dwv_reach.Verifier.pipe_of_cert ~delta));
        store =
          (fun pipe ->
            match
              Dwv_reach.Verifier.cert_of_pipe ~fingerprint:fp ~backend:"zonotope"
                ~params:"acc zonotope" ~f:dynamics ~unsafe:spec.Spec.unsafe
                ~goal:spec.Spec.goal
                ~law:(Dwv_cert.Cert.Affine [| theta |])
                pipe
            with
            | Some c -> Dwv_cert.Cert_cache.store cache c
            | None -> ());
      }
  | Controller.Net _ -> None

(* Fault-tolerant verifier. The zonotope engine has no cheaper sound
   sibling, so the ladder has a single rung; what the robust wrapper adds
   is totality — an injected NaN gain or a blown budget comes back as a
   structured failure with a conservatively diverged stub pipe instead of
   poisoning downstream scores. *)
let verify_robust_from ?budget ?cache x0 controller =
  let box_finite b =
    Array.for_all
      (fun iv ->
        Float.is_finite (Dwv_interval.Interval.lo iv)
        && Float.is_finite (Dwv_interval.Interval.hi iv))
      b
  in
  let rung =
    Dwv_robust.Robust_verify.rung ~name:"zonotope" (fun () ->
        let controller =
          if Dwv_robust.Fault.current () = Some Dwv_robust.Fault.Nan_theta then
            Dwv_core.Controller.with_params controller
              (Dwv_robust.Fault.nan_corrupt (Dwv_core.Controller.params controller))
          else controller
        in
        let pipe = verify_from x0 controller in
        if Flowpipe.diverged pipe then
          Error
            (Dwv_robust.Dwv_error.divergence ~backend:"zonotope"
               ~where:"Acc.verify_robust" ())
        else if not (List.for_all box_finite (Flowpipe.all_boxes pipe)) then
          Error
            (Dwv_robust.Dwv_error.non_finite ~backend:"zonotope"
               ~where:"Acc.verify_robust" "reach box")
        else Ok pipe)
  in
  let cache = Option.bind cache (fun c -> cert_hook c x0 controller) in
  let o = Dwv_robust.Robust_verify.run ?budget ?cache [ rung ] in
  Dwv_reach.Verifier.report_of_outcome ~x0 ~delta o

let verify_robust ?budget ?cache controller =
  verify_robust_from ?budget ?cache spec.Spec.x0 controller

(* Control law on the 2-D simulation state (appends the constant 1). *)
let sim_controller controller x =
  Controller.eval controller [| x.(0); x.(1); 1.0 |]

(* The same study expressed in the scenario DSL; the scenario-farm tests
   cross-check this text against the constants above, so the two
   registrations can never drift apart. *)
let dsl =
  {|(scenario
  (name acc)
  (dim 2) (inputs 1)
  (delta 0.1) (steps 120)
  (dynamics "40 - x1" "-0.2 * x1 + u0")
  (init (122 124) (48 52))
  (goal (145 155) (39.5 40.5))
  (avoid ((0 120) (-100 200)))
  (controller (affine (0.1 -0.5 0)))
  (method zonotope))
|}
