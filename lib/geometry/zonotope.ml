(* Zonotopes: affine images of the unit hypercube,
   Z = { c + G zeta | zeta in [-1,1]^m }.

   Closed under linear maps and Minkowski sums, which makes them exact for
   the discretized LTI closed loop x+ = (A_d + B_d theta^T) x that the
   Flow*-style linear verifier propagates. *)

module Mat = Dwv_la.Mat
module Vec = Dwv_la.Vec
module I = Dwv_interval.Interval
module Box = Dwv_interval.Box

type t = { center : float array; generators : Mat.t (* n rows, m columns *) }

let make ~center ~generators =
  let n, _m = Mat.dims generators in
  if Array.length center <> n then invalid_arg "Zonotope.make: dimension mismatch";
  { center = Array.copy center; generators = Mat.copy generators }

let dim z = Array.length z.center

let num_generators z = snd (Mat.dims z.generators)

let center z = Array.copy z.center

(* A box is a zonotope with one axis-aligned generator per dimension. *)
let of_box (box : Box.t) =
  let n = Box.dim box in
  let center = Box.center box in
  let radii = Box.radii box in
  let generators = Mat.init n n (fun i j -> if i = j then radii.(i) else 0.0) in
  { center; generators }

(* Interval hull: center_i +- sum_j |G_ij|. *)
let to_box z =
  let n = dim z and m = num_generators z in
  Array.init n (fun i ->
      let r = ref 0.0 in
      for j = 0 to m - 1 do
        r := !r +. Float.abs (Mat.get z.generators i j)
      done;
      (* the generator-magnitude sum and the endpoint arithmetic round
         to nearest; the eps-scale widening restores outwardness *)
      I.widen (I.make (z.center.(i) -. !r) (z.center.(i) +. !r)))

(* Exact image under a linear map. *)
let linear_map a z =
  { center = Mat.matvec a z.center; generators = Mat.matmul a z.generators }

let translate v z =
  if Array.length v <> dim z then invalid_arg "Zonotope.translate: dimension mismatch";
  { z with center = Vec.add z.center v }

let affine_map a b z = translate b (linear_map a z)

(* Exact Minkowski sum: concatenate generator lists. *)
let minkowski_sum a b =
  if dim a <> dim b then invalid_arg "Zonotope.minkowski_sum: dimension mismatch";
  let n = dim a in
  let ma = num_generators a and mb = num_generators b in
  let generators =
    Mat.init n (ma + mb) (fun i j ->
        if j < ma then Mat.get a.generators i j else Mat.get b.generators i (j - ma))
  in
  { center = Vec.add a.center b.center; generators }

(* Support function in direction d: h(d) = <c, d> + sum_j |<g_j, d>|. *)
let support z d =
  if Array.length d <> dim z then invalid_arg "Zonotope.support: dimension mismatch";
  let m = num_generators z in
  let acc = ref (Vec.dot z.center d) in
  for j = 0 to m - 1 do
    acc := !acc +. Float.abs (Vec.dot (Mat.col z.generators j) d)
  done;
  !acc

(* Girard order reduction: keep the [keep] generators with the largest
   1-norm and over-approximate the rest by an axis-aligned box. Sound. *)
let reduce_order ~max_generators z =
  let n = dim z and m = num_generators z in
  if m <= max_generators || max_generators < n then z
  else begin
    let keep = max_generators - n in
    let norms =
      Array.init m (fun j ->
          let g = Mat.col z.generators j in
          (Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 g, j))
    in
    Array.sort (fun (a, _) (b, _) -> compare b a) norms;
    let kept = Array.sub norms 0 keep in
    let rest = Array.sub norms keep (m - keep) in
    (* absorb the small generators into per-axis radii *)
    let radii = Array.make n 0.0 in
    Array.iter
      (fun (_, j) ->
        for i = 0 to n - 1 do
          radii.(i) <- radii.(i) +. Float.abs (Mat.get z.generators i j)
        done)
      rest;
    let generators =
      Mat.init n (keep + n) (fun i j ->
          if j < keep then Mat.get z.generators i (snd kept.(j))
          else if j - keep = i then radii.(i)
          else 0.0)
    in
    { z with generators }
  end

(* A point of the zonotope for a given coefficient vector in [-1,1]^m. *)
let point z zeta =
  if Array.length zeta <> num_generators z then invalid_arg "Zonotope.point: bad coefficients";
  Vec.add z.center (Mat.matvec z.generators zeta)

let sample rng z =
  let m = num_generators z in
  point z (Array.init m (fun _ -> Dwv_util.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))

let pp ppf z =
  Fmt.pf ppf "@[<hov 2>{center = %a;@ generators =@ %a}@]" Vec.pp z.center Mat.pp z.generators
