(* Lipschitz bounds for MLPs: the product of layer operator norms times
   activation constants. Used as the remainder ingredient of the
   Bernstein (ReachNN-style) abstraction of neural controllers.

   ||f(x) - f(y)|| <= (prod_l  L_act_l * ||W_l||_2) ||x - y||. *)

module Mat = Dwv_la.Mat

(* Global 2-norm Lipschitz bound. *)
let bound (net : Mlp.t) =
  Array.fold_left
    (fun acc (l : Mlp.layer) ->
      acc *. Activation.lipschitz l.act *. Mat.spectral_norm l.weights)
    1.0 (Mlp.layers net)

(* Cheaper (looser) Frobenius-norm variant, useful as a sanity
   cross-check: ||W||_2 <= ||W||_F. *)
let bound_frobenius (net : Mlp.t) =
  Array.fold_left
    (fun acc (l : Mlp.layer) -> acc *. Activation.lipschitz l.act *. Mat.norm_fro l.weights)
    1.0 (Mlp.layers net)

(* Local Lipschitz bound over a box by interval propagation of the
   Jacobian: J = W_L D_{L-1} W_{L-1} ... D_1 W_1 with D_l =
   diag(act'(pre_l)) bounded over the box by interval forward propagation.
   The interval matrix product is accumulated entrywise in magnitude; the
   final 2-norm is bounded by sqrt(||M||_1 ||M||_inf). Vastly tighter than
   the global spectral product when activations saturate or ReLUs are
   locally sign-definite. *)

module I = Dwv_interval.Interval

let act_deriv_range (act : Activation.t) (pre : I.t) =
  match act with
  | Activation.Relu ->
    if I.lo pre >= 0.0 then I.one
    else if I.hi pre <= 0.0 then I.zero
    else I.make 0.0 1.0
  | Activation.Linear -> I.one
  | Activation.Tanh ->
    (* (tanh)' = 1 - tanh^2: monotone decreasing in |x| *)
    let m = Float.min (Float.abs (I.lo pre)) (Float.abs (I.hi pre)) in
    let m = if I.contains pre 0.0 then 0.0 else m in
    let biggest = Float.max (Float.abs (I.lo pre)) (Float.abs (I.hi pre)) in
    (* the endpoints are computed with round-to-nearest libm calls; the
       eps-scale widening dominates their few-ulp error *)
    I.widen (I.make (1.0 -. (tanh biggest ** 2.0)) (1.0 -. (tanh m ** 2.0)))
  | Activation.Sigmoid ->
    let s x = Dwv_util.Floatx.sigmoid x in
    let d x = s x *. (1.0 -. s x) in
    let m = if I.contains pre 0.0 then 0.0
            else Float.min (Float.abs (I.lo pre)) (Float.abs (I.hi pre)) in
    let biggest = Float.max (Float.abs (I.lo pre)) (Float.abs (I.hi pre)) in
    I.widen (I.make (d biggest) (d m))

(* Interval forward pass returning the pre-activation ranges per layer
   (interval bound propagation; see Ibp). *)
let preactivation_ranges = Ibp.preactivations

let local_bound (net : Mlp.t) (box : Dwv_interval.Box.t) =
  let pres = preactivation_ranges net box in
  (* accumulate |J| entrywise: start with |W_1|, then |D| |W| products *)
  let layers = Mlp.layers net in
  let abs_mat m = Mat.map Float.abs m in
  let acc = ref (abs_mat layers.(0).Mlp.weights) in
  (* apply D_1 .. and subsequent layers *)
  for l = 0 to Array.length layers - 1 do
    let d_ranges = Array.map (act_deriv_range layers.(l).Mlp.act) pres.(l) in
    let rows, cols = Mat.dims !acc in
    let scaled =
      Mat.init rows cols (fun i j ->
          let di = d_ranges.(i) in
          let mag = Float.max (Float.abs (I.lo di)) (Float.abs (I.hi di)) in
          mag *. Mat.get !acc i j)
    in
    acc := scaled;
    if l + 1 < Array.length layers then
      acc := Mat.matmul (abs_mat layers.(l + 1).Mlp.weights) !acc
  done;
  let m = !acc in
  let norm1 =
    (* max absolute column sum *)
    let rows, cols = Mat.dims m in
    let worst = ref 0.0 in
    for j = 0 to cols - 1 do
      let s = ref 0.0 in
      for i = 0 to rows - 1 do
        s := !s +. Float.abs (Mat.get m i j)
      done;
      if !s > !worst then worst := !s
    done;
    !worst
  in
  sqrt (norm1 *. Mat.norm_inf m)

(* Bound on the diagonal second derivatives sup |d^2 f_k / d x_i^2| of a
   SINGLE-hidden-layer network with smooth activations, per input i and
   output k (maximized over outputs). With g_k the output pre-activation:

     d^2 f_k/dx_i^2 = act_out''(g_k) (dg_k/dx_i)^2 + act_out'(g_k) d^2 g_k/dx_i^2
     |dg_k/dx_i|     <= sum_j |W2_kj| |act'| |W1_ji|
     |d^2 g_k/dx_i^2| <= sum_j |W2_kj| |act''| W1_ji^2

   using the global bounds |act'| <= 1, |tanh''| <= 4/(3 sqrt 3),
   |sigmoid''| <= 0.0963. Returns [None] for architectures the closed
   form does not cover (deeper nets, ReLU). Feeds the curvature-based
   Bernstein remainder, which scales with width^2 and therefore does not
   feed back into flowpipe growth. *)
let second_derivative_sup (act : Activation.t) =
  match act with
  | Activation.Tanh -> Some (4.0 /. (3.0 *. sqrt 3.0))
  | Activation.Sigmoid -> Some 0.09623
  | Activation.Linear -> Some 0.0
  | Activation.Relu -> None

let hessian_diag_bound (net : Mlp.t) =
  match Mlp.layers net with
  | [| l1; l2 |] -> (
    match (second_derivative_sup l1.Mlp.act, second_derivative_sup l2.Mlp.act) with
    | Some c_hidden, Some c_out ->
      let h, n = Mat.dims l1.Mlp.weights in
      let m, _ = Mat.dims l2.Mlp.weights in
      let bound = Array.make n 0.0 in
      for i = 0 to n - 1 do
        for k = 0 to m - 1 do
          let p = ref 0.0 and q = ref 0.0 in
          for j = 0 to h - 1 do
            let w2 = Float.abs (Mat.get l2.Mlp.weights k j) in
            let w1 = Mat.get l1.Mlp.weights j i in
            p := !p +. (w2 *. Float.abs w1);
            q := !q +. (w2 *. c_hidden *. (w1 *. w1))
          done;
          let m_ik = (c_out *. !p *. !p) +. !q in
          if m_ik > bound.(i) then bound.(i) <- m_ik
        done
      done;
      Some bound
    | _ -> None)
  | _ -> None

(* Empirical (unsound, diagnostic-only) estimate by sampling finite
   differences; handy in tests to confirm the analytic bound dominates. *)
let estimate ?(samples = 1000) ~rng ~box (net : Mlp.t) =
  let worst = ref 0.0 in
  for _ = 1 to samples do
    let x = Dwv_interval.Box.sample rng box in
    let y = Dwv_interval.Box.sample rng box in
    let dx = Dwv_la.Vec.dist2 x y in
    if dx > 1e-9 then begin
      let df = Dwv_la.Vec.dist2 (Mlp.forward net x) (Mlp.forward net y) in
      let ratio = df /. dx in
      if ratio > !worst then worst := ratio
    end
  done;
  !worst
