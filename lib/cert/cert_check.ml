(* Independent certificate checker. See DESIGN.md §13 for the
   independence argument; the short version: this module re-derives the
   reach-avoid conclusion from the recorded boxes by pure set algebra,
   and re-validates each step's flow enclosure with the directed-rounding
   Cert_ival arithmetic only — no Taylor model is ever built, so the
   prover's kernel cannot vouch for itself.

   The per-step obligation is the classic Picard invariance condition:
   given step box X, enclosure E and control range U, if

       X ⊕ [0,δ]·f(E, U)  ⊆  E      (all operations outward-rounded)

   then every solution from X under any measurable u(t) ∈ U stays in E
   on [0,δ]. Enclosures are synthesized at emission time by {!enclose}
   with the same deterministic arithmetic the checker replays, so a
   clean certificate validates with zero rejects by construction; steps
   where synthesis failed carry no enclosure and are reported as
   unchecked rather than invalid. *)

module Di = Cert_ival
module Box = Dwv_interval.Box
module Budget = Dwv_robust.Budget
module Dwv_error = Dwv_robust.Dwv_error

type verdict_check =
  | Valid
  | Tampered of string
  | Stale of string
  | Malformed of string

let verdict_check_to_string = function
  | Valid -> "valid"
  | Tampered site -> "tampered: " ^ site
  | Stale reason -> "stale: " ^ reason
  | Malformed reason -> "malformed: " ^ reason

type level = Quick | Full

type control = Const of Box.t | Affine_law of float array array

(* ---- claim re-derivation (mirrors Verifier.check on raw boxes) ---- *)

let all_boxes (c : Cert.t) =
  if Array.length c.segment_boxes = 0 then c.step_boxes else c.segment_boxes

let derive_verdict (c : Cert.t) : Cert.verdict =
  let all = all_boxes c in
  if Array.exists (fun b -> Box.subset b c.unsafe) all then Cert.Unsafe
  else if Array.exists (fun b -> Box.intersects b c.unsafe) all then Cert.Unknown
  else begin
    (* first sample instant inside the goal; index 0 never counts *)
    let n = Array.length c.step_boxes in
    let rec find i =
      if i >= n then Cert.Unknown
      else if Box.subset c.step_boxes.(i) c.goal then Cert.Reach_avoid
      else find (i + 1)
    in
    find 1
  end

(* ---- flow obligations ---- *)

let flow_candidate ~f ~delta ~(x : Di.box) ~(e : Di.box) ~(u : Di.box) : Di.box =
  let fr = Di.eval_vec f ~x:e ~u in
  let tau = Di.make 0.0 delta in
  Array.mapi (fun i xi -> Di.add xi (Di.mul tau fr.(i))) x

(* Emission-side synthesis: inflate a candidate until the invariance
   condition closes (or give up). The final check is the exact
   computation {!validate} replays, so acceptance here is acceptance
   there, bit for bit. *)
let enclose ~f ~delta ~(x : Box.t) ~(control : control) ~(hint : Box.t) () :
    (Box.t * Box.t) option =
  let eval_u e =
    match control with
    | Const u -> Di.of_box u
    | Affine_law rows -> Di.affine_range rows e
  in
  let xd = Di.of_box x in
  let rec go e k =
    if k > 30 then None
    else begin
      let u = eval_u e in
      let cand = flow_candidate ~f ~delta ~x:xd ~e ~u in
      if Di.box_is_finite e && Di.box_subset cand e then
        Some (Di.to_box e, Di.to_box u)
      else
        go (Di.box_scale_about_center 1.3 (Di.box_widen 1e-9 (Di.box_hull e cand))) (k + 1)
    end
  in
  try go (Di.box_widen 1e-6 (Di.box_hull xd (Di.of_box hint))) 0
  with Di.Undefined _ -> None

type step_report = { checked : int; unchecked : int }

(* ---- validation ---- *)

let validate_cert ?budget ?(level = Full) ?expected ?f (c : Cert.t) :
    verdict_check * step_report =
  let where = "Cert_check.validate" in
  let nsegs = Array.length c.segment_boxes in
  let none = { checked = 0; unchecked = nsegs } in
  let budget_check () =
    match budget with
    | None -> Ok ()
    | Some b -> Budget.check ~where b
  in
  let spend () =
    match budget with
    | None -> Ok ()
    | Some b -> Budget.spend_steps ~where b
  in
  match budget_check () with
  | Error e -> (Stale ("budget: " ^ Dwv_error.to_string e), none)
  | Ok () -> begin
    match expected with
    | Some fp when not (Int64.equal fp c.fingerprint) ->
      ( Stale
          (Printf.sprintf "fingerprint %s does not match expected %s"
             (Cert.fingerprint_hex c.fingerprint)
             (Cert.fingerprint_hex fp)),
        none )
    | _ ->
      if not (Box.equal c.x0 c.step_boxes.(0)) then
        (Tampered "x0 disagrees with the first step box", none)
      else if derive_verdict c <> c.verdict then
        (Tampered "recorded verdict disagrees with the recorded boxes", none)
      else begin
        match (level, f) with
        | Quick, _ | Full, None -> (Valid, none)
        | Full, Some f ->
          let checked = ref 0 and unchecked = ref 0 in
          let result = ref Valid in
          (try
             for i = 0 to nsegs - 1 do
               if !result <> Valid then raise Exit;
               match
                 if Array.length c.enclosures = 0 then None else c.enclosures.(i)
               with
               | None -> incr unchecked
               | Some e -> begin
                 (match spend () with
                 | Error err ->
                   result := Stale ("budget: " ^ Dwv_error.to_string err);
                   raise Exit
                 | Ok () -> ());
                 let site fmt = Printf.ksprintf (fun s -> s) fmt in
                 let ed = Di.of_box e in
                 let xd = Di.of_box c.step_boxes.(i) in
                 let u =
                   if Array.length c.controls > 0 then Some (Di.of_box c.controls.(i))
                   else
                     match c.law with
                     | Cert.Affine rows -> Some (Di.affine_range rows ed)
                     | Cert.Opaque -> None
                 in
                 match u with
                 | None -> incr unchecked (* opaque law without recorded controls *)
                 | Some u -> begin
                   try
                     if not (Di.box_subset xd ed) then
                       result := Tampered (site "step %d: step box escapes its enclosure" i)
                     else begin
                       (match c.law with
                       | Cert.Affine rows when Array.length c.controls > 0 ->
                         let rederived = Di.affine_range rows ed in
                         if not (Di.box_subset rederived u) then
                           result :=
                             Tampered
                               (site "step %d: control box misses the affine feedback range" i)
                       | _ -> ());
                       if !result = Valid then begin
                         let cand = flow_candidate ~f ~delta:c.delta ~x:xd ~e:ed ~u in
                         if not (Di.box_subset cand ed) then
                           result := Tampered (site "step %d: flow invariance fails" i)
                         else if not (Di.box_intersects (Di.of_box c.step_boxes.(i + 1)) ed)
                         then
                           result :=
                             Tampered (site "step %d: next step box disjoint from enclosure" i)
                         else if not (Di.box_intersects (Di.of_box c.segment_boxes.(i)) ed)
                         then
                           result :=
                             Tampered (site "step %d: segment box disjoint from enclosure" i)
                         else incr checked
                       end
                     end
                   with Di.Undefined what ->
                     result := Tampered (site "step %d: arithmetic undefined (%s)" i what)
                 end
               end
             done
           with Exit -> ());
          (!result, { checked = !checked; unchecked = !unchecked })
      end
  end

let validate ?budget ?level ?expected ?f (bytes : string) : verdict_check * step_report
    =
  match Cert.decode bytes with
  | Error reason -> (Malformed reason, { checked = 0; unchecked = 0 })
  | Ok c -> validate_cert ?budget ?level ?expected ?f c
