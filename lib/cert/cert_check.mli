(** Independent certificate validation.

    Uses only directed-rounding interval arithmetic ({!Cert_ival}) and
    pure set algebra over the recorded boxes — no [Taylor_model] /
    [Taylor_reach] dependency — so the proving kernel never vouches for
    its own output. Levels: [Quick] re-derives the reach-avoid claim
    from the recorded boxes (what every cache hit pays); [Full]
    additionally replays each step's Picard invariance obligation
    [X ⊕ [0,δ]·f(E,U) ⊆ E] in outward-rounded arithmetic. *)

module Box := Dwv_interval.Box

type verdict_check =
  | Valid
  | Tampered of string  (** a recorded obligation fails; site named *)
  | Stale of string
      (** wrong fingerprint for this use site, or budget ran out before
          the replay finished — either way: do not reuse *)
  | Malformed of string  (** decode failure: bad magic/version/checksum/structure *)

val verdict_check_to_string : verdict_check -> string

type level = Quick | Full

(** Control model for {!enclose}: a constant (zero-order-hold) range, or
    an affine law re-evaluated over the candidate enclosure. *)
type control = Const of Box.t | Affine_law of float array array

(** Re-derivation of the reach-avoid conclusion from the recorded boxes
    (mirrors [Verifier.check] semantics exactly). *)
val derive_verdict : Cert.t -> Cert.verdict

(** One outward-rounded Picard candidate [x ⊕ [0,δ]·f(e,u)]; exposed so
    emission and replay share the identical computation. *)
val flow_candidate :
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  x:Cert_ival.box ->
  e:Cert_ival.box ->
  u:Cert_ival.box ->
  Cert_ival.box

(** Emission-side synthesis of a step enclosure: inflate from [hint]
    until the invariance condition closes. Returns [(enclosure,
    control_range)], or [None] when it will not close (the step is then
    stored without an enclosure and reported unchecked, never invalid).
    Acceptance here is bit-for-bit acceptance in {!validate}. *)
val enclose :
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  x:Box.t ->
  control:control ->
  hint:Box.t ->
  unit ->
  (Box.t * Box.t) option

type step_report = { checked : int; unchecked : int }

(** Validate a decoded certificate. [expected] is the content address
    the use site computed for its own inputs (mismatch ⇒ [Stale]); [f]
    enables the [Full] flow replay; [budget] bounds the replay (spends
    one step per obligation; exhaustion ⇒ [Stale], never an exception). *)
val validate_cert :
  ?budget:Dwv_robust.Budget.t ->
  ?level:level ->
  ?expected:int64 ->
  ?f:Dwv_expr.Expr.t array ->
  Cert.t ->
  verdict_check * step_report

(** Decode + {!validate_cert}; total (decode failures ⇒ [Malformed]). *)
val validate :
  ?budget:Dwv_robust.Budget.t ->
  ?level:level ->
  ?expected:int64 ->
  ?f:Dwv_expr.Expr.t array ->
  string ->
  verdict_check * step_report
