(** Replayable proof certificates: the on-disk/in-memory artifact a
    verification run emits and the independent checker re-validates.

    Format (version 1): ["DWVC"] magic, u16 version, content-address
    fingerprint, backend/params provenance strings, then the flowpipe
    data — step boxes, segment boxes, per-step control enclosures,
    per-step directed-rounding flow enclosures (optional per step), and
    control-TM remainder widths — all floats as IEEE bit patterns
    (little-endian Int64) so round-trips are bit-exact. The final 8
    bytes are an FNV-1a/64 digest of everything before them; any
    single-byte substitution changes the digest, so {!decode} returns
    [Error] on every such mutation. *)

module Box := Dwv_interval.Box

val version : int

type verdict = Reach_avoid | Unsafe | Unknown

val verdict_to_string : verdict -> string

(** How control enters the flow obligations. [Affine rows] is linear
    state feedback u = row·[x; 1] (re-derivable by the checker);
    [Opaque] marks a sampled controller whose recorded per-step control
    boxes bound the zero-order-hold input actually applied. *)
type control_law = Opaque | Affine of float array array

type t = {
  fingerprint : int64;  (** content address, see {!Cert_key} *)
  backend : string;  (** rung that produced the flowpipe *)
  params : string;  (** method/order parameter string *)
  delta : float;
  dim : int;
  x0 : Box.t;
  unsafe : Box.t;
  goal : Box.t;
  law : control_law;
  verdict : verdict;
  step_boxes : Box.t array;  (** length = steps + 1 *)
  segment_boxes : Box.t array;  (** length = steps *)
  controls : Box.t array;  (** per step, or [[||]] *)
  enclosures : Box.t option array;
      (** per-step directed-rounding flow enclosure synthesized at
          emission; [None] where synthesis failed (that step is reported
          unchecked, never invalid) *)
  remainders : float array;  (** audit: control-TM remainder widths *)
}

val fingerprint_hex : int64 -> string

(** FNV-1a/64 over a substring; exposed for the cache's file footers. *)
val fnv64 : ?h0:int64 -> string -> pos:int -> len:int -> int64

(** Deterministic, total binary encoding (checksum footer included). *)
val encode : t -> string

(** Total: never raises. Verifies magic, version, checksum, and every
    structural invariant (finite ordered bounds, consistent dimensions
    and counts) before returning [Ok]. *)
val decode : string -> (t, string) result

(** Bit-exact structural equality (via the deterministic encoding). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
