(* Directed outward-rounded interval arithmetic for the certificate
   checker. Independent of lib/interval's Interval.t semantics: that
   module rounds to nearest and compensates with a fixed widen epsilon,
   which is fine for the prover but is exactly the machinery a checker
   must not share. Here every operation steps its bounds outward with
   Float.pred/Float.succ (two ulps after libm transcendentals, whose
   results are not correctly rounded but are well within 1 ulp), so the
   result interval always contains the true real-arithmetic image.

   The checker evaluates dynamics through Expr.fold over this domain and
   never constructs a Taylor model. *)

type t = { dlo : float; dhi : float }

exception Undefined of string

let guard name v =
  if Float.is_nan v.dlo || Float.is_nan v.dhi || v.dlo > v.dhi then
    raise (Undefined name)
  else v

(* Outward steps. Infinite bounds stay infinite (pred/succ would pull
   them back to max_float, which is unsound for an upper bound). *)
let down x = if Float.is_finite x then Float.pred x else x
let up x = if Float.is_finite x then Float.succ x else x
let down2 x = down (down x)
let up2 x = up (up x)

let make lo hi = guard "make" { dlo = lo; dhi = hi }
let point v = make v v
let lo v = v.dlo
let hi v = v.dhi
let width v = up (v.dhi -. v.dlo)
let is_finite v = Float.is_finite v.dlo && Float.is_finite v.dhi

let of_interval (i : Dwv_interval.Interval.t) =
  make (Dwv_interval.Interval.lo i) (Dwv_interval.Interval.hi i)

let to_interval v =
  if not (is_finite v) then raise (Undefined "to_interval");
  Dwv_interval.Interval.make v.dlo v.dhi

let neg v = { dlo = -.v.dhi; dhi = -.v.dlo }

let add a b = guard "add" { dlo = down (a.dlo +. b.dlo); dhi = up (a.dhi +. b.dhi) }
let sub a b = guard "sub" { dlo = down (a.dlo -. b.dhi); dhi = up (a.dhi -. b.dlo) }

let mul a b =
  let p1 = a.dlo *. b.dlo and p2 = a.dlo *. b.dhi in
  let p3 = a.dhi *. b.dlo and p4 = a.dhi *. b.dhi in
  (* 0 * inf = nan under IEEE; for intervals that product is 0 *)
  let z v = if Float.is_nan v then 0.0 else v in
  let p1 = z p1 and p2 = z p2 and p3 = z p3 and p4 = z p4 in
  guard "mul"
    {
      dlo = down (Float.min (Float.min p1 p2) (Float.min p3 p4));
      dhi = up (Float.max (Float.max p1 p2) (Float.max p3 p4));
    }

let scale k v = mul (point k) v

let inv v =
  if v.dlo <= 0.0 && v.dhi >= 0.0 then raise (Undefined "inv: contains zero");
  guard "inv" { dlo = down (1.0 /. v.dhi); dhi = up (1.0 /. v.dlo) }

let div a b = mul a (inv b)

let rec pow_int v k =
  if k < 0 then inv (pow_int v (-k))
  else if k = 0 then point 1.0
  else if k = 1 then v
  else if k land 1 = 0 then
    let h = pow_int v (k asr 1) in
    let sq = mul h h in
    (* even power of any interval is non-negative *)
    if v.dlo <= 0.0 && v.dhi >= 0.0 then { sq with dlo = Float.max 0.0 sq.dlo }
    else sq
  else mul v (pow_int v (k - 1))

(* Monotone libm function, outward by two ulps. *)
let mono f v = guard "mono" { dlo = down2 (f v.dlo); dhi = up2 (f v.dhi) }

let exp_ v = let r = mono Stdlib.exp v in { r with dlo = Float.max 0.0 r.dlo }

let tanh_ v =
  let r = mono Stdlib.tanh v in
  { dlo = Float.max (-1.0) r.dlo; dhi = Float.min 1.0 r.dhi }

let two_pi = 6.283185307179586476925286766559

(* Does [c + k*period] for some integer k possibly intersect [a,b]?
   Conservative: the division is rounded, so widen the window by a
   relative slack before deciding — a spurious "yes" only widens the
   result to a still-sound bound. *)
let maybe_contains_crit ~c ~period a b =
  if not (Float.is_finite a && Float.is_finite b) then true
  else begin
    let slack = 1e-9 *. (1.0 +. Float.abs a +. Float.abs b) in
    let k_min = Float.ceil ((a -. slack -. c) /. period) in
    let k_max = Float.floor ((b +. slack -. c) /. period) in
    k_min <= k_max
  end

let half_pi = 1.5707963267948966192313216916398

let trig f ~max_at ~min_at v =
  if not (is_finite v) || v.dhi -. v.dlo >= two_pi then make (-1.0) 1.0
  else begin
    let cands = [ f v.dlo; f v.dhi ] in
    let lo0 = List.fold_left Float.min Float.infinity cands in
    let hi0 = List.fold_left Float.max Float.neg_infinity cands in
    let hi0 =
      if maybe_contains_crit ~c:max_at ~period:two_pi v.dlo v.dhi then 1.0
      else hi0
    in
    let lo0 =
      if maybe_contains_crit ~c:min_at ~period:two_pi v.dlo v.dhi then -1.0
      else lo0
    in
    guard "trig"
      { dlo = Float.max (-1.0) (down2 lo0); dhi = Float.min 1.0 (up2 hi0) }
  end

let sin_ v = trig Stdlib.sin ~max_at:half_pi ~min_at:(-.half_pi) v
let cos_ v = trig Stdlib.cos ~max_at:0.0 ~min_at:(2.0 *. half_pi) v

let hull a b =
  { dlo = Float.min a.dlo b.dlo; dhi = Float.max a.dhi b.dhi }

let subset a b = a.dlo >= b.dlo && a.dhi <= b.dhi
let intersects a b = a.dlo <= b.dhi && b.dlo <= a.dhi

let widen eps v = guard "widen" { dlo = down (v.dlo -. eps); dhi = up (v.dhi +. eps) }

let scale_about_center k v =
  if not (is_finite v) then v
  else begin
    let c = 0.5 *. (v.dlo +. v.dhi) in
    let r = Float.abs (0.5 *. (v.dhi -. v.dlo) *. k) in
    guard "scale_about_center" { dlo = down (c -. r); dhi = up (c +. r) }
  end

let pp ppf v = Fmt.pf ppf "[%.17g, %.17g]" v.dlo v.dhi

(* ---- box (vector) layer ---- *)

type box = t array

let of_box (b : Dwv_interval.Box.t) = Array.map of_interval b

let to_box (b : box) = Array.map to_interval b

let box_subset a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i ai -> if not (subset ai b.(i)) then ok := false) a;
      !ok)

let box_intersects a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i ai -> if not (intersects ai b.(i)) then ok := false) a;
      !ok)

let box_hull a b = Array.mapi (fun i ai -> hull ai b.(i)) a
let box_widen eps b = Array.map (widen eps) b
let box_scale_about_center k b = Array.map (scale_about_center k) b
let box_is_finite b = Array.for_all is_finite b

(* Evaluate one dynamics component over directed intervals via the Expr
   catamorphism; no Taylor machinery anywhere on this path. *)
let eval (e : Dwv_expr.Expr.t) ~(x : box) ~(u : box) =
  Dwv_expr.Expr.fold
    ~const:point
    ~var:(fun i ->
      if i < 0 || i >= Array.length x then raise (Undefined "var index")
      else x.(i))
    ~input:(fun i ->
      if i < 0 || i >= Array.length u then raise (Undefined "input index")
      else u.(i))
    ~add ~sub ~mul ~div ~neg
    ~pow:pow_int ~sin:sin_ ~cos:cos_ ~exp:exp_ ~tanh:tanh_
    e

let eval_vec (f : Dwv_expr.Expr.t array) ~x ~u = Array.map (fun e -> eval e ~x ~u) f

(* u(t) = row·[x(t); 1] for each row: the affine feedback range over a
   state box, used to re-derive recorded control enclosures. *)
let affine_range (rows : float array array) (x : box) : box =
  Array.map
    (fun row ->
      let n = Array.length row - 1 in
      if n <> Array.length x then raise (Undefined "affine_range: arity");
      let acc = ref (point row.(n)) in
      for i = 0 to n - 1 do
        acc := add !acc (scale row.(i) x.(i))
      done;
      !acc)
    rows
