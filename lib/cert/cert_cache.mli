(** Crash-safe bounded certificate store (in-memory + on-disk).

    Disk writes are atomic (unique tmp file + rename), every entry
    carries the {!Cert} checksum footer, and both tiers store encoded
    bytes so every hit — memory or disk — pays the same decode + Quick
    validation before reuse. Every failure mode (IO error, decode
    failure, validation reject, injected [cert-*] fault) degrades to a
    miss or reject, never an exception: callers always fall back to a
    fresh computation. *)

type stats = {
  hits : int;
      (** validated lookups served, fast-tier hits included *)
  fast_hits : int;
      (** hits served by the probe-adjacency fast tier: the stored bytes
          were byte-equal to ones this process already decoded and
          Quick-validated, so both steps were skipped (validation is a
          pure function of the bytes). Armed cert faults bypass the
          tier, so fault paths always exercise the full route. *)
  misses : int;
  rejects : int;
  stores : int;
  io_failures : int;
}

val pp_stats : Format.formatter -> stats -> unit

type t

(** [create ?dir ?mem_cap ()]: memory-only when [dir] is omitted;
    otherwise one [<fingerprint>.dwvcert] file per entry under [dir]
    (created if missing). [mem_cap] (default 512) bounds the in-memory
    tier with FIFO eviction; the disk tier is bounded by {!gc}. *)
val create : ?dir:string -> ?mem_cap:int -> unit -> t

(** Validated lookup: decodes and Quick-checks the stored bytes against
    the caller's content address; corrupt, stale or unreadable entries
    count as rejects/misses and return [None]. Honors armed
    [cert-corrupt]/[cert-stale]/[cert-io] faults. *)
val find : t -> fingerprint:int64 -> Cert.t option

(** Encode and store (memory + atomic disk write). IO failures are
    counted, never raised. *)
val store : t -> Cert.t -> unit

(** Path a certificate for this fingerprint would live at ([None] for a
    memory-only cache). *)
val path_of : t -> int64 -> string option

(** Most recent successfully written file, if any. *)
val last_store_path : t -> string option

(** Delete all but the [keep] most recently written disk entries (and
    drop the whole memory tier); returns the number of files removed. *)
val gc : t -> keep:int -> int

val stats : t -> stats
val reset_stats : t -> unit
