(* Versioned, checksummed certificate format. See DESIGN.md §13.

   Floats travel as their IEEE bit patterns (Int64, little-endian), so
   encode/decode round-trips are bit-exact and a cache hit reconstructs
   the very flowpipe the prover produced. The footer is FNV-1a/64 over
   everything before it: xor-then-multiply-by-odd-prime is injective in
   the running state, so any single-byte substitution anywhere in the
   payload provably changes the digest — the fuzz property in
   test_certs.ml leans on this. *)

module Interval = Dwv_interval.Interval
module Box = Dwv_interval.Box

let version = 1
let magic = "DWVC"

type verdict = Reach_avoid | Unsafe | Unknown

let verdict_to_string = function
  | Reach_avoid -> "reach-avoid"
  | Unsafe -> "unsafe"
  | Unknown -> "unknown"

(* How control enters the flow obligations. [Affine rows]: u = row·[x;1]
   per output, so the checker can re-derive the recorded control boxes
   from the enclosure. [Opaque]: a sampled controller (NN); the recorded
   per-step control boxes are trusted inputs of the flow check (they
   bound the zero-order-hold control actually applied). *)
type control_law = Opaque | Affine of float array array

type t = {
  fingerprint : int64;
  backend : string;
  params : string;
  delta : float;
  dim : int;
  x0 : Box.t;
  unsafe : Box.t;
  goal : Box.t;
  law : control_law;
  verdict : verdict;
  step_boxes : Box.t array;
  segment_boxes : Box.t array;
  controls : Box.t array;
  enclosures : Box.t option array;
  remainders : float array;
}

let fingerprint_hex fp = Printf.sprintf "%016Lx" fp

(* ---- FNV-1a / 64 ---- *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv64 ?(h0 = fnv_offset) (s : string) ~pos ~len =
  let h = ref h0 in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) fnv_prime
  done;
  !h

(* ---- writer ---- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b (v land 0xff);
  put_u8 b ((v lsr 8) land 0xff)

let put_u32 b v =
  put_u16 b (v land 0xffff);
  put_u16 b ((v lsr 16) land 0xffff)

let put_i64 b (v : int64) =
  for k = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff)
  done

let put_f64 b v = put_i64 b (Int64.bits_of_float v)

let put_string b s =
  put_u16 b (String.length s);
  Buffer.add_string b s

let put_box b (box : Box.t) =
  put_u16 b (Box.dim box);
  Array.iter
    (fun iv ->
      put_f64 b (Interval.lo iv);
      put_f64 b (Interval.hi iv))
    box

let encode (c : t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_u16 b version;
  put_i64 b c.fingerprint;
  put_string b c.backend;
  put_string b c.params;
  put_f64 b c.delta;
  put_u16 b c.dim;
  put_box b c.x0;
  put_box b c.unsafe;
  put_box b c.goal;
  (match c.law with
  | Opaque -> put_u8 b 0
  | Affine rows ->
    put_u8 b 1;
    put_u32 b (Array.length rows);
    Array.iter
      (fun row ->
        put_u16 b (Array.length row);
        Array.iter (put_f64 b) row)
      rows);
  put_u8 b (match c.verdict with Reach_avoid -> 0 | Unsafe -> 1 | Unknown -> 2);
  put_u32 b (Array.length c.step_boxes);
  Array.iter (put_box b) c.step_boxes;
  put_u32 b (Array.length c.segment_boxes);
  Array.iter (put_box b) c.segment_boxes;
  put_u32 b (Array.length c.controls);
  Array.iter (put_box b) c.controls;
  put_u32 b (Array.length c.enclosures);
  Array.iter
    (function
      | None -> put_u8 b 0
      | Some box ->
        put_u8 b 1;
        put_box b box)
    c.enclosures;
  put_u32 b (Array.length c.remainders);
  Array.iter (put_f64 b) c.remainders;
  let payload = Buffer.contents b in
  put_i64 b (fnv64 payload ~pos:0 ~len:(String.length payload));
  Buffer.contents b

(* ---- reader ---- *)

exception Parse of string

type reader = { src : string; mutable pos : int; limit : int }

let ensure r n =
  if r.pos + n > r.limit then raise (Parse "truncated certificate")

let get_u8 r =
  ensure r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let a = get_u8 r in
  let b = get_u8 r in
  a lor (b lsl 8)

let get_u32 r =
  let a = get_u16 r in
  let b = get_u16 r in
  a lor (b lsl 16)

let get_i64 r =
  let v = ref 0L in
  for k = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 r)) (8 * k))
  done;
  !v

let get_f64 r = Int64.float_of_bits (get_i64 r)

let get_string r =
  let n = get_u16 r in
  ensure r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_box r =
  let d = get_u16 r in
  if d > 4096 then raise (Parse "absurd box dimension");
  Array.init d (fun _ ->
      let lo = get_f64 r in
      let hi = get_f64 r in
      try Interval.make lo hi
      with Invalid_argument m -> raise (Parse ("bad interval: " ^ m)))

let get_count r what =
  let n = get_u32 r in
  (* every element is at least one byte; rejects pathological counts *)
  if n > r.limit - r.pos then raise (Parse ("absurd count for " ^ what));
  n

let get_array r what f = Array.init (get_count r what) (fun _ -> f r)

let decode (s : string) : (t, string) result =
  try
    let total = String.length s in
    if total < String.length magic + 2 + 8 then raise (Parse "too short");
    if String.sub s 0 4 <> magic then raise (Parse "bad magic");
    let stored =
      let r = { src = s; pos = total - 8; limit = total } in
      get_i64 r
    in
    let computed = fnv64 s ~pos:0 ~len:(total - 8) in
    if not (Int64.equal stored computed) then raise (Parse "checksum mismatch");
    let r = { src = s; pos = 4; limit = total - 8 } in
    let v = get_u16 r in
    if v <> version then raise (Parse (Printf.sprintf "unsupported version %d" v));
    let fingerprint = get_i64 r in
    let backend = get_string r in
    let params = get_string r in
    let delta = get_f64 r in
    if not (Float.is_finite delta && delta > 0.0) then raise (Parse "bad delta");
    let dim = get_u16 r in
    let x0 = get_box r in
    let unsafe = get_box r in
    let goal = get_box r in
    let law =
      match get_u8 r with
      | 0 -> Opaque
      | 1 ->
        Affine
          (get_array r "law rows" (fun r ->
               let cols = get_u16 r in
               Array.init cols (fun _ ->
                   let v = get_f64 r in
                   if Float.is_nan v then raise (Parse "NaN in control law");
                   v)))
      | _ -> raise (Parse "bad control-law tag")
    in
    let verdict =
      match get_u8 r with
      | 0 -> Reach_avoid
      | 1 -> Unsafe
      | 2 -> Unknown
      | _ -> raise (Parse "bad verdict tag")
    in
    let step_boxes = get_array r "step boxes" get_box in
    let segment_boxes = get_array r "segment boxes" get_box in
    let controls = get_array r "control boxes" get_box in
    let enclosures =
      get_array r "enclosures" (fun r ->
          match get_u8 r with
          | 0 -> None
          | 1 -> Some (get_box r)
          | _ -> raise (Parse "bad enclosure flag"))
    in
    let remainders = get_array r "remainders" get_f64 in
    if r.pos <> r.limit then raise (Parse "trailing bytes");
    let check_dims what d boxes =
      Array.iter
        (fun b -> if Box.dim b <> d then raise (Parse ("dimension mismatch in " ^ what)))
        boxes
    in
    check_dims "step boxes" dim step_boxes;
    check_dims "segment boxes" dim segment_boxes;
    check_dims "x0/unsafe/goal" dim [| x0; unsafe; goal |];
    Array.iter
      (function Some b -> check_dims "enclosures" dim [| b |] | None -> ())
      enclosures;
    if Array.length step_boxes = 0 then raise (Parse "no step boxes");
    if Array.length step_boxes <> Array.length segment_boxes + 1 then
      raise (Parse "step/segment count mismatch");
    let nsegs = Array.length segment_boxes in
    if Array.length enclosures <> 0 && Array.length enclosures <> nsegs then
      raise (Parse "enclosure count mismatch");
    if Array.length controls <> 0 && Array.length controls <> nsegs then
      raise (Parse "control count mismatch");
    if Array.length remainders <> 0 && Array.length remainders <> nsegs then
      raise (Parse "remainder count mismatch");
    Ok
      {
        fingerprint;
        backend;
        params;
        delta;
        dim;
        x0;
        unsafe;
        goal;
        law;
        verdict;
        step_boxes;
        segment_boxes;
        controls;
        enclosures;
        remainders;
      }
  with
  | Parse msg -> Error msg
  | Invalid_argument msg -> Error ("malformed: " ^ msg)

(* Bit-exact structural equality: encoding is deterministic and total,
   so byte equality of encodings is exactly field-by-field bit equality
   (used by the round-trip qcheck property). *)
let equal a b = String.equal (encode a) (encode b)

let pp ppf (c : t) =
  Fmt.pf ppf "cert{%s backend=%s verdict=%s steps=%d dim=%d delta=%g enclosed=%d/%d}"
    (fingerprint_hex c.fingerprint)
    c.backend (verdict_to_string c.verdict)
    (Array.length c.segment_boxes)
    c.dim c.delta
    (Array.fold_left
       (fun n e -> match e with Some _ -> n + 1 | None -> n)
       0 c.enclosures)
    (Array.length c.enclosures)
