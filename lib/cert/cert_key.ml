(* Content address for certificates.

   Expr.id is process-global intern order — stable within a run, not
   across processes — so the on-disk address hashes the expression
   *structure* instead: a post-order FNV-style fold with per-constructor
   tags and float bit patterns. Hash-consing makes structurally equal
   dynamics share ids within a process, so the fold is memoized per
   Expr.id in domain-local storage and costs one table lookup on the
   hot path. *)

module Expr = Dwv_expr.Expr
module Interval = Dwv_interval.Interval
module Box = Dwv_interval.Box

let prime = 0x100000001B3L

let mix h k = Int64.mul (Int64.logxor h k) prime

let mix_int h i = mix h (Int64.of_int i)
let mix_float h v = mix h (Int64.bits_of_float v)

let structural_fingerprint_uncached (e : Expr.t) : int64 =
  Expr.fold
    ~const:(fun c -> mix_float 1L c)
    ~var:(fun i -> mix_int 2L i)
    ~input:(fun i -> mix_int 3L i)
    ~add:(fun a b -> mix (mix 4L a) b)
    ~sub:(fun a b -> mix (mix 5L a) b)
    ~mul:(fun a b -> mix (mix 6L a) b)
    ~div:(fun a b -> mix (mix 7L a) b)
    ~neg:(fun a -> mix 8L a)
    ~pow:(fun a k -> mix_int (mix 9L a) k)
    ~sin:(fun a -> mix 10L a)
    ~cos:(fun a -> mix 11L a)
    ~exp:(fun a -> mix 12L a)
    ~tanh:(fun a -> mix 13L a)
    e

let memo_key = Domain.DLS.new_key (fun () : (int, int64) Hashtbl.t -> Hashtbl.create 64)

let expr_fingerprint (e : Expr.t) : int64 =
  let memo = Domain.DLS.get memo_key in
  let id = Expr.id e in
  match Hashtbl.find_opt memo id with
  | Some fp -> fp
  | None ->
    let fp = structural_fingerprint_uncached e in
    Hashtbl.replace memo id fp;
    fp

let mix_box h (b : Box.t) =
  Array.fold_left
    (fun h iv -> mix_float (mix_float h (Interval.lo iv)) (Interval.hi iv))
    (mix_int h (Box.dim b))
    b

let mix_string h s = Cert.fnv64 ~h0:h s ~pos:0 ~len:(String.length s)

let fingerprint ~(f : Expr.t array) ~(theta : float array) ~(x0 : Box.t)
    ~(unsafe : Box.t) ~(goal : Box.t) ~(delta : float) ~(steps : int)
    ~(tag : string) : int64 =
  let h = mix_int (mix_string 0xD3F1A2B4C5D6E7L "dwvcert") Cert.version in
  let h = mix_string h tag in
  let h = mix_float h delta in
  let h = mix_int h steps in
  let h = Array.fold_left (fun h e -> mix h (expr_fingerprint e)) (mix_int h (Array.length f)) f in
  let h = Array.fold_left mix_float (mix_int h (Array.length theta)) theta in
  let h = mix_box h x0 in
  let h = mix_box h unsafe in
  mix_box h goal
