(* Crash-safe bounded certificate store: in-memory table of encoded
   bytes in front of one file per fingerprint, written atomically
   (unique tmp file, then rename) so a crash mid-write can never leave a
   half-certificate under the final name and concurrent domains never
   observe a torn write. Both tiers hold the *encoded* bytes: every hit
   — memory or disk — goes through the same decode + Quick validation,
   so a corrupted entry is rejected identically wherever it lives.

   Degradation contract: every failure in here (IO, decode, validation,
   injected fault) surfaces as a miss or a reject, never an exception —
   the caller then recomputes fresh. *)

module Fault = Dwv_robust.Fault
module Counters = Dwv_util.Counters

let c_hits = Counters.counter "cache_hits"
let c_fast_hits = Counters.counter "cache_fast_hits"
let c_misses = Counters.counter "cache_misses"
let c_rejects = Counters.counter "cache_rejects"
let c_stores = Counters.counter "cache_stores"
let c_io = Counters.counter "cache_io_failures"

type stats = {
  hits : int;          (* fast hits included *)
  fast_hits : int;
  misses : int;
  rejects : int;
  stores : int;
  io_failures : int;
}

let pp_stats ppf s =
  Fmt.pf ppf "hits=%d (fast=%d) misses=%d rejects=%d stores=%d io_failures=%d"
    s.hits s.fast_hits s.misses s.rejects s.stores s.io_failures

type t = {
  dir : string option;
  mem_cap : int;
  mu : Mutex.t;
  mem : (int64, string) Hashtbl.t;
  order : int64 Queue.t;
  (* Probe-adjacency fast tier: entries whose bytes this process has
     already decoded AND Quick-validated. A repeat lookup of the same
     fingerprint — the learner re-probing an unchanged (theta, X0) —
     only compares the stored bytes for equality before reusing the
     decoded certificate: validation is a pure function of the bytes
     (the cache-purity analysis machine-checks that), so equal bytes
     revalidate to the same Valid. Any armed cert fault bypasses this
     tier entirely, keeping the fault paths on the full decode+validate
     route. Same mutex, FIFO-bounded like [mem]. *)
  validated : (int64, string * Cert.t) Hashtbl.t;
  vorder : int64 Queue.t;
  mutable last_path : string option;
  s_hits : int Atomic.t;
  s_fast_hits : int Atomic.t;
  s_misses : int Atomic.t;
  s_rejects : int Atomic.t;
  s_stores : int Atomic.t;
  s_io : int Atomic.t;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let rec ensure_dir d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let create ?dir ?(mem_cap = 512) () =
  Option.iter ensure_dir dir;
  {
    dir;
    mem_cap = max 1 mem_cap;
    mu = Mutex.create ();
    mem = Hashtbl.create 64;
    order = Queue.create ();
    validated = Hashtbl.create 64;
    vorder = Queue.create ();
    last_path = None;
    s_hits = Atomic.make 0;
    s_fast_hits = Atomic.make 0;
    s_misses = Atomic.make 0;
    s_rejects = Atomic.make 0;
    s_stores = Atomic.make 0;
    s_io = Atomic.make 0;
  }

let suffix = ".dwvcert"

let path_of t fp =
  Option.map (fun d -> Filename.concat d (Cert.fingerprint_hex fp ^ suffix)) t.dir

let last_store_path t = locked t (fun () -> t.last_path)

let bump local global =
  Atomic.incr local;
  Counters.incr global

let read_file path =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

let tmp_seq = Atomic.make 0

let write_file t path bytes =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
      (Atomic.fetch_and_add tmp_seq 1)
  in
  try
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc bytes);
    Sys.rename tmp path;
    locked t (fun () -> t.last_path <- Some path)
  with Sys_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    bump t.s_io c_io

let raw_lookup t fp =
  match locked t (fun () -> Hashtbl.find_opt t.mem fp) with
  | Some bytes -> Some bytes
  | None -> (
    match path_of t fp with
    | None -> None
    | Some path -> read_file path)

let find t ~fingerprint : Cert.t option =
  match Fault.current () with
  | Some Fault.Cert_io ->
    (* injected read failure: degrade to a miss *)
    bump t.s_io c_io;
    bump t.s_misses c_misses;
    None
  | fault -> (
    match raw_lookup t fingerprint with
    | None ->
      bump t.s_misses c_misses;
      None
    | Some raw -> (
      let raw =
        if fault = Some Fault.Cert_corrupt then Fault.byte_corrupt raw else raw
      in
      let expected =
        if fault = Some Fault.Cert_stale then Int64.lognot fingerprint
        else fingerprint
      in
      let reject () =
        bump t.s_rejects c_rejects;
        (* drop only the memory copy: under an injected fault the stored
           bytes are still clean, and a genuinely bad disk file is
           simply overwritten by the next store *)
        locked t (fun () ->
            Hashtbl.remove t.mem fingerprint;
            Hashtbl.remove t.validated fingerprint);
        None
      in
      (* fast tier: only with no fault armed (an injected corruption /
         staleness / IO fault must travel the full decode+validate route
         it targets), and only when the bytes are the very ones this
         process already validated *)
      let fast =
        if fault <> None then None
        else
          match locked t (fun () -> Hashtbl.find_opt t.validated fingerprint) with
          | Some (vraw, cert) when String.equal vraw raw -> Some cert
          | _ -> None
      in
      match fast with
      | Some cert ->
        bump t.s_fast_hits c_fast_hits;
        bump t.s_hits c_hits;
        Some cert
      | None -> (
        match Cert.decode raw with
        | Error _ -> reject ()
        | Ok cert -> (
          match Cert_check.validate_cert ~level:Cert_check.Quick ~expected cert with
          | Cert_check.Valid, _ ->
            bump t.s_hits c_hits;
            if fault = None then
              locked t (fun () ->
                  if not (Hashtbl.mem t.validated fingerprint) then
                    Queue.push fingerprint t.vorder;
                  Hashtbl.replace t.validated fingerprint (raw, cert);
                  while
                    Hashtbl.length t.validated > t.mem_cap
                    && not (Queue.is_empty t.vorder)
                  do
                    Hashtbl.remove t.validated (Queue.pop t.vorder)
                  done);
            Some cert
          | _ -> reject ()))))

let store t (cert : Cert.t) =
  if Fault.current () = Some Fault.Cert_io then bump t.s_io c_io
  else begin
    let fp = cert.Cert.fingerprint in
    let raw = Cert.encode cert in
    bump t.s_stores c_stores;
    locked t (fun () ->
        if not (Hashtbl.mem t.mem fp) then Queue.push fp t.order;
        Hashtbl.replace t.mem fp raw;
        (* the fresh bytes were never validated: drop any fast-tier
           entry so the next lookup revalidates them *)
        Hashtbl.remove t.validated fp;
        while Hashtbl.length t.mem > t.mem_cap && not (Queue.is_empty t.order) do
          Hashtbl.remove t.mem (Queue.pop t.order)
        done);
    match path_of t fp with
    | None -> ()
    | Some path -> write_file t path raw
  end

let disk_entries t =
  match t.dir with
  | None -> []
  | Some d ->
    (try Array.to_list (Sys.readdir d) with Sys_error _ -> [])
    |> List.filter (fun f -> Filename.check_suffix f suffix)
    |> List.filter_map (fun f ->
           let path = Filename.concat d f in
           try Some (path, (Unix.stat path).Unix.st_mtime)
           with Unix.Unix_error _ | Sys_error _ -> None)

let gc t ~keep =
  let entries =
    disk_entries t |> List.sort (fun (_, a) (_, b) -> compare b a (* newest first *))
  in
  let victims = if keep <= 0 then entries else List.filteri (fun i _ -> i >= keep) entries in
  let deleted =
    List.fold_left
      (fun n (path, _) ->
        try
          Sys.remove path;
          n + 1
        with Sys_error _ ->
          bump t.s_io c_io;
          n)
      0 victims
  in
  locked t (fun () ->
      Hashtbl.reset t.mem;
      Queue.clear t.order;
      Hashtbl.reset t.validated;
      Queue.clear t.vorder);
  deleted

let stats t =
  {
    hits = Atomic.get t.s_hits;
    fast_hits = Atomic.get t.s_fast_hits;
    misses = Atomic.get t.s_misses;
    rejects = Atomic.get t.s_rejects;
    stores = Atomic.get t.s_stores;
    io_failures = Atomic.get t.s_io;
  }

let reset_stats t =
  List.iter
    (fun a -> Atomic.set a 0)
    [ t.s_hits; t.s_fast_hits; t.s_misses; t.s_rejects; t.s_stores; t.s_io ]
