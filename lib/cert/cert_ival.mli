(** Directed outward-rounded interval arithmetic for the certificate
    checker.

    Independent of [lib/interval]: every bound is stepped outward with
    [Float.pred]/[Float.succ] (two ulps after libm transcendentals), so
    the result always encloses the true real-arithmetic image. The
    checker evaluates dynamics through {!eval_vec} (an [Expr.fold]
    algebra) and never touches Taylor machinery. *)

type t = { dlo : float; dhi : float }

(** Raised when an operation leaves the domain (NaN, empty interval,
    division through zero, out-of-range variable). Checker code catches
    it and treats the obligation as unverifiable. *)
exception Undefined of string

val make : float -> float -> t
val point : float -> t
val lo : t -> float
val hi : t -> float
val width : t -> float
val is_finite : t -> bool
val of_interval : Dwv_interval.Interval.t -> t

(** Raises {!Undefined} on non-finite bounds. *)
val to_interval : t -> Dwv_interval.Interval.t

(** {1 Outward ulp steppers}

    The audited rounding primitives the layer-5 [Rounding_flow]
    discipline recognizes: a value stepped through these dominates the
    1/2-ulp round-to-nearest error of the operation that produced it
    (two steps after a libm transcendental). *)

val down : float -> float
val up : float -> float
val down2 : float -> float
val up2 : float -> float

(** [mono f v]: image of a monotone-increasing libm function, outward
    by two ulps at each endpoint. *)
val mono : (float -> float) -> t -> t

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val inv : t -> t
val div : t -> t -> t
val pow_int : t -> int -> t
val exp_ : t -> t
val tanh_ : t -> t
val sin_ : t -> t
val cos_ : t -> t
val hull : t -> t -> t
val subset : t -> t -> bool
val intersects : t -> t -> bool
val widen : float -> t -> t
val scale_about_center : float -> t -> t
val pp : Format.formatter -> t -> unit

(** {1 Vector layer} *)

type box = t array

val of_box : Dwv_interval.Box.t -> box
val to_box : box -> Dwv_interval.Box.t
val box_subset : box -> box -> bool
val box_intersects : box -> box -> bool
val box_hull : box -> box -> box
val box_widen : float -> box -> box
val box_scale_about_center : float -> box -> box
val box_is_finite : box -> bool

(** Sound range of one dynamics component over directed boxes. *)
val eval : Dwv_expr.Expr.t -> x:box -> u:box -> t

val eval_vec : Dwv_expr.Expr.t array -> x:box -> u:box -> box

(** [affine_range rows x]: range of u = row·[x; 1] per row (the last
    coefficient is the constant term). *)
val affine_range : float array array -> box -> box
