(** Content addresses for certificates.

    [Expr.id] is process-global intern order — stable within a run but
    not across processes — so the on-disk address hashes expression
    {e structure}: a post-order FNV-style fold with per-constructor tags
    and float bit patterns, memoized per [Expr.id] in domain-local
    storage (hash-consing makes the id a valid within-process key). *)

(** Process-stable structural fingerprint of one expression. *)
val expr_fingerprint : Dwv_expr.Expr.t -> int64

(** Content address over dynamics structure, controller parameters, the
    initial box, the spec boxes, the step size/count, and a free-form
    [tag] carrying method/order parameters. Any difference in any
    component changes the address, so a cache can never serve a
    certificate for different inputs ([Cert_check] additionally rejects
    such a hit as [Stale]). *)
val fingerprint :
  f:Dwv_expr.Expr.t array ->
  theta:float array ->
  x0:Dwv_interval.Box.t ->
  unsafe:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  delta:float ->
  steps:int ->
  tag:string ->
  int64
