(* The fallback/degradation chain: run a ladder of verification rungs —
   each progressively cheaper or coarser but still sound — until one
   produces an answer, recording which rung succeeded and why the earlier
   ones failed. The ladder itself is generic; the concrete rungs (shrink
   the Taylor step, raise the disturbance-slot budget, drop POLAR →
   Bernstein → interval-only) are built by Verifier.nn_flowpipe_robust.

   This is also the choke point of the fault-injection harness: every run
   counts as one verifier call (Fault.begin_call), so fault plans address
   calls by index regardless of how many rungs each call ends up using. *)

type 'a rung = { name : string; run : unit -> ('a, Dwv_error.t) result }

let rung ~name run = { name; run }

type 'a outcome = {
  value : 'a option;          (* None when every rung failed *)
  rung : string option;       (* name of the rung that produced the value *)
  rung_index : int option;
  failures : (string * Dwv_error.t) list;  (* failed rungs, ladder order *)
  fault : Fault.kind option;  (* fault injected into this call, if any *)
}

let succeeded o = Option.is_some o.value

let all_failed ?fault failures =
  { value = None; rung = None; rung_index = None; failures; fault }

(* Optional certificate-cache hook (built by Verifier/Acc over
   Cert_cache; kept abstract here so the robust layer stays below
   lib/cert in the dependency order). [lookup] must return only
   validated values; [store] must tolerate any IO failure silently. *)
type 'a cache = { lookup : unit -> 'a option; store : 'a -> unit }

let cache_rung_name = "cache"

let c_verifier_calls = Dwv_util.Counters.counter "verifier_calls"

let run ?budget ?cache rungs =
  Dwv_util.Counters.incr c_verifier_calls;
  let fault = Fault.begin_call () in
  Fun.protect ~finally:Fault.end_call @@ fun () ->
  let where = "Robust_verify.run" in
  let spend =
    match budget with None -> Ok () | Some b -> Budget.spend_call ~where b
  in
  (* Deadline/budget faults fail the whole call up front: there is no
     cheaper rung that can bring a late answer back in time. *)
  let synthesized =
    match fault with
    | Some Fault.Deadline_hit ->
      Some (Dwv_error.deadline_exceeded ~where:(where ^ "(fault)") ~elapsed:0.0 ~limit:0.0 ())
    | Some Fault.Budget_hit ->
      Some
        (Dwv_error.budget_exhausted ~where:(where ^ "(fault)") ~which:"verifier-call"
           ~used:0 ~limit:0 ())
    | _ -> None
  in
  match (spend, synthesized) with
  | Error e, _ | Ok (), Some e -> all_failed ?fault [ ("budget", e) ]
  | Ok (), None ->
    (* Faults that must corrupt the *computation* bypass the cache: a
       hit would sidestep the very path the fault plan is probing. The
       cert-* faults, by contrast, target the cache itself, so they
       flow through [lookup]/[store]. *)
    let cache =
      match fault with
      | Some (Fault.Nan_theta | Fault.Tm_blowup | Fault.Warm_poison) -> None
      | _ -> cache
    in
    let cached =
      match cache with
      | None -> None
      | Some c -> ( try c.lookup () with _ -> None)
    in
    (match cached with
    | Some v ->
      { value = Some v; rung = Some cache_rung_name; rung_index = Some (-1);
        failures = []; fault }
    | None ->
    let rec go i failures = function
      | [] -> all_failed ?fault (List.rev failures)
      | r :: rest -> (
        match
          match budget with None -> Ok () | Some b -> Budget.check ~where b
        with
        | Error e -> all_failed ?fault (List.rev (("budget", e) :: failures))
        | Ok () -> (
          let result =
            if i = 0 && fault = Some Fault.Tm_blowup then
              Error (Dwv_error.divergence ~backend:r.name ~where:(where ^ "(fault)") ())
            else
              match r.run () with
              | result -> result
              | exception exn -> Error (Dwv_error.of_exn ~backend:r.name ~where exn)
          in
          match result with
          | Ok v ->
            { value = Some v; rung = Some r.name; rung_index = Some i;
              failures = List.rev failures; fault }
          | Error e -> go (i + 1) ((r.name, e) :: failures) rest))
    in
    let o = go 0 [] rungs in
    (* Store only clean successes: a faulted call must never poison the
       cache, and store failures degrade silently (the value stands). *)
    (match (cache, o.value, fault) with
    | Some c, Some v, None -> ( try c.store v with _ -> ())
    | _ -> ());
    o)
