(** Generic fallback/degradation chain: run a ladder of verification
    rungs — progressively cheaper-but-sound settings — until one returns
    a value, recording which rung produced the verdict and why earlier
    rungs failed. One [run] = one verifier call for {!Budget} accounting
    and {!Fault} injection. *)

type 'a rung = { name : string; run : unit -> ('a, Dwv_error.t) result }

val rung : name:string -> (unit -> ('a, Dwv_error.t) result) -> 'a rung

type 'a outcome = {
  value : 'a option;           (** [None] when every rung failed *)
  rung : string option;        (** rung that produced the value *)
  rung_index : int option;
  failures : (string * Dwv_error.t) list;  (** failed rungs, ladder order *)
  fault : Fault.kind option;   (** fault injected into this call *)
}

val succeeded : 'a outcome -> bool

(** Certificate-cache hook built by the reach/systems layer over
    [Cert_cache]; abstract here so this layer stays below [lib/cert].
    [lookup] must return only validated values and [store] must tolerate
    failure silently — both are additionally guarded in {!run}. *)
type 'a cache = { lookup : unit -> 'a option; store : 'a -> unit }

(** Provenance name recorded when a validated cache hit short-circuits
    the ladder ({!outcome}[.rung_index] is [Some (-1)] in that case). *)
val cache_rung_name : string

(** Run the rungs in order until one succeeds. Spends one verifier call
    on [budget] and re-checks its deadline before each rung; exceptions
    escaping a rung become [Backend_failure] values.

    When [cache] is given, a validated hit (after the budget spend, so
    accounting is cache-blind) returns immediately with rung
    {!cache_rung_name}; a clean success is stored back. Lookup is
    bypassed while a computation-corrupting fault ([Nan_theta] /
    [Tm_blowup]) is armed, and nothing is stored from any faulted call,
    so fault runs are bit-identical with and without a cache. *)
val run : ?budget:Budget.t -> ?cache:'a cache -> 'a rung list -> 'a outcome
