(** Generic fallback/degradation chain: run a ladder of verification
    rungs — progressively cheaper-but-sound settings — until one returns
    a value, recording which rung produced the verdict and why earlier
    rungs failed. One [run] = one verifier call for {!Budget} accounting
    and {!Fault} injection. *)

type 'a rung = { name : string; run : unit -> ('a, Dwv_error.t) result }

val rung : name:string -> (unit -> ('a, Dwv_error.t) result) -> 'a rung

type 'a outcome = {
  value : 'a option;           (** [None] when every rung failed *)
  rung : string option;        (** rung that produced the value *)
  rung_index : int option;
  failures : (string * Dwv_error.t) list;  (** failed rungs, ladder order *)
  fault : Fault.kind option;   (** fault injected into this call *)
}

val succeeded : 'a outcome -> bool

(** Run the rungs in order until one succeeds. Spends one verifier call
    on [budget] and re-checks its deadline before each rung; exceptions
    escaping a rung become [Backend_failure] values. *)
val run : ?budget:Budget.t -> 'a rung list -> 'a outcome
