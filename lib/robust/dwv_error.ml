(* Structured failure taxonomy of the verification loop.

   Algorithm 1 calls the verifier hundreds of times per run and the
   dominant failure mode — flowpipe blow-up / "NAN" divergence (Fig. 8) —
   is expected during learning, not exceptional. Every verifier/learner
   interaction is therefore total: instead of exceptions (which kill the
   whole run) or a bare boolean flag (which loses the cause), failures are
   values of this type, carrying where they happened, which backend was
   running and at which step of the flowpipe. *)

type kind =
  | Divergence of { width : float option }
      (* flowpipe blow-up: a box exceeded the blow-up width, or the
         a-priori Picard enclosure failed to contract *)
  | Non_finite of { what : string }
      (* a NaN/infinity reached a place that required a finite value *)
  | Budget_exhausted of { which : string; used : int; limit : int }
      (* a discrete budget (verifier calls, integration steps) ran out *)
  | Deadline_exceeded of { elapsed : float; limit : float }
      (* the wall-clock deadline of the enclosing run passed *)
  | Backend_failure of { detail : string }
      (* an exception escaped a verification backend *)

type t = {
  kind : kind;
  where : string;          (* e.g. "Verifier.nn_flowpipe" *)
  backend : string option; (* e.g. "POLAR", "ReachNN", "interval" *)
  step : int option;       (* flowpipe step index at failure, if known *)
}

let make ?backend ?step ~where kind = { kind; where; backend; step }

let divergence ?width ?backend ?step ~where () =
  make ?backend ?step ~where (Divergence { width })

let non_finite ?backend ?step ~where what =
  make ?backend ?step ~where (Non_finite { what })

let budget_exhausted ?backend ?step ~where ~which ~used ~limit () =
  make ?backend ?step ~where (Budget_exhausted { which; used; limit })

let deadline_exceeded ?backend ?step ~where ~elapsed ~limit () =
  make ?backend ?step ~where (Deadline_exceeded { elapsed; limit })

let backend_failure ?backend ?step ~where detail =
  make ?backend ?step ~where (Backend_failure { detail })

let of_exn ?backend ?step ~where = function
  | Failure msg -> backend_failure ?backend ?step ~where ("Failure: " ^ msg)
  | Invalid_argument msg ->
    backend_failure ?backend ?step ~where ("Invalid_argument: " ^ msg)
  | exn -> backend_failure ?backend ?step ~where (Printexc.to_string exn)

(* Taxonomy bucket, the label the CLI tallies failures under. *)
let kind_name t =
  match t.kind with
  | Divergence _ -> "divergence"
  | Non_finite _ -> "non-finite"
  | Budget_exhausted _ -> "budget"
  | Deadline_exceeded _ -> "deadline"
  | Backend_failure _ -> "backend"

let pp_kind ppf = function
  | Divergence { width = Some w } -> Fmt.pf ppf "divergence (width %.3g)" w
  | Divergence { width = None } -> Fmt.string ppf "divergence"
  | Non_finite { what } -> Fmt.pf ppf "non-finite %s" what
  | Budget_exhausted { which; used; limit } ->
    Fmt.pf ppf "%s budget exhausted (%d/%d)" which used limit
  | Deadline_exceeded { elapsed; limit } ->
    Fmt.pf ppf "deadline exceeded (%.2fs > %.2fs)" elapsed limit
  | Backend_failure { detail } -> Fmt.pf ppf "backend failure: %s" detail

let pp ppf t =
  Fmt.pf ppf "%a [%s%a%a]" pp_kind t.kind t.where
    Fmt.(option (fun ppf b -> Fmt.pf ppf ", %s" b))
    t.backend
    Fmt.(option (fun ppf s -> Fmt.pf ppf ", step %d" s))
    t.step

let to_string t = Fmt.str "%a" pp t
