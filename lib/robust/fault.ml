(* Deterministic fault injection for the verification loop.

   A fault plan maps verifier-call indices (as counted by
   Robust_verify.run) to fault kinds. Arming a plan with [with_faults]
   makes the instrumented sites misbehave at exactly those calls:

     Nan_theta    — the verifier runs with NaN-corrupted network weights
                    (exercises the non-finite detection path end to end)
     Tm_blowup    — the primary rung of the fallback ladder reports a
                    flowpipe divergence (exercises the degradation chain)
     Deadline_hit — the call fails immediately with a deadline error
     Budget_hit   — the call fails immediately with a budget-exhausted
                    error
     Cert_corrupt — a stored certificate is read back with one seeded
                    bit flipped (the checker must reject it)
     Cert_stale   — a cache lookup validates against a mismatched
                    fingerprint (must be rejected as stale)
     Cert_io      — certificate reads/writes fail as if the disk did
                    (must degrade to a fresh computation)

   Call-index addressing is sequentially consistent even when calls run
   on several domains at once: parallel fan-out sites ([Learner],
   [Initset]) first [reserve] a block of indices, then pin each task to
   its index with [with_call_base] BEFORE the fan-out, so a fault lands
   on the same probe regardless of arrival order. Sequential callers
   never need either — [begin_call] draws from the (atomic) global
   counter, which yields exactly the indices the pre-assignment would.

   Everything is seeded and order-free: which weight goes NaN is drawn
   from a splitmix stream derived from [seed] and the call index, so
   test failures replay exactly at any domain count. The plan is
   process-global but scoped: [with_faults] restores the previous
   (usually empty) state on exit, including on exceptions. *)

module Rng = Dwv_util.Rng

type kind =
  | Nan_theta
  | Tm_blowup
  | Deadline_hit
  | Budget_hit
  | Cert_corrupt
  | Cert_stale
  | Cert_io
  | Warm_poison

let kind_to_string = function
  | Nan_theta -> "nan"
  | Tm_blowup -> "blowup"
  | Deadline_hit -> "deadline"
  | Budget_hit -> "budget"
  | Cert_corrupt -> "cert-corrupt"
  | Cert_stale -> "cert-stale"
  | Cert_io -> "cert-io"
  | Warm_poison -> "warm-poison"

let kind_of_string = function
  | "nan" | "nan-theta" -> Some Nan_theta
  | "blowup" | "tm-blowup" -> Some Tm_blowup
  | "deadline" -> Some Deadline_hit
  | "budget" -> Some Budget_hit
  | "cert-corrupt" -> Some Cert_corrupt
  | "cert-stale" -> Some Cert_stale
  | "cert-io" -> Some Cert_io
  | "warm-poison" -> Some Warm_poison
  | _ -> None

type armed = {
  plan : (int * kind) list;
  seed : int;
  next : int Atomic.t;                  (* next unassigned global call index *)
  mu : Mutex.t;                         (* guards [fired] *)
  mutable fired : (int * kind) list;    (* faults that actually fired *)
}

let state : armed option Atomic.t = Atomic.make None

(* Per-domain in-flight call: (index, fault). Each domain runs at most
   one verifier call at a time, so domain-local storage is exactly the
   "current call" scope. *)
let inflight : (int * kind option) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Per-domain pre-assigned index cursor for parallel sections. *)
let assigned : int ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_faults ?(seed = 0) plan f =
  let previous = Atomic.get state in
  Atomic.set state
    (Some { plan; seed; next = Atomic.make 0; mu = Mutex.create (); fired = [] });
  Fun.protect ~finally:(fun () -> Atomic.set state previous) f

let active () = Option.is_some (Atomic.get state)

(* Reserve [n] consecutive call indices for a parallel batch, returning
   the first. No-op (returns 0) when no plan is armed. *)
let reserve n =
  match Atomic.get state with
  | None -> 0
  | Some a -> Atomic.fetch_and_add a.next n

(* Run [f] with this domain's verifier-call indices drawn from
   [base, base+1, ...] instead of the global counter; used to pin a
   fanned-out task to the indices it would have received sequentially.
   The previous assignment (normally none) is restored on exit. *)
let with_call_base ~base f =
  let slot = Domain.DLS.get assigned in
  let previous = !slot in
  slot := Some (ref base);
  Fun.protect ~finally:(fun () -> slot := previous) f

(* Called once per verifier call by Robust_verify.run: draws the call's
   index (pre-assigned or global), and arms the call's fault (if any)
   until [end_call]. *)
let begin_call () =
  match Atomic.get state with
  | None -> None
  | Some a ->
    let idx =
      match !(Domain.DLS.get assigned) with
      | Some cursor ->
        let i = !cursor in
        cursor := i + 1;
        i
      | None -> Atomic.fetch_and_add a.next 1
    in
    let fault = List.assoc_opt idx a.plan in
    Domain.DLS.get inflight := Some (idx, fault);
    (match fault with
    | Some k ->
      Mutex.lock a.mu;
      a.fired <- (idx, k) :: a.fired;
      Mutex.unlock a.mu
    | None -> ());
    fault

let end_call () = Domain.DLS.get inflight := None

let current () =
  match !(Domain.DLS.get inflight) with
  | Some (_, fault) -> fault
  | None -> None

(* Sorted by call index: firing order is nondeterministic under
   parallel fan-out, the index assignment is not. *)
let injected () =
  match Atomic.get state with
  | None -> []
  | Some a ->
    Mutex.lock a.mu;
    let fired = a.fired in
    Mutex.unlock a.mu;
    List.sort compare fired

(* NaN-corrupt one position of a parameter vector (a copy; the caller's
   array is never mutated). The position is a pure function of the plan
   seed and the in-flight call index, so it replays identically at any
   domain count. No-op when no plan is armed. *)
let nan_corrupt arr =
  match Atomic.get state with
  | None -> arr
  | Some a ->
    let arr = Array.copy arr in
    if Array.length arr > 0 then begin
      let idx = match !(Domain.DLS.get inflight) with Some (i, _) -> i | None -> 0 in
      let rng = Rng.create ((a.seed * 0x10001) + idx + 1) in
      arr.(Rng.int rng (Array.length arr)) <- Float.nan
    end;
    arr

(* Flip one seeded bit of an encoded artifact (a copy; used by the
   [Cert_corrupt] fault to simulate silent storage corruption). The
   position is drawn exactly like [nan_corrupt]'s, so it replays
   identically at any domain count. Identity when no plan is armed. *)
let byte_corrupt s =
  match Atomic.get state with
  | None -> s
  | Some a ->
    if String.length s = 0 then s
    else begin
      let idx = match !(Domain.DLS.get inflight) with Some (i, _) -> i | None -> 0 in
      let rng = Rng.create ((a.seed * 0x10001) + idx + 1) in
      let pos = Rng.int rng (String.length s) in
      let bit = Rng.int rng 8 in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      Bytes.unsafe_to_string b
    end
