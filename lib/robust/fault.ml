(* Deterministic fault injection for the verification loop.

   A fault plan maps verifier-call indices (as counted by
   Robust_verify.run) to fault kinds. Arming a plan with [with_faults]
   makes the instrumented sites misbehave at exactly those calls:

     Nan_theta    — the verifier runs with NaN-corrupted network weights
                    (exercises the non-finite detection path end to end)
     Tm_blowup    — the primary rung of the fallback ladder reports a
                    flowpipe divergence (exercises the degradation chain)
     Deadline_hit — the call fails immediately with a deadline error
     Budget_hit   — the call fails immediately with a budget-exhausted
                    error

   Everything is seeded: which weight goes NaN is drawn from a splitmix
   stream created from [seed], so test failures replay exactly. The plan
   is process-global but scoped: [with_faults] restores the previous
   (usually empty) state on exit, including on exceptions. *)

module Rng = Dwv_util.Rng

type kind = Nan_theta | Tm_blowup | Deadline_hit | Budget_hit

let kind_to_string = function
  | Nan_theta -> "nan"
  | Tm_blowup -> "blowup"
  | Deadline_hit -> "deadline"
  | Budget_hit -> "budget"

let kind_of_string = function
  | "nan" | "nan-theta" -> Some Nan_theta
  | "blowup" | "tm-blowup" -> Some Tm_blowup
  | "deadline" -> Some Deadline_hit
  | "budget" -> Some Budget_hit
  | _ -> None

type armed = {
  plan : (int * kind) list;
  rng : Rng.t;
  mutable calls : int;             (* verifier-call counter *)
  mutable current : kind option;   (* fault of the in-flight call *)
  mutable injected : (int * kind) list;  (* faults that actually fired *)
}

let state : armed option ref = ref None

let with_faults ?(seed = 0) plan f =
  let previous = !state in
  state := Some { plan; rng = Rng.create seed; calls = 0; current = None; injected = [] };
  Fun.protect ~finally:(fun () -> state := previous) f

let active () = Option.is_some !state

(* Called once per verifier call by Robust_verify.run: advances the call
   counter and arms the call's fault (if any) until [end_call]. *)
let begin_call () =
  match !state with
  | None -> None
  | Some a ->
    let idx = a.calls in
    a.calls <- a.calls + 1;
    let fault = List.assoc_opt idx a.plan in
    a.current <- fault;
    (match fault with
    | Some k -> a.injected <- (idx, k) :: a.injected
    | None -> ());
    fault

let end_call () =
  match !state with None -> () | Some a -> a.current <- None

let current () =
  match !state with None -> None | Some a -> a.current

let injected () =
  match !state with None -> [] | Some a -> List.rev a.injected

(* NaN-corrupt one seeded position of a parameter vector (a copy; the
   caller's array is never mutated). No-op when no plan is armed. *)
let nan_corrupt arr =
  match !state with
  | None -> arr
  | Some a ->
    let arr = Array.copy arr in
    if Array.length arr > 0 then arr.(Rng.int a.rng (Array.length arr)) <- Float.nan;
    arr
