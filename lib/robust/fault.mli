(** Deterministic fault injection: a seeded plan mapping verifier-call
    indices to failure modes, used by the tests to prove the learner
    survives every [Dwv_error] kind without crashing or corrupting θ. *)

type kind =
  | Nan_theta     (** run the verifier with NaN-corrupted network weights *)
  | Tm_blowup     (** primary fallback rung reports flowpipe divergence *)
  | Deadline_hit  (** the call fails with a deadline error *)
  | Budget_hit    (** the call fails with a budget-exhausted error *)
  | Cert_corrupt  (** a stored certificate is read back with one bit flipped *)
  | Cert_stale    (** a cache lookup validates against a mismatched fingerprint *)
  | Cert_io       (** certificate reads/writes fail as if the disk did *)
  | Warm_poison
      (** warm-start Picard hints are spoiled at the gate: every hinted
          sub-step must degrade to the cold inflation search and produce
          the bit-identical cold enclosure (counted by [warm_poisoned]) *)

val kind_to_string : kind -> string

(** Inverse of {!kind_to_string} (also accepts "nan-theta"/"tm-blowup"). *)
val kind_of_string : string -> kind option

(** [with_faults ~seed plan f] runs [f] with the plan armed; the previous
    state is restored on exit (exceptions included). [plan] maps
    verifier-call indices (0-based, as counted by [Robust_verify.run]) to
    fault kinds. *)
val with_faults : ?seed:int -> (int * kind) list -> (unit -> 'a) -> 'a

(** A plan is currently armed. *)
val active : unit -> bool

(** Reserve [n] consecutive verifier-call indices for a parallel batch
    and return the first; each task is then pinned to its slice with
    {!with_call_base} so fault addressing does not depend on arrival
    order. Returns 0 (and reserves nothing) when no plan is armed. *)
val reserve : int -> int

(** [with_call_base ~base f] runs [f] with this domain's call indices
    drawn from [base, base + 1, ...] instead of the global counter; the
    previous assignment is restored on exit. *)
val with_call_base : base:int -> (unit -> 'a) -> 'a

(** Draw this call's index (pre-assigned or global) and arm its fault
    (if any) until {!end_call}. Called by [Robust_verify.run]; [None]
    when no plan is armed or no fault is scheduled at this index. The
    in-flight call state is domain-local. *)
val begin_call : unit -> kind option

val end_call : unit -> unit

(** Fault armed for this domain's in-flight verifier call. Instrumented
    backends (e.g. [Verifier.nn_flowpipe]) consult this. *)
val current : unit -> kind option

(** Faults that actually fired so far, sorted by call index (firing
    order is nondeterministic under parallel fan-out; the index
    assignment is not). *)
val injected : unit -> (int * kind) list

(** NaN-corrupt one seeded position of a parameter vector (returns a
    copy); identity when no plan is armed. *)
val nan_corrupt : float array -> float array

(** Flip one seeded bit of an encoded artifact (returns a copy);
    identity when no plan is armed. Used by the [Cert_corrupt] fault. *)
val byte_corrupt : string -> string
