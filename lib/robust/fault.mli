(** Deterministic fault injection: a seeded plan mapping verifier-call
    indices to failure modes, used by the tests to prove the learner
    survives every [Dwv_error] kind without crashing or corrupting θ. *)

type kind =
  | Nan_theta     (** run the verifier with NaN-corrupted network weights *)
  | Tm_blowup     (** primary fallback rung reports flowpipe divergence *)
  | Deadline_hit  (** the call fails with a deadline error *)
  | Budget_hit    (** the call fails with a budget-exhausted error *)

val kind_to_string : kind -> string

(** Inverse of {!kind_to_string} (also accepts "nan-theta"/"tm-blowup"). *)
val kind_of_string : string -> kind option

(** [with_faults ~seed plan f] runs [f] with the plan armed; the previous
    state is restored on exit (exceptions included). [plan] maps
    verifier-call indices (0-based, as counted by [Robust_verify.run]) to
    fault kinds. *)
val with_faults : ?seed:int -> (int * kind) list -> (unit -> 'a) -> 'a

(** A plan is currently armed. *)
val active : unit -> bool

(** Advance the verifier-call counter and arm this call's fault (if any)
    until {!end_call}. Called by [Robust_verify.run]; [None] when no plan
    is armed or no fault is scheduled at this index. *)
val begin_call : unit -> kind option

val end_call : unit -> unit

(** Fault armed for the in-flight verifier call. Instrumented backends
    (e.g. [Verifier.nn_flowpipe]) consult this. *)
val current : unit -> kind option

(** Faults that actually fired so far, in call order. *)
val injected : unit -> (int * kind) list

(** NaN-corrupt one seeded position of a parameter vector (returns a
    copy); identity when no plan is armed. *)
val nan_corrupt : float array -> float array
