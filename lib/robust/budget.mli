(** Resource budgets for reachability runs: wall-clock deadline plus
    verifier-call and integration-step budgets. All checks return
    [(unit, Dwv_error.t) result] — exhaustion is a value, never an
    exception.

    Domain-safe: the counters are atomic and every spend is a CAS, so a
    budget shared by parallel gradient probes or initial-set cells can
    never be overdrawn, and deadline checks are sound from any domain. *)

type t

(** [create ()] is unlimited in every dimension; pass [deadline]
    (seconds), [max_calls] and/or [max_steps] to bound the run. [clock]
    (default [Dwv_util.Mono.now], the process-wide monotone wall clock)
    is injectable for deterministic tests. *)
val create :
  ?clock:(unit -> float) -> ?deadline:float -> ?max_calls:int -> ?max_steps:int -> unit -> t

val unlimited : unit -> t

(** Seconds since the budget was created, per its own clock. *)
val elapsed : t -> float

val calls : t -> int
val steps : t -> int

(** Deadline (and forced-failure) check without spending anything. *)
val check : ?where:string -> t -> (unit, Dwv_error.t) result

(** Spend one verifier call; [Error] on deadline or call budget. *)
val spend_call : ?where:string -> t -> (unit, Dwv_error.t) result

(** Spend [n] (default 1) integration steps. *)
val spend_steps : ?where:string -> ?n:int -> t -> (unit, Dwv_error.t) result

(** Fault injection: make every subsequent check fail with [e] until
    {!clear_force}. *)
val force : t -> Dwv_error.t -> unit

val clear_force : t -> unit
