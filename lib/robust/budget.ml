(* Resource budgets for reachability runs: a wall-clock deadline plus
   discrete verifier-call and integration-step budgets, threaded through
   Verifier / Taylor_reach / Learner so a stiff probe or a blown-up
   flowpipe degrades into a structured error instead of hanging or
   crashing the learning run.

   Budgets are shared across domains when the learner fans its gradient
   probes out over a Pool: the call/step counters are Atomic.t and every
   spend is a CAS loop, so concurrent probes can never race past a
   limit (the counter is checked and advanced in one atomic step). The
   clock is injectable so tests and the fault-injection harness can
   drive deadlines deterministically; the default is the process-wide
   monotone clock (Dwv_util.Mono), which is sound to read from any
   domain — unlike [Sys.time], whose CPU-seconds accumulate across
   domains and would make an n-domain run age n times too fast. *)

type t = {
  clock : unit -> float;
  start : float;
  deadline : float option;   (* seconds from [start] *)
  max_calls : int option;    (* verifier calls *)
  max_steps : int option;    (* flowpipe / integration steps *)
  calls : int Atomic.t;
  steps : int Atomic.t;
  forced : Dwv_error.t option Atomic.t;  (* fault injection: fail every check *)
}

let create ?(clock = Dwv_util.Mono.now) ?deadline ?max_calls ?max_steps () =
  { clock; start = clock (); deadline; max_calls; max_steps;
    calls = Atomic.make 0; steps = Atomic.make 0; forced = Atomic.make None }

let unlimited () = create ()

let elapsed t = t.clock () -. t.start
let calls t = Atomic.get t.calls
let steps t = Atomic.get t.steps

let force t e = Atomic.set t.forced (Some e)
let clear_force t = Atomic.set t.forced None

let check ?(where = "Budget.check") t =
  match Atomic.get t.forced with
  | Some e -> Error e
  | None -> (
    match t.deadline with
    | Some limit when elapsed t > limit ->
      Error (Dwv_error.deadline_exceeded ~where ~elapsed:(elapsed t) ~limit ())
    | _ -> Ok ())

(* Check-and-advance in one atomic step: [counter + n <= limit] or the
   spend is refused, regardless of how many domains contend. *)
let rec spend ~where ~which ~n ~limit counter =
  let used = Atomic.get counter in
  if used + n > limit then Error (Dwv_error.budget_exhausted ~where ~which ~used ~limit ())
  else if Atomic.compare_and_set counter used (used + n) then Ok ()
  else spend ~where ~which ~n ~limit counter

let spend_call ?(where = "Budget.spend_call") t =
  match check ~where t with
  | Error _ as e -> e
  | Ok () -> (
    match t.max_calls with
    | None ->
      Atomic.incr t.calls;
      Ok ()
    | Some limit -> spend ~where ~which:"verifier-call" ~n:1 ~limit t.calls)

let spend_steps ?(where = "Budget.spend_steps") ?(n = 1) t =
  match check ~where t with
  | Error _ as e -> e
  | Ok () -> (
    match t.max_steps with
    | None ->
      ignore (Atomic.fetch_and_add t.steps n);
      Ok ()
    | Some limit -> spend ~where ~which:"step" ~n ~limit t.steps)
