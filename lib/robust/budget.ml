(* Resource budgets for reachability runs: a wall-clock deadline plus
   discrete verifier-call and integration-step budgets, threaded through
   Verifier / Taylor_reach / Learner so a stiff probe or a blown-up
   flowpipe degrades into a structured error instead of hanging or
   crashing the learning run.

   The clock is injectable (defaults to [Sys.time]) so tests and the
   fault-injection harness can drive deadlines deterministically. *)

type t = {
  clock : unit -> float;
  start : float;
  deadline : float option;   (* seconds from [start] *)
  max_calls : int option;    (* verifier calls *)
  max_steps : int option;    (* flowpipe / integration steps *)
  mutable calls : int;
  mutable steps : int;
  mutable forced : Dwv_error.t option;  (* fault injection: fail every check *)
}

let create ?(clock = Sys.time) ?deadline ?max_calls ?max_steps () =
  { clock; start = clock (); deadline; max_calls; max_steps;
    calls = 0; steps = 0; forced = None }

let unlimited () = create ()

let elapsed t = t.clock () -. t.start
let calls t = t.calls
let steps t = t.steps

let force t e = t.forced <- Some e
let clear_force t = t.forced <- None

let check ?(where = "Budget.check") t =
  match t.forced with
  | Some e -> Error e
  | None -> (
    match t.deadline with
    | Some limit when elapsed t > limit ->
      Error (Dwv_error.deadline_exceeded ~where ~elapsed:(elapsed t) ~limit ())
    | _ -> Ok ())

let spend_call ?(where = "Budget.spend_call") t =
  match check ~where t with
  | Error _ as e -> e
  | Ok () -> (
    match t.max_calls with
    | Some limit when t.calls >= limit ->
      Error
        (Dwv_error.budget_exhausted ~where ~which:"verifier-call" ~used:t.calls ~limit ())
    | _ ->
      t.calls <- t.calls + 1;
      Ok ())

let spend_steps ?(where = "Budget.spend_steps") ?(n = 1) t =
  match check ~where t with
  | Error _ as e -> e
  | Ok () -> (
    match t.max_steps with
    | Some limit when t.steps + n > limit ->
      Error (Dwv_error.budget_exhausted ~where ~which:"step" ~used:t.steps ~limit ())
    | _ ->
      t.steps <- t.steps + n;
      Ok ())
