(** Structured failure taxonomy of the verification loop: every
    verifier/learner interaction returns [('a, t) result] instead of
    raising, so the learner can keep making progress when a reachability
    run degrades (the expected "NAN" failure mode of Fig. 8). *)

type kind =
  | Divergence of { width : float option }
      (** flowpipe blow-up (box over the blow-up width / Picard failure) *)
  | Non_finite of { what : string }
      (** a NaN or infinity reached a finite-only computation *)
  | Budget_exhausted of { which : string; used : int; limit : int }
      (** a discrete budget (verifier calls, integration steps) ran out *)
  | Deadline_exceeded of { elapsed : float; limit : float }
      (** the wall-clock deadline of the enclosing run passed *)
  | Backend_failure of { detail : string }
      (** an exception escaped a verification backend *)

type t = {
  kind : kind;
  where : string;           (** location, e.g. ["Verifier.nn_flowpipe"] *)
  backend : string option;  (** backend name, e.g. ["POLAR"] *)
  step : int option;        (** flowpipe step index at failure *)
}

val make : ?backend:string -> ?step:int -> where:string -> kind -> t
val divergence : ?width:float -> ?backend:string -> ?step:int -> where:string -> unit -> t
val non_finite : ?backend:string -> ?step:int -> where:string -> string -> t

val budget_exhausted :
  ?backend:string -> ?step:int -> where:string -> which:string -> used:int -> limit:int ->
  unit -> t

val deadline_exceeded :
  ?backend:string -> ?step:int -> where:string -> elapsed:float -> limit:float -> unit -> t

val backend_failure : ?backend:string -> ?step:int -> where:string -> string -> t

(** Map an escaped exception ([Failure], [Invalid_argument], ...) into a
    [Backend_failure]. *)
val of_exn : ?backend:string -> ?step:int -> where:string -> exn -> t

(** Taxonomy bucket: "divergence", "non-finite", "budget", "deadline" or
    "backend" — the label failures are tallied under. *)
val kind_name : t -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string
