(** First-class scenarios: the declarative unit of the scenario farm.

    A scenario bundles dynamics, a reach-avoid spec with a possibly
    multi-box avoid set, uncertain parameters, a controller shape and a
    verification method, all parsed from a small s-expression DSL.
    Uncertain parameters are encoded as extra state dimensions with zero
    dynamics, so every downstream layer (simulation, flowpipes,
    certificates) handles uncertainty unchanged. *)

type controller_shape =
  | Affine of float array array
      (** [m] rows of [n_total + 1] gains; the last entry of each row is
          the bias: u_j = row · [x; 1]. *)
  | Net of {
      sizes : int list;
      acts : Dwv_nn.Activation.t list;
      scale : float;
    }

type method_spec =
  | M_taylor of { order : int }
  | M_interval of { order : int }
  | M_polar of { order : int; slots : int }
  | M_zonotope

type t = {
  name : string;
  dim : int;                          (** physical state dimensions *)
  m : int;                            (** control inputs *)
  delta : float;
  steps : int;
  f : Dwv_expr.Expr.t array;          (** length [dim]; uncertain parameter
                                          [i] appears as [x(dim + i)] *)
  init : Dwv_interval.Box.t;          (** physical ([dim]-dimensional) *)
  goal : Dwv_interval.Box.t;
  avoid : Dwv_interval.Box.t list;
  params : Dwv_interval.Interval.t array;
  controller : controller_shape;
  method_ : method_spec;
}

(** Validating constructor; raises [Failure] on any inconsistency
    (dimension mismatches, out-of-range variable references, bad
    controller shapes, non-positive delta/steps). *)
val make :
  name:string ->
  dim:int ->
  m:int ->
  delta:float ->
  steps:int ->
  f:Dwv_expr.Expr.t array ->
  init:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  avoid:Dwv_interval.Box.t list ->
  params:Dwv_interval.Interval.t array ->
  controller:controller_shape ->
  method_:method_spec ->
  unit ->
  t

(** {1 Augmented views} — over [dim + |params|] dimensions *)

val n_total : t -> int

(** Dynamics extended with zero rows for the uncertain parameters. *)
val f_total : t -> Dwv_expr.Expr.t array

val init_total : t -> Dwv_interval.Box.t
val goal_total : t -> Dwv_interval.Box.t

(** The avoid set, augmented by the parameter ranges; never empty (a
    far-away placeholder box is synthesized when the DSL declares no
    obstacles). *)
val avoid_total : t -> Dwv_interval.Box.t list

(** The [Spec.t] the rest of the stack consumes; its single [unsafe] box
    is the primary avoid box ([List.hd (avoid_total t)]). *)
val spec : t -> Dwv_core.Spec.t

val sampled : t -> Dwv_ode.Sampled_system.t

(** Instantiate the controller shape (net weights drawn from the rng). *)
val make_controller : t -> Dwv_util.Rng.t -> Dwv_core.Controller.t

(** Control law on the augmented simulation state (appends the
    homogeneous 1 for linear gains). *)
val sim : t -> Dwv_core.Controller.t -> float array -> float array

(** Input expressions u_j(x) of an affine controller's rows. *)
val affine_input_exprs : t -> float array array -> Dwv_expr.Expr.t array

(** Autonomous closed-loop dynamics with the affine controller
    substituted in; [None] for net controllers. *)
val closed_loop : t -> Dwv_expr.Expr.t array option

(** {1 DSL} *)

(** Parse [(scenario (name ...) (dim ...) ...)]; raises [Failure] with a
    descriptive message on malformed input. *)
val of_sexp : Sexpr.t -> t

val of_string : string -> t
val of_file : string -> t
val to_sexp : t -> Sexpr.t

(** Exact round-trip: [equal (of_string (to_string t)) t] always holds
    (floats print as shortest exact decimals or [#x] bit patterns). *)
val to_string : t -> string

(** {1 Utilities} *)

(** Structural equality, bit-exact on floats. *)
val equal : t -> t -> bool

(** Rebuild an expression substituting states and inputs. *)
val substitute :
  var:(int -> Dwv_expr.Expr.t) ->
  input:(int -> Dwv_expr.Expr.t) ->
  Dwv_expr.Expr.t ->
  Dwv_expr.Expr.t

(** Shortest exact float literal (decimal when it round-trips, else a
    [#x] hex bit pattern) and its reader. *)
val float_lit : float -> string

val float_of_lit : string -> float option

(** Parseable expression text: feeding the output back through the Expr
    parser yields the identical hash-consed node. *)
val expr_to_string : Dwv_expr.Expr.t -> string

val pp : Format.formatter -> t -> unit
