(** Verification driver for scenarios: closes the loop symbolically for
    affine controllers (validated Taylor rung + interval-only fallback
    under the {!Dwv_robust.Robust_verify} ladder, with certificate
    caching), routes net controllers through
    {!Dwv_reach.Verifier.nn_flowpipe_robust}, and judges flowpipes
    against the multi-box avoid set. *)

(** Multi-box generalization of {!Dwv_reach.Verifier.check}: divergence
    is [Unknown]; a segment inside {e any} avoid box is [Unsafe]; an
    intersection with any box blocks [Reach_avoid]. *)
val check_pipe :
  avoid:Dwv_interval.Box.t list ->
  goal:Dwv_interval.Box.t ->
  Dwv_reach.Flowpipe.t ->
  Dwv_reach.Verifier.verdict

(** [check_pipe] against the scenario's augmented avoid set and goal. *)
val check : Scenario.t -> Dwv_reach.Flowpipe.t -> Dwv_reach.Verifier.verdict

(** Sampled-data (zero-order-hold) closed-loop flowpipe: [f] is the
    open-loop field (with [Input] nodes) and [u_exprs] the affine control
    expressions over the state; each period the control is evaluated on
    the enclosure at the period start and held constant through the
    validated step — exactly the semantics the simulator executes.
    Returns the (possibly truncated, diverged) pipe plus the structured
    failure cause — total, never raises. *)
val taylor_pipe :
  ?budget:Dwv_robust.Budget.t ->
  order:int ->
  f:Dwv_expr.Expr.t array ->
  u_exprs:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  x0:Dwv_interval.Box.t ->
  unit ->
  Dwv_reach.Flowpipe.t * Dwv_robust.Dwv_error.t option

val interval_pipe :
  ?budget:Dwv_robust.Budget.t ->
  order:int ->
  f:Dwv_expr.Expr.t array ->
  u_exprs:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  x0:Dwv_interval.Box.t ->
  unit ->
  Dwv_reach.Flowpipe.t * Dwv_robust.Dwv_error.t option

(** Autonomous continuous-feedback dynamics for a concrete set of affine
    rows (bias last), over the augmented state. Diagnostic / analysis
    utility only — verification uses the ZOH pipes above, because
    substituting the control into the field verifies a different
    (continuous-feedback) system than the sampled loop simulation runs. *)
val closed_f : Scenario.t -> float array array -> Dwv_expr.Expr.t array

(** Reshape a flat controller parameter vector into affine rows; raises
    [Invalid_argument] on a length mismatch. *)
val rows_of_params : Scenario.t -> float array -> float array array

(** Content address an affine-controller verification stores its
    certificate under; [None] for net controllers (their fingerprint is
    computed inside the NN ladder). *)
val fingerprint : Scenario.t -> Dwv_core.Controller.t -> int64 option

(** Robust flowpipe for the scenario under the given controller: the
    degradation ladder appropriate to the controller shape, with fault
    injection and certificate caching (affine law / NN recorder). *)
val flowpipe_robust :
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  Scenario.t ->
  Dwv_core.Controller.t ->
  Dwv_reach.Verifier.fallback_report

type report = {
  verdict : Dwv_reach.Verifier.verdict;
  fallback : Dwv_reach.Verifier.fallback_report;
}

(** [flowpipe_robust] plus the multi-box judgement. *)
val verify_robust :
  ?budget:Dwv_robust.Budget.t ->
  ?cache:Dwv_cert.Cert_cache.t ->
  Scenario.t ->
  Dwv_core.Controller.t ->
  report
