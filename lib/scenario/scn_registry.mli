(** One uniform handle per scenario: the four built-in systems
    re-register through their DSL text, and any DSL file loads into the
    same shape, so the CLI / benchmarks / fuzzer drive everything through
    one interface. *)

type entry = {
  scenario : Scenario.t;
  init : Dwv_util.Rng.t -> Dwv_core.Controller.t;
  verify_robust :
    ?budget:Dwv_robust.Budget.t ->
    ?cache:Dwv_cert.Cert_cache.t ->
    Dwv_core.Controller.t ->
    Scn_verify.report;
  sim : Dwv_core.Controller.t -> float array -> float array;
}

(** Generic entry for a parsed DSL scenario (scenario ladder verifier). *)
val of_scenario : Scenario.t -> entry

val of_string : string -> entry
val of_file : string -> entry

(** Built-in entries, with their specialized verifiers behind the common
    interface. *)
val builtins : (string * entry) list

val find : string -> entry option
val names : unit -> string list
