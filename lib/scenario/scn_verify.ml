(* Verification driver for scenarios: closes the loop symbolically for
   affine controllers (Taylor-model rung with an interval-only fallback),
   routes net controllers through the existing NN degradation ladder, and
   judges the resulting flowpipe against the *multi-box* avoid set. The
   shape deliberately mirrors lib/systems — same Robust_verify ladder,
   same certificate hook, same fault-injection path — so a DSL scenario
   and a built-in system are indistinguishable downstream. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Controller = Dwv_core.Controller
module Flowpipe = Dwv_reach.Flowpipe
module Verifier = Dwv_reach.Verifier
module Taylor_reach = Dwv_reach.Taylor_reach
module Interval_reach = Dwv_reach.Interval_reach
module Tm_vec = Dwv_taylor.Tm_vec
module Robust_verify = Dwv_robust.Robust_verify
module Dwv_error = Dwv_robust.Dwv_error
module Fault = Dwv_robust.Fault

let blowup_width = 1e4

let box_finite b =
  Array.for_all Float.is_finite (Box.lo b)
  && Array.for_all Float.is_finite (Box.hi b)

(* ------------------------------------------------------------------ *)
(* Multi-box reach-avoid judgement: Verifier.check generalized over the
   whole avoid set. Divergence is Unknown; a segment inside *any* avoid
   box is certainly unsafe; a spurious intersection with any box blocks
   Reach_avoid. *)

let check_pipe ~avoid ~goal pipe =
  if Flowpipe.diverged pipe then Verifier.Unknown
  else if
    List.exists (fun b -> Verifier.certainly_unsafe ~unsafe:b pipe) avoid
  then Verifier.Unsafe
  else if not (List.for_all (fun b -> Verifier.safety_ok ~unsafe:b pipe) avoid)
  then Verifier.Unknown
  else
    match Verifier.goal_step ~goal pipe with
    | Some _ -> Verifier.Reach_avoid
    | None -> Verifier.Unknown

let check scn pipe =
  check_pipe ~avoid:(Scenario.avoid_total scn) ~goal:(Scenario.goal_total scn)
    pipe

(* ------------------------------------------------------------------ *)
(* Sampled-data (ZOH) closed-loop pipes for affine controllers: the
   field stays open-loop and the control model is recomputed from the
   state enclosure at each period start, then held constant through the
   validated step. *)

let taylor_pipe ?budget ~order ~f ~u_exprs ~delta ~steps ~x0 () =
  let backend = "taylor" and where = "Scn_verify.taylor_pipe" in
  (* ZOH sampled-data semantics, exactly as simulation executes it: the
     control is evaluated on the state enclosure at the period start and
     held constant through the validated step (the Lie table also treats
     inputs as constants). Substituting u = K x into f instead would
     verify the *continuous*-feedback loop - a different system, and the
     fuzzer's Monte-Carlo oracle catches the difference. *)
  let lie = Taylor_reach.lie_table ~f ~order in
  let x = ref (Tm_vec.of_box ~order x0) in
  let step_boxes = ref [ x0 ] and segment_boxes = ref [] in
  let diverged = ref false and error = ref None in
  let fail e =
    error := Some e;
    diverged := true;
    raise Exit
  in
  (try
     for i = 1 to steps do
       match
         let u = Tm_vec.eval_field ~x:!x ~u:!x u_exprs in
         Taylor_reach.step ?budget ~f ~lie ~delta !x u
       with
       | Error e ->
         fail
           {
             e with
             Dwv_error.backend = Some backend;
             step =
               (match e.Dwv_error.step with Some _ as s -> s | None -> Some i);
           }
       | Ok { state; segment; enclosure = _ } ->
         let next = Tm_vec.bound_box state in
         if not (box_finite next && box_finite segment) then
           fail (Dwv_error.non_finite ~backend ~step:i ~where "reach box")
         else if
           Box.max_width next > blowup_width
           || Box.max_width segment > blowup_width
         then
           fail
             (Dwv_error.divergence
                ~width:(Float.max (Box.max_width next) (Box.max_width segment))
                ~backend ~step:i ~where ())
         else begin
           step_boxes := next :: !step_boxes;
           segment_boxes := segment :: !segment_boxes;
           x := state
         end
       | exception ((Invalid_argument _ | Failure _) as exn) ->
         fail (Dwv_error.of_exn ~backend ~step:i ~where exn)
     done
   with Exit -> ());
  ( Flowpipe.make
      ~step_boxes:(Array.of_list (List.rev !step_boxes))
      ~segment_boxes:(Array.of_list (List.rev !segment_boxes))
      ~delta ~diverged:!diverged,
    !error )

let interval_pipe ?budget ~order ~f ~u_exprs ~delta ~steps ~x0 () =
  let backend = "interval" and where = "Scn_verify.interval_pipe" in
  let lie = Taylor_reach.lie_table ~f ~order in
  let intervals b = Array.init (Box.dim b) (Box.get b) in
  let x = ref x0 in
  let step_boxes = ref [ x0 ] and segment_boxes = ref [] in
  let diverged = ref false and error = ref None in
  let fail e =
    error := Some e;
    diverged := true;
    raise Exit
  in
  (try
     for i = 1 to steps do
       match
         let xi = intervals !x in
         let u =
           Box.of_intervals
             (Array.map (fun e -> Expr.ieval e ~x:xi ~u:[||]) u_exprs)
         in
         Interval_reach.step ?budget ~f ~lie ~delta !x u
       with
       | Error e ->
         fail
           {
             e with
             Dwv_error.backend = Some backend;
             step =
               (match e.Dwv_error.step with Some _ as s -> s | None -> Some i);
           }
       | Ok (next, segment) ->
         if not (box_finite next && box_finite segment) then
           fail (Dwv_error.non_finite ~backend ~step:i ~where "reach box")
         else if
           Box.max_width next > blowup_width
           || Box.max_width segment > blowup_width
         then
           fail
             (Dwv_error.divergence
                ~width:(Float.max (Box.max_width next) (Box.max_width segment))
                ~backend ~step:i ~where ())
         else begin
           step_boxes := next :: !step_boxes;
           segment_boxes := segment :: !segment_boxes;
           x := next
         end
       | exception ((Invalid_argument _ | Failure _) as exn) ->
         fail (Dwv_error.of_exn ~backend ~step:i ~where exn)
     done
   with Exit -> ());
  ( Flowpipe.make
      ~step_boxes:(Array.of_list (List.rev !step_boxes))
      ~segment_boxes:(Array.of_list (List.rev !segment_boxes))
      ~delta ~diverged:!diverged,
    !error )

(* ------------------------------------------------------------------ *)
(* Affine path *)

let rows_of_params scn theta =
  let cols = Scenario.n_total scn + 1 in
  if Array.length theta <> scn.Scenario.m * cols then
    invalid_arg "Scn_verify: controller parameter count does not match scenario";
  Array.init scn.Scenario.m (fun j -> Array.sub theta (j * cols) cols)

let closed_f scn rows =
  let u = Scenario.affine_input_exprs scn rows in
  Array.map
    (Scenario.substitute ~var:Expr.var ~input:(fun j -> u.(j)))
    (Scenario.f_total scn)

let method_order = function
  | Scenario.M_taylor { order } | Scenario.M_interval { order } -> order
  | Scenario.M_polar { order; _ } -> order
  | Scenario.M_zonotope -> 3

let method_tag scn =
  match scn.Scenario.method_ with
  | Scenario.M_taylor { order } -> Fmt.str "taylor o%d" order
  | Scenario.M_interval { order } -> Fmt.str "interval o%d" order
  | Scenario.M_polar { order; slots } -> Fmt.str "polar o%d s%d" order slots
  | Scenario.M_zonotope -> "zonotope"

(* Certificate hook, exactly the acc pattern: content address over the
   open-loop dynamics, flat θ, the augmented boxes and the step grid; the
   law records the affine rows (bias last) so the independent checker
   re-derives the per-step control range from its own enclosures. *)
let fingerprint scn controller =
  match (controller : Controller.t) with
  | Controller.Net _ -> None
  | Controller.Linear _ ->
    Some
      (Dwv_cert.Cert_key.fingerprint ~f:(Scenario.f_total scn)
         ~theta:(Controller.params controller)
         ~x0:(Scenario.init_total scn)
         ~unsafe:(List.hd (Scenario.avoid_total scn))
         ~goal:(Scenario.goal_total scn) ~delta:scn.Scenario.delta
         ~steps:scn.Scenario.steps
         ~tag:(Fmt.str "scenario %s %s" scn.Scenario.name (method_tag scn)))

let cert_hook scn cache controller =
  match controller with
  | Controller.Net _ -> None
  | Controller.Linear _ ->
    let theta = Controller.params controller in
    let f = Scenario.f_total scn in
    let unsafe = List.hd (Scenario.avoid_total scn) in
    let goal = Scenario.goal_total scn in
    let fp = Option.get (fingerprint scn controller) in
    Some
      {
        Robust_verify.lookup =
          (fun () ->
            Option.bind
              (Dwv_cert.Cert_cache.find cache ~fingerprint:fp)
              (Verifier.pipe_of_cert ~delta:scn.Scenario.delta));
        store =
          (fun pipe ->
            match
              Verifier.cert_of_pipe ~fingerprint:fp ~backend:"taylor"
                ~params:(method_tag scn) ~f ~unsafe ~goal
                ~law:(Dwv_cert.Cert.Affine (rows_of_params scn theta))
                pipe
            with
            | Some c -> Dwv_cert.Cert_cache.store cache c
            | None -> ());
      }

let affine_report ?budget ?cache scn controller =
  let x0 = Scenario.init_total scn in
  let delta = scn.Scenario.delta and steps = scn.Scenario.steps in
  let order = method_order scn.Scenario.method_ in
  (* the injected NaN-θ fault corrupts the gains *before* the loop is
     closed, so the poisoned constants flow through the whole pipeline
     and come back as a structured non-finite failure *)
  let f = Scenario.f_total scn in
  let u_exprs () =
    let controller =
      if Fault.current () = Some Fault.Nan_theta then
        Controller.with_params controller
          (Fault.nan_corrupt (Controller.params controller))
      else controller
    in
    Scenario.affine_input_exprs scn
      (rows_of_params scn (Controller.params controller))
  in
  let to_result (pipe, error) =
    match error with Some e -> Error e | None -> Ok pipe
  in
  let taylor_rung =
    Robust_verify.rung ~name:"taylor" (fun () ->
        to_result
          (taylor_pipe ?budget ~order ~f ~u_exprs:(u_exprs ()) ~delta ~steps ~x0 ()))
  in
  let interval_rung =
    Robust_verify.rung ~name:"interval" (fun () ->
        to_result
          (interval_pipe ?budget ~order ~f ~u_exprs:(u_exprs ()) ~delta ~steps ~x0 ()))
  in
  let rungs =
    match scn.Scenario.method_ with
    | Scenario.M_interval _ -> [ interval_rung ]
    | _ -> [ taylor_rung; interval_rung ]
  in
  let cache = Option.bind cache (fun c -> cert_hook scn c controller) in
  Robust_verify.run ?budget ?cache rungs
  |> Verifier.report_of_outcome ~x0 ~delta:scn.Scenario.delta

(* ------------------------------------------------------------------ *)
(* Entry points *)

let flowpipe_robust ?budget ?cache scn controller =
  match (controller : Controller.t) with
  | Controller.Linear _ ->
    (match scn.Scenario.method_ with
    | Scenario.M_zonotope ->
      (* structured failure, not an escaping raise: the fault ladder can
         then report Unknown instead of crashing the campaign *)
      Robust_verify.run ?budget
        [
          Robust_verify.rung ~name:"zonotope" (fun () ->
              Error
                (Dwv_error.backend_failure ~backend:"zonotope"
                   ~where:"Scn_verify.flowpipe_robust"
                   "the zonotope method is reserved for built-in LTI \
                    systems (use their registry entry)"));
        ]
      |> Verifier.report_of_outcome ~x0:(Scenario.init_total scn)
           ~delta:scn.Scenario.delta
    | _ -> affine_report ?budget ?cache scn controller)
  | Controller.Net { net; output_scale } ->
    let order = method_order scn.Scenario.method_ in
    let slots =
      match scn.Scenario.method_ with
      | Scenario.M_polar { slots; _ } -> Some slots
      | _ -> None
    in
    let cert =
      Option.map
        (fun c ->
          {
            Verifier.cc_cache = c;
            cc_unsafe = List.hd (Scenario.avoid_total scn);
            cc_goal = Scenario.goal_total scn;
          })
        cache
    in
    Verifier.nn_flowpipe_robust ~order ?disturbance_slots:slots ?budget ?cert
      ~f:(Scenario.f_total scn) ~delta:scn.Scenario.delta
      ~steps:scn.Scenario.steps ~net ~output_scale ~method_:Verifier.Polar
      ~x0:(Scenario.init_total scn) ()

type report = {
  verdict : Verifier.verdict;
  fallback : Verifier.fallback_report;
}

let verify_robust ?budget ?cache scn controller =
  let fallback = flowpipe_robust ?budget ?cache scn controller in
  { verdict = check scn fallback.Verifier.pipe; fallback }
