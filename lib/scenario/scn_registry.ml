(* The registry: one uniform handle per scenario — built-ins re-register
   through their DSL text (cross-checked against the module constants by
   the farm tests), and any DSL file loads into the same shape — so the
   CLI, the benchmarks and the fuzzer drive every system through one
   interface. *)

module Controller = Dwv_core.Controller
module Rng = Dwv_util.Rng
module Acc = Dwv_systems.Acc
module Pendulum = Dwv_systems.Pendulum
module Oscillator = Dwv_systems.Oscillator
module Threed = Dwv_systems.Threed

type entry = {
  scenario : Scenario.t;
  init : Rng.t -> Controller.t;
  verify_robust :
    ?budget:Dwv_robust.Budget.t ->
    ?cache:Dwv_cert.Cert_cache.t ->
    Controller.t ->
    Scn_verify.report;
  sim : Controller.t -> float array -> float array;
}

(* Generic entry for a parsed DSL scenario: verification through the
   scenario ladder, simulation through the scenario control law. *)
let of_scenario scenario =
  {
    scenario;
    init = Scenario.make_controller scenario;
    verify_robust =
      (fun ?budget ?cache c -> Scn_verify.verify_robust ?budget ?cache scenario c);
    sim = Scenario.sim scenario;
  }

let of_string src = of_scenario (Scenario.of_string src)
let of_file path = of_scenario (Scenario.of_file path)

(* Built-ins keep their own (specialized) verifiers — the zonotope engine
   for acc, the tuned NN ladders for the rest — but expose them through
   the same handle, judged with the same multi-box check. *)
let wrap scenario (fb : Dwv_reach.Verifier.fallback_report) =
  { Scn_verify.verdict = Scn_verify.check scenario fb.Dwv_reach.Verifier.pipe;
    fallback = fb }

let acc =
  let scenario = Scenario.of_string Acc.dsl in
  {
    scenario;
    init = (fun _rng -> Acc.initial_controller);
    verify_robust =
      (fun ?budget ?cache c -> wrap scenario (Acc.verify_robust ?budget ?cache c));
    sim = Acc.sim_controller;
  }

let pendulum =
  let scenario = Scenario.of_string Pendulum.dsl in
  {
    scenario;
    init = Pendulum.initial_controller;
    verify_robust =
      (fun ?budget ?cache c ->
        wrap scenario (Pendulum.verify_robust ?budget ?cache c));
    sim = Pendulum.sim_controller;
  }

let oscillator =
  let scenario = Scenario.of_string Oscillator.dsl in
  {
    scenario;
    init = Oscillator.initial_controller;
    verify_robust =
      (fun ?budget ?cache c ->
        wrap scenario (Oscillator.verify_robust ?budget ?cache c));
    sim = Oscillator.sim_controller;
  }

let threed =
  let scenario = Scenario.of_string Threed.dsl in
  {
    scenario;
    init = Threed.initial_controller;
    verify_robust =
      (fun ?budget ?cache c -> wrap scenario (Threed.verify_robust ?budget ?cache c));
    sim = Threed.sim_controller;
  }

let builtins =
  [ ("acc", acc); ("pendulum", pendulum); ("oscillator", oscillator);
    ("threed", threed) ]

let find name = List.assoc_opt name builtins
let names () = List.map fst builtins
