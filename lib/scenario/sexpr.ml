(* Minimal s-expressions for the scenario DSL: atoms, double-quoted
   strings (dynamics expressions contain spaces and parentheses) and
   lists, with ';' line comments. Error messages carry the character
   offset, matching the Expr parser's style. *)

type t =
  | Atom of string        (* bare word: names, numbers, keywords *)
  | Str of string         (* "quoted": expression text *)
  | List of t list

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt
let fail_at pos fmt = Fmt.kstr (fun s -> fail "at offset %d: %s" pos s) fmt

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_atom_char c = (not (is_space c)) && c <> '(' && c <> ')' && c <> '"' && c <> ';'

(* One pass over the source: returns the toplevel forms. *)
let parse_many src =
  let n = String.length src in
  let pos = ref 0 in
  let rec skip_ws () =
    if !pos < n then
      if is_space src.[!pos] then begin incr pos; skip_ws () end
      else if src.[!pos] = ';' then begin
        while !pos < n && src.[!pos] <> '\n' do incr pos done;
        skip_ws ()
      end
  in
  let rec value () =
    skip_ws ();
    if !pos >= n then fail_at n "unexpected end of input"
    else
      match src.[!pos] with
      | '(' ->
        let start = !pos in
        incr pos;
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          if !pos >= n then fail_at start "unclosed '('"
          else if src.[!pos] = ')' then incr pos
          else begin
            items := value () :: !items;
            loop ()
          end
        in
        loop ();
        List (List.rev !items)
      | ')' -> fail_at !pos "unexpected ')'"
      | '"' ->
        let start = !pos in
        incr pos;
        let buf = Buffer.create 16 in
        let rec loop () =
          if !pos >= n then fail_at start "unclosed string"
          else
            match src.[!pos] with
            | '"' -> incr pos
            | '\\' when !pos + 1 < n ->
              Buffer.add_char buf src.[!pos + 1];
              pos := !pos + 2;
              loop ()
            | c ->
              Buffer.add_char buf c;
              incr pos;
              loop ()
        in
        loop ();
        Str (Buffer.contents buf)
      | _ ->
        let start = !pos in
        while !pos < n && is_atom_char src.[!pos] do incr pos done;
        if !pos = start then fail_at start "unexpected character %C" src.[!pos];
        Atom (String.sub src start (!pos - start))
  in
  let forms = ref [] in
  skip_ws ();
  while !pos < n do
    forms := value () :: !forms;
    skip_ws ()
  done;
  List.rev !forms

let parse src =
  match parse_many src with
  | [ v ] -> Ok v
  | [] -> Error "empty input"
  | _ :: _ -> Error "expected exactly one toplevel form"
  | exception Parse_error msg -> Error msg

let escape_str s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Atom a -> Fmt.string ppf a
  | Str s -> Fmt.pf ppf "\"%s\"" (escape_str s)
  | List items -> Fmt.pf ppf "(@[<hv>%a@])" Fmt.(list ~sep:sp pp) items

let to_string v = Fmt.str "%a" pp v
