(* A scenario is the declarative unit of the farm: dynamics, reach-avoid
   spec (with a possibly multi-box avoid set and uncertain parameters),
   controller shape and verification method, parsed from a small
   s-expression DSL. Uncertain parameters are encoded as extra state
   dimensions with zero dynamics: the spec boxes the rest of the stack
   sees are over [dim + |params|] dimensions, so every existing layer
   (simulation, flowpipes, certificates) handles uncertainty for free. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Activation = Dwv_nn.Activation
module Mlp = Dwv_nn.Mlp
module Sampled_system = Dwv_ode.Sampled_system

type controller_shape =
  | Affine of float array array
      (* m rows of n_total+1 gains, last entry the bias: u_j = row·[x; 1] *)
  | Net of { sizes : int list; acts : Activation.t list; scale : float }

type method_spec =
  | M_taylor of { order : int }
  | M_interval of { order : int }
  | M_polar of { order : int; slots : int }
  | M_zonotope

type t = {
  name : string;
  dim : int;                  (* physical state dimensions *)
  m : int;                    (* control inputs *)
  delta : float;
  steps : int;
  f : Expr.t array;           (* length dim; params appear as x(dim+i) *)
  init : Box.t;               (* physical (dim-dimensional) boxes *)
  goal : Box.t;
  avoid : Box.t list;
  params : I.t array;         (* uncertain constants, as ranges *)
  controller : controller_shape;
  method_ : method_spec;
}

let fail fmt = Fmt.kstr failwith fmt

(* ------------------------------------------------------------------ *)
(* Exact float literals.  Atoms are read with [float_of_string] (which
   accepts decimal and hex-float syntax) or, for the rare double with no
   shortest-exact decimal form we emit, the [#x] bit pattern.  Printing
   prefers the shortest decimal that round-trips bit-for-bit. *)

let float_lit v =
  (* [s] was just printed with %g, so reading it back cannot fail *)
  let exact s =
    match float_of_string_opt s with
    | Some f -> Int64.bits_of_float f = Int64.bits_of_float v
    | None -> false
  in
  if Float.is_finite v then begin
    let s = Fmt.str "%.12g" v in
    if exact s then s
    else
      let s = Fmt.str "%.17g" v in
      if exact s then s else Fmt.str "#x%016Lx" (Int64.bits_of_float v)
  end
  else Fmt.str "#x%016Lx" (Int64.bits_of_float v)

let float_of_lit s =
  if String.length s > 2 && s.[0] = '#' && s.[1] = 'x' then
    match Int64.of_string_opt ("0x" ^ String.sub s 2 (String.length s - 2)) with
    | Some bits when String.length s = 18 -> Some (Int64.float_of_bits bits)
    | _ -> None
  else float_of_string_opt s

(* ------------------------------------------------------------------ *)
(* Parseable expression text: a printer whose output the Expr parser maps
   back to the *identical* hash-consed node.  Constants print as %.17g
   (always exact for finite doubles and within the lexer's grammar);
   composites are fully parenthesized so precedence never bites. *)

let expr_to_string e =
  let const c =
    if not (Float.is_finite c) then
      fail "Scenario: non-finite constant %h in dynamics" c;
    let s = Fmt.str "%.12g" c in
    let exact =
      match float_of_string_opt s with
      | Some f -> Int64.bits_of_float f = Int64.bits_of_float c
      | None -> false
    in
    let s = if exact then s else Fmt.str "%.17g" c in
    if c < 0.0 then "(" ^ s ^ ")" else s
  in
  Expr.fold e ~const
    ~var:(fun i -> Fmt.str "x%d" i)
    ~input:(fun j -> Fmt.str "u%d" j)
    ~add:(fun a b -> "(" ^ a ^ " + " ^ b ^ ")")
    ~sub:(fun a b -> "(" ^ a ^ " - " ^ b ^ ")")
    ~mul:(fun a b -> "(" ^ a ^ " * " ^ b ^ ")")
    ~div:(fun a b -> "(" ^ a ^ " / " ^ b ^ ")")
    ~neg:(fun a -> "(-" ^ a ^ ")")
    ~pow:(fun a k -> "(" ^ a ^ " ^ " ^ string_of_int k ^ ")")
    ~sin:(fun a -> "sin(" ^ a ^ ")")
    ~cos:(fun a -> "cos(" ^ a ^ ")")
    ~exp:(fun a -> "exp(" ^ a ^ ")")
    ~tanh:(fun a -> "tanh(" ^ a ^ ")")

(* Rebuild an expression with states and inputs substituted — used both
   for closing the loop under an affine controller and for fixing an
   uncertain parameter to a constant when shrinking. *)
let substitute ~var ~input e =
  Expr.fold e ~const:Expr.const ~var ~input ~add:Expr.add ~sub:Expr.sub
    ~mul:Expr.mul ~div:Expr.div ~neg:Expr.neg ~pow:Expr.pow ~sin:Expr.sin_
    ~cos:Expr.cos_ ~exp:Expr.exp_ ~tanh:Expr.tanh_

let max_indices e =
  Expr.fold e
    ~const:(fun _ -> (-1, -1))
    ~var:(fun i -> (i, -1))
    ~input:(fun j -> (-1, j))
    ~add:(fun (a, b) (c, d) -> (max a c, max b d))
    ~sub:(fun (a, b) (c, d) -> (max a c, max b d))
    ~mul:(fun (a, b) (c, d) -> (max a c, max b d))
    ~div:(fun (a, b) (c, d) -> (max a c, max b d))
    ~neg:Fun.id
    ~pow:(fun p _ -> p)
    ~sin:Fun.id ~cos:Fun.id ~exp:Fun.id ~tanh:Fun.id

(* ------------------------------------------------------------------ *)
(* Construction and validation *)

let n_total t = t.dim + Array.length t.params

let validate t =
  if t.name = "" then fail "Scenario: empty name";
  if t.dim < 1 then fail "Scenario %s: dim must be >= 1" t.name;
  if t.m < 1 then fail "Scenario %s: inputs must be >= 1" t.name;
  if not (Float.is_finite t.delta && t.delta > 0.0) then
    fail "Scenario %s: delta must be finite and positive" t.name;
  if t.steps < 1 then fail "Scenario %s: steps must be >= 1" t.name;
  if Array.length t.f <> t.dim then
    fail "Scenario %s: %d dynamics for dim %d" t.name (Array.length t.f) t.dim;
  let nt = n_total t in
  Array.iteri
    (fun i e ->
      let vmax, umax = max_indices e in
      if vmax >= nt then
        fail "Scenario %s: dynamics %d references x%d (only %d states+params)"
          t.name i vmax nt;
      if umax >= t.m then
        fail "Scenario %s: dynamics %d references u%d (only %d inputs)" t.name
          i umax t.m)
    t.f;
  let check_box what b =
    if Box.dim b <> t.dim then
      fail "Scenario %s: %s box has dim %d, expected %d" t.name what (Box.dim b)
        t.dim
  in
  check_box "init" t.init;
  check_box "goal" t.goal;
  List.iteri (fun i b -> check_box (Fmt.str "avoid[%d]" i) b) t.avoid;
  (match t.controller with
  | Affine rows ->
    if Array.length rows <> t.m then
      fail "Scenario %s: affine controller has %d rows, expected %d" t.name
        (Array.length rows) t.m;
    Array.iteri
      (fun j row ->
        if Array.length row <> nt + 1 then
          fail "Scenario %s: affine row %d has %d entries, expected %d (gains + bias)"
            t.name j (Array.length row) (nt + 1);
        if not (Array.for_all Float.is_finite row) then
          fail "Scenario %s: affine row %d has a non-finite gain" t.name j)
      rows
  | Net { sizes; acts; scale } ->
    (match sizes with
    | first :: _ when first <> nt ->
      fail "Scenario %s: net input width %d, expected %d" t.name first nt
    | _ :: _ -> ()
    | [] -> fail "Scenario %s: net needs sizes" t.name);
    (match List.rev sizes with
    | last :: _ when last <> t.m ->
      fail "Scenario %s: net output width %d, expected %d" t.name last t.m
    | _ -> ());
    if List.length acts <> List.length sizes - 1 then
      fail "Scenario %s: net needs %d activations, got %d" t.name
        (List.length sizes - 1) (List.length acts);
    if not (Float.is_finite scale) then
      fail "Scenario %s: non-finite net output scale" t.name);
  (match t.method_ with
  | M_taylor { order } | M_interval { order } ->
    if order < 1 then fail "Scenario %s: method order must be >= 1" t.name
  | M_polar { order; slots } ->
    if order < 1 then fail "Scenario %s: method order must be >= 1" t.name;
    if slots < 1 then fail "Scenario %s: polar slots must be >= 1" t.name
  | M_zonotope -> ());
  t

let make ~name ~dim ~m ~delta ~steps ~f ~init ~goal ~avoid ~params ~controller
    ~method_ () =
  validate
    { name; dim; m; delta; steps; f; init; goal; avoid; params; controller;
      method_ }

(* ------------------------------------------------------------------ *)
(* Derived views: the rest of the stack sees the augmented system where
   each uncertain parameter is a frozen extra state. *)

let f_total t =
  Array.append t.f (Array.map (fun _ -> Expr.const 0.0) t.params)

let augment t b =
  Box.of_intervals (Array.append (Array.init (Box.dim b) (Box.get b)) t.params)

let init_total t = augment t t.init
let goal_total t = augment t t.goal

(* A far-away placeholder when the DSL declares no obstacles: keeps the
   single-unsafe-box Spec honest without ever intersecting anything.
   Rounding_flow allow: built from literals, no computed bound flows in. *)
let far_box n =
  Box.make
    ~lo:(Array.make n 1e12)
    ~hi:(Array.make n (1e12 +. 1.0))

let avoid_total t =
  match List.map (augment t) t.avoid with
  | [] -> [ far_box (n_total t) ]
  | l -> l

let spec t =
  Spec.make ~name:t.name ~x0:(init_total t)
    ~unsafe:(List.hd (avoid_total t))
    ~goal:(goal_total t) ~delta:t.delta ~steps:t.steps

let sampled t =
  Sampled_system.make ~f:(f_total t) ~n:(n_total t) ~m:t.m ~delta:t.delta

let make_controller t rng =
  match t.controller with
  | Affine rows -> Controller.linear (Dwv_la.Mat.of_rows (Array.to_list rows))
  | Net { sizes; acts; scale } ->
    Controller.net ~output_scale:scale (Mlp.create ~sizes ~acts rng)

(* Control law on the augmented simulation state: linear gains expect the
   homogeneous [x; 1] vector (bias in the last column, as everywhere in
   lib/systems); nets take the state directly. *)
let sim _t controller x =
  match controller with
  | Controller.Linear _ ->
    Controller.eval controller (Array.append x [| 1.0 |])
  | Controller.Net _ -> Controller.eval controller x

(* u_j as expressions of the state, for closing the loop symbolically. *)
let affine_input_exprs t rows =
  let nt = n_total t in
  Array.map
    (fun row ->
      let acc = ref (Expr.const row.(nt)) in
      for k = nt - 1 downto 0 do
        if row.(k) <> 0.0 then
          acc := Expr.add (Expr.mul (Expr.const row.(k)) (Expr.var k)) !acc
      done;
      !acc)
    rows

(* Autonomous dynamics with an affine controller substituted in; [None]
   for net controllers (those go through the NN flowpipe instead). *)
let closed_loop t =
  match t.controller with
  | Net _ -> None
  | Affine rows ->
    let u = affine_input_exprs t rows in
    Some
      (Array.map
         (substitute ~var:Expr.var ~input:(fun j -> u.(j)))
         (f_total t))

(* ------------------------------------------------------------------ *)
(* Structural equality (used by the built-in re-registration tests). *)

let box_eq a b =
  Box.dim a = Box.dim b
  && Array.for_all Fun.id
       (Array.init (Box.dim a) (fun i ->
            let x = Box.get a i and y = Box.get b i in
            Int64.bits_of_float (I.lo x) = Int64.bits_of_float (I.lo y)
            && Int64.bits_of_float (I.hi x) = Int64.bits_of_float (I.hi y)))

let controller_eq a b =
  match (a, b) with
  | Affine r1, Affine r2 ->
    Array.length r1 = Array.length r2
    && Array.for_all2
         (fun x y ->
           Array.length x = Array.length y
           && Array.for_all2
                (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v)
                x y)
         r1 r2
  | Net n1, Net n2 ->
    n1.sizes = n2.sizes && n1.acts = n2.acts
    && Int64.bits_of_float n1.scale = Int64.bits_of_float n2.scale
  | _ -> false

let equal a b =
  a.name = b.name && a.dim = b.dim && a.m = b.m
  && Int64.bits_of_float a.delta = Int64.bits_of_float b.delta
  && a.steps = b.steps
  && Array.length a.f = Array.length b.f
  && Array.for_all2 Expr.equal a.f b.f
  && box_eq a.init b.init && box_eq a.goal b.goal
  && List.length a.avoid = List.length b.avoid
  && List.for_all2 box_eq a.avoid b.avoid
  && Array.length a.params = Array.length b.params
  && Array.for_all2
       (fun x y ->
         Int64.bits_of_float (I.lo x) = Int64.bits_of_float (I.lo y)
         && Int64.bits_of_float (I.hi x) = Int64.bits_of_float (I.hi y))
       a.params b.params
  && controller_eq a.controller b.controller
  && a.method_ = b.method_

(* ------------------------------------------------------------------ *)
(* DSL reading *)

let atom_name = function
  | Sexpr.List (Sexpr.Atom h :: _) -> Some h
  | _ -> None

let field forms key =
  List.find_opt (fun s -> atom_name s = Some key) forms

let field_exn forms key =
  match field forms key with
  | Some (Sexpr.List (_ :: rest)) -> rest
  | _ -> fail "Scenario: missing (%s ...) field" key

let one_atom key = function
  | [ Sexpr.Atom a ] -> a
  | _ -> fail "Scenario: (%s ...) expects a single atom" key

let parse_float key s =
  match float_of_lit s with
  | Some v -> v
  | None -> fail "Scenario: bad float %S in (%s ...)" s key

let parse_int key s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "Scenario: bad integer %S in (%s ...)" s key

let parse_range key = function
  | Sexpr.List [ Sexpr.Atom lo; Sexpr.Atom hi ] ->
    let lo = parse_float key lo and hi = parse_float key hi in
    (try I.make lo hi
     with Invalid_argument _ ->
       fail "Scenario: bad range [%g, %g] in (%s ...)" lo hi key)
  | _ -> fail "Scenario: (%s ...) entries must be (lo hi) pairs" key

let parse_box key forms =
  match forms with
  | [] -> fail "Scenario: empty box in (%s ...)" key
  | _ -> Box.of_intervals (Array.of_list (List.map (parse_range key) forms))

let parse_expr_field key forms =
  List.map
    (function
      | Sexpr.Str s | Sexpr.Atom s -> (
        match Dwv_expr.Parser.parse s with
        | Ok e -> e
        | Error msg -> fail "Scenario: bad expression %S: %s" s msg)
      | Sexpr.List _ -> fail "Scenario: (%s ...) expects expression strings" key)
    forms

let act_of_string = function
  | "relu" -> Activation.Relu
  | "tanh" -> Activation.Tanh
  | "sigmoid" -> Activation.Sigmoid
  | "linear" | "id" -> Activation.Linear
  | s -> fail "Scenario: unknown activation %S" s

let act_to_string = function
  | Activation.Relu -> "relu"
  | Activation.Tanh -> "tanh"
  | Activation.Sigmoid -> "sigmoid"
  | Activation.Linear -> "linear"

let parse_controller = function
  | [ Sexpr.List (Sexpr.Atom "affine" :: rows) ] ->
    let row = function
      | Sexpr.List entries ->
        Array.of_list
          (List.map
             (function
               | Sexpr.Atom a -> parse_float "affine" a
               | _ -> fail "Scenario: affine rows hold float atoms")
             entries)
      | _ -> fail "Scenario: (affine ...) expects rows (g0 ... gN bias)"
    in
    Affine (Array.of_list (List.map row rows))
  | [ Sexpr.List (Sexpr.Atom "net" :: net_fields) ] ->
    let ints key =
      List.map (fun s -> parse_int key (one_atom key [ s ])) (field_exn net_fields key)
    in
    let sizes = ints "sizes" in
    let acts =
      List.map
        (function
          | Sexpr.Atom a -> act_of_string a
          | _ -> fail "Scenario: (acts ...) expects atoms")
        (field_exn net_fields "acts")
    in
    let scale =
      match field net_fields "scale" with
      | Some (Sexpr.List [ _; Sexpr.Atom a ]) -> parse_float "scale" a
      | Some _ -> fail "Scenario: (scale ...) expects one float"
      | None -> 1.0
    in
    Net { sizes; acts; scale }
  | _ -> fail "Scenario: (controller ...) expects (affine ...) or (net ...)"

let parse_method = function
  | [ Sexpr.Atom "zonotope" ] | [ Sexpr.List [ Sexpr.Atom "zonotope" ] ] ->
    M_zonotope
  | [ Sexpr.List (Sexpr.Atom kind :: opts) ] ->
    let int_opt key default =
      match field opts key with
      | Some (Sexpr.List [ _; Sexpr.Atom a ]) -> parse_int key a
      | Some _ -> fail "Scenario: (%s ...) expects one integer" key
      | None -> default
    in
    (match kind with
    | "taylor" -> M_taylor { order = int_opt "order" 3 }
    | "interval" -> M_interval { order = int_opt "order" 3 }
    | "polar" -> M_polar { order = int_opt "order" 2; slots = int_opt "slots" 40 }
    | k -> fail "Scenario: unknown method %S" k)
  | _ -> fail "Scenario: (method ...) expects a method form"

let of_sexp = function
  | Sexpr.List (Sexpr.Atom "scenario" :: forms) ->
    let name = one_atom "name" (field_exn forms "name") in
    let dim = parse_int "dim" (one_atom "dim" (field_exn forms "dim")) in
    let m = parse_int "inputs" (one_atom "inputs" (field_exn forms "inputs")) in
    let delta = parse_float "delta" (one_atom "delta" (field_exn forms "delta")) in
    let steps = parse_int "steps" (one_atom "steps" (field_exn forms "steps")) in
    let f = Array.of_list (parse_expr_field "dynamics" (field_exn forms "dynamics")) in
    let init = parse_box "init" (field_exn forms "init") in
    let goal = parse_box "goal" (field_exn forms "goal") in
    let avoid =
      match field forms "avoid" with
      | None -> []
      | Some (Sexpr.List (_ :: members)) ->
        List.map
          (function
            | Sexpr.List ranges -> parse_box "avoid" ranges
            | _ -> fail "Scenario: (avoid ...) members are ((lo hi) ...) boxes")
          members
      | Some _ -> fail "Scenario: malformed (avoid ...)"
    in
    let params =
      match field forms "params" with
      | None -> [||]
      | Some (Sexpr.List (_ :: ranges)) ->
        Array.of_list (List.map (parse_range "params") ranges)
      | Some _ -> fail "Scenario: malformed (params ...)"
    in
    let controller = parse_controller (field_exn forms "controller") in
    let method_ = parse_method (field_exn forms "method") in
    make ~name ~dim ~m ~delta ~steps ~f ~init ~goal ~avoid ~params ~controller
      ~method_ ()
  | _ -> fail "Scenario: expected (scenario ...)"

let of_string src =
  match Sexpr.parse src with
  | Ok s -> of_sexp s
  | Error msg -> fail "Scenario: %s" msg

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* DSL writing (exact round-trip: [of_string (to_string t)] is [equal]) *)

let range_sexp iv =
  Sexpr.List [ Sexpr.Atom (float_lit (I.lo iv)); Sexpr.Atom (float_lit (I.hi iv)) ]

let box_sexps b = List.init (Box.dim b) (fun i -> range_sexp (Box.get b i))

let controller_sexp = function
  | Affine rows ->
    Sexpr.List
      (Sexpr.Atom "affine"
      :: Array.to_list
           (Array.map
              (fun row ->
                Sexpr.List
                  (Array.to_list
                     (Array.map (fun v -> Sexpr.Atom (float_lit v)) row)))
              rows))
  | Net { sizes; acts; scale } ->
    Sexpr.List
      [
        Sexpr.Atom "net";
        Sexpr.List
          (Sexpr.Atom "sizes"
          :: List.map (fun k -> Sexpr.Atom (string_of_int k)) sizes);
        Sexpr.List
          (Sexpr.Atom "acts" :: List.map (fun a -> Sexpr.Atom (act_to_string a)) acts);
        Sexpr.List [ Sexpr.Atom "scale"; Sexpr.Atom (float_lit scale) ];
      ]

let method_sexp = function
  | M_zonotope -> Sexpr.List [ Sexpr.Atom "zonotope" ]
  | M_taylor { order } ->
    Sexpr.List
      [
        Sexpr.Atom "taylor";
        Sexpr.List [ Sexpr.Atom "order"; Sexpr.Atom (string_of_int order) ];
      ]
  | M_interval { order } ->
    Sexpr.List
      [
        Sexpr.Atom "interval";
        Sexpr.List [ Sexpr.Atom "order"; Sexpr.Atom (string_of_int order) ];
      ]
  | M_polar { order; slots } ->
    Sexpr.List
      [
        Sexpr.Atom "polar";
        Sexpr.List [ Sexpr.Atom "order"; Sexpr.Atom (string_of_int order) ];
        Sexpr.List [ Sexpr.Atom "slots"; Sexpr.Atom (string_of_int slots) ];
      ]

let to_sexp t =
  let fields =
    [
      Sexpr.List [ Sexpr.Atom "name"; Sexpr.Atom t.name ];
      Sexpr.List [ Sexpr.Atom "dim"; Sexpr.Atom (string_of_int t.dim) ];
      Sexpr.List [ Sexpr.Atom "inputs"; Sexpr.Atom (string_of_int t.m) ];
      Sexpr.List [ Sexpr.Atom "delta"; Sexpr.Atom (float_lit t.delta) ];
      Sexpr.List [ Sexpr.Atom "steps"; Sexpr.Atom (string_of_int t.steps) ];
      Sexpr.List
        (Sexpr.Atom "dynamics"
        :: Array.to_list (Array.map (fun e -> Sexpr.Str (expr_to_string e)) t.f));
      Sexpr.List (Sexpr.Atom "init" :: box_sexps t.init);
      Sexpr.List (Sexpr.Atom "goal" :: box_sexps t.goal);
    ]
    @ (match t.avoid with
      | [] -> []
      | boxes ->
        [
          Sexpr.List
            (Sexpr.Atom "avoid"
            :: List.map (fun b -> Sexpr.List (box_sexps b)) boxes);
        ])
    @ (match t.params with
      | [||] -> []
      | ps ->
        [
          Sexpr.List
            (Sexpr.Atom "params" :: Array.to_list (Array.map range_sexp ps));
        ])
    @ [
        Sexpr.List [ Sexpr.Atom "controller"; controller_sexp t.controller ];
        Sexpr.List [ Sexpr.Atom "method"; method_sexp t.method_ ];
      ]
  in
  Sexpr.List (Sexpr.Atom "scenario" :: fields)

let to_string t = Sexpr.to_string (to_sexp t) ^ "\n"

let pp ppf t =
  Fmt.pf ppf "%s: dim %d, %d input%s, %d param%s, %d avoid box%s, %d steps @@ %g"
    t.name t.dim t.m
    (if t.m = 1 then "" else "s")
    (Array.length t.params)
    (if Array.length t.params = 1 then "" else "s")
    (List.length t.avoid)
    (if List.length t.avoid = 1 then "" else "es")
    t.steps t.delta
