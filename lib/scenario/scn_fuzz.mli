(** Seeded scenario fuzzer with a differential soundness oracle.

    Every scenario is a pure function of [(seed, index)] via
    [Rng.split_n] child streams, so a campaign is bit-identical at any
    domain count. Verdicts are cross-examined with independent evidence:
    [Reach_avoid] must survive Monte-Carlo rollouts and robustness
    -minimizing falsification, [Unsafe] must be corroborated by every
    sampled rollout, stored certificates must Full-replay under
    {!Dwv_cert.Cert_check}, and layer-1 model checks must report zero
    errors. Disagreements are shrunk to minimal DSL reproducers. *)

(** Deterministically sample one well-formed scenario (small polynomial /
    trigonometric dynamics, affine controller, goal seeded from the
    nominal rollout, 0-2 avoid boxes, 0-1 uncertain parameters). *)
val generate : Dwv_util.Rng.t -> int -> Scenario.t

type check_result = {
  verdict : Dwv_reach.Verifier.verdict;
  rung : string option;
  cert : string;  (** "valid", "absent", or the failed replay status *)
  oracle : string option;  (** [Some reason] on a soundness disagreement *)
}

(** Run the full pipeline on one scenario — layer-1 analysis, the robust
    verification ladder with an in-memory certificate cache, certificate
    replay, and the Monte-Carlo / falsification oracle. *)
val examine :
  ?budget:Dwv_robust.Budget.t ->
  ?rollouts:int ->
  rng:Dwv_util.Rng.t ->
  Scenario.t ->
  check_result

(** Greedily simplify a disagreeing scenario (halve steps, drop avoid
    boxes, freeze parameters to midpoints, tighten the initial box) while
    the disagreement persists under a deterministic probe seed. *)
val shrink :
  ?budget:Dwv_robust.Budget.t ->
  ?rollouts:int ->
  probe_seed:int ->
  Scenario.t ->
  Scenario.t

type record = {
  index : int;
  name : string;
  dim : int;
  n_params : int;
  n_avoid : int;
  steps : int;
  verdict : string;
  rung : string option;
  cert : string;
  oracle : string;
  violation : bool;
  latency_ms : float;  (** the only non-deterministic field *)
}

type reproducer = { rep_index : int; reason : string; dsl : string }

type result = {
  seed : int;
  count : int;
  records : record array;
  reproducers : reproducer list;
}

(** Everything a record asserts minus wall-clock time; equal key
    sequences at different domain counts certify deterministic replay. *)
val determinism_key : record -> string

(** Run a campaign of [count] scenarios (default 200) from [seed],
    optionally sharded over [pool]. *)
val run :
  ?budget:Dwv_robust.Budget.t ->
  ?pool:Dwv_parallel.Pool.t ->
  ?rollouts:int ->
  ?count:int ->
  seed:int ->
  unit ->
  result

(** Number of records with a soundness-oracle violation. *)
val violations : result -> int

(** Hand-rolled JSON payload of a campaign (the [SCENARIOS_report.json]
    format): seed, count, violation total, per-scenario records, shrunk
    reproducers. *)
val report_json : ?domains:int -> result -> string
