(** Minimal s-expressions for the scenario DSL: atoms, double-quoted
    strings, lists, and [;] line comments. *)

type t =
  | Atom of string
  | Str of string
  | List of t list

exception Parse_error of string

(** Parse exactly one toplevel form. *)
val parse : string -> (t, string) result

(** Parse every toplevel form; raises {!Parse_error} on bad input. *)
val parse_many : string -> t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
