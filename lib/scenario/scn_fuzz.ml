(* Seeded scenario fuzzer with a differential soundness oracle.

   Each index draws its own child stream (Rng.split_n), so the whole
   campaign is a pure function of the seed: generation, verification,
   rollouts and shrinking are bit-identical at any domain count. The
   generator samples small polynomial/trigonometric dynamics with a
   stabilizing diagonal, a mildly damping affine controller, a goal box
   seeded from the nominal center rollout, 0-2 avoid boxes (sometimes
   placed adversarially on the nominal trajectory) and 0-1 uncertain
   parameters — always well-formed by construction, so the layer-1
   analysis oracle must come back clean.

   The oracle cross-examines every verdict with independent evidence:

     Reach_avoid  =>  N Monte-Carlo rollouts all safe and goal-reaching,
                      and robustness-minimizing falsification finds no
                      counterexample to safety or goal-reaching;
     Unsafe       =>  every sampled rollout violates safety (the verdict
                      is only issued when a whole segment enclosure sits
                      inside an avoid box);
     any stored certificate must Full-replay under Cert_check;
     layer-1 model checks must report zero errors.

   Disagreements are shrunk greedily (fewer steps, fewer avoid boxes,
   parameters frozen to midpoints, tighter initial box) to a minimal
   reproducer whose DSL text is reported for the committed corpus. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Rng = Dwv_util.Rng
module Pool = Dwv_parallel.Pool
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Evaluate = Dwv_core.Evaluate
module Falsifier = Dwv_core.Falsifier
module Sampled_system = Dwv_ode.Sampled_system
module Verifier = Dwv_reach.Verifier
module Model_check = Dwv_analysis.Model_check
module Diagnostics = Dwv_analysis.Diagnostics
module Cert_cache = Dwv_cert.Cert_cache
module Cert_check = Dwv_cert.Cert_check

(* ------------------------------------------------------------------ *)
(* Generation *)

let deltas = [| 0.02; 0.05; 0.1 |]

(* Nominal closed-loop rollout used to seed the goal box and to place
   avoid boxes relative to where trajectories actually go. *)
let nominal_trace scn_f ~nt ~delta ~steps ~row x0 =
  let sys = Sampled_system.make ~f:scn_f ~n:nt ~m:1 ~delta in
  let controller x =
    let acc = ref row.(nt) in
    for k = 0 to nt - 1 do
      acc := !acc +. (row.(k) *. x.(k))
    done;
    [| !acc |]
  in
  (Sampled_system.simulate sys ~controller ~x0 ~steps).Sampled_system.states

(* Rounding_flow allow: all raw float arithmetic below builds fuzz
   *inputs* (initial/goal/avoid boxes), not claimed enclosures — any box
   is a legitimate test case and the differential oracle re-checks every
   verdict produced from it. *)
let generate rng index =
  let dim = 1 + Rng.int rng 3 in
  let n_params = if Rng.int rng 4 = 0 then 1 else 0 in
  let nt = dim + n_params in
  let delta = deltas.(Rng.int rng (Array.length deltas)) in
  let steps = 3 + Rng.int rng 6 in
  let params =
    Array.init n_params (fun _ ->
        let c = Rng.uniform rng ~lo:0.1 ~hi:0.5 in
        I.make (c -. 0.05) (c +. 0.05))
  in
  (* stabilizing diagonal, optional quadratic coupling, optional sine
     term; the input enters the first coordinate *)
  let f =
    Array.init dim (fun i ->
        let a = Rng.uniform rng ~lo:0.5 ~hi:1.5 in
        let base = Expr.scale (-.a) (Expr.var i) in
        let base = if i = 0 then Expr.add base (Expr.input 0) else base in
        let base =
          if Rng.bool rng then
            let j = Rng.int rng nt and k = Rng.int rng dim in
            let c = Rng.uniform rng ~lo:(-0.4) ~hi:0.4 in
            Expr.add base (Expr.scale c (Expr.mul (Expr.var j) (Expr.var k)))
          else base
        in
        if Rng.int rng 3 = 0 then
          let j = Rng.int rng dim in
          let c = Rng.uniform rng ~lo:(-0.3) ~hi:0.3 in
          Expr.add base (Expr.scale c (Expr.sin_ (Expr.var j)))
        else base)
  in
  let center = Array.init dim (fun _ -> Rng.uniform rng ~lo:(-0.4) ~hi:0.4) in
  let radius = Array.init dim (fun _ -> Rng.uniform rng ~lo:0.01 ~hi:0.04) in
  let init =
    Box.make
      ~lo:(Array.init dim (fun i -> center.(i) -. radius.(i)))
      ~hi:(Array.init dim (fun i -> center.(i) +. radius.(i)))
  in
  let row =
    Array.init (nt + 1) (fun k ->
        if k < dim then Rng.uniform rng ~lo:(-0.3) ~hi:0.0
        else if k < nt then 0.0
        else Rng.uniform rng ~lo:(-0.05) ~hi:0.05)
  in
  let method_ =
    if Rng.bool rng then Scenario.M_taylor { order = 2 + Rng.int rng 2 }
    else Scenario.M_interval { order = 2 + Rng.int rng 2 }
  in
  let f_aug = Array.append f (Array.map (fun _ -> Expr.const 0.0) params) in
  let x0_nominal = Array.append center (Array.map I.mid params) in
  let states = nominal_trace f_aug ~nt ~delta ~steps ~row x0_nominal in
  let finite p = Array.for_all Float.is_finite p in
  let endpoint =
    let last = states.(Array.length states - 1) in
    if finite last then Array.sub last 0 dim else Array.make dim 0.0
  in
  let goal_r = Rng.uniform rng ~lo:0.25 ~hi:0.45 in
  let goal =
    Box.make
      ~lo:(Array.map (fun c -> c -. goal_r) endpoint)
      ~hi:(Array.map (fun c -> c +. goal_r) endpoint)
  in
  (* Avoid boxes: mostly offset away from the nominal trajectory, with an
     occasional adversarial box centered right on it. A candidate that
     touches the initial or goal box is dropped so the generated spec is
     well-formed by construction (the analysis oracle demands it). *)
  let avoid =
    let n_avoid = Rng.int rng 3 in
    let candidates =
      List.init n_avoid (fun _ ->
          let t = Rng.int rng (Array.length states) in
          let anchor_full = states.(t) in
          let anchor =
            if finite anchor_full then Array.sub anchor_full 0 dim
            else Array.make dim 0.0
          in
          let adversarial = Rng.int rng 5 = 0 in
          let c =
            Array.map
              (fun a ->
                if adversarial then a
                else
                  let off = Rng.uniform rng ~lo:0.5 ~hi:1.0 in
                  if Rng.bool rng then a +. off else a -. off)
              anchor
          in
          let r = Rng.uniform rng ~lo:0.05 ~hi:0.2 in
          Box.make
            ~lo:(Array.map (fun x -> x -. r) c)
            ~hi:(Array.map (fun x -> x +. r) c))
    in
    List.filter
      (fun b -> not (Box.intersects b init || Box.intersects b goal))
      candidates
  in
  Scenario.make
    ~name:(Fmt.str "fuzz-%d" index)
    ~dim ~m:1 ~delta ~steps ~f ~init ~goal ~avoid ~params
    ~controller:(Scenario.Affine [| row |])
    ~method_ ()

(* ------------------------------------------------------------------ *)
(* The oracle *)

type check_result = { verdict : Verifier.verdict; rung : string option;
                      cert : string; oracle : string option }

let analysis_errors scn controller =
  let nt = Scenario.n_total scn in
  let diags =
    Model_check.check_dynamics ~name:scn.Scenario.name
      ~f:(Scenario.f_total scn) ~n:nt ~m:scn.Scenario.m
    @ Model_check.check_spec ~name:scn.Scenario.name ~expected_n:nt
        (Scenario.spec scn)
    @ Model_check.check_controller ~name:scn.Scenario.name ~n:nt
        ~m:scn.Scenario.m controller
  in
  List.filter (fun d -> d.Diagnostics.severity = Diagnostics.Error) diags

(* Re-check a scenario end to end and cross-examine the verdict. [rng]
   drives the Monte-Carlo evidence; everything else is deterministic in
   the scenario itself. Returns the first oracle disagreement, if any. *)
let examine ?budget ?(rollouts = 50) ~rng scn =
  let controller = Scenario.make_controller scn rng in
  match analysis_errors scn controller with
  | d :: _ ->
    { verdict = Verifier.Unknown; rung = None; cert = "absent";
      oracle = Some (Fmt.str "analysis: %s (%s)" d.Diagnostics.check
                       d.Diagnostics.message) }
  | [] ->
    let cache = Cert_cache.create () in
    let report = Scn_verify.verify_robust ?budget ~cache scn controller in
    let verdict = report.Scn_verify.verdict in
    let rung = report.Scn_verify.fallback.Verifier.rung in
    (* certificate replay: anything the verification deposited must
       survive a Full directed-rounding replay against the same inputs *)
    let cert, cert_violation =
      match Scn_verify.fingerprint scn controller with
      | None -> ("absent", None)
      | Some fp -> (
        match Cert_cache.find cache ~fingerprint:fp with
        | None -> ("absent", None)
        | Some c -> (
          match
            Cert_check.validate_cert ?budget ~level:Cert_check.Full ~expected:fp
              ~f:(Scenario.f_total scn) c
          with
          | Cert_check.Valid, _ -> ("valid", None)
          | status, _ ->
            let s = Cert_check.verdict_check_to_string status in
            (s, Some (Fmt.str "cert: %s" s))))
    in
    let sys = Scenario.sampled scn in
    let sim = Scenario.sim scn controller in
    let spec = Scenario.spec scn in
    let avoid = Scenario.avoid_total scn in
    let oracle =
      match cert_violation with
      | Some _ as v -> v
      | None -> (
        match verdict with
        | Verifier.Reach_avoid ->
          (* every rollout must be safe and goal-reaching, and dedicated
             falsification must come up empty-handed *)
          let streams = Rng.split_n rng rollouts in
          let bad =
            Array.find_opt
              (fun r ->
                let x0 = Box.sample r spec.Spec.x0 in
                let ro = Evaluate.rollout ~avoid ~sys ~controller:sim ~spec x0 in
                not (ro.Evaluate.safe && ro.Evaluate.reached))
              streams
          in
          if bad <> None then
            Some "oracle: rollout violates a verified Reach_avoid"
          else begin
            match
              Falsifier.search ~attempts:20 ~avoid ~rng ~sys ~controller:sim
                ~spec ~property:Falsifier.Safety ()
            with
            | Some _ -> Some "oracle: falsifier beat a verified Reach_avoid"
            | None -> (
              match
                Falsifier.search ~attempts:20 ~avoid ~rng ~sys ~controller:sim
                  ~spec ~property:Falsifier.Goal_reaching ()
              with
              | Some _ ->
                Some "oracle: goal falsified under a verified Reach_avoid"
              | None -> None)
          end
        | Verifier.Unsafe ->
          (* certainly-unsafe means a whole segment enclosure sits inside
             an avoid box: every concrete trajectory must violate safety *)
          let streams = Rng.split_n rng rollouts in
          let safe_one =
            Array.find_opt
              (fun r ->
                let x0 = Box.sample r spec.Spec.x0 in
                (Evaluate.rollout ~avoid ~sys ~controller:sim ~spec x0)
                  .Evaluate.safe)
              streams
          in
          if safe_one <> None then
            Some "oracle: safe rollout under a certainly-Unsafe verdict"
          else None
        | Verifier.Unknown -> None)
    in
    { verdict; rung; cert; oracle }

(* ------------------------------------------------------------------ *)
(* Shrinking: greedily simplify while the disagreement persists. Each
   probe re-runs the full pipeline with a fresh rng of the given seed, so
   shrinking is deterministic. *)

let still_violates ?budget ~rollouts ~probe_seed scn =
  (examine ?budget ~rollouts ~rng:(Rng.create probe_seed) scn).oracle <> None

(* Rounding_flow allow: shrinking is a search heuristic — each candidate
   box is only reported after the oracle re-confirms the failure on it. *)
let shrink_candidates (scn : Scenario.t) =
  let remake ?steps ?init ?avoid ?params ?f () =
    try
      Some
        (Scenario.make ~name:scn.name ~dim:scn.dim ~m:scn.m ~delta:scn.delta
           ~steps:(Option.value steps ~default:scn.steps)
           ~f:(Option.value f ~default:scn.f)
           ~init:(Option.value init ~default:scn.init)
           ~goal:scn.goal
           ~avoid:(Option.value avoid ~default:scn.avoid)
           ~params:(Option.value params ~default:scn.params)
           ~controller:scn.controller ~method_:scn.method_ ())
    with Failure _ -> None
  in
  let fewer_steps =
    if scn.steps > 1 then [ remake ~steps:(scn.steps / 2) () ] else []
  in
  let fewer_avoid =
    List.mapi
      (fun i _ ->
        remake ~avoid:(List.filteri (fun j _ -> j <> i) scn.avoid) ())
      scn.avoid
  in
  let frozen_params =
    if Array.length scn.params = 0 then []
    else begin
      (* freeze every uncertain parameter to its midpoint constant *)
      let mid = Array.map I.mid scn.params in
      let f =
        Array.map
          (Scenario.substitute
             ~var:(fun k ->
               if k >= scn.dim then Expr.const mid.(k - scn.dim)
               else Expr.var k)
             ~input:Expr.input)
          scn.f
      in
      (* the affine rows lose their (zero) parameter columns *)
      let controller_ok =
        match scn.controller with
        | Scenario.Affine rows ->
          Array.for_all
            (fun row ->
              Array.for_all
                (fun k -> row.(k) = 0.0)
                (Array.init (Array.length scn.params) (fun i -> scn.dim + i)))
            rows
        | Scenario.Net _ -> false
      in
      if not controller_ok then []
      else
        let drop_cols row =
          Array.append
            (Array.sub row 0 scn.dim)
            [| row.(Array.length row - 1) |]
        in
        let controller =
          match scn.controller with
          | Scenario.Affine rows -> Scenario.Affine (Array.map drop_cols rows)
          | Scenario.Net _ -> assert false
        in
        [
          (try
             Some
               (Scenario.make ~name:scn.name ~dim:scn.dim ~m:scn.m
                  ~delta:scn.delta ~steps:scn.steps ~f ~init:scn.init
                  ~goal:scn.goal ~avoid:scn.avoid ~params:[||] ~controller
                  ~method_:scn.method_ ())
           with Failure _ -> None);
        ]
    end
  in
  let tighter_init =
    let c = Box.center scn.init and r = Box.radii scn.init in
    if Array.exists (fun x -> x > 1e-6) r then
      [
        remake
          ~init:
            (Box.make
               ~lo:(Array.mapi (fun i ci -> ci -. (r.(i) /. 2.0)) c)
               ~hi:(Array.mapi (fun i ci -> ci +. (r.(i) /. 2.0)) c))
          ();
      ]
    else []
  in
  List.filter_map Fun.id (fewer_steps @ fewer_avoid @ frozen_params @ tighter_init)

let shrink ?budget ?(rollouts = 50) ~probe_seed scn =
  let rec loop scn fuel =
    if fuel = 0 then scn
    else
      match
        List.find_opt
          (still_violates ?budget ~rollouts ~probe_seed)
          (shrink_candidates scn)
      with
      | Some smaller -> loop smaller (fuel - 1)
      | None -> scn
  in
  loop scn 32

(* ------------------------------------------------------------------ *)
(* The campaign *)

type record = {
  index : int;
  name : string;
  dim : int;
  n_params : int;
  n_avoid : int;
  steps : int;
  verdict : string;
  rung : string option;
  cert : string;
  oracle : string;
  violation : bool;
  latency_ms : float;
}

type reproducer = { rep_index : int; reason : string; dsl : string }

type result = {
  seed : int;
  count : int;
  records : record array;
  reproducers : reproducer list;
}

(* Everything the run asserts about, minus wall-clock time: equal keys at
   different domain counts certify deterministic replay. *)
let determinism_key r =
  Fmt.str "%d|%s|%d|%d|%d|%d|%s|%s|%s|%s|%b" r.index r.name r.dim r.n_params
    r.n_avoid r.steps r.verdict
    (Option.value r.rung ~default:"-")
    r.cert r.oracle r.violation

let run_one ?budget ?(rollouts = 50) ~seed ~rng index =
  let t0 = Unix.gettimeofday () in
  let scn = generate rng index in
  let res = examine ?budget ~rollouts ~rng scn in
  let reproducer =
    match res.oracle with
    | None -> None
    | Some reason ->
      let probe_seed = seed + (7919 * (index + 1)) in
      let minimal = shrink ?budget ~rollouts ~probe_seed scn in
      Some { rep_index = index; reason; dsl = Scenario.to_string minimal }
  in
  let latency_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  ( {
      index;
      name = scn.Scenario.name;
      dim = scn.Scenario.dim;
      n_params = Array.length scn.Scenario.params;
      n_avoid = List.length scn.Scenario.avoid;
      steps = scn.Scenario.steps;
      verdict = Verifier.verdict_to_string res.verdict;
      rung = res.rung;
      cert = res.cert;
      oracle = Option.value res.oracle ~default:"ok";
      violation = res.oracle <> None;
      latency_ms;
    },
    reproducer )

let run ?budget ?pool ?(rollouts = 50) ?(count = 200) ~seed () =
  if count < 1 then invalid_arg "Scn_fuzz.run: need at least one scenario";
  (* one child stream per scenario, split before any work: scenario i is
     a pure function of (seed, i), so the campaign shards across domains
     without changing a single bit of any record *)
  let streams = Rng.split_n (Rng.create seed) count in
  let one i = run_one ?budget ~rollouts ~seed ~rng:streams.(i) i in
  let indices = Array.init count (fun i -> i) in
  let outcomes =
    match pool with
    | Some pool when Pool.domains pool > 1 && count > 1 ->
      Pool.map pool one indices
    | _ -> Array.map one indices
  in
  {
    seed;
    count;
    records = Array.map fst outcomes;
    reproducers =
      Array.to_list outcomes |> List.filter_map (fun (_, r) -> r);
  }

let violations result =
  Array.fold_left (fun n r -> if r.violation then n + 1 else n) 0 result.records

(* ------------------------------------------------------------------ *)
(* Report serialization (the SCENARIOS_report.json payload) *)

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let report_json ?(domains = 1) result =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n  \"seed\": %d,\n  \"count\": %d,\n  \"domains\": %d,\n  \"violations\": %d,\n  \"records\": [\n"
    result.seed result.count domains (violations result);
  Array.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"index\": %d, \"name\": \"%s\", \"dim\": %d, \"params\": %d, \
         \"avoid\": %d, \"steps\": %d, \"verdict\": \"%s\", \"rung\": \"%s\", \
         \"cert\": \"%s\", \"oracle\": \"%s\", \"violation\": %b, \
         \"latency_ms\": %.3f}%s\n"
        r.index (json_escape r.name) r.dim r.n_params r.n_avoid r.steps
        (json_escape r.verdict)
        (json_escape (Option.value r.rung ~default:"-"))
        (json_escape r.cert) (json_escape r.oracle) r.violation r.latency_ms
        (if i = Array.length result.records - 1 then "" else ","))
    result.records;
  Buffer.add_string b "  ],\n  \"reproducers\": [\n";
  List.iteri
    (fun i rep ->
      Printf.bprintf b
        "    {\"index\": %d, \"reason\": \"%s\", \"dsl\": \"%s\"}%s\n"
        rep.rep_index (json_escape rep.reason) (json_escape rep.dsl)
        (if i = List.length result.reproducers - 1 then "" else ","))
    result.reproducers;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
