bench/harness.ml: Array Dwv_core Dwv_expr Dwv_interval Dwv_la Dwv_nn Dwv_ode Dwv_reach Dwv_rl Dwv_systems Dwv_util Filename Fmt List Sys Unix
