bench/main.mli:
