(* Tests for dwv_transport: closed-form 1-D/box Wasserstein distances,
   empirical matching, Sinkhorn vs the closed form. *)

module Ot1d = Dwv_transport.Ot1d
module Box_w2 = Dwv_transport.Box_w2
module Sinkhorn = Dwv_transport.Sinkhorn
module I = Dwv_interval.Interval
module Box = Dwv_interval.Box

let check_float = Alcotest.(check (float 1e-9))

let test_w2_identical () =
  let a = I.make 0.0 1.0 in
  check_float "zero distance" 0.0 (Ot1d.w2_sq_uniform a a)

let test_w2_translation () =
  (* same width, shifted by d: W2 = d *)
  let a = I.make 0.0 1.0 and b = I.make 3.0 4.0 in
  check_float "translation" 3.0 (Ot1d.w2_uniform a b)

let test_w2_scaling () =
  (* same center, radii r and R: W2^2 = (R - r)^2 / 3 *)
  let a = I.make (-1.0) 1.0 and b = I.make (-3.0) 3.0 in
  check_float "scaling" (4.0 /. 3.0) (Ot1d.w2_sq_uniform a b)

let test_w2_symmetry () =
  let a = I.make 0.0 2.0 and b = I.make 1.0 5.0 in
  check_float "symmetric" (Ot1d.w2_sq_uniform a b) (Ot1d.w2_sq_uniform b a)

let test_w1_translation () =
  let a = I.make 0.0 1.0 and b = I.make 3.0 4.0 in
  check_float "w1 translation" 3.0 (Ot1d.w1_uniform a b)

let test_w1_below_w2 () =
  (* Jensen: W1 <= W2 *)
  let a = I.make (-1.0) 2.0 and b = I.make 0.5 6.0 in
  Alcotest.(check bool) "W1 <= W2" true (Ot1d.w1_uniform a b <= Ot1d.w2_uniform a b +. 1e-12)

let test_w2_empirical_matches_uniform_limit () =
  (* empirical quantile matching on dense uniform grids approximates the
     closed form *)
  let n = 2000 in
  let grid lo hi = Array.init n (fun i -> lo +. ((hi -. lo) *. (float_of_int i +. 0.5) /. float_of_int n)) in
  let emp = Ot1d.w2_sq_empirical (grid 0.0 1.0) (grid 2.0 4.0) in
  let exact = Ot1d.w2_sq_uniform (I.make 0.0 1.0) (I.make 2.0 4.0) in
  Alcotest.(check (float 1e-3)) "dense grids converge" exact emp

let test_w2_empirical_guards () =
  Alcotest.check_raises "unequal" (Invalid_argument "Ot1d.w2_sq_empirical: need equal non-zero sample counts")
    (fun () -> ignore (Ot1d.w2_sq_empirical [| 1.0 |] [| 1.0; 2.0 |]))

let box2 lo0 hi0 lo1 hi1 = Box.make ~lo:[| lo0; lo1 |] ~hi:[| hi0; hi1 |]

let test_box_w2_decomposes () =
  let a = box2 0.0 1.0 0.0 1.0 and b = box2 2.0 3.0 (-1.0) 0.0 in
  let per_axis =
    Ot1d.w2_sq_uniform (Box.get a 0) (Box.get b 0) +. Ot1d.w2_sq_uniform (Box.get a 1) (Box.get b 1)
  in
  check_float "per-axis sum" per_axis (Box_w2.w2_sq a b)

let test_box_w2_triangle_inequality () =
  let a = box2 0.0 1.0 0.0 1.0 in
  let b = box2 1.0 3.0 0.0 2.0 in
  let c = box2 4.0 5.0 (-2.0) 0.0 in
  Alcotest.(check bool) "triangle" true
    (Box_w2.w2 a c <= Box_w2.w2 a b +. Box_w2.w2 b c +. 1e-9)

let test_box_w2_last_vs_hull () =
  let segs = [ box2 0.0 1.0 0.0 1.0; box2 5.0 6.0 5.0 6.0 ] in
  let target = box2 5.0 6.0 5.0 6.0 in
  check_float "last segment" 0.0 (Box_w2.w2_last_segment segs target);
  Alcotest.(check bool) "hull differs" true (Box_w2.w2_hull segs target > 0.0)

let test_sinkhorn_identical_clouds () =
  let cloud = Sinkhorn.uniform_cloud [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |] |] in
  let r = Sinkhorn.solve ~epsilon:0.01 cloud cloud in
  Alcotest.(check bool) "converged" true r.Sinkhorn.converged;
  Alcotest.(check bool) "near zero" true (r.Sinkhorn.cost < 0.05)

let test_sinkhorn_translation () =
  (* two identical point clouds offset by (3, 0): optimal cost = 9 *)
  let pts d = Array.init 5 (fun i -> [| (float_of_int i /. 4.0) +. d; 0.0 |]) in
  let r = Sinkhorn.solve ~epsilon:0.05 (Sinkhorn.uniform_cloud (pts 0.0)) (Sinkhorn.uniform_cloud (pts 3.0)) in
  Alcotest.(check (float 0.2)) "translation cost" 9.0 r.Sinkhorn.cost

let test_sinkhorn_vs_closed_form () =
  (* grid-discretized boxes: entropic OT should approximate the exact
     box-uniform W2^2 *)
  let a = box2 0.0 1.0 0.0 1.0 and b = box2 2.0 3.5 0.0 1.0 in
  let ca = Sinkhorn.cloud_of_box ~per_dim:6 a and cb = Sinkhorn.cloud_of_box ~per_dim:6 b in
  let approx = (Sinkhorn.solve ~epsilon:0.05 ~max_iters:5000 ca cb).Sinkhorn.cost in
  let exact = Box_w2.w2_sq a b in
  Alcotest.(check bool) "within 10%" true (Float.abs (approx -. exact) /. exact < 0.1)

let test_cloud_of_box () =
  let c = Sinkhorn.cloud_of_box ~per_dim:3 (box2 0.0 3.0 0.0 3.0) in
  Alcotest.(check int) "9 cells" 9 (Array.length c.Sinkhorn.points);
  let total = Array.fold_left ( +. ) 0.0 c.Sinkhorn.weights in
  check_float "weights normalized" 1.0 total

(* ---------------- exact assignment OT ---------------- *)

module Assignment = Dwv_transport.Assignment

let test_assignment_identity () =
  (* diagonal-dominant costs: identity matching is optimal *)
  let cost = [| [| 0.0; 5.0; 5.0 |]; [| 5.0; 0.0; 5.0 |]; [| 5.0; 5.0; 0.0 |] |] in
  let assignment, total = Assignment.solve_matrix cost in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2 |] assignment;
  Alcotest.(check (float 1e-12)) "cost" 0.0 total

let test_assignment_known_optimum () =
  (* classic 3x3 with a non-trivial optimum *)
  let cost = [| [| 4.0; 1.0; 3.0 |]; [| 2.0; 0.0; 5.0 |]; [| 3.0; 2.0; 2.0 |] |] in
  let assignment, total = Assignment.solve_matrix cost in
  Alcotest.(check (float 1e-12)) "optimal cost" 5.0 total;
  (* verify it is a permutation achieving the reported cost *)
  let seen = Array.make 3 false in
  let rebuilt = ref 0.0 in
  Array.iteri
    (fun i j ->
      Alcotest.(check bool) "unused column" false seen.(j);
      seen.(j) <- true;
      rebuilt := !rebuilt +. cost.(i).(j))
    assignment;
  Alcotest.(check (float 1e-12)) "assignment consistent" total !rebuilt

let test_assignment_w2_translation () =
  (* equal clouds offset by (3, 4): every point travels distance 5 *)
  let xs = Array.init 6 (fun i -> [| float_of_int i; 0.0 |]) in
  let ys = Array.map (fun p -> [| p.(0) +. 3.0; 4.0 |]) xs in
  Alcotest.(check (float 1e-9)) "uniform translation" 25.0 (Assignment.w2_sq_points xs ys);
  Alcotest.(check (float 1e-9)) "w2" 5.0 (Assignment.w2_points xs ys)

let test_assignment_matches_1d_sorting () =
  (* in 1-D the optimal coupling is the sorted matching: agree with Ot1d *)
  let xs = [| 3.0; 1.0; 2.0; 0.5 |] and ys = [| -1.0; 4.0; 2.5; 0.0 |] in
  let exact =
    Assignment.w2_sq_points (Array.map (fun v -> [| v |]) xs) (Array.map (fun v -> [| v |]) ys)
  in
  Alcotest.(check (float 1e-9)) "agrees with quantile matching"
    (Ot1d.w2_sq_empirical xs ys) exact

let test_sinkhorn_upper_bounds_exact () =
  (* entropic OT cost >= exact OT cost (regularization adds entropy) *)
  let rng = Dwv_util.Rng.create 31 in
  let cloud () =
    Array.init 8 (fun _ ->
        [| Dwv_util.Rng.uniform rng ~lo:0.0 ~hi:1.0; Dwv_util.Rng.uniform rng ~lo:0.0 ~hi:1.0 |])
  in
  let xs = cloud () and ys = Array.map (fun p -> [| p.(0) +. 2.0; p.(1) |]) (cloud ()) in
  let exact = Assignment.w2_sq_points xs ys in
  let entropic =
    (Sinkhorn.solve ~epsilon:0.02 ~max_iters:5000 (Sinkhorn.uniform_cloud xs)
       (Sinkhorn.uniform_cloud ys))
      .Sinkhorn.cost
  in
  Alcotest.(check bool) "close" true (Float.abs (entropic -. exact) /. exact < 0.15)

let prop_w2_nonneg_and_zero_iff_equal =
  QCheck.Test.make ~name:"W2 is a metric on intervals (nonneg, identity)" ~count:200
    QCheck.(
      quad (float_range (-3.0) 3.0) (float_range 0.01 2.0) (float_range (-3.0) 3.0)
        (float_range 0.01 2.0))
    (fun (c1, r1, c2, r2) ->
      let a = I.make (c1 -. r1) (c1 +. r1) and b = I.make (c2 -. r2) (c2 +. r2) in
      let d = Ot1d.w2_sq_uniform a b in
      d >= 0.0 && Ot1d.w2_sq_uniform a a < 1e-12)

let prop_w2_translation_invariant =
  QCheck.Test.make ~name:"W2 translation covariance" ~count:200
    QCheck.(pair (float_range (-5.0) 5.0) (float_range 0.1 2.0))
    (fun (shift, r) ->
      let a = I.make (-.r) r in
      let b = I.make (shift -. r) (shift +. r) in
      Float.abs (Ot1d.w2_uniform a b -. Float.abs shift) < 1e-9)

let suite =
  [
    Alcotest.test_case "w2 identical" `Quick test_w2_identical;
    Alcotest.test_case "w2 translation" `Quick test_w2_translation;
    Alcotest.test_case "w2 scaling" `Quick test_w2_scaling;
    Alcotest.test_case "w2 symmetry" `Quick test_w2_symmetry;
    Alcotest.test_case "w1 translation" `Quick test_w1_translation;
    Alcotest.test_case "w1 <= w2" `Quick test_w1_below_w2;
    Alcotest.test_case "empirical limit" `Quick test_w2_empirical_matches_uniform_limit;
    Alcotest.test_case "empirical guards" `Quick test_w2_empirical_guards;
    Alcotest.test_case "box w2 decomposition" `Quick test_box_w2_decomposes;
    Alcotest.test_case "box w2 triangle" `Quick test_box_w2_triangle_inequality;
    Alcotest.test_case "box w2 last/hull" `Quick test_box_w2_last_vs_hull;
    Alcotest.test_case "sinkhorn identical" `Quick test_sinkhorn_identical_clouds;
    Alcotest.test_case "sinkhorn translation" `Quick test_sinkhorn_translation;
    Alcotest.test_case "sinkhorn vs closed form" `Quick test_sinkhorn_vs_closed_form;
    Alcotest.test_case "cloud of box" `Quick test_cloud_of_box;
    Alcotest.test_case "assignment identity" `Quick test_assignment_identity;
    Alcotest.test_case "assignment known optimum" `Quick test_assignment_known_optimum;
    Alcotest.test_case "assignment w2 translation" `Quick test_assignment_w2_translation;
    Alcotest.test_case "assignment 1d sorting" `Quick test_assignment_matches_1d_sorting;
    Alcotest.test_case "sinkhorn vs exact" `Quick test_sinkhorn_upper_bounds_exact;
    QCheck_alcotest.to_alcotest prop_w2_nonneg_and_zero_iff_equal;
    QCheck_alcotest.to_alcotest prop_w2_translation_invariant;
  ]
