(* Tests for dwv_rl: environment semantics, replay buffer, the SVG BPTT
   gradient against finite differences, and short-budget training runs of
   both baselines on an easy stabilization task. *)

module Expr = Dwv_expr.Expr
module Box = Dwv_interval.Box
module Spec = Dwv_core.Spec
module Env = Dwv_rl.Env
module Replay = Dwv_rl.Replay
module Ddpg = Dwv_rl.Ddpg
module Svg = Dwv_rl.Svg
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Rng = Dwv_util.Rng

(* 1-D integrator: x' = u; goal at the origin, unsafe band far above. *)
let spec =
  Spec.make ~name:"integrator" ~x0:(Box.make ~lo:[| 0.6 |] ~hi:[| 1.0 |])
    ~unsafe:(Box.make ~lo:[| 3.0 |] ~hi:[| 4.0 |])
    ~goal:(Box.make ~lo:[| -0.1 |] ~hi:[| 0.1 |])
    ~delta:0.2 ~steps:30

let sys = Dwv_ode.Sampled_system.make ~f:[| Expr.input 0 |] ~n:1 ~m:1 ~delta:0.2

let env = Env.make ~sys ~spec ()

let test_env_reset_in_x0 () =
  let rng = Rng.create 0 in
  for _ = 1 to 50 do
    let x = Env.reset env rng in
    Alcotest.(check bool) "inside X0" true (Box.contains spec.Spec.x0 x)
  done

let test_env_step_dynamics () =
  let r = Env.step env [| 1.0 |] [| -1.0 |] in
  (* x' = u = -1 for 0.2s: x = 0.8 *)
  Alcotest.(check (float 1e-9)) "integrated" 0.8 r.Env.next_state.(0);
  Alcotest.(check bool) "not terminated" false r.Env.terminated

let test_env_goal_termination () =
  let r = Env.step env [| 0.15 |] [| -1.0 |] in
  Alcotest.(check bool) "reached" true r.Env.reached;
  Alcotest.(check bool) "terminated" true r.Env.terminated;
  Alcotest.(check bool) "bonus paid" true (r.Env.reward > 5.0)

let test_env_crash_termination () =
  let r = Env.step env [| 2.9 |] [| 1.0 |] in
  Alcotest.(check bool) "crashed" true r.Env.crashed;
  Alcotest.(check bool) "penalty" true (r.Env.reward < -10.0)

let test_env_shaping_gradient_fd () =
  let x = [| 0.7 |] and u = [| 0.3 |] in
  let gx, gu = Env.shaping_grad env ~x ~u in
  let eps = 1e-6 in
  let fd_x =
    (Env.shaping env ~x:[| x.(0) +. eps |] ~u -. Env.shaping env ~x:[| x.(0) -. eps |] ~u)
    /. (2.0 *. eps)
  in
  let fd_u =
    (Env.shaping env ~x ~u:[| u.(0) +. eps |] -. Env.shaping env ~x ~u:[| u.(0) -. eps |])
    /. (2.0 *. eps)
  in
  Alcotest.(check (float 1e-5)) "dx" fd_x gx.(0);
  Alcotest.(check (float 1e-5)) "du" fd_u gu.(0)

let test_env_policy_succeeds () =
  let rng = Rng.create 1 in
  let good x = [| -.x.(0) |] in
  Alcotest.(check bool) "stabilizer succeeds" true
    (Env.policy_succeeds env rng ~policy:good ~steps:40 ~rollouts:5);
  let bad _ = [| 1.0 |] in
  Alcotest.(check bool) "runaway fails" false
    (Env.policy_succeeds env rng ~policy:bad ~steps:40 ~rollouts:5)

(* ---------------- replay ---------------- *)

let tr x = { Replay.state = [| x |]; action = [| 0.0 |]; reward = x; next_state = [| x |]; terminated = false }

let test_replay_fill_and_wrap () =
  let buf = Replay.create 3 in
  Alcotest.(check int) "empty" 0 (Replay.size buf);
  List.iter (fun x -> Replay.push buf (tr x)) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "capped" 3 (Replay.size buf);
  (* the oldest entry (1.0) was overwritten: all samples come from 2..4 *)
  let rng = Rng.create 5 in
  let samples = Replay.sample buf rng 50 in
  Array.iter
    (fun (t : Replay.transition) ->
      Alcotest.(check bool) "no stale entry" true (t.Replay.reward >= 2.0))
    samples

let test_replay_empty_guard () =
  let buf = Replay.create 2 in
  Alcotest.check_raises "empty" (Invalid_argument "Replay.sample: empty buffer") (fun () ->
      ignore (Replay.sample buf (Rng.create 0) 1))

(* ---------------- SVG ---------------- *)

let test_svg_step_jacobians () =
  (* x' = u: one-period map x + 0.2 u: d next/dx = 1, d next/du = 0.2 *)
  let ax, bu = Svg.step_jacobians ~sys ~eps:1e-5 [| 0.5 |] [| 0.1 |] in
  Alcotest.(check (float 1e-6)) "A" 1.0 ax.(0).(0);
  Alcotest.(check (float 1e-6)) "B" 0.2 bu.(0).(0)

let test_svg_gradient_matches_fd () =
  (* undiscounted short rollout: BPTT gradient vs finite differences of
     the return *)
  let cfg = { Svg.default_config with gamma = 1.0; horizon = 5; fd_eps = 1e-6 } in
  let policy =
    Mlp.create ~sizes:[ 1; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] (Rng.create 3)
  in
  let x0 = [| 0.8 |] in
  let output_scale = 1.0 in
  let _, grad = Svg.rollout_gradient cfg ~env ~policy ~output_scale x0 in
  let theta = Mlp.flatten policy in
  let eps = 1e-5 in
  (* spot-check several parameters *)
  List.iter
    (fun i ->
      let tp = Array.copy theta and tm = Array.copy theta in
      tp.(i) <- tp.(i) +. eps;
      tm.(i) <- tm.(i) -. eps;
      let ret t =
        fst (Svg.rollout_gradient cfg ~env ~policy:(Mlp.unflatten policy t) ~output_scale x0)
      in
      let fd = (ret tp -. ret tm) /. (2.0 *. eps) in
      Alcotest.(check (float 1e-3)) (Printf.sprintf "param %d" i) fd grad.(i))
    [ 0; 2; 5; Array.length theta - 1 ]

let test_svg_trains_integrator () =
  let cfg =
    { Svg.default_config with
      horizon = 30; max_steps = 150; lr = 5e-3; rollouts_per_step = 2; eval_every = 10;
      eval_rollouts = 5; seed = 4 }
  in
  let policy =
    Mlp.create ~sizes:[ 1; 6; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] (Rng.create 4)
  in
  let r = Svg.train cfg ~env ~policy ~output_scale:1.5 in
  Alcotest.(check bool) "converged" true r.Svg.converged;
  Alcotest.(check bool) "within budget" true (r.Svg.steps <= 150)

(* ---------------- DDPG ---------------- *)

let test_ddpg_trains_integrator () =
  let cfg =
    { Ddpg.default_config with
      max_episodes = 400; steps_per_episode = 30; warmup_steps = 200; eval_every = 20;
      eval_rollouts = 5; seed = 5; batch_size = 32 }
  in
  let rng = Rng.create 6 in
  let actor = Mlp.create ~sizes:[ 1; 8; 1 ] ~acts:[ Activation.Relu; Activation.Tanh ] rng in
  let critic = Mlp.create ~sizes:[ 2; 16; 1 ] ~acts:[ Activation.Relu; Activation.Linear ] rng in
  let r = Ddpg.train cfg ~env ~actor ~critic ~output_scale:1.5 in
  Alcotest.(check bool) "reward history recorded" true (Array.length r.Ddpg.reward_history > 0);
  (* DDPG is noisy; require convergence on this trivial task *)
  Alcotest.(check bool) "converged" true r.Ddpg.converged

let suite =
  [
    Alcotest.test_case "env reset" `Quick test_env_reset_in_x0;
    Alcotest.test_case "env step" `Quick test_env_step_dynamics;
    Alcotest.test_case "env goal termination" `Quick test_env_goal_termination;
    Alcotest.test_case "env crash termination" `Quick test_env_crash_termination;
    Alcotest.test_case "env shaping gradient" `Quick test_env_shaping_gradient_fd;
    Alcotest.test_case "env policy_succeeds" `Quick test_env_policy_succeeds;
    Alcotest.test_case "replay wrap" `Quick test_replay_fill_and_wrap;
    Alcotest.test_case "replay empty" `Quick test_replay_empty_guard;
    Alcotest.test_case "svg jacobians" `Quick test_svg_step_jacobians;
    Alcotest.test_case "svg gradient vs FD" `Quick test_svg_gradient_matches_fd;
    Alcotest.test_case "svg trains" `Slow test_svg_trains_integrator;
    Alcotest.test_case "ddpg trains" `Slow test_ddpg_trains_integrator;
  ]
