(* Tests for dwv_la: vector/matrix arithmetic, LU solve, matrix
   exponential, spectral norm. *)

module Vec = Dwv_la.Vec
module Mat = Dwv_la.Mat

let check_float = Alcotest.(check (float 1e-9))

let test_vec_basic () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.0; 7.0; 9.0 |] (Vec.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub a b);
  check_float "dot" 32.0 (Vec.dot a b);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 a);
  check_float "norm_inf" 3.0 (Vec.norm_inf a)

let test_vec_axpy () =
  let x = [| 1.0; 1.0 |] and y = [| 2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-12))) "axpy" [| 4.0; 5.0 |] (Vec.axpy ~alpha:2.0 x y)

let test_vec_dim_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: dimension mismatch")
    (fun () -> ignore (Vec.dot [| 1.0 |] [| 1.0; 2.0 |]))

let test_mat_identity_matmul () =
  let a = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  Alcotest.(check bool) "I*A = A" true (Mat.equal (Mat.matmul (Mat.identity 2) a) a);
  Alcotest.(check bool) "A*I = A" true (Mat.equal (Mat.matmul a (Mat.identity 2)) a)

let test_mat_matmul_known () =
  let a = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  let b = Mat.of_rows [ [| 5.0; 6.0 |]; [| 7.0; 8.0 |] ] in
  let expected = Mat.of_rows [ [| 19.0; 22.0 |]; [| 43.0; 50.0 |] ] in
  Alcotest.(check bool) "2x2 product" true (Mat.equal (Mat.matmul a b) expected)

let test_mat_transpose () =
  let a = Mat.of_rows [ [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] ] in
  let at = Mat.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Mat.dims at);
  check_float "entry" 6.0 (Mat.get at 2 1)

let test_mat_matvec_vecmat () =
  let a = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  Alcotest.(check (array (float 1e-12))) "matvec" [| 5.0; 11.0 |] (Mat.matvec a [| 1.0; 2.0 |]);
  Alcotest.(check (array (float 1e-12))) "vecmat" [| 7.0; 10.0 |] (Mat.vecmat [| 1.0; 2.0 |] a)

let test_mat_solve () =
  let a = Mat.of_rows [ [| 4.0; 3.0 |]; [| 6.0; 3.0 |] ] in
  let b = [| 10.0; 12.0 |] in
  let x = Mat.solve a b in
  Alcotest.(check (array (float 1e-9))) "solution" [| 1.0; 2.0 |] x

let test_mat_solve_with_pivoting () =
  (* leading zero forces a row swap *)
  let a = Mat.of_rows [ [| 0.0; 1.0 |]; [| 2.0; 0.0 |] ] in
  let x = Mat.solve a [| 3.0; 4.0 |] in
  Alcotest.(check (array (float 1e-9))) "pivoted solution" [| 2.0; 3.0 |] x

let test_mat_singular_raises () =
  let a = Mat.of_rows [ [| 1.0; 2.0 |]; [| 2.0; 4.0 |] ] in
  Alcotest.check_raises "singular" (Failure "Mat.lu_decompose: singular matrix") (fun () ->
      ignore (Mat.solve a [| 1.0; 1.0 |]))

let test_mat_inverse () =
  let a = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 5.0 |] ] in
  let prod = Mat.matmul a (Mat.inverse a) in
  Alcotest.(check bool) "A * A^-1 = I" true (Mat.equal ~eps:1e-9 prod (Mat.identity 2))

let test_expm_zero () =
  Alcotest.(check bool) "expm 0 = I" true
    (Mat.equal ~eps:1e-12 (Mat.expm (Mat.zeros 3 3)) (Mat.identity 3))

let test_expm_diagonal () =
  let a = Mat.of_rows [ [| 1.0; 0.0 |]; [| 0.0; 2.0 |] ] in
  let e = Mat.expm a in
  Alcotest.(check (float 1e-9)) "exp(1)" (exp 1.0) (Mat.get e 0 0);
  Alcotest.(check (float 1e-9)) "exp(2)" (exp 2.0) (Mat.get e 1 1);
  Alcotest.(check (float 1e-12)) "off-diagonal" 0.0 (Mat.get e 0 1)

let test_expm_nilpotent () =
  (* exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly *)
  let a = Mat.of_rows [ [| 0.0; 1.0 |]; [| 0.0; 0.0 |] ] in
  let expected = Mat.of_rows [ [| 1.0; 1.0 |]; [| 0.0; 1.0 |] ] in
  Alcotest.(check bool) "nilpotent exp" true (Mat.equal ~eps:1e-12 (Mat.expm a) expected)

let test_expm_rotation () =
  (* exp(t [[0,-1],[1,0]]) is a rotation by t *)
  let t = 0.7 in
  let a = Mat.of_rows [ [| 0.0; -.t |]; [| t; 0.0 |] ] in
  let e = Mat.expm a in
  Alcotest.(check (float 1e-9)) "cos" (cos t) (Mat.get e 0 0);
  Alcotest.(check (float 1e-9)) "-sin" (-.sin t) (Mat.get e 0 1)

let test_integral_expm_identity_limit () =
  (* for A = 0: integral of I over [0, t] = t I *)
  let g = Mat.integral_expm (Mat.zeros 2 2) 0.3 in
  Alcotest.(check bool) "0.3 I" true (Mat.equal ~eps:1e-9 g (Mat.scale 0.3 (Mat.identity 2)))

let test_integral_expm_scalar () =
  (* 1x1 case: integral_0^t e^(a s) ds = (e^(a t) - 1)/a *)
  let a = Mat.of_rows [ [| -0.2 |] ] in
  let g = Mat.integral_expm a 0.1 in
  let expected = (exp (-0.02) -. 1.0) /. -0.2 in
  Alcotest.(check (float 1e-10)) "scalar integral" expected (Mat.get g 0 0)

let test_spectral_norm_diag () =
  let a = Mat.of_rows [ [| 3.0; 0.0 |]; [| 0.0; -7.0 |] ] in
  Alcotest.(check (float 1e-6)) "diag spectral" 7.0 (Mat.spectral_norm a)

let test_spectral_norm_vs_frobenius () =
  (* ||A||_2 <= ||A||_F always *)
  let a = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  Alcotest.(check bool) "2-norm below Frobenius" true
    (Mat.spectral_norm a <= Mat.norm_fro a +. 1e-9)

let test_outer () =
  let m = Mat.outer [| 1.0; 2.0 |] [| 3.0; 4.0; 5.0 |] in
  Alcotest.(check (pair int int)) "dims" (2, 3) (Mat.dims m);
  check_float "entry" 10.0 (Mat.get m 1 2)

let test_of_rows_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows") (fun () ->
      ignore (Mat.of_rows [ [| 1.0 |]; [| 1.0; 2.0 |] ]))

(* Property: solve(a, matvec(a, x)) = x for random well-conditioned a. *)
let prop_solve_roundtrip =
  QCheck.Test.make ~name:"lu solve roundtrip" ~count:100
    QCheck.(triple (float_range (-5.0) 5.0) (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
    (fun (a, b, c) ->
      (* diagonally dominant 3x3 to stay well-conditioned *)
      let m =
        Mat.of_rows
          [ [| 10.0; a; b |]; [| a; 12.0; c |]; [| b; c; 15.0 |] ]
      in
      let x = [| 1.0; -2.0; 0.5 |] in
      let x' = Mat.solve m (Mat.matvec m x) in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-8) x x')

let prop_expm_inverse =
  QCheck.Test.make ~name:"expm(A) expm(-A) = I" ~count:50
    QCheck.(pair (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
    (fun (a, b) ->
      let m = Mat.of_rows [ [| a; b |]; [| -.b; a /. 2.0 |] ] in
      let prod = Mat.matmul (Mat.expm m) (Mat.expm (Mat.scale (-1.0) m)) in
      Mat.equal ~eps:1e-7 prod (Mat.identity 2))

(* ---------------- eigenvalues ---------------- *)

module Eig = Dwv_la.Eig
module Control = Dwv_la.Control

let sorted_res eigs =
  List.sort compare (List.map (fun (l : Eig.complex) -> l.Eig.re) eigs)

let test_eig_diagonal () =
  let m = Mat.of_rows [ [| 3.0; 0.0 |]; [| 0.0; -1.0 |] ] in
  Alcotest.(check (list (float 1e-8))) "diag eigs" [ -1.0; 3.0 ] (sorted_res (Eig.eigenvalues m))

let test_eig_triangular () =
  let m = Mat.of_rows [ [| 2.0; 5.0; 1.0 |]; [| 0.0; -3.0; 2.0 |]; [| 0.0; 0.0; 0.5 |] ] in
  Alcotest.(check (list (float 1e-7))) "triangular eigs" [ -3.0; 0.5; 2.0 ]
    (sorted_res (Eig.eigenvalues m))

let test_eig_symmetric_known () =
  (* [[2 1];[1 2]]: eigenvalues 1 and 3 *)
  let m = Mat.of_rows [ [| 2.0; 1.0 |]; [| 1.0; 2.0 |] ] in
  Alcotest.(check (list (float 1e-8))) "symmetric" [ 1.0; 3.0 ] (sorted_res (Eig.eigenvalues m))

let test_eig_rotation_complex () =
  (* rotation matrix: eigenvalues cos t +- i sin t, modulus 1 *)
  let t = 0.4 in
  let m = Mat.of_rows [ [| cos t; -.sin t |]; [| sin t; cos t |] ] in
  let eigs = Eig.eigenvalues m in
  Alcotest.(check int) "two eigenvalues" 2 (List.length eigs);
  List.iter
    (fun l ->
      Alcotest.(check (float 1e-8)) "modulus 1" 1.0 (Eig.modulus l);
      Alcotest.(check (float 1e-8)) "real part" (cos t) l.Eig.re)
    eigs

let test_eig_general_3x3 () =
  (* companion matrix of (s-1)(s-2)(s-3) = s^3 - 6s^2 + 11s - 6 *)
  let m =
    Mat.of_rows [ [| 0.0; 1.0; 0.0 |]; [| 0.0; 0.0; 1.0 |]; [| 6.0; -11.0; 6.0 |] ]
  in
  Alcotest.(check (list (float 1e-6))) "companion eigs" [ 1.0; 2.0; 3.0 ]
    (sorted_res (Eig.eigenvalues m))

let test_spectral_radius_and_stability () =
  let stable = Mat.of_rows [ [| -1.0; 0.5 |]; [| 0.0; -2.0 |] ] in
  Alcotest.(check bool) "hurwitz" true (Eig.hurwitz_stable stable);
  let discrete = Mat.of_rows [ [| 0.5; 0.2 |]; [| 0.0; 0.9 |] ] in
  Alcotest.(check bool) "schur" true (Eig.schur_stable discrete);
  Alcotest.(check (float 1e-8)) "radius" 0.9 (Eig.spectral_radius discrete)

let test_hessenberg_preserves_eigs () =
  let m =
    Mat.of_rows
      [ [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |]; [| 7.0; 8.0; 10.0 |] ]
  in
  let h = Eig.hessenberg m in
  (* Hessenberg: entry (2,0) is zero *)
  Alcotest.(check (float 1e-12)) "below subdiagonal" 0.0 (Mat.get h 2 0);
  (* similarity transform: traces agree *)
  let tr m = Mat.get m 0 0 +. Mat.get m 1 1 +. Mat.get m 2 2 in
  Alcotest.(check (float 1e-9)) "trace preserved" (tr m) (tr h)

(* ---------------- control design ---------------- *)

let dbl_integrator =
  ( Mat.of_rows [ [| 0.0; 1.0 |]; [| 0.0; 0.0 |] ],
    Mat.of_rows [ [| 0.0 |]; [| 1.0 |] ] )

let test_controllability () =
  let a, b = dbl_integrator in
  Alcotest.(check bool) "double integrator controllable" true (Control.controllable a b);
  (* B in the kernel direction of an uncontrollable mode *)
  let a2 = Mat.of_rows [ [| 1.0; 0.0 |]; [| 0.0; 2.0 |] ] in
  let b2 = Mat.of_rows [ [| 1.0 |]; [| 0.0 |] ] in
  Alcotest.(check bool) "diagonal with partial B uncontrollable" false
    (Control.controllable a2 b2)

let test_poly_from_roots () =
  (* (s-1)(s-2) = s^2 - 3 s + 2 -> ascending [2; -3] *)
  Alcotest.(check (array (float 1e-12))) "quadratic" [| 2.0; -3.0 |]
    (Control.poly_from_roots [| 1.0; 2.0 |])

let test_ackermann_places_poles () =
  let a, b = dbl_integrator in
  let poles = [| -2.0; -3.0 |] in
  let k = Control.ackermann a b ~poles in
  (* closed loop A - B K must have exactly these eigenvalues *)
  let bk = Mat.init 2 2 (fun i j -> Mat.get b i 0 *. k.(j)) in
  let acl = Mat.sub a bk in
  Alcotest.(check (list (float 1e-6))) "placed poles" [ -3.0; -2.0 ]
    (sorted_res (Eig.eigenvalues acl));
  Alcotest.(check bool) "positive margin" true (Control.closed_loop_margin a b k > 1.9)

let prop_ackermann_random_poles =
  QCheck.Test.make ~name:"ackermann places random stable poles" ~count:50
    QCheck.(pair (float_range (-5.0) (-0.5)) (float_range (-5.0) (-0.5)))
    (fun (p1, p2) ->
      QCheck.assume (Float.abs (p1 -. p2) > 0.05);
      let a, b = dbl_integrator in
      let k = Control.ackermann a b ~poles:[| p1; p2 |] in
      let expected = List.sort compare [ p1; p2 ] in
      let bk = Mat.init 2 2 (fun i j -> Mat.get b i 0 *. k.(j)) in
      let got = sorted_res (Eig.eigenvalues (Mat.sub a bk)) in
      List.for_all2 (fun x y -> Float.abs (x -. y) < 1e-5) expected got)

let suite =
  [
    Alcotest.test_case "vec basic ops" `Quick test_vec_basic;
    Alcotest.test_case "vec axpy" `Quick test_vec_axpy;
    Alcotest.test_case "vec dim mismatch" `Quick test_vec_dim_mismatch;
    Alcotest.test_case "mat identity" `Quick test_mat_identity_matmul;
    Alcotest.test_case "mat matmul known" `Quick test_mat_matmul_known;
    Alcotest.test_case "mat transpose" `Quick test_mat_transpose;
    Alcotest.test_case "mat matvec/vecmat" `Quick test_mat_matvec_vecmat;
    Alcotest.test_case "mat solve" `Quick test_mat_solve;
    Alcotest.test_case "mat solve pivoting" `Quick test_mat_solve_with_pivoting;
    Alcotest.test_case "mat singular raises" `Quick test_mat_singular_raises;
    Alcotest.test_case "mat inverse" `Quick test_mat_inverse;
    Alcotest.test_case "expm zero" `Quick test_expm_zero;
    Alcotest.test_case "expm diagonal" `Quick test_expm_diagonal;
    Alcotest.test_case "expm nilpotent" `Quick test_expm_nilpotent;
    Alcotest.test_case "expm rotation" `Quick test_expm_rotation;
    Alcotest.test_case "integral_expm zero matrix" `Quick test_integral_expm_identity_limit;
    Alcotest.test_case "integral_expm scalar" `Quick test_integral_expm_scalar;
    Alcotest.test_case "spectral norm diagonal" `Quick test_spectral_norm_diag;
    Alcotest.test_case "spectral vs frobenius" `Quick test_spectral_norm_vs_frobenius;
    Alcotest.test_case "outer product" `Quick test_outer;
    Alcotest.test_case "of_rows ragged" `Quick test_of_rows_ragged;
    QCheck_alcotest.to_alcotest prop_solve_roundtrip;
    QCheck_alcotest.to_alcotest prop_expm_inverse;
    Alcotest.test_case "eig diagonal" `Quick test_eig_diagonal;
    Alcotest.test_case "eig triangular" `Quick test_eig_triangular;
    Alcotest.test_case "eig symmetric" `Quick test_eig_symmetric_known;
    Alcotest.test_case "eig rotation complex" `Quick test_eig_rotation_complex;
    Alcotest.test_case "eig companion 3x3" `Quick test_eig_general_3x3;
    Alcotest.test_case "spectral radius / stability" `Quick test_spectral_radius_and_stability;
    Alcotest.test_case "hessenberg" `Quick test_hessenberg_preserves_eigs;
    Alcotest.test_case "controllability" `Quick test_controllability;
    Alcotest.test_case "poly from roots" `Quick test_poly_from_roots;
    Alcotest.test_case "ackermann" `Quick test_ackermann_places_poles;
    QCheck_alcotest.to_alcotest prop_ackermann_random_poles;
  ]
