(* End-to-end integration tests: the full design-while-verify pipeline on
   the ACC system (fast enough for CI), plus learner/initset interplay.
   The NN systems' pipelines run in the benchmark harness; here we keep a
   single `Slow oscillator smoke test. *)

module Box = Dwv_interval.Box
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe
module Spec = Dwv_core.Spec
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Evaluate = Dwv_core.Evaluate
module Initset = Dwv_core.Initset
module Acc = Dwv_systems.Acc
module Oscillator = Dwv_systems.Oscillator
module Rng = Dwv_util.Rng

let acc_cfg = { Learner.default_config with max_iters = 150; alpha = 0.2; beta = 0.2 }

let learn_acc metric =
  Learner.learn acc_cfg ~metric ~spec:Acc.spec ~verify:Acc.verify
    ~init:Acc.initial_controller

let test_acc_geometric_end_to_end () =
  let r = learn_acc Metrics.Geometric in
  Alcotest.(check bool) "formally verified" true (r.Learner.verdict = Verifier.Reach_avoid);
  Alcotest.(check bool) "reasonable CI" true (r.Learner.iterations < 150);
  (* the formal guarantee must hold experimentally: 500 random rollouts *)
  let rng = Rng.create 123 in
  let rates =
    Evaluate.rates ~n:500 ~rng ~sys:Acc.sampled
      ~controller:(Acc.sim_controller r.Learner.controller) ~spec:Acc.spec ()
  in
  Alcotest.(check (float 1e-9)) "SC 100%" 100.0 rates.Evaluate.safe_percent;
  Alcotest.(check (float 1e-9)) "GR 100%" 100.0 rates.Evaluate.goal_percent

let test_acc_wasserstein_end_to_end () =
  let r =
    Learner.learn { acc_cfg with alpha = 0.4; beta = 0.4 } ~metric:Metrics.Wasserstein
      ~spec:Acc.spec ~verify:Acc.verify ~init:Acc.initial_controller
  in
  Alcotest.(check bool) "formally verified" true (r.Learner.verdict = Verifier.Reach_avoid)

let test_acc_initset_after_learning () =
  let r = learn_acc Metrics.Geometric in
  (* after Algorithm 1 succeeds on the whole X0, Algorithm 2 must certify
     full coverage immediately *)
  let xi =
    Initset.search ~max_depth:3
      ~verify:(fun cell -> Acc.verify_from cell r.Learner.controller)
      ~goal:Acc.spec.Spec.goal ~x0:Acc.spec.Spec.x0 ()
  in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 xi.Initset.coverage;
  Alcotest.(check int) "one call suffices" 1 xi.Initset.verifier_calls

let test_acc_learning_curve_shape () =
  (* Fig. 4 property: the objective of the accepted iterations never ends
     below where it started, and the final verdict is flagged in the
     history *)
  let r = learn_acc Metrics.Geometric in
  let history = Array.of_list r.Learner.history in
  let first = history.(0) and last = history.(Array.length history - 1) in
  Alcotest.(check bool) "objective improved" true
    (last.Learner.objective > first.Learner.objective);
  Alcotest.(check bool) "last point verified" true
    (last.Learner.verdict = Verifier.Reach_avoid);
  Alcotest.(check bool) "first point not verified" true
    (first.Learner.verdict <> Verifier.Reach_avoid)

let test_acc_flowpipe_respects_formal_claims () =
  (* if the verdict says reach-avoid, the flowpipe itself must witness it *)
  let r = learn_acc Metrics.Geometric in
  let pipe = r.Learner.pipe in
  Alcotest.(check bool) "no unsafe contact" true
    (Verifier.safety_ok ~unsafe:Acc.spec.Spec.unsafe pipe);
  (match Verifier.goal_step ~goal:Acc.spec.Spec.goal pipe with
  | Some k -> Alcotest.(check bool) "goal step within horizon" true (k <= Acc.spec.Spec.steps)
  | None -> Alcotest.fail "verdict claims reach-avoid but no goal step found")

let test_oscillator_polar_end_to_end () =
  (* single-seed NN smoke test (a few seconds) *)
  let init =
    Oscillator.pretrained_controller
      ~config:{ Dwv_nn.Pretrain.default_config with epochs = 100 }
      (Rng.create 1)
  in
  let cfg =
    { Learner.default_config with
      max_iters = 12; alpha = 0.05; beta = 0.05; perturbation = 0.02;
      gradient_mode = Learner.Spsa 2; seed = 1 }
  in
  let r =
    Learner.learn cfg ~metric:Metrics.Geometric ~spec:Oscillator.spec
      ~verify:(Oscillator.verify ~method_:Verifier.Polar) ~init
  in
  Alcotest.(check bool) "verified" true (r.Learner.verdict = Verifier.Reach_avoid);
  (* experimental check *)
  let rng = Rng.create 5 in
  let rates =
    Evaluate.rates ~n:100 ~rng ~sys:Oscillator.sampled
      ~controller:(Oscillator.sim_controller r.Learner.controller) ~spec:Oscillator.spec ()
  in
  Alcotest.(check (float 1e-9)) "SC 100%" 100.0 rates.Evaluate.safe_percent;
  Alcotest.(check (float 1e-9)) "GR 100%" 100.0 rates.Evaluate.goal_percent

let suite =
  [
    Alcotest.test_case "acc geometric e2e" `Quick test_acc_geometric_end_to_end;
    Alcotest.test_case "acc wasserstein e2e" `Quick test_acc_wasserstein_end_to_end;
    Alcotest.test_case "acc initset after learning" `Quick test_acc_initset_after_learning;
    Alcotest.test_case "acc learning curve" `Quick test_acc_learning_curve_shape;
    Alcotest.test_case "acc flowpipe witnesses verdict" `Quick
      test_acc_flowpipe_respects_formal_claims;
    Alcotest.test_case "oscillator polar e2e" `Slow test_oscillator_polar_end_to_end;
  ]
