test/test_integration.ml: Alcotest Array Dwv_core Dwv_interval Dwv_nn Dwv_reach Dwv_systems Dwv_util
