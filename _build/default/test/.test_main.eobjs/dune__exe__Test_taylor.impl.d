test/test_taylor.ml: Alcotest Array Dwv_expr Dwv_interval Dwv_poly Dwv_taylor Dwv_util Float QCheck QCheck_alcotest
