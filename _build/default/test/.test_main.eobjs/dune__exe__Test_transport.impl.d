test/test_transport.ml: Alcotest Array Dwv_interval Dwv_transport Dwv_util Float QCheck QCheck_alcotest
