test/test_systems.ml: Alcotest Array Dwv_core Dwv_expr Dwv_interval Dwv_la Dwv_nn Dwv_ode Dwv_reach Dwv_systems Dwv_util Float
