test/test_reach.ml: Alcotest Array Dwv_core Dwv_expr Dwv_interval Dwv_la Dwv_nn Dwv_ode Dwv_reach Dwv_systems Dwv_taylor Dwv_util Fun List QCheck QCheck_alcotest
