test/test_core.ml: Alcotest Array Dwv_core Dwv_expr Dwv_interval Dwv_la Dwv_nn Dwv_ode Dwv_reach Dwv_transport Dwv_util Filename Float Fun List Sys
