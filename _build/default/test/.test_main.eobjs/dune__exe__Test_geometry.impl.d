test/test_geometry.ml: Alcotest Array Dwv_geometry Dwv_interval Dwv_la Dwv_util Float List QCheck QCheck_alcotest
