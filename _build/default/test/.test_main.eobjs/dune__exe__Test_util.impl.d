test/test_util.ml: Alcotest Array Dwv_util Filename Float Fun Hashtbl List String Sys
