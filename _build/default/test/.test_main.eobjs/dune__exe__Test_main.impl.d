test/test_main.ml: Alcotest Test_core Test_expr Test_geometry Test_integration Test_interval Test_la Test_nn Test_ode Test_poly Test_reach Test_rl Test_systems Test_taylor Test_transport Test_util
