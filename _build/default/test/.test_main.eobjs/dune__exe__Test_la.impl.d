test/test_la.ml: Alcotest Array Dwv_la Float List QCheck QCheck_alcotest
