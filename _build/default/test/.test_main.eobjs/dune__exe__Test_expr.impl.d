test/test_expr.ml: Alcotest Array Dwv_expr Dwv_interval Dwv_systems Float Fmt List QCheck QCheck_alcotest String
