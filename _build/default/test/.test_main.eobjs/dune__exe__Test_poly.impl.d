test/test_poly.ml: Alcotest Array Dwv_interval Dwv_poly Float List QCheck QCheck_alcotest
