test/test_ode.ml: Alcotest Array Dwv_expr Dwv_interval Dwv_ode Dwv_systems Float QCheck QCheck_alcotest
