test/test_interval.ml: Alcotest Dwv_interval Dwv_util Float List QCheck QCheck_alcotest
