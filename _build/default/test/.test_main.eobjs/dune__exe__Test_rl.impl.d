test/test_rl.ml: Alcotest Array Dwv_core Dwv_expr Dwv_interval Dwv_nn Dwv_ode Dwv_rl Dwv_util List Printf
