test/test_nn.ml: Alcotest Array Dwv_interval Dwv_la Dwv_nn Dwv_util Filename Float Fun List Printf QCheck QCheck_alcotest Sys
