(* Tests for dwv_nn: forward pass, backprop against finite differences,
   parameter flattening round-trips, Adam, Lipschitz bounds, behavior
   cloning. *)

module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Adam = Dwv_nn.Adam
module Lipschitz = Dwv_nn.Lipschitz
module Pretrain = Dwv_nn.Pretrain
module Rng = Dwv_util.Rng
module Box = Dwv_interval.Box

let make_net ?(seed = 5) ?(sizes = [ 2; 6; 1 ]) ?(acts = [ Activation.Tanh; Activation.Linear ])
    () =
  Mlp.create ~sizes ~acts (Rng.create seed)

let test_activation_values () =
  Alcotest.(check (float 1e-12)) "relu+" 2.0 (Activation.apply Relu 2.0);
  Alcotest.(check (float 1e-12)) "relu-" 0.0 (Activation.apply Relu (-2.0));
  Alcotest.(check (float 1e-12)) "tanh" (tanh 0.5) (Activation.apply Tanh 0.5);
  Alcotest.(check (float 1e-12)) "linear" 0.3 (Activation.apply Linear 0.3)

let test_activation_derivatives_fd () =
  List.iter
    (fun act ->
      List.iter
        (fun x ->
          let eps = 1e-6 in
          let fd = (Activation.apply act (x +. eps) -. Activation.apply act (x -. eps)) /. (2.0 *. eps) in
          Alcotest.(check (float 1e-5))
            (Activation.to_string act) fd (Activation.derivative act x))
        [ -1.3; 0.4; 2.0 ])
    [ Activation.Tanh; Activation.Sigmoid; Activation.Linear ]

let test_activation_of_string_roundtrip () =
  List.iter
    (fun a -> Alcotest.(check bool) "roundtrip" true (Activation.of_string (Activation.to_string a) = a))
    [ Activation.Relu; Activation.Tanh; Activation.Sigmoid; Activation.Linear ];
  Alcotest.check_raises "unknown" (Invalid_argument "Activation.of_string: unknown activation nope")
    (fun () -> ignore (Activation.of_string "nope"))

let test_forward_shapes () =
  let net = make_net ~sizes:[ 3; 5; 2 ] ~acts:[ Activation.Relu; Activation.Tanh ] () in
  let y = Mlp.forward net [| 0.1; -0.2; 0.3 |] in
  Alcotest.(check int) "output dim" 2 (Array.length y);
  Array.iter (fun v -> Alcotest.(check bool) "tanh bounded" true (Float.abs v <= 1.0)) y

let test_flatten_roundtrip () =
  let net = make_net () in
  let theta = Mlp.flatten net in
  Alcotest.(check int) "param count" (Mlp.num_params net) (Array.length theta);
  let net2 = Mlp.unflatten net theta in
  let x = [| 0.3; -0.8 |] in
  Alcotest.(check (array (float 1e-15))) "identical outputs" (Mlp.forward net x)
    (Mlp.forward net2 x)

let test_unflatten_perturbation () =
  let net = make_net () in
  let theta = Mlp.flatten net in
  theta.(0) <- theta.(0) +. 1.0;
  let net2 = Mlp.unflatten net theta in
  let x = [| 1.0; 0.0 |] in
  Alcotest.(check bool) "output changed" true
    (Mlp.forward net x <> Mlp.forward net2 x)

let test_backward_matches_fd () =
  let net = make_net ~sizes:[ 2; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] () in
  let x = [| 0.4; -0.6 |] in
  (* loss = net(x)_0; gradient wrt every parameter vs finite differences *)
  let _, cache = Mlp.forward_cached net x in
  let grads, d_in = Mlp.backward net cache [| 1.0 |] in
  let flat_grad = Mlp.flatten_grads net grads in
  let theta = Mlp.flatten net in
  let eps = 1e-6 in
  Array.iteri
    (fun i g ->
      let tp = Array.copy theta and tm = Array.copy theta in
      tp.(i) <- tp.(i) +. eps;
      tm.(i) <- tm.(i) -. eps;
      let fp = (Mlp.forward (Mlp.unflatten net tp) x).(0) in
      let fm = (Mlp.forward (Mlp.unflatten net tm) x).(0) in
      Alcotest.(check (float 1e-4)) (Printf.sprintf "param %d" i) ((fp -. fm) /. (2.0 *. eps)) g)
    flat_grad;
  (* input gradient vs finite differences *)
  Array.iteri
    (fun i g ->
      let xp = Array.copy x and xm = Array.copy x in
      xp.(i) <- xp.(i) +. eps;
      xm.(i) <- xm.(i) -. eps;
      let fd = ((Mlp.forward net xp).(0) -. (Mlp.forward net xm).(0)) /. (2.0 *. eps) in
      Alcotest.(check (float 1e-4)) (Printf.sprintf "input %d" i) fd g)
    d_in

let test_backward_relu_net () =
  let net = make_net ~seed:11 ~sizes:[ 2; 4; 1 ] ~acts:[ Activation.Relu; Activation.Linear ] () in
  let x = [| 0.9; 0.2 |] in
  let _, cache = Mlp.forward_cached net x in
  let grads, _ = Mlp.backward net cache [| 1.0 |] in
  let flat_grad = Mlp.flatten_grads net grads in
  let theta = Mlp.flatten net in
  let eps = 1e-6 in
  (* spot-check a handful of parameters *)
  List.iter
    (fun i ->
      let tp = Array.copy theta and tm = Array.copy theta in
      tp.(i) <- tp.(i) +. eps;
      tm.(i) <- tm.(i) -. eps;
      let fp = (Mlp.forward (Mlp.unflatten net tp) x).(0) in
      let fm = (Mlp.forward (Mlp.unflatten net tm) x).(0) in
      Alcotest.(check (float 1e-4)) (Printf.sprintf "relu param %d" i)
        ((fp -. fm) /. (2.0 *. eps))
        flat_grad.(i))
    [ 0; 3; 7; Array.length theta - 1 ]

let test_soft_update () =
  let a = make_net ~seed:1 () and b = make_net ~seed:2 () in
  let updated = Mlp.soft_update ~tau:1.0 ~src:a b in
  Alcotest.(check (array (float 1e-15))) "tau=1 copies src" (Mlp.flatten a) (Mlp.flatten updated);
  let half = Mlp.soft_update ~tau:0.5 ~src:a b in
  let expect =
    Array.map2 (fun x y -> (0.5 *. x) +. (0.5 *. y)) (Mlp.flatten a) (Mlp.flatten b)
  in
  Alcotest.(check (array (float 1e-15))) "tau=0.5 averages" expect (Mlp.flatten half)

let test_adam_minimizes_quadratic () =
  (* minimize ||x - target||^2 *)
  let target = [| 3.0; -2.0 |] in
  let opt = Adam.create ~lr:0.1 2 in
  let params = ref [| 0.0; 0.0 |] in
  for _ = 1 to 500 do
    let grad = Array.mapi (fun i p -> 2.0 *. (p -. target.(i))) !params in
    params := Adam.step opt ~params:!params ~grad
  done;
  Alcotest.(check (array (float 1e-2))) "converged" target !params

let test_adam_dimension_guard () =
  let opt = Adam.create 2 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Adam.step: dimension mismatch") (fun () ->
      ignore (Adam.step opt ~params:[| 1.0 |] ~grad:[| 1.0 |]))

let test_lipschitz_dominates_samples () =
  let net = make_net ~sizes:[ 2; 6; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] () in
  let box = Box.make ~lo:[| -1.0; -1.0 |] ~hi:[| 1.0; 1.0 |] in
  let rng = Rng.create 3 in
  let empirical = Lipschitz.estimate ~samples:2000 ~rng ~box net in
  Alcotest.(check bool) "global bound dominates" true (Lipschitz.bound net >= empirical);
  Alcotest.(check bool) "local bound dominates" true (Lipschitz.local_bound net box >= empirical);
  Alcotest.(check bool) "frobenius dominates spectral" true
    (Lipschitz.bound_frobenius net >= Lipschitz.bound net -. 1e-9)

let test_local_lipschitz_tighter_on_saturated_regions () =
  let net = make_net ~sizes:[ 1; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Linear ] () in
  (* far from the origin every tanh saturates, so the local bound should
     collapse well below the global bound *)
  let saturated = Box.make ~lo:[| 50.0 |] ~hi:[| 51.0 |] in
  Alcotest.(check bool) "saturation detected" true
    (Lipschitz.local_bound net saturated < 0.01 *. Lipschitz.bound net +. 1e-12)

let test_preactivation_ranges_contain_point () =
  let net = make_net ~sizes:[ 2; 3; 1 ] ~acts:[ Activation.Tanh; Activation.Linear ] () in
  let box = Box.make ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |] in
  let ranges = Lipschitz.preactivation_ranges net box in
  let x = [| 0.5; 0.25 |] in
  (* recompute layer-0 preactivations by hand and compare *)
  let layer0 = (Mlp.layers net).(0) in
  let pre = Dwv_la.Mat.matvec layer0.Mlp.weights x in
  Array.iteri
    (fun i p ->
      let p = p +. layer0.Mlp.bias.(i) in
      Alcotest.(check bool) "contained" true (Dwv_interval.Interval.contains ranges.(0).(i) p))
    pre

let test_behavior_clone_reduces_mse () =
  let rng = Rng.create 21 in
  let net = Mlp.create ~sizes:[ 2; 8; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] rng in
  let region = Box.make ~lo:[| -1.0; -1.0 |] ~hi:[| 1.0; 1.0 |] in
  let target x = [| (0.8 *. x.(0)) -. (0.5 *. x.(1)) |] in
  let inputs = Array.init 200 (fun _ -> Box.sample rng region) in
  let before = Pretrain.mse ~net ~output_scale:2.0 ~target inputs in
  let trained = Pretrain.behavior_clone ~rng ~region ~target ~output_scale:2.0 net in
  let after = Pretrain.mse ~net:trained ~output_scale:2.0 ~target inputs in
  Alcotest.(check bool) "mse reduced 10x" true (after < before /. 10.0);
  Alcotest.(check bool) "small residual" true (after < 0.01)

module Ibp = Dwv_nn.Ibp

let test_ibp_forward_sound () =
  let net = make_net ~seed:13 ~sizes:[ 2; 6; 2 ] ~acts:[ Activation.Tanh; Activation.Tanh ] () in
  let box = Box.make ~lo:[| -0.4; 0.1 |] ~hi:[| 0.2; 0.6 |] in
  let out_box = Ibp.forward net box in
  let rng = Rng.create 14 in
  for _ = 1 to 200 do
    let x = Box.sample rng box in
    let y = Mlp.forward net x in
    Alcotest.(check bool) "output enclosed" true (Box.contains (Box.bloat 1e-9 out_box) y)
  done

let test_ibp_relu_net_sound () =
  let net = make_net ~seed:15 ~sizes:[ 2; 5; 1 ] ~acts:[ Activation.Relu; Activation.Linear ] () in
  let box = Box.make ~lo:[| -1.0; -1.0 |] ~hi:[| 1.0; 1.0 |] in
  let out_box = Ibp.forward net box in
  let rng = Rng.create 16 in
  for _ = 1 to 200 do
    let x = Box.sample rng box in
    Alcotest.(check bool) "relu output enclosed" true
      (Box.contains (Box.bloat 1e-9 out_box) (Mlp.forward net x))
  done

let test_hessian_bound_dominates_fd () =
  let net = make_net ~seed:17 ~sizes:[ 2; 8; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] () in
  match Lipschitz.hessian_diag_bound net with
  | None -> Alcotest.fail "expected a bound for a 1-hidden-layer tanh net"
  | Some bound ->
    let rng = Rng.create 18 in
    let eps = 1e-4 in
    for _ = 1 to 200 do
      let x = [| Rng.uniform rng ~lo:(-1.0) ~hi:1.0; Rng.uniform rng ~lo:(-1.0) ~hi:1.0 |] in
      for i = 0 to 1 do
        let xp = Array.copy x and xm = Array.copy x in
        xp.(i) <- xp.(i) +. eps;
        xm.(i) <- xm.(i) -. eps;
        let second =
          ((Mlp.forward net xp).(0) -. (2.0 *. (Mlp.forward net x).(0))
          +. (Mlp.forward net xm).(0))
          /. (eps *. eps)
        in
        if Float.abs second > bound.(i) +. 1e-3 then
          Alcotest.failf "hessian bound violated: |%g| > %g (axis %d)" second bound.(i) i
      done
    done

let test_hessian_bound_none_for_relu () =
  let net = make_net ~sizes:[ 2; 4; 1 ] ~acts:[ Activation.Relu; Activation.Tanh ] () in
  Alcotest.(check bool) "no bound for relu" true (Lipschitz.hessian_diag_bound net = None)

module Serialize = Dwv_nn.Serialize

let test_serialize_roundtrip () =
  let net = make_net ~seed:9 ~sizes:[ 3; 5; 2 ] ~acts:[ Activation.Relu; Activation.Tanh ] () in
  let restored = Serialize.mlp_of_string (Serialize.mlp_to_string net) in
  Alcotest.(check (array (float 0.0))) "exact parameters" (Mlp.flatten net)
    (Mlp.flatten restored);
  let x = [| 0.3; -0.7; 0.1 |] in
  Alcotest.(check (array (float 0.0))) "identical outputs" (Mlp.forward net x)
    (Mlp.forward restored x)

let test_serialize_file_roundtrip () =
  let net = make_net ~seed:10 () in
  let path = Filename.temp_file "dwv_net" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save_mlp path net;
      let restored = Serialize.load_mlp path in
      Alcotest.(check (array (float 0.0))) "file roundtrip" (Mlp.flatten net)
        (Mlp.flatten restored))

let test_serialize_rejects_garbage () =
  List.iter
    (fun text ->
      match Serialize.mlp_of_string text with
      | _ -> Alcotest.failf "expected failure for %S" text
      | exception Failure _ -> ())
    [ ""; "mlp 2\n"; "mlp 1\nlayers 0\n"; "mlp 1\nlayers 1\nlayer 2 2 relu\n1 2\n" ]

let prop_flatten_roundtrip_random =
  QCheck.Test.make ~name:"unflatten . flatten = id on random nets" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = make_net ~seed ~sizes:[ 3; 4; 2 ] ~acts:[ Activation.Relu; Activation.Tanh ] () in
      let x = [| 0.2; -0.1; 0.7 |] in
      Mlp.forward net x = Mlp.forward (Mlp.unflatten net (Mlp.flatten net)) x)

let suite =
  [
    Alcotest.test_case "activation values" `Quick test_activation_values;
    Alcotest.test_case "activation derivatives" `Quick test_activation_derivatives_fd;
    Alcotest.test_case "activation names" `Quick test_activation_of_string_roundtrip;
    Alcotest.test_case "forward shapes" `Quick test_forward_shapes;
    Alcotest.test_case "flatten roundtrip" `Quick test_flatten_roundtrip;
    Alcotest.test_case "unflatten perturbation" `Quick test_unflatten_perturbation;
    Alcotest.test_case "backward matches FD" `Quick test_backward_matches_fd;
    Alcotest.test_case "backward relu net" `Quick test_backward_relu_net;
    Alcotest.test_case "soft update" `Quick test_soft_update;
    Alcotest.test_case "adam minimizes" `Quick test_adam_minimizes_quadratic;
    Alcotest.test_case "adam guard" `Quick test_adam_dimension_guard;
    Alcotest.test_case "lipschitz dominates samples" `Quick test_lipschitz_dominates_samples;
    Alcotest.test_case "local lipschitz saturation" `Quick
      test_local_lipschitz_tighter_on_saturated_regions;
    Alcotest.test_case "preactivation ranges" `Quick test_preactivation_ranges_contain_point;
    Alcotest.test_case "behavior clone" `Quick test_behavior_clone_reduces_mse;
    Alcotest.test_case "ibp forward sound" `Quick test_ibp_forward_sound;
    Alcotest.test_case "ibp relu sound" `Quick test_ibp_relu_net_sound;
    Alcotest.test_case "hessian bound vs FD" `Quick test_hessian_bound_dominates_fd;
    Alcotest.test_case "hessian none for relu" `Quick test_hessian_bound_none_for_relu;
    Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
    Alcotest.test_case "serialize file" `Quick test_serialize_file_roundtrip;
    Alcotest.test_case "serialize rejects garbage" `Quick test_serialize_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_flatten_roundtrip_random;
  ]
