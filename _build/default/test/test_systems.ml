(* Tests for dwv_systems: the three benchmark systems match the paper's
   stated dynamics and sets; the augmented ACC LTI model agrees with the
   2-D expression dynamics; warm-start priors actually stabilize. *)

module Expr = Dwv_expr.Expr
module Box = Dwv_interval.Box
module I = Dwv_interval.Interval
module Mat = Dwv_la.Mat
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Flowpipe = Dwv_reach.Flowpipe
module Verifier = Dwv_reach.Verifier
module Acc = Dwv_systems.Acc
module Oscillator = Dwv_systems.Oscillator
module Threed = Dwv_systems.Threed
module Rng = Dwv_util.Rng

let check_float = Alcotest.(check (float 1e-12))

(* ---------------- ACC ---------------- *)

let test_acc_dynamics_values () =
  (* s' = 40 - v, v' = -0.2 v + u, from the paper *)
  let d = Expr.eval_vec Acc.dynamics ~x:[| 123.0; 50.0 |] ~u:[| 2.0 |] in
  check_float "s'" (-10.0) d.(0);
  check_float "v'" ((-0.2 *. 50.0) +. 2.0) d.(1)

let test_acc_spec_sets () =
  let s = Acc.spec in
  Alcotest.(check string) "name" "acc" s.Spec.name;
  Alcotest.(check bool) "X0" true
    (Box.equal s.Spec.x0 (Box.make ~lo:[| 122.0; 48.0 |] ~hi:[| 124.0; 52.0 |]));
  check_float "goal s low" 145.0 (I.lo (Box.get s.Spec.goal 0));
  check_float "unsafe s high" 120.0 (I.hi (Box.get s.Spec.unsafe 0));
  check_float "delta" 0.1 s.Spec.delta

let test_acc_augmented_consistency () =
  (* the 3-D augmented LTI model must reproduce the 2-D dynamics on the
     hyperplane c = 1 *)
  let x2 = [| 123.0; 50.0 |] and u = [| 2.0 |] in
  let x3 = [| 123.0; 50.0; 1.0 |] in
  let d2 = Expr.eval_vec Acc.dynamics ~x:x2 ~u in
  let d3 =
    Dwv_la.Vec.add
      (Mat.matvec Acc.lti_augmented.Dwv_reach.Linear_reach.a x3)
      (Mat.matvec Acc.lti_augmented.Dwv_reach.Linear_reach.b u)
  in
  check_float "s' agrees" d2.(0) d3.(0);
  check_float "v' agrees" d2.(1) d3.(1);
  check_float "constant stays" 0.0 d3.(2)

let test_acc_controller_bias () =
  let c = Acc.controller_of_theta [| 0.5; -1.0; 3.0 |] in
  (* u = 0.5 s - v + 3 on the augmented state *)
  check_float "sim controller" ((0.5 *. 10.0) -. 20.0 +. 3.0)
    (Acc.sim_controller c [| 10.0; 20.0 |]).(0)

let test_acc_verify_projects_to_2d () =
  let pipe = Acc.verify Acc.initial_controller in
  Alcotest.(check int) "2-D boxes" 2 (Box.dim (Flowpipe.final_box pipe));
  Alcotest.(check int) "full horizon" Acc.spec.Spec.steps (Flowpipe.steps pipe)

let test_acc_flowpipe_sound_vs_simulation () =
  let c = Acc.controller_of_theta [| 0.3; -1.5; 0.0 |] in
  let pipe = Acc.verify c in
  let segments = Array.of_list (Flowpipe.segment_boxes pipe) in
  let rng = Rng.create 11 in
  for _ = 1 to 10 do
    let x0 = Box.sample rng Acc.spec.Spec.x0 in
    let trace =
      Dwv_ode.Sampled_system.simulate ~substeps:8 Acc.sampled
        ~controller:(Acc.sim_controller c) ~x0 ~steps:Acc.spec.Spec.steps
    in
    Array.iteri
      (fun k x ->
        if k < Array.length segments then
          Alcotest.(check bool) "enclosed" true (Box.contains (Box.bloat 1e-6 segments.(k)) x))
      trace.Dwv_ode.Sampled_system.states
  done

let test_acc_rejects_nn_controller () =
  let net =
    Dwv_nn.Mlp.create ~sizes:[ 3; 2; 1 ]
      ~acts:[ Dwv_nn.Activation.Tanh; Dwv_nn.Activation.Tanh ] (Rng.create 0)
  in
  Alcotest.check_raises "nn rejected"
    (Invalid_argument "Acc.verify_from: the ACC study uses linear controllers") (fun () ->
      ignore (Acc.verify (Controller.net ~output_scale:1.0 net)))

(* ---------------- Oscillator ---------------- *)

let test_oscillator_dynamics_values () =
  (* x1' = x2; x2' = (1 - x1^2) x2 - x1 + u *)
  let d = Expr.eval_vec Oscillator.dynamics ~x:[| 0.5; -0.3 |] ~u:[| 0.2 |] in
  check_float "x1'" (-0.3) d.(0);
  check_float "x2'" ((0.75 *. -0.3) -. 0.5 +. 0.2) d.(1)

let test_oscillator_spec_sets () =
  let s = Oscillator.spec in
  Alcotest.(check bool) "X0" true
    (Box.equal s.Spec.x0 (Box.make ~lo:[| -0.51; 0.49 |] ~hi:[| -0.49; 0.51 |]));
  Alcotest.(check bool) "goal" true
    (Box.equal s.Spec.goal (Box.make ~lo:[| -0.05; -0.05 |] ~hi:[| 0.05; 0.05 |]));
  Alcotest.(check bool) "unsafe" true
    (Box.equal s.Spec.unsafe (Box.make ~lo:[| -0.3; 0.2 |] ~hi:[| -0.25; 0.35 |]))

let test_oscillator_prior_stabilizes () =
  (* nominal trajectory under the analytic prior reaches the goal *)
  let trace =
    Dwv_ode.Sampled_system.simulate Oscillator.sampled
      ~controller:Oscillator.prior_law
      ~x0:(Box.center Oscillator.spec.Spec.x0)
      ~steps:Oscillator.spec.Spec.steps
  in
  let final = trace.Dwv_ode.Sampled_system.states.(Oscillator.spec.Spec.steps) in
  Alcotest.(check bool) "in goal" true (Spec.point_in_goal Oscillator.spec final)

let test_oscillator_pretrained_close_to_prior () =
  let rng = Rng.create 7 in
  let c = Oscillator.pretrained_controller rng in
  (* check along the region the nominal trajectory actually visits (at
     the region's corners the prior exceeds the tanh saturation, which
     the clone legitimately cannot represent) *)
  let trajectory_region = Box.make ~lo:[| -0.55; -0.1 |] ~hi:[| 0.1; 0.55 |] in
  let worst = ref 0.0 in
  for _ = 1 to 100 do
    let x = Box.sample rng trajectory_region in
    let d = Float.abs ((Oscillator.sim_controller c x).(0) -. (Oscillator.prior_law x).(0)) in
    if d > !worst then worst := d
  done;
  Alcotest.(check bool) "clone error below 0.5" true (!worst < 0.5)

(* ---------------- 3-D system ---------------- *)

let test_threed_dynamics_values () =
  (* x1' = x3^3 - x2; x2' = x3; x3' = u *)
  let d = Expr.eval_vec Threed.dynamics ~x:[| 0.0; 0.4; 0.5 |] ~u:[| -1.0 |] in
  check_float "x1'" (0.125 -. 0.4) d.(0);
  check_float "x2'" 0.5 d.(1);
  check_float "x3'" (-1.0) d.(2)

let test_threed_spec_sets () =
  let s = Threed.spec in
  Alcotest.(check bool) "X0" true
    (Box.equal s.Spec.x0 (Box.make ~lo:[| 0.38; 0.45; 0.25 |] ~hi:[| 0.4; 0.47; 0.27 |]));
  check_float "goal x1 lo" (-0.5) (I.lo (Box.get s.Spec.goal 0));
  check_float "goal x2 hi" 0.28 (I.hi (Box.get s.Spec.goal 1));
  check_float "unsafe x2 lo" 0.55 (I.lo (Box.get s.Spec.unsafe 1));
  (* x3 axis is free *)
  Alcotest.(check bool) "x3 free" true (I.width (Box.get s.Spec.goal 2) >= 10.0 -. 1e-9)

let test_threed_prior_reaches_goal () =
  let trace =
    Dwv_ode.Sampled_system.simulate Threed.sampled ~controller:Threed.prior_law
      ~x0:(Box.center Threed.spec.Spec.x0) ~steps:Threed.spec.Spec.steps
  in
  let reached =
    Array.exists (Spec.point_in_goal Threed.spec) trace.Dwv_ode.Sampled_system.dense
  in
  let safe = Array.for_all (Spec.point_safe Threed.spec) trace.Dwv_ode.Sampled_system.dense in
  Alcotest.(check bool) "reaches goal" true reached;
  Alcotest.(check bool) "stays safe" true safe

(* ---------------- Pendulum (extension system) ---------------- *)

module Pendulum = Dwv_systems.Pendulum

let test_pendulum_dynamics_values () =
  (* x0' = x1; x1' = -sin(x0) - 0.5 x1 + u *)
  let d = Expr.eval_vec Pendulum.dynamics ~x:[| 1.0; -0.4 |] ~u:[| 0.3 |] in
  check_float "x0'" (-0.4) d.(0);
  Alcotest.(check (float 1e-12)) "x1'" (-.sin 1.0 +. 0.2 +. 0.3) d.(1)

let test_pendulum_prior_reaches_goal_safely () =
  let trace =
    Dwv_ode.Sampled_system.simulate Pendulum.sampled ~controller:Pendulum.prior_law
      ~x0:(Box.center Pendulum.spec.Spec.x0) ~steps:Pendulum.spec.Spec.steps
  in
  Alcotest.(check bool) "reaches" true
    (Array.exists (Spec.point_in_goal Pendulum.spec) trace.Dwv_ode.Sampled_system.dense);
  Alcotest.(check bool) "safe" true
    (Array.for_all (Spec.point_safe Pendulum.spec) trace.Dwv_ode.Sampled_system.dense)

let test_pendulum_polar_flowpipe_completes () =
  let c = Pendulum.pretrained_controller (Rng.create 11) in
  let pipe = Pendulum.verify ~method_:Verifier.Polar c in
  Alcotest.(check bool) "no divergence" false (Flowpipe.diverged pipe);
  Alcotest.(check int) "full horizon" Pendulum.spec.Spec.steps (Flowpipe.steps pipe)

let test_threed_polar_flowpipe_completes () =
  let rng = Rng.create 7 in
  let c = Threed.pretrained_controller rng in
  let pipe = Threed.verify ~method_:Verifier.Polar c in
  Alcotest.(check bool) "no divergence" false (Flowpipe.diverged pipe);
  Alcotest.(check int) "full horizon" Threed.spec.Spec.steps (Flowpipe.steps pipe)

let suite =
  [
    Alcotest.test_case "acc dynamics" `Quick test_acc_dynamics_values;
    Alcotest.test_case "acc spec" `Quick test_acc_spec_sets;
    Alcotest.test_case "acc augmentation" `Quick test_acc_augmented_consistency;
    Alcotest.test_case "acc controller bias" `Quick test_acc_controller_bias;
    Alcotest.test_case "acc verify projects" `Quick test_acc_verify_projects_to_2d;
    Alcotest.test_case "acc flowpipe sound" `Quick test_acc_flowpipe_sound_vs_simulation;
    Alcotest.test_case "acc rejects nn" `Quick test_acc_rejects_nn_controller;
    Alcotest.test_case "oscillator dynamics" `Quick test_oscillator_dynamics_values;
    Alcotest.test_case "oscillator spec" `Quick test_oscillator_spec_sets;
    Alcotest.test_case "oscillator prior" `Quick test_oscillator_prior_stabilizes;
    Alcotest.test_case "oscillator clone" `Quick test_oscillator_pretrained_close_to_prior;
    Alcotest.test_case "threed dynamics" `Quick test_threed_dynamics_values;
    Alcotest.test_case "threed spec" `Quick test_threed_spec_sets;
    Alcotest.test_case "threed prior" `Quick test_threed_prior_reaches_goal;
    Alcotest.test_case "threed polar flowpipe" `Slow test_threed_polar_flowpipe_completes;
    Alcotest.test_case "pendulum dynamics" `Quick test_pendulum_dynamics_values;
    Alcotest.test_case "pendulum prior" `Quick test_pendulum_prior_reaches_goal_safely;
    Alcotest.test_case "pendulum polar flowpipe" `Slow test_pendulum_polar_flowpipe_completes;
  ]
