(* Tests for dwv_poly: polynomial arithmetic (including the packed
   monomial representation), range enclosures, Bernstein approximation. *)

module Poly = Dwv_poly.Poly
module Bernstein = Dwv_poly.Bernstein
module I = Dwv_interval.Interval
module Box = Dwv_interval.Box

let check_float = Alcotest.(check (float 1e-9))

(* p(z0, z1) = 2 + 3 z0 - z0 z1^2 *)
let sample_poly () =
  Poly.of_terms 2 [ ([| 0; 0 |], 2.0); ([| 1; 0 |], 3.0); ([| 1; 2 |], -1.0) ]

let test_eval () =
  let p = sample_poly () in
  check_float "at (1,2)" (2.0 +. 3.0 -. 4.0) (Poly.eval p [| 1.0; 2.0 |]);
  check_float "at (0,5)" 2.0 (Poly.eval p [| 0.0; 5.0 |])

let test_degree_terms () =
  let p = sample_poly () in
  Alcotest.(check int) "degree" 3 (Poly.degree p);
  Alcotest.(check int) "terms" 3 (Poly.num_terms p);
  check_float "constant" 2.0 (Poly.constant_term p)

let test_add_cancel () =
  let p = sample_poly () in
  let z = Poly.sub p p in
  Alcotest.(check bool) "cancellation" true (Poly.is_zero z)

let test_mul_known () =
  (* (1 + z0)(1 - z0) = 1 - z0^2 *)
  let one_plus = Poly.of_terms 1 [ ([| 0 |], 1.0); ([| 1 |], 1.0) ] in
  let one_minus = Poly.of_terms 1 [ ([| 0 |], 1.0); ([| 1 |], -1.0) ] in
  let expected = Poly.of_terms 1 [ ([| 0 |], 1.0); ([| 2 |], -1.0) ] in
  Alcotest.(check bool) "product" true (Poly.equal (Poly.mul one_plus one_minus) expected)

let test_pow () =
  (* (z0 + 1)^3 evaluated matches *)
  let p = Poly.of_terms 1 [ ([| 0 |], 1.0); ([| 1 |], 1.0) ] in
  let cube = Poly.pow p 3 in
  check_float "at 2" 27.0 (Poly.eval cube [| 2.0 |]);
  Alcotest.(check int) "degree" 3 (Poly.degree cube)

let test_truncate () =
  let p = sample_poly () in
  let low, high = Poly.truncate ~order:1 p in
  Alcotest.(check int) "low degree" 1 (Poly.degree low);
  Alcotest.(check int) "dropped terms" 1 (Poly.num_terms high);
  Alcotest.(check bool) "partition" true (Poly.equal (Poly.add low high) p)

let test_split_var () =
  let p = sample_poly () in
  let without, with_ = Poly.split_var p 1 in
  Alcotest.(check int) "terms without z1" 2 (Poly.num_terms without);
  Alcotest.(check int) "terms with z1" 1 (Poly.num_terms with_);
  Alcotest.(check bool) "partition" true (Poly.equal (Poly.add without with_) p)

let test_diff () =
  let p = sample_poly () in
  (* dp/dz1 = -2 z0 z1 *)
  let d = Poly.diff p 1 in
  check_float "at (1,3)" (-6.0) (Poly.eval d [| 1.0; 3.0 |])

let test_bound_unit_exact_constant () =
  let p = Poly.const 2 5.0 in
  let b = Poly.bound_unit p in
  check_float "lo" 5.0 (I.lo b);
  check_float "hi" 5.0 (I.hi b)

let test_bound_unit_even_odd () =
  (* z0^2 over [-1,1]: [0,1]; z0 over [-1,1]: [-1,1] *)
  let even = Poly.of_terms 1 [ ([| 2 |], 3.0) ] in
  Alcotest.(check bool) "even" true (I.equal (Poly.bound_unit even) (I.make 0.0 3.0));
  let odd = Poly.of_terms 1 [ ([| 1 |], 3.0) ] in
  Alcotest.(check bool) "odd" true (I.equal (Poly.bound_unit odd) (I.make (-3.0) 3.0))

let test_exponent_range_guard () =
  Alcotest.check_raises "too large" (Invalid_argument "Poly: exponent out of range [0, 15]")
    (fun () -> ignore (Poly.of_terms 1 [ ([| 16 |], 1.0) ]))

let test_nvars_guard () =
  Alcotest.check_raises "too many vars" (Invalid_argument "Poly: nvars must be between 1 and 15")
    (fun () -> ignore (Poly.zero 16))

let prop_bound_unit_sound =
  QCheck.Test.make ~name:"bound_unit contains point values" ~count:300
    QCheck.(pair (float_range (-1.0) 1.0) (float_range (-1.0) 1.0))
    (fun (a, b) ->
      let p = sample_poly () in
      let v = Poly.eval p [| a; b |] in
      I.contains (I.widen (Poly.bound_unit p)) v)

let prop_mul_eval_homomorphism =
  QCheck.Test.make ~name:"eval (p*q) = eval p * eval q" ~count:300
    QCheck.(pair (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
    (fun (a, b) ->
      let p = sample_poly () in
      let q = Poly.of_terms 2 [ ([| 0; 1 |], 1.0); ([| 2; 0 |], -0.5) ] in
      let x = [| a; b |] in
      Float.abs (Poly.eval (Poly.mul p q) x -. (Poly.eval p x *. Poly.eval q x)) < 1e-7)

let prop_ieval_sound =
  QCheck.Test.make ~name:"ieval over box contains samples" ~count:200
    QCheck.(pair (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (t0, t1) ->
      let p = sample_poly () in
      let box = Box.make ~lo:[| -0.5; 1.0 |] ~hi:[| 2.0; 3.0 |] in
      let x = Box.denormalize box [| (2.0 *. t0) -. 1.0; (2.0 *. t1) -. 1.0 |] in
      I.contains (I.widen (Poly.ieval p box)) (Poly.eval p x))

(* ---------------- Bernstein ---------------- *)

let test_binomial () =
  check_float "C(5,2)" 10.0 (Bernstein.binomial 5 2);
  check_float "C(n,0)" 1.0 (Bernstein.binomial 7 0);
  check_float "outside" 0.0 (Bernstein.binomial 3 5)

let test_basis_partition_of_unity () =
  let d = 4 in
  List.iter
    (fun t ->
      let sum = ref 0.0 in
      for k = 0 to d do
        sum := !sum +. Bernstein.basis ~degree:d ~k t
      done;
      check_float "partition of unity" 1.0 !sum)
    [ 0.0; 0.3; 0.5; 0.77; 1.0 ]

let test_bernstein_reproduces_linear () =
  (* Bernstein operators reproduce affine functions exactly *)
  let f x = (2.0 *. x.(0)) -. (3.0 *. x.(1)) +. 1.0 in
  let box = Box.make ~lo:[| 0.0; -1.0 |] ~hi:[| 2.0; 1.0 |] in
  let a = Bernstein.approximate ~f ~degrees:[| 3; 3 |] box in
  List.iter
    (fun p -> Alcotest.(check (float 1e-9)) "affine exact" (f p) (Bernstein.eval a p))
    [ [| 0.0; -1.0 |]; [| 1.0; 0.0 |]; [| 2.0; 1.0 |]; [| 0.5; 0.25 |] ]

let test_bernstein_interpolates_corners () =
  let f x = sin x.(0) *. cos x.(1) in
  let box = Box.make ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |] in
  let a = Bernstein.approximate ~f ~degrees:[| 4; 4 |] box in
  (* Bernstein approximations interpolate the corner samples *)
  List.iter
    (fun p -> Alcotest.(check (float 1e-9)) "corner" (f p) (Bernstein.eval a p))
    (Box.corners box)

let test_bernstein_to_poly_consistent () =
  let f x = (x.(0) *. x.(0)) +. (0.5 *. x.(1)) in
  let box = Box.make ~lo:[| -1.0; 0.0 |] ~hi:[| 1.0; 2.0 |] in
  let a = Bernstein.approximate ~f ~degrees:[| 3; 2 |] box in
  let p = Bernstein.to_poly a in
  (* to_poly lives in normalized coordinates t in [0,1]^2 *)
  List.iter
    (fun (t0, t1) ->
      let x = [| -1.0 +. (2.0 *. t0); 2.0 *. t1 |] in
      Alcotest.(check (float 1e-8)) "power basis agrees" (Bernstein.eval a x)
        (Poly.eval p [| t0; t1 |]))
    [ (0.0, 0.0); (0.5, 0.5); (1.0, 1.0); (0.2, 0.9) ]

let test_bernstein_coeff_range_bounds_eval () =
  let f x = tanh x.(0) in
  let box = Box.make ~lo:[| -2.0 |] ~hi:[| 2.0 |] in
  let a = Bernstein.approximate ~f ~degrees:[| 5 |] box in
  let range = Bernstein.coeff_range a in
  List.iter
    (fun x ->
      Alcotest.(check bool) "in coeff hull" true
        (I.contains (I.widen range) (Bernstein.eval a [| x |])))
    [ -2.0; -1.0; 0.0; 0.5; 2.0 ]

let test_bernstein_remainder_sound_1d () =
  (* |f - B| on a dense grid must stay below the computed remainder *)
  let f x = sin (2.0 *. x.(0)) in
  let box = Box.make ~lo:[| 0.0 |] ~hi:[| 1.0 |] in
  let a = Bernstein.approximate ~f ~degrees:[| 4 |] box in
  let rem = Bernstein.remainder ~lipschitz:2.0 ~f ~samples_per_dim:12 a in
  for i = 0 to 100 do
    let x = [| float_of_int i /. 100.0 |] in
    let err = Float.abs (f x -. Bernstein.eval a x) in
    if err > rem +. 1e-9 then
      Alcotest.failf "remainder violated at %g: err %g > rem %g" x.(0) err rem
  done

let test_bernstein_remainder_decreases_with_samples () =
  let f x = exp x.(0) in
  let box = Box.make ~lo:[| 0.0 |] ~hi:[| 1.0 |] in
  let a = Bernstein.approximate ~f ~degrees:[| 3 |] box in
  let coarse = Bernstein.remainder_sampled ~lipschitz:3.0 ~f ~samples_per_dim:3 a in
  let fine = Bernstein.remainder_sampled ~lipschitz:3.0 ~f ~samples_per_dim:30 a in
  Alcotest.(check bool) "finer grid tightens" true (fine < coarse)

let suite =
  [
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "degree/terms" `Quick test_degree_terms;
    Alcotest.test_case "add cancellation" `Quick test_add_cancel;
    Alcotest.test_case "mul known" `Quick test_mul_known;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "split_var" `Quick test_split_var;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "bound_unit constant exact" `Quick test_bound_unit_exact_constant;
    Alcotest.test_case "bound_unit even/odd" `Quick test_bound_unit_even_odd;
    Alcotest.test_case "exponent guard" `Quick test_exponent_range_guard;
    Alcotest.test_case "nvars guard" `Quick test_nvars_guard;
    QCheck_alcotest.to_alcotest prop_bound_unit_sound;
    QCheck_alcotest.to_alcotest prop_mul_eval_homomorphism;
    QCheck_alcotest.to_alcotest prop_ieval_sound;
    Alcotest.test_case "binomial" `Quick test_binomial;
    Alcotest.test_case "basis partition of unity" `Quick test_basis_partition_of_unity;
    Alcotest.test_case "bernstein linear exact" `Quick test_bernstein_reproduces_linear;
    Alcotest.test_case "bernstein corners" `Quick test_bernstein_interpolates_corners;
    Alcotest.test_case "bernstein to_poly" `Quick test_bernstein_to_poly_consistent;
    Alcotest.test_case "bernstein coeff range" `Quick test_bernstein_coeff_range_bounds_eval;
    Alcotest.test_case "bernstein remainder sound" `Quick test_bernstein_remainder_sound_1d;
    Alcotest.test_case "bernstein remainder tightens" `Quick
      test_bernstein_remainder_decreases_with_samples;
  ]
