examples/quickstart.mli:
