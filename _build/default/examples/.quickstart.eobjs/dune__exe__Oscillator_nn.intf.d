examples/oscillator_nn.mli:
