examples/initset_search.ml: Dwv_core Dwv_interval Dwv_reach Dwv_systems Fmt List
