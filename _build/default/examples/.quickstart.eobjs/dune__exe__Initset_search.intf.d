examples/initset_search.mli:
