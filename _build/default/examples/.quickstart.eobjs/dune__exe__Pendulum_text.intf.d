examples/pendulum_text.mli:
