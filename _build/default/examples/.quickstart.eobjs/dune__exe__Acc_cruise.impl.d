examples/acc_cruise.ml: Array Dwv_core Dwv_interval Dwv_la Dwv_nn Dwv_reach Dwv_rl Dwv_systems Dwv_util Fmt List
