examples/threed_nn.ml: Dwv_core Dwv_interval Dwv_reach Dwv_systems Dwv_util Fmt List
