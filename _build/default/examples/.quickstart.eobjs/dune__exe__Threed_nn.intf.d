examples/threed_nn.mli:
