examples/acc_cruise.mli:
