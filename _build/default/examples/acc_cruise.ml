(* ACC case study: design-while-verify vs the design-then-verify
   baselines, on the scenario of Fig. 3/Fig. 6 of the paper.

   Learns with both metrics (geometric and Wasserstein), trains an SVG
   policy on the same plant, verifies everything, and prints the
   reachable-set corridors that Fig. 6 plots.

   Run with: dune exec examples/acc_cruise.exe *)

module Acc = Dwv_systems.Acc
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Evaluate = Dwv_core.Evaluate
module Controller = Dwv_core.Controller
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe
module Box = Dwv_interval.Box
module Env = Dwv_rl.Env
module Svg = Dwv_rl.Svg
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Rng = Dwv_util.Rng

let print_corridor name pipe =
  Fmt.pr "%s reachable corridor (every 20th step):@." name;
  List.iteri
    (fun k box -> if k mod 20 = 0 then Fmt.pr "  t=%4.1f  %a@." (0.1 *. float_of_int k) Box.pp box)
    (Flowpipe.step_boxes pipe);
  Fmt.pr "  final %a@." Box.pp (Flowpipe.final_box pipe)

let evaluate_controller name controller pipe =
  let rng = Rng.create 99 in
  let rates =
    Evaluate.rates ~n:500 ~rng ~sys:Acc.sampled ~controller:(Acc.sim_controller controller)
      ~spec:Acc.spec ()
  in
  let verdict = Verifier.check ~unsafe:Acc.spec.unsafe ~goal:Acc.spec.goal pipe in
  Fmt.pr "%-12s %a, verified: %a@." name Evaluate.pp_rates rates Verifier.pp_verdict verdict

let ours metric alpha =
  let cfg = { Learner.default_config with max_iters = 150; alpha; beta = alpha } in
  let r =
    Learner.learn cfg ~metric ~spec:Acc.spec ~verify:Acc.verify ~init:Acc.initial_controller
  in
  Fmt.pr "Ours(%s): converged in %d iterations, verdict %a@."
    (Metrics.kind_to_string metric) r.iterations Verifier.pp_verdict r.verdict;
  r

let svg_baseline () =
  (* SVG learns a neural policy on the simulated plant (design-then-verify);
     we embed the policy's local linearization for the linear verifier and
     verify the actual nonlinear policy via simulation only, as the paper
     does for baselines (their verified column comes from the reach tool;
     here the baseline's verification uses the same linear engine on a
     least-squares linear fit of the policy - documented substitution). *)
  let env = Env.make ~sys:Acc.sampled ~spec:Acc.spec () in
  let rng = Rng.create 7 in
  let policy = Mlp.create ~sizes:[ 2; 16; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] rng in
  let cfg =
    { Svg.default_config with
      horizon = Acc.spec.steps; max_steps = 400; lr = 3e-3; eval_every = 10 }
  in
  let r = Svg.train cfg ~env ~policy ~output_scale:30.0 in
  Fmt.pr "SVG: %s after %d gradient steps@."
    (if r.converged then "converged" else "did not converge")
    r.steps;
  r

(* Least-squares linear fit u ~ theta . (s, v, 1) of a policy over X0
   paths, so the baseline can be pushed through the linear verifier. *)
let linearize_policy policy output_scale =
  let rng = Rng.create 13 in
  let samples = 400 in
  (* features: s, v, 1; normal equations *)
  let xs = Array.init samples (fun _ ->
      [| Rng.uniform rng ~lo:118.0 ~hi:160.0; Rng.uniform rng ~lo:35.0 ~hi:55.0; 1.0 |])
  in
  let ys = Array.map (fun x -> output_scale *. (Mlp.forward policy [| x.(0); x.(1) |]).(0)) xs in
  let ata = Dwv_la.Mat.zeros 3 3 and aty = Array.make 3 0.0 in
  Array.iteri
    (fun k x ->
      for i = 0 to 2 do
        aty.(i) <- aty.(i) +. (x.(i) *. ys.(k));
        for j = 0 to 2 do
          Dwv_la.Mat.set ata i j (Dwv_la.Mat.get ata i j +. (x.(i) *. x.(j)))
        done
      done)
    xs;
  Dwv_la.Mat.solve ata aty

let () =
  Fmt.pr "=== ACC case study: ours vs design-then-verify ===@.@.";
  let g = ours Metrics.Geometric 0.2 in
  let w = ours Metrics.Wasserstein 0.4 in
  let svg = svg_baseline () in
  let svg_lin = linearize_policy svg.policy svg.output_scale in
  Fmt.pr "SVG linearized gain: %a@.@." Fmt.(array ~sep:comma float) svg_lin;
  let svg_controller = Acc.controller_of_theta svg_lin in
  let svg_pipe = Acc.verify svg_controller in
  Fmt.pr "--- Table 1 (ACC block) ---@.";
  evaluate_controller "Ours(G)" g.controller g.pipe;
  evaluate_controller "Ours(W)" w.controller w.pipe;
  (* SVG rates use the actual neural policy; verification the linear fit *)
  let rng = Rng.create 99 in
  let svg_rates =
    Evaluate.rates ~n:500 ~rng ~sys:Acc.sampled
      ~controller:(fun x -> [| svg.output_scale *. (Mlp.forward svg.policy x).(0) |])
      ~spec:Acc.spec ()
  in
  Fmt.pr "%-12s %a, verified: %a@.@." "SVG" Evaluate.pp_rates svg_rates Verifier.pp_verdict
    (Verifier.check ~unsafe:Acc.spec.unsafe ~goal:Acc.spec.goal svg_pipe);
  Fmt.pr "--- Fig. 6: reachable corridors ---@.";
  print_corridor "Ours(G)" g.pipe;
  print_corridor "Ours(W)" w.pipe;
  print_corridor "SVG(linearized)" svg_pipe
