(* Quickstart: design-while-verify in ~30 lines.

   Learn a linear cruise-control law whose closed loop is FORMALLY
   verified to brake away from the lead vehicle (never closer than 120 m)
   and settle in the goal band (gap 145..155 m at ~40 m/s), then confirm
   the formal result with 500 random simulations.

   Run with: dune exec examples/quickstart.exe *)

module Acc = Dwv_systems.Acc
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Evaluate = Dwv_core.Evaluate
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe

let () =
  Fmt.pr "=== design-while-verify quickstart: adaptive cruise control ===@.";
  Fmt.pr "%a@.@." Dwv_core.Spec.pp Acc.spec;
  (* Algorithm 1: tune theta with the verifier in the loop *)
  let cfg = { Learner.default_config with max_iters = 150; alpha = 0.2; beta = 0.2 } in
  let result =
    Learner.learn cfg ~metric:Metrics.Geometric ~spec:Acc.spec ~verify:Acc.verify
      ~init:Acc.initial_controller
  in
  Fmt.pr "learned in %d iterations (%d verifier calls): verdict = %a@." result.iterations
    result.verifier_calls Verifier.pp_verdict result.verdict;
  Fmt.pr "controller: %a@." Dwv_core.Controller.pp result.controller;
  Fmt.pr "final reachable box: %a@.@." Dwv_interval.Box.pp (Flowpipe.final_box result.pipe);
  (* the experimental columns of Table 1: 500 random rollouts *)
  let rng = Dwv_util.Rng.create 2024 in
  let rates =
    Evaluate.rates ~n:500 ~rng ~sys:Acc.sampled
      ~controller:(Acc.sim_controller result.controller)
      ~spec:Acc.spec ()
  in
  Fmt.pr "simulation check: %a@." Evaluate.pp_rates rates;
  if result.verdict = Verifier.Reach_avoid then
    Fmt.pr "the reach-avoid property is FORMALLY GUARANTEED for every start in X0@."
