(* Algorithm 2 in isolation: certify the reach-avoid initial set X_I of a
   DELIBERATELY under-tuned controller, illustrating why goal-reaching may
   hold only on part of X_0 (the incompleteness discussion of Sec. 3.4).

   Run with: dune exec examples/initset_search.exe *)

module Acc = Dwv_systems.Acc
module Initset = Dwv_core.Initset
module Verifier = Dwv_reach.Verifier
module Box = Dwv_interval.Box

let () =
  Fmt.pr "=== Algorithm 2: initial-set search on ACC ===@.@.";
  (* a gain whose transient brushes the goal band right at its edge:
     only part of X_0 is formally certified to enter it, so Algorithm 2
     carves out a strict subset X_I of X_0 *)
  let controller = Acc.controller_of_theta [| 0.55; -2.0; 1.83 |] in
  let whole = Acc.verify controller in
  Fmt.pr "whole X0: verdict %a, final box %a@.@." Verifier.pp_verdict
    (Verifier.check ~unsafe:Acc.spec.unsafe ~goal:Acc.spec.goal whole)
    Box.pp
    (Dwv_reach.Flowpipe.final_box whole);
  List.iter
    (fun depth ->
      let r =
        Initset.search ~max_depth:depth
          ~verify:(fun cell -> Acc.verify_from cell controller)
          ~goal:Acc.spec.goal ~x0:Acc.spec.x0 ()
      in
      Fmt.pr "max_depth = %d -> coverage %.1f%% with %d verifier calls@." depth
        (100.0 *. r.Initset.coverage) r.Initset.verifier_calls)
    [ 0; 1; 2; 3; 4; 5 ];
  Fmt.pr "@.finest partition:@.";
  let r =
    Initset.search ~max_depth:5
      ~verify:(fun cell -> Acc.verify_from cell controller)
      ~goal:Acc.spec.goal ~x0:Acc.spec.x0 ()
  in
  Fmt.pr "%a@." Initset.pp_result r
