(* Van der Pol oscillator with a neural controller, verified with both
   controller abstractions (POLAR-style Taylor models and ReachNN-style
   Bernstein polynomials) - the scenario of Fig. 5/Fig. 7.

   Run with: dune exec examples/oscillator_nn.exe *)

module Oscillator = Dwv_systems.Oscillator
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Evaluate = Dwv_core.Evaluate
module Initset = Dwv_core.Initset
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe
module Box = Dwv_interval.Box
module Rng = Dwv_util.Rng

let () =
  Fmt.pr "=== Van der Pol oscillator: NN controller with verification in the loop ===@.";
  Fmt.pr "%a@.@." Dwv_core.Spec.pp Oscillator.spec;
  let rng = Rng.create 7 in
  (* warm-start: behavior-clone the feedback-linearizing prior (the clone
     grazes the unsafe box, so the verification loop has real work) *)
  let init = Oscillator.pretrained_controller rng in
  let cfg =
    { Learner.default_config with
      max_iters = 20; alpha = 0.05; beta = 0.05; perturbation = 0.02;
      gradient_mode = Learner.Spsa 2 }
  in
  let learn method_ name =
    let t0 = Sys.time () in
    let r =
      Learner.learn cfg ~metric:Metrics.Geometric ~spec:Oscillator.spec
        ~verify:(Oscillator.verify ~method_) ~init
    in
    Fmt.pr "[%s] CI = %d (%d verifier calls, %.1fs cpu): %a@." name r.iterations
      r.verifier_calls (Sys.time () -. t0) Verifier.pp_verdict r.verdict;
    r
  in
  let polar = learn Verifier.Polar "POLAR" in
  let reachnn =
    learn (Verifier.Bernstein (Dwv_reach.Nn_reach_bernstein.default_config ~n:2)) "ReachNN"
  in
  ignore reachnn;
  (* simulation check *)
  let rates =
    Evaluate.rates ~n:500 ~rng ~sys:Oscillator.sampled
      ~controller:(Oscillator.sim_controller polar.controller)
      ~spec:Oscillator.spec ()
  in
  Fmt.pr "simulation: %a@.@." Evaluate.pp_rates rates;
  (* Algorithm 2: certify the goal-reaching initial set X_I *)
  let result =
    Initset.search ~max_depth:2
      ~verify:(fun cell -> Oscillator.verify_from ~method_:Verifier.Polar cell polar.controller)
      ~goal:Oscillator.spec.goal ~x0:Oscillator.spec.x0 ()
  in
  Fmt.pr "%a@.@." Initset.pp_result result;
  (* Fig. 7 flavor: the verified corridor *)
  Fmt.pr "verified reachable corridor (every 6th step):@.";
  List.iteri
    (fun k box -> if k mod 6 = 0 then Fmt.pr "  t=%3.1f  %a@." (0.1 *. float_of_int k) Box.pp box)
    (Flowpipe.step_boxes polar.pipe)
