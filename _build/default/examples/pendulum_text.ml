(* A user-defined system, end to end: the dynamics is given as TEXT (the
   parser front end), the controller is a neural network warm-started by
   behavior cloning, and Algorithm 1 learns until the POLAR-style verifier
   certifies reach-avoid. Demonstrates using the library on a system that
   ships with neither the paper nor this repository - a damped pendulum

       x0' = x1
       x1' = -sin(x0) - 0.5 x1 + u

   swung from ~1 rad down to the origin while avoiding a band on the way.

   Run with: dune exec examples/pendulum_text.exe *)

module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Parser = Dwv_expr.Parser
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Evaluate = Dwv_core.Evaluate
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Pretrain = Dwv_nn.Pretrain
module Rng = Dwv_util.Rng

let dynamics =
  match Parser.parse_system [ "x1"; "-sin(x0) - 0.5 * x1 + u0" ] with
  | Ok f -> f
  | Error msg -> failwith msg

let delta = 0.1
let steps = 30

let spec =
  Spec.make ~name:"pendulum"
    ~x0:(Box.make ~lo:[| 0.9; -0.05 |] ~hi:[| 1.1; 0.05 |])
    ~unsafe:(Box.make ~lo:[| 0.25; -1.05 |] ~hi:[| 0.4; -0.85 |])
    ~goal:(Box.make ~lo:[| -0.1; -0.1 |] ~hi:[| 0.1; 0.1 |])
    ~delta ~steps

let output_scale = 3.0

(* feedback-linearizing prior: u = sin(x0) + 0.5 x1 - 4 x0 - 3 x1 *)
let prior x = [| sin x.(0) +. (0.5 *. x.(1)) -. (4.0 *. x.(0)) -. (3.0 *. x.(1)) |]

let verify controller =
  match controller with
  | Controller.Net { net; output_scale } ->
    Verifier.nn_flowpipe ~order:3 ~disturbance_slots:6 ~f:dynamics ~delta ~steps ~net
      ~output_scale ~method_:Verifier.Polar ~x0:spec.Spec.x0 ()
  | Controller.Linear _ -> invalid_arg "pendulum example uses an NN controller"

let () =
  Fmt.pr "=== user-defined system from text: damped pendulum ===@.";
  Fmt.pr "%a@.@." Spec.pp spec;
  let rng = Rng.create 11 in
  let net0 =
    Mlp.create ~sizes:[ 2; 8; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] rng
  in
  let region = Box.make ~lo:[| -0.3; -1.4 |] ~hi:[| 1.2; 0.3 |] in
  let warm =
    Pretrain.behavior_clone
      ~config:{ Pretrain.default_config with epochs = 150 }
      ~rng ~region ~target:prior ~output_scale net0
  in
  let init = Controller.net ~output_scale warm in
  let cfg =
    { Learner.default_config with
      max_iters = 15; alpha = 0.05; beta = 0.05; perturbation = 0.02;
      gradient_mode = Learner.Spsa 2; seed = 11 }
  in
  let r = Learner.learn cfg ~metric:Metrics.Geometric ~spec ~verify ~init in
  Fmt.pr "CI = %d, verdict: %a@." r.iterations Verifier.pp_verdict r.verdict;
  let sys = Dwv_ode.Sampled_system.make ~f:dynamics ~n:2 ~m:1 ~delta in
  let rates =
    Evaluate.rates ~n:500 ~rng ~sys ~controller:(Controller.eval r.controller) ~spec ()
  in
  Fmt.pr "simulation: %a@." Evaluate.pp_rates rates;
  Fmt.pr "certified corridor:@.";
  List.iteri
    (fun k box ->
      if k mod 5 = 0 then Fmt.pr "  t=%3.1f  %a@." (delta *. float_of_int k) Box.pp box)
    (Flowpipe.step_boxes r.pipe)
