(* The 3-D polynomial system under a neural controller - the scenario of
   Fig. 8, including the divergence ("NAN") failure mode of verifying an
   unprepared network.

   Run with: dune exec examples/threed_nn.exe *)

module Threed = Dwv_systems.Threed
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Evaluate = Dwv_core.Evaluate
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe
module Box = Dwv_interval.Box
module Rng = Dwv_util.Rng

let () =
  Fmt.pr "=== 3-D system: NN controller with verification in the loop ===@.";
  Fmt.pr "%a@.@." Dwv_core.Spec.pp Threed.spec;
  let rng = Rng.create 7 in
  (* first, the Fig. 8 failure mode: a raw random network almost always
     drives the reachability analysis into divergence *)
  let raw = Threed.initial_controller (Rng.split rng) in
  let raw_pipe = Threed.verify ~method_:Verifier.Polar raw in
  Fmt.pr "raw random network: %a after %d steps -> verdict %a@."
    (fun ppf d -> Fmt.string ppf (if d then "verification DIVERGED (the paper's NAN)" else "completed"))
    (Flowpipe.diverged raw_pipe) (Flowpipe.steps raw_pipe) Verifier.pp_verdict
    (Verifier.check ~unsafe:Threed.spec.unsafe ~goal:Threed.spec.goal raw_pipe);
  (* design-while-verify from the warm start *)
  let init = Threed.pretrained_controller rng in
  let cfg =
    { Learner.default_config with
      max_iters = 15; alpha = 0.05; beta = 0.05; perturbation = 0.02;
      gradient_mode = Learner.Spsa 2 }
  in
  let r =
    Learner.learn cfg ~metric:Metrics.Geometric ~spec:Threed.spec
      ~verify:(Threed.verify ~method_:Verifier.Polar) ~init
  in
  Fmt.pr "ours: CI = %d, verdict %a@." r.iterations Verifier.pp_verdict r.verdict;
  let rates =
    Evaluate.rates ~n:500 ~rng ~sys:Threed.sampled
      ~controller:(Threed.sim_controller r.controller) ~spec:Threed.spec ()
  in
  Fmt.pr "simulation: %a@.@." Evaluate.pp_rates rates;
  Fmt.pr "verified reachable corridor:@.";
  List.iteri
    (fun k box -> if k mod 3 = 0 then Fmt.pr "  t=%3.1f  %a@." (0.2 *. float_of_int k) Box.pp box)
    (Flowpipe.step_boxes r.pipe)
