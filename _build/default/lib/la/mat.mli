(** Dense row-major matrices: arithmetic, LU solve, matrix exponential,
    spectral norm. Sized for the small systems of the paper (n = 2..3,
    NN layers up to a few hundred weights). *)

type t

(** [create rows cols x] is a rows*cols matrix filled with [x]. *)
val create : int -> int -> float -> t

val zeros : int -> int -> t
val identity : int -> t

(** [init rows cols f] has entry [(i,j)] equal to [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** Build from a list of row arrays; raises on ragged input. *)
val of_rows : float array list -> t

(** [(rows, cols)]. *)
val dims : t -> int * int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t

(** Copy of row [i]. *)
val row : t -> int -> float array

(** Copy of column [j]. *)
val col : t -> int -> float array

val transpose : t -> t
val map : (float -> float) -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val matmul : t -> t -> t

(** Matrix-vector product. *)
val matvec : t -> float array -> float array

(** Row-vector-matrix product (vᵀM). *)
val vecmat : float array -> t -> float array

(** Outer product u vᵀ. *)
val outer : float array -> float array -> t

(** Frobenius norm. *)
val norm_fro : t -> float

(** Induced infinity norm (max absolute row sum). *)
val norm_inf : t -> float

(** LU decomposition with partial pivoting; raises [Failure] if singular. *)
val lu_decompose : t -> t * int array

(** Solve with a precomputed decomposition. *)
val lu_solve : t * int array -> float array -> float array

(** Solve [a x = b]. *)
val solve : t -> float array -> float array

(** Matrix inverse; raises [Failure] if singular. *)
val inverse : t -> t

(** Matrix exponential (scaling-and-squaring, degree-16 Taylor kernel). *)
val expm : t -> t

(** [integral_expm a t] is the convolution integral ∫₀ᵗ exp(a s) ds,
    valid for singular [a] (augmented-matrix method). *)
val integral_expm : t -> float -> t

(** Largest singular value by power iteration (default 100 iterations). *)
val spectral_norm : ?iters:int -> t -> float

(** Entrywise comparison with absolute tolerance (default 1e-9). *)
val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
