(* Classical linear control design helpers: controllability, Ackermann
   pole placement for single-input systems, and stability margins. Used
   to construct principled initial designs (the "random initialisation"
   of Algorithm 1 is drawn from stabilizing pole placements) and to
   cross-check learned closed loops. *)

(* Controllability matrix [B, AB, ..., A^{n-1}B] for single-input B. *)
let controllability_matrix a b =
  let n, cols = Mat.dims a in
  if n <> cols then invalid_arg "Control.controllability_matrix: square A required";
  let bn, bm = Mat.dims b in
  if bn <> n || bm <> 1 then invalid_arg "Control.controllability_matrix: B must be n x 1";
  let c = Mat.zeros n n in
  let col = ref (Mat.col b 0) in
  for j = 0 to n - 1 do
    if j > 0 then col := Mat.matvec a !col;
    for i = 0 to n - 1 do
      Mat.set c i j !col.(i)
    done
  done;
  c

let controllable a b =
  match Mat.lu_decompose (controllability_matrix a b) with
  | _ -> true
  | exception Failure _ -> false

(* Coefficients of the monic polynomial with the given roots:
   prod (s - r_i) = s^n + c_{n-1} s^{n-1} + ... + c_0, returned as
   [| c_0; ...; c_{n-1} |]. Roots must be real (use conjugate-pair
   expansions for complex placements). *)
let poly_from_roots roots =
  let coeffs = Array.make (Array.length roots + 1) 0.0 in
  coeffs.(0) <- 1.0;
  let deg = ref 0 in
  Array.iter
    (fun r ->
      incr deg;
      (* multiply by (s - r) *)
      for k = !deg downto 1 do
        coeffs.(k) <- coeffs.(k - 1) -. (r *. coeffs.(k))
      done;
      coeffs.(0) <- -.r *. coeffs.(0))
    roots;
  (* coeffs currently holds ascending powers with leading 1 at index deg *)
  Array.sub coeffs 0 (Array.length roots)

(* phi(A) = A^n + c_{n-1} A^{n-1} + ... + c_0 I. *)
let matrix_polynomial a coeffs =
  let n, _ = Mat.dims a in
  let deg = Array.length coeffs in
  let acc = ref (Mat.identity n) in
  (* Horner: ((A + c_{n-1} I) A + c_{n-2} I) A + ... *)
  for k = deg - 1 downto 0 do
    acc := Mat.add (Mat.matmul !acc a) (Mat.scale coeffs.(k) (Mat.identity n))
  done;
  !acc

(* Ackermann's formula: the unique K with eig(A - B K) at the given real
   poles, for a controllable single-input pair. Raises [Failure] when the
   pair is uncontrollable. *)
let ackermann a b ~poles =
  let n, _ = Mat.dims a in
  if Array.length poles <> n then invalid_arg "Control.ackermann: need n poles";
  let c = controllability_matrix a b in
  let phi = matrix_polynomial a (poly_from_roots poles) in
  (* K = e_n^T C^{-1} phi(A): solve C^T y = e_n, then K = y^T phi *)
  let e_n = Array.init n (fun i -> if i = n - 1 then 1.0 else 0.0) in
  let y = Mat.solve (Mat.transpose c) e_n in
  Mat.vecmat y phi

(* Stability margin of the closed loop A - B K (continuous time):
   -max Re(lambda); positive iff Hurwitz stable. *)
let closed_loop_margin a b k =
  let n, _ = Mat.dims a in
  ignore n;
  let bk =
    Mat.init (fst (Mat.dims a)) (snd (Mat.dims a)) (fun i j -> Mat.get b i 0 *. k.(j))
  in
  let acl = Mat.sub a bk in
  List.fold_left (fun acc (l : Eig.complex) -> Float.min acc (-.l.Eig.re)) infinity
    (Eig.eigenvalues acl)
