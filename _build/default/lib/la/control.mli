(** Classical linear control design: controllability, Ackermann pole
    placement (single input), closed-loop stability margins. *)

(** Controllability matrix [B, AB, …, Aⁿ⁻¹B]; raises unless A is square
    and B is n×1. *)
val controllability_matrix : Mat.t -> Mat.t -> Mat.t

(** True iff the controllability matrix is nonsingular. *)
val controllable : Mat.t -> Mat.t -> bool

(** Ascending coefficients [c₀; …; c_{n−1}] of Π(s − rᵢ) (monic). *)
val poly_from_roots : float array -> float array

(** φ(A) = Aⁿ + c_{n−1}Aⁿ⁻¹ + … + c₀ I for ascending [coeffs]. *)
val matrix_polynomial : Mat.t -> float array -> Mat.t

(** Ackermann's formula: the K placing eig(A − BK) at the given real
    poles. Raises [Failure] for uncontrollable pairs. *)
val ackermann : Mat.t -> Mat.t -> poles:float array -> float array

(** −max Re λ(A − BK): positive iff the closed loop is Hurwitz stable. *)
val closed_loop_margin : Mat.t -> Mat.t -> float array -> float
