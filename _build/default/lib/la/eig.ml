(* Eigenvalues of small dense real matrices by the shifted QR algorithm
   on an upper Hessenberg form (Givens rotations, Wilkinson-style shifts,
   2x2 trailing-block deflation for complex pairs).

   Used for closed-loop stability analysis: the learned sampled-data loop
   x+ = (A_d + B_d K) x is asymptotically stable iff the spectral radius
   is below one, which gives an independent sanity check of the verifier's
   contraction behaviour. *)

type complex = { re : float; im : float }

let modulus { re; im } = sqrt ((re *. re) +. (im *. im))

(* Eigenvalues of a 2x2 block [[a b];[c d]]. *)
let eig2 a b c d =
  let tr = a +. d and det = (a *. d) -. (b *. c) in
  let disc = (tr *. tr /. 4.0) -. det in
  if disc >= 0.0 then begin
    let s = sqrt disc in
    [ { re = (tr /. 2.0) +. s; im = 0.0 }; { re = (tr /. 2.0) -. s; im = 0.0 } ]
  end
  else begin
    let s = sqrt (-.disc) in
    [ { re = tr /. 2.0; im = s }; { re = tr /. 2.0; im = -.s } ]
  end

(* Householder reduction to upper Hessenberg form (in place on a copy). *)
let hessenberg m =
  let n, cols = Mat.dims m in
  if n <> cols then invalid_arg "Eig.hessenberg: square matrix required";
  let h = Mat.copy m in
  for k = 0 to n - 3 do
    (* zero entries below the first subdiagonal of column k *)
    let alpha = ref 0.0 in
    for i = k + 1 to n - 1 do
      alpha := !alpha +. (Mat.get h i k ** 2.0)
    done;
    let alpha = sqrt !alpha in
    if alpha > 1e-300 then begin
      let alpha = if Mat.get h (k + 1) k > 0.0 then -.alpha else alpha in
      (* v = x - alpha e1 *)
      let v = Array.make n 0.0 in
      v.(k + 1) <- Mat.get h (k + 1) k -. alpha;
      for i = k + 2 to n - 1 do
        v.(i) <- Mat.get h i k
      done;
      let vnorm2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v in
      if vnorm2 > 1e-300 then begin
        (* H := (I - 2 v v^T / |v|^2) H (I - 2 v v^T / |v|^2) *)
        (* left multiply *)
        for j = 0 to n - 1 do
          let dot = ref 0.0 in
          for i = k + 1 to n - 1 do
            dot := !dot +. (v.(i) *. Mat.get h i j)
          done;
          let f = 2.0 *. !dot /. vnorm2 in
          for i = k + 1 to n - 1 do
            Mat.set h i j (Mat.get h i j -. (f *. v.(i)))
          done
        done;
        (* right multiply *)
        for i = 0 to n - 1 do
          let dot = ref 0.0 in
          for j = k + 1 to n - 1 do
            dot := !dot +. (Mat.get h i j *. v.(j))
          done;
          let f = 2.0 *. !dot /. vnorm2 in
          for j = k + 1 to n - 1 do
            Mat.set h i j (Mat.get h i j -. (f *. v.(j)))
          done
        done
      end
    end
  done;
  h

(* Shifted QR iteration with Givens rotations on a Hessenberg matrix,
   deflating from the bottom. *)
let eigenvalues ?(max_sweeps = 500) m =
  let n, cols = Mat.dims m in
  if n <> cols then invalid_arg "Eig.eigenvalues: square matrix required";
  if n = 0 then []
  else if n = 1 then [ { re = Mat.get m 0 0; im = 0.0 } ]
  else begin
    let h = hessenberg m in
    let eigs = ref [] in
    let hi = ref (n - 1) in
    let sweeps = ref 0 in
    let subdiag_small i =
      Float.abs (Mat.get h i (i - 1))
      <= 1e-13 *. (Float.abs (Mat.get h i i) +. Float.abs (Mat.get h (i - 1) (i - 1)) +. 1e-30)
    in
    while !hi > 0 && !sweeps < max_sweeps do
      incr sweeps;
      (* deflate converged eigenvalues at the bottom *)
      let progress = ref true in
      while !progress && !hi >= 0 do
        progress := false;
        if !hi = 0 then begin
          eigs := { re = Mat.get h 0 0; im = 0.0 } :: !eigs;
          hi := -1
        end
        else if subdiag_small !hi then begin
          eigs := { re = Mat.get h !hi !hi; im = 0.0 } :: !eigs;
          decr hi;
          progress := true
        end
        else if !hi >= 1 && (!hi = 1 || subdiag_small (!hi - 1)) then begin
          (* isolated trailing 2x2 block: take its (possibly complex)
             eigenvalues directly when it will not split further *)
          let a = Mat.get h (!hi - 1) (!hi - 1)
          and b = Mat.get h (!hi - 1) !hi
          and c = Mat.get h !hi (!hi - 1)
          and d = Mat.get h !hi !hi in
          let tr = a +. d and det = (a *. d) -. (b *. c) in
          let disc = (tr *. tr /. 4.0) -. det in
          if disc < 0.0 || !sweeps > max_sweeps / 2 then begin
            eigs := eig2 a b c d @ !eigs;
            hi := !hi - 2;
            progress := true
          end
        end
      done;
      if !hi > 0 then begin
        (* Wilkinson shift from the trailing 2x2 block *)
        let a = Mat.get h (!hi - 1) (!hi - 1)
        and b = Mat.get h (!hi - 1) !hi
        and c = Mat.get h !hi (!hi - 1)
        and d = Mat.get h !hi !hi in
        let tr = a +. d and det = (a *. d) -. (b *. c) in
        let disc = (tr *. tr /. 4.0) -. det in
        let shift =
          if disc >= 0.0 then begin
            let s = sqrt disc in
            let l1 = (tr /. 2.0) +. s and l2 = (tr /. 2.0) -. s in
            if Float.abs (l1 -. d) < Float.abs (l2 -. d) then l1 else l2
          end
          else tr /. 2.0
        in
        (* QR step on the active block [0 .. hi] via Givens rotations *)
        let top = !hi in
        (* shift *)
        for i = 0 to top do
          Mat.set h i i (Mat.get h i i -. shift)
        done;
        (* factor: apply Givens to zero subdiagonal, remembering rotations *)
        let cs = Array.make top 0.0 and sn = Array.make top 0.0 in
        for i = 0 to top - 1 do
          let a = Mat.get h i i and b = Mat.get h (i + 1) i in
          let r = sqrt ((a *. a) +. (b *. b)) in
          let c0 = if r > 1e-300 then a /. r else 1.0 in
          let s0 = if r > 1e-300 then b /. r else 0.0 in
          cs.(i) <- c0;
          sn.(i) <- s0;
          for j = i to top do
            let x = Mat.get h i j and y = Mat.get h (i + 1) j in
            Mat.set h i j ((c0 *. x) +. (s0 *. y));
            Mat.set h (i + 1) j ((-.s0 *. x) +. (c0 *. y))
          done
        done;
        (* RQ: apply the transposed rotations on the right *)
        for i = 0 to top - 1 do
          let c0 = cs.(i) and s0 = sn.(i) in
          for j = 0 to min (i + 2) top do
            let x = Mat.get h j i and y = Mat.get h j (i + 1) in
            Mat.set h j i ((c0 *. x) +. (s0 *. y));
            Mat.set h j (i + 1) ((-.s0 *. x) +. (c0 *. y))
          done
        done;
        (* unshift *)
        for i = 0 to top do
          Mat.set h i i (Mat.get h i i +. shift)
        done
      end
    done;
    (* anything left unconverged: surface the diagonal (best effort) *)
    if !hi >= 0 then
      for i = 0 to !hi do
        eigs := { re = Mat.get h i i; im = 0.0 } :: !eigs
      done;
    !eigs
  end

let spectral_radius ?max_sweeps m =
  List.fold_left (fun acc l -> Float.max acc (modulus l)) 0.0 (eigenvalues ?max_sweeps m)

(* Continuous-time stability: all eigenvalues strictly in the left half
   plane (up to the margin). *)
let hurwitz_stable ?(margin = 0.0) m =
  List.for_all (fun l -> l.re < -.margin) (eigenvalues m)

(* Discrete-time (Schur) stability: spectral radius below one. *)
let schur_stable ?(margin = 0.0) m = spectral_radius m < 1.0 -. margin
