(** Eigenvalues of small dense real matrices (Hessenberg reduction +
    shifted QR with Givens rotations), for closed-loop stability
    analysis. *)

type complex = { re : float; im : float }

val modulus : complex -> float

(** Householder reduction to upper Hessenberg form. *)
val hessenberg : Mat.t -> Mat.t

(** All eigenvalues (complex-conjugate pairs from trailing 2×2 blocks). *)
val eigenvalues : ?max_sweeps:int -> Mat.t -> complex list

(** max |λ|. *)
val spectral_radius : ?max_sweeps:int -> Mat.t -> float

(** Continuous-time stability: every Re λ < −margin (default 0). *)
val hurwitz_stable : ?margin:float -> Mat.t -> bool

(** Discrete-time stability: spectral radius < 1 − margin (default 0). *)
val schur_stable : ?margin:float -> Mat.t -> bool
