(* Dense float vectors. The whole reproduction works on very small state
   dimensions (2-3) and modest NN parameter counts (hundreds), so plain
   float arrays are the right representation. *)

type t = float array

let create n x = Array.make n x

let zeros n = Array.make n 0.0

let init = Array.init

let of_array = Array.copy

let copy = Array.copy

let dim = Array.length

let get (v : t) i = v.(i)

let set (v : t) i x = v.(i) <- x

let map = Array.map

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.map2: dimension mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b

let sub a b = map2 ( -. ) a b

let mul a b = map2 ( *. ) a b

let scale s = Array.map (fun x -> s *. x)

let axpy ~alpha x y = map2 (fun xi yi -> (alpha *. xi) +. yi) x y

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

let dist2 a b = norm2 (sub a b)

let sum = Array.fold_left ( +. ) 0.0

let concat = Array.append

let slice v ~pos ~len = Array.sub v pos len

let blit ~src ~dst ~pos = Array.blit src 0 dst pos (Array.length src)

let equal ?(eps = 1e-12) a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if Float.abs (x -. b.(i)) > eps then ok := false) a;
      !ok)

let pp ppf v =
  Fmt.pf ppf "[@[%a@]]" Fmt.(array ~sep:(any ";@ ") (fmt "%.6g")) v
