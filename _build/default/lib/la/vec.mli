(** Dense float vectors (thin layer over [float array]). *)

type t = float array

(** [create n x] is the n-vector filled with [x]. *)
val create : int -> float -> t

(** All-zero vector. *)
val zeros : int -> t

(** [init n f] is [| f 0; ...; f (n-1) |]. *)
val init : int -> (int -> float) -> t

(** Defensive copy of an array. *)
val of_array : float array -> t

val copy : t -> t
val dim : t -> int
val get : t -> int -> float
val set : t -> int -> float -> unit
val map : (float -> float) -> t -> t

(** Pointwise combination; raises on dimension mismatch. *)
val map2 : (float -> float -> float) -> t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t

(** Pointwise (Hadamard) product. *)
val mul : t -> t -> t

val scale : float -> t -> t

(** [axpy ~alpha x y = alpha*x + y]. *)
val axpy : alpha:float -> t -> t -> t

val dot : t -> t -> float

(** Euclidean norm. *)
val norm2 : t -> float

(** Max-abs norm. *)
val norm_inf : t -> float

(** Euclidean distance. *)
val dist2 : t -> t -> float

val sum : t -> float
val concat : t -> t -> t
val slice : t -> pos:int -> len:int -> t

(** Copy [src] into [dst] starting at [pos]. *)
val blit : src:t -> dst:t -> pos:int -> unit

(** Componentwise comparison with absolute tolerance (default 1e-12). *)
val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
