lib/la/eig.mli: Mat
