lib/la/mat.ml: Array Float Fmt List Vec
