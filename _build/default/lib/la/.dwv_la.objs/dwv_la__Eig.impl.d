lib/la/eig.ml: Array Float List Mat
