lib/la/control.ml: Array Eig Float List Mat
