lib/la/mat.mli: Format
