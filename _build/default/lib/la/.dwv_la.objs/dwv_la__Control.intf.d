lib/la/control.mli: Mat
