(* Dense row-major matrices with the factorisations the reproduction needs:
   LU solve (for matrix inverse inside the ZOH discretisation), the matrix
   exponential (scaling and squaring with a Taylor kernel), and power
   iteration for spectral norms (NN Lipschitz bounds). *)

type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.0

let identity n =
  let m = zeros n n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.0
  done;
  m

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let of_rows rows_list =
  match rows_list with
  | [] -> invalid_arg "Mat.of_rows: empty"
  | r0 :: _ ->
    let cols = Array.length r0 in
    let rows = List.length rows_list in
    if List.exists (fun r -> Array.length r <> cols) rows_list then
      invalid_arg "Mat.of_rows: ragged rows";
    init rows cols (fun i j -> (List.nth rows_list i).(j))

let dims m = (m.rows, m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.set: out of bounds";
  m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let transpose m = init m.cols m.rows (fun i j -> m.data.((j * m.cols) + i))

let map f m = { m with data = Array.map f m.data }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.sub: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale s m = map (fun x -> s *. x) m

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: dimension mismatch";
  let c = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * b.cols) + j) <-
            c.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let matvec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.matvec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let vecmat v m =
  if m.rows <> Array.length v then invalid_arg "Mat.vecmat: dimension mismatch";
  Array.init m.cols (fun j ->
      let acc = ref 0.0 in
      for i = 0 to m.rows - 1 do
        acc := !acc +. (v.(i) *. m.data.((i * m.cols) + j))
      done;
      !acc)

let outer u v =
  init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let norm_fro m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let norm_inf m =
  let worst = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. Float.abs m.data.((i * m.cols) + j)
    done;
    if !acc > !worst then worst := !acc
  done;
  !worst

(* LU decomposition with partial pivoting; returns (lu, perm, sign) packed
   in a single matrix. Raises [Failure] on (numerically) singular input. *)
let lu_decompose m =
  if m.rows <> m.cols then invalid_arg "Mat.lu_decompose: square matrix required";
  let n = m.rows in
  let lu = copy m in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* pivot selection *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.data.((i * n) + k) > Float.abs lu.data.((!pivot * n) + k) then pivot := i
    done;
    if Float.abs lu.data.((!pivot * n) + k) < 1e-300 then failwith "Mat.lu_decompose: singular matrix";
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = lu.data.((k * n) + j) in
        lu.data.((k * n) + j) <- lu.data.((!pivot * n) + j);
        lu.data.((!pivot * n) + j) <- tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tmp
    end;
    for i = k + 1 to n - 1 do
      let factor = lu.data.((i * n) + k) /. lu.data.((k * n) + k) in
      lu.data.((i * n) + k) <- factor;
      for j = k + 1 to n - 1 do
        lu.data.((i * n) + j) <- lu.data.((i * n) + j) -. (factor *. lu.data.((k * n) + j))
      done
    done
  done;
  (lu, perm)

let lu_solve (lu, perm) b =
  let n = lu.rows in
  if Array.length b <> n then invalid_arg "Mat.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution, unit lower triangle *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (lu.data.((i * n) + j) *. x.(j))
    done
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.data.((i * n) + j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.data.((i * n) + i)
  done;
  x

let solve a b = lu_solve (lu_decompose a) b

let inverse a =
  let n = a.rows in
  let lu = lu_decompose a in
  let inv = zeros n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let x = lu_solve lu e in
    for i = 0 to n - 1 do
      inv.data.((i * n) + j) <- x.(i)
    done
  done;
  inv

(* Matrix exponential by scaling-and-squaring over a degree-16 Taylor
   kernel. For the tiny matrices here this is accurate to ~1 ulp after
   scaling ||A|| below 0.5. *)
let expm a =
  if a.rows <> a.cols then invalid_arg "Mat.expm: square matrix required";
  let n = a.rows in
  let norm = norm_inf a in
  let squarings = max 0 (int_of_float (ceil (log (Float.max norm 1e-16) /. log 2.0)) + 1) in
  let scaled = scale (1.0 /. Float.of_int (1 lsl squarings)) a in
  let acc = ref (identity n) in
  let term = ref (identity n) in
  for k = 1 to 16 do
    term := scale (1.0 /. float_of_int k) (matmul !term scaled);
    acc := add !acc !term
  done;
  let result = ref !acc in
  for _ = 1 to squarings do
    result := matmul !result !result
  done;
  !result

(* integral_expm a t = ∫_0^t e^{As} ds, computed as the top-right block of
   exp([[A, I]; [0, 0]] t); exact for singular A as well, which matters for
   the ZOH discretisation B_d = (∫_0^δ e^{As} ds) B. *)
let integral_expm a t =
  if a.rows <> a.cols then invalid_arg "Mat.integral_expm: square matrix required";
  let n = a.rows in
  let aug = zeros (2 * n) (2 * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      aug.data.((i * 2 * n) + j) <- t *. a.data.((i * n) + j)
    done;
    aug.data.((i * 2 * n) + n + i) <- t
  done;
  let e = expm aug in
  init n n (fun i j -> e.data.((i * 2 * n) + n + j))

(* Largest singular value via power iteration on A^T A. *)
let spectral_norm ?(iters = 100) m =
  if m.rows = 0 || m.cols = 0 then 0.0
  else begin
    let v = ref (Array.make m.cols (1.0 /. sqrt (float_of_int m.cols))) in
    let sigma = ref 0.0 in
    for _ = 1 to iters do
      let av = matvec m !v in
      let atav = vecmat av m in
      let norm = Vec.norm2 atav in
      if norm > 1e-300 then v := Vec.scale (1.0 /. norm) atav;
      sigma := Vec.norm2 (matvec m !v)
    done;
    !sigma
  end

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && (let ok = ref true in
      Array.iteri (fun k x -> if Float.abs (x -. b.data.(k)) > eps then ok := false) a.data;
      !ok)

let pp ppf m =
  Fmt.pf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Fmt.pf ppf "%a@," Vec.pp (row m i)
  done;
  Fmt.pf ppf "@]"
