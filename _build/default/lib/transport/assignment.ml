(* Exact optimal transport between equal-size uniform point clouds via the
   Hungarian (Kuhn-Munkres) algorithm with dual potentials, O(n^3).

   For uniform weights on n points each, the Monge-Kantorovich problem is
   an assignment problem, so this gives the EXACT W_2^2 (up to 1/n
   scaling) - the oracle against which the entropic Sinkhorn solver and
   the closed-form box distances are validated in the tests. *)

(* Minimum-cost perfect matching on an n x n cost matrix. Returns
   (assignment, total cost) where assignment.(row) = column.
   Implementation: the standard potentials + augmenting-path formulation
   (Jonker-Volgenant style shortest augmenting paths). *)
let solve_matrix cost =
  let n = Array.length cost in
  if n = 0 then invalid_arg "Assignment.solve_matrix: empty matrix";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Assignment.solve_matrix: not square")
    cost;
  (* potentials for rows (u) and columns (v); p.(j) = row matched to column j.
     1-based sentinel scheme: index 0 is the virtual root. *)
  let u = Array.make (n + 1) 0.0 in
  let v = Array.make (n + 1) 0.0 in
  let p = Array.make (n + 1) 0 in
  let way = Array.make (n + 1) 0 in
  for i = 1 to n do
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (n + 1) infinity in
    let used = Array.make (n + 1) false in
    let continue_ = ref true in
    while !continue_ do
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref infinity in
      let j1 = ref 0 in
      for j = 1 to n do
        if not used.(j) then begin
          let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to n do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) +. !delta;
          v.(j) <- v.(j) -. !delta
        end
        else minv.(j) <- minv.(j) -. !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue_ := false
    done;
    (* augment along the path *)
    let j = ref !j0 in
    while !j <> 0 do
      let j1 = way.(!j) in
      p.(!j) <- p.(j1);
      j := j1
    done
  done;
  let assignment = Array.make n 0 in
  let total = ref 0.0 in
  for j = 1 to n do
    if p.(j) > 0 then begin
      assignment.(p.(j) - 1) <- j - 1;
      total := !total +. cost.(p.(j) - 1).(j - 1)
    end
  done;
  (assignment, !total)

let sq_dist a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Dwv_util.Floatx.sq (a.(i) -. b.(i))
  done;
  !acc

(* Exact W_2^2 between uniform measures on two equal-size point sets. *)
let w2_sq_points xs ys =
  let n = Array.length xs in
  if n = 0 || Array.length ys <> n then
    invalid_arg "Assignment.w2_sq_points: need equal non-zero point counts";
  let cost = Array.init n (fun i -> Array.init n (fun j -> sq_dist xs.(i) ys.(j))) in
  let _, total = solve_matrix cost in
  total /. float_of_int n

let w2_points xs ys = sqrt (w2_sq_points xs ys)
