(** Exact one-dimensional optimal transport (quantile coupling). *)

(** W₂² between uniform measures on two intervals:
    (Δmid)² + (Δrad)²/3. *)
val w2_sq_uniform : Dwv_interval.Interval.t -> Dwv_interval.Interval.t -> float

val w2_uniform : Dwv_interval.Interval.t -> Dwv_interval.Interval.t -> float

(** W₁ between uniform measures on two intervals. *)
val w1_uniform : Dwv_interval.Interval.t -> Dwv_interval.Interval.t -> float

(** Squared W₂ from uniform-on-[a] to the nearest uniform measure
    supported inside the target interval; zero iff a ⊆ target. *)
val w2_sq_to_subinterval : Dwv_interval.Interval.t -> Dwv_interval.Interval.t -> float

(** W₂² between equal-size empirical samples (order-statistics matching).
    Raises on empty or mismatched sample counts. *)
val w2_sq_empirical : float array -> float array -> float

val w2_empirical : float array -> float array -> float
