(** Exact W₂ between uniform measures on boxes (per-axis decomposition of
    the monotone coupling); the closed form behind the paper's Wasserstein
    metric on reachable sets. *)

(** Squared W₂; raises on dimension mismatch. *)
val w2_sq : Dwv_interval.Box.t -> Dwv_interval.Box.t -> float

val w2 : Dwv_interval.Box.t -> Dwv_interval.Box.t -> float

(** Squared Wasserstein containment gap: W₂ from uniform-on-[a] to the
    nearest uniform measure supported inside the target; zero iff a is
    contained in the target. *)
val w2_sq_containment : Dwv_interval.Box.t -> Dwv_interval.Box.t -> float

val w2_containment : Dwv_interval.Box.t -> Dwv_interval.Box.t -> float

(** W₂ between the final flowpipe segment (the paper's r_θ) and a target. *)
val w2_last_segment : Dwv_interval.Box.t list -> Dwv_interval.Box.t -> float

(** W₂ between the hull of the flowpipe and a target. *)
val w2_hull : Dwv_interval.Box.t list -> Dwv_interval.Box.t -> float
