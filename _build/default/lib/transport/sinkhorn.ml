(* Entropic optimal transport (Sinkhorn-Knopp, Cuturi 2013) between
   weighted point clouds.

   The closed-form Box_w2 covers the paper's experiments (box-shaped sets);
   Sinkhorn generalises the Wasserstein metric to non-box reachable-set
   representations (zonotope sample clouds), and doubles as an independent
   oracle for testing the closed form. *)

type cloud = { points : float array array; weights : float array }

let uniform_cloud points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Sinkhorn.uniform_cloud: empty cloud";
  { points; weights = Array.make n (1.0 /. float_of_int n) }

(* Deterministic grid sample of a box as a uniform cloud. *)
let cloud_of_box ~per_dim box =
  if per_dim < 1 then invalid_arg "Sinkhorn.cloud_of_box: per_dim >= 1";
  let parts = Array.make (Dwv_interval.Box.dim box) per_dim in
  let cells = Dwv_interval.Box.partition parts box in
  uniform_cloud (Array.of_list (List.map Dwv_interval.Box.center cells))

let sq_cost a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Dwv_util.Floatx.sq (a.(i) -. b.(i))
  done;
  !acc

type result = { cost : float; iterations : int; converged : bool }

(* Squared-Euclidean-cost entropic OT. [epsilon] is the entropic
   regularisation; smaller is closer to true W2^2 but slower to converge.
   Uses the standard scaling iteration with a convergence test on the
   marginal violation. *)
let solve ?(epsilon = 0.01) ?(max_iters = 2000) ?(tol = 1e-9) a b =
  let n = Array.length a.points and m = Array.length b.points in
  if n = 0 || m = 0 then invalid_arg "Sinkhorn.solve: empty cloud";
  (* kernel K_ij = exp(-C_ij / epsilon), with the cost median-rescaled for
     numeric range *)
  let cost = Array.init n (fun i -> Array.init m (fun j -> sq_cost a.points.(i) b.points.(j))) in
  let kern = Array.map (Array.map (fun c -> exp (-.c /. epsilon))) cost in
  let u = Array.make n 1.0 and v = Array.make m 1.0 in
  let iterations = ref 0 and converged = ref false in
  while (not !converged) && !iterations < max_iters do
    incr iterations;
    (* u <- p ./ (K v) *)
    for i = 0 to n - 1 do
      let kv = ref 0.0 in
      for j = 0 to m - 1 do
        kv := !kv +. (kern.(i).(j) *. v.(j))
      done;
      u.(i) <- a.weights.(i) /. Float.max !kv 1e-300
    done;
    (* v <- q ./ (K^T u) *)
    for j = 0 to m - 1 do
      let ku = ref 0.0 in
      for i = 0 to n - 1 do
        ku := !ku +. (kern.(i).(j) *. u.(i))
      done;
      v.(j) <- b.weights.(j) /. Float.max !ku 1e-300
    done;
    (* marginal violation on the row sums *)
    let err = ref 0.0 in
    for i = 0 to n - 1 do
      let row = ref 0.0 in
      for j = 0 to m - 1 do
        row := !row +. (u.(i) *. kern.(i).(j) *. v.(j))
      done;
      err := !err +. Float.abs (!row -. a.weights.(i))
    done;
    if !err < tol then converged := true
  done;
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      total := !total +. (u.(i) *. kern.(i).(j) *. v.(j) *. cost.(i).(j))
    done
  done;
  { cost = !total; iterations = !iterations; converged = !converged }

(* Convenience: entropic-regularised W2 (sqrt of transport cost). *)
let w2 ?epsilon ?max_iters ?tol a b =
  sqrt (Float.max 0.0 (solve ?epsilon ?max_iters ?tol a b).cost)
