(** Exact optimal transport between equal-size uniform point clouds
    (Hungarian algorithm, O(n³)): the oracle validating Sinkhorn and the
    closed-form box distances. *)

(** Minimum-cost perfect matching on a square cost matrix:
    (assignment row → column, total cost). Raises on empty or non-square
    input. *)
val solve_matrix : float array array -> int array * float

(** Exact W₂² between uniform measures on two equal-size point sets. *)
val w2_sq_points : float array array -> float array array -> float

val w2_points : float array array -> float array array -> float
