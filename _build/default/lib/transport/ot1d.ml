(* Exact one-dimensional optimal transport.

   In 1-D the optimal coupling is the monotone (quantile) coupling, so
   Wasserstein distances have closed or near-closed forms. Two cases are
   needed by the reproduction:
     - uniform measures on intervals (closed form), the building block of
       the per-axis decomposition in Box_w2;
     - empirical measures (sorted-sample matching), used to cross-check
       the Sinkhorn solver in tests. *)

module I = Dwv_interval.Interval

(* W_2^2 between uniform distributions on two intervals:
   with quantile functions F^-1(q) = m_x + r_x (2q-1),
   W_2^2 = (m_x - m_y)^2 + (r_x - r_y)^2 / 3. *)
let w2_sq_uniform a b =
  let dm = I.mid a -. I.mid b and dr = I.rad a -. I.rad b in
  (dm *. dm) +. (dr *. dr /. 3.0)

let w2_uniform a b = sqrt (w2_sq_uniform a b)

(* W_1 between uniforms: integral of |quantile difference|.
   |dm + dr (2q-1)| integrated over q in [0,1]. *)
let w1_uniform a b =
  let dm = I.mid a -. I.mid b and dr = I.rad a -. I.rad b in
  if Float.abs dr < 1e-300 then Float.abs dm
  else begin
    (* integrand |dm + dr s| over s in [-1,1], ds = 2 dq *)
    let f s = Float.abs (dm +. (dr *. s)) in
    let root = -.dm /. dr in
    if root <= -1.0 || root >= 1.0 then (f (-1.0) +. f 1.0) /. 2.0
    else begin
      (* piecewise linear with a kink at [root] *)
      let area lo hi =
        (* integral of |dm + dr s| ds on [lo,hi] where sign constant *)
        let v_lo = f lo and v_hi = f hi in
        (v_lo +. v_hi) /. 2.0 *. (hi -. lo)
      in
      (area (-1.0) root +. area root 1.0) /. 2.0
    end
  end

(* Squared W_2 from the uniform measure on [a] to the NEAREST uniform
   measure supported inside [target]: the radius is shrunk to fit and the
   center clamped into the feasible band. Zero exactly when a is contained
   in target, which makes it a faithful goal-containment gap (the plain
   W2 to uniform-on-target is bounded away from zero whenever the widths
   differ). *)
let w2_sq_to_subinterval a target =
  let fit_rad = Float.min (I.rad a) (I.rad target) in
  let lo_c = I.lo target +. fit_rad and hi_c = I.hi target -. fit_rad in
  let c = Dwv_util.Floatx.clamp ~lo:lo_c ~hi:hi_c (I.mid a) in
  let dm = I.mid a -. c and dr = I.rad a -. fit_rad in
  (dm *. dm) +. (dr *. dr /. 3.0)

(* W_2^2 between two empirical measures with equal sample counts: sort both
   and match order statistics. *)
let w2_sq_empirical xs ys =
  let n = Array.length xs in
  if n = 0 || Array.length ys <> n then
    invalid_arg "Ot1d.w2_sq_empirical: need equal non-zero sample counts";
  let xs = Array.copy xs and ys = Array.copy ys in
  Array.sort compare xs;
  Array.sort compare ys;
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Dwv_util.Floatx.sq (xs.(i) -. ys.(i))
  done;
  !acc /. float_of_int n

let w2_empirical xs ys = sqrt (w2_sq_empirical xs ys)
