(** Entropic optimal transport (Sinkhorn–Knopp) between weighted point
    clouds; generalises the Wasserstein metric beyond boxes and serves as
    an independent oracle for {!Box_w2} in tests. *)

type cloud = { points : float array array; weights : float array }

(** Equal weights over the given points; raises on an empty cloud. *)
val uniform_cloud : float array array -> cloud

(** Deterministic grid discretisation of a box ([per_dim]ⁿ cell centers). *)
val cloud_of_box : per_dim:int -> Dwv_interval.Box.t -> cloud

type result = { cost : float; iterations : int; converged : bool }

(** Entropic OT with squared Euclidean cost. [epsilon] is the entropic
    regularisation (default 0.01). *)
val solve : ?epsilon:float -> ?max_iters:int -> ?tol:float -> cloud -> cloud -> result

(** √(transport cost): entropic-regularised W₂. *)
val w2 : ?epsilon:float -> ?max_iters:int -> ?tol:float -> cloud -> cloud -> float
