(* Wasserstein-2 distance between uniform distributions on axis-aligned
   boxes.

   Both measures are products of per-axis uniforms, and for the squared
   Euclidean ground cost the optimal coupling of product measures with the
   monotone per-axis map decomposes: W2^2 factorises into the sum of the
   per-axis 1-D costs. This yields the exact closed form the Wasserstein
   metric of Section 3.2 needs: the paper views the final flowpipe segment
   X_r^T, the goal X_g and the unsafe set X_u all as uniform distributions
   on boxes. *)

module Box = Dwv_interval.Box

let w2_sq a b =
  if Box.dim a <> Box.dim b then invalid_arg "Box_w2.w2_sq: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to Box.dim a - 1 do
    acc := !acc +. Ot1d.w2_sq_uniform (Box.get a i) (Box.get b i)
  done;
  !acc

let w2 a b = sqrt (w2_sq a b)

(* Wasserstein containment gap: W2 from uniform-on-a to the nearest
   uniform measure supported inside the target box (per-axis
   decomposition again). Zero exactly when a is contained in the target -
   the right goal-reaching gap for reach-avoid learning. *)
let w2_sq_containment a target =
  if Box.dim a <> Box.dim target then invalid_arg "Box_w2.w2_sq_containment: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to Box.dim a - 1 do
    acc := !acc +. Ot1d.w2_sq_to_subinterval (Box.get a i) (Box.get target i)
  done;
  !acc

let w2_containment a target = sqrt (w2_sq_containment a target)

(* Wasserstein distance between a flowpipe tail and a target box. The
   paper uses only the LAST segment of the reachable set as the
   distribution r_theta; we expose both that and a hull variant. *)
let w2_last_segment segments target =
  match List.rev segments with
  | [] -> invalid_arg "Box_w2.w2_last_segment: empty flowpipe"
  | last :: _ -> w2 last target

let w2_hull segments target =
  w2 (Dwv_interval.Box.hull_list segments) target
