lib/transport/assignment.ml: Array Dwv_util
