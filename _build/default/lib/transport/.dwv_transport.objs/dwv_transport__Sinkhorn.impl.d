lib/transport/sinkhorn.ml: Array Dwv_interval Dwv_util Float List
