lib/transport/assignment.mli:
