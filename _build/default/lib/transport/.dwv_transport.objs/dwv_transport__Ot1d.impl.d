lib/transport/ot1d.ml: Array Dwv_interval Dwv_util Float
