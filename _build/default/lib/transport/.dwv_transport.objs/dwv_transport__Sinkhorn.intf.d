lib/transport/sinkhorn.mli: Dwv_interval
