lib/transport/box_w2.ml: Dwv_interval List Ot1d
