lib/transport/ot1d.mli: Dwv_interval
