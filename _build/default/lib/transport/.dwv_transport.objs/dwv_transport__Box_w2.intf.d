lib/transport/box_w2.mli: Dwv_interval
