lib/systems/acc.mli: Dwv_core Dwv_expr Dwv_interval Dwv_ode Dwv_reach
