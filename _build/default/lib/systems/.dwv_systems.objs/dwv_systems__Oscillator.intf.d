lib/systems/oscillator.mli: Dwv_core Dwv_expr Dwv_interval Dwv_nn Dwv_ode Dwv_reach Dwv_util
