lib/systems/acc.ml: Array Dwv_core Dwv_expr Dwv_interval Dwv_la Dwv_ode Dwv_reach
