(* Fully-connected multi-layer perceptrons with explicit parameter
   flattening.

   The flatten/unflatten pair is load-bearing for the paper's method: the
   verification-in-the-loop learner (Algorithm 1) treats the whole
   controller as a parameter vector theta, perturbs it (theta +- p) and
   updates it with approximate gradients, so controllers must round-trip
   through float arrays exactly. *)

module Mat = Dwv_la.Mat

type layer = { weights : Mat.t; bias : float array; act : Activation.t }

type t = { layers : layer array; n_in : int; n_out : int }

let layer_sizes t =
  Array.to_list (Array.map (fun l -> fst (Mat.dims l.weights)) t.layers)

let n_in t = t.n_in
let n_out t = t.n_out

let create ~sizes ~acts rng =
  let n_layers = List.length sizes - 1 in
  if n_layers < 1 then invalid_arg "Mlp.create: need at least one layer";
  if List.length acts <> n_layers then invalid_arg "Mlp.create: one activation per layer";
  let sizes = Array.of_list sizes and acts = Array.of_list acts in
  let layers =
    Array.init n_layers (fun l ->
        let fan_in = sizes.(l) and fan_out = sizes.(l + 1) in
        (* He initialisation for ReLU, Xavier otherwise *)
        let scale =
          match acts.(l) with
          | Activation.Relu -> sqrt (2.0 /. float_of_int fan_in)
          | _ -> sqrt (1.0 /. float_of_int fan_in)
        in
        let weights =
          Mat.init fan_out fan_in (fun _ _ -> scale *. Dwv_util.Rng.gaussian rng)
        in
        let bias = Array.make fan_out 0.0 in
        { weights; bias; act = acts.(l) })
  in
  { layers; n_in = sizes.(0); n_out = sizes.(n_layers) }

let layers t = t.layers

(* Plain forward pass. *)
let forward t x =
  Array.fold_left
    (fun h layer ->
      let pre = Array.mapi (fun i wi -> wi +. layer.bias.(i)) (Mat.matvec layer.weights h) in
      Activation.apply_vec layer.act pre)
    x t.layers

type cache = { inputs : float array array; preacts : float array array }

(* Forward pass retaining per-layer inputs and pre-activations for
   backprop. *)
let forward_cached t x =
  let n = Array.length t.layers in
  let inputs = Array.make n [||] and preacts = Array.make n [||] in
  let h = ref x in
  for l = 0 to n - 1 do
    let layer = t.layers.(l) in
    inputs.(l) <- !h;
    let pre = Array.mapi (fun i wi -> wi +. layer.bias.(i)) (Mat.matvec layer.weights !h) in
    preacts.(l) <- pre;
    h := Activation.apply_vec layer.act pre
  done;
  (!h, { inputs; preacts })

type grads = { d_weights : Mat.t array; d_bias : float array array }

(* Backpropagate d(loss)/d(output) through the cached pass; returns
   parameter gradients and d(loss)/d(input). *)
let backward t cache d_out =
  let n = Array.length t.layers in
  let d_weights = Array.make n (Mat.zeros 0 0) in
  let d_bias = Array.make n [||] in
  let delta = ref d_out in
  for l = n - 1 downto 0 do
    let layer = t.layers.(l) in
    (* gradient wrt pre-activation *)
    let d_pre =
      Array.mapi (fun i d -> d *. Activation.derivative layer.act cache.preacts.(l).(i)) !delta
    in
    d_bias.(l) <- d_pre;
    d_weights.(l) <- Mat.outer d_pre cache.inputs.(l);
    delta := Mat.vecmat d_pre layer.weights
  done;
  ({ d_weights; d_bias }, !delta)

let num_params t =
  Array.fold_left
    (fun acc l ->
      let r, c = Mat.dims l.weights in
      acc + (r * c) + r)
    0 t.layers

(* Deterministic layout: for each layer, weights row-major then bias. *)
let flatten t =
  let out = Array.make (num_params t) 0.0 in
  let pos = ref 0 in
  Array.iter
    (fun l ->
      let r, c = Mat.dims l.weights in
      for i = 0 to r - 1 do
        for j = 0 to c - 1 do
          out.(!pos) <- Mat.get l.weights i j;
          incr pos
        done
      done;
      for i = 0 to r - 1 do
        out.(!pos) <- l.bias.(i);
        incr pos
      done)
    t.layers;
  out

let unflatten t theta =
  if Array.length theta <> num_params t then invalid_arg "Mlp.unflatten: wrong length";
  let pos = ref 0 in
  let layers =
    Array.map
      (fun l ->
        let r, c = Mat.dims l.weights in
        let weights =
          Mat.init r c (fun _ _ ->
              let v = theta.(!pos) in
              incr pos;
              v)
        in
        let bias =
          Array.init r (fun _ ->
              let v = theta.(!pos) in
              incr pos;
              v)
        in
        { l with weights; bias })
      t.layers
  in
  { t with layers }

let flatten_grads t g =
  let out = Array.make (num_params t) 0.0 in
  let pos = ref 0 in
  Array.iteri
    (fun l _ ->
      let r, c = Mat.dims g.d_weights.(l) in
      for i = 0 to r - 1 do
        for j = 0 to c - 1 do
          out.(!pos) <- Mat.get g.d_weights.(l) i j;
          incr pos
        done
      done;
      for i = 0 to r - 1 do
        out.(!pos) <- g.d_bias.(l).(i);
        incr pos
      done)
    t.layers;
  out

let copy t =
  { t with
    layers =
      Array.map (fun l -> { l with weights = Mat.copy l.weights; bias = Array.copy l.bias })
        t.layers }

(* theta' = theta + alpha * g, as networks. *)
let add_scaled t ~alpha g =
  let theta = flatten t in
  let gv = flatten_grads t g in
  unflatten t (Array.mapi (fun i x -> x +. (alpha *. gv.(i))) theta)

(* Soft update for target networks: target <- tau * src + (1 - tau) * target. *)
let soft_update ~tau ~src target =
  let ts = flatten src and tt = flatten target in
  unflatten target (Array.mapi (fun i x -> (tau *. ts.(i)) +. ((1.0 -. tau) *. x)) tt)

let pp ppf t =
  Fmt.pf ppf "mlp(%d" t.n_in;
  Array.iter
    (fun l ->
      let r, _ = Mat.dims l.weights in
      Fmt.pf ppf " -%a-> %d" Activation.pp l.act r)
    t.layers;
  Fmt.pf ppf ")"
