(* Adam optimizer (Kingma & Ba) over flat parameter vectors. Both RL
   baselines use it; the verification-in-the-loop learner itself uses plain
   step-size updates as in Algorithm 1, so Adam lives here with the NN
   substrate. *)

type t = {
  mutable m : float array;   (* first-moment estimate *)
  mutable v : float array;   (* second-moment estimate *)
  mutable step_count : int;
  lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
}

let create ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) dim =
  { m = Array.make dim 0.0; v = Array.make dim 0.0; step_count = 0; lr; beta1; beta2; eps }

(* One descent step: returns params - lr * mhat / (sqrt vhat + eps).
   Pass the gradient of the quantity to MINIMIZE. *)
let step t ~params ~grad =
  let dim = Array.length t.m in
  if Array.length params <> dim || Array.length grad <> dim then
    invalid_arg "Adam.step: dimension mismatch";
  t.step_count <- t.step_count + 1;
  let k = float_of_int t.step_count in
  let bc1 = 1.0 -. (t.beta1 ** k) and bc2 = 1.0 -. (t.beta2 ** k) in
  Array.init dim (fun i ->
      t.m.(i) <- (t.beta1 *. t.m.(i)) +. ((1.0 -. t.beta1) *. grad.(i));
      t.v.(i) <- (t.beta2 *. t.v.(i)) +. ((1.0 -. t.beta2) *. grad.(i) *. grad.(i));
      let mhat = t.m.(i) /. bc1 and vhat = t.v.(i) /. bc2 in
      params.(i) -. (t.lr *. mhat /. (sqrt vhat +. t.eps)))
