(** Adam optimizer over flat parameter vectors. *)

type t

(** Fresh state for a parameter vector of the given dimension. *)
val create : ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> int -> t

(** One minimisation step; returns the updated parameters. Raises on a
    dimension mismatch with the state. *)
val step : t -> params:float array -> grad:float array -> float array
