(* Plain-text serialization of networks, so learned controllers can be
   saved by the CLI and reloaded for verification or deployment. The
   format is line-oriented and versioned:

     mlp 1
     layers <count>
     layer <rows> <cols> <activation>
     <row 0 of weights, space separated>
     ...
     <bias, space separated>
     (next layer...)

   Floats are printed with %.17g so round-trips are exact. *)

module Mat = Dwv_la.Mat

let float_to_string v = Printf.sprintf "%.17g" v

let floats_to_line a = String.concat " " (Array.to_list (Array.map float_to_string a))

let line_to_floats line =
  line
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match float_of_string_opt s with
         | Some v -> v
         | None -> failwith ("Serialize: invalid float " ^ s))
  |> Array.of_list

let mlp_to_string (net : Mlp.t) =
  let buf = Buffer.create 1024 in
  let layers = Mlp.layers net in
  Buffer.add_string buf "mlp 1\n";
  Buffer.add_string buf (Printf.sprintf "layers %d\n" (Array.length layers));
  Array.iter
    (fun (l : Mlp.layer) ->
      let rows, cols = Mat.dims l.weights in
      Buffer.add_string buf
        (Printf.sprintf "layer %d %d %s\n" rows cols (Activation.to_string l.act));
      for i = 0 to rows - 1 do
        Buffer.add_string buf (floats_to_line (Mat.row l.weights i));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (floats_to_line l.bias);
      Buffer.add_char buf '\n')
    layers;
  Buffer.contents buf

let mlp_of_string text =
  let lines = ref (String.split_on_char '\n' text) in
  let next () =
    match !lines with
    | [] -> failwith "Serialize: unexpected end of input"
    | l :: rest ->
      lines := rest;
      String.trim l
  in
  let rec next_nonempty () =
    let l = next () in
    if l = "" then next_nonempty () else l
  in
  (match next_nonempty () with
  | "mlp 1" -> ()
  | other -> failwith ("Serialize: unsupported header " ^ other));
  let n_layers =
    match String.split_on_char ' ' (next_nonempty ()) with
    | [ "layers"; n ] -> int_of_string n
    | _ -> failwith "Serialize: expected 'layers <count>'"
  in
  if n_layers < 1 then failwith "Serialize: need at least one layer";
  let sizes = ref [] and acts = ref [] and params = ref [] in
  for _ = 1 to n_layers do
    match String.split_on_char ' ' (next_nonempty ()) with
    | [ "layer"; rows; cols; act ] ->
      let rows = int_of_string rows and cols = int_of_string cols in
      if !sizes = [] then sizes := [ cols ];
      sizes := rows :: !sizes;
      acts := Activation.of_string act :: !acts;
      let weights =
        Array.init rows (fun _ ->
            let row = line_to_floats (next_nonempty ()) in
            if Array.length row <> cols then failwith "Serialize: bad weight row length";
            row)
      in
      let bias = line_to_floats (next_nonempty ()) in
      if Array.length bias <> rows then failwith "Serialize: bad bias length";
      params := (weights, bias) :: !params
    | _ -> failwith "Serialize: expected 'layer <rows> <cols> <act>'"
  done;
  let sizes = List.rev !sizes and acts = List.rev !acts in
  (* build an arbitrary net of the right shape, then overwrite params *)
  let skeleton = Mlp.create ~sizes ~acts (Dwv_util.Rng.create 0) in
  let theta =
    List.rev !params
    |> List.concat_map (fun (weights, bias) ->
           Array.to_list (Array.concat (Array.to_list weights)) @ Array.to_list bias)
    |> Array.of_list
  in
  Mlp.unflatten skeleton theta

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_mlp path net = write_file path (mlp_to_string net)

let load_mlp path = mlp_of_string (read_file path)
