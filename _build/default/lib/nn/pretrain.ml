(* Supervised warm start for neural controllers: behavior-clone an
   analytic prior control law on states sampled from a training region.

   Verification-in-the-loop learning needs the verifier to produce a
   finite flowpipe before its metrics carry any signal; a freshly random
   network usually drives the plant into reachable-set blow-up (the Fig. 8
   divergence). Cloning a crude stabilizing prior puts the initial design
   inside the analyzable region; all formal guarantees still come
   exclusively from the verification loop that follows. *)

module Box = Dwv_interval.Box
module Rng = Dwv_util.Rng

type config = {
  epochs : int;
  batch_size : int;
  lr : float;
  samples : int;   (* size of the sampled training set *)
}

let default_config = { epochs = 600; batch_size = 32; lr = 1e-2; samples = 512 }

(* Mean squared error of scale*net(x) against the prior on the sampled
   set; useful as a stopping diagnostic and in tests. *)
let mse ~net ~output_scale ~target inputs =
  let total = ref 0.0 in
  Array.iter
    (fun x ->
      let out = Mlp.forward net x in
      let want = target x in
      Array.iteri
        (fun k o ->
          let d = (output_scale *. o) -. want.(k) in
          total := !total +. (d *. d))
        out)
    inputs;
  !total /. float_of_int (Array.length inputs)

(* Clone [target] (a full-magnitude control law) into [net] whose output
   is scaled by [output_scale]. Returns the trained network. *)
let behavior_clone ?(config = default_config) ~rng ~region ~target ~output_scale net =
  let inputs = Array.init config.samples (fun _ -> Box.sample rng region) in
  let net = ref (Mlp.copy net) in
  let opt = Adam.create ~lr:config.lr (Mlp.num_params !net) in
  for _ = 1 to config.epochs do
    let grad = Array.make (Mlp.num_params !net) 0.0 in
    for _ = 1 to config.batch_size do
      let x = inputs.(Rng.int rng config.samples) in
      let out, cache = Mlp.forward_cached !net x in
      let want = target x in
      let d_out =
        Array.mapi
          (fun k o ->
            2.0 *. output_scale
            *. ((output_scale *. o) -. want.(k))
            /. float_of_int config.batch_size)
          out
      in
      let g, _ = Mlp.backward !net cache d_out in
      let flat = Mlp.flatten_grads !net g in
      Array.iteri (fun i v -> grad.(i) <- grad.(i) +. v) flat
    done;
    net := Mlp.unflatten !net (Adam.step opt ~params:(Mlp.flatten !net) ~grad)
  done;
  !net
