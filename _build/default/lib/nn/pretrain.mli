(** Behavior-cloning warm start for neural controllers: regress
    output_scale·net(x) onto an analytic prior over a sampled region, so
    the verification loop starts from an analyzable design. *)

type config = { epochs : int; batch_size : int; lr : float; samples : int }

val default_config : config

(** Mean squared error of the scaled network against the prior. *)
val mse :
  net:Mlp.t ->
  output_scale:float ->
  target:(float array -> float array) ->
  float array array ->
  float

(** Train a copy of [net] to imitate [target] on uniform samples of
    [region]. *)
val behavior_clone :
  ?config:config ->
  rng:Dwv_util.Rng.t ->
  region:Dwv_interval.Box.t ->
  target:(float array -> float array) ->
  output_scale:float ->
  Mlp.t ->
  Mlp.t
