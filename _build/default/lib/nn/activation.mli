(** Activations for neural controllers (the paper's nets use ReLU hidden
    layers and a Tanh output layer). *)

type t = Relu | Tanh | Sigmoid | Linear

val apply : t -> float -> float

(** Derivative at a pre-activation value. *)
val derivative : t -> float -> float

(** Global Lipschitz constant of the activation. *)
val lipschitz : t -> float

val apply_vec : t -> float array -> float array
val to_string : t -> string

(** Raises [Invalid_argument] on an unknown name. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
