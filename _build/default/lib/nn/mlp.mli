(** Fully-connected MLPs with exact parameter flattening (the learner of
    Algorithm 1 manipulates controllers as flat θ vectors). *)

type layer = {
  weights : Dwv_la.Mat.t;
  bias : float array;
  act : Activation.t;
}

type t

(** [create ~sizes ~acts rng]: [sizes] is [n_in; h1; ...; n_out], [acts]
    one activation per layer (so [List.length acts = List.length sizes - 1]).
    He init for ReLU layers, Xavier otherwise, zero biases. *)
val create : sizes:int list -> acts:Activation.t list -> Dwv_util.Rng.t -> t

(** Output width of each layer. *)
val layer_sizes : t -> int list

val n_in : t -> int
val n_out : t -> int
val layers : t -> layer array
val forward : t -> float array -> float array

type cache

(** Forward pass retaining activations for {!backward}. *)
val forward_cached : t -> float array -> float array * cache

type grads = { d_weights : Dwv_la.Mat.t array; d_bias : float array array }

(** [backward t cache d_out] = (parameter gradients, d loss/d input). *)
val backward : t -> cache -> float array -> grads * float array

val num_params : t -> int

(** Deterministic layout: per layer, weights row-major then bias. *)
val flatten : t -> float array

(** Inverse of {!flatten}; raises on wrong length. *)
val unflatten : t -> float array -> t

(** Gradients in the same layout as {!flatten}. *)
val flatten_grads : t -> grads -> float array

val copy : t -> t

(** θ' = θ + α·g. *)
val add_scaled : t -> alpha:float -> grads -> t

(** Polyak averaging: target ← τ·src + (1−τ)·target. *)
val soft_update : tau:float -> src:t -> t -> t

val pp : Format.formatter -> t -> unit
