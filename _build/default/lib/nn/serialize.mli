(** Versioned plain-text (de)serialization of MLPs; float round-trips are
    exact. All readers raise [Failure] on malformed input. *)

val mlp_to_string : Mlp.t -> string
val mlp_of_string : string -> Mlp.t
val save_mlp : string -> Mlp.t -> unit
val load_mlp : string -> Mlp.t
