lib/nn/lipschitz.ml: Activation Array Dwv_interval Dwv_la Dwv_util Float Ibp Mlp
