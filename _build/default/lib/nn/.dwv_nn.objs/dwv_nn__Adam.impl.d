lib/nn/adam.ml: Array
