lib/nn/mlp.mli: Activation Dwv_la Dwv_util Format
