lib/nn/serialize.mli: Mlp
