lib/nn/mlp.ml: Activation Array Dwv_la Dwv_util Fmt List
