lib/nn/pretrain.mli: Dwv_interval Dwv_util Mlp
