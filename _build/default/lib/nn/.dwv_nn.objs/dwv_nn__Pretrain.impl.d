lib/nn/pretrain.ml: Adam Array Dwv_interval Dwv_util Mlp
