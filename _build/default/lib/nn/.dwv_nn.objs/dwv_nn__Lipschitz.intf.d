lib/nn/lipschitz.mli: Activation Dwv_interval Dwv_util Mlp
