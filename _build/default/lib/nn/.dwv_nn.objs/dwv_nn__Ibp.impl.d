lib/nn/ibp.ml: Activation Array Dwv_interval Dwv_la Mlp
