lib/nn/serialize.ml: Activation Array Buffer Dwv_la Dwv_util Fun List Mlp Printf String
