lib/nn/activation.ml: Array Dwv_util Float Fmt
