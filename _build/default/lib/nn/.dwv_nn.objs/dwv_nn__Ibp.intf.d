lib/nn/ibp.mli: Activation Dwv_interval Dwv_la Mlp
