lib/nn/activation.mli: Format
