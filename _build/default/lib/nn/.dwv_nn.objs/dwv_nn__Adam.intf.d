lib/nn/adam.mli:
