(* Interval bound propagation (IBP) through an MLP: sound per-layer box
   enclosures of the network output. Coarse compared with the Taylor-model
   abstractions (no cross-input correlation survives an affine layer), but
   cheap; used by the interval-only fallback verifier and by the local
   Lipschitz bound. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Mat = Dwv_la.Mat

let apply_activation (act : Activation.t) iv =
  match act with
  | Activation.Relu -> I.relu iv
  | Activation.Tanh -> I.tanh_ iv
  | Activation.Sigmoid -> I.sigmoid_ iv
  | Activation.Linear -> iv

let affine (weights : Mat.t) (bias : float array) (h : I.t array) =
  let rows, cols = Mat.dims weights in
  if cols <> Array.length h then invalid_arg "Ibp.affine: arity mismatch";
  Array.init rows (fun i ->
      let acc = ref (I.of_point bias.(i)) in
      for j = 0 to cols - 1 do
        acc := I.add !acc (I.scale (Mat.get weights i j) h.(j))
      done;
      !acc)

(* Pre-activation ranges of every layer. *)
let preactivations (net : Mlp.t) (box : Box.t) =
  let h = ref (Array.copy box) in
  Array.map
    (fun (l : Mlp.layer) ->
      let pre = affine l.Mlp.weights l.Mlp.bias !h in
      h := Array.map (apply_activation l.Mlp.act) pre;
      pre)
    (Mlp.layers net)

(* Sound box enclosure of net(box). *)
let forward (net : Mlp.t) (box : Box.t) : Box.t =
  let pres = preactivations net box in
  let last = Array.length pres - 1 in
  let out_act = (Mlp.layers net).(last).Mlp.act in
  Array.map (apply_activation out_act) pres.(last)
