(** Lipschitz bounds for MLPs (ingredient of the Bernstein remainder). *)

(** Sound global 2-norm bound: Πₗ L_act(l)·‖Wₗ‖₂. *)
val bound : Mlp.t -> float

(** Looser Frobenius-norm variant (‖W‖₂ ≤ ‖W‖_F). *)
val bound_frobenius : Mlp.t -> float

(** Pre-activation interval ranges of every layer over a box. *)
val preactivation_ranges :
  Mlp.t -> Dwv_interval.Box.t -> Dwv_interval.Interval.t array array

(** Sound local Lipschitz bound over a box (interval Jacobian product);
    much tighter than {!bound} when activations saturate or ReLUs are
    locally sign-definite. *)
val local_bound : Mlp.t -> Dwv_interval.Box.t -> float

(** Global bound on |act''|; [None] for non-smooth activations (ReLU). *)
val second_derivative_sup : Activation.t -> float option

(** Per-input bound on sup |∂²f_k/∂x_i²| (max over outputs) for
    single-hidden-layer smooth networks; [None] otherwise. *)
val hessian_diag_bound : Mlp.t -> float array option

(** Empirical sampled estimate over a box (diagnostic only, not sound). *)
val estimate :
  ?samples:int -> rng:Dwv_util.Rng.t -> box:Dwv_interval.Box.t -> Mlp.t -> float
