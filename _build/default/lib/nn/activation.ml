(* Activation functions of the neural controllers. The paper's controllers
   use ReLU hidden layers and a Tanh output layer; the framework "can
   address all types of activation functions and their mixture", so we also
   carry sigmoid and identity. *)

type t = Relu | Tanh | Sigmoid | Linear

let apply t x =
  match t with
  | Relu -> Float.max x 0.0
  | Tanh -> tanh x
  | Sigmoid -> Dwv_util.Floatx.sigmoid x
  | Linear -> x

(* Derivative as a function of the pre-activation. *)
let derivative t x =
  match t with
  | Relu -> if x > 0.0 then 1.0 else 0.0
  | Tanh ->
    let y = tanh x in
    1.0 -. (y *. y)
  | Sigmoid ->
    let s = Dwv_util.Floatx.sigmoid x in
    s *. (1.0 -. s)
  | Linear -> 1.0

(* Global Lipschitz constant (all four are 1-Lipschitz; sigmoid is
   1/4-Lipschitz). Used in NN Lipschitz bounds for the Bernstein
   remainder. *)
let lipschitz = function
  | Relu | Tanh | Linear -> 1.0
  | Sigmoid -> 0.25

let apply_vec t v = Array.map (apply t) v

let to_string = function
  | Relu -> "relu"
  | Tanh -> "tanh"
  | Sigmoid -> "sigmoid"
  | Linear -> "linear"

let of_string = function
  | "relu" -> Relu
  | "tanh" -> Tanh
  | "sigmoid" -> Sigmoid
  | "linear" -> Linear
  | s -> invalid_arg ("Activation.of_string: unknown activation " ^ s)

let pp ppf t = Fmt.string ppf (to_string t)
