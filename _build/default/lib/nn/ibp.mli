(** Interval bound propagation through an MLP: sound (coarse) box
    enclosures of the output. *)

val apply_activation :
  Activation.t -> Dwv_interval.Interval.t -> Dwv_interval.Interval.t

(** Sound affine layer on intervals. *)
val affine :
  Dwv_la.Mat.t ->
  float array ->
  Dwv_interval.Interval.t array ->
  Dwv_interval.Interval.t array

(** Pre-activation ranges of every layer over a box. *)
val preactivations :
  Mlp.t -> Dwv_interval.Box.t -> Dwv_interval.Interval.t array array

(** Sound box enclosure of net(box). *)
val forward : Mlp.t -> Dwv_interval.Box.t -> Dwv_interval.Box.t
