lib/poly/bernstein.mli: Dwv_interval Poly
