lib/poly/bernstein.ml: Array Dwv_interval Dwv_util Float Poly
