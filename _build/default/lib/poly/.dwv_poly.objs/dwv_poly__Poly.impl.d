lib/poly/poly.ml: Array Dwv_interval Float Fmt Int List Map
