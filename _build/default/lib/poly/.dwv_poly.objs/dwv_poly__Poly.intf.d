lib/poly/poly.mli: Dwv_interval Format
