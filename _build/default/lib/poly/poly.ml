(* Sparse multivariate polynomials: the polynomial part of Taylor models
   and the target representation for Bernstein approximations of neural
   network controllers.

   Representation: a monomial's exponent vector is packed into a single
   OCaml int, 4 bits per variable (so nvars <= 15 and every exponent
   <= 15 — far above the Taylor-model orders used anywhere in the
   reproduction). Packing makes monomial multiplication a plain integer
   addition and keeps the coefficient map cheap, which is what makes long
   closed-loop flowpipes affordable; with array-keyed maps the oscillator
   verification is ~20x slower. *)

module M = Map.Make (Int)

type t = { nvars : int; terms : float M.t }

let max_vars = 15
let max_exponent = 15
let bits_per_var = 4

(* 0x111...1: one low bit per nibble, [nvars] nibbles. *)
let parity_mask nvars =
  let m = ref 0 in
  for _ = 1 to nvars do
    m := (!m lsl bits_per_var) lor 1
  done;
  !m

let check_nvars nvars =
  if nvars < 1 || nvars > max_vars then
    invalid_arg "Poly: nvars must be between 1 and 15"

let encode expts =
  let key = ref 0 in
  for i = Array.length expts - 1 downto 0 do
    let e = expts.(i) in
    if e < 0 || e > max_exponent then invalid_arg "Poly: exponent out of range [0, 15]";
    key := (!key lsl bits_per_var) lor e
  done;
  !key

let decode nvars key =
  Array.init nvars (fun i -> (key lsr (i * bits_per_var)) land max_exponent)

let exponent_of key i = (key lsr (i * bits_per_var)) land max_exponent

let key_degree nvars key =
  let d = ref 0 in
  for i = 0 to nvars - 1 do
    d := !d + exponent_of key i
  done;
  !d

let zero nvars =
  check_nvars nvars;
  { nvars; terms = M.empty }

let const nvars c =
  check_nvars nvars;
  if c = 0.0 then { nvars; terms = M.empty } else { nvars; terms = M.singleton 0 c }

let var nvars i =
  check_nvars nvars;
  if i < 0 || i >= nvars then invalid_arg "Poly.var: index out of range";
  { nvars; terms = M.singleton (1 lsl (i * bits_per_var)) 1.0 }

let nvars p = p.nvars

let is_zero p = M.is_empty p.terms

let num_terms p = M.cardinal p.terms

let degree p = M.fold (fun k _ acc -> max acc (key_degree p.nvars k)) p.terms 0

let constant_term p = match M.find_opt 0 p.terms with Some c -> c | None -> 0.0

let add_key p key c =
  let prev = match M.find_opt key p.terms with Some x -> x | None -> 0.0 in
  let s = prev +. c in
  { p with terms = (if s = 0.0 then M.remove key p.terms else M.add key s p.terms) }

let add_term p expts c =
  if Array.length expts <> p.nvars then invalid_arg "Poly.add_term: arity mismatch";
  add_key p (encode expts) c

let of_terms nvars l = List.fold_left (fun p (e, c) -> add_term p e c) (zero nvars) l

let to_terms p = M.fold (fun k c acc -> (decode p.nvars k, c) :: acc) p.terms []

let map_coeffs f p =
  { p with
    terms =
      M.fold
        (fun k c acc ->
          let c' = f c in
          if c' = 0.0 then acc else M.add k c' acc)
        p.terms M.empty }

let neg p = map_coeffs (fun c -> -.c) p

let scale s p = if s = 0.0 then zero p.nvars else map_coeffs (fun c -> s *. c) p

let add a b =
  if a.nvars <> b.nvars then invalid_arg "Poly.add: arity mismatch";
  let terms =
    M.union (fun _ x y -> let s = x +. y in if s = 0.0 then None else Some s) a.terms b.terms
  in
  { a with terms }

let sub a b = add a (neg b)

(* Monomial product = key addition (no nibble carries as long as the
   combined per-variable exponents stay <= 15, guaranteed for the orders
   used by Taylor models). *)
let mul a b =
  if a.nvars <> b.nvars then invalid_arg "Poly.mul: arity mismatch";
  let acc = ref M.empty in
  M.iter
    (fun ka ca ->
      M.iter
        (fun kb cb ->
          let k = ka + kb in
          let c = ca *. cb in
          acc :=
            M.update k
              (function
                | None -> Some c
                | Some prev -> let s = prev +. c in if s = 0.0 then None else Some s)
              !acc)
        b.terms)
    a.terms;
  { a with terms = !acc }

let rec pow p n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent"
  else if n = 0 then const p.nvars 1.0
  else if n = 1 then p
  else begin
    let half = pow p (n / 2) in
    let sq = mul half half in
    if n mod 2 = 0 then sq else mul p sq
  end

(* Split into (terms of degree <= order, terms of degree > order); the
   second component is what a Taylor model moves into its remainder. *)
let truncate ~order p =
  let keep, drop = M.partition (fun k _ -> key_degree p.nvars k <= order) p.terms in
  ({ p with terms = keep }, { p with terms = drop })

(* Split into (terms not involving variable i, terms involving it); used
   to retire a disturbance symbol by bounding its contribution. *)
let split_var p i =
  if i < 0 || i >= p.nvars then invalid_arg "Poly.split_var: index out of range";
  let keep, drop = M.partition (fun k _ -> exponent_of k i = 0) p.terms in
  ({ p with terms = keep }, { p with terms = drop })

let eval p x =
  if Array.length x <> p.nvars then invalid_arg "Poly.eval: arity mismatch";
  M.fold
    (fun k c acc ->
      let term = ref c in
      for i = 0 to p.nvars - 1 do
        for _ = 1 to exponent_of k i do
          term := !term *. x.(i)
        done
      done;
      acc +. !term)
    p.terms 0.0

(* Generic evaluation in any commutative algebra; used to substitute Taylor
   models (or intervals) for the variables. [var_pow i k] must be the k-th
   power of variable i with k >= 1. *)
let eval_gen p ~const ~var_pow ~add ~mul =
  M.fold
    (fun key c acc ->
      let term = ref (const c) in
      for i = 0 to p.nvars - 1 do
        let k = exponent_of key i in
        if k > 0 then term := mul !term (var_pow i k)
      done;
      add acc !term)
    p.terms (const 0.0)

module I = Dwv_interval.Interval

(* Sound range enclosure of p over the box (interval evaluation of each
   monomial; tight powers via Interval.pow_int). *)
let ieval p (box : Dwv_interval.Box.t) =
  if Dwv_interval.Box.dim box <> p.nvars then invalid_arg "Poly.ieval: arity mismatch";
  M.fold
    (fun key c acc ->
      let term = ref (I.of_point c) in
      for i = 0 to p.nvars - 1 do
        let k = exponent_of key i in
        if k > 0 then term := I.mul !term (I.pow_int box.(i) k)
      done;
      I.add acc !term)
    p.terms I.zero

(* Enclosure over the canonical Taylor-model domain [-1,1]^n, on the fast
   path: a monomial with all exponents even ranges over [0, c] (or [c, 0]),
   any other monomial over [-|c|, |c|]. Pure float arithmetic. *)
let bound_unit p =
  let mask = parity_mask p.nvars in
  let lo = ref 0.0 and hi = ref 0.0 in
  M.iter
    (fun key c ->
      if key = 0 then begin
        (* constant monomial: exact *)
        lo := !lo +. c;
        hi := !hi +. c
      end
      else if key land mask = 0 then begin
        (* all exponents even (some positive): monomial value in [0, 1] *)
        if c >= 0.0 then hi := !hi +. c else lo := !lo +. c
      end
      else begin
        let a = Float.abs c in
        lo := !lo -. a;
        hi := !hi +. a
      end)
    p.terms;
  I.make !lo !hi

(* Partial derivative. *)
let diff p i =
  if i < 0 || i >= p.nvars then invalid_arg "Poly.diff: index out of range";
  M.fold
    (fun key c acc ->
      let e = exponent_of key i in
      if e = 0 then acc
      else add_key acc (key - (1 lsl (i * bits_per_var))) (c *. float_of_int e))
    p.terms (zero p.nvars)

let equal ?(eps = 0.0) a b =
  a.nvars = b.nvars
  &&
  let d = sub a b in
  M.for_all (fun _ c -> Float.abs c <= eps) d.terms

let pp ppf p =
  if is_zero p then Fmt.string ppf "0"
  else begin
    let first = ref true in
    M.iter
      (fun key c ->
        if !first then first := false else Fmt.string ppf " + ";
        Fmt.pf ppf "%.6g" c;
        for i = 0 to p.nvars - 1 do
          let k = exponent_of key i in
          if k > 0 then Fmt.pf ppf "*z%d^%d" i k
        done)
      p.terms
  end
