(** Sampled-data closed loops: plant x' = f(x,u), controller sampled every
    [delta] seconds with zero-order hold (the system model of Section 2). *)

type t = {
  f : Dwv_expr.Expr.t array;
  n : int;
  m : int;
  delta : float;
}

(** Build; raises unless [|f| = n] and [delta > 0]. *)
val make : f:Dwv_expr.Expr.t array -> n:int -> m:int -> delta:float -> t

type trace = {
  states : float array array;  (** state at sample instants, length steps+1 *)
  inputs : float array array;  (** ZOH input per period, length steps *)
  dense : float array array;   (** all RK4 substep states *)
}

(** Closed-loop simulation for [steps] periods ([substeps] RK4 steps per
    period, default 10). *)
val simulate :
  ?substeps:int ->
  t ->
  controller:(float array -> float array) ->
  x0:float array ->
  steps:int ->
  trace

(** One-period transition map under a constant input. *)
val step : ?substeps:int -> t -> u:float array -> float array -> float array

(** Max-abs bound on any component of f over the given boxes (for
    inter-sample flowpipe bloating). *)
val field_bound :
  t ->
  x:Dwv_interval.Interval.t array ->
  u:Dwv_interval.Interval.t array ->
  float
