lib/ode/sampled_system.mli: Dwv_expr Dwv_interval
