lib/ode/rk4.mli: Dwv_expr
