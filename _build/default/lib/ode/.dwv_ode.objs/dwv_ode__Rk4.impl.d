lib/ode/rk4.ml: Array Dwv_expr
