lib/ode/rk45.ml: Array Dwv_expr Dwv_util Float List
