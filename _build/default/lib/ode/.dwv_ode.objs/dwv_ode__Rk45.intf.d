lib/ode/rk45.mli: Dwv_expr
