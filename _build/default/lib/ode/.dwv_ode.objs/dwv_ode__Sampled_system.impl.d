lib/ode/sampled_system.ml: Array Dwv_expr Dwv_interval Float List Rk4
