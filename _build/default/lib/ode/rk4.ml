(* Classical fourth-order Runge-Kutta for the numeric (non-validated)
   simulation side of the reproduction: Monte-Carlo evaluation of learned
   controllers and the environment the RL baselines train in. *)

module Expr = Dwv_expr.Expr

let axpy alpha x y = Array.mapi (fun i xi -> (alpha *. xi) +. y.(i)) x

(* One RK4 step of x' = f(x, u) with u held constant. *)
let step ~f ~u ~h x =
  let eval x = Expr.eval_vec f ~x ~u in
  let k1 = eval x in
  let k2 = eval (axpy (h /. 2.0) k1 x) in
  let k3 = eval (axpy (h /. 2.0) k2 x) in
  let k4 = eval (axpy h k3 x) in
  Array.mapi
    (fun i xi -> xi +. (h /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))
    x

(* Integrate over [0, duration] with [substeps] RK4 steps, returning the
   final state. *)
let integrate ~f ~u ~duration ~substeps x =
  if substeps < 1 then invalid_arg "Rk4.integrate: substeps must be >= 1";
  let h = duration /. float_of_int substeps in
  let x = ref x in
  for _ = 1 to substeps do
    x := step ~f ~u ~h !x
  done;
  !x

(* Same, but also return the intermediate states (for dense safety
   checking of simulated traces). *)
let integrate_dense ~f ~u ~duration ~substeps x =
  if substeps < 1 then invalid_arg "Rk4.integrate_dense: substeps must be >= 1";
  let h = duration /. float_of_int substeps in
  let states = Array.make (substeps + 1) x in
  for i = 1 to substeps do
    states.(i) <- step ~f ~u ~h states.(i - 1)
  done;
  states
