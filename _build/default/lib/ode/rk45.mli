(** Dormand–Prince 5(4) adaptive Runge–Kutta (ode45) for x' = f(x, u)
    with u held constant. *)

type stats = { steps_accepted : int; steps_rejected : int }

(** Integrate over [0, duration] with adaptive steps; raises [Failure]
    when [max_steps] (default 100000) is exhausted before the horizon. *)
val integrate :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  f:Dwv_expr.Expr.t array ->
  u:float array ->
  duration:float ->
  float array ->
  float array * stats
