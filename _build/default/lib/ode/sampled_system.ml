(* Sampled-data closed-loop systems: the plant x' = f(x, u) driven by a
   feedback controller that reads the state every [delta] seconds and holds
   its output constant in between (zero-order hold), exactly the system
   model of Section 2 of the paper. *)

module Expr = Dwv_expr.Expr

type t = {
  f : Expr.t array;     (* dynamics right-hand side *)
  n : int;              (* state dimension *)
  m : int;              (* input dimension *)
  delta : float;        (* sampling period *)
}

let make ~f ~n ~m ~delta =
  if Array.length f <> n then invalid_arg "Sampled_system.make: |f| must equal n";
  if delta <= 0.0 then invalid_arg "Sampled_system.make: delta must be positive";
  { f; n; m; delta }

type trace = {
  states : float array array;   (* state at each sample time, length steps+1 *)
  inputs : float array array;   (* ZOH input applied in each period, length steps *)
  dense : float array array;    (* all substep states, for dense checking *)
}

(* Simulate [steps] sampling periods from [x0] under [controller], with
   [substeps] RK4 steps per period. *)
let simulate ?(substeps = 10) sys ~controller ~x0 ~steps =
  if Array.length x0 <> sys.n then invalid_arg "Sampled_system.simulate: bad initial state";
  let states = Array.make (steps + 1) x0 in
  let inputs = Array.make (max steps 1) (Array.make sys.m 0.0) in
  let dense = ref [] in
  for k = 0 to steps - 1 do
    let u = controller states.(k) in
    if Array.length u <> sys.m then invalid_arg "Sampled_system.simulate: controller arity";
    inputs.(k) <- u;
    let seg = Rk4.integrate_dense ~f:sys.f ~u ~duration:sys.delta ~substeps states.(k) in
    Array.iter (fun s -> dense := s :: !dense) seg;
    states.(k + 1) <- seg.(substeps)
  done;
  { states; inputs; dense = Array.of_list (List.rev !dense) }

(* The discrete one-period transition map x -> x(delta); this is the step
   function the RL baselines treat as their environment dynamics. *)
let step ?(substeps = 10) sys ~u x =
  Rk4.integrate ~f:sys.f ~u ~duration:sys.delta ~substeps x

(* Max-norm bound of f over interval boxes; used to bloat flowpipe
   segments between sampling instants. *)
let field_bound sys ~x ~u =
  let iv = Expr.ieval_vec sys.f ~x ~u in
  Array.fold_left
    (fun acc i ->
      Float.max acc (Float.max (Float.abs (Dwv_interval.Interval.lo i))
                       (Float.abs (Dwv_interval.Interval.hi i))))
    0.0 iv
