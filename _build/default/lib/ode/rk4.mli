(** Classical RK4 integration of x' = f(x, u) with u held constant
    (zero-order hold). Non-validated; used for simulation and RL training,
    never for formal guarantees. *)

(** One RK4 step of size [h]. *)
val step :
  f:Dwv_expr.Expr.t array -> u:float array -> h:float -> float array -> float array

(** Integrate over [0, duration] with [substeps] equal steps. *)
val integrate :
  f:Dwv_expr.Expr.t array ->
  u:float array ->
  duration:float ->
  substeps:int ->
  float array ->
  float array

(** As {!integrate} but returning all substep states (index 0 = initial). *)
val integrate_dense :
  f:Dwv_expr.Expr.t array ->
  u:float array ->
  duration:float ->
  substeps:int ->
  float array ->
  float array array
