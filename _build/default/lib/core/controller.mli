(** Controllers as flat parameter vectors — the common interface that lets
    Algorithm 1 tune linear and neural controllers with the same code. *)

type t =
  | Linear of { gain : Dwv_la.Mat.t }                      (** u = K·x *)
  | Net of { net : Dwv_nn.Mlp.t; output_scale : float }    (** u = s·net(x) *)

val linear : Dwv_la.Mat.t -> t
val net : output_scale:float -> Dwv_nn.Mlp.t -> t
val num_params : t -> int

(** Flat θ (row-major gain / MLP layout). *)
val params : t -> float array

(** Replace the parameters; raises on wrong length. *)
val with_params : t -> float array -> t

(** Concrete control law for simulation. *)
val eval : t -> float array -> float array

val n_outputs : t -> int
val pp : Format.formatter -> t -> unit

(** {1 Persistence} (plain text, exact float round-trips; readers raise
    [Failure] on malformed input) *)

val to_string : t -> string
val of_string : string -> t
val save : string -> t -> unit
val load : string -> t

