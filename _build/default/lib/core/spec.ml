(* Reach-avoid specifications (Definition 1): starting anywhere in the
   initial set, never touch the unsafe set within the horizon and be
   provably inside the goal set at some sample instant. All three sets are
   boxes, exactly as in the paper's experiments. *)

module Box = Dwv_interval.Box

type t = {
  name : string;
  x0 : Box.t;          (* initial set X_0 *)
  unsafe : Box.t;      (* unsafe set X_u *)
  goal : Box.t;        (* goal set X_g *)
  delta : float;       (* sampling period *)
  steps : int;         (* horizon T = steps * delta *)
}

let make ~name ~x0 ~unsafe ~goal ~delta ~steps =
  if delta <= 0.0 then invalid_arg "Spec.make: delta must be positive";
  if steps < 1 then invalid_arg "Spec.make: need at least one step";
  let d = Box.dim x0 in
  if Box.dim unsafe <> d || Box.dim goal <> d then
    invalid_arg "Spec.make: all sets must share the state dimension";
  { name; x0; unsafe; goal; delta; steps }

let horizon t = t.delta *. float_of_int t.steps

let dim t = Box.dim t.x0

(* Pointwise checks used by the Monte-Carlo evaluation. *)
let point_safe t x = not (Box.contains t.unsafe x)

let point_in_goal t x = Box.contains t.goal x

let pp ppf t =
  Fmt.pf ppf "@[<v>%s:@ X0 = %a@ Xu = %a@ Xg = %a@ delta = %g, steps = %d (T = %g)@]"
    t.name Box.pp t.x0 Box.pp t.unsafe Box.pp t.goal t.delta t.steps (horizon t)
