(** The verification feedback metrics of Section 3.2: geometric distances
    (Eq. (2)/(3)) and the Wasserstein distance (Eq. (4)) over the
    verifier's flowpipe, normalized to a pair of larger-is-better scores
    shared by the learner. *)

type kind = Geometric | Wasserstein

(** "G" / "W" (the paper's table labels). *)
val kind_to_string : kind -> string

type scores = {
  safety : float;  (** d_u, or W(r, unsafe) — larger is safer *)
  goal : float;    (** d_g, or −W(r, goal) — larger is closer to the goal *)
}

(** Penalty scores for a diverged verification (slightly graded by how far
    the pipe got before blowing up). *)
val diverged_scores : Dwv_reach.Flowpipe.t -> scores

(** The geometric d_u of Eq. (2) over the segment boxes. *)
val geometric_d_u : unsafe:Dwv_interval.Box.t -> Dwv_reach.Flowpipe.t -> float

(** The geometric d_g of Eq. (3) over the sample-instant boxes. *)
val geometric_d_g : goal:Dwv_interval.Box.t -> Dwv_reach.Flowpipe.t -> float

(** The safety score saturates at [safety_cap] (default: half the
    goal-to-unsafe separation in the metric's own units) so that a design
    already far from X_u takes its gradient from the goal term alone. *)
val geometric :
  ?safety_cap:float ->
  unsafe:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  Dwv_reach.Flowpipe.t ->
  scores

val wasserstein :
  ?safety_cap:float ->
  unsafe:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  Dwv_reach.Flowpipe.t ->
  scores

val scores :
  ?safety_cap:float ->
  kind ->
  unsafe:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  Dwv_reach.Flowpipe.t ->
  scores

(** safety + goal, oriented so larger is better (learning-curve scalar). *)
val objective : scores -> float

val pp_scores : Format.formatter -> scores -> unit
