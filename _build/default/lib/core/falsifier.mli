(** Falsification: concrete counterexample search by robustness
    minimization (random multistart + coordinate hill climbing over X₀).
    A found counterexample definitively refutes the property — the
    complement of the verifier's sound-but-incomplete positive verdicts. *)

(** Signed distance from a point to a box: negative inside. *)
val signed_distance : Dwv_interval.Box.t -> float array -> float

type property =
  | Safety          (** falsified when some state enters the unsafe box *)
  | Goal_reaching   (** falsified when no state ever enters the goal box *)

(** Trace robustness of one rollout; positive iff the property holds. *)
val robustness :
  sys:Dwv_ode.Sampled_system.t ->
  controller:(float array -> float array) ->
  spec:Spec.t ->
  property:property ->
  float array ->
  float

type counterexample = {
  x0 : float array;
  robustness : float;
  property : property;
}

(** [search ~rng ~sys ~controller ~spec ~property ()] returns a concrete
    falsifying initial state, or [None] if none was found within
    [attempts] (default 50) starts and [refine_iters] (default 8)
    hill-climbing sweeps. *)
val search :
  ?attempts:int ->
  ?refine_iters:int ->
  rng:Dwv_util.Rng.t ->
  sys:Dwv_ode.Sampled_system.t ->
  controller:(float array -> float array) ->
  spec:Spec.t ->
  property:property ->
  unit ->
  counterexample option

val pp_counterexample : Format.formatter -> counterexample -> unit
