lib/core/metrics.mli: Dwv_interval Dwv_reach Format
