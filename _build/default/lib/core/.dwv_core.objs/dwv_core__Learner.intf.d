lib/core/learner.mli: Controller Dwv_reach Metrics Spec
