lib/core/learner.ml: Array Controller Dwv_reach Dwv_util Float List Logs Metrics Spec
