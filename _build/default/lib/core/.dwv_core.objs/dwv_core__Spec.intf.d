lib/core/spec.mli: Dwv_interval Format
