lib/core/falsifier.ml: Array Dwv_interval Dwv_ode Dwv_util Float Fmt Spec
