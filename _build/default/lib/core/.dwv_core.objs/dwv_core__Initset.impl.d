lib/core/initset.ml: Array Dwv_interval Dwv_reach Fmt List
