lib/core/evaluate.mli: Dwv_ode Dwv_util Format Spec
