lib/core/controller.mli: Dwv_la Dwv_nn Format
