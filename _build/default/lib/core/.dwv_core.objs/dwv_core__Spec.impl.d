lib/core/spec.ml: Dwv_interval Fmt
