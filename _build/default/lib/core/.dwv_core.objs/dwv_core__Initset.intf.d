lib/core/initset.mli: Dwv_interval Dwv_reach Format
