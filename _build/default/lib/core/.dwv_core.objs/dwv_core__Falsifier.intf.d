lib/core/falsifier.mli: Dwv_interval Dwv_ode Dwv_util Format Spec
