lib/core/metrics.ml: Dwv_geometry Dwv_interval Dwv_reach Dwv_transport Float Fmt List
