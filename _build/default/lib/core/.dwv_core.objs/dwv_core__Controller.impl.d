lib/core/controller.ml: Array Buffer Dwv_la Dwv_nn Fmt Fun List Printf String
