lib/core/evaluate.ml: Array Dwv_interval Dwv_ode Dwv_util Fmt Spec
