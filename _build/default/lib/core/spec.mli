(** Reach-avoid specifications (Definition 1 of the paper): box-shaped
    initial, unsafe and goal sets over a sampled horizon. *)

type t = {
  name : string;
  x0 : Dwv_interval.Box.t;
  unsafe : Dwv_interval.Box.t;
  goal : Dwv_interval.Box.t;
  delta : float;
  steps : int;
}

(** Build with validation (positive delta, at least one step, matching
    dimensions). *)
val make :
  name:string ->
  x0:Dwv_interval.Box.t ->
  unsafe:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  delta:float ->
  steps:int ->
  t

(** Time horizon T = steps · delta. *)
val horizon : t -> float

(** State dimension of the specification sets. *)
val dim : t -> int

(** Is this concrete state outside the unsafe box? *)
val point_safe : t -> float array -> bool

(** Is this concrete state inside the goal box? *)
val point_in_goal : t -> float array -> bool

val pp : Format.formatter -> t -> unit
