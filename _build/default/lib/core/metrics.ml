(* The verification feedback metrics of Section 3.2.

   Geometric metric (Eq. (2)/(3)):
     d_u = -|X_r ∩ X_u|          if the flowpipe touches the unsafe set
         = inf ||x_r - x_u||^2   otherwise
     d_g = |X_r ∩ X_g|           if the flowpipe touches the goal
         = -inf ||x_r - x_g||^2  otherwise
   The flowpipe union |X_r ∩ X_u| is implemented as the sum of per-segment
   intersection volumes (smooth, conservative; see DESIGN.md). Safety uses
   the continuous-time segment boxes, goal-reaching the sample-instant
   boxes (matching the containment test of Algorithm 2).

   Wasserstein metric (Eq. (4)): the last reachable segment X_r^{Tl}, the
   goal and the unsafe set are viewed as uniform distributions on boxes;
   W2 then has the exact per-axis closed form of Box_w2. The paper
   minimizes W(r,g) - W(r,u).

   Both metrics are normalized here into a pair of scores where LARGER is
   better, so the learner can share one update rule:
     geometric:    safety = d_u,       goal = d_g
     wasserstein:  safety = W(r, u),   goal = -W(r, g). *)

module Box = Dwv_interval.Box
module Setops = Dwv_geometry.Setops
module Flowpipe = Dwv_reach.Flowpipe
module Box_w2 = Dwv_transport.Box_w2

type kind = Geometric | Wasserstein

let kind_to_string = function Geometric -> "G" | Wasserstein -> "W"

type scores = { safety : float; goal : float }

(* Score assigned to a diverged verification: a large penalty graded by
   how far the pipe got and how wide it was when it blew up, so the
   approximate gradient can pull the parameters back toward analyzable
   (contractive) regions even when both probes diverge. *)
let diverged_scores pipe =
  let progress = 10.0 *. float_of_int (Flowpipe.steps pipe) in
  let width_penalty = Float.min (Flowpipe.final_width pipe) 1e3 in
  let score = -1e6 +. progress -. width_penalty in
  { safety = score; goal = score }

let geometric_d_u ~unsafe pipe =
  let segments = Flowpipe.all_boxes pipe in
  if Setops.any_intersects segments unsafe then
    -.(Setops.sum_intersection_volume segments unsafe +. Float.min_float)
  else Setops.min_sq_distance segments unsafe

let geometric_d_g ~goal pipe =
  let steps = Flowpipe.step_boxes pipe in
  if Setops.any_intersects steps goal then Setops.max_intersection_volume steps goal
  else -.(Setops.min_sq_distance steps goal)

(* Once the flowpipe is comfortably clear of the unsafe set, the safety
   score must stop pulling the parameters, otherwise its (normalized)
   gradient cancels the goal gradient and learning stalls — the
   "run-forever-away-from-X_u" degeneracy of the unconstrained
   max d_u + d_g objective. We saturate the safety score at half the
   goal-to-unsafe separation, measured in the metric's own units, which is
   scale-free: any design that safe needs no further repulsion once it
   could sit at the goal. *)
let geometric ?safety_cap ~unsafe ~goal pipe =
  if Flowpipe.diverged pipe then diverged_scores pipe
  else begin
    let cap =
      match safety_cap with
      | Some c -> c
      | None -> Box.sq_distance goal unsafe /. 4.0
    in
    let d_u = geometric_d_u ~unsafe pipe in
    { safety = (if cap > 0.0 then Float.min d_u cap else d_u);
      goal = geometric_d_g ~goal pipe }
  end

(* The paper defines both Wasserstein terms as plain W2 distances to the
   uniform distributions on X_g and X_u, evaluated on the final reachable
   segment r_theta = X_r^{Tl}. Two refinements keep the metric informative
   on the benchmark geometries (both documented in DESIGN.md):

   - every segment is scored, not just the final one (mid-horizon grazing
     of X_u is otherwise invisible);
   - distances are CONTAINMENT GAPS — W2 to the nearest distribution
     supported inside the target set — rather than distances to
     uniform-on-the-whole-set. Plain W2 carries a radius-mismatch floor
     ((dr)^2/3 per axis) that (a) never reaches zero when the reach set is
     smaller than the goal, inflating flowpipes instead of centering them,
     and (b) dominates the signal entirely for large unsafe regions (the
     ACC half-space encoding), hiding actual contact. The gap is zero
     exactly at containment and grows with separation. *)
let wasserstein ?safety_cap ~unsafe ~goal pipe =
  if Flowpipe.diverged pipe then diverged_scores pipe
  else begin
    let cap =
      match safety_cap with
      | Some c -> c
      | None -> Float.max (Box_w2.w2_containment goal unsafe /. 2.0) 1e-6
    in
    let min_unsafe_w2 =
      List.fold_left
        (fun acc seg -> Float.min acc (Box_w2.w2_containment seg unsafe))
        infinity
        (Flowpipe.all_boxes pipe)
    in
    (* goal term: Wasserstein CONTAINMENT gap of the final segment - the
       W2 distance to the nearest goal-supported distribution. The plain
       W(r_theta, g) of the paper never reaches zero when the reach set is
       smaller than the goal box (radius-mismatch term), which inflates
       flowpipes instead of centering them; the containment gap vanishes
       exactly when the goal check of Algorithm 2 passes. *)
    let goal_gap =
      match Flowpipe.step_boxes pipe with
      | [] | [ _ ] -> Box_w2.w2_containment (Flowpipe.final_box pipe) goal
      | _initial :: reachable ->
        List.fold_left
          (fun acc b -> Float.min acc (Box_w2.w2_containment b goal))
          infinity reachable
    in
    { safety = Float.min min_unsafe_w2 cap; goal = -.goal_gap }
  end

let scores ?safety_cap kind ~unsafe ~goal pipe =
  match kind with
  | Geometric -> geometric ?safety_cap ~unsafe ~goal pipe
  | Wasserstein -> wasserstein ?safety_cap ~unsafe ~goal pipe

(* Scalar objective (for logging / learning curves): d_u + d_g for the
   geometric metric, -(W(r,g) - W(r,u)) for the Wasserstein one — both
   oriented so larger is better. *)
let objective s = s.safety +. s.goal

let pp_scores ppf s = Fmt.pf ppf "{safety = %.6g; goal = %.6g}" s.safety s.goal
