lib/taylor/tm_vec.ml: Array Dwv_interval Fmt Taylor_model
