lib/taylor/taylor_model.mli: Dwv_expr Dwv_interval Dwv_poly Format
