lib/taylor/tm_vec.mli: Dwv_expr Dwv_interval Format Taylor_model
