lib/taylor/taylor_model.ml: Array Dwv_expr Dwv_interval Dwv_poly Dwv_util Float Fmt Hashtbl List
