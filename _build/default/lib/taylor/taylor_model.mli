(** Taylor models: polynomial over z in [-1,1]ⁿ plus rigorous interval
    remainder (Berz–Makino). Invariant: for every z in the domain the
    abstracted function satisfies f(z) ∈ poly(z) + rem.

    Used both to push reachable sets through the nonlinear dynamics and —
    POLAR-style — through neural-network layers. *)

type t

(** Build from parts; monomials above [order] are soundly folded into the
    remainder. Raises if [order < 1]. *)
val make : poly:Dwv_poly.Poly.t -> rem:Dwv_interval.Interval.t -> order:int -> t

val nvars : t -> int
val poly : t -> Dwv_poly.Poly.t
val remainder : t -> Dwv_interval.Interval.t
val order : t -> int

(** Constant model. *)
val const : nvars:int -> order:int -> float -> t

(** The symbolic variable zᵢ. *)
val var : nvars:int -> order:int -> int -> t

(** Abstract an interval (no symbolic dependency). *)
val of_interval : nvars:int -> order:int -> Dwv_interval.Interval.t -> t

(** Sound range enclosure over the domain. *)
val bound : t -> Dwv_interval.Interval.t

(** Enclosure of the value at a concrete domain point z. *)
val eval : t -> float array -> Dwv_interval.Interval.t

val constant_term : t -> float
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

(** Add a constant. *)
val shift : float -> t -> t

(** Enlarge the remainder by the given interval. *)
val add_remainder : Dwv_interval.Interval.t -> t -> t

(** Soundly prune monomials whose coefficient is below [tol] (relative to
    the largest coefficient, default 1e-10) into the remainder; keeps
    long-running flowpipes sparse. *)
val sweep : ?tol:float -> t -> t

(** Retire symbol [i]: soundly fold every monomial involving it into the
    interval remainder (disturbance-symbol recycling). *)
val absorb_var : int -> t -> t

(** Move the interval remainder onto the fresh symbol [slot] (raises if
    the slot still occurs in the polynomial): POLAR-style symbolic
    remainder, lets a contractive loop cancel past disturbances. *)
val symbolize_remainder : slot:int -> t -> t

(** Sound product with order truncation. *)
val mul : t -> t -> t

(** Integer power. *)
val pow : t -> int -> t

(** {1 Elementary functions} (Taylor expansion + Lagrange remainder) *)

val tanh_ : t -> t
val sigmoid_ : t -> t
val exp_ : t -> t
val sin_ : t -> t
val cos_ : t -> t

(** Reciprocal; raises [Failure] if the range contains zero. *)
val inv : t -> t

val div : t -> t -> t

(** ReLU: exact on sign-definite ranges, chord relaxation otherwise. *)
val relu : t -> t

(** Memo table for {!of_expr} over physically shared expression nodes. *)
type memo

val create_memo : unit -> memo

(** Evaluate a dynamics expression with models substituted for state [x]
    and input [u] variables. Pass one [memo] per evaluation context (same
    x, u) to share work across expressions with common subtrees. *)
val of_expr : ?memo:memo -> x:t array -> u:t array -> Dwv_expr.Expr.t -> t

val pp : Format.formatter -> t -> unit
