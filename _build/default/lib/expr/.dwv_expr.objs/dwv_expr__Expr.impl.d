lib/expr/expr.ml: Array Dwv_interval Fmt
