lib/expr/parser.mli: Expr
