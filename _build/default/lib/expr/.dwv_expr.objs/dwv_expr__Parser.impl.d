lib/expr/parser.ml: Array Expr Float Fmt List String
