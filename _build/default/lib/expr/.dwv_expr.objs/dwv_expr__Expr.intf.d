lib/expr/expr.mli: Dwv_interval Format
