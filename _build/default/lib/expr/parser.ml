(* A small recursive-descent parser for dynamics expressions, so systems
   can be defined in configuration text rather than OCaml:

     expr   := term  (('+' | '-') term)*
     term   := factor (('*' | '/') factor)*
     factor := atom ('^' nat)?
     atom   := number | xN | uN | fn '(' expr ')' | '(' expr ')' | '-' factor
     fn     := sin | cos | exp | tanh

   Example: "(1 - x0^2) * x1 - x0 + u0" is the Van der Pol x2'. *)

type token =
  | Num of float
  | Var of int
  | Input of int
  | Fn of string
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | Lparen
  | Rparen

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  while !pos < n do
    match src.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '+' -> tokens := Plus :: !tokens; incr pos
    | '-' -> tokens := Minus :: !tokens; incr pos
    | '*' -> tokens := Star :: !tokens; incr pos
    | '/' -> tokens := Slash :: !tokens; incr pos
    | '^' -> tokens := Caret :: !tokens; incr pos
    | '(' -> tokens := Lparen :: !tokens; incr pos
    | ')' -> tokens := Rparen :: !tokens; incr pos
    | c when is_digit c || c = '.' ->
      let start = !pos in
      while
        match peek () with
        | Some c -> is_digit c || c = '.' || c = 'e' || c = 'E'
                    || ((c = '+' || c = '-')
                        && !pos > start
                        && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E'))
        | None -> false
      do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      (match float_of_string_opt text with
      | Some v -> tokens := Num v :: !tokens
      | None -> fail "invalid number %S" text)
    | c when is_alpha c ->
      let start = !pos in
      while
        match peek () with Some c -> is_alpha c || is_digit c | None -> false
      do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      let index_of prefix =
        let suffix = String.sub word 1 (String.length word - 1) in
        match int_of_string_opt suffix with
        | Some i when i >= 0 -> i
        | _ -> fail "expected an index after %S in %S" prefix word
      in
      (match word.[0] with
      | 'x' when String.length word > 1 -> tokens := Var (index_of "x") :: !tokens
      | 'u' when String.length word > 1 -> tokens := Input (index_of "u") :: !tokens
      | _ ->
        (match word with
        | "sin" | "cos" | "exp" | "tanh" -> tokens := Fn word :: !tokens
        | "pi" -> tokens := Num Float.pi :: !tokens
        | _ -> fail "unknown identifier %S" word))
    | c -> fail "unexpected character %C" c
  done;
  List.rev !tokens

(* Recursive descent over a mutable token stream. *)
let parse_tokens tokens =
  let stream = ref tokens in
  let peek () = match !stream with [] -> None | t :: _ -> Some t in
  let advance () = match !stream with [] -> fail "unexpected end of input" | _ :: r -> stream := r in
  let expect t name =
    match peek () with
    | Some t' when t' = t -> advance ()
    | _ -> fail "expected %s" name
  in
  let rec expr () =
    let acc = ref (term ()) in
    let rec loop () =
      match peek () with
      | Some Plus ->
        advance ();
        acc := Expr.add !acc (term ());
        loop ()
      | Some Minus ->
        advance ();
        acc := Expr.sub !acc (term ());
        loop ()
      | _ -> ()
    in
    loop ();
    !acc
  and term () =
    let acc = ref (factor ()) in
    let rec loop () =
      match peek () with
      | Some Star ->
        advance ();
        acc := Expr.mul !acc (factor ());
        loop ()
      | Some Slash ->
        advance ();
        acc := Expr.div !acc (factor ());
        loop ()
      | _ -> ()
    in
    loop ();
    !acc
  and factor () =
    let base = atom () in
    match peek () with
    | Some Caret -> (
      advance ();
      match peek () with
      | Some (Num v) when Float.is_integer v && v >= 0.0 ->
        advance ();
        Expr.pow base (int_of_float v)
      | _ -> fail "expected a non-negative integer exponent after '^'")
    | _ -> base
  and atom () =
    match peek () with
    | Some (Num v) ->
      advance ();
      Expr.const v
    | Some (Var i) ->
      advance ();
      Expr.var i
    | Some (Input i) ->
      advance ();
      Expr.input i
    | Some Minus ->
      advance ();
      Expr.neg (factor ())
    | Some Lparen ->
      advance ();
      let e = expr () in
      expect Rparen "')'";
      e
    | Some (Fn name) ->
      advance ();
      expect Lparen "'(' after function name";
      let e = expr () in
      expect Rparen "')'";
      (match name with
      | "sin" -> Expr.sin_ e
      | "cos" -> Expr.cos_ e
      | "exp" -> Expr.exp_ e
      | "tanh" -> Expr.tanh_ e
      | _ -> assert false)
    | Some _ -> fail "unexpected token"
    | None -> fail "unexpected end of input"
  in
  let e = expr () in
  if !stream <> [] then fail "trailing input";
  e

let parse src =
  match parse_tokens (tokenize src) with
  | e -> Ok e
  | exception Parse_error msg -> Error msg

let parse_exn src =
  match parse src with Ok e -> e | Error msg -> invalid_arg ("Parser.parse_exn: " ^ msg)

(* Parse a whole right-hand side, one expression per state component. *)
let parse_system srcs =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | src :: rest -> (
      match parse src with
      | Ok e -> go (e :: acc) rest
      | Error msg -> Error (Fmt.str "component %d: %s" (List.length acc) msg))
  in
  go [] srcs
