(* A minimal SVG scene writer for 2-D reachable-set figures: axis-aligned
   rectangles (flowpipe segments, goal/unsafe regions), polylines
   (trajectories), and an automatic data-to-viewport transform. No
   dependencies; output is a standalone .svg file. *)

type rect = {
  x_lo : float;
  x_hi : float;
  y_lo : float;
  y_hi : float;
  fill : string;
  fill_opacity : float;
  stroke : string;
  label : string option;
}

type polyline = { points : (float * float) list; stroke : string; width : float }

type t = {
  mutable rects : rect list;
  mutable lines : polyline list;
  title : string;
  x_label : string;
  y_label : string;
}

let create ?(x_label = "x0") ?(y_label = "x1") ~title () =
  { rects = []; lines = []; title; x_label; y_label }

let add_rect ?(fill = "#88aadd") ?(fill_opacity = 0.35) ?(stroke = "none") ?label t ~x_lo
    ~x_hi ~y_lo ~y_hi =
  if x_lo > x_hi || y_lo > y_hi then invalid_arg "Svg_plot.add_rect: empty rectangle";
  t.rects <- { x_lo; x_hi; y_lo; y_hi; fill; fill_opacity; stroke; label } :: t.rects

(* Convenience for the common region kinds of reach-avoid figures. *)
let add_box ?label ~kind t ~x_lo ~x_hi ~y_lo ~y_hi =
  let fill, opacity, stroke =
    match kind with
    | `Reach -> ("#4477cc", 0.25, "none")
    | `Goal -> ("#44aa66", 0.30, "#227744")
    | `Unsafe -> ("#cc4444", 0.35, "#882222")
    | `Initial -> ("#999999", 0.45, "#555555")
  in
  add_rect ?label ~fill ~fill_opacity:opacity ~stroke t ~x_lo ~x_hi ~y_lo ~y_hi

let add_polyline ?(stroke = "#222222") ?(width = 1.0) t points =
  if List.length points < 2 then invalid_arg "Svg_plot.add_polyline: need two points";
  t.lines <- { points; stroke; width } :: t.lines

let bounds t =
  let xs = ref [] and ys = ref [] in
  List.iter
    (fun r ->
      xs := r.x_lo :: r.x_hi :: !xs;
      ys := r.y_lo :: r.y_hi :: !ys)
    t.rects;
  List.iter
    (fun l ->
      List.iter
        (fun (x, y) ->
          xs := x :: !xs;
          ys := y :: !ys)
        l.points)
    t.lines;
  match (!xs, !ys) with
  | [], _ | _, [] -> invalid_arg "Svg_plot.render: empty scene"
  | xs, ys ->
    let min_l = List.fold_left Float.min infinity in
    let max_l = List.fold_left Float.max neg_infinity in
    (min_l xs, max_l xs, min_l ys, max_l ys)

let render ?(width = 640) ?(height = 480) t =
  let x_min, x_max, y_min, y_max = bounds t in
  let pad_x = 0.05 *. Float.max (x_max -. x_min) 1e-9 in
  let pad_y = 0.05 *. Float.max (y_max -. y_min) 1e-9 in
  let x_min = x_min -. pad_x and x_max = x_max +. pad_x in
  let y_min = y_min -. pad_y and y_max = y_max +. pad_y in
  let margin = 50.0 in
  let w = float_of_int width and h = float_of_int height in
  let sx x = margin +. ((x -. x_min) /. (x_max -. x_min) *. (w -. (2.0 *. margin))) in
  (* SVG y axis points down *)
  let sy y = h -. margin -. ((y -. y_min) /. (y_max -. y_min) *. (h -. (2.0 *. margin))) in
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\">\n" width height;
  p "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height;
  p "<text x=\"%g\" y=\"24\" font-family=\"sans-serif\" font-size=\"16\">%s</text>\n"
    margin t.title;
  (* axes *)
  p
    "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#333\" stroke-width=\"1\"/>\n"
    margin (h -. margin) (w -. margin) (h -. margin);
  p
    "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#333\" stroke-width=\"1\"/>\n"
    margin margin margin (h -. margin);
  p
    "<text x=\"%g\" y=\"%g\" font-family=\"sans-serif\" font-size=\"12\">%s</text>\n"
    (w /. 2.0) (h -. 12.0) t.x_label;
  p
    "<text x=\"14\" y=\"%g\" font-family=\"sans-serif\" font-size=\"12\" \
     transform=\"rotate(-90 14 %g)\">%s</text>\n"
    (h /. 2.0) (h /. 2.0) t.y_label;
  (* axis extrema labels *)
  p "<text x=\"%g\" y=\"%g\" font-family=\"sans-serif\" font-size=\"10\">%.3g</text>\n"
    margin
    (h -. margin +. 14.0)
    x_min;
  p "<text x=\"%g\" y=\"%g\" font-family=\"sans-serif\" font-size=\"10\">%.3g</text>\n"
    (w -. margin)
    (h -. margin +. 14.0)
    x_max;
  p "<text x=\"%g\" y=\"%g\" font-family=\"sans-serif\" font-size=\"10\">%.3g</text>\n"
    (margin -. 40.0)
    (h -. margin) y_min;
  p "<text x=\"%g\" y=\"%g\" font-family=\"sans-serif\" font-size=\"10\">%.3g</text>\n"
    (margin -. 40.0) margin y_max;
  (* rectangles, oldest first so later additions draw on top *)
  List.iter
    (fun r ->
      p
        "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" fill=\"%s\" \
         fill-opacity=\"%g\" stroke=\"%s\"/>\n"
        (sx r.x_lo) (sy r.y_hi)
        (sx r.x_hi -. sx r.x_lo)
        (sy r.y_lo -. sy r.y_hi)
        r.fill r.fill_opacity r.stroke;
      match r.label with
      | Some text ->
        p
          "<text x=\"%g\" y=\"%g\" font-family=\"sans-serif\" font-size=\"11\" \
           fill=\"#333\">%s</text>\n"
          (sx r.x_lo +. 3.0)
          (sy r.y_hi -. 4.0)
          text
      | None -> ())
    (List.rev t.rects);
  List.iter
    (fun l ->
      let pts =
        String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%g,%g" (sx x) (sy y)) l.points)
      in
      p "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"%g\"/>\n" pts
        l.stroke l.width)
    (List.rev t.lines);
  p "</svg>\n";
  Buffer.contents buf

let save ?width ?height path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?width ?height t))
