(** Descriptive statistics for the experiment harness. *)

(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)
val mean : float array -> float

(** Unbiased sample variance (0 for fewer than two samples). *)
val variance : float array -> float

(** Sample standard deviation. *)
val std : float array -> float

(** Minimum and maximum. Raises [Invalid_argument] on an empty array. *)
val min_max : float array -> float * float

(** Linear-interpolation quantile, [q] in [0,1]. *)
val quantile : float array -> float -> float

(** Median. *)
val median : float array -> float

(** Percentage of [true] entries, in [0,100]. *)
val rate_percent : bool array -> float

type summary = { mean : float; std : float; min : float; max : float; n : int }

(** Mean / std / min / max / count of a sample. *)
val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
