(** Float helpers shared across the numeric substrates. *)

(** Clamp [x] into [lo, hi]. *)
val clamp : lo:float -> hi:float -> float -> float

(** Relative-tolerance comparison (default eps 1e-9). *)
val approx_eq : ?eps:float -> float -> float -> bool

(** True iff neither NaN nor infinite. *)
val is_finite : float -> bool

(** Square. *)
val sq : float -> float

(** Linear interpolation between [a] (t=0) and [b] (t=1). *)
val lerp : float -> float -> float -> float

(** -1., 0. or 1. *)
val sign : float -> float

(** Numerically-stable logistic sigmoid. *)
val sigmoid : float -> float

(** [linspace lo hi n] gives n evenly spaced points including both ends. *)
val linspace : float -> float -> int -> float array

(** Kahan-compensated summation. *)
val kahan_sum : float array -> float
