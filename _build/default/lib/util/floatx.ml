(* Float helpers shared across the numeric substrates. *)

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let approx_eq ?(eps = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let is_finite x = Float.is_finite x

let sq x = x *. x

(* Linear interpolation: [lerp a b 0. = a], [lerp a b 1. = b]. *)
let lerp a b t = a +. ((b -. a) *. t)

let sign x = if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0

(* Numerically-stable logistic sigmoid. *)
let sigmoid x = if x >= 0.0 then 1.0 /. (1.0 +. exp (-.x)) else (let e = exp x in e /. (1.0 +. e))

let linspace lo hi n =
  if n < 2 then invalid_arg "Floatx.linspace: need at least 2 points";
  Array.init n (fun i -> lerp lo hi (float_of_int i /. float_of_int (n - 1)))

(* Sum with Kahan compensation; keeps metric accumulations stable when many
   small flowpipe-segment volumes are added. *)
let kahan_sum a =
  let sum = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !sum +. y in
      comp := t -. !sum -. y;
      sum := t)
    a;
  !sum
