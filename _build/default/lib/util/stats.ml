(* Small descriptive-statistics helpers used by the evaluation harness
   (safe-control / goal-reaching rates, convergence-iteration spreads). *)

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    acc /. float_of_int (n - 1)
  end

let std a = sqrt (variance a)

let min_max a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.min_max: empty array";
  let lo = ref a.(0) and hi = ref a.(0) in
  for i = 1 to n - 1 do
    if a.(i) < !lo then lo := a.(i);
    if a.(i) > !hi then hi := a.(i)
  done;
  (!lo, !hi)

let quantile a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median a = quantile a 0.5

(* Rate of [true] entries, as a percentage in [0, 100]. *)
let rate_percent bits =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Stats.rate_percent: empty array";
  let hits = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
  100.0 *. float_of_int hits /. float_of_int n

type summary = { mean : float; std : float; min : float; max : float; n : int }

let summarize a =
  let lo, hi = min_max a in
  { mean = mean a; std = std a; min = lo; max = hi; n = Array.length a }

let pp_summary ppf s =
  Fmt.pf ppf "%.3g(+-%.2g) [%.3g, %.3g] n=%d" s.mean s.std s.min s.max s.n
