(** Aligned plain-text tables for benchmark output. *)

type t

(** A table with the given column headers. *)
val create : string list -> t

(** Append one row; must have the same arity as the header. *)
val add_row : t -> string list -> unit

(** Render with aligned columns and a rule under the header. *)
val render : t -> string

(** [print t] writes [render t] to stdout. *)
val print : t -> unit
