(* Aligned plain-text tables for the benchmark harness output, so the
   reproduced Table 1 / Table 2 print in the same row/column layout as the
   paper. *)

type t = { header : string list; mutable rows : string list list }

let create header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: row width does not match header";
  t.rows <- t.rows @ [ row ]

let widths t =
  let cols = List.length t.header in
  let w = Array.make cols 0 in
  let scan row = List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row in
  scan t.header;
  List.iter scan t.rows;
  w

let render t =
  let w = widths t in
  let buf = Buffer.create 256 in
  let pad i s = s ^ String.make (w.(i) - String.length s) ' ' in
  let line row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  line t.header;
  let total = Array.fold_left ( + ) 0 w + (2 * (Array.length w - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter line t.rows;
  Buffer.contents buf

let print t = print_string (render t)
