lib/util/svg_plot.ml: Buffer Float Fun List Printf String
