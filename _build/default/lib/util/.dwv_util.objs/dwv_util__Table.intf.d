lib/util/table.mli:
