lib/util/rng.mli:
