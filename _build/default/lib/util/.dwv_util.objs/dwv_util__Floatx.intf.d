lib/util/floatx.mli:
