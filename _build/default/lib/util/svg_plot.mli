(** Minimal SVG scene writer for 2-D reach-avoid figures: rectangles
    (flowpipe segments, goal/unsafe regions), polylines (trajectories),
    automatic data-to-viewport transform. *)

type t

val create : ?x_label:string -> ?y_label:string -> title:string -> unit -> t

(** Raw rectangle; raises on an empty extent. *)
val add_rect :
  ?fill:string ->
  ?fill_opacity:float ->
  ?stroke:string ->
  ?label:string ->
  t ->
  x_lo:float ->
  x_hi:float ->
  y_lo:float ->
  y_hi:float ->
  unit

(** Region in one of the standard reach-avoid colors. *)
val add_box :
  ?label:string ->
  kind:[ `Reach | `Goal | `Unsafe | `Initial ] ->
  t ->
  x_lo:float ->
  x_hi:float ->
  y_lo:float ->
  y_hi:float ->
  unit

(** Polyline; raises with fewer than two points. *)
val add_polyline : ?stroke:string -> ?width:float -> t -> (float * float) list -> unit

(** Render to SVG text (default 640×480); raises on an empty scene. *)
val render : ?width:int -> ?height:int -> t -> string

(** Write the rendered SVG to a file. *)
val save : ?width:int -> ?height:int -> string -> t -> unit
