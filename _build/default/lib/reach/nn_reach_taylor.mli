(** POLAR-style neural-controller abstraction: layer-by-layer Taylor-model
    propagation (affine layers exact; tanh/sigmoid via Taylor expansion
    with Lagrange remainder; ReLU via chord relaxation). *)

(** Sound Taylor model of one activation applied to a model. *)
val apply_activation : Dwv_nn.Activation.t -> Dwv_taylor.Taylor_model.t -> Dwv_taylor.Taylor_model.t

(** Exact affine layer on Taylor models. *)
val affine :
  Dwv_la.Mat.t -> float array -> Dwv_taylor.Taylor_model.t array -> Dwv_taylor.Taylor_model.t array

(** Models of u = output_scale · net(x) over the symbolic state [x]. *)
val control_models :
  net:Dwv_nn.Mlp.t -> output_scale:float -> Dwv_taylor.Tm_vec.t -> Dwv_taylor.Tm_vec.t
