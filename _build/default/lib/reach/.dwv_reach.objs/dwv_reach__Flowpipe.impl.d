lib/reach/flowpipe.ml: Array Dwv_interval Fmt
