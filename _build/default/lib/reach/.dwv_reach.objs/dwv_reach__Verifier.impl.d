lib/reach/verifier.ml: Array Dwv_geometry Dwv_interval Dwv_nn Dwv_taylor Float Flowpipe Fmt List Nn_reach_bernstein Nn_reach_taylor Taylor_reach
