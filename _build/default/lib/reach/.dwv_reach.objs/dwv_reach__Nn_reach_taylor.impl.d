lib/reach/nn_reach_taylor.ml: Array Dwv_la Dwv_nn Dwv_taylor
