lib/reach/taylor_reach.mli: Dwv_expr Dwv_interval Dwv_taylor
