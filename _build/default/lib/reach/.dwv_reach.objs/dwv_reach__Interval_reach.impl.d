lib/reach/interval_reach.ml: Array Dwv_expr Dwv_interval Dwv_nn Float Flowpipe List Taylor_reach
