lib/reach/interval_reach.mli: Dwv_expr Dwv_interval Dwv_nn Flowpipe Taylor_reach
