lib/reach/linear_reach.ml: Array Dwv_geometry Dwv_interval Dwv_la Float Flowpipe List
