lib/reach/nn_reach_bernstein.mli: Dwv_interval Dwv_nn Dwv_poly Dwv_taylor
