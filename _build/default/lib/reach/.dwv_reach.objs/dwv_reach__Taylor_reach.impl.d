lib/reach/taylor_reach.ml: Array Dwv_expr Dwv_interval Dwv_taylor Float
