lib/reach/flowpipe.mli: Dwv_interval Format
