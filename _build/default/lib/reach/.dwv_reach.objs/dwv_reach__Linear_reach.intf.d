lib/reach/linear_reach.mli: Dwv_geometry Dwv_interval Dwv_la Flowpipe
