lib/reach/nn_reach_bernstein.ml: Array Dwv_interval Dwv_nn Dwv_poly Dwv_taylor Float Option
