lib/reach/nn_reach_taylor.mli: Dwv_la Dwv_nn Dwv_taylor
