lib/reach/verifier.mli: Dwv_expr Dwv_interval Dwv_nn Flowpipe Format Nn_reach_bernstein
