(** The verifier interface Ψ: flowpipe computation plus the reach-avoid
    judgement used by the learner's stopping rule. *)

type verdict =
  | Reach_avoid  (** property formally proved on the enclosures *)
  | Unsafe       (** a segment box lies inside the unsafe set: certainly unsafe *)
  | Unknown      (** inconclusive (possible spurious intersection / divergence) *)

val verdict_to_string : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

(** First sample instant (>= 1) whose enclosure is inside the goal. *)
val goal_step : goal:Dwv_interval.Box.t -> Flowpipe.t -> int option

(** No segment touches the unsafe set. *)
val safety_ok : unsafe:Dwv_interval.Box.t -> Flowpipe.t -> bool

(** Some segment lies entirely inside the unsafe set. *)
val certainly_unsafe : unsafe:Dwv_interval.Box.t -> Flowpipe.t -> bool

(** Judge a flowpipe against the reach-avoid specification. *)
val check : unsafe:Dwv_interval.Box.t -> goal:Dwv_interval.Box.t -> Flowpipe.t -> verdict

(** Controller-abstraction method for neural controllers. *)
type nn_method =
  | Polar                                   (** layerwise Taylor models *)
  | Bernstein of Nn_reach_bernstein.config  (** Bernstein + remainder *)

val nn_method_name : nn_method -> string

(** Closed-loop flowpipe of x' = f(x, u), u = output_scale·net(x) sampled
    with ZOH. [order] is the Taylor-model order (default 3); the pipe is
    marked diverged when a box exceeds [blowup_width] (default 1e4).
    [disturbance_slots] (default 8) is the symbolic-remainder budget: each
    period's control abstraction error rides a fresh symbol that the
    contractive loop can cancel, recycled round-robin. *)
val nn_flowpipe :
  ?blowup_width:float ->
  ?order:int ->
  ?disturbance_slots:int ->
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  method_:nn_method ->
  x0:Dwv_interval.Box.t ->
  unit ->
  Flowpipe.t

(** Flowpipe + verdict in one call. *)
val verify_nn :
  ?blowup_width:float ->
  ?order:int ->
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  method_:nn_method ->
  x0:Dwv_interval.Box.t ->
  unsafe:Dwv_interval.Box.t ->
  goal:Dwv_interval.Box.t ->
  unit ->
  Flowpipe.t * verdict
