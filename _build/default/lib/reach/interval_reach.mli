(** Interval-only (box) reachability — the wrapping-effect ablation
    baseline: IBP controller abstraction + interval Taylor steps, no
    symbolic variables. *)

(** One validated period in pure interval arithmetic: (box at δ, segment
    enclosure); [None] on enclosure failure. *)
val step :
  f:Dwv_expr.Expr.t array ->
  lie:Taylor_reach.lie_table ->
  delta:float ->
  Dwv_interval.Box.t ->
  Dwv_interval.Box.t ->
  (Dwv_interval.Box.t * Dwv_interval.Box.t) option

(** Closed-loop box flowpipe under u = output_scale·net(x) with ZOH. *)
val nn_flowpipe :
  ?blowup_width:float ->
  ?order:int ->
  f:Dwv_expr.Expr.t array ->
  delta:float ->
  steps:int ->
  net:Dwv_nn.Mlp.t ->
  output_scale:float ->
  x0:Dwv_interval.Box.t ->
  unit ->
  Flowpipe.t
