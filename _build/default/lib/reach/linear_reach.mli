(** Flow*-style reachability for LTI plants x' = Ax + Bu under sampled
    linear state feedback u = Kx with zero-order hold. Sample-instant sets
    are exact zonotope images; inter-sample enclosures use a Picard-style
    box argument. *)

type lti = { a : Dwv_la.Mat.t; b : Dwv_la.Mat.t }

(** Exact ZOH discretisation: (A_d, B_d) with A_d = e^{Aδ},
    B_d = (∫₀^δ e^{As} ds)·B. *)
val discretize : delta:float -> lti -> Dwv_la.Mat.t * Dwv_la.Mat.t

(** Interval range of K·x over a zonotope. *)
val gain_range : gain:Dwv_la.Mat.t -> Dwv_geometry.Zonotope.t -> Dwv_interval.Box.t

(** Interval evaluation of Ax + Bu over boxes. *)
val field_range :
  lti -> x:Dwv_interval.Box.t -> u:Dwv_interval.Box.t -> Dwv_interval.Box.t

(** Sound enclosure of the one-period flow from [x_box] under a constant
    input in [u_box]; [None] when the inflation loop fails. *)
val intersample_enclosure :
  lti ->
  x_box:Dwv_interval.Box.t ->
  x_next_box:Dwv_interval.Box.t ->
  u_box:Dwv_interval.Box.t ->
  delta:float ->
  Dwv_interval.Box.t option

(** Flowpipe for [steps] periods; marks divergence when any box exceeds
    [blowup_width] (default 1e7) or turns non-finite. *)
val flowpipe :
  ?blowup_width:float ->
  sys:lti ->
  gain:Dwv_la.Mat.t ->
  x0:Dwv_interval.Box.t ->
  delta:float ->
  steps:int ->
  unit ->
  Flowpipe.t
