(* The verifier interface Psi of the paper: run a reachability analysis of
   the closed loop and judge the reach-avoid property on the resulting
   flowpipe.

   Verdict semantics (all with respect to over-approximate enclosures):
     - Reach_avoid : no segment touches the unsafe set AND some
                     sample-instant box lies entirely inside the goal;
                     the property is formally PROVED.
     - Unsafe      : some segment box lies entirely inside the unsafe set,
                     so a real trajectory is certainly unsafe.
     - Unknown     : everything else (spurious intersection possible, goal
                     not provably reached, or the analysis diverged). *)

module Box = Dwv_interval.Box
module Setops = Dwv_geometry.Setops
module Tm_vec = Dwv_taylor.Tm_vec

type verdict = Reach_avoid | Unsafe | Unknown

let verdict_to_string = function
  | Reach_avoid -> "reach-avoid"
  | Unsafe -> "Unsafe"
  | Unknown -> "Unknown"

let pp_verdict ppf v = Fmt.string ppf (verdict_to_string v)

(* First sample instant whose enclosure is contained in the goal. *)
let goal_step ~goal pipe =
  let boxes = Array.of_list (Flowpipe.step_boxes pipe) in
  let rec find i =
    if i >= Array.length boxes then None
    else if Box.subset boxes.(i) goal then Some i
    else find (i + 1)
  in
  find 1 (* the initial set itself does not count as goal-reaching *)

let safety_ok ~unsafe pipe =
  not (Setops.any_intersects (Flowpipe.all_boxes pipe) unsafe)

let certainly_unsafe ~unsafe pipe =
  List.exists (fun b -> Box.subset b unsafe) (Flowpipe.all_boxes pipe)

let check ~unsafe ~goal pipe =
  if Flowpipe.diverged pipe then Unknown
  else if certainly_unsafe ~unsafe pipe then Unsafe
  else if not (safety_ok ~unsafe pipe) then Unknown
  else
    match goal_step ~goal pipe with
    | Some _ -> Reach_avoid
    | None -> Unknown

(* ------------------------------------------------------------------ *)
(* Closed-loop flowpipe for neural-network controllers: abstract the
   controller over the current symbolic state with the chosen method, then
   integrate one period with the validated Taylor kernel. *)

type nn_method =
  | Polar                                   (* layerwise Taylor models *)
  | Bernstein of Nn_reach_bernstein.config  (* Bernstein + remainder *)

let nn_method_name = function
  | Polar -> "POLAR"
  | Bernstein _ -> "ReachNN"

let box_is_sane ~blowup_width b =
  Array.for_all
    (fun iv ->
      Float.is_finite (Dwv_interval.Interval.lo iv)
      && Float.is_finite (Dwv_interval.Interval.hi iv))
    b
  && Box.max_width b <= blowup_width

let nn_flowpipe ?(blowup_width = 1e4) ?(order = 3) ?(disturbance_slots = 8) ~f ~delta
    ~steps ~net ~output_scale ~method_ ~x0 () =
  let lie = Taylor_reach.lie_table ~f ~order in
  let control x =
    match method_ with
    | Polar -> Nn_reach_taylor.control_models ~net ~output_scale x
    | Bernstein config -> Nn_reach_bernstein.control_models ~net ~output_scale ~config x
  in
  let n = Box.dim x0 in
  let m = Dwv_nn.Mlp.n_out net in
  let step_boxes = ref [ x0 ] and segment_boxes = ref [] in
  let diverged = ref false in
  let x =
    ref (Tm_vec.of_box ~total_vars:(n + (disturbance_slots * m)) ~order x0)
  in
  (* Symbolic remainders (as in POLAR): each period's control
     over-approximation error becomes a fresh symbol z_slot instead of a
     detached interval, so the feedback loop can contract past
     disturbances; slots are recycled round-robin, retiring the oldest
     symbol into the interval remainder once the loop has had
     [disturbance_slots] periods to damp it. *)
  let step_index = ref 0 in
  (* Interval blow-up inside a Taylor-model operation (overflow to
     infinity, division by a zero-straddling range, ...) is the "NAN"
     failure mode of Fig. 8: record it as divergence. *)
  (try
     for _ = 1 to steps do
       match
         let slot_base = n + (!step_index mod disturbance_slots * m) in
         incr step_index;
         x := Array.map (fun tm ->
             let tm = ref tm in
             for j = 0 to m - 1 do
               tm := Dwv_taylor.Taylor_model.absorb_var (slot_base + j) !tm
             done;
             !tm)
             !x;
         let u = control !x in
         let u =
           Array.mapi
             (fun j tm ->
               Dwv_taylor.Taylor_model.symbolize_remainder ~slot:(slot_base + j)
                 (Dwv_taylor.Taylor_model.sweep tm))
             u
         in
         Taylor_reach.step ~f ~lie ~delta !x u
       with
       | None ->
         diverged := true;
         raise Exit
       | Some { state; segment } ->
         let next_box = Tm_vec.bound_box state in
         if not (box_is_sane ~blowup_width next_box && box_is_sane ~blowup_width segment)
         then begin
           diverged := true;
           raise Exit
         end;
         segment_boxes := segment :: !segment_boxes;
         step_boxes := next_box :: !step_boxes;
         x := state
       | exception (Invalid_argument _ | Failure _) ->
         diverged := true;
         raise Exit
     done
   with Exit -> ());
  Flowpipe.make
    ~step_boxes:(Array.of_list (List.rev !step_boxes))
    ~segment_boxes:(Array.of_list (List.rev !segment_boxes))
    ~delta ~diverged:!diverged

(* Convenience: run an NN flowpipe and judge it in one call. *)
let verify_nn ?blowup_width ?order ~f ~delta ~steps ~net ~output_scale ~method_ ~x0
    ~unsafe ~goal () =
  let pipe =
    nn_flowpipe ?blowup_width ?order ~f ~delta ~steps ~net ~output_scale ~method_ ~x0 ()
  in
  (pipe, check ~unsafe ~goal pipe)
