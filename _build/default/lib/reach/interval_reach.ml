(* Interval-only (box) reachability: the naive baseline the Taylor-model
   machinery exists to beat. The controller is abstracted by interval
   bound propagation and the period flow by an interval Taylor series with
   a Picard remainder - no symbolic variables at all, so every step incurs
   the full wrapping effect. Kept as an ablation (see the bench): on the
   rotating Van der Pol dynamics the box iteration balloons within a few
   steps while the Taylor-model pipe stays tight. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Mlp = Dwv_nn.Mlp
module Ibp = Dwv_nn.Ibp

let factorial k =
  let acc = ref 1.0 in
  for i = 2 to k do
    acc := !acc *. float_of_int i
  done;
  !acc

(* One sampling period: x(delta) in sum_j delta^j/j! Lie_j(X, U) + Lagrange
   remainder over the Picard enclosure, all in interval arithmetic. *)
let step ~f ~(lie : Taylor_reach.lie_table) ~delta (x : Box.t) (u : Box.t) =
  match Taylor_reach.apriori_enclosure ~f ~x_box:x ~u_box:u ~delta with
  | None -> None
  | Some enclosure ->
    let order = Array.length lie - 2 in
    let n = Box.dim x in
    let next =
      Array.init n (fun i ->
          let acc = ref x.(i) in
          for j = 1 to order do
            let c = Expr.ieval lie.(j).(i) ~x ~u in
            acc := I.add !acc (I.scale ((delta ** float_of_int j) /. factorial j) c)
          done;
          let lf = Expr.ieval lie.(order + 1).(i) ~x:enclosure ~u in
          I.add !acc
            (I.scale ((delta ** float_of_int (order + 1)) /. factorial (order + 1)) lf))
    in
    Some (next, enclosure)

let box_is_sane ~blowup_width b =
  Array.for_all (fun iv -> Float.is_finite (I.lo iv) && Float.is_finite (I.hi iv)) b
  && Box.max_width b <= blowup_width

(* Closed-loop box flowpipe under u = output_scale * net(x) (ZOH). *)
let nn_flowpipe ?(blowup_width = 1e4) ?(order = 3) ~f ~delta ~steps ~net ~output_scale ~x0
    () =
  let lie = Taylor_reach.lie_table ~f ~order in
  let step_boxes = ref [ x0 ] and segment_boxes = ref [] in
  let diverged = ref false in
  let x = ref x0 in
  (try
     for _ = 1 to steps do
       match
         let u =
           Array.map (I.scale output_scale) (Ibp.forward net !x)
         in
         step ~f ~lie ~delta !x u
       with
       | None ->
         diverged := true;
         raise Exit
       | Some (next, segment) ->
         if not (box_is_sane ~blowup_width next && box_is_sane ~blowup_width segment)
         then begin
           diverged := true;
           raise Exit
         end;
         segment_boxes := segment :: !segment_boxes;
         step_boxes := next :: !step_boxes;
         x := next
       | exception (Invalid_argument _ | Failure _) ->
         diverged := true;
         raise Exit
     done
   with Exit -> ());
  Flowpipe.make
    ~step_boxes:(Array.of_list (List.rev !step_boxes))
    ~segment_boxes:(Array.of_list (List.rev !segment_boxes))
    ~delta ~diverged:!diverged
