(** Interval arithmetic over IEEE doubles.

    Round-to-nearest with explicit outward widening after transcendental
    and compound operations (see DESIGN.md, "Reproduction caveats"). *)

type t = private { lo : float; hi : float }

(** [make lo hi]; raises [Invalid_argument] if [lo > hi] or non-finite. *)
val make : float -> float -> t

(** Degenerate interval [x, x]. *)
val of_point : float -> t

val zero : t
val one : t
val lo : t -> float
val hi : t -> float

(** Midpoint. *)
val mid : t -> float

(** Radius (half-width). *)
val rad : t -> float

val width : t -> float
val is_point : t -> bool

(** Outward widening by a relative epsilon (default 1e-14). *)
val widen : ?eps:float -> t -> t

val contains : t -> float -> bool

(** [subset a b] iff a ⊆ b. *)
val subset : t -> t -> bool

(** Set intersection, [None] when disjoint. *)
val intersect : t -> t -> t option

val intersects : t -> t -> bool

(** Smallest interval containing both. *)
val hull : t -> t -> t

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t

(** Scalar multiple. *)
val scale : float -> t -> t

(** Translation by a scalar. *)
val shift : float -> t -> t

val mul : t -> t -> t

(** Reciprocal; raises [Failure] when the interval contains zero. *)
val inv : t -> t

(** Division; raises [Failure] when the divisor contains zero. *)
val div : t -> t -> t

(** Tight square (never negative). *)
val sqr : t -> t

(** Integer power (tight via repeated squaring). *)
val pow_int : t -> int -> t

val abs : t -> t

(** Square root; raises [Failure] on a negative lower bound. *)
val sqrt_ : t -> t

val exp_ : t -> t

(** Natural log; raises [Failure] on non-positive lower bound. *)
val log_ : t -> t

val tanh_ : t -> t
val sigmoid_ : t -> t
val arctan_ : t -> t
val sin_ : t -> t
val cos_ : t -> t
val max_ : t -> t -> t
val min_ : t -> t -> t

(** Pointwise max with zero. *)
val relu : t -> t

(** Hausdorff-style gap between intervals as sets; 0 when they overlap. *)
val distance : t -> t -> float

(** Length of the intersection; 0 when disjoint. *)
val overlap_length : t -> t -> float

(** [sample a ~t] interpolates: t=0 gives lo, t=1 gives hi. *)
val sample : t -> t:float -> float

(** Bound-wise equality with absolute tolerance (default exact). *)
val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
