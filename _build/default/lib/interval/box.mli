(** Axis-aligned boxes (interval vectors): the set representation used for
    initial, unsafe and goal regions, and for flowpipe segments in the
    geometric metric of Eq. (2)/(3). *)

type t = Interval.t array

(** Defensive copy of an interval array; raises on empty input. *)
val of_intervals : Interval.t array -> t

(** [make ~lo ~hi] from corner coordinates; raises on mismatch/empty. *)
val make : lo:float array -> hi:float array -> t

(** Degenerate box at a point. *)
val of_point : float array -> t

val dim : t -> int
val get : t -> int -> Interval.t
val lo : t -> float array
val hi : t -> float array
val center : t -> float array
val widths : t -> float array
val radii : t -> float array
val max_width : t -> float

(** Product of widths. *)
val volume : t -> float

val contains : t -> float array -> bool
val subset : t -> t -> bool
val intersects : t -> t -> bool

(** Set intersection, [None] when disjoint. *)
val intersect : t -> t -> t option

(** Volume of the overlap (the |X_r ∩ X_u| of the geometric metric). *)
val intersection_volume : t -> t -> float

(** Min squared Euclidean distance between the boxes as point sets. *)
val sq_distance : t -> t -> float

val distance : t -> t -> float

(** Componentwise interval hull. *)
val hull : t -> t -> t

(** Hull of a non-empty list. *)
val hull_list : t list -> t

val translate : float array -> t -> t

(** Uniform additive bloating (raises on negative epsilon). *)
val bloat : float -> t -> t

(** Per-dimension additive bloating. *)
val bloat_vec : float array -> t -> t

(** Multiplicative inflation about the center. *)
val scale_about_center : float -> t -> t

(** Split along the widest dimension. *)
val bisect : t -> t * t

(** Even grid partition with [parts.(i)] cells per dimension (Algorithm 2). *)
val partition : int array -> t -> t list

(** All 2^n corner points. *)
val corners : t -> float array list

(** Uniform random point inside the box. *)
val sample : Dwv_util.Rng.t -> t -> float array

(** Map normalized [-1,1]^n coordinates into the box. *)
val denormalize : t -> float array -> float array

(** Inverse of {!denormalize} (0 for zero-radius dimensions). *)
val normalize : t -> float array -> float array

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
