lib/interval/box.mli: Dwv_util Format Interval
