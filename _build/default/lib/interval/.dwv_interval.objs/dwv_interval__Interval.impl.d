lib/interval/interval.ml: Dwv_util Float Fmt List
