lib/interval/box.ml: Array Dwv_util Float Fmt Fun Interval List
