(** Episodic RL environment over a sampled-data closed loop with the
    paper's baseline reward: −‖x − goal_center‖ + λ‖x − unsafe_center‖,
    plus terminal bonuses/penalties and a small action cost. *)

type t

val make :
  ?unsafe_weight:float ->
  ?action_penalty:float ->
  ?goal_bonus:float ->
  ?crash_penalty:float ->
  ?substeps:int ->
  sys:Dwv_ode.Sampled_system.t ->
  spec:Dwv_core.Spec.t ->
  unit ->
  t

val state_dim : t -> int
val action_dim : t -> int
val sys : t -> Dwv_ode.Sampled_system.t
val spec : t -> Dwv_core.Spec.t

(** Uniform initial state from X₀. *)
val reset : t -> Dwv_util.Rng.t -> float array

(** Dense shaping reward (no terminal terms). *)
val shaping : t -> x:float array -> u:float array -> float

(** Analytic (∂r/∂x, ∂r/∂u) of the shaping reward (for SVG's BPTT). *)
val shaping_grad : t -> x:float array -> u:float array -> float array * float array

type step_result = {
  next_state : float array;
  reward : float;
  terminated : bool;
  crashed : bool;
  reached : bool;
}

(** One sampling period under action [u]. *)
val step : t -> float array -> float array -> step_result

(** Deterministic success check: every one of [rollouts] random starts
    reaches the goal without crashing within [steps] periods (the
    baselines' convergence criterion). *)
val policy_succeeds :
  t ->
  Dwv_util.Rng.t ->
  policy:(float array -> float array) ->
  steps:int ->
  rollouts:int ->
  bool
