(* Deep deterministic policy gradient (Lillicrap et al., ICLR 2016): the
   model-free design-then-verify baseline of Table 1. Standard recipe:
   actor-critic MLPs, target networks with Polyak averaging, uniform
   replay, Gaussian exploration noise. Convergence ("CI" in Table 1) is
   the number of training episodes until a periodic deterministic
   evaluation reaches the goal safely on every rollout. *)

module Mlp = Dwv_nn.Mlp
module Adam = Dwv_nn.Adam
module Rng = Dwv_util.Rng
module Spec = Dwv_core.Spec

type config = {
  gamma : float;
  tau : float;                  (* target-network Polyak factor *)
  batch_size : int;
  buffer_capacity : int;
  actor_lr : float;
  critic_lr : float;
  noise_sigma : float;          (* exploration noise, fraction of u scale *)
  noise_decay : float;          (* per-episode multiplicative decay *)
  warmup_steps : int;           (* steps of uniform-random actions *)
  max_episodes : int;
  steps_per_episode : int;
  eval_every : int;             (* episodes between convergence checks *)
  eval_rollouts : int;
  seed : int;
}

let default_config =
  {
    gamma = 0.98;
    tau = 0.01;
    batch_size = 64;
    buffer_capacity = 50_000;
    actor_lr = 1e-3;
    critic_lr = 1e-3;
    noise_sigma = 0.3;
    noise_decay = 0.999;
    warmup_steps = 500;
    max_episodes = 2_000;
    steps_per_episode = 60;
    eval_every = 25;
    eval_rollouts = 10;
    seed = 0;
  }

type result = {
  actor : Mlp.t;
  output_scale : float;
  episodes : int;         (* convergence episodes, or the cap *)
  converged : bool;
  reward_history : float array;  (* per-episode returns *)
}

let concat = Array.append

let train ?(log = false) cfg ~env ~actor ~critic ~output_scale =
  let rng = Rng.create cfg.seed in
  let actor = ref (Mlp.copy actor) and critic = ref (Mlp.copy critic) in
  let actor_target = ref (Mlp.copy !actor) and critic_target = ref (Mlp.copy !critic) in
  let actor_opt = Adam.create ~lr:cfg.actor_lr (Mlp.num_params !actor) in
  let critic_opt = Adam.create ~lr:cfg.critic_lr (Mlp.num_params !critic) in
  let buffer = Replay.create cfg.buffer_capacity in
  let m = Env.action_dim env in
  let total_steps = ref 0 in
  let sigma = ref (cfg.noise_sigma *. output_scale) in
  let rewards = ref [] in
  let converged = ref false and episodes = ref cfg.max_episodes in

  let policy x = Array.map (fun v -> output_scale *. v) (Mlp.forward !actor x) in

  let update () =
    let batch = Replay.sample buffer rng cfg.batch_size in
    let bsz = float_of_int cfg.batch_size in
    (* critic: minimize mean squared TD error *)
    let critic_grad = Array.make (Mlp.num_params !critic) 0.0 in
    Array.iter
      (fun (tr : Replay.transition) ->
        let a' =
          Array.map (fun v -> output_scale *. v) (Mlp.forward !actor_target tr.next_state)
        in
        let q' = (Mlp.forward !critic_target (concat tr.next_state a')).(0) in
        let y =
          tr.reward +. (if tr.terminated then 0.0 else cfg.gamma *. q')
        in
        let q, cache = Mlp.forward_cached !critic (concat tr.state tr.action) in
        let d_out = [| 2.0 *. (q.(0) -. y) /. bsz |] in
        let g, _ = Mlp.backward !critic cache d_out in
        let flat = Mlp.flatten_grads !critic g in
        Array.iteri (fun i v -> critic_grad.(i) <- critic_grad.(i) +. v) flat)
      batch;
    critic := Mlp.unflatten !critic (Adam.step critic_opt ~params:(Mlp.flatten !critic) ~grad:critic_grad);
    (* actor: maximize mean Q(s, mu(s)) *)
    let actor_grad = Array.make (Mlp.num_params !actor) 0.0 in
    Array.iter
      (fun (tr : Replay.transition) ->
        let out, acache = Mlp.forward_cached !actor tr.state in
        let a = Array.map (fun v -> output_scale *. v) out in
        let _q, ccache = Mlp.forward_cached !critic (concat tr.state a) in
        let _, d_in = Mlp.backward !critic ccache [| 1.0 |] in
        let n = Env.state_dim env in
        (* d(-Q)/d(actor output) = -scale * dQ/du *)
        let d_out =
          Array.init m (fun j -> -.output_scale *. d_in.(n + j) /. bsz)
        in
        let g, _ = Mlp.backward !actor acache d_out in
        let flat = Mlp.flatten_grads !actor g in
        Array.iteri (fun i v -> actor_grad.(i) <- actor_grad.(i) +. v) flat)
      batch;
    actor := Mlp.unflatten !actor (Adam.step actor_opt ~params:(Mlp.flatten !actor) ~grad:actor_grad);
    actor_target := Mlp.soft_update ~tau:cfg.tau ~src:!actor !actor_target;
    critic_target := Mlp.soft_update ~tau:cfg.tau ~src:!critic !critic_target
  in

  (try
     for ep = 1 to cfg.max_episodes do
       let x = ref (Env.reset env rng) in
       let ep_reward = ref 0.0 in
       (try
          for _ = 1 to cfg.steps_per_episode do
            incr total_steps;
            let u =
              if !total_steps <= cfg.warmup_steps then
                Array.init m (fun _ -> Rng.uniform rng ~lo:(-.output_scale) ~hi:output_scale)
              else
                Array.map (fun v -> v +. Rng.gaussian_scaled rng ~mu:0.0 ~sigma:!sigma) (policy !x)
            in
            let r = Env.step env !x u in
            Replay.push buffer
              { Replay.state = !x; action = u; reward = r.Env.reward;
                next_state = r.Env.next_state; terminated = r.Env.terminated };
            ep_reward := !ep_reward +. r.Env.reward;
            x := r.Env.next_state;
            if Replay.size buffer >= cfg.batch_size && !total_steps > cfg.warmup_steps then
              update ();
            if r.Env.terminated then raise Exit
          done
        with Exit -> ());
       rewards := !ep_reward :: !rewards;
       sigma := !sigma *. cfg.noise_decay;
       if log && ep mod 50 = 0 then
         Logs.info (fun f -> f "ddpg episode %d: return %.2f" ep !ep_reward);
       if ep mod cfg.eval_every = 0
          && Env.policy_succeeds env rng ~policy ~steps:cfg.steps_per_episode
               ~rollouts:cfg.eval_rollouts
       then begin
         converged := true;
         episodes := ep;
         raise Exit
       end
     done
   with Exit -> ());
  {
    actor = !actor;
    output_scale;
    episodes = !episodes;
    converged = !converged;
    reward_history = Array.of_list (List.rev !rewards);
  }
