(* Uniform-sampling ring-buffer replay memory for DDPG. *)

type transition = {
  state : float array;
  action : float array;
  reward : float;
  next_state : float array;
  terminated : bool;
}

type t = {
  buffer : transition option array;
  mutable write_pos : int;
  mutable size : int;
}

let create capacity =
  if capacity < 1 then invalid_arg "Replay.create: capacity must be positive";
  { buffer = Array.make capacity None; write_pos = 0; size = 0 }

let capacity t = Array.length t.buffer

let size t = t.size

let push t transition =
  t.buffer.(t.write_pos) <- Some transition;
  t.write_pos <- (t.write_pos + 1) mod capacity t;
  if t.size < capacity t then t.size <- t.size + 1

let get t i =
  match t.buffer.(i) with
  | Some tr -> tr
  | None -> invalid_arg "Replay.get: empty slot"

let sample t rng n =
  if t.size = 0 then invalid_arg "Replay.sample: empty buffer";
  Array.init n (fun _ -> get t (Dwv_util.Rng.int rng t.size))
