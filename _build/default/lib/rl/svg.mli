(** Stochastic value gradients (Heess et al. 2015) — the model-based
    design-then-verify baseline: BPTT through the known dynamics with
    finite-difference transition Jacobians and analytic reward gradients. *)

type config = {
  gamma : float;
  horizon : int;
  lr : float;
  rollouts_per_step : int;
  max_steps : int;
  fd_eps : float;
  eval_every : int;
  eval_rollouts : int;
  seed : int;
}

val default_config : config

type result = {
  policy : Dwv_nn.Mlp.t;
  output_scale : float;
  steps : int;     (** convergence gradient steps (Table 1 CI), or the cap *)
  converged : bool;
  return_history : float array;
}

(** Central-difference Jacobians (∂next/∂x as columns, ∂next/∂u as
    columns) of the one-period transition map. *)
val step_jacobians :
  sys:Dwv_ode.Sampled_system.t ->
  eps:float ->
  float array ->
  float array ->
  float array array * float array array

(** Return and parameter gradient of one BPTT rollout from [x0]. *)
val rollout_gradient :
  config ->
  env:Env.t ->
  policy:Dwv_nn.Mlp.t ->
  output_scale:float ->
  float array ->
  float * float array

val train :
  ?log:bool ->
  config ->
  env:Env.t ->
  policy:Dwv_nn.Mlp.t ->
  output_scale:float ->
  result
