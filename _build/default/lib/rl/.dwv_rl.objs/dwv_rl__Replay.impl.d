lib/rl/replay.ml: Array Dwv_util
