lib/rl/env.mli: Dwv_core Dwv_ode Dwv_util
