lib/rl/replay.mli: Dwv_util
