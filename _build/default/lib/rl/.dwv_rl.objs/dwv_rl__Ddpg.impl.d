lib/rl/ddpg.ml: Array Dwv_core Dwv_nn Dwv_util Env List Logs Replay
