lib/rl/svg.mli: Dwv_nn Dwv_ode Env
