lib/rl/env.ml: Array Dwv_core Dwv_interval Dwv_la Dwv_ode Float
