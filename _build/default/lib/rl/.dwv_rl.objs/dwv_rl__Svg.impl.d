lib/rl/svg.ml: Array Dwv_nn Dwv_ode Dwv_util Env List Logs Option
