lib/rl/ddpg.mli: Dwv_nn Env
