(** Ring-buffer replay memory with uniform sampling (DDPG). *)

type transition = {
  state : float array;
  action : float array;
  reward : float;
  next_state : float array;
  terminated : bool;
}

type t

(** Raises unless the capacity is positive. *)
val create : int -> t

val capacity : t -> int
val size : t -> int

(** Insert, overwriting the oldest entry when full. *)
val push : t -> transition -> unit

(** [n] transitions sampled uniformly with replacement; raises on an
    empty buffer. *)
val sample : t -> Dwv_util.Rng.t -> int -> transition array
