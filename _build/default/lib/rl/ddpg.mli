(** Deep deterministic policy gradient (Lillicrap et al. 2016) — the
    model-free design-then-verify baseline. *)

type config = {
  gamma : float;
  tau : float;
  batch_size : int;
  buffer_capacity : int;
  actor_lr : float;
  critic_lr : float;
  noise_sigma : float;
  noise_decay : float;
  warmup_steps : int;
  max_episodes : int;
  steps_per_episode : int;
  eval_every : int;
  eval_rollouts : int;
  seed : int;
}

val default_config : config

type result = {
  actor : Dwv_nn.Mlp.t;
  output_scale : float;
  episodes : int;   (** convergence episodes (Table 1 CI), or the cap *)
  converged : bool;
  reward_history : float array;
}

(** Train; the critic must accept state ++ action and output one value.
    Convergence = all periodic deterministic evaluation rollouts reach the
    goal without entering the unsafe set. *)
val train :
  ?log:bool ->
  config ->
  env:Env.t ->
  actor:Dwv_nn.Mlp.t ->
  critic:Dwv_nn.Mlp.t ->
  output_scale:float ->
  result
