(* The episodic environment the design-then-verify baselines train in: the
   sampled-data closed loop of the plant, with the reward the paper
   specifies for DDPG and SVG — "minimize the Euclidean distance to the
   goal set center and maximize the distance to the unsafe set center". *)

module Box = Dwv_interval.Box
module Vec = Dwv_la.Vec
module Spec = Dwv_core.Spec
module Sampled_system = Dwv_ode.Sampled_system

type t = {
  sys : Sampled_system.t;
  spec : Spec.t;
  unsafe_weight : float;   (* weight of the distance-from-unsafe bonus *)
  action_penalty : float;  (* small quadratic control penalty *)
  goal_bonus : float;      (* terminal bonus on entering the goal box *)
  crash_penalty : float;   (* terminal penalty on entering the unsafe box *)
  substeps : int;
}

let make ?(unsafe_weight = 0.2) ?(action_penalty = 1e-4) ?(goal_bonus = 10.0)
    ?(crash_penalty = 50.0) ?(substeps = 4) ~sys ~spec () =
  { sys; spec; unsafe_weight; action_penalty; goal_bonus; crash_penalty; substeps }

let state_dim t = t.sys.Sampled_system.n
let action_dim t = t.sys.Sampled_system.m
let sys t = t.sys
let spec t = t.spec

let reset t rng = Box.sample rng t.spec.Spec.x0

(* Dense shaping reward at a state (before terminal bonuses). *)
let shaping t ~x ~u =
  let goal_c = Box.center t.spec.Spec.goal in
  let unsafe_c = Box.center t.spec.Spec.unsafe in
  let d_goal = Vec.dist2 x goal_c in
  let d_unsafe = Vec.dist2 x unsafe_c in
  let u_cost = Array.fold_left (fun acc ui -> acc +. (ui *. ui)) 0.0 u in
  -.d_goal +. (t.unsafe_weight *. d_unsafe) -. (t.action_penalty *. u_cost)

(* Analytic gradient of the shaping reward, for the model-based SVG
   baseline's backward pass: (d r/d x, d r/d u). *)
let shaping_grad t ~x ~u =
  let goal_c = Box.center t.spec.Spec.goal in
  let unsafe_c = Box.center t.spec.Spec.unsafe in
  let d_goal = Float.max (Vec.dist2 x goal_c) 1e-9 in
  let d_unsafe = Float.max (Vec.dist2 x unsafe_c) 1e-9 in
  let gx =
    Array.init (Array.length x) (fun i ->
        (-.(x.(i) -. goal_c.(i)) /. d_goal)
        +. (t.unsafe_weight *. (x.(i) -. unsafe_c.(i)) /. d_unsafe))
  in
  let gu = Array.map (fun ui -> -2.0 *. t.action_penalty *. ui) u in
  (gx, gu)

type step_result = {
  next_state : float array;
  reward : float;
  terminated : bool;   (* absorbed: crashed or reached the goal *)
  crashed : bool;
  reached : bool;
}

let step t x u =
  let next_state = Sampled_system.step ~substeps:t.substeps t.sys ~u x in
  let crashed = not (Spec.point_safe t.spec next_state) in
  let reached = Spec.point_in_goal t.spec next_state in
  let reward =
    shaping t ~x:next_state ~u
    +. (if reached then t.goal_bonus else 0.0)
    -. (if crashed then t.crash_penalty else 0.0)
  in
  { next_state; reward; terminated = crashed || reached; crashed; reached }

(* Deterministic evaluation: does [policy] reach the goal without crashing
   on every one of [rollouts] random starts within [steps] periods? Both
   baselines use this as their convergence criterion. *)
let policy_succeeds t rng ~policy ~steps ~rollouts =
  let one_rollout () =
    let x = ref (reset t rng) in
    let crashed = ref false and reached = ref false in
    let i = ref 0 in
    while (not (!crashed || !reached)) && !i < steps do
      incr i;
      let r = step t !x (policy !x) in
      if r.crashed then crashed := true
      else if r.reached then reached := true
      else x := r.next_state
    done;
    !reached && not !crashed
  in
  let ok = ref true in
  for _ = 1 to rollouts do
    if !ok && not (one_rollout ()) then ok := false
  done;
  !ok
