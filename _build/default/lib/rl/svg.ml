(* Stochastic value gradients (Heess et al., NeurIPS 2015): the
   model-based design-then-verify baseline. Since the plant model is known
   symbolically, the return of a finite-horizon rollout is differentiated
   through the dynamics by backpropagation-through-time; the dynamics
   Jacobians of the one-period transition map are obtained by central
   finite differences (the map itself is an RK4 integral), the reward
   gradient analytically from Env.shaping_grad, and the policy Jacobian by
   network backprop. CI counts gradient steps. *)

module Mlp = Dwv_nn.Mlp
module Adam = Dwv_nn.Adam
module Rng = Dwv_util.Rng
module Sampled_system = Dwv_ode.Sampled_system

type config = {
  gamma : float;
  horizon : int;            (* rollout length (sampling periods) *)
  lr : float;
  rollouts_per_step : int;  (* gradient averaged over this many rollouts *)
  max_steps : int;          (* gradient-step cap *)
  fd_eps : float;           (* finite-difference epsilon for Jacobians *)
  eval_every : int;
  eval_rollouts : int;
  seed : int;
}

let default_config =
  {
    gamma = 0.99;
    horizon = 60;
    lr = 3e-3;
    rollouts_per_step = 4;
    max_steps = 600;
    fd_eps = 1e-5;
    eval_every = 10;
    eval_rollouts = 10;
    seed = 0;
  }

type result = {
  policy : Mlp.t;
  output_scale : float;
  steps : int;        (* convergence gradient steps, or the cap *)
  converged : bool;
  return_history : float array;
}

(* Central-difference Jacobians of the one-period map x -> step(x, u):
   (d next/d x, d next/d u), stored column-wise as arrays of columns. *)
let step_jacobians ~sys ~eps x u =
  let n = Array.length x and m = Array.length u in
  let step x u = Sampled_system.step ~substeps:4 sys ~u x in
  let col_x j =
    let xp = Array.copy x and xm = Array.copy x in
    xp.(j) <- xp.(j) +. eps;
    xm.(j) <- xm.(j) -. eps;
    let fp = step xp u and fm = step xm u in
    Array.init n (fun i -> (fp.(i) -. fm.(i)) /. (2.0 *. eps))
  in
  let col_u j =
    let up = Array.copy u and um = Array.copy u in
    up.(j) <- up.(j) +. eps;
    um.(j) <- um.(j) -. eps;
    let fp = step x up and fm = step x um in
    Array.init n (fun i -> (fp.(i) -. fm.(i)) /. (2.0 *. eps))
  in
  (Array.init n col_x, Array.init m col_u)

(* One BPTT pass: returns (undiscounted return, gradient of the discounted
   return w.r.t. the policy parameters). *)
let rollout_gradient cfg ~env ~policy ~output_scale x0 =
  let sys = Env.sys env in
  let n = Env.state_dim env and m = Env.action_dim env in
  let h = cfg.horizon in
  (* forward pass, caching everything the backward pass needs *)
  let states = Array.make (h + 1) x0 in
  let actions = Array.make h [||] in
  let caches = Array.make h None in
  let ret = ref 0.0 in
  for t = 0 to h - 1 do
    let out, cache = Mlp.forward_cached policy states.(t) in
    let u = Array.map (fun v -> output_scale *. v) out in
    actions.(t) <- u;
    caches.(t) <- Some cache;
    states.(t + 1) <- Sampled_system.step ~substeps:4 sys ~u states.(t);
    ret := !ret +. Env.shaping env ~x:states.(t + 1) ~u
  done;
  (* backward pass *)
  let theta_grad = Array.make (Mlp.num_params policy) 0.0 in
  let gx = ref (Array.make n 0.0) in
  (* dG_{t+1}/dx_{t+1} *)
  for t = h - 1 downto 0 do
    let x = states.(t) and u = actions.(t) and x' = states.(t + 1) in
    let rx, ru = Env.shaping_grad env ~x:x' ~u in
    let ax_cols, bu_cols = step_jacobians ~sys ~eps:cfg.fd_eps x u in
    (* v = r_x + gamma * gx  (gradient arriving at x_{t+1}) *)
    let v = Array.init n (fun i -> rx.(i) +. (cfg.gamma *. !gx.(i))) in
    (* q_u = r_u + B^T v *)
    let q_u =
      Array.init m (fun j ->
          ru.(j) +. Array.fold_left ( +. ) 0.0 (Array.mapi (fun i b -> b *. v.(i)) bu_cols.(j)))
    in
    (* policy backward: d_out = gamma^t * scale * q_u yields both the
       theta contribution and J_pi^T q_u for the state recursion *)
    let cache = Option.get caches.(t) in
    let discount = cfg.gamma ** float_of_int t in
    let d_out = Array.map (fun q -> discount *. output_scale *. q) q_u in
    let g, d_in = Mlp.backward policy cache d_out in
    let flat = Mlp.flatten_grads policy g in
    Array.iteri (fun i gv -> theta_grad.(i) <- theta_grad.(i) +. gv) flat;
    (* gx_t = A^T v + J^T q_u; d_in equals J^T (discount * q_u), so undo
       the discount before reuse *)
    let jq = Array.map (fun d -> d /. discount) d_in in
    gx :=
      Array.init n (fun j ->
          let atv = ref 0.0 in
          for i = 0 to n - 1 do
            atv := !atv +. (ax_cols.(j).(i) *. v.(i))
          done;
          !atv +. jq.(j))
  done;
  (!ret, theta_grad)

let train ?(log = false) cfg ~env ~policy ~output_scale =
  let rng = Rng.create cfg.seed in
  let policy = ref (Mlp.copy policy) in
  let opt = Adam.create ~lr:cfg.lr (Mlp.num_params !policy) in
  let returns = ref [] in
  let converged = ref false and steps_taken = ref cfg.max_steps in
  (try
     for step = 1 to cfg.max_steps do
       let dim = Mlp.num_params !policy in
       let grad = Array.make dim 0.0 in
       let avg_return = ref 0.0 in
       for _ = 1 to cfg.rollouts_per_step do
         let x0 = Env.reset env rng in
         let ret, g = rollout_gradient cfg ~env ~policy:!policy ~output_scale x0 in
         avg_return := !avg_return +. (ret /. float_of_int cfg.rollouts_per_step);
         Array.iteri
           (fun i v -> grad.(i) <- grad.(i) +. (v /. float_of_int cfg.rollouts_per_step))
           g
       done;
       (* ascend the return: Adam minimizes, so feed the negated gradient *)
       let neg = Array.map (fun v -> -.v) grad in
       policy := Mlp.unflatten !policy (Adam.step opt ~params:(Mlp.flatten !policy) ~grad:neg);
       returns := !avg_return :: !returns;
       if log && step mod 25 = 0 then
         Logs.info (fun f -> f "svg step %d: return %.2f" step !avg_return);
       if step mod cfg.eval_every = 0
          && (let p x = Array.map (fun v -> output_scale *. v) (Mlp.forward !policy x) in
              Env.policy_succeeds env rng ~policy:p ~steps:cfg.horizon
                ~rollouts:cfg.eval_rollouts)
       then begin
         converged := true;
         steps_taken := step;
         raise Exit
       end
     done
   with Exit -> ());
  {
    policy = !policy;
    output_scale;
    steps = !steps_taken;
    converged = !converged;
    return_history = Array.of_list (List.rev !returns);
  }
