(** Zonotopes Z = \{ c + G·ζ | ζ ∈ [-1,1]^m \}: exact under linear maps
    and Minkowski sums; the set representation of the Flow*-style linear
    verifier. *)

type t

(** Build from a center and an n×m generator matrix. *)
val make : center:float array -> generators:Dwv_la.Mat.t -> t

val dim : t -> int
val num_generators : t -> int
val center : t -> float array

(** A box as a zonotope (one axis-aligned generator per dimension). *)
val of_box : Dwv_interval.Box.t -> t

(** Interval hull (tight per axis). *)
val to_box : t -> Dwv_interval.Box.t

(** Exact image under a linear map. *)
val linear_map : Dwv_la.Mat.t -> t -> t

val translate : float array -> t -> t

(** [affine_map a b z] = a·z + b (exact). *)
val affine_map : Dwv_la.Mat.t -> float array -> t -> t

(** Exact Minkowski sum (generator concatenation). *)
val minkowski_sum : t -> t -> t

(** Support function h(d) = ⟨c,d⟩ + Σⱼ |⟨gⱼ,d⟩|. *)
val support : t -> float array -> float

(** Girard reduction to at most [max_generators] generators (sound
    over-approximation; no-op if already small enough or the budget is
    below the dimension). *)
val reduce_order : max_generators:int -> t -> t

(** The point c + G·ζ. *)
val point : t -> float array -> float array

(** Uniform random point of the generator cube image. *)
val sample : Dwv_util.Rng.t -> t -> float array

val pp : Format.formatter -> t -> unit
