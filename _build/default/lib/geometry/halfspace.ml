(* Halfspaces { x | <normal, x> <= offset }.

   The ACC unsafe region of the paper is the halfspace s <= 120; the box
   substitution used by the metrics is validated against the exact
   halfspace checks in this module (see Dwv_systems.Acc and the bench
   cross-checks). Zonotope-vs-halfspace tests are exact thanks to the
   support function. *)

module Box = Dwv_interval.Box
module I = Dwv_interval.Interval

type t = { normal : float array; offset : float }

let make ~normal ~offset =
  if Array.length normal = 0 then invalid_arg "Halfspace.make: empty normal";
  let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 normal) in
  if norm < 1e-300 then invalid_arg "Halfspace.make: zero normal";
  { normal = Array.copy normal; offset }

let dim t = Array.length t.normal

(* <normal, x> *)
let dot_point t x =
  if Array.length x <> dim t then invalid_arg "Halfspace.dot_point: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i n -> acc := !acc +. (n *. x.(i))) t.normal;
  !acc

let contains t x = dot_point t x <= t.offset

(* Range of <normal, x> over a box (tight: interval arithmetic on an
   affine form is exact). *)
let dot_box t (box : Box.t) =
  if Box.dim box <> dim t then invalid_arg "Halfspace.dot_box: dimension mismatch";
  let acc = ref I.zero in
  Array.iteri (fun i n -> acc := I.add !acc (I.scale n (Box.get box i))) t.normal;
  !acc

(* Exact box tests. *)
let box_intersects t box = I.lo (dot_box t box) <= t.offset

let box_inside t box = I.hi (dot_box t box) <= t.offset

let box_avoids t box = I.lo (dot_box t box) > t.offset

(* Exact zonotope tests via the support function: the minimum of
   <normal, x> over Z is -support(Z, -normal). *)
let zonotope_intersects t z =
  let neg = Array.map (fun v -> -.v) t.normal in
  -.Zonotope.support z neg <= t.offset

let zonotope_inside t z = Zonotope.support z t.normal <= t.offset

(* Signed Euclidean distance from a point to the boundary hyperplane
   (negative inside the halfspace). *)
let signed_distance t x =
  let norm = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 t.normal) in
  (dot_point t x -. t.offset) /. norm

(* Euclidean gap between a box and the halfspace as sets (0 when they
   touch). *)
let box_gap t box =
  let norm = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 t.normal) in
  Float.max 0.0 ((I.lo (dot_box t box) -. t.offset) /. norm)

let pp ppf t =
  Fmt.pf ppf "{x | %a . x <= %g}" Fmt.(array ~sep:comma (fmt "%g")) t.normal t.offset
