(** Halfspaces \{ x | ⟨normal, x⟩ ≤ offset \} with exact box and zonotope
    tests (the ACC unsafe region is the halfspace s ≤ 120). *)

type t = { normal : float array; offset : float }

(** Raises on an empty or zero normal. *)
val make : normal:float array -> offset:float -> t

val dim : t -> int

(** ⟨normal, x⟩. *)
val dot_point : t -> float array -> float

val contains : t -> float array -> bool

(** Tight range of ⟨normal, x⟩ over a box. *)
val dot_box : t -> Dwv_interval.Box.t -> Dwv_interval.Interval.t

(** Exact: the box meets the halfspace. *)
val box_intersects : t -> Dwv_interval.Box.t -> bool

(** Exact: the box lies entirely inside the halfspace. *)
val box_inside : t -> Dwv_interval.Box.t -> bool

(** Exact: the box lies entirely outside (complement). *)
val box_avoids : t -> Dwv_interval.Box.t -> bool

(** Exact zonotope tests (support function). *)
val zonotope_intersects : t -> Zonotope.t -> bool

val zonotope_inside : t -> Zonotope.t -> bool

(** Signed Euclidean distance to the boundary (negative inside). *)
val signed_distance : t -> float array -> float

(** Euclidean gap between a box and the halfspace (0 when touching). *)
val box_gap : t -> Dwv_interval.Box.t -> float

val pp : Format.formatter -> t -> unit
