(* Convex polytopes in halfspace representation (an intersection of
   halfspaces). The exact-by-construction operations (membership,
   box containment, box avoidance) are used as cross-checks of the
   box-shaped specification sets; the intersection test is a sound
   over-approximation (an exact test would need an LP, which the
   reproduction deliberately avoids). *)

module Box = Dwv_interval.Box

type t = { halfspaces : Halfspace.t list; dim : int }

let of_halfspaces = function
  | [] -> invalid_arg "Polytope.of_halfspaces: empty list"
  | h :: _ as hs ->
    let dim = Halfspace.dim h in
    if List.exists (fun h' -> Halfspace.dim h' <> dim) hs then
      invalid_arg "Polytope.of_halfspaces: mixed dimensions";
    { halfspaces = hs; dim }

(* A box as the intersection of 2n axis-aligned halfspaces. *)
let of_box (box : Box.t) =
  let n = Box.dim box in
  let axis i sign bound =
    let normal = Array.make n 0.0 in
    normal.(i) <- sign;
    Halfspace.make ~normal ~offset:bound
  in
  let hs =
    List.concat
      (List.init n (fun i ->
           let iv = Box.get box i in
           [ axis i 1.0 (Dwv_interval.Interval.hi iv);
             axis i (-1.0) (-.Dwv_interval.Interval.lo iv) ]))
  in
  { halfspaces = hs; dim = n }

let dim t = t.dim

let halfspaces t = t.halfspaces

let contains t x = List.for_all (fun h -> Halfspace.contains h x) t.halfspaces

(* Exact: every point of the box satisfies every constraint. *)
let contains_box t box = List.for_all (fun h -> Halfspace.box_inside h box) t.halfspaces

(* Exact emptiness of the intersection with a box would need an LP; this
   necessary condition (every constraint individually intersects the box)
   is a sound over-approximation: [false] proves emptiness, [true] is
   inconclusive in general (exact when the polytope is axis-aligned). *)
let may_intersect_box t box =
  List.for_all (fun h -> Halfspace.box_intersects h box) t.halfspaces

(* Exact: the box avoids the polytope whenever it avoids one halfspace. *)
let box_avoids t box = List.exists (fun h -> Halfspace.box_avoids h box) t.halfspaces

let zonotope_inside t z = List.for_all (fun h -> Halfspace.zonotope_inside h z) t.halfspaces

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Halfspace.pp) t.halfspaces
