(** Convex polytopes in halfspace (H-) representation. Membership,
    box-containment and box-avoidance tests are exact; box-intersection
    is a sound over-approximation (no LP solver by design). *)

type t

(** Raises on an empty list or mixed dimensions. *)
val of_halfspaces : Halfspace.t list -> t

(** A box as 2n axis-aligned halfspaces. *)
val of_box : Dwv_interval.Box.t -> t

val dim : t -> int
val halfspaces : t -> Halfspace.t list
val contains : t -> float array -> bool

(** Exact: box ⊆ polytope. *)
val contains_box : t -> Dwv_interval.Box.t -> bool

(** Sound over-approximation of intersection: [false] proves the box and
    the polytope are disjoint; [true] is inconclusive (exact for
    axis-aligned polytopes). *)
val may_intersect_box : t -> Dwv_interval.Box.t -> bool

(** Exact: the box avoids the polytope (certified by one halfspace). *)
val box_avoids : t -> Dwv_interval.Box.t -> bool

(** Exact: zonotope ⊆ polytope (support functions). *)
val zonotope_inside : t -> Zonotope.t -> bool

val pp : Format.formatter -> t -> unit
