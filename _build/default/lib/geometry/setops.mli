(** Set operations over flowpipes (lists of box segments): the primitives
    behind the geometric metrics of Eq. (2)/(3) and the formal reach-avoid
    checks. *)

(** Does any segment touch the target box? *)
val any_intersects : Dwv_interval.Box.t list -> Dwv_interval.Box.t -> bool

(** Sum of per-segment overlap volumes (multiplicity-counted). *)
val sum_intersection_volume : Dwv_interval.Box.t list -> Dwv_interval.Box.t -> float

(** Largest single-segment overlap volume. *)
val max_intersection_volume : Dwv_interval.Box.t list -> Dwv_interval.Box.t -> float

(** Min squared Euclidean distance from the flowpipe to the target;
    raises on an empty flowpipe. *)
val min_sq_distance : Dwv_interval.Box.t list -> Dwv_interval.Box.t -> float

(** Formal goal-reaching test: some segment entirely inside the target. *)
val any_subset : Dwv_interval.Box.t list -> Dwv_interval.Box.t -> bool

(** Interval hull of all segments; raises on an empty flowpipe. *)
val hull : Dwv_interval.Box.t list -> Dwv_interval.Box.t

(** Multiplicity-counted total volume. *)
val total_volume : Dwv_interval.Box.t list -> float
