lib/geometry/setops.ml: Dwv_interval Float List
