lib/geometry/zonotope.mli: Dwv_interval Dwv_la Dwv_util Format
