lib/geometry/polytope.ml: Array Dwv_interval Fmt Halfspace List
