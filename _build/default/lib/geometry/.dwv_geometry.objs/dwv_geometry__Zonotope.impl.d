lib/geometry/zonotope.ml: Array Dwv_interval Dwv_la Dwv_util Float Fmt
