lib/geometry/halfspace.ml: Array Dwv_interval Float Fmt Zonotope
