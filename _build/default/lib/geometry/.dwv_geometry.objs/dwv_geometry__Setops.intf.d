lib/geometry/setops.mli: Dwv_interval
