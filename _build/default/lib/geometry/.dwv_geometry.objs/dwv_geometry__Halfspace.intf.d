lib/geometry/halfspace.mli: Dwv_interval Format Zonotope
