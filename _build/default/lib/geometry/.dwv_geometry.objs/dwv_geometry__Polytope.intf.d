lib/geometry/polytope.mli: Dwv_interval Format Halfspace Zonotope
