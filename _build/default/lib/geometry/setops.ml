(* Set operations over flowpipes viewed as lists of box segments. These are
   the primitives from which the paper's geometric distance metrics
   (Eq. (2) and (3)) are assembled. *)

module Box = Dwv_interval.Box

let any_intersects segments target = List.exists (fun b -> Box.intersects b target) segments

(* Sum of per-segment overlap volumes: a smooth, conservative measure of
   how much of the flowpipe touches [target]. (Overlapping segments are
   counted multiply; see DESIGN.md "Reproduction caveats".) *)
let sum_intersection_volume segments target =
  List.fold_left (fun acc b -> acc +. Box.intersection_volume b target) 0.0 segments

let max_intersection_volume segments target =
  List.fold_left (fun acc b -> Float.max acc (Box.intersection_volume b target)) 0.0 segments

(* Minimum squared distance from any segment to the target set. *)
let min_sq_distance segments target =
  match segments with
  | [] -> invalid_arg "Setops.min_sq_distance: empty flowpipe"
  | _ -> List.fold_left (fun acc b -> Float.min acc (Box.sq_distance b target)) infinity segments

(* Does some segment land entirely inside the target? This is the formal
   goal-reaching test of Algorithm 2: exists t, reach(t) subseteq X_g. *)
let any_subset segments target = List.exists (fun b -> Box.subset b target) segments

let hull segments =
  match segments with
  | [] -> invalid_arg "Setops.hull: empty flowpipe"
  | _ -> Box.hull_list segments

(* Total volume counted with multiplicity (cheap flowpipe size proxy). *)
let total_volume segments = List.fold_left (fun acc b -> acc +. Box.volume b) 0.0 segments
