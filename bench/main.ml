(* Benchmark harness: regenerates every table and figure of the paper.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table1  -- a single section

   Sections: table1, table2, fig4, fig5, fig6, fig7, fig8, tightness,
   micro (Bechamel kernel benchmarks, one per table/figure). *)

open Harness

(* ---------------------------------------------------------------- *)
(* Section: Table 1 - ACC block                                      *)

type acc_bundle = {
  acc_g : ours_run;
  acc_w : ours_run;
  acc_svg : svg_run;
  acc_ddpg : ddpg_run;
}

let run_acc () =
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let acc_g =
    run_ours ~label:"Ours(G, Flow*-style)" ~spec:Acc.spec ~sys:Acc.sampled
      ~sim:Acc.sim_controller ~metric:Metrics.Geometric ~verify:Acc.verify
      ~init_for_seed:acc_init_for_seed ~cfg:(acc_learn_cfg 0.2) ~seeds ()
  in
  let acc_w =
    run_ours ~label:"Ours(W, Flow*-style)" ~spec:Acc.spec ~sys:Acc.sampled
      ~sim:Acc.sim_controller ~metric:Metrics.Wasserstein ~verify:Acc.verify
      ~init_for_seed:acc_init_for_seed ~cfg:(acc_learn_cfg 0.4) ~seeds ()
  in
  (* baselines train and evaluate on the normalized copy of the plant
     (affine bijection: SC/GR transfer exactly; see Harness) *)
  let acc_svg =
    run_svg ~label:"SVG" ~spec:acc_normalized_spec ~sys:acc_normalized_sys
      ~cfg:{ Svg.default_config with horizon = Acc.spec.steps; max_steps = 400; lr = 3e-3 }
      ~policy_sizes:[ 2; 16; 1 ]
      ~policy_acts:[ Activation.Tanh; Activation.Tanh ]
      ~output_scale:40.0 ~verify_net:acc_verify_net ~seed:3 ()
  in
  let acc_ddpg =
    run_ddpg ~label:"DDPG" ~spec:acc_normalized_spec ~sys:acc_normalized_sys
      ~cfg:
        { Ddpg.default_config with
          max_episodes = 300; steps_per_episode = Acc.spec.steps; warmup_steps = 500;
          eval_every = 25; noise_sigma = 0.2 }
      ~actor_sizes:[ 2; 16; 1 ] ~output_scale:40.0 ~verify_net:acc_verify_net ~seed:3 ()
  in
  { acc_g; acc_w; acc_svg; acc_ddpg }

let print_table1_acc b =
  let t = Table.create table1_header in
  pp_row_into t b.acc_svg.row;
  pp_row_into t b.acc_ddpg.row;
  pp_row_into t b.acc_w.row;
  pp_row_into t b.acc_g.row;
  Fmt.pr "--- Table 1 / ACC, linear controller ---@.%s@." (Table.render t)

(* ---------------------------------------------------------------- *)
(* Section: Table 1 - NN blocks (oscillator, 3-D system)             *)

type nn_bundle = {
  ours : (string * ours_run) list;   (* (label, run) per metric x tool *)
  nn_svg : svg_run;
  nn_ddpg : ddpg_run;
}

let polar_verify_net ~system net output_scale =
  match system with
  | `Osc ->
    Some
      (Oscillator.verify ~method_:Dwv_reach.Verifier.Polar ~slots:Oscillator.tight_slots
         (Controller.net ~output_scale net))
  | `Threed ->
    Some
      (Threed.verify ~method_:Dwv_reach.Verifier.Polar ~slots:Threed.tight_slots
         (Controller.net ~output_scale net))

let run_oscillator () =
  let seeds = [ 1; 2 ] in
  let run label metric method_ =
    ( label,
      run_ours ~label ~spec:Oscillator.spec ~sys:Oscillator.sampled
        ~sim:Oscillator.sim_controller ~metric
        ~verify:(Oscillator.verify ~method_)
        ~init_for_seed:osc_init_for_seed ~cfg:nn_learn_cfg ~seeds () )
  in
  let ours =
    [
      run "Ours(W, ReachNN-style)" Metrics.Wasserstein reachnn_osc;
      run "Ours(G, ReachNN-style)" Metrics.Geometric reachnn_osc;
      run "Ours(W, POLAR-style)" Metrics.Wasserstein Dwv_reach.Verifier.Polar;
      run "Ours(G, POLAR-style)" Metrics.Geometric Dwv_reach.Verifier.Polar;
    ]
  in
  let nn_svg =
    run_svg ~label:"SVG" ~spec:Oscillator.spec ~sys:Oscillator.sampled
      ~cfg:
        { Svg.default_config with
          horizon = Oscillator.spec.steps; max_steps = 400; lr = 5e-3 }
      ~policy_sizes:[ 2; 24; 24; 1 ]
      ~policy_acts:[ Activation.Tanh; Activation.Tanh; Activation.Tanh ]
      ~output_scale:Oscillator.output_scale
      ~verify_net:(fun n s -> polar_verify_net ~system:`Osc n s)
      ~seed:3 ()
  in
  let nn_ddpg =
    run_ddpg ~label:"DDPG" ~spec:Oscillator.spec ~sys:Oscillator.sampled
      ~cfg:
        { Ddpg.default_config with
          max_episodes = 500; steps_per_episode = Oscillator.spec.steps;
          warmup_steps = 300; eval_every = 25 }
      ~actor_sizes:[ 2; 24; 24; 1 ] ~output_scale:Oscillator.output_scale
      ~verify_net:(fun n s -> polar_verify_net ~system:`Osc n s)
      ~seed:3 ()
  in
  { ours; nn_svg; nn_ddpg }

let run_threed () =
  let seeds = [ 1; 2 ] in
  let run label metric method_ =
    ( label,
      run_ours ~label ~spec:Threed.spec ~sys:Threed.sampled ~sim:Threed.sim_controller
        ~metric
        ~verify:(Threed.verify ~method_)
        ~init_for_seed:threed_init_for_seed ~cfg:nn_learn_cfg ~seeds () )
  in
  let ours =
    [
      run "Ours(W, ReachNN-style)" Metrics.Wasserstein reachnn_3d;
      run "Ours(G, ReachNN-style)" Metrics.Geometric reachnn_3d;
      run "Ours(W, POLAR-style)" Metrics.Wasserstein Dwv_reach.Verifier.Polar;
      run "Ours(G, POLAR-style)" Metrics.Geometric Dwv_reach.Verifier.Polar;
    ]
  in
  let nn_svg =
    run_svg ~label:"SVG" ~spec:Threed.spec ~sys:Threed.sampled
      ~cfg:{ Svg.default_config with horizon = Threed.spec.steps; max_steps = 400; lr = 5e-3 }
      ~policy_sizes:[ 3; 24; 24; 1 ]
      ~policy_acts:[ Activation.Tanh; Activation.Tanh; Activation.Tanh ]
      ~output_scale:Threed.output_scale
      ~verify_net:(fun n s -> polar_verify_net ~system:`Threed n s)
      ~seed:3 ()
  in
  let nn_ddpg =
    run_ddpg ~label:"DDPG" ~spec:Threed.spec ~sys:Threed.sampled
      ~cfg:
        { Ddpg.default_config with
          max_episodes = 500; steps_per_episode = Threed.spec.steps; warmup_steps = 300;
          eval_every = 25 }
      ~actor_sizes:[ 3; 24; 24; 1 ] ~output_scale:Threed.output_scale
      ~verify_net:(fun n s -> polar_verify_net ~system:`Threed n s)
      ~seed:3 ()
  in
  { ours; nn_svg; nn_ddpg }

let print_table1_nn ~title b =
  let t = Table.create table1_header in
  pp_row_into t b.nn_svg.row;
  pp_row_into t b.nn_ddpg.row;
  List.iter (fun ((_, r) : string * ours_run) -> pp_row_into t r.row) b.ours;
  Fmt.pr "--- Table 1 / %s, NN controller ---@.%s@." title (Table.render t)

(* ---------------------------------------------------------------- *)
(* Section: Table 2 - verifier runtime per learning iteration        *)

let time_calls ~n f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int n

let print_table2 () =
  let t = Table.create [ "cell"; "per verifier call"; "per learning iteration" ] in
  let osc_init = osc_init_for_seed 1 and threed_init = threed_init_for_seed 1 in
  (* an SPSA-2 iteration issues 2*2 perturbed calls + 1 verdict call *)
  let calls_per_nn_iter = 5.0 in
  (* an ACC coordinate iteration issues 2*3 + 1 calls *)
  let calls_per_acc_iter = 7.0 in
  let add label per_call factor =
    Table.add_row t
      [ label; Fmt.str "%.3fs" per_call; Fmt.str "%.3fs" (per_call *. factor) ]
  in
  let acc = time_calls ~n:20 (fun () -> Acc.verify (acc_init_for_seed 1)) in
  add "ACC (Flow*-style)" acc calls_per_acc_iter;
  let osc_rnn =
    time_calls ~n:2 (fun () -> Oscillator.verify ~method_:reachnn_osc osc_init)
  in
  add "Oscillator (ReachNN-style)" osc_rnn calls_per_nn_iter;
  let osc_polar =
    time_calls ~n:2 (fun () -> Oscillator.verify ~method_:Dwv_reach.Verifier.Polar osc_init)
  in
  add "Oscillator (POLAR-style)" osc_polar calls_per_nn_iter;
  let td_rnn = time_calls ~n:2 (fun () -> Threed.verify ~method_:reachnn_3d threed_init) in
  add "3D (ReachNN-style)" td_rnn calls_per_nn_iter;
  let td_polar =
    time_calls ~n:2 (fun () -> Threed.verify ~method_:Dwv_reach.Verifier.Polar threed_init)
  in
  add "3D (POLAR-style)" td_polar calls_per_nn_iter;
  Fmt.pr "--- Table 2: average verifier runtime ---@.%s@." (Table.render t)

(* ---------------------------------------------------------------- *)
(* Figures: learning curves and reachable-set corridors as series.   *)

let print_history ~title (r : Learner.result) =
  Fmt.pr "--- %s ---@." title;
  Fmt.pr "iter  safety-score  goal-score  objective  verdict@.";
  List.iter
    (fun (h : Learner.history_point) ->
      Fmt.pr "%4d  %12.5g  %10.5g  %9.5g  %s@." h.Learner.iter h.Learner.scores.Metrics.safety
        h.Learner.scores.Metrics.goal h.Learner.objective
        (Dwv_reach.Verifier.verdict_to_string h.Learner.verdict))
    r.Learner.history;
  Fmt.pr "@."

let print_corridor ~label ?(every = 6) pipe =
  Fmt.pr "%s%s:@." label
    (if Dwv_reach.Flowpipe.diverged pipe then "  [DIVERGED - the paper's NAN case]" else "");
  List.iteri
    (fun k box ->
      if k mod every = 0 then
        Fmt.pr "  step %3d  %a@." k Dwv_interval.Box.pp box)
    (Dwv_reach.Flowpipe.step_boxes pipe);
  Fmt.pr "  final     %a@." Dwv_interval.Box.pp (Dwv_reach.Flowpipe.final_box pipe)

let print_fig4 (b : acc_bundle) =
  print_history ~title:"Fig. 4: learning with geometric metric, ACC (d_u / d_g per iteration)"
    (List.hd b.acc_g.results)

let print_fig5 (b : nn_bundle) =
  match List.assoc_opt "Ours(W, POLAR-style)" b.ours with
  | Some r ->
    print_history ~title:"Fig. 5: learning with Wasserstein metric, oscillator"
      (List.hd r.results)
  | None -> ()

let acc_display_clip =
  Dwv_interval.Box.make ~lo:[| 110.0; 30.0 |] ~hi:[| 170.0; 60.0 |]

let print_fig6 (b : acc_bundle) =
  Fmt.pr "--- Fig. 6: ACC reachable corridors (goal s in [145,155], unsafe s <= 120) ---@.";
  let svg name pipe =
    save_corridor_svg ~name ~title:("Fig 6: ACC " ^ name) ~spec:Acc.spec
      ~clip:acc_display_clip pipe
  in
  print_corridor ~label:"Ours(G)" ~every:20 (List.hd b.acc_g.results).Learner.pipe;
  svg "fig6_ours_g" (List.hd b.acc_g.results).Learner.pipe;
  print_corridor ~label:"Ours(W)" ~every:20 (List.hd b.acc_w.results).Learner.pipe;
  svg "fig6_ours_w" (List.hd b.acc_w.results).Learner.pipe;
  (match b.acc_svg.pipe with
  | Some p ->
    print_corridor ~label:"SVG (linearized)" ~every:20 p;
    svg "fig6_svg" p
  | None -> ());
  (match b.acc_ddpg.pipe with
  | Some p ->
    print_corridor ~label:"DDPG (linearized)" ~every:20 p;
    svg "fig6_ddpg" p
  | None -> ());
  Fmt.pr "@."

let print_fig7 (b : nn_bundle) =
  Fmt.pr "--- Fig. 7: oscillator reachable corridors and X_I ---@.";
  (match List.assoc_opt "Ours(G, POLAR-style)" b.ours with
  | Some r ->
    let first = List.hd r.results in
    print_corridor ~label:"Ours(G, POLAR-style)" first.Learner.pipe;
    save_corridor_svg ~name:"fig7_ours_g_polar" ~title:"Fig 7: oscillator Ours(G, POLAR)"
      ~spec:Oscillator.spec first.Learner.pipe;
    (* Algorithm 2 on the learned controller *)
    let xi =
      Initset.search ~max_depth:2
        ~verify:(fun cell ->
          Oscillator.verify_from ~method_:Dwv_reach.Verifier.Polar cell
            first.Learner.controller)
        ~goal:Oscillator.spec.Spec.goal ~x0:Oscillator.spec.Spec.x0 ()
    in
    Fmt.pr "%a@." Initset.pp_result xi
  | None -> ());
  (match b.nn_svg.pipe with
  | Some p -> print_corridor ~label:"SVG (POLAR-style verification)" p
  | None -> ());
  (match b.nn_ddpg.pipe with
  | Some p -> print_corridor ~label:"DDPG (POLAR-style verification)" p
  | None -> ());
  Fmt.pr "@."

let print_fig8 (b : nn_bundle) =
  Fmt.pr "--- Fig. 8: 3-D system reachable corridors ---@.";
  (match List.assoc_opt "Ours(G, POLAR-style)" b.ours with
  | Some r ->
    print_corridor ~label:"Ours(G, POLAR-style)" ~every:3 (List.hd r.results).Learner.pipe;
    save_corridor_svg ~name:"fig8_ours_g_polar" ~title:"Fig 8: 3-D system Ours(G, POLAR)"
      ~spec:Threed.spec ~dims:(0, 1) (List.hd r.results).Learner.pipe
  | None -> ());
  (match List.assoc_opt "Ours(W, POLAR-style)" b.ours with
  | Some r -> print_corridor ~label:"Ours(W, POLAR-style)" ~every:3 (List.hd r.results).Learner.pipe
  | None -> ());
  (match b.nn_svg.pipe with
  | Some p -> print_corridor ~label:"SVG (POLAR-style verification)" ~every:3 p
  | None -> ());
  (match b.nn_ddpg.pipe with
  | Some p -> print_corridor ~label:"DDPG (POLAR-style verification)" ~every:3 p
  | None -> ());
  Fmt.pr "@."

(* ---------------------------------------------------------------- *)
(* Section: verification-tightness ablation (end of Sec. 4)          *)

let print_tightness () =
  Fmt.pr "--- Tightness ablation: ReachNN-style Bernstein degree on the oscillator ---@.";
  let init = osc_init_for_seed 1 in
  let t = Table.create [ "Bernstein degree"; "per call"; "final width"; "CI"; "verdict" ] in
  List.iter
    (fun deg ->
      let method_ =
        Dwv_reach.Verifier.Bernstein { degrees = [| deg; deg |]; samples_per_dim = 24 }
      in
      let per_call = time_calls ~n:1 (fun () -> Oscillator.verify ~method_ init) in
      let pipe = Oscillator.verify ~method_ init in
      let r =
        Learner.learn { nn_learn_cfg with Learner.max_iters = 12; seed = 1 }
          ~metric:Metrics.Geometric ~spec:Oscillator.spec ~verify:(Oscillator.verify ~method_)
          ~init
      in
      Table.add_row t
        [ string_of_int deg; Fmt.str "%.2fs" per_call;
          (if Dwv_reach.Flowpipe.diverged pipe then "diverged"
           else Fmt.str "%.4f" (Dwv_reach.Flowpipe.final_width pipe));
          string_of_int r.Learner.iterations;
          Dwv_reach.Verifier.verdict_to_string r.Learner.verdict ])
    [ 1; 2; 3 ];
  Fmt.pr "%s@." (Table.render t);
  (* the other two tightness knobs: the symbolic-remainder budget of the
     POLAR-style verifier, and the no-symbols (interval-only) baseline
     that exhibits the full wrapping effect *)
  Fmt.pr "--- Tightness ablation: symbolic-remainder budget (POLAR-style) ---@.";
  let t2 = Table.create [ "configuration"; "per call"; "final width" ] in
  List.iter
    (fun slots ->
      let per_call =
        time_calls ~n:1 (fun () ->
            Oscillator.verify ~method_:Dwv_reach.Verifier.Polar ~slots init)
      in
      let pipe = Oscillator.verify ~method_:Dwv_reach.Verifier.Polar ~slots init in
      Table.add_row t2
        [ Fmt.str "%d slots" slots; Fmt.str "%.2fs" per_call;
          (if Dwv_reach.Flowpipe.diverged pipe then "diverged"
           else Fmt.str "%.4f" (Dwv_reach.Flowpipe.final_width pipe)) ])
    [ 4; 6; 8 ];
  (match init with
  | Controller.Net { net; output_scale } ->
    let per_call =
      time_calls ~n:1 (fun () ->
          Dwv_reach.Interval_reach.nn_flowpipe ~order:3 ~f:Oscillator.dynamics ~delta:0.1
            ~steps:Oscillator.spec.Spec.steps ~net ~output_scale
            ~x0:Oscillator.spec.Spec.x0 ())
    in
    let pipe =
      Dwv_reach.Interval_reach.nn_flowpipe ~order:3 ~f:Oscillator.dynamics ~delta:0.1
        ~steps:Oscillator.spec.Spec.steps ~net ~output_scale ~x0:Oscillator.spec.Spec.x0 ()
    in
    Table.add_row t2
      [ "interval-only (no symbols)"; Fmt.str "%.2fs" per_call;
        (if Dwv_reach.Flowpipe.diverged pipe then
           Fmt.str "diverged at step %d (wrapping effect)" (Dwv_reach.Flowpipe.steps pipe)
         else Fmt.str "%.4f" (Dwv_reach.Flowpipe.final_width pipe)) ]
  | Controller.Linear _ -> ());
  Fmt.pr "%s@." (Table.render t2)

(* ---------------------------------------------------------------- *)
(* Section: Bechamel kernel microbenchmarks, one per table/figure.   *)

let micro_tests () =
  let open Bechamel in
  let acc_pipe = Acc.verify (acc_init_for_seed 1) in
  let osc_init = osc_init_for_seed 1 in
  let osc_tms = Dwv_taylor.Tm_vec.of_box ~total_vars:8 ~order:3 Oscillator.spec.Spec.x0 in
  let osc_net, osc_scale =
    match osc_init with
    | Controller.Net { net; output_scale } -> (net, output_scale)
    | _ -> assert false
  in
  let lie3d = Dwv_reach.Taylor_reach.lie_table ~f:Threed.dynamics ~order:3 in
  let tms3d = Dwv_taylor.Tm_vec.of_box ~total_vars:9 ~order:3 Threed.spec.Spec.x0 in
  let u3d = [| Dwv_taylor.Taylor_model.const ~nvars:9 ~order:3 0.5 |] in
  Test.make_grouped ~name:"dwv"
    [
      (* Table 1 kernel: metric evaluation over a full flowpipe *)
      Test.make ~name:"table1/metric-scores"
        (Staged.stage (fun () ->
             ignore
               (Metrics.scores Metrics.Geometric ~unsafe:Acc.spec.Spec.unsafe
                  ~goal:Acc.spec.Spec.goal acc_pipe)));
      (* Table 2 kernel: one Flow*-style verifier call *)
      Test.make ~name:"table2/acc-verifier-call"
        (Staged.stage (fun () -> ignore (Acc.verify (acc_init_for_seed 1))));
      (* Fig. 4 kernel: one central-difference probe on the ACC design *)
      Test.make ~name:"fig4/gradient-probe"
        (Staged.stage (fun () ->
             let p = Acc.verify (Acc.controller_of_theta [| 0.101; -0.5; 0.0 |]) in
             let m = Acc.verify (Acc.controller_of_theta [| 0.099; -0.5; 0.0 |]) in
             ignore
               ( Metrics.scores Metrics.Geometric ~unsafe:Acc.spec.Spec.unsafe
                   ~goal:Acc.spec.Spec.goal p,
                 Metrics.scores Metrics.Geometric ~unsafe:Acc.spec.Spec.unsafe
                   ~goal:Acc.spec.Spec.goal m )));
      (* Fig. 5 kernel: Wasserstein distance between boxes *)
      Test.make ~name:"fig5/wasserstein-w2"
        (Staged.stage (fun () ->
             ignore
               (Dwv_transport.Box_w2.w2_containment
                  (Dwv_reach.Flowpipe.final_box acc_pipe)
                  Acc.spec.Spec.goal)));
      (* Fig. 6 kernel: one zonotope image under the closed-loop map *)
      Test.make ~name:"fig6/zonotope-step"
        (Staged.stage
           (let z = Dwv_geometry.Zonotope.of_box (Acc.augment_box Acc.spec.Spec.x0) in
            let ad, bd = Dwv_reach.Linear_reach.discretize ~delta:0.1 Acc.lti_augmented in
            let acl =
              Dwv_la.Mat.add ad (Dwv_la.Mat.matmul bd (Dwv_la.Mat.of_rows [ [| 0.6; -2.4; 0.0 |] ]))
            in
            fun () -> ignore (Dwv_geometry.Zonotope.linear_map acl z)));
      (* Fig. 7 kernel: POLAR-style abstraction of the NN over the state *)
      Test.make ~name:"fig7/polar-nn-abstraction"
        (Staged.stage (fun () ->
             ignore
               (Dwv_reach.Nn_reach_taylor.control_models ~net:osc_net ~output_scale:osc_scale
                  osc_tms)));
      (* Fig. 8 kernel: one validated Taylor step of the 3-D system *)
      Test.make ~name:"fig8/taylor-step-3d"
        (Staged.stage (fun () ->
             ignore (Dwv_reach.Taylor_reach.step ~f:Threed.dynamics ~lie:lie3d ~delta:0.2 tms3d u3d)));
      (* tightness kernel: one Bernstein abstraction of the NN *)
      Test.make ~name:"tightness/bernstein-abstraction"
        (Staged.stage (fun () ->
             ignore
               (Dwv_reach.Nn_reach_bernstein.control_models ~net:osc_net
                  ~output_scale:osc_scale
                  ~config:(Dwv_reach.Nn_reach_bernstein.default_config ~n:2)
                  osc_tms)));
    ]

let print_micro () =
  let open Bechamel in
  let open Toolkit in
  Fmt.pr "--- Bechamel kernel microbenchmarks (one per table/figure) ---@.";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Table.create [ "kernel"; "time per run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let ns =
        match Analyze.OLS.estimates est with Some [ v ] -> v | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let human =
        if ns > 1e9 then Fmt.str "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Fmt.str "%.2f us" (ns /. 1e3)
        else Fmt.str "%.0f ns" ns
      in
      Table.add_row t [ name; human ])
    (List.sort compare !rows);
  Fmt.pr "%s@." (Table.render t)

(* ---------------------------------------------------------------- *)
(* Section: parallel fan-out — determinism check and speedup baseline
   (BENCH_parallel.json).                                             *)

module Pool = Dwv_parallel.Pool

type pworkload = {
  p_name : string;
  p_seq : float;     (* wall seconds at domains = 1 *)
  p_par : float;     (* wall seconds at the requested domain count *)
  p_match : bool;    (* bit-identical results at both domain counts? *)
  p_detail : string;
  p_counters_seq : (string * int) list;  (* Counters snapshot of the seq run *)
  p_counters_par : (string * int) list;  (* ... and of the par run *)
  p_phases_seq : (string * float) list;  (* Phases breakdown of the seq run *)
  p_minor_words_seq : float;  (* Gc minor words of the seq run (informational) *)
}

(* Algorithm 1 on ACC: 3 coordinate probe pairs fan out per iteration. *)
let parallel_learn domains =
  Pool.with_pool ~domains (fun pool ->
      Learner.learn ~pool
        { (acc_learn_cfg 0.2) with Learner.max_iters = 40; seed = 1 }
        ~metric:Metrics.Geometric ~spec:Acc.spec ~verify:Acc.verify
        ~init:(acc_init_for_seed 1))

(* Algorithm 2 on the oscillator warm start: frontier cells fan out per
   refinement level. The goal is shrunk to 40% width so the top-level
   cell fails and the search actually refines (the full goal certifies
   X_0 in one call, leaving nothing to parallelize). The verifier is the
   warm-threading robust wrapper with the pool passed through, so this
   workload exercises the whole incremental stack: parent-to-child
   Picard warm starts (warm_hits counters) plus intra-call per-dimension
   parallelism inside each flowpipe step. *)
let parallel_initset domains =
  let c = osc_init_for_seed 1 in
  let g = Oscillator.spec.Spec.goal in
  let lo = Box.lo g and hi = Box.hi g in
  let goal =
    Box.make
      ~lo:(Array.mapi (fun i l -> l +. (0.3 *. (hi.(i) -. l))) lo)
      ~hi:(Array.mapi (fun i h -> h -. (0.3 *. (h -. lo.(i)))) hi)
  in
  Pool.with_pool ~domains (fun pool ->
      Initset.search ~max_depth:2 ~pool
        ~verify_warm:(fun ?warm cell ->
          Oscillator.verify_warm_from ~method_:Dwv_reach.Verifier.Polar ~pool ?warm
            cell c)
        ~verify:(fun cell ->
          Oscillator.verify_from ~method_:Dwv_reach.Verifier.Polar cell c)
        ~goal ~x0:Oscillator.spec.Spec.x0 ())

(* Monte-Carlo rates on ACC: rollouts shard across domains. *)
let parallel_rates domains =
  let c = Acc.sim_controller (acc_init_for_seed 1) in
  Pool.with_pool ~domains (fun pool ->
      Evaluate.rates ~n:2000 ~pool ~rng:(Rng.create 2024) ~sys:Acc.sampled
        ~controller:c ~spec:Acc.spec ())

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* Gate rule shared by the parallel and hotpath sections: a workload's
   parallel path may not be slower than its sequential path beyond 10%
   plus 50ms of measurement slack. With the pool clamped to hardware
   cores this must hold even on a single-core runner, where the
   "parallel" path degenerates to the sequential one. *)
let gate_rule = "par <= 1.10*seq + 0.05s per workload"

let par_not_slower w = w.p_par <= (w.p_seq *. 1.10) +. 0.05

let write_parallel_json ~domains ~aggregate_speedup ~all_match ~gate_passed workloads
    path =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n  \"domains\": %d,\n  \"workloads\": [\n" domains;
  List.iteri
    (fun i w ->
      Printf.bprintf b
        "    {\"name\": \"%s\", \"seq_seconds\": %.6f, \"par_seconds\": %.6f, \
         \"speedup\": %.3f, \"match\": %b, \"detail\": \"%s\"}%s\n"
        (json_escape w.p_name) w.p_seq w.p_par
        (if w.p_par > 0.0 then w.p_seq /. w.p_par else Float.nan)
        w.p_match (json_escape w.p_detail)
        (if i = List.length workloads - 1 then "" else ","))
    workloads;
  Printf.bprintf b
    "  ],\n  \"aggregate_speedup\": %.3f,\n  \"all_match\": %b,\n  \"gate\": \
     {\"rule\": \"%s\", \"passed\": %b}\n}\n"
    aggregate_speedup all_match (json_escape gate_rule) gate_passed;
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let print_parallel ~domains () =
  Fmt.pr "--- Parallel fan-out: determinism + speedup at %d domains ---@." domains;
  let workload name detail run equal =
    let seq, t_seq = timed (fun () -> run 1) in
    let par, t_par = timed (fun () -> run domains) in
    let ok = equal seq par in
    Fmt.pr "%-12s  seq %.2fs  par %.2fs  speedup %.2fx  %s@." name t_seq t_par
      (if t_par > 0.0 then t_seq /. t_par else Float.nan)
      (if ok then "identical" else "MISMATCH");
    { p_name = name; p_seq = t_seq; p_par = t_par; p_match = ok;
      p_detail = detail (if ok then seq else par);
      p_counters_seq = []; p_counters_par = [];
      p_phases_seq = []; p_minor_words_seq = 0.0 }
  in
  let learn =
    workload "learn"
      (fun (r : Learner.result) ->
        Fmt.str "acc coordinate, CI=%d, %d calls, %s" r.Learner.iterations
          r.Learner.verifier_calls
          (Dwv_reach.Verifier.verdict_to_string r.Learner.verdict))
      parallel_learn
      (fun (a : Learner.result) (b : Learner.result) ->
        Controller.params a.Learner.controller = Controller.params b.Learner.controller
        && a.Learner.iterations = b.Learner.iterations
        && a.Learner.verifier_calls = b.Learner.verifier_calls
        && a.Learner.verdict = b.Learner.verdict)
  in
  let initset =
    workload "initset"
      (fun (r : Initset.result) ->
        Fmt.str "oscillator depth 2, coverage=%.4f, %d calls" r.Initset.coverage
          r.Initset.verifier_calls)
      parallel_initset
      (fun (a : Initset.result) (b : Initset.result) ->
        a.Initset.verified = b.Initset.verified
        && a.Initset.coverage = b.Initset.coverage
        && a.Initset.verifier_calls = b.Initset.verifier_calls)
  in
  let rates =
    workload "rates"
      (fun (r : Evaluate.rates) ->
        Fmt.str "acc n=2000, SC=%.2f%%, GR=%.2f%%" r.Evaluate.safe_percent
          r.Evaluate.goal_percent)
      parallel_rates
      (fun (a : Evaluate.rates) (b : Evaluate.rates) ->
        a.Evaluate.safe_percent = b.Evaluate.safe_percent
        && a.Evaluate.goal_percent = b.Evaluate.goal_percent)
  in
  let workloads = [ learn; initset; rates ] in
  let total p = List.fold_left (fun acc w -> acc +. p w) 0.0 workloads in
  let aggregate_speedup =
    let par = total (fun w -> w.p_par) in
    if par > 0.0 then total (fun w -> w.p_seq) /. par else Float.nan
  in
  let all_match = List.for_all (fun w -> w.p_match) workloads in
  let gate_passed = List.for_all par_not_slower workloads in
  write_parallel_json ~domains ~aggregate_speedup ~all_match ~gate_passed workloads
    "BENCH_parallel.json";
  Fmt.pr "aggregate speedup %.2fx, all results %s, gate %s [BENCH_parallel.json written]@."
    aggregate_speedup
    (if all_match then "identical" else "MISMATCHED")
    (if gate_passed then "passed" else "FAILED (parallel slower than sequential)");
  if not (all_match && gate_passed) then exit 1

(* ---------------------------------------------------------------- *)
(* Section: hotpath — the regression-gated bench trajectory
   (BENCH_hotpath.json). The same three fan-out workloads as [parallel],
   but timed min-of-reps for the short ones, compared against the
   committed baseline file, and gated hard: the job fails when any
   parallel path is slower than its sequential path, when any seq/par
   result pair is not bit-identical, or when the aggregate speedup
   regresses more than 10% against a baseline recorded on the same core
   count (baselines from different hardware are reported but not
   compared). *)

(* Minimal field scanner so the committed baseline can be read back
   without a JSON dependency: finds ["field":] and parses the number
   after it. *)
let scan_json_number content field =
  let needle = "\"" ^ field ^ "\":" in
  let len = String.length content and nlen = String.length needle in
  let rec find i =
    if i + nlen > len then None
    else if String.sub content i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let j = ref start in
    while !j < len && content.[!j] = ' ' do incr j done;
    let k = ref !j in
    while
      !k < len
      && (match content.[!k] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' -> true
         | _ -> false)
    do
      incr k
    done;
    if !k > !j then float_of_string_opt (String.sub content !j (!k - !j)) else None

let read_hotpath_baseline path =
  match In_channel.with_open_text path In_channel.input_all with
  | content ->
    (scan_json_number content "cores", scan_json_number content "aggregate_speedup")
  | exception Sys_error _ -> (None, None)

(* Min-of-reps for sub-2s workloads: the first run also pays the
   one-time per-domain costs (DLS memo fills, Lie-table builds), which a
   steady-state throughput number should not include. The global event
   counters, the phase clocks and the minor-allocation meter are reset
   before and read after the FIRST run only, so the reported counts
   describe exactly one deterministic execution. Minor words are only
   meaningful on the sequential path (arg = 1): pool workers allocate on
   their own domains, invisible to this domain's Gc meter. *)
let adaptive_timed run arg =
  Dwv_util.Counters.reset ();
  Dwv_util.Phases.reset ();
  let mw0 = Gc.minor_words () in
  let r, t0 = timed (fun () -> run arg) in
  let minor_words = Gc.minor_words () -. mw0 in
  let counters = Dwv_util.Counters.snapshot () in
  let phases = Dwv_util.Phases.snapshot () in
  if t0 >= 2.0 then (r, t0, counters, phases, minor_words)
  else begin
    let best = ref t0 in
    for _ = 1 to 2 do
      let _, t = timed (fun () -> run arg) in
      if t < !best then best := t
    done;
    (r, !best, counters, phases, minor_words)
  end

let bprint_counters b counters =
  Printf.bprintf b "{";
  List.iteri
    (fun i (k, v) ->
      Printf.bprintf b "%s\"%s\": %d" (if i = 0 then "" else ", ") (json_escape k) v)
    counters;
  Printf.bprintf b "}"

(* Fixed pre-optimization reference for the initset workload: the
   sequential wall time committed before the sparse-polynomial kernel
   rewrite and the incremental re-verification work landed. The hotpath
   gate requires the current sequential time to beat it by 3x on the
   same class of runner (the measurement is sequential, so it does not
   depend on the core count). *)
let initset_reference_seq = 12.056345
let initset_reference_required = 3.0

let bprint_phases b phases =
  Printf.bprintf b "{";
  List.iteri
    (fun i (k, v) ->
      Printf.bprintf b "%s\"%s\": %.6f" (if i = 0 then "" else ", ") (json_escape k) v)
    phases;
  Printf.bprintf b "}"

let write_hotpath_json ~domains_requested ~cores ~effective_domains ~aggregate_speedup
    ~all_match ~slowdown_ok ~baseline_cores ~baseline_aggregate ~baseline_ok
    ~counters_ok ~reference_speedup ~reference_ok ~passed workloads path =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "{\n  \"version\": 2,\n  \"domains_requested\": %d,\n  \"cores\": %d,\n  \
     \"effective_domains\": %d,\n  \"workloads\": [\n"
    domains_requested cores effective_domains;
  List.iteri
    (fun i w ->
      Printf.bprintf b
        "    {\"name\": \"%s\", \"seq_seconds\": %.6f, \"par_seconds\": %.6f, \
         \"speedup\": %.3f, \"match\": %b, \"detail\": \"%s\",\n     \
         \"counters_seq\": "
        (json_escape w.p_name) w.p_seq w.p_par
        (if w.p_par > 0.0 then w.p_seq /. w.p_par else Float.nan)
        w.p_match (json_escape w.p_detail);
      bprint_counters b w.p_counters_seq;
      Printf.bprintf b ", \"counters_par\": ";
      bprint_counters b w.p_counters_par;
      Printf.bprintf b ", \"counters_match\": %b,\n     \"phases_seq\": "
        (w.p_counters_seq = w.p_counters_par);
      bprint_phases b w.p_phases_seq;
      Printf.bprintf b ", \"minor_words_seq\": %.0f}%s\n" w.p_minor_words_seq
        (if i = List.length workloads - 1 then "" else ","))
    workloads;
  Printf.bprintf b "  ],\n  \"aggregate_speedup\": %.3f,\n  \"all_match\": %b,\n"
    aggregate_speedup all_match;
  Printf.bprintf b
    "  \"reference\": {\"workload\": \"initset\", \"reference_seq_seconds\": %.6f, \
     \"speedup_vs_reference\": %.3f, \"required\": %.1f, \"ok\": %b},\n"
    initset_reference_seq reference_speedup initset_reference_required reference_ok;
  Printf.bprintf b "  \"gate\": {\n    \"rule\": \"%s\",\n    \"slowdown_ok\": %b,\n"
    (json_escape gate_rule) slowdown_ok;
  (match (baseline_cores, baseline_aggregate) with
  | Some bc, Some ba ->
    Printf.bprintf b
      "    \"baseline_cores\": %d,\n    \"baseline_aggregate\": %.3f,\n" bc ba
  | _ -> ());
  Printf.bprintf b
    "    \"baseline_ok\": %b,\n    \"counters_ok\": %b,\n    \"reference_ok\": %b,\n    \
     \"passed\": %b\n  }\n}\n"
    baseline_ok counters_ok reference_ok passed;
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let print_hotpath ~domains () =
  let cores = Pool.default_domains () in
  let effective = min domains cores in
  Fmt.pr "--- Hot path: seq vs par at %d domains (%d cores -> %d effective) ---@."
    domains cores effective;
  let baseline_path = "BENCH_hotpath.json" in
  (* read the committed baseline before this run overwrites it *)
  let baseline_cores_f, baseline_aggregate = read_hotpath_baseline baseline_path in
  let baseline_cores = Option.map int_of_float baseline_cores_f in
  let workload name detail run equal =
    let seq, t_seq, c_seq, phases_seq, mw_seq = adaptive_timed run 1 in
    let par, t_par, c_par, _, _ = adaptive_timed run domains in
    let ok = equal seq par && c_seq = c_par in
    Fmt.pr "%-12s  seq %.2fs  par %.2fs  speedup %.2fx  %s@." name t_seq t_par
      (if t_par > 0.0 then t_seq /. t_par else Float.nan)
      (if ok then "identical" else "MISMATCH");
    { p_name = name; p_seq = t_seq; p_par = t_par; p_match = ok;
      p_detail = detail (if ok then seq else par);
      p_counters_seq = c_seq; p_counters_par = c_par;
      p_phases_seq = phases_seq; p_minor_words_seq = mw_seq }
  in
  let learn =
    workload "learn"
      (fun (r : Learner.result) ->
        Fmt.str "acc coordinate, CI=%d, %d calls, %s" r.Learner.iterations
          r.Learner.verifier_calls
          (Dwv_reach.Verifier.verdict_to_string r.Learner.verdict))
      parallel_learn
      (fun (a : Learner.result) (b : Learner.result) ->
        Controller.params a.Learner.controller = Controller.params b.Learner.controller
        && a.Learner.iterations = b.Learner.iterations
        && a.Learner.verifier_calls = b.Learner.verifier_calls
        && a.Learner.verdict = b.Learner.verdict)
  in
  let initset =
    workload "initset"
      (fun (r : Initset.result) ->
        Fmt.str "oscillator depth 2, coverage=%.4f, %d calls" r.Initset.coverage
          r.Initset.verifier_calls)
      parallel_initset
      (fun (a : Initset.result) (b : Initset.result) ->
        a.Initset.verified = b.Initset.verified
        && a.Initset.coverage = b.Initset.coverage
        && a.Initset.verifier_calls = b.Initset.verifier_calls)
  in
  let rates =
    workload "rates"
      (fun (r : Evaluate.rates) ->
        Fmt.str "acc n=2000, SC=%.2f%%, GR=%.2f%%" r.Evaluate.safe_percent
          r.Evaluate.goal_percent)
      parallel_rates
      (fun (a : Evaluate.rates) (b : Evaluate.rates) ->
        a.Evaluate.safe_percent = b.Evaluate.safe_percent
        && a.Evaluate.goal_percent = b.Evaluate.goal_percent)
  in
  let workloads = [ learn; initset; rates ] in
  let total p = List.fold_left (fun acc w -> acc +. p w) 0.0 workloads in
  let aggregate_speedup =
    let par = total (fun w -> w.p_par) in
    if par > 0.0 then total (fun w -> w.p_seq) /. par else Float.nan
  in
  let all_match = List.for_all (fun w -> w.p_match) workloads in
  let slowdown_ok = List.for_all par_not_slower workloads in
  let baseline_ok =
    match (baseline_cores, baseline_aggregate) with
    | Some bc, Some ba when bc = cores -> aggregate_speedup >= 0.9 *. ba
    | _ -> true (* first run, or baseline from different hardware *)
  in
  (* deterministic-counter ratchet: the seq snapshots are load-independent,
     so any growth against the committed history is a real regression even
     when the wall-clock gate is green *)
  let ratchet =
    Dwv_util.Trend.record ~path:"COUNTERS_history.json" ~section:"hotpath"
      (List.map (fun w -> (w.p_name, w.p_counters_seq)) workloads)
  in
  List.iter (Fmt.pr "counters ratchet: %s@.") ratchet;
  let counters_ok = ratchet = [] in
  let reference_speedup =
    if initset.p_seq > 0.0 then initset_reference_seq /. initset.p_seq else Float.nan
  in
  let reference_ok = reference_speedup >= initset_reference_required in
  Fmt.pr "initset vs %.2fs reference: %.1fx (>= %.0fx required) %s@."
    initset_reference_seq reference_speedup initset_reference_required
    (if reference_ok then "ok" else "FAILED");
  let passed = all_match && slowdown_ok && baseline_ok && counters_ok && reference_ok in
  write_hotpath_json ~domains_requested:domains ~cores ~effective_domains:effective
    ~aggregate_speedup ~all_match ~slowdown_ok ~baseline_cores ~baseline_aggregate
    ~baseline_ok ~counters_ok ~reference_speedup ~reference_ok ~passed workloads
    baseline_path;
  Fmt.pr "aggregate speedup %.2fx%s, all results %s, gate %s [BENCH_hotpath.json written]@."
    aggregate_speedup
    (match (baseline_cores, baseline_aggregate) with
    | Some bc, Some ba when bc = cores -> Fmt.str " (baseline %.2fx)" ba
    | Some bc, Some _ -> Fmt.str " (baseline on %d cores: not compared)" bc
    | _ -> " (no baseline)")
    (if all_match then "identical" else "MISMATCHED")
    (if passed then "passed"
     else if not slowdown_ok then "FAILED (parallel slower than sequential)"
     else if not baseline_ok then "FAILED (>10% regression vs baseline)"
     else if not counters_ok then
       "FAILED (deterministic-counter regression vs COUNTERS_history.json)"
     else if not reference_ok then
       "FAILED (initset not 3x faster than the committed reference)"
     else "FAILED (seq/par mismatch)");
  if not passed then exit 1

(* ---------------------------------------------------------------- *)
(* Section: certs — replayable proof certificates (BENCH_certs.json).
   Cold run: every verifier call computes fresh and deposits a
   certificate. Warm run: a new cache instance over the same directory
   replays every call from its validated certificate — zero fresh
   flowpipes — with bit-identical results. A third run re-checks the
   reject path: one stored certificate gets a single byte flipped on
   disk; the checker must reject exactly that entry, recompute it fresh,
   and still produce the cold result. *)

module Cert_cache = Dwv_cert.Cert_cache

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let cert_bench_dir =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dwv_bench_certs_%d" (Unix.getpid ()))

let certs_initset cache =
  let c = acc_init_for_seed 1 in
  Initset.search ~max_depth:3
    ~verify:(fun cell -> (Acc.verify_robust_from ?cache cell c).Verifier.pipe)
    ~goal:Acc.spec.Spec.goal ~x0:Acc.spec.Spec.x0 ()

let certs_learn cache =
  Learner.learn
    { (acc_learn_cfg 0.2) with Learner.max_iters = 8; seed = 1 }
    ~metric:Metrics.Geometric ~spec:Acc.spec
    ~verify:(fun ctrl -> (Acc.verify_robust ?cache ctrl).Verifier.pipe)
    ~init:(acc_init_for_seed 1)

let initset_equal (a : Initset.result) (b : Initset.result) =
  a.Initset.verified = b.Initset.verified
  && a.Initset.rejected = b.Initset.rejected
  && a.Initset.coverage = b.Initset.coverage
  && a.Initset.verifier_calls = b.Initset.verifier_calls

let learn_equal (a : Learner.result) (b : Learner.result) =
  Controller.params a.Learner.controller = Controller.params b.Learner.controller
  && a.Learner.iterations = b.Learner.iterations
  && a.Learner.verifier_calls = b.Learner.verifier_calls
  && a.Learner.verdict = b.Learner.verdict

type cert_run = {
  cr_name : string;
  cr_cold : float;
  cr_warm : float;
  cr_match : bool;
  cr_clean : bool;   (* warm run all-hit: 0 miss, 0 reject, 0 fresh flowpipes *)
  cr_detail : string;
  cr_cold_counters : (string * int) list;
  cr_warm_counters : (string * int) list;
}

let counted_timed f =
  Dwv_util.Counters.reset ();
  let r, t = timed f in
  (r, t, Dwv_util.Counters.snapshot ())

let count counters key = Option.value ~default:0 (List.assoc_opt key counters)

let certs_gate_rule =
  "initset warm >= 2x cold; warm runs all-hit (0 miss, 0 reject, 0 fresh \
   flowpipes, hits = cold lookups); cold/warm results bit-identical; tampered \
   certificate rejected and recomputed to the identical result; counter totals \
   no worse than the last committed COUNTERS_history.json entry"

let write_certs_json ~workloads ~tamper_rejects ~tamper_match ~initset_speedup_ok
    ~counters_ok ~passed path =
  let b = Buffer.create 2048 in
  Printf.bprintf b "{\n  \"version\": 1,\n  \"workloads\": [\n";
  List.iteri
    (fun i w ->
      Printf.bprintf b
        "    {\"name\": \"%s\", \"cold_seconds\": %.6f, \"warm_seconds\": %.6f, \
         \"speedup\": %.3f, \"match\": %b, \"warm_clean\": %b, \"detail\": \"%s\",\n     \
         \"counters_cold\": "
        (json_escape w.cr_name) w.cr_cold w.cr_warm
        (if w.cr_warm > 0.0 then w.cr_cold /. w.cr_warm else Float.nan)
        w.cr_match w.cr_clean (json_escape w.cr_detail);
      bprint_counters b w.cr_cold_counters;
      Printf.bprintf b ", \"counters_warm\": ";
      bprint_counters b w.cr_warm_counters;
      Printf.bprintf b "}%s\n" (if i = List.length workloads - 1 then "" else ","))
    workloads;
  Printf.bprintf b
    "  ],\n  \"tamper\": {\"rejects\": %d, \"match\": %b},\n  \"gate\": {\"rule\": \
     \"%s\", \"initset_speedup_ok\": %b, \"counters_ok\": %b, \"passed\": %b}\n}\n"
    tamper_rejects tamper_match (json_escape certs_gate_rule) initset_speedup_ok
    counters_ok passed;
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let print_certs () =
  Fmt.pr "--- Certificates: cold vs warm cache, reject-on-tamper ---@.";
  remove_tree cert_bench_dir;
  let fresh_cache () = Some (Cert_cache.create ~dir:cert_bench_dir ()) in
  let cert_workload name detail run equal =
    let cold, t_cold, c_cold = counted_timed (fun () -> run (fresh_cache ())) in
    let warm, t_warm, c_warm = counted_timed (fun () -> run (fresh_cache ())) in
    let ok = equal cold warm in
    (* the warm run must replay everything: every lookup hits, nothing is
       recomputed, and the call accounting stays cache-blind *)
    let clean =
      count c_warm "cache_misses" = 0
      && count c_warm "cache_rejects" = 0
      && count c_warm "linear_flowpipes" = 0
      && count c_warm "nn_flowpipes" = 0
      && count c_warm "cache_hits" = count c_cold "cache_hits" + count c_cold "cache_misses"
      && count c_warm "verifier_calls" = count c_cold "verifier_calls"
    in
    Fmt.pr "%-12s  cold %.3fs  warm %.3fs  speedup %.2fx  %s  %s@." name t_cold t_warm
      (if t_warm > 0.0 then t_cold /. t_warm else Float.nan)
      (if ok then "identical" else "MISMATCH")
      (if clean then "all-hit" else "NOT-ALL-HIT");
    ( { cr_name = name; cr_cold = t_cold; cr_warm = t_warm; cr_match = ok;
        cr_clean = clean; cr_detail = detail cold;
        cr_cold_counters = c_cold; cr_warm_counters = c_warm },
      cold )
  in
  let initset_w, initset_cold =
    cert_workload "initset"
      (fun (r : Initset.result) ->
        Fmt.str "acc depth 3, coverage=%.4f, %d calls" r.Initset.coverage
          r.Initset.verifier_calls)
      certs_initset initset_equal
  in
  let learn_w, _ =
    cert_workload "learn"
      (fun (r : Learner.result) ->
        Fmt.str "acc coordinate, CI=%d, %d calls, %s" r.Learner.iterations
          r.Learner.verifier_calls
          (Dwv_reach.Verifier.verdict_to_string r.Learner.verdict))
      certs_learn learn_equal
  in
  (* flip one byte in the middle of a stored certificate: the independent
     checker must reject it (checksum), the rung recomputes fresh, and
     the result is still bit-identical to the cold run *)
  let tamper_file =
    Sys.readdir cert_bench_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dwvcert")
    |> List.sort compare
    |> function
    | [] -> None
    | f :: _ -> Some (Filename.concat cert_bench_dir f)
  in
  let tamper_rejects, tamper_match =
    match tamper_file with
    | None -> (0, false)
    | Some path ->
      let bytes =
        In_channel.with_open_bin path (fun ic ->
            really_input_string ic (in_channel_length ic))
      in
      let buf = Bytes.of_string bytes in
      let pos = Bytes.length buf / 2 in
      Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor 0x10));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Bytes.unsafe_to_string buf));
      let tampered, _, c_tamper = counted_timed (fun () -> certs_initset (fresh_cache ())) in
      (count c_tamper "cache_rejects", initset_equal initset_cold tampered)
  in
  Fmt.pr "tamper: %d reject(s), recomputed result %s@." tamper_rejects
    (if tamper_match then "identical" else "MISMATCH");
  let workloads = [ initset_w; learn_w ] in
  let initset_speedup_ok = initset_w.cr_cold >= 2.0 *. initset_w.cr_warm in
  let all_ok = List.for_all (fun w -> w.cr_match && w.cr_clean) workloads in
  let ratchet =
    Dwv_util.Trend.record ~path:"COUNTERS_history.json" ~section:"certs"
      (List.concat_map
         (fun w ->
           [ (w.cr_name ^ "/cold", w.cr_cold_counters);
             (w.cr_name ^ "/warm", w.cr_warm_counters) ])
         workloads)
  in
  List.iter (Fmt.pr "counters ratchet: %s@.") ratchet;
  let counters_ok = ratchet = [] in
  let passed =
    initset_speedup_ok && all_ok && tamper_rejects >= 1 && tamper_match
    && counters_ok
  in
  write_certs_json ~workloads ~tamper_rejects ~tamper_match ~initset_speedup_ok
    ~counters_ok ~passed "BENCH_certs.json";
  Fmt.pr "gate %s [BENCH_certs.json written]@."
    (if passed then "passed"
     else if not initset_speedup_ok then "FAILED (warm initset not 2x faster)"
     else if not all_ok then "FAILED (warm run mismatched or not all-hit)"
     else if not counters_ok then
       "FAILED (deterministic-counter regression vs COUNTERS_history.json)"
     else "FAILED (tampered certificate not rejected)");
  if not passed then exit 1

(* ---------------------------------------------------------------- *)
(* Section: scenarios — the scenario farm (SCENARIOS_report.json).
   A 500-case seeded fuzz campaign runs the full DwV loop per scenario
   with the differential soundness oracle; the campaign is replayed at
   domains=1 and domains=N and every record (minus wall-clock) must be
   bit-identical. The four committed benchmark DSL files must verify
   Reach_avoid, and the regression corpus (scenarios that once exposed
   soundness bugs) must examine clean. Any oracle violation, verdict
   drift, or determinism mismatch fails the gate. *)

module Scenario = Dwv_scenario.Scenario
module Scn_registry = Dwv_scenario.Scn_registry
module Scn_fuzz = Dwv_scenario.Scn_fuzz
module Scn_verify = Dwv_scenario.Scn_verify

let scenarios_seed = 42
let scenarios_count = 500

let scenarios_gate_rule =
  "500-case campaign has zero soundness-oracle violations; records are \
   bit-identical (minus latency) at domains 1 vs N; every committed \
   benchmark scenario verifies Reach_avoid; every corpus scenario examines \
   clean; campaign counter totals no worse than the last committed \
   COUNTERS_history.json entry"

let scenario_files dir ext =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ext)
    |> List.sort compare
    |> List.map (Filename.concat dir)
  else []

let write_scenarios_json ~campaign_json ~det_match ~benchmarks ~corpus
    ~counters_ok ~passed path =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\n  \"version\": 1,\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, verdict, rung, seconds) ->
      Printf.bprintf b
        "    {\"name\": \"%s\", \"verdict\": \"%s\", \"rung\": \"%s\", \
         \"seconds\": %.6f}%s\n"
        (json_escape name) (json_escape verdict) (json_escape rung) seconds
        (if i = List.length benchmarks - 1 then "" else ","))
    benchmarks;
  Printf.bprintf b "  ],\n  \"corpus\": [\n";
  List.iteri
    (fun i (name, oracle) ->
      Printf.bprintf b "    {\"name\": \"%s\", \"oracle\": %s}%s\n"
        (json_escape name)
        (match oracle with
        | None -> "null"
        | Some r -> Printf.sprintf "\"%s\"" (json_escape r))
        (if i = List.length corpus - 1 then "" else ","))
    corpus;
  Printf.bprintf b
    "  ],\n  \"campaign\": %s,\n  \"gate\": {\"rule\": \"%s\", \
     \"determinism_match\": %b, \"counters_ok\": %b, \"passed\": %b}\n}\n"
    (String.trim campaign_json) (json_escape scenarios_gate_rule) det_match
    counters_ok passed;
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let print_scenarios ~domains () =
  Fmt.pr "--- Scenario farm: fuzz campaign, benchmarks, corpus ---@.";
  (* counters around the sequential campaign only: its totals are a pure
     function of (seed, count), so the ratchet below sees a
     load-independent signature of the whole fuzz pipeline *)
  Dwv_util.Counters.reset ();
  let seq = Scn_fuzz.run ~count:scenarios_count ~seed:scenarios_seed () in
  let campaign_counters = Dwv_util.Counters.snapshot () in
  let par =
    Pool.with_pool ~domains (fun pool ->
        Scn_fuzz.run ~pool ~count:scenarios_count ~seed:scenarios_seed ())
  in
  let keys r = Array.map Scn_fuzz.determinism_key r.Scn_fuzz.records in
  let det_match = keys seq = keys par in
  let v_seq = Scn_fuzz.violations seq and v_par = Scn_fuzz.violations par in
  Fmt.pr "campaign: %d scenarios (seed %d), %d violation(s) seq, %d par, \
          domains 1 vs %d %s@."
    scenarios_count scenarios_seed v_seq v_par domains
    (if det_match then "identical" else "MISMATCH");
  let benchmarks =
    List.map
      (fun path ->
        let entry = Scn_registry.of_file path in
        let scn = entry.Scn_registry.scenario in
        let controller =
          entry.Scn_registry.init (Dwv_util.Rng.create scenarios_seed)
        in
        let report, seconds =
          timed (fun () -> entry.Scn_registry.verify_robust controller)
        in
        let verdict =
          Dwv_reach.Verifier.verdict_to_string report.Scn_verify.verdict
        in
        let rung =
          Option.value ~default:"-"
            report.Scn_verify.fallback.Dwv_reach.Verifier.rung
        in
        Fmt.pr "benchmark %-10s %-11s (rung %s, %.3fs)@." scn.Scenario.name
          verdict rung seconds;
        (scn.Scenario.name, verdict, rung, seconds))
      (scenario_files "examples/scenarios" ".scn")
  in
  let corpus =
    List.map
      (fun path ->
        let scn = Scenario.of_file path in
        let result =
          Scn_fuzz.examine ~rng:(Dwv_util.Rng.create scenarios_seed) scn
        in
        Fmt.pr "corpus    %-22s %s@." scn.Scenario.name
          (match result.Scn_fuzz.oracle with
          | None -> "clean"
          | Some r -> "VIOLATION: " ^ r);
        (scn.Scenario.name, result.Scn_fuzz.oracle))
      (scenario_files "test/scenarios/corpus" ".scn")
  in
  let benchmarks_ok =
    benchmarks <> []
    && List.for_all (fun (_, v, _, _) -> v = "reach-avoid") benchmarks
  in
  let corpus_ok =
    corpus <> [] && List.for_all (fun (_, o) -> o = None) corpus
  in
  let ratchet =
    Dwv_util.Trend.record ~path:"COUNTERS_history.json" ~section:"scenarios"
      [ ("campaign", campaign_counters) ]
  in
  List.iter (Fmt.pr "counters ratchet: %s@.") ratchet;
  let counters_ok = ratchet = [] in
  let passed =
    v_seq = 0 && v_par = 0 && det_match && benchmarks_ok && corpus_ok
    && counters_ok
  in
  write_scenarios_json
    ~campaign_json:(Scn_fuzz.report_json ~domains:1 seq)
    ~det_match ~benchmarks ~corpus ~counters_ok ~passed "SCENARIOS_report.json";
  Fmt.pr "gate %s [SCENARIOS_report.json written]@."
    (if passed then "passed"
     else if v_seq > 0 || v_par > 0 then "FAILED (soundness-oracle violations)"
     else if not det_match then "FAILED (domains 1 vs N records differ)"
     else if not benchmarks_ok then
       "FAILED (benchmark scenario not reach-avoid)"
     else if not counters_ok then
       "FAILED (deterministic-counter regression vs COUNTERS_history.json)"
     else "FAILED (corpus scenario not clean)");
  if not passed then exit 1

(* ---------------------------------------------------------------- *)

let print_profile () =
  Dwv_util.Phases.reset ();
  let r, t = timed (fun () -> parallel_initset 1) in
  Fmt.pr "initset seq: %.3fs (%d calls)@." t r.Initset.verifier_calls;
  List.iter (fun (k, v) -> Fmt.pr "  %-28s %8.3fs@." k v) (Dwv_util.Phases.snapshot ())

let flush_section () = Format.pp_print_flush Format.std_formatter ()

let () =
  let rec parse_args sections domains = function
    | [] -> (List.rev sections, domains)
    | "--domains" :: n :: rest -> (
      match int_of_string_opt n with
      | Some d when d >= 1 -> parse_args sections (Some d) rest
      | _ ->
        Fmt.epr "bench: bad --domains %s (expected a positive integer)@." n;
        exit 2)
    | s :: rest -> parse_args (s :: sections) domains rest
  in
  let sections, domains =
    match Array.to_list Sys.argv with
    | _ :: rest -> parse_args [] None rest
    | [] -> ([], None)
  in
  let sections =
    match sections with
    | [] ->
      [ "table1"; "table2"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "tightness";
        "micro"; "parallel"; "hotpath"; "certs"; "scenarios" ]
    | _ -> sections
  in
  let domains = Option.value domains ~default:(Pool.default_domains ()) in
  let want s = List.mem s sections in
  if want "profile" then begin print_profile (); flush_section () end;
  if want "parallel" then begin print_parallel ~domains (); flush_section () end;
  if want "hotpath" then begin print_hotpath ~domains (); flush_section () end;
  if want "certs" then begin print_certs (); flush_section () end;
  if want "scenarios" then begin print_scenarios ~domains (); flush_section () end;
  if want "table2" then begin print_table2 (); flush_section () end;
  if want "micro" then begin print_micro (); flush_section () end;
  let acc = if List.exists want [ "table1"; "fig4"; "fig6" ] then Some (run_acc ()) else None in
  Option.iter
    (fun b ->
      if want "table1" then print_table1_acc b;
      if want "fig4" then print_fig4 b;
      if want "fig6" then print_fig6 b;
      flush_section ())
    acc;
  let threed = if List.exists want [ "table1"; "fig8" ] then Some (run_threed ()) else None in
  Option.iter
    (fun b ->
      if want "table1" then print_table1_nn ~title:"3D system" b;
      if want "fig8" then print_fig8 b;
      flush_section ())
    threed;
  let osc =
    if List.exists want [ "table1"; "fig5"; "fig7" ] then Some (run_oscillator ()) else None
  in
  Option.iter
    (fun b ->
      if want "table1" then print_table1_nn ~title:"Oscillator" b;
      if want "fig5" then print_fig5 b;
      if want "fig7" then print_fig7 b;
      flush_section ())
    osc;
  if want "tightness" then begin print_tightness (); flush_section () end
