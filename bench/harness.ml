(* Experiment harness shared by every table and figure of the paper
   reproduction. Each (system, method) configuration is executed once; the
   result feeds the Table 1 row, the Table 2 timing, and the corresponding
   figure series. All runs are seeded and deterministic. *)

module Box = Dwv_interval.Box
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Evaluate = Dwv_core.Evaluate
module Initset = Dwv_core.Initset
module Env = Dwv_rl.Env
module Svg = Dwv_rl.Svg
module Ddpg = Dwv_rl.Ddpg
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Rng = Dwv_util.Rng
module Stats = Dwv_util.Stats
module Table = Dwv_util.Table
module Acc = Dwv_systems.Acc
module Oscillator = Dwv_systems.Oscillator
module Threed = Dwv_systems.Threed

(* Monotone-clamped wall clock shared with Budget deadlines: wall (not
   CPU) time so multi-domain runs are not charged per-domain, clamped so
   an NTP step can't produce a negative duration. *)
let timed f =
  let t0 = Dwv_util.Mono.now () in
  let v = f () in
  (v, Dwv_util.Mono.now () -. t0)

(* Weakened warm start used across the NN experiments: strong enough that
   the verifier produces finite flowpipes, weak enough that Algorithm 1
   visibly has to repair the design (typical CI a handful of iterations,
   matching the paper's single-digit CIs for "Ours"). *)
let pretrain_config = { Dwv_nn.Pretrain.default_config with epochs = 100 }

(* One Table-1 row. *)
type row = {
  label : string;
  ci : string;             (* convergence iterations, mean(+-std) over seeds *)
  sc : float;              (* safe-control rate, percent *)
  gr : float;              (* goal-reaching rate, percent *)
  verified : string;
  seconds : float;         (* wall clock of the whole row *)
}

let pp_row_into table r =
  Table.add_row table
    [ r.label; r.ci; Fmt.str "%.1f%%" r.sc; Fmt.str "%.1f%%" r.gr; r.verified;
      Fmt.str "%.1fs" r.seconds ]

let table1_header = [ "method"; "CI"; "SC"; "GR"; "Verified result"; "wall" ]

let ci_summary iterations =
  let arr = Array.of_list (List.map float_of_int iterations) in
  if Array.length arr = 1 then Fmt.str "%.0f" arr.(0)
  else Fmt.str "%.0f(+-%.1f)" (Stats.mean arr) (Stats.std arr)

(* ---------------------------------------------------------------- *)
(* "Ours": Algorithm 1 over several seeds.                           *)

type ours_run = {
  results : Learner.result list;       (* one per seed *)
  row : row;
}

let eval_rates ~sys ~spec ~controller_fn =
  let rng = Rng.create 2024 in
  Evaluate.rates ~n:500 ~rng ~sys ~controller:controller_fn ~spec ()

let run_ours ~label ~spec ~sys ~sim ~metric ~verify ~init_for_seed ~cfg ~seeds () =
  let (results, dt) =
    timed (fun () ->
        List.map
          (fun seed ->
            Learner.learn { cfg with Learner.seed } ~metric ~spec
              ~verify ~init:(init_for_seed seed))
          seeds)
  in
  let cis = List.map (fun (r : Learner.result) -> r.Learner.iterations) results in
  let best = List.hd results in
  let rates = eval_rates ~sys ~spec ~controller_fn:(sim best.Learner.controller) in
  let verdicts = List.map (fun (r : Learner.result) -> r.Learner.verdict) results in
  let verified =
    if List.for_all (fun v -> v = Verifier.Reach_avoid) verdicts then "reach-avoid"
    else
      Fmt.str "%d/%d reach-avoid"
        (List.length (List.filter (fun v -> v = Verifier.Reach_avoid) verdicts))
        (List.length verdicts)
  in
  {
    results;
    row =
      {
        label;
        ci = ci_summary cis;
        sc = rates.Evaluate.safe_percent;
        gr = rates.Evaluate.goal_percent;
        verified;
        seconds = dt;
      };
  }

(* ---------------------------------------------------------------- *)
(* Baselines.                                                        *)

type svg_run = { svg : Svg.result; pipe : Flowpipe.t option; row : row }

(* Verify a trained neural policy with the given closed-loop verifier;
   [None] when the system has no NN verifier (ACC, which linearizes). *)
let run_svg ~label ~spec ~sys ~cfg ~policy_sizes ~policy_acts ~output_scale ~verify_net
    ~seed () =
  let env = Env.make ~sys ~spec () in
  let ((svg : Svg.result), dt) =
    timed (fun () ->
        let policy = Mlp.create ~sizes:policy_sizes ~acts:policy_acts (Rng.create seed) in
        Svg.train { cfg with Svg.seed } ~env ~policy ~output_scale)
  in
  let controller_fn x = Array.map (fun v -> output_scale *. v) (Mlp.forward svg.Svg.policy x) in
  let rates = eval_rates ~sys ~spec ~controller_fn in
  let pipe = verify_net svg.Svg.policy output_scale in
  let verified =
    match pipe with
    | None -> "n/a"
    | Some p ->
      if Flowpipe.diverged p then "Unknown (diverged)"
      else
        Verifier.verdict_to_string
          (Verifier.check ~unsafe:spec.Spec.unsafe ~goal:spec.Spec.goal p)
  in
  let ci =
    if svg.Svg.converged then string_of_int svg.Svg.steps
    else Fmt.str ">%d (cap)" svg.Svg.steps
  in
  {
    svg;
    pipe;
    row =
      { label; ci; sc = rates.Evaluate.safe_percent; gr = rates.Evaluate.goal_percent;
        verified; seconds = dt };
  }

type ddpg_run = { ddpg : Ddpg.result; pipe : Flowpipe.t option; row : row }

let run_ddpg ~label ~spec ~sys ~cfg ~actor_sizes ~output_scale ~verify_net ~seed () =
  let env = Env.make ~sys ~spec () in
  let ((ddpg : Ddpg.result), dt) =
    timed (fun () ->
        let rng = Rng.create seed in
        (* ReLU hidden layers, Tanh output - the paper's baseline design *)
        let acts =
          List.init
            (List.length actor_sizes - 1)
            (fun i ->
              if i = List.length actor_sizes - 2 then Activation.Tanh else Activation.Relu)
        in
        let actor = Mlp.create ~sizes:actor_sizes ~acts rng in
        let n = Env.state_dim env and m = Env.action_dim env in
        let critic =
          Mlp.create ~sizes:[ n + m; 32; 1 ] ~acts:[ Activation.Relu; Activation.Linear ] rng
        in
        Ddpg.train { cfg with Ddpg.seed } ~env ~actor ~critic ~output_scale)
  in
  let controller_fn x = Array.map (fun v -> output_scale *. v) (Mlp.forward ddpg.Ddpg.actor x) in
  let rates = eval_rates ~sys ~spec ~controller_fn in
  let pipe = verify_net ddpg.Ddpg.actor output_scale in
  let verified =
    match pipe with
    | None -> "n/a"
    | Some p ->
      if Flowpipe.diverged p then "Unknown (diverged)"
      else
        Verifier.verdict_to_string
          (Verifier.check ~unsafe:spec.Spec.unsafe ~goal:spec.Spec.goal p)
  in
  let ci =
    if ddpg.Ddpg.converged then Fmt.str "%d eps" ddpg.Ddpg.episodes
    else Fmt.str ">%d eps (cap)" ddpg.Ddpg.episodes
  in
  {
    ddpg;
    pipe;
    row =
      { label; ci; sc = rates.Evaluate.safe_percent; gr = rates.Evaluate.goal_percent;
        verified; seconds = dt };
  }

(* ---------------------------------------------------------------- *)
(* ACC specifics.                                                     *)

(* The RL baselines train on an affinely normalized copy of the ACC
   plant: x_hat = (x - center)/scale with center (140, 45), scale
   (20, 10). Raw coordinates (s ~ 123, v ~ 50) saturate freshly
   initialized networks and blow up critic targets; the normalization is
   a bijection, so safety/goal semantics (and hence SC/GR) transfer
   exactly. "Ours" does not need it - the verifier works on the raw
   plant. *)
let acc_norm_center = [| 140.0; 45.0 |]
let acc_norm_scale = [| 20.0; 10.0 |]

let acc_normalize x =
  Array.init 2 (fun i -> (x.(i) -. acc_norm_center.(i)) /. acc_norm_scale.(i))

let acc_normalized_sys =
  (* s' = v_f - v with s = 140 + 20 s^, v = 45 + 10 v^ *)
  let open Dwv_expr.Expr in
  let v_raw = add (const 45.0) (scale 10.0 (var 1)) in
  Dwv_ode.Sampled_system.make
    ~f:
      [|
        scale (1.0 /. 20.0) (sub (const Acc.v_front) v_raw);
        scale (1.0 /. 10.0) (add (scale Acc.k_drag v_raw) (input 0));
      |]
    ~n:2 ~m:1 ~delta:Acc.delta

let acc_normalize_box box =
  Box.make
    ~lo:(acc_normalize (Box.lo box))
    ~hi:(acc_normalize (Box.hi box))

let acc_normalized_spec =
  Spec.make ~name:"acc-normalized"
    ~x0:(acc_normalize_box Acc.spec.Spec.x0)
    ~unsafe:(acc_normalize_box Acc.spec.Spec.unsafe)
    ~goal:(acc_normalize_box Acc.spec.Spec.goal)
    ~delta:Acc.spec.Spec.delta ~steps:Acc.spec.Spec.steps

(* Linearize neural baselines for the linear verifier. *)

(* Least-squares fit u ~ theta . (s, v, 1) over the operating envelope. *)
let linearize_acc_policy forward =
  let rng = Rng.create 13 in
  let samples = 400 in
  let xs =
    Array.init samples (fun _ ->
        [| Rng.uniform rng ~lo:118.0 ~hi:160.0; Rng.uniform rng ~lo:35.0 ~hi:55.0; 1.0 |])
  in
  let ys = Array.map (fun x -> (forward [| x.(0); x.(1) |] : float)) xs in
  let ata = Dwv_la.Mat.zeros 3 3 and aty = Array.make 3 0.0 in
  Array.iteri
    (fun k x ->
      for i = 0 to 2 do
        aty.(i) <- aty.(i) +. (x.(i) *. ys.(k));
        for j = 0 to 2 do
          Dwv_la.Mat.set ata i j (Dwv_la.Mat.get ata i j +. (x.(i) *. x.(j)))
        done
      done)
    xs;
  Dwv_la.Mat.solve ata aty

(* Baseline nets read normalized observations, so the raw control law is
   u(x) = scale * net(normalize x); the verifier gets its least-squares
   linearization over the operating envelope. *)
let acc_verify_net net output_scale =
  let theta =
    linearize_acc_policy (fun x -> output_scale *. (Mlp.forward net (acc_normalize x)).(0))
  in
  Some (Acc.verify (Acc.controller_of_theta theta))

(* ---------------------------------------------------------------- *)
(* Per-system experiment bundles.                                    *)

let acc_learn_cfg alpha =
  { Learner.default_config with max_iters = 300; alpha; beta = alpha; perturbation = 1e-3 }

(* Random initial designs for the ACC CI spread: stable pole placements
   with randomized speed, mirroring "randomly initialize theta" within
   the analyzable region. *)
let acc_init_for_seed seed =
  let rng = Rng.create (1000 + seed) in
  Acc.controller_of_theta
    [| Rng.uniform rng ~lo:0.05 ~hi:0.15; Rng.uniform rng ~lo:(-0.7) ~hi:(-0.4); 0.0 |]

let nn_learn_cfg =
  { Learner.default_config with
    max_iters = 12; alpha = 0.05; beta = 0.05; perturbation = 0.02;
    gradient_mode = Learner.Spsa 2 }

let osc_init_for_seed seed =
  Oscillator.pretrained_controller ~config:pretrain_config (Rng.create seed)

let threed_init_for_seed seed =
  Threed.pretrained_controller ~config:pretrain_config (Rng.create seed)

let reachnn_osc = Verifier.Bernstein (Dwv_reach.Nn_reach_bernstein.default_config ~n:2)
let reachnn_3d = Verifier.Bernstein (Dwv_reach.Nn_reach_bernstein.default_config ~n:3)

(* ---------------------------------------------------------------- *)
(* SVG rendering of the reachable-set figures.                       *)

let plots_dir = "bench_plots"

let ensure_plots_dir () =
  if not (Sys.file_exists plots_dir) then Sys.mkdir plots_dir 0o755

(* Render a flowpipe corridor with the specification regions into
   bench_plots/<name>.svg; [dims] selects the two plotted state
   dimensions. *)
let save_corridor_svg ~name ~title ~(spec : Spec.t) ?(dims = (0, 1)) ?clip pipe =
  let module Svg_plot = Dwv_util.Svg_plot in
  let module I = Dwv_interval.Interval in
  ensure_plots_dir ();
  let dx, dy = dims in
  let plot =
    Svg_plot.create ~title
      ~x_label:(Fmt.str "x%d" dx)
      ~y_label:(Fmt.str "x%d" dy)
      ()
  in
  (* display clipping, for specification regions that extend far past the
     interesting window (the ACC unsafe half-space encoding) *)
  let clipped box = match clip with None -> Some box | Some c -> Box.intersect box c in
  let add_region kind label box =
    match clipped box with
    | None -> ()
    | Some box ->
      Svg_plot.add_box ~kind ~label plot
        ~x_lo:(I.lo (Box.get box dx))
        ~x_hi:(I.hi (Box.get box dx))
        ~y_lo:(I.lo (Box.get box dy))
        ~y_hi:(I.hi (Box.get box dy))
  in
  List.iter
    (fun box ->
      Svg_plot.add_box ~kind:`Reach plot
        ~x_lo:(I.lo (Box.get box dx))
        ~x_hi:(I.hi (Box.get box dx))
        ~y_lo:(I.lo (Box.get box dy))
        ~y_hi:(I.hi (Box.get box dy)))
    (Flowpipe.step_boxes pipe);
  add_region `Initial "X0" spec.Spec.x0;
  add_region `Goal "Xg" spec.Spec.goal;
  add_region `Unsafe "Xu" spec.Spec.unsafe;
  let path = Filename.concat plots_dir (name ^ ".svg") in
  Svg_plot.save path plot;
  Fmt.pr "  [figure written to %s]@." path
